package indoorsq_test

import (
	"fmt"

	"indoorsq"
)

// Example builds a minimal venue and answers the three query types.
func Example() {
	b := indoorsq.NewBuilder("demo", 1)
	hall := b.AddHallway(0, indoorsq.RectPoly(indoorsq.R(0, 0, 20, 4)))
	cafe := b.AddRoom(0, indoorsq.RectPoly(indoorsq.R(0, 4, 10, 10)))
	shop := b.AddRoom(0, indoorsq.RectPoly(indoorsq.R(10, 4, 20, 10)))
	d1 := b.AddDoor(indoorsq.Pt(5, 4), 0)
	b.ConnectBoth(d1, hall, cafe)
	d2 := b.AddDoor(indoorsq.Pt(15, 4), 0)
	b.ConnectBoth(d2, hall, shop)
	sp, _ := b.Build()

	eng := indoorsq.NewIDModel(sp)
	eng.SetObjects([]indoorsq.Object{
		{ID: 1, Loc: indoorsq.At(5, 7, 0), Part: cafe},
		{ID: 2, Loc: indoorsq.At(15, 7, 0), Part: shop},
	})

	me := indoorsq.At(5, 2, 0)
	near, _ := eng.Range(me, 6, nil)
	nn, _ := eng.KNN(me, 1, nil)
	path, _ := eng.SPD(me, indoorsq.At(15, 7, 0), nil)

	fmt.Println("in range:", near)
	fmt.Printf("nearest: #%d at %.0fm\n", nn[0].ID, nn[0].Dist)
	fmt.Printf("route: %.0fm via %d doors\n", path.Dist, len(path.Doors))
	// Output:
	// in range: [1]
	// nearest: #1 at 5m
	// route: 13m via 1 doors
}

// ExampleNewBuilder_oneWay demonstrates a unidirectional door (a security
// checkpoint): the shortest distance becomes asymmetric.
func ExampleNewBuilder_oneWay() {
	b := indoorsq.NewBuilder("checkpoint", 1)
	land := b.AddHallway(0, indoorsq.RectPoly(indoorsq.R(0, 0, 10, 4)))
	air := b.AddHallway(0, indoorsq.RectPoly(indoorsq.R(0, 4, 10, 8)))
	in := b.AddDoor(indoorsq.Pt(2, 4), 0)
	b.ConnectOneWay(in, land, air) // security: land -> air only
	out := b.AddDoor(indoorsq.Pt(8, 4), 0)
	b.ConnectOneWay(out, air, land) // exit: air -> land only
	sp, _ := b.Build()

	eng := indoorsq.NewIDIndex(sp)
	eng.SetObjects(nil)
	p := indoorsq.At(2, 2, 0)
	q := indoorsq.At(2, 6, 0)
	fwd, _ := eng.SPD(p, q, nil)
	back, _ := eng.SPD(q, p, nil)
	fmt.Printf("in: %.0fm, out: %.0fm\n", fwd.Dist, back.Dist)
	// Output:
	// in: 4m, out: 13m
}
