package indoor

import (
	"math"

	"indoorsq/internal/geom"
)

// doorIndexIn returns the position of door d in partition v's Doors slice,
// or -1 when d is not associated with v. It is an O(1) lookup in the
// per-partition door→index map derived at Build (the former linear scan sat
// on every WithinPointDoor/WithinDoors call).
func (s *Space) doorIndexIn(v PartitionID, d DoorID) int {
	if i, ok := s.doorIdx[v][d]; ok {
		return int(i)
	}
	return -1
}

// DoorIndex exposes doorIndexIn to engines that address per-partition
// arrays by door position (e.g. IDMODEL's fd2d matrices): the position of d
// in Partition(v).Doors, or -1 when d is not a door of v.
func (s *Space) DoorIndex(v PartitionID, d DoorID) int { return s.doorIndexIn(v, d) }

// WithinPoints returns the intra-partition distance ‖a,b‖v between two
// points hosted by partition v. For convex partitions this is the Euclidean
// distance; for concave partitions it is the visibility-graph geodesic; for
// staircases it is the stair length when a and b are on different floors.
// It returns +Inf when either point is outside v.
func (s *Space) WithinPoints(v PartitionID, a, b Point) float64 {
	part := &s.parts[v]
	if part.Kind == Staircase {
		if a.Floor != b.Floor {
			return part.StairLength
		}
		return a.XY().Dist(b.XY())
	}
	if a.Floor != part.Floor || b.Floor != part.Floor {
		return math.Inf(1)
	}
	if part.convex {
		if !part.Poly.Contains(a.XY()) || !part.Poly.Contains(b.XY()) {
			return math.Inf(1)
		}
		return a.XY().Dist(b.XY())
	}
	return s.vg[v].Dist(a.XY(), b.XY())
}

// WithinPointsStop is WithinPoints with a cancellation probe: a concave
// partition's geodesic sweep polls stop between vertex settlements and bails
// out with +Inf when it reports true. A nil stop (the untracked common case)
// is exactly WithinPoints. Callers that can be interrupted must distinguish
// the abort from genuine unreachability themselves (e.g. via
// query.Stats.Interrupted).
func (s *Space) WithinPointsStop(v PartitionID, a, b Point, stop func() bool) float64 {
	if stop == nil {
		return s.WithinPoints(v, a, b)
	}
	part := &s.parts[v]
	if part.Kind == Staircase || part.convex {
		return s.WithinPoints(v, a, b)
	}
	if a.Floor != part.Floor || b.Floor != part.Floor {
		return math.Inf(1)
	}
	return s.vg[v].DistStop(a.XY(), b.XY(), stop)
}

// WithinPointDoor returns ‖p,d‖v: the intra-partition distance from point p
// in partition v to door d of v. It returns +Inf when d is not a door of v
// or p lies outside v.
func (s *Space) WithinPointDoor(v PartitionID, p Point, d DoorID) float64 {
	i := s.doorIndexIn(v, d)
	if i < 0 {
		return math.Inf(1)
	}
	part := &s.parts[v]
	door := &s.doors[d]
	if part.Kind == Staircase {
		if p.Floor != door.Floor {
			return part.StairLength
		}
		return p.XY().Dist(door.P)
	}
	if p.Floor != part.Floor {
		return math.Inf(1)
	}
	if part.convex {
		if !part.Poly.Contains(p.XY()) {
			return math.Inf(1)
		}
		return p.XY().Dist(door.P)
	}
	return s.vg[v].DistToAnchor(p.XY(), int(s.doorAnchor[v][i]))
}

// WithinDoors returns the geometric distance between doors di and dj through
// the interior of partition v — the quantity the fd2d mapping materializes
// (Sec. 3.1). Direction rules (di enterable, dj leaveable) are applied by
// the engines, not here. It returns +Inf when either door is not a door of v.
//
// This is the uncached, on-the-fly computation (for concave partitions it
// costs one visibility sweep). Hot paths that revisit door pairs should use
// WithinDoorsCached, which memoizes bit-identical values.
func (s *Space) WithinDoors(v PartitionID, di, dj DoorID) float64 {
	ii := s.doorIndexIn(v, di)
	if ii < 0 {
		return math.Inf(1)
	}
	jj := ii
	if dj != di {
		jj = s.doorIndexIn(v, dj)
		if jj < 0 {
			return math.Inf(1)
		}
	}
	return s.withinDoorsAt(v, ii, jj)
}

// withinDoorsAt computes ‖di,dj‖v addressed by door positions within
// partition v's Doors slice. It is the single computation both WithinDoors
// and the distance cache's fill path call, which is what guarantees cached
// and uncached results are bit-identical.
//
// The result is canonicalized to the domain "finite non-negative or +Inf":
// a NaN (reachable only through degenerate geometry, e.g. a door with NaN
// coordinates) becomes +Inf. Besides being the honest answer — the pair is
// not usefully reachable — this keeps every representable distance distinct
// from the DistCache unfilled sentinel, whose bit pattern is Go's canonical
// NaN: an uncanonicalized NaN distance would CAS-republish the sentinel and
// turn the cell into a permanent miss recomputed on every probe.
func (s *Space) withinDoorsAt(v PartitionID, ii, jj int) float64 {
	d := s.rawWithinDoorsAt(v, ii, jj)
	if math.IsNaN(d) {
		return math.Inf(1)
	}
	return d
}

func (s *Space) rawWithinDoorsAt(v PartitionID, ii, jj int) float64 {
	if ii == jj {
		return 0
	}
	part := &s.parts[v]
	a, b := &s.doors[part.Doors[ii]], &s.doors[part.Doors[jj]]
	if part.Kind == Staircase {
		if a.Floor != b.Floor {
			return part.StairLength
		}
		return a.P.Dist(b.P)
	}
	if part.convex {
		return a.P.Dist(b.P)
	}
	return s.vg[v].AnchorDist(int(s.doorAnchor[v][ii]), int(s.doorAnchor[v][jj]))
}

// MaxReach returns fdv(d, v): the longest intra-partition distance one can
// travel within partition v after entering through door d, or +Inf when d is
// not an enterable door of v (Sec. 3.1).
func (s *Space) MaxReach(d DoorID, v PartitionID) float64 {
	for _, e := range s.parts[v].Enter {
		if e == d {
			i := s.doorIndexIn(v, d)
			return s.maxReach[v][i]
		}
	}
	return math.Inf(1)
}

// EuclideanLB returns a lower bound on the indoor distance from a to b:
// the planar Euclidean distance when the points share a floor, and the
// accumulated minimum floor-to-floor stair length otherwise. Engines use it
// for pruning only.
func (s *Space) EuclideanLB(a, b Point) float64 {
	d := a.XY().Dist(b.XY())
	if a.Floor != b.Floor {
		diff := a.Floor - b.Floor
		if diff < 0 {
			diff = -diff
		}
		d += float64(diff) * s.minStairLength()
	}
	return d
}

func (s *Space) minStairLength() float64 {
	m := math.Inf(1)
	for i := range s.parts {
		if s.parts[i].Kind == Staircase && s.parts[i].StairLength < m {
			m = s.parts[i].StairLength
		}
	}
	if math.IsInf(m, 1) {
		return 0
	}
	return m
}

// DoorPoint returns door d's location as an indoor Point.
func (s *Space) DoorPoint(d DoorID) Point {
	door := &s.doors[d]
	return Point{X: door.P.X, Y: door.P.Y, Floor: door.Floor}
}

// leavesInto reports whether one can go through door d out of partition from
// and into partition to, honouring door direction.
func (s *Space) leavesInto(d DoorID, from, to PartitionID) bool {
	door := &s.doors[d]
	okFrom, okTo := false, false
	for _, v := range door.Leaveable {
		if v == from {
			okFrom = true
			break
		}
	}
	for _, v := range door.Enterable {
		if v == to {
			okTo = true
			break
		}
	}
	return okFrom && okTo && from != to
}

// CanTraverse reports whether door d permits movement from partition `from`
// to partition `to` (the D2P(d) relation of Sec. 2.1).
func (s *Space) CanTraverse(d DoorID, from, to PartitionID) bool {
	return s.leavesInto(d, from, to)
}

// WithinFrom returns a closure computing ‖center,·‖v for many points with
// the center-side geometric work done once — the hot path of object-bucket
// scans. The closure returns +Inf for points outside v.
func (s *Space) WithinFrom(v PartitionID, center Point) func(Point) float64 {
	part := &s.parts[v]
	if part.Kind == Staircase {
		return func(b Point) float64 {
			if center.Floor != b.Floor {
				return part.StairLength
			}
			return center.XY().Dist(b.XY())
		}
	}
	if center.Floor != part.Floor {
		return infWithin
	}
	if part.convex {
		if !part.Poly.Contains(center.XY()) {
			return infWithin
		}
		c := center.XY()
		return func(b Point) float64 {
			if b.Floor != part.Floor || !part.Poly.Contains(b.XY()) {
				return math.Inf(1)
			}
			return c.Dist(b.XY())
		}
	}
	src := s.vg[v].SourceFrom(center.XY())
	return func(b Point) float64 {
		if b.Floor != part.Floor {
			return math.Inf(1)
		}
		return src.Dist(b.XY())
	}
}

// WithinFromDoor is WithinFrom anchored at a door of v; for concave
// partitions it reuses the precomputed door-to-vertex distances, making it
// cheaper than WithinFrom at an arbitrary point.
func (s *Space) WithinFromDoor(v PartitionID, d DoorID) func(Point) float64 {
	i := s.doorIndexIn(v, d)
	if i < 0 {
		return infWithin
	}
	part := &s.parts[v]
	door := &s.doors[d]
	if part.Kind == Staircase {
		return func(b Point) float64 {
			if door.Floor != b.Floor {
				return part.StairLength
			}
			return door.P.Dist(b.XY())
		}
	}
	if part.convex {
		return func(b Point) float64 {
			if b.Floor != part.Floor || !part.Poly.Contains(b.XY()) {
				return math.Inf(1)
			}
			return door.P.Dist(b.XY())
		}
	}
	src := s.vg[v].SourceFromAnchor(int(s.doorAnchor[v][i]))
	return func(b Point) float64 {
		if b.Floor != part.Floor {
			return math.Inf(1)
		}
		return src.Dist(b.XY())
	}
}

func infWithin(Point) float64 { return math.Inf(1) }

// PointRef is a reusable handle to a point inside a known partition: for
// concave partitions it caches the point's geodesic vertex distances so
// repeated distance computations (object bucket scans) cost O(vertices)
// instead of a fresh visibility sweep.
type PointRef struct {
	V   PartitionID
	P   Point
	src *geom.Source // nil for convex partitions and staircases
	ok  bool
}

// Ref prepares a reusable handle for point p hosted by partition v.
func (s *Space) Ref(v PartitionID, p Point) PointRef {
	part := &s.parts[v]
	r := PointRef{V: v, P: p}
	if part.Kind == Staircase {
		r.ok = true
		return r
	}
	if p.Floor != part.Floor {
		return r
	}
	if part.convex {
		r.ok = part.Poly.Contains(p.XY())
		return r
	}
	r.src = s.vg[v].SourceFrom(p.XY())
	r.ok = true
	return r
}

// RefDist returns ‖a,b‖v for two handles of the same partition.
func (s *Space) RefDist(a, b PointRef) float64 {
	if a.V != b.V || !a.ok || !b.ok {
		return math.Inf(1)
	}
	part := &s.parts[a.V]
	if part.Kind == Staircase {
		if a.P.Floor != b.P.Floor {
			return part.StairLength
		}
		return a.P.XY().Dist(b.P.XY())
	}
	if part.convex {
		return a.P.XY().Dist(b.P.XY())
	}
	return a.src.DistToSource(b.src)
}

// RefToDoor returns ‖a,d‖v for a handle and a door of its partition.
// Geodesics within a partition are symmetric, so this also serves as the
// door-to-point distance.
func (s *Space) RefToDoor(a PointRef, d DoorID) float64 {
	if !a.ok {
		return math.Inf(1)
	}
	i := s.doorIndexIn(a.V, d)
	if i < 0 {
		return math.Inf(1)
	}
	part := &s.parts[a.V]
	door := &s.doors[d]
	if part.Kind == Staircase {
		if a.P.Floor != door.Floor {
			return part.StairLength
		}
		return a.P.XY().Dist(door.P)
	}
	if part.convex {
		return a.P.XY().Dist(door.P)
	}
	return a.src.DistToAnchor(int(s.doorAnchor[a.V][i]))
}
