package indoor_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"indoorsq/internal/indoor"
	"indoorsq/internal/testspaces"
)

// allSpaces returns the fixture spaces the cache tests sweep: convex
// partitions (Strip), a concave hall (LHall), a staircase with cross-floor
// doors (TwoFloor), and a multi-floor concave grid.
func allSpaces() map[string]*indoor.Space {
	return map[string]*indoor.Space{
		"strip":    testspaces.NewStrip().Space,
		"lhall":    testspaces.NewLHall().Space,
		"twofloor": testspaces.NewTwoFloor().Space,
		"gridcc":   testspaces.RandomGridConcave(7, 4, 4, 2, 3),
	}
}

// TestDistCacheBitIdentical sweeps every partition and every ordered door
// pair (own and foreign doors alike) and requires the cached distance to be
// bit-for-bit the uncached one, on both the filling lookup and the
// subsequent hit.
func TestDistCacheBitIdentical(t *testing.T) {
	for name, sp := range allSpaces() {
		t.Run(name, func(t *testing.T) {
			nd := sp.NumDoors()
			for vi := 0; vi < sp.NumPartitions(); vi++ {
				v := indoor.PartitionID(vi)
				for di := 0; di < nd; di++ {
					for dj := 0; dj < nd; dj++ {
						a, b := indoor.DoorID(di), indoor.DoorID(dj)
						want := sp.WithinDoors(v, a, b)
						got, _ := sp.WithinDoorsCached(v, a, b)
						if math.Float64bits(got) != math.Float64bits(want) {
							t.Fatalf("v=%d ‖%d,%d‖: cached %v != uncached %v", v, a, b, got, want)
						}
						got2, hit := sp.WithinDoorsCached(v, a, b)
						if !hit {
							t.Fatalf("v=%d ‖%d,%d‖: second lookup not a hit", v, a, b)
						}
						if math.Float64bits(got2) != math.Float64bits(want) {
							t.Fatalf("v=%d ‖%d,%d‖: hit value %v != uncached %v", v, a, b, got2, want)
						}
					}
				}
			}
		})
	}
}

// TestDistCacheCrossFloorInf pins the staircase semantics: distances between
// the stair's floor doors are the stair length, and pairs in a partition
// that owns neither door are +Inf without allocating that partition's matrix.
func TestDistCacheCrossFloorInf(t *testing.T) {
	f := testspaces.NewTwoFloor()
	sp := f.Space

	if d, _ := sp.WithinDoorsCached(f.Stair, f.DS0, f.DS1); d != 5 {
		t.Fatalf("stair DS0->DS1 = %g, want 5", d)
	}
	// DS1 is on floor 1; Hall0 does not own it.
	if d, hit := sp.WithinDoorsCached(f.Hall0, f.DA0, f.DS1); !math.IsInf(d, 1) || !hit {
		t.Fatalf("foreign pair = (%g,%v), want (+Inf,hit)", d, hit)
	}
}

// TestDistCacheLazy verifies nothing is resident before the first lookup and
// that residency accrues per touched partition only.
func TestDistCacheLazy(t *testing.T) {
	f := testspaces.NewStrip()
	c := f.Space.DistCache()

	if parts, cells := c.Filled(); parts != 0 || cells != 0 {
		t.Fatalf("fresh cache has %d parts / %d cells filled", parts, cells)
	}
	if sz := c.SizeBytes(); sz != 0 {
		t.Fatalf("fresh cache SizeBytes = %d, want 0", sz)
	}

	f.Space.WithinDoorsCached(f.Hall, f.D1, f.D4)
	parts, cells := c.Filled()
	if parts != 1 {
		t.Fatalf("after one lookup: %d partitions allocated, want 1", parts)
	}
	if cells != 1 {
		t.Fatalf("after one lookup: %d cells filled, want 1", cells)
	}
	if c.SizeBytes() <= 0 {
		t.Fatalf("after one lookup: SizeBytes = %d, want > 0", c.SizeBytes())
	}
	st := c.Stats()
	if st.Misses != 1 || st.Fills != 1 {
		t.Fatalf("stats = %+v, want one miss and one fill", st)
	}
}

// TestDistCacheConcurrent hammers one cache from many goroutines over random
// (partition, door, door) triples — run under -race in tier-1 — and checks
// every returned value against the uncached kernel, plus counter sanity.
func TestDistCacheConcurrent(t *testing.T) {
	sp := testspaces.RandomGridConcave(11, 5, 5, 2, 4)
	nd, np := sp.NumDoors(), sp.NumPartitions()

	const workers = 8
	const perWorker = 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				v := indoor.PartitionID(rng.Intn(np))
				di := indoor.DoorID(rng.Intn(nd))
				dj := indoor.DoorID(rng.Intn(nd))
				got, _ := sp.WithinDoorsCached(v, di, dj)
				want := sp.WithinDoors(v, di, dj)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("v=%d ‖%d,%d‖: cached %v != uncached %v", v, di, dj, got, want)
					return
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()

	st := sp.DistCache().Stats()
	if total := st.Hits + st.Misses; total != workers*perWorker {
		t.Fatalf("hits+misses = %d, want %d", total, workers*perWorker)
	}
	_, cells := sp.DistCache().Filled()
	if int64(cells) != st.Fills {
		t.Fatalf("filled cells = %d, fills counter = %d", cells, st.Fills)
	}
	if st.Fills > st.Misses {
		t.Fatalf("fills %d > misses %d", st.Fills, st.Misses)
	}
}

// TestDistCacheZeroAllocSteadyState verifies the acceptance criterion that a
// warm cached lookup allocates nothing.
func TestDistCacheZeroAllocSteadyState(t *testing.T) {
	f := testspaces.NewLHall()
	sp := f.Space
	v := f.Hall
	doors := sp.Partition(v).Doors
	for _, a := range doors { // warm every pair
		for _, b := range doors {
			sp.WithinDoorsCached(v, a, b)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		for _, a := range doors {
			for _, b := range doors {
				sp.WithinDoorsCached(v, a, b)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("warm cached lookups allocate %.1f objects/run, want 0", allocs)
	}
}
