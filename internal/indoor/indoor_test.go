package indoor_test

import (
	"math"
	"testing"

	"indoorsq/internal/geom"
	"indoorsq/internal/indoor"
	"indoorsq/internal/testspaces"
)

func TestHostPartition(t *testing.T) {
	f := testspaces.NewStrip()
	s := f.Space
	cases := []struct {
		p    indoor.Point
		want indoor.PartitionID
	}{
		{indoor.At(2, 8, 0), f.R1},
		{indoor.At(7, 8, 0), f.R2},
		{indoor.At(10, 5, 0), f.Hall},
		{indoor.At(15, 2, 0), f.R7},
	}
	for _, c := range cases {
		got, ok := s.HostPartition(c.p)
		if !ok || got != c.want {
			t.Errorf("HostPartition(%v) = %v,%v, want %v", c.p, got, ok, c.want)
		}
	}
	if _, ok := s.HostPartition(indoor.At(100, 100, 0)); ok {
		t.Error("point outside the space should have no host")
	}
	if _, ok := s.HostPartition(indoor.At(2, 8, 5)); ok {
		t.Error("point on a nonexistent floor should have no host")
	}
}

func TestTopologyMappings(t *testing.T) {
	f := testspaces.NewStrip()
	s := f.Space

	hall := s.Partition(f.Hall)
	if len(hall.Doors) != 7 {
		t.Fatalf("hall has %d doors, want 7", len(hall.Doors))
	}
	if len(hall.Enter) != 7 || len(hall.Leave) != 7 {
		t.Fatalf("hall Enter/Leave = %d/%d, want 7/7", len(hall.Enter), len(hall.Leave))
	}

	// One-way door D8: R6 -> R7 only.
	d8 := s.Door(f.D8)
	if d8.Bidirectional() {
		t.Fatal("D8 should be unidirectional")
	}
	if len(d8.Enterable) != 1 || d8.Enterable[0] != f.R7 {
		t.Fatalf("D2P-enter(D8) = %v, want [R7]", d8.Enterable)
	}
	if len(d8.Leaveable) != 1 || d8.Leaveable[0] != f.R6 {
		t.Fatalf("D2P-leave(D8) = %v, want [R6]", d8.Leaveable)
	}
	if !s.CanTraverse(f.D8, f.R6, f.R7) {
		t.Fatal("should be able to traverse D8 from R6 to R7")
	}
	if s.CanTraverse(f.D8, f.R7, f.R6) {
		t.Fatal("must not traverse D8 from R7 to R6")
	}

	// R6: enter via D6 and leave via D6 or D8.
	r6 := s.Partition(f.R6)
	if len(r6.Enter) != 1 || r6.Enter[0] != f.D6 {
		t.Fatalf("P2D-enter(R6) = %v, want [D6]", r6.Enter)
	}
	if len(r6.Leave) != 2 {
		t.Fatalf("P2D-leave(R6) = %v, want two doors", r6.Leave)
	}
	d2 := s.Door(f.D2)
	if !d2.Bidirectional() {
		t.Fatal("D2 should be bidirectional")
	}
}

func TestWithinPoints(t *testing.T) {
	f := testspaces.NewStrip()
	s := f.Space
	// Convex partitions: Euclidean.
	d := s.WithinPoints(f.Hall, indoor.At(0, 5, 0), indoor.At(20, 5, 0))
	if math.Abs(d-20) > 1e-9 {
		t.Fatalf("WithinPoints hall = %g, want 20", d)
	}
	// Point outside partition.
	if d := s.WithinPoints(f.R1, indoor.At(2, 2, 0), indoor.At(2, 8, 0)); !math.IsInf(d, 1) {
		t.Fatalf("outside point should give +Inf, got %g", d)
	}
	// Wrong floor.
	if d := s.WithinPoints(f.R1, indoor.At(2, 8, 3), indoor.At(2, 8, 0)); !math.IsInf(d, 1) {
		t.Fatalf("wrong floor should give +Inf, got %g", d)
	}
}

func TestWithinPointsConcave(t *testing.T) {
	f := testspaces.NewLHall()
	s := f.Space
	a, b := indoor.At(1, 7, 0), indoor.At(9, 1, 0)
	// Geodesic bends at the reflex corner (2,2).
	want := a.XY().Dist(geom.Pt(2, 2)) + geom.Pt(2, 2).Dist(b.XY())
	if d := s.WithinPoints(f.Hall, a, b); math.Abs(d-want) > 1e-6 {
		t.Fatalf("concave WithinPoints = %g, want %g", d, want)
	}
}

func TestWithinDoors(t *testing.T) {
	f := testspaces.NewStrip()
	s := f.Space
	if d := s.WithinDoors(f.Hall, f.D1, f.D4); math.Abs(d-15) > 1e-9 {
		t.Fatalf("WithinDoors(D1,D4) = %g, want 15", d)
	}
	if d := s.WithinDoors(f.Hall, f.D1, f.D1); d != 0 {
		t.Fatalf("WithinDoors(D1,D1) = %g, want 0", d)
	}
	// D8 is not a hall door.
	if d := s.WithinDoors(f.Hall, f.D1, f.D8); !math.IsInf(d, 1) {
		t.Fatalf("WithinDoors with foreign door = %g, want +Inf", d)
	}
}

func TestWithinDoorsConcave(t *testing.T) {
	f := testspaces.NewLHall()
	s := f.Space
	// DV (1,8) to DH (10,1) around the corner (2,2).
	want := geom.Pt(1, 8).Dist(geom.Pt(2, 2)) + geom.Pt(2, 2).Dist(geom.Pt(10, 1))
	if d := s.WithinDoors(f.Hall, f.DV, f.DH); math.Abs(d-want) > 1e-6 {
		t.Fatalf("concave WithinDoors = %g, want %g", d, want)
	}
}

func TestWithinPointDoor(t *testing.T) {
	f := testspaces.NewStrip()
	s := f.Space
	if d := s.WithinPointDoor(f.R1, indoor.At(2.5, 8, 0), f.D1); math.Abs(d-2) > 1e-9 {
		t.Fatalf("WithinPointDoor = %g, want 2", d)
	}
	if d := s.WithinPointDoor(f.R1, indoor.At(2.5, 8, 0), f.D2); !math.IsInf(d, 1) {
		t.Fatalf("foreign door should give +Inf, got %g", d)
	}
}

func TestMaxReach(t *testing.T) {
	f := testspaces.NewStrip()
	s := f.Space
	// From D1 at (2.5,6) inside R1 [0,6]x[5,10]: farthest corner is (0,10)
	// or (5,10), both at dist sqrt(2.5^2+4^2).
	want := math.Hypot(2.5, 4)
	if d := s.MaxReach(f.D1, f.R1); math.Abs(d-want) > 1e-9 {
		t.Fatalf("MaxReach(D1,R1) = %g, want %g", d, want)
	}
	// D8 is not enterable into R6 (one-way R6->R7).
	if d := s.MaxReach(f.D8, f.R6); !math.IsInf(d, 1) {
		t.Fatalf("MaxReach through non-enterable door = %g, want +Inf", d)
	}
	if d := s.MaxReach(f.D8, f.R7); math.IsInf(d, 1) {
		t.Fatal("MaxReach(D8,R7) should be finite")
	}
}

func TestStaircaseDistances(t *testing.T) {
	f := testspaces.NewTwoFloor()
	s := f.Space
	if d := s.WithinDoors(f.Stair, f.DS0, f.DS1); d != 5 {
		t.Fatalf("stair door-to-door = %g, want 5 (stair length)", d)
	}
	if d := s.WithinDoors(f.Stair, f.DS0, f.DS0); d != 0 {
		t.Fatalf("stair same door = %g, want 0", d)
	}
	st := s.Partition(f.Stair)
	if st.Kind != indoor.Staircase || st.TopFloor != 1 {
		t.Fatalf("staircase metadata wrong: %+v", st)
	}
}

func TestEuclideanLB(t *testing.T) {
	f := testspaces.NewTwoFloor()
	s := f.Space
	a := indoor.At(0, 5, 0)
	b := indoor.At(10, 5, 0)
	if d := s.EuclideanLB(a, b); math.Abs(d-10) > 1e-9 {
		t.Fatalf("same-floor LB = %g, want 10", d)
	}
	c := indoor.At(0, 5, 1)
	if d := s.EuclideanLB(a, c); math.Abs(d-5) > 1e-9 {
		t.Fatalf("cross-floor LB = %g, want 5 (stair length)", d)
	}
}

func TestBuilderValidation(t *testing.T) {
	// Door outside its partition.
	b := indoor.NewBuilder("bad", 1)
	v1 := b.AddRoom(0, geom.RectPoly(geom.R(0, 0, 5, 5)))
	v2 := b.AddRoom(0, geom.RectPoly(geom.R(5, 0, 10, 5)))
	d := b.AddDoor(geom.Pt(50, 50), 0)
	b.ConnectBoth(d, v1, v2)
	if _, err := b.Build(); err == nil {
		t.Fatal("door outside partitions must fail Build")
	}

	// Unconnected door.
	b2 := indoor.NewBuilder("bad2", 1)
	v := b2.AddRoom(0, geom.RectPoly(geom.R(0, 0, 5, 5)))
	_ = v
	b2.AddDoor(geom.Pt(2, 0), 0)
	if _, err := b2.Build(); err == nil {
		t.Fatal("unconnected door must fail Build")
	}

	// Partition without doors.
	b3 := indoor.NewBuilder("bad3", 1)
	b3.AddRoom(0, geom.RectPoly(geom.R(0, 0, 5, 5)))
	if _, err := b3.Build(); err == nil {
		t.Fatal("doorless partition must fail Build")
	}

	// Door on the wrong floor.
	b4 := indoor.NewBuilder("bad4", 2)
	w1 := b4.AddRoom(0, geom.RectPoly(geom.R(0, 0, 5, 5)))
	w2 := b4.AddRoom(0, geom.RectPoly(geom.R(5, 0, 10, 5)))
	d4 := b4.AddDoor(geom.Pt(5, 2), 1)
	b4.ConnectBoth(d4, w1, w2)
	if _, err := b4.Build(); err == nil {
		t.Fatal("door floor mismatch must fail Build")
	}
}

func TestSpaceStats(t *testing.T) {
	f := testspaces.NewStrip()
	st := f.Space.SpaceStats(4)
	if st.Partitions != 8 || st.Doors != 8 {
		t.Fatalf("stats = %d partitions %d doors, want 8/8", st.Partitions, st.Doors)
	}
	if st.Hallways != 1 || st.Rooms != 7 || st.Staircases != 0 {
		t.Fatalf("kind counts wrong: %+v", st)
	}
	if st.Crucial != 1 { // only the hall has > 4 doors
		t.Fatalf("crucial = %d, want 1", st.Crucial)
	}
	if st.Max != 7 {
		t.Fatalf("max #dv = %d, want 7", st.Max)
	}
	if st.Q2 != 1 {
		t.Fatalf("median #dv = %d, want 1", st.Q2)
	}
	if st.Length != 20 || st.Width != 10 {
		t.Fatalf("extent = %g x %g, want 20 x 10", st.Length, st.Width)
	}
	if st.Hist[1] != 5 { // R1..R5 have one door; R6/R7 also see D8
		t.Fatalf("Hist[1] = %d, want 5", st.Hist[1])
	}
}

func TestRandomGridBuilds(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		sp := testspaces.RandomGrid(seed, 3, 4, 2, 5, 0.3)
		if sp.NumPartitions() == 0 || sp.NumDoors() == 0 {
			t.Fatalf("seed %d: empty space", seed)
		}
		// Every partition reachable via doors: verified indirectly by Build
		// having succeeded plus spanning-tree construction; spot check the
		// staircase exists.
		st := sp.SpaceStats(6)
		if st.Staircases != 1 {
			t.Fatalf("seed %d: staircases = %d, want 1", seed, st.Staircases)
		}
	}
}

func TestSizeAccounting(t *testing.T) {
	f := testspaces.NewLHall()
	if f.Space.BaseSizeBytes() <= 0 {
		t.Fatal("BaseSizeBytes should be positive")
	}
	if f.Space.GeomSizeBytes() <= 0 {
		t.Fatal("GeomSizeBytes should be positive for a concave hallway")
	}
}

func TestKindString(t *testing.T) {
	if indoor.Room.String() != "room" || indoor.Hallway.String() != "hallway" ||
		indoor.Staircase.String() != "staircase" {
		t.Fatal("Kind.String mismatch")
	}
}
