// Package indoor implements the indoor space model shared by all five
// model/indexes in the study: partitions (rooms, hallways, staircases),
// doors (including unidirectional doors and virtual doors created by
// decomposition), and the topology mappings of Sec. 2.1 of the paper —
// D2P⊢ / D2P⊣ / D2P for doors and P2D⊢ / P2D⊣ / P2D for partitions.
//
// A Space is immutable once built; it supplies the raw geometric and
// topological facts (host-partition lookup, intra-partition distances,
// door-to-door distances within a partition, the fdv max-reach mapping).
// Each model/index engine layers its own precomputed structures on top.
package indoor

import (
	"fmt"

	"indoorsq/internal/geom"
)

// PartitionID identifies a partition within one Space.
type PartitionID int32

// DoorID identifies a door within one Space.
type DoorID int32

// NoPartition is the sentinel for "no partition".
const NoPartition PartitionID = -1

// NoDoor is the sentinel for "no door".
const NoDoor DoorID = -1

// Kind classifies a partition.
type Kind uint8

// Partition kinds.
const (
	Room Kind = iota
	Hallway
	Staircase
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Room:
		return "room"
	case Hallway:
		return "hallway"
	case Staircase:
		return "staircase"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Point is an indoor location: planar coordinates plus a floor number.
type Point struct {
	X, Y  float64
	Floor int16
}

// At is shorthand for Point{x, y, floor}.
func At(x, y float64, floor int16) Point { return Point{X: x, Y: y, Floor: floor} }

// XY projects p onto the plane.
func (p Point) XY() geom.Point { return geom.Point{X: p.X, Y: p.Y} }

// Partition is an indoor partition: a room, hallway piece, or staircase.
// Staircases span two floors: their polygon is the footprint, and travel
// between their doors on different floors costs StairLength.
type Partition struct {
	ID       PartitionID
	Kind     Kind
	Floor    int16 // the (lower, for staircases) floor this partition is on
	TopFloor int16 // == Floor except for staircases

	Poly geom.Polygon
	MBR  geom.Rect

	// StairLength is the walking length of a staircase between its two
	// floors; zero for non-staircases.
	StairLength float64

	// Doors is P2D(v): all doors associated with this partition.
	Doors []DoorID
	// Enter is P2D⊢(v): doors through which one can enter this partition.
	Enter []DoorID
	// Leave is P2D⊣(v): doors through which one can leave this partition.
	Leave []DoorID

	convex bool
}

// Convex reports whether the partition's footprint is convex, in which case
// intra-partition distances are Euclidean.
func (v *Partition) Convex() bool { return v.convex }

// Door is a door or an open segment between two partitions, represented by
// its center point (Sec. 2.1). Virtual doors are created by hallway
// decomposition. A unidirectional door has disjoint Enterable/Leaveable sets.
type Door struct {
	ID      DoorID
	P       geom.Point
	Floor   int16
	Virtual bool

	// Enterable is D2P⊢(d): partitions one can enter through this door.
	Enterable []PartitionID
	// Leaveable is D2P⊣(d): partitions one can leave through this door.
	Leaveable []PartitionID
	// Parts is the union of Enterable and Leaveable, without duplicates.
	Parts []PartitionID
}

// Bidirectional reports whether the door can be crossed in both directions.
func (d *Door) Bidirectional() bool {
	return len(d.Enterable) == len(d.Parts) && len(d.Leaveable) == len(d.Parts)
}

// Space is an immutable indoor space: the partitions, doors, and topology
// mappings of one venue.
type Space struct {
	Name   string
	Floors int

	parts []Partition
	doors []Door

	byFloor [][]PartitionID // partitions per floor (staircases on both)

	vg         []*geom.VGraph // per partition; nil when convex or staircase
	doorAnchor [][]int32      // per partition: anchor index per Doors entry
	maxReach   [][]float64    // fdv: per partition, aligned with Doors

	// doorIdx[v] maps a door id to its position in parts[v].Doors — the
	// O(1) lookup behind every WithinDoors/WithinPointDoor call.
	doorIdx []map[DoorID]int32

	// dcache lazily memoizes door-pair distances; see distcache.go.
	dcache *DistCache
}

// NumPartitions returns the number of partitions.
func (s *Space) NumPartitions() int { return len(s.parts) }

// NumDoors returns the number of doors.
func (s *Space) NumDoors() int { return len(s.doors) }

// Partition returns the partition with the given id.
func (s *Space) Partition(id PartitionID) *Partition { return &s.parts[id] }

// Door returns the door with the given id.
func (s *Space) Door(id DoorID) *Door { return &s.doors[id] }

// Partitions returns the full partition slice; callers must not modify it.
func (s *Space) Partitions() []Partition { return s.parts }

// Doors returns the full door slice; callers must not modify it.
func (s *Space) Doors() []Door { return s.doors }

// OnFloor returns the ids of partitions present on the given floor
// (staircases appear on both of their floors).
func (s *Space) OnFloor(floor int16) []PartitionID {
	if int(floor) < 0 || int(floor) >= len(s.byFloor) {
		return nil
	}
	return s.byFloor[floor]
}

// HostPartition locates the partition containing p by sequentially scanning
// the partitions of p's floor — the initialization step used by IDMODEL,
// IDINDEX, IP-TREE and VIP-TREE (Sec. 4.1). Non-staircase partitions take
// precedence when footprints touch.
func (s *Space) HostPartition(p Point) (PartitionID, bool) {
	host := NoPartition
	for _, id := range s.OnFloor(p.Floor) {
		v := &s.parts[id]
		if !v.MBR.Contains(p.XY()) || !v.Poly.Contains(p.XY()) {
			continue
		}
		if v.Kind != Staircase {
			return id, true
		}
		if host == NoPartition {
			host = id
		}
	}
	return host, host != NoPartition
}

// Contains reports whether p is a valid indoor point of the space.
func (s *Space) Contains(p Point) bool {
	_, ok := s.HostPartition(p)
	return ok
}
