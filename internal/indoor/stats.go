package indoor

import "sort"

// Stats summarizes a space the way Table 4 of the paper does: scale of
// space, and quartile statistics of #dv, the number of doors per partition.
type Stats struct {
	Floors     int
	Doors      int
	Partitions int
	Rooms      int
	Hallways   int
	Staircases int
	// Crucial is the number of crucial partitions: partitions whose door
	// count exceeds the gamma threshold passed to SpaceStats.
	Crucial int
	// Length and Width are the planar extents of the space footprint.
	Length, Width float64
	// Q1, Q2, Q3 and Max summarize the #dv distribution.
	Q1, Q2, Q3, Max int
	// Hist maps #dv to the number of partitions with that many doors
	// (the Figure 7 distribution).
	Hist map[int]int
}

// SpaceStats computes dataset statistics with the given crucial-partition
// threshold gamma (a partition is crucial when #dv > gamma).
func (s *Space) SpaceStats(gamma int) Stats {
	st := Stats{
		Floors: s.Floors,
		Doors:  len(s.doors),
		Hist:   make(map[int]int),
	}
	counts := make([]int, 0, len(s.parts))
	var bounds *Partition
	for i := range s.parts {
		v := &s.parts[i]
		st.Partitions++
		switch v.Kind {
		case Room:
			st.Rooms++
		case Hallway:
			st.Hallways++
		case Staircase:
			st.Staircases++
		}
		n := len(v.Doors)
		counts = append(counts, n)
		st.Hist[n]++
		if n > gamma {
			st.Crucial++
		}
		if bounds == nil {
			bounds = v
		}
	}
	if len(s.parts) > 0 {
		mbr := s.parts[0].Poly.Bounds()
		for i := 1; i < len(s.parts); i++ {
			mbr = mbr.Union(s.parts[i].Poly.Bounds())
		}
		st.Length = mbr.Width()
		st.Width = mbr.Height()
		if st.Width > st.Length {
			st.Length, st.Width = st.Width, st.Length
		}
	}
	sort.Ints(counts)
	st.Q1 = nearestRank(counts, 0.25)
	st.Q2 = nearestRank(counts, 0.50)
	st.Q3 = nearestRank(counts, 0.75)
	if n := len(counts); n > 0 {
		st.Max = counts[n-1]
	}
	return st
}

// nearestRank returns the q-quantile of sorted xs using the nearest-rank
// method.
func nearestRank(xs []int, q float64) int {
	if len(xs) == 0 {
		return 0
	}
	r := int(q*float64(len(xs)) + 0.5)
	if r < 1 {
		r = 1
	}
	if r > len(xs) {
		r = len(xs)
	}
	return xs[r-1]
}
