package indoor

import (
	"fmt"

	"indoorsq/internal/geom"
)

// Builder assembles a Space incrementally. Create one with NewBuilder, add
// partitions and doors, connect them, then call Build. A Builder must not be
// reused after Build succeeds.
type Builder struct {
	name   string
	floors int
	parts  []Partition
	doors  []Door
}

// NewBuilder returns a Builder for a space with the given number of floors
// (floors are numbered 0..floors-1).
func NewBuilder(name string, floors int) *Builder {
	return &Builder{name: name, floors: floors}
}

// AddPartition adds a room or hallway with the given footprint on a floor
// and returns its id.
func (b *Builder) AddPartition(kind Kind, floor int16, poly geom.Polygon) PartitionID {
	id := PartitionID(len(b.parts))
	b.parts = append(b.parts, Partition{
		ID:       id,
		Kind:     kind,
		Floor:    floor,
		TopFloor: floor,
		Poly:     poly,
	})
	return id
}

// AddRoom adds a room partition.
func (b *Builder) AddRoom(floor int16, poly geom.Polygon) PartitionID {
	return b.AddPartition(Room, floor, poly)
}

// AddHallway adds a hallway partition.
func (b *Builder) AddHallway(floor int16, poly geom.Polygon) PartitionID {
	return b.AddPartition(Hallway, floor, poly)
}

// AddStair adds a staircase spanning floors low..high with the given
// footprint; length is the walking distance between its floor ends.
func (b *Builder) AddStair(low, high int16, poly geom.Polygon, length float64) PartitionID {
	id := PartitionID(len(b.parts))
	b.parts = append(b.parts, Partition{
		ID:          id,
		Kind:        Staircase,
		Floor:       low,
		TopFloor:    high,
		Poly:        poly,
		StairLength: length,
	})
	return id
}

// AddDoor adds a door at point p on the given floor and returns its id.
// The door is unusable until connected.
func (b *Builder) AddDoor(p geom.Point, floor int16) DoorID {
	id := DoorID(len(b.doors))
	b.doors = append(b.doors, Door{ID: id, P: p, Floor: floor})
	return id
}

// AddVirtualDoor adds a decomposition-created open segment represented by
// its center point.
func (b *Builder) AddVirtualDoor(p geom.Point, floor int16) DoorID {
	id := b.AddDoor(p, floor)
	b.doors[id].Virtual = true
	return id
}

// ConnectBoth makes door d a bidirectional connection between v1 and v2.
func (b *Builder) ConnectBoth(d DoorID, v1, v2 PartitionID) {
	b.ConnectOneWay(d, v1, v2)
	b.ConnectOneWay(d, v2, v1)
}

// ConnectOneWay makes door d traversable from partition `from` into
// partition `to` (only). Calling it twice with swapped arguments is
// equivalent to ConnectBoth.
func (b *Builder) ConnectOneWay(d DoorID, from, to PartitionID) {
	door := &b.doors[d]
	door.Leaveable = appendUniqueP(door.Leaveable, from)
	door.Enterable = appendUniqueP(door.Enterable, to)
	door.Parts = appendUniqueP(appendUniqueP(door.Parts, from), to)

	fp := &b.parts[from]
	fp.Leave = appendUniqueD(fp.Leave, d)
	fp.Doors = appendUniqueD(fp.Doors, d)
	tp := &b.parts[to]
	tp.Enter = appendUniqueD(tp.Enter, d)
	tp.Doors = appendUniqueD(tp.Doors, d)
}

func appendUniqueP(s []PartitionID, v PartitionID) []PartitionID {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

func appendUniqueD(s []DoorID, d DoorID) []DoorID {
	for _, x := range s {
		if x == d {
			return s
		}
	}
	return append(s, d)
}

// Build validates the assembled space, derives the topology mappings and the
// geometric acceleration structures, and returns the immutable Space.
func (b *Builder) Build() (*Space, error) {
	s := &Space{
		Name:   b.name,
		Floors: b.floors,
		parts:  b.parts,
		doors:  b.doors,
	}
	if err := s.validate(); err != nil {
		return nil, err
	}

	s.byFloor = make([][]PartitionID, b.floors)
	s.vg = make([]*geom.VGraph, len(s.parts))
	s.doorAnchor = make([][]int32, len(s.parts))
	s.maxReach = make([][]float64, len(s.parts))
	s.doorIdx = make([]map[DoorID]int32, len(s.parts))

	for i := range s.parts {
		v := &s.parts[i]
		v.MBR = v.Poly.Bounds()
		v.convex = v.Poly.IsConvex()
		for f := v.Floor; f <= v.TopFloor; f++ {
			s.byFloor[f] = append(s.byFloor[f], v.ID)
		}

		idx := make(map[DoorID]int32, len(v.Doors))
		for j, d := range v.Doors {
			idx[d] = int32(j)
		}
		s.doorIdx[i] = idx

		if !v.convex && v.Kind != Staircase {
			anchors := make([]geom.Point, len(v.Doors))
			idx := make([]int32, len(v.Doors))
			for j, d := range v.Doors {
				anchors[j] = s.doors[d].P
				idx[j] = int32(j)
			}
			s.vg[i] = geom.NewVGraph(v.Poly, anchors)
			s.doorAnchor[i] = idx
		}

		reach := make([]float64, len(v.Doors))
		for j, d := range v.Doors {
			switch {
			case v.Kind == Staircase:
				reach[j] = v.StairLength
			case v.convex:
				reach[j] = v.Poly.MaxDistFrom(s.doors[d].P)
			default:
				reach[j] = s.vg[i].MaxDistFrom(s.doors[d].P)
			}
		}
		s.maxReach[i] = reach
	}
	s.dcache = newDistCache(s)
	return s, nil
}

// validate checks structural consistency of the space before derivation.
func (s *Space) validate() error {
	if s.Floors <= 0 {
		return fmt.Errorf("indoor: space %q has %d floors", s.Name, s.Floors)
	}
	for i := range s.parts {
		v := &s.parts[i]
		if err := v.Poly.Validate(); err != nil {
			return fmt.Errorf("indoor: partition %d: %w", v.ID, err)
		}
		if int(v.Floor) < 0 || int(v.TopFloor) >= s.Floors || v.Floor > v.TopFloor {
			return fmt.Errorf("indoor: partition %d has bad floor range [%d,%d]", v.ID, v.Floor, v.TopFloor)
		}
		if v.Kind == Staircase && v.StairLength <= 0 {
			return fmt.Errorf("indoor: staircase %d has non-positive length", v.ID)
		}
		if len(v.Doors) == 0 {
			return fmt.Errorf("indoor: partition %d has no doors", v.ID)
		}
	}
	for i := range s.doors {
		d := &s.doors[i]
		if len(d.Parts) != 2 {
			return fmt.Errorf("indoor: door %d connects %d partitions, want 2", d.ID, len(d.Parts))
		}
		if len(d.Enterable) == 0 || len(d.Leaveable) == 0 {
			return fmt.Errorf("indoor: door %d is not traversable", d.ID)
		}
		if int(d.Floor) < 0 || int(d.Floor) >= s.Floors {
			return fmt.Errorf("indoor: door %d on bad floor %d", d.ID, d.Floor)
		}
		for _, vid := range d.Parts {
			v := &s.parts[vid]
			if v.Kind != Staircase && d.Floor != v.Floor {
				return fmt.Errorf("indoor: door %d (floor %d) attached to partition %d on floor %d",
					d.ID, d.Floor, v.ID, v.Floor)
			}
			if v.Kind == Staircase && (d.Floor < v.Floor || d.Floor > v.TopFloor) {
				return fmt.Errorf("indoor: door %d (floor %d) outside staircase %d floors [%d,%d]",
					d.ID, d.Floor, v.ID, v.Floor, v.TopFloor)
			}
			if !v.Poly.Contains(d.P) {
				return fmt.Errorf("indoor: door %d at %v lies outside partition %d", d.ID, d.P, v.ID)
			}
		}
	}
	return nil
}

// GeomSizeBytes returns the resident size of the shared geometric
// acceleration structures (per-partition visibility graphs and fdv arrays).
// Engines fold this into their model-size accounting.
func (s *Space) GeomSizeBytes() int64 {
	var sz int64
	for i := range s.parts {
		if s.vg[i] != nil {
			sz += s.vg[i].SizeBytes()
		}
		sz += int64(len(s.maxReach[i])) * 8
	}
	return sz
}

// BaseSizeBytes returns the resident size of the raw space representation
// (partitions, polygons, doors, topology mappings), which every model/index
// shares.
func (s *Space) BaseSizeBytes() int64 {
	var sz int64
	for i := range s.parts {
		v := &s.parts[i]
		sz += 64 // fixed fields
		sz += int64(len(v.Poly)) * 16
		sz += int64(len(v.Doors)+len(v.Enter)+len(v.Leave)) * 4
	}
	for i := range s.doors {
		d := &s.doors[i]
		sz += 32
		sz += int64(len(d.Enterable)+len(d.Leaveable)+len(d.Parts)) * 4
	}
	return sz
}
