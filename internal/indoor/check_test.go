package indoor_test

import (
	"testing"

	"indoorsq/internal/geom"
	"indoorsq/internal/indoor"
	"indoorsq/internal/testspaces"
)

func TestCheckCleanFixtures(t *testing.T) {
	for _, sp := range []*indoor.Space{
		testspaces.NewStrip().Space,
		testspaces.NewTwoFloor().Space,
		testspaces.NewLHall().Space,
		testspaces.RandomGrid(3, 4, 5, 2, 6, 0.2),
	} {
		if errs := sp.Check(); len(errs) != 0 {
			t.Fatalf("%s: Check = %v", sp.Name, errs)
		}
	}
}

func TestCheckDetectsOverlap(t *testing.T) {
	b := indoor.NewBuilder("overlap", 1)
	v1 := b.AddRoom(0, geom.RectPoly(geom.R(0, 0, 6, 4)))
	v2 := b.AddRoom(0, geom.RectPoly(geom.R(4, 0, 10, 4))) // overlaps v1 in [4,6]
	d := b.AddDoor(geom.Pt(5, 0), 0)
	b.ConnectBoth(d, v1, v2)
	sp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	errs := sp.Check()
	if len(errs) == 0 {
		t.Fatal("overlapping rooms must be flagged")
	}
}

func TestCheckDetectsInteriorDoor(t *testing.T) {
	b := indoor.NewBuilder("interior-door", 1)
	v1 := b.AddRoom(0, geom.RectPoly(geom.R(0, 0, 6, 4)))
	v2 := b.AddRoom(0, geom.RectPoly(geom.R(6, 0, 12, 4)))
	// Door strictly inside v1 (not on a wall).
	d := b.AddDoor(geom.Pt(3, 2), 0)
	b.ConnectOneWay(d, v1, v2)
	// Build rejects doors outside partitions but (3,2) is outside v2 ->
	// Build fails; use a point on v1's interior but v2's boundary instead.
	_ = d
	if _, err := b.Build(); err == nil {
		t.Fatal("door outside v2 must fail Build")
	}

	b2 := indoor.NewBuilder("interior-door2", 1)
	w1 := b2.AddRoom(0, geom.RectPoly(geom.R(0, 0, 6, 4)))
	w2 := b2.AddRoom(0, geom.RectPoly(geom.R(3, 4, 9, 8)))
	// (4,4) is on the shared wall; (4.5,4) too; but (3,4) is w1's boundary
	// and w2's corner - fine. Use (5,4) shared boundary: clean.
	dd := b2.AddDoor(geom.Pt(5, 4), 0)
	b2.ConnectBoth(dd, w1, w2)
	sp, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if errs := sp.Check(); len(errs) != 0 {
		t.Fatalf("clean space flagged: %v", errs)
	}
}

func TestCheckDetectsDeadEnd(t *testing.T) {
	b := indoor.NewBuilder("deadend", 1)
	hall := b.AddHallway(0, geom.RectPoly(geom.R(0, 0, 10, 4)))
	room := b.AddRoom(0, geom.RectPoly(geom.R(0, 4, 5, 8)))
	d := b.AddDoor(geom.Pt(2.5, 4), 0)
	b.ConnectOneWay(d, room, hall) // room cannot be entered
	sp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	errs := sp.Check()
	found := false
	for _, e := range errs {
		if e != nil {
			found = true
		}
	}
	if !found {
		t.Fatal("unenterable room must be flagged")
	}
}
