package indoor

import (
	"fmt"
	"math"

	"indoorsq/internal/geom"
)

// Check performs deep diagnostics on a built space beyond the structural
// validation of Build: geometric overlap between same-floor partitions,
// doors lying on the shared boundary of both their partitions, and global
// reachability of every partition through the door graph. It returns all
// problems found (nil when the space is clean). Dataset generators run it
// in their tests.
func (s *Space) Check() []error {
	var errs []error
	errs = append(errs, s.checkOverlaps()...)
	errs = append(errs, s.checkDoorBoundaries()...)
	errs = append(errs, s.checkReachability()...)
	return errs
}

// checkOverlaps reports pairs of same-floor partitions whose interiors
// intersect with positive area. Convex pairs are tested exactly on their
// bounding boxes (the datasets' convex partitions are rectangles); pairs
// involving a concave polygon are tested by probing the overlap region.
func (s *Space) checkOverlaps() []error {
	var errs []error
	for f := 0; f < s.Floors; f++ {
		ids := s.OnFloor(int16(f))
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, b := &s.parts[ids[i]], &s.parts[ids[j]]
				if a.Kind == Staircase && b.Kind == Staircase {
					// Stairwells of different floor pairs may share a shaft
					// footprint only if they overlap on this floor too.
				}
				ov := overlapRect(a.MBR, b.MBR)
				if ov.Width() <= geom.Eps || ov.Height() <= geom.Eps {
					continue
				}
				if partsOverlap(a, b, ov) {
					errs = append(errs, fmt.Errorf(
						"indoor: partitions %d and %d overlap on floor %d (box %v)",
						a.ID, b.ID, f, ov))
				}
			}
		}
	}
	return errs
}

// overlapRect returns the intersection box of two rectangles (possibly
// inverted when disjoint).
func overlapRect(a, b geom.Rect) geom.Rect {
	return geom.Rect{
		MinX: math.Max(a.MinX, b.MinX),
		MinY: math.Max(a.MinY, b.MinY),
		MaxX: math.Min(a.MaxX, b.MaxX),
		MaxY: math.Min(a.MaxY, b.MaxY),
	}
}

// partsOverlap reports whether the two partitions' interiors share area
// within the candidate box, probing a grid of interior points.
func partsOverlap(a, b *Partition, ov geom.Rect) bool {
	const n = 4
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			p := geom.Pt(
				ov.MinX+ov.Width()*float64(i)/(n+1),
				ov.MinY+ov.Height()*float64(j)/(n+1),
			)
			if interiorContains(a, p) && interiorContains(b, p) {
				return true
			}
		}
	}
	return false
}

// interiorContains reports whether p lies strictly inside the partition
// (boundary points do not count — shared walls are legal).
func interiorContains(v *Partition, p geom.Point) bool {
	if !v.Poly.Contains(p) {
		return false
	}
	for i := range v.Poly {
		if v.Poly.Edge(i).ContainsPoint(p) {
			return false
		}
	}
	return true
}

// checkDoorBoundaries verifies each door's point lies on the boundary of
// both its partitions (not strictly inside either), except within
// staircases where the door sits on the footprint edge of the other
// partition's floor.
func (s *Space) checkDoorBoundaries() []error {
	var errs []error
	for i := range s.doors {
		d := &s.doors[i]
		for _, vid := range d.Parts {
			v := &s.parts[vid]
			if !v.Poly.Contains(d.P) {
				errs = append(errs, fmt.Errorf(
					"indoor: door %d at %v outside partition %d", d.ID, d.P, vid))
				continue
			}
			if v.Kind != Staircase && interiorContains(v, d.P) {
				errs = append(errs, fmt.Errorf(
					"indoor: door %d at %v strictly inside partition %d (must be on the wall)",
					d.ID, d.P, vid))
			}
		}
	}
	return errs
}

// checkReachability verifies every partition can be entered from every
// other (ignoring direction asymmetries: it checks the undirected door
// graph, then flags partitions with no enterable or no leaveable door).
func (s *Space) checkReachability() []error {
	var errs []error
	if len(s.parts) == 0 {
		return nil
	}
	// Undirected flood fill over partitions.
	seen := make([]bool, len(s.parts))
	stack := []PartitionID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, d := range s.parts[v].Doors {
			for _, u := range s.doors[d].Parts {
				if !seen[u] {
					seen[u] = true
					count++
					stack = append(stack, u)
				}
			}
		}
	}
	if count != len(s.parts) {
		errs = append(errs, fmt.Errorf(
			"indoor: space is disconnected: %d of %d partitions reachable from partition 0",
			count, len(s.parts)))
	}
	for i := range s.parts {
		v := &s.parts[i]
		if len(v.Enter) == 0 {
			errs = append(errs, fmt.Errorf("indoor: partition %d cannot be entered", v.ID))
		}
		if len(v.Leave) == 0 {
			errs = append(errs, fmt.Errorf("indoor: partition %d cannot be left", v.ID))
		}
	}
	return errs
}
