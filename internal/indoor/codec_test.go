package indoor_test

import (
	"bytes"
	"math"
	"testing"

	"indoorsq/internal/geom"
	"indoorsq/internal/indoor"
	"indoorsq/internal/testspaces"
)

func rectPoly(x0, y0, x1, y1 float64) geom.Polygon {
	return geom.RectPoly(geom.R(x0, y0, x1, y1))
}

func pt(x, y float64) geom.Point { return geom.Pt(x, y) }

func roundTrip(t *testing.T, sp *indoor.Space) *indoor.Space {
	t.Helper()
	var buf bytes.Buffer
	if err := indoor.EncodeSpace(&buf, sp); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := indoor.DecodeSpace(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func TestCodecRoundTripStrip(t *testing.T) {
	f := testspaces.NewStrip()
	got := roundTrip(t, f.Space)
	a := f.Space.SpaceStats(4)
	b := got.SpaceStats(4)
	if a.Doors != b.Doors || a.Partitions != b.Partitions ||
		a.Hallways != b.Hallways || a.Crucial != b.Crucial ||
		a.Q1 != b.Q1 || a.Q2 != b.Q2 || a.Q3 != b.Q3 || a.Max != b.Max {
		t.Fatalf("stats changed: %+v vs %+v", a, b)
	}
	// Directionality survives: D8 remains one-way.
	if got.Door(f.D8).Bidirectional() {
		t.Fatal("one-way door became bidirectional")
	}
	// Distances identical.
	d1 := f.Space.WithinDoors(f.Hall, f.D1, f.D4)
	d2 := got.WithinDoors(f.Hall, f.D1, f.D4)
	if math.Abs(d1-d2) > 1e-12 {
		t.Fatalf("distance changed: %g vs %g", d1, d2)
	}
}

func TestCodecRoundTripTwoFloor(t *testing.T) {
	f := testspaces.NewTwoFloor()
	got := roundTrip(t, f.Space)
	if got.Floors != 2 {
		t.Fatalf("floors = %d", got.Floors)
	}
	st := got.SpaceStats(4)
	if st.Staircases != 1 {
		t.Fatalf("staircases = %d", st.Staircases)
	}
	if d := got.WithinDoors(f.Stair, f.DS0, f.DS1); d != 5 {
		t.Fatalf("stair length = %g, want 5", d)
	}
}

func TestCodecRoundTripConcave(t *testing.T) {
	f := testspaces.NewLHall()
	got := roundTrip(t, f.Space)
	want := f.Space.WithinDoors(f.Hall, f.DV, f.DH)
	if d := got.WithinDoors(f.Hall, f.DV, f.DH); math.Abs(d-want) > 1e-9 {
		t.Fatalf("concave geodesic changed: %g vs %g", d, want)
	}
	if got.Partition(f.Hall).Convex() {
		t.Fatal("concavity lost")
	}
}

func TestCodecVirtualDoorsPreserved(t *testing.T) {
	// Any dataset variant with virtual doors round-trips them.
	b := indoor.NewBuilder("vd", 1)
	v1 := b.AddHallway(0, rectPoly(0, 0, 5, 2))
	v2 := b.AddHallway(0, rectPoly(5, 0, 10, 2))
	d := b.AddVirtualDoor(pt(5, 1), 0)
	b.ConnectBoth(d, v1, v2)
	sp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, sp)
	if !got.Door(0).Virtual {
		t.Fatal("virtual flag lost")
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := indoor.DecodeSpace(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("garbage must fail to decode")
	}
	// Valid JSON, invalid space (no doors).
	if _, err := indoor.DecodeSpace(bytes.NewBufferString(
		`{"name":"x","floors":1,"partitions":[{"kind":0,"floor":0,"topFloor":0,"poly":[[0,0],[1,0],[1,1],[0,1]]}],"doors":[]}`)); err == nil {
		t.Fatal("invalid space must fail validation on decode")
	}
}
