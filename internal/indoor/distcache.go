package indoor

import (
	"math"
	"sync"
	"sync/atomic"
)

// distCacheShards is the number of allocation/counter shards of a DistCache.
// Must be a power of two; 32 keeps shard contention negligible at realistic
// worker counts while costing only a few cache lines of counters.
const distCacheShards = 32

// unfilledBits marks an unfilled cache cell. It is a quiet NaN — in fact
// the bit pattern of Go's canonical math.NaN(), which NaN-propagating
// arithmetic can reproduce — so the fill path must never store a NaN:
// withinDoorsAt canonicalizes its result to finite-or-+Inf, and DoorDist
// guards the CAS besides. Genuinely unreachable or degenerate pairs are
// stored as +Inf, distinguishable from an empty cell.
const unfilledBits = 0x7FF8_0000_0000_0001

// DistCache memoizes intra-partition door-to-door distances ‖di,dj‖v — the
// fd2d quantities of Sec. 3.1 — behind a lazy, sharded, concurrency-safe
// lookup. Nothing is precomputed at build time: per-partition matrices are
// allocated on first touch of a partition and individual cells are filled
// on first lookup of a door pair, so an engine that never asks for a
// distance never pays for it (preserving the spirit of CINDEX's
// "no precomputation" design while amortizing its on-the-fly cost).
//
// Concurrency: a cell is an atomic.Uint64 holding math.Float64bits of the
// distance, published with a plain atomic store — the computed value is a
// pure deterministic function of the immutable Space, so concurrent fills
// of the same cell store identical bits and readers can never observe a
// torn or stale value. Matrix allocation is serialized per shard
// (double-checked around the shard mutex); steady-state lookups are a map
// index plus one atomic load and allocate nothing.
type DistCache struct {
	sp *Space
	// mats[v] is partition v's lazily allocated len(Doors)^2 cell matrix.
	mats   []atomic.Pointer[doorMat]
	shards [distCacheShards]distCacheShard
}

// doorMat is one partition's door-pair matrix; cells are Float64bits with
// unfilledBits marking cells not yet computed.
type doorMat struct {
	n     int
	cells []atomic.Uint64
}

// distCacheShard carries the allocation lock and effectiveness counters of
// one shard, padded to its own cache line to keep the counters of hot
// neighboring shards from false sharing.
type distCacheShard struct {
	mu     sync.Mutex
	hits   atomic.Int64
	misses atomic.Int64
	fills  atomic.Int64
	_      [64 - 8*3]byte
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits   int64 // lookups served from a filled cell
	Misses int64 // lookups that had to compute the distance
	Fills  int64 // cells this cache was first to publish (≤ Misses under races)
}

// newDistCache returns an empty cache over sp. Called by Build; the cache
// holds no matrices until the first lookup.
func newDistCache(sp *Space) *DistCache {
	return &DistCache{sp: sp, mats: make([]atomic.Pointer[doorMat], len(sp.parts))}
}

// shard returns the shard of partition v.
func (c *DistCache) shard(v PartitionID) *distCacheShard {
	return &c.shards[uint32(v)&(distCacheShards-1)]
}

// mat returns partition v's cell matrix, allocating and publishing it on
// first touch.
func (c *DistCache) mat(v PartitionID) *doorMat {
	if m := c.mats[v].Load(); m != nil {
		return m
	}
	sh := c.shard(v)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if m := c.mats[v].Load(); m != nil {
		return m
	}
	n := len(c.sp.parts[v].Doors)
	m := &doorMat{n: n, cells: make([]atomic.Uint64, n*n)}
	for i := range m.cells {
		m.cells[i].Store(unfilledBits)
	}
	c.mats[v].Store(m)
	return m
}

// DoorDist returns ‖di,dj‖v, identical bit-for-bit to
// Space.WithinDoors(v, di, dj), plus whether the lookup was served from the
// memo. Foreign doors (not associated with v) return +Inf and count as a
// hit: there is nothing to compute or store.
func (c *DistCache) DoorDist(v PartitionID, di, dj DoorID) (float64, bool) {
	sh := c.shard(v)
	ii := c.sp.doorIndexIn(v, di)
	if ii < 0 {
		sh.hits.Add(1)
		return math.Inf(1), true
	}
	jj := ii
	if dj != di {
		jj = c.sp.doorIndexIn(v, dj)
		if jj < 0 {
			sh.hits.Add(1)
			return math.Inf(1), true
		}
	}
	m := c.mat(v)
	cell := &m.cells[ii*m.n+jj]
	if bits := cell.Load(); bits != unfilledBits {
		sh.hits.Add(1)
		return math.Float64frombits(bits), true
	}
	d := c.sp.withinDoorsAt(v, ii, jj)
	if math.IsNaN(d) {
		// Defense in depth: a NaN's bits could equal the unfilled sentinel,
		// leaving the cell permanently empty. Unreachable is stored as +Inf.
		d = math.Inf(1)
	}
	if cell.CompareAndSwap(unfilledBits, math.Float64bits(d)) {
		sh.fills.Add(1)
	}
	sh.misses.Add(1)
	return d, false
}

// Stats sums the per-shard counters.
func (c *DistCache) Stats() CacheStats {
	var s CacheStats
	for i := range c.shards {
		s.Hits += c.shards[i].hits.Load()
		s.Misses += c.shards[i].misses.Load()
		s.Fills += c.shards[i].fills.Load()
	}
	return s
}

// SizeBytes returns the resident size of the matrices allocated so far —
// the lazily-accreted counterpart of an eager fd2d model's size accounting.
func (c *DistCache) SizeBytes() int64 {
	var sz int64
	for i := range c.mats {
		if m := c.mats[i].Load(); m != nil {
			sz += int64(len(m.cells))*8 + 16
		}
	}
	return sz
}

// Filled reports how many partitions have an allocated matrix and how many
// cells are published across them (diagnostics and tests).
func (c *DistCache) Filled() (partitions, cells int) {
	for i := range c.mats {
		m := c.mats[i].Load()
		if m == nil {
			continue
		}
		partitions++
		for j := range m.cells {
			if m.cells[j].Load() != unfilledBits {
				cells++
			}
		}
	}
	return partitions, cells
}

// DistCache returns the space's lazy door-pair distance cache. The cache is
// created empty at Build; engines opt in per lookup through
// WithinDoorsCached, so holding the pointer costs nothing.
func (s *Space) DistCache() *DistCache { return s.dcache }

// WithinDoorsCached is WithinDoors served through the space's lazy door-pair
// cache: bit-identical values, O(1) after the first lookup of a pair. The
// boolean reports whether the memo already held the answer (for cache
// effectiveness accounting, see query.Stats).
func (s *Space) WithinDoorsCached(v PartitionID, di, dj DoorID) (float64, bool) {
	return s.dcache.DoorDist(v, di, dj)
}
