package indoor

import (
	"fmt"
	"sync/atomic"

	"indoorsq/internal/geom"
	"indoorsq/internal/snapshot"
)

// AppendTo writes the space — raw model AND derived geometry (MBRs,
// convexity, fdv max-reach arrays, visibility-graph matrices) — as the
// TagSpace section. Serializing the derived parts is what makes LoadSpace
// skip the expensive per-partition visibility construction: restoring a
// concave partition costs two slice views instead of O(V^2) segment tests
// plus one Dijkstra per door.
func (s *Space) AppendTo(w *snapshot.Writer) {
	sec := w.Begin(snapshot.TagSpace)
	sec.Str(s.Name)
	sec.U64(uint64(s.Floors))

	sec.U64(uint64(len(s.parts)))
	for i := range s.parts {
		v := &s.parts[i]
		sec.U64(uint64(v.Kind))
		sec.I64(int64(v.Floor))
		sec.I64(int64(v.TopFloor))
		sec.F64(v.StairLength)
		sec.Bool(v.convex)
		sec.F64(v.MBR.MinX)
		sec.F64(v.MBR.MinY)
		sec.F64(v.MBR.MaxX)
		sec.F64(v.MBR.MaxY)
		sec.F64s(flattenPoints(v.Poly))
		sec.I32s(doorIDs(v.Doors))
		sec.I32s(doorIDs(v.Enter))
		sec.I32s(doorIDs(v.Leave))
	}

	sec.U64(uint64(len(s.doors)))
	for i := range s.doors {
		d := &s.doors[i]
		sec.F64(d.P.X)
		sec.F64(d.P.Y)
		sec.I64(int64(d.Floor))
		sec.Bool(d.Virtual)
		sec.I32s(partIDs(d.Enterable))
		sec.I32s(partIDs(d.Leaveable))
		sec.I32s(partIDs(d.Parts))
	}

	// Derived geometry, per partition: fdv array, then the visibility-graph
	// matrices for concave non-staircase partitions.
	for i := range s.parts {
		sec.F64s(s.maxReach[i])
		if g := s.vg[i]; g != nil {
			sec.Bool(true)
			vadj, av := g.SnapshotArrays()
			sec.F64s(vadj)
			sec.F64s(av)
		} else {
			sec.Bool(false)
		}
	}
}

// LoadSpace reconstructs a Space from the TagSpace section. Cheap
// derivations (per-floor lists, door-index maps) are recomputed; expensive
// ones (visibility graphs, fdv arrays) come from the section, with matrix
// rows aliasing the snapshot buffer. Structural validation is skipped: the
// section CRC plus the caller's fingerprint check (see snapshot/bundle)
// guard integrity, and a snapshot is only ever written from a validated,
// built Space.
func LoadSpace(r *snapshot.Reader) (*Space, error) {
	sec, err := r.Section(snapshot.TagSpace)
	if err != nil {
		return nil, err
	}
	s := &Space{
		Name:   sec.Str(),
		Floors: sec.Int(),
	}
	np := sec.Int()
	if err := sec.Err(); err != nil {
		return nil, err
	}
	if np < 0 || np > 1<<28 {
		return nil, fmt.Errorf("indoor: snapshot partition count %d out of range", np)
	}
	s.parts = make([]Partition, np)
	for i := range s.parts {
		v := &s.parts[i]
		v.ID = PartitionID(i)
		v.Kind = Kind(sec.U64())
		v.Floor = int16(sec.I64())
		v.TopFloor = int16(sec.I64())
		v.StairLength = sec.F64()
		v.convex = sec.Bool()
		v.MBR = geom.Rect{MinX: sec.F64(), MinY: sec.F64(), MaxX: sec.F64(), MaxY: sec.F64()}
		v.Poly = geom.Polygon(unflattenPoints(sec.F64s()))
		v.Doors = idsDoor(sec.I32s())
		v.Enter = idsDoor(sec.I32s())
		v.Leave = idsDoor(sec.I32s())
	}
	nd := sec.Int()
	if err := sec.Err(); err != nil {
		return nil, err
	}
	if nd < 0 || nd > 1<<28 {
		return nil, fmt.Errorf("indoor: snapshot door count %d out of range", nd)
	}
	s.doors = make([]Door, nd)
	for i := range s.doors {
		d := &s.doors[i]
		d.ID = DoorID(i)
		d.P = geom.Point{X: sec.F64(), Y: sec.F64()}
		d.Floor = int16(sec.I64())
		d.Virtual = sec.Bool()
		d.Enterable = idsPart(sec.I32s())
		d.Leaveable = idsPart(sec.I32s())
		d.Parts = idsPart(sec.I32s())
	}
	if err := sec.Err(); err != nil {
		return nil, err
	}

	// Cheap derivations, in exactly Build's order.
	if s.Floors <= 0 || s.Floors > 1<<16 {
		return nil, fmt.Errorf("indoor: snapshot floor count %d out of range", s.Floors)
	}
	s.byFloor = make([][]PartitionID, s.Floors)
	s.vg = make([]*geom.VGraph, np)
	s.doorAnchor = make([][]int32, np)
	s.maxReach = make([][]float64, np)
	s.doorIdx = make([]map[DoorID]int32, np)
	for i := range s.parts {
		v := &s.parts[i]
		if int(v.Floor) < 0 || int(v.TopFloor) >= s.Floors || v.Floor > v.TopFloor {
			return nil, fmt.Errorf("indoor: snapshot partition %d floor range [%d,%d] out of bounds", i, v.Floor, v.TopFloor)
		}
		for f := v.Floor; f <= v.TopFloor; f++ {
			s.byFloor[f] = append(s.byFloor[f], v.ID)
		}
		idx := make(map[DoorID]int32, len(v.Doors))
		for j, d := range v.Doors {
			if int(d) < 0 || int(d) >= nd {
				return nil, fmt.Errorf("indoor: snapshot partition %d references door %d of %d", i, d, nd)
			}
			idx[d] = int32(j)
		}
		s.doorIdx[i] = idx
	}

	// Expensive derivations, from the section.
	for i := range s.parts {
		v := &s.parts[i]
		s.maxReach[i] = sec.F64s()
		if len(s.maxReach[i]) != len(v.Doors) && sec.Err() == nil {
			return nil, fmt.Errorf("indoor: snapshot partition %d fdv length %d, want %d", i, len(s.maxReach[i]), len(v.Doors))
		}
		if !sec.Bool() {
			continue
		}
		vadj := sec.F64s()
		av := sec.F64s()
		if sec.Err() != nil {
			break
		}
		nv := len(v.Poly)
		anchors := make([]geom.Point, len(v.Doors))
		aidx := make([]int32, len(v.Doors))
		for j, d := range v.Doors {
			anchors[j] = s.doors[d].P
			aidx[j] = int32(j)
		}
		if len(vadj) != nv*nv || len(av) != len(anchors)*nv {
			return nil, fmt.Errorf("indoor: snapshot partition %d visibility matrices sized %d/%d, want %d/%d",
				i, len(vadj), len(av), nv*nv, len(anchors)*nv)
		}
		s.vg[i] = geom.RestoreVGraph(v.Poly, anchors, vadj, av)
		s.doorAnchor[i] = aidx
	}
	if err := sec.Err(); err != nil {
		return nil, err
	}
	s.dcache = newDistCache(s)
	return s, nil
}

// AppendTo writes every allocated distance-cache matrix as the TagDistCache
// section — the "warm pages" a replica preloads so its first queries skip
// the on-the-fly geodesic computations. Cells are raw Float64bits words;
// unfilled cells keep their sentinel and stay lazily computable after load.
// Sound to ship across processes because every filled cell is a pure
// function of the (fingerprint-checked) space.
func (c *DistCache) AppendTo(w *snapshot.Writer) {
	sec := w.Begin(snapshot.TagDistCache)
	var allocated []PartitionID
	for i := range c.mats {
		if c.mats[i].Load() != nil {
			allocated = append(allocated, PartitionID(i))
		}
	}
	sec.U64(uint64(len(allocated)))
	cells := []uint64(nil)
	for _, v := range allocated {
		m := c.mats[v].Load()
		sec.U64(uint64(v))
		sec.U64(uint64(m.n))
		cells = cells[:0]
		for i := range m.cells {
			cells = append(cells, m.cells[i].Load())
		}
		sec.U64s(cells)
	}
}

// LoadFrom preloads warm pages from the TagDistCache section into this
// (typically freshly created, empty) cache. Pages for unknown partitions or
// with mismatched door counts are rejected — that indicates a foreign
// snapshot, not a tolerable drift.
func (c *DistCache) LoadFrom(r *snapshot.Reader) error {
	if !r.Has(snapshot.TagDistCache) {
		return nil
	}
	sec, err := r.Section(snapshot.TagDistCache)
	if err != nil {
		return err
	}
	pages := sec.Int()
	for p := 0; p < pages && sec.Err() == nil; p++ {
		v := sec.I64()
		n := sec.Int()
		cells := sec.U64s()
		if sec.Err() != nil {
			break
		}
		if v < 0 || v >= int64(len(c.mats)) {
			return fmt.Errorf("indoor: distcache page for partition %d of %d", v, len(c.mats))
		}
		if want := len(c.sp.parts[v].Doors); n != want || len(cells) != n*n {
			return fmt.Errorf("indoor: distcache page for partition %d sized %d/%d, want %d doors", v, n, len(cells), want)
		}
		m := &doorMat{n: n, cells: make([]atomic.Uint64, n*n)}
		for i := range m.cells {
			m.cells[i].Store(cells[i])
		}
		c.mats[v].Store(m)
	}
	return sec.Err()
}

func flattenPoints(ps []geom.Point) []float64 {
	out := make([]float64, 0, len(ps)*2)
	for _, p := range ps {
		out = append(out, p.X, p.Y)
	}
	return out
}

func unflattenPoints(flat []float64) []geom.Point {
	out := make([]geom.Point, len(flat)/2)
	for i := range out {
		out[i] = geom.Point{X: flat[2*i], Y: flat[2*i+1]}
	}
	return out
}

func doorIDs(ids []DoorID) []int32 {
	out := make([]int32, len(ids))
	for i, id := range ids {
		out[i] = int32(id)
	}
	return out
}

func partIDs(ids []PartitionID) []int32 {
	out := make([]int32, len(ids))
	for i, id := range ids {
		out[i] = int32(id)
	}
	return out
}

func idsDoor(v []int32) []DoorID {
	out := make([]DoorID, len(v))
	for i, x := range v {
		out[i] = DoorID(x)
	}
	return out
}

func idsPart(v []int32) []PartitionID {
	out := make([]PartitionID, len(v))
	for i, x := range v {
		out[i] = PartitionID(x)
	}
	return out
}
