package indoor

import (
	"encoding/json"
	"fmt"
	"io"

	"indoorsq/internal/geom"
)

// spaceJSON is the interchange format of a Space: enough to rebuild it
// through the Builder (derived structures are recomputed on decode).
type spaceJSON struct {
	Name       string     `json:"name"`
	Floors     int        `json:"floors"`
	Partitions []partJSON `json:"partitions"`
	Doors      []doorJSON `json:"doors"`
}

type partJSON struct {
	Kind        uint8        `json:"kind"`
	Floor       int16        `json:"floor"`
	TopFloor    int16        `json:"topFloor"`
	StairLength float64      `json:"stairLength,omitempty"`
	Poly        [][2]float64 `json:"poly"`
}

type doorJSON struct {
	X       float64    `json:"x"`
	Y       float64    `json:"y"`
	Floor   int16      `json:"floor"`
	Virtual bool       `json:"virtual,omitempty"`
	Links   []linkJSON `json:"links"`
}

type linkJSON struct {
	From int32 `json:"from"`
	To   int32 `json:"to"`
}

// EncodeSpace writes a JSON representation of the space.
func EncodeSpace(w io.Writer, s *Space) error {
	out := spaceJSON{Name: s.Name, Floors: s.Floors}
	for i := range s.parts {
		v := &s.parts[i]
		pj := partJSON{
			Kind:        uint8(v.Kind),
			Floor:       v.Floor,
			TopFloor:    v.TopFloor,
			StairLength: v.StairLength,
		}
		for _, pt := range v.Poly {
			pj.Poly = append(pj.Poly, [2]float64{pt.X, pt.Y})
		}
		out.Partitions = append(out.Partitions, pj)
	}
	for i := range s.doors {
		d := &s.doors[i]
		dj := doorJSON{X: d.P.X, Y: d.P.Y, Floor: d.Floor, Virtual: d.Virtual}
		for _, from := range d.Leaveable {
			for _, to := range d.Enterable {
				if from != to {
					dj.Links = append(dj.Links, linkJSON{From: int32(from), To: int32(to)})
				}
			}
		}
		out.Doors = append(out.Doors, dj)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// DecodeSpace reads a JSON representation produced by EncodeSpace and
// rebuilds the space (including all derived structures).
func DecodeSpace(r io.Reader) (*Space, error) {
	var in spaceJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("indoor: decode space: %w", err)
	}
	b := NewBuilder(in.Name, in.Floors)
	for _, pj := range in.Partitions {
		poly := make(geom.Polygon, len(pj.Poly))
		for i, xy := range pj.Poly {
			poly[i] = geom.Pt(xy[0], xy[1])
		}
		if Kind(pj.Kind) == Staircase {
			b.AddStair(pj.Floor, pj.TopFloor, poly, pj.StairLength)
		} else {
			b.AddPartition(Kind(pj.Kind), pj.Floor, poly)
		}
	}
	for _, dj := range in.Doors {
		var d DoorID
		if dj.Virtual {
			d = b.AddVirtualDoor(geom.Pt(dj.X, dj.Y), dj.Floor)
		} else {
			d = b.AddDoor(geom.Pt(dj.X, dj.Y), dj.Floor)
		}
		for _, l := range dj.Links {
			b.ConnectOneWay(d, PartitionID(l.From), PartitionID(l.To))
		}
	}
	return b.Build()
}
