package indoor

// White-box regression test for the NaN/sentinel collision: the cache's
// unfilled sentinel is Go's canonical NaN bit pattern, so a NaN distance
// stored verbatim would re-publish the sentinel and make the cell a
// permanent miss. The fix canonicalizes NaN to +Inf in withinDoorsAt (and
// defends again in DoorDist), so degenerate geometry caches like any other
// unreachable pair: one miss, then hits.

import (
	"math"
	"testing"

	"indoorsq/internal/geom"
)

// TestUnfilledSentinelIsCanonicalNaN documents why the canonicalization is
// load-bearing: NaN-propagating arithmetic yields exactly the sentinel bits.
func TestUnfilledSentinelIsCanonicalNaN(t *testing.T) {
	if bits := math.Float64bits(math.NaN()); bits != unfilledBits {
		t.Fatalf("math.NaN() bits %#x != unfilled sentinel %#x; update the sentinel collision analysis", bits, unfilledBits)
	}
}

func nanCorruptedSpace(t *testing.T) (*Space, PartitionID, DoorID, DoorID) {
	t.Helper()
	b := NewBuilder("nan", 1)
	rect := func(x0, y0, x1, y1 float64) geom.Polygon {
		return geom.RectPoly(geom.R(x0, y0, x1, y1))
	}
	hall := b.AddHallway(0, rect(0, 0, 10, 4))
	r1 := b.AddRoom(0, rect(0, 4, 5, 8))
	r2 := b.AddRoom(0, rect(5, 4, 10, 8))
	d1 := b.AddDoor(geom.Pt(2.5, 4), 0)
	b.ConnectBoth(d1, hall, r1)
	d2 := b.AddDoor(geom.Pt(7.5, 4), 0)
	b.ConnectBoth(d2, hall, r2)
	sp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Build validates door geometry, so the corruption must happen after:
	// this simulates degenerate input that slipped past validation (or a
	// future geometry kernel emitting NaN on an ill-conditioned pair).
	sp.doors[d1].P = geom.Pt(math.NaN(), math.NaN())
	return sp, hall, d1, d2
}

// TestDistCacheNaNDistanceCachesAsInf asserts the full contract: a door
// pair whose geometric distance computes to NaN is reported as +Inf, misses
// exactly once, and every subsequent probe is a hit — instead of silently
// recomputing forever because the stored NaN equals the unfilled sentinel.
func TestDistCacheNaNDistanceCachesAsInf(t *testing.T) {
	sp, hall, d1, d2 := nanCorruptedSpace(t)

	// The raw kernel really does produce NaN here; the exported surface
	// canonicalizes it away.
	ii, jj := sp.doorIndexIn(hall, d1), sp.doorIndexIn(hall, d2)
	if raw := sp.rawWithinDoorsAt(hall, ii, jj); !math.IsNaN(raw) {
		t.Fatalf("raw distance = %v, want NaN from corrupted geometry", raw)
	}
	if got := sp.WithinDoors(hall, d1, d2); !math.IsInf(got, 1) {
		t.Fatalf("WithinDoors = %v, want +Inf", got)
	}

	c := sp.DistCache()
	base := c.Stats()
	got, hit := c.DoorDist(hall, d1, d2)
	if !math.IsInf(got, 1) || hit {
		t.Fatalf("first probe = (%v, hit=%v), want (+Inf, miss)", got, hit)
	}
	after := c.Stats()
	if after.Misses-base.Misses != 1 || after.Fills-base.Fills != 1 {
		t.Fatalf("first probe counted %d misses / %d fills, want 1 / 1",
			after.Misses-base.Misses, after.Fills-base.Fills)
	}

	for i := 0; i < 3; i++ {
		got, hit = c.DoorDist(hall, d1, d2)
		if !math.IsInf(got, 1) || !hit {
			t.Fatalf("probe %d = (%v, hit=%v), want cached +Inf", i+2, got, hit)
		}
	}
	final := c.Stats()
	if final.Misses != after.Misses {
		t.Fatalf("repeat probes recomputed: misses went %d -> %d (NaN re-published the unfilled sentinel)",
			after.Misses, final.Misses)
	}
	if final.Hits-after.Hits != 3 {
		t.Fatalf("repeat probes counted %d hits, want 3", final.Hits-after.Hits)
	}
}
