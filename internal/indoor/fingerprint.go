package indoor

import (
	"hash/fnv"
	"math"
)

// Fingerprint hashes everything that determines a space's query answers:
// floor count, partition kinds/floors/stair lengths, polygon vertices, the
// full topology mappings (P2D/P2D⊢/P2D⊣ per partition, D2P/D2P⊢/D2P⊣ per
// door, in stored order — order drives matrix and CSR layouts), door
// coordinates, floors, and virtual flags. The venue name is deliberately
// excluded: two identically laid-out spaces are interchangeable for serving.
//
// This supersedes the old idindex persist fingerprint, which covered only
// door coordinates and floors — two venues with identical door positions but
// a flipped one-way direction collided and could serve each other's
// matrices. Any topology edit now changes the fingerprint.
func Fingerprint(s *Space) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		buf[4] = byte(v >> 32)
		buf[5] = byte(v >> 40)
		buf[6] = byte(v >> 48)
		buf[7] = byte(v >> 56)
		h.Write(buf[:])
	}
	wf := func(v float64) { w64(math.Float64bits(v)) }
	wp := func(ids []PartitionID) {
		w64(uint64(len(ids)))
		for _, id := range ids {
			w64(uint64(uint32(id)))
		}
	}
	wd := func(ids []DoorID) {
		w64(uint64(len(ids)))
		for _, id := range ids {
			w64(uint64(uint32(id)))
		}
	}

	w64(uint64(s.Floors))
	w64(uint64(len(s.parts)))
	for i := range s.parts {
		v := &s.parts[i]
		w64(uint64(v.Kind))
		w64(uint64(uint16(v.Floor)))
		w64(uint64(uint16(v.TopFloor)))
		wf(v.StairLength)
		w64(uint64(len(v.Poly)))
		for _, p := range v.Poly {
			wf(p.X)
			wf(p.Y)
		}
		wd(v.Doors)
		wd(v.Enter)
		wd(v.Leave)
	}
	w64(uint64(len(s.doors)))
	for i := range s.doors {
		d := &s.doors[i]
		wf(d.P.X)
		wf(d.P.Y)
		w64(uint64(uint16(d.Floor)))
		if d.Virtual {
			w64(1)
		} else {
			w64(0)
		}
		wp(d.Enterable)
		wp(d.Leaveable)
		wp(d.Parts)
	}
	return h.Sum64()
}
