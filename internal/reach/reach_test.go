package reach

import (
	"math"
	"testing"

	"indoorsq/internal/doorgraph"
	"indoorsq/internal/geom"
	"indoorsq/internal/indoor"
	"indoorsq/internal/spacegen"
)

// chain builds a four-room space severed by one one-way door:
//
//	y=8 +----+----+
//	    | A2 | B2 |
//	y=4 +-dA-+-dB-+
//	    | A1 > B1 |      dAB at (5,2) allows A1 -> B1 only
//	y=0 +----+----+
//	   x=0   5   10
//
// Door graph: dA -> dAB -> dB, three singleton SCCs. From the B cluster
// nothing in the A cluster is reachable.
type chain struct {
	sp             *indoor.Space
	a1, a2, b1, b2 indoor.PartitionID
	dA, dAB, dB    indoor.DoorID
}

func newChain(t *testing.T) *chain {
	t.Helper()
	b := indoor.NewBuilder("chain", 1)
	rect := func(x0, y0, x1, y1 float64) geom.Polygon {
		return geom.RectPoly(geom.R(x0, y0, x1, y1))
	}
	c := &chain{}
	c.a1 = b.AddRoom(0, rect(0, 0, 5, 4))
	c.a2 = b.AddRoom(0, rect(0, 4, 5, 8))
	c.b1 = b.AddRoom(0, rect(5, 0, 10, 4))
	c.b2 = b.AddRoom(0, rect(5, 4, 10, 8))
	c.dA = b.AddDoor(geom.Pt(2.5, 4), 0)
	b.ConnectBoth(c.dA, c.a1, c.a2)
	c.dAB = b.AddDoor(geom.Pt(5, 2), 0)
	b.ConnectOneWay(c.dAB, c.a1, c.b1)
	c.dB = b.AddDoor(geom.Pt(7.5, 4), 0)
	b.ConnectBoth(c.dB, c.b1, c.b2)
	sp, err := b.Build()
	if err != nil {
		t.Fatalf("build chain: %v", err)
	}
	c.sp = sp
	return c
}

func TestChainCondensation(t *testing.T) {
	c := newChain(t)
	r := FromSpace(c.sp, nil, 0)
	if got := r.NumSCCs(); got != 3 {
		t.Fatalf("NumSCCs = %d, want 3", got)
	}
	if !r.HasParts() {
		t.Fatal("partition bitmap unexpectedly dropped on a 4-partition space")
	}
	// Reverse topological ids: every cross edge descends strictly.
	if !(r.SCCOf(c.dA) > r.SCCOf(c.dAB) && r.SCCOf(c.dAB) > r.SCCOf(c.dB)) {
		t.Fatalf("SCC ids not reverse-topological: dA=%d dAB=%d dB=%d",
			r.SCCOf(c.dA), r.SCCOf(c.dAB), r.SCCOf(c.dB))
	}

	reaches := func(d indoor.DoorID, vs ...indoor.PartitionID) map[indoor.PartitionID]bool {
		m := make(map[indoor.PartitionID]bool)
		for _, v := range vs {
			m[v] = r.DoorReachesPart(d, v)
		}
		return m
	}
	all := []indoor.PartitionID{c.a1, c.a2, c.b1, c.b2}
	for v, got := range reaches(c.dA, all...) {
		if !got {
			t.Errorf("dA should reach partition %d", v)
		}
	}
	wantB := map[indoor.PartitionID]bool{c.a1: false, c.a2: false, c.b1: true, c.b2: true}
	for _, d := range []indoor.DoorID{c.dAB, c.dB} {
		for v, want := range wantB {
			if got := r.DoorReachesPart(d, v); got != want {
				t.Errorf("DoorReachesPart(%d, %d) = %t, want %t", d, v, got, want)
			}
		}
	}

	mbr, ok := r.DownstreamMBR(c.dB)
	if !ok || mbr != geom.R(5, 0, 10, 8) {
		t.Errorf("DownstreamMBR(dB) = %v %t, want [5 0 10 8] true", mbr, ok)
	}
	mbr, ok = r.DownstreamMBR(c.dA)
	if !ok || mbr != geom.R(0, 0, 10, 8) {
		t.Errorf("DownstreamMBR(dA) = %v %t, want [0 0 10 8] true", mbr, ok)
	}
}

func TestOpenFilterExcludesDoors(t *testing.T) {
	c := newChain(t)
	r := FromSpace(c.sp, func(d indoor.DoorID) bool { return d != c.dAB }, 0)
	if got := r.SCCOf(c.dAB); got != -1 {
		t.Fatalf("closed door SCC = %d, want -1", got)
	}
	if got := r.NumSCCs(); got != 2 {
		t.Fatalf("NumSCCs = %d, want 2", got)
	}
	if r.DoorReachesPart(c.dAB, c.b1) {
		t.Error("closed door should reach nothing")
	}
	if r.DoorReachesPart(c.dA, c.b1) {
		t.Error("with the crossing closed, dA must not reach the B cluster")
	}
	if !r.DoorReachesPart(c.dA, c.a2) || !r.DoorReachesPart(c.dB, c.b2) {
		t.Error("intra-cluster reachability must survive the filter")
	}
}

func TestMBRPrune(t *testing.T) {
	c := newChain(t)
	r := FromSpace(c.sp, nil, 0)
	p := indoor.At(1, 2, 0) // inside A1, 4m west of the B cluster
	if !r.MBRPrune(c.dB, p, 3.9) {
		t.Error("dB's downstream region is 4m away; limit 3.9 should prune")
	}
	if r.MBRPrune(c.dB, p, 4) {
		t.Error("strict >: limit exactly 4 must not prune")
	}
	if r.MBRPrune(c.dB, p, math.Inf(1)) {
		t.Error("an infinite limit must never prune")
	}
	if r.MBRPrune(c.dA, p, 3.9) {
		t.Error("dA's downstream region contains p's own partition")
	}
	// A point on a floor the summary does not wholly cover is never pruned.
	off := indoor.At(1, 2, 1)
	if r.MBRPrune(c.dB, off, 0.1) {
		t.Error("cross-floor prune must stay conservative")
	}
}

func TestBudgetFallback(t *testing.T) {
	old := partsBudget
	partsBudget = 0
	defer func() { partsBudget = old }()

	c := newChain(t)
	r := FromSpace(c.sp, nil, 0)
	if r.HasParts() {
		t.Fatal("bitmap should be dropped at zero budget")
	}
	if !r.DoorReachesPart(c.dB, c.a1) {
		t.Error("without the bitmap DoorReachesPart must answer true")
	}
	f := r.FromDoors([]indoor.DoorID{c.dB}, nil)
	if !f.CanReachPart(c.a1) || !f.AnyPart([]indoor.PartitionID{c.a1}) {
		t.Error("an undecided From must answer true")
	}
	// MBR summaries survive the fallback.
	if !r.MBRPrune(c.dB, indoor.At(1, 2, 0), 3.9) {
		t.Error("MBR pruning should still work without the bitmap")
	}
}

func TestFromDoors(t *testing.T) {
	c := newChain(t)
	r := FromSpace(c.sp, nil, 0)

	f := r.FromDoors([]indoor.DoorID{c.dB}, nil)
	if f.CanReachPart(c.a1) {
		t.Error("seeds {dB} must not reach the A cluster")
	}
	if !f.CanReachPart(c.b2) {
		t.Error("seeds {dB} must reach B2")
	}
	if f.AnyPart([]indoor.PartitionID{c.a1, c.a2}) {
		t.Error("AnyPart over the A cluster should be false")
	}
	if !f.AnyPart([]indoor.PartitionID{c.a1, c.b1}) {
		t.Error("AnyPart with one reachable member should be true")
	}

	// A usable filter that rejects every seed leaves nothing reachable.
	f = r.FromDoors([]indoor.DoorID{c.dB}, func(indoor.DoorID) bool { return false })
	if f.CanReachPart(c.b1) {
		t.Error("no usable seeds: nothing is door-reachable")
	}

	// A nil summary must stay conservative.
	var nilReach *Reach
	f = nilReach.FromDoors([]indoor.DoorID{c.dB}, nil)
	if !f.CanReachPart(c.a1) {
		t.Error("From over a nil Reach must answer true")
	}
}

func genParams() spacegen.Params {
	return spacegen.Params{
		Floors: 2, Rows: 6, Cols: 10, Hall: spacegen.HallComb,
		ExtraDoors: 8, OneWayFrac: 0.6, Imbalance: 0.4, StairLength: 5,
	}
}

// TestWorkerDeterminism pins the byte-identical-for-any-worker-count
// contract of both builders.
func TestWorkerDeterminism(t *testing.T) {
	sp, err := spacegen.Generate(7, genParams())
	if err != nil {
		t.Fatal(err)
	}
	ref := FromSpace(sp, nil, 1)
	dg := doorgraph.Build(sp)
	refG := FromGraph(dg, sp, 1)
	for _, workers := range []int{2, 3, 8} {
		for name, pair := range map[string][2]*Reach{
			"FromSpace": {ref, FromSpace(sp, nil, workers)},
			"FromGraph": {refG, FromGraph(dg, sp, workers)},
		} {
			a, b := pair[0], pair[1]
			if a.numSCC != b.numSCC {
				t.Fatalf("%s workers=%d: numSCC %d != %d", name, workers, b.numSCC, a.numSCC)
			}
			for i := range a.scc {
				if a.scc[i] != b.scc[i] {
					t.Fatalf("%s workers=%d: scc[%d] differs", name, workers, i)
				}
			}
			for c := range a.mbr {
				if a.mbr[c] != b.mbr[c] || a.hasGeom[c] != b.hasGeom[c] ||
					a.floorLo[c] != b.floorLo[c] || a.floorHi[c] != b.floorHi[c] {
					t.Fatalf("%s workers=%d: summary of SCC %d differs", name, workers, c)
				}
			}
			if len(a.parts) != len(b.parts) {
				t.Fatalf("%s workers=%d: bitmap length differs", name, workers)
			}
			for i := range a.parts {
				if a.parts[i] != b.parts[i] {
					t.Fatalf("%s workers=%d: bitmap word %d differs", name, workers, i)
				}
			}
		}
	}
}

// TestAgainstBruteForce checks DoorReachesPart exactly against a per-door
// BFS over the same topological edge set, and that SCC ids are reverse
// topological, on a generated one-way-heavy venue.
func TestAgainstBruteForce(t *testing.T) {
	sp, err := spacegen.Generate(11, genParams())
	if err != nil {
		t.Fatal(err)
	}
	r := FromSpace(sp, nil, 0)
	if !r.HasParts() {
		t.Fatal("bitmap expected on this venue size")
	}

	n := sp.NumDoors()
	adj := make([][]int32, n)
	for d := 0; d < n; d++ {
		for _, v := range sp.Door(indoor.DoorID(d)).Enterable {
			for _, nd := range sp.Partition(v).Leave {
				if int(nd) != d {
					adj[d] = append(adj[d], int32(nd))
				}
			}
		}
	}
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	queue := make([]int32, 0, n)
	for d := 0; d < n; d++ {
		// BFS door-reachability from d (d included).
		queue = append(queue[:0], int32(d))
		mark[d] = d
		truth := make([]bool, sp.NumPartitions())
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range sp.Door(indoor.DoorID(u)).Enterable {
				truth[v] = true
			}
			for _, w := range adj[u] {
				if mark[w] != d {
					mark[w] = d
					queue = append(queue, w)
				}
				if s := r.SCCOf(indoor.DoorID(w)); s > r.SCCOf(indoor.DoorID(u)) &&
					r.SCCOf(indoor.DoorID(u)) >= 0 {
					t.Fatalf("edge %d->%d ascends SCC ids %d->%d", u, w,
						r.SCCOf(indoor.DoorID(u)), s)
				}
			}
		}
		for v := range truth {
			if got := r.DoorReachesPart(indoor.DoorID(d), indoor.PartitionID(v)); got != truth[v] {
				t.Fatalf("DoorReachesPart(%d, %d) = %t, BFS says %t", d, v, got, truth[v])
			}
		}
	}
}

func BenchmarkFromSpace(b *testing.B) {
	sp, err := spacegen.Generate(3, spacegen.Params{
		Floors: 1, Rows: 24, Cols: 48, Hall: spacegen.HallStraight,
		ExtraDoors: 10, OneWayFrac: 0.25,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromSpace(sp, nil, 0)
	}
}

// TestRunPrunedReachFilter checks the contract RunPruned documents: with a
// "door reaches the goal partition" filter, every door that itself reaches
// the goal keeps a bit-identical distance, because all doors on its
// shortest path reach the goal too (reachability is closed under path
// prefixes). Doors that cannot reach the goal end up unreached.
func TestRunPrunedReachFilter(t *testing.T) {
	sp, err := spacegen.Generate(11, genParams())
	if err != nil {
		t.Fatal(err)
	}
	dg := doorgraph.Build(sp)
	r := FromGraph(dg, sp, 0)
	if !r.HasParts() {
		t.Fatal("expected a partition bitmap on a generated venue")
	}
	vq := indoor.PartitionID(sp.NumPartitions() - 1)
	allow := func(d int32) bool { return r.DoorReachesPart(indoor.DoorID(d), vq) }

	full := doorgraph.NewScratch(dg.N)
	pruned := doorgraph.NewScratch(dg.N)
	for src := int32(0); src < int32(dg.N); src += 5 {
		full.Run(dg, src, false)
		pruned.RunPruned(dg, src, false, allow)
		for d := 0; d < dg.N; d++ {
			if allow(int32(d)) {
				if math.Float64bits(full.DistAt(d)) != math.Float64bits(pruned.DistAt(d)) {
					t.Fatalf("src=%d door=%d: pruned dist %g != full %g",
						src, d, pruned.DistAt(d), full.DistAt(d))
				}
			} else if int32(d) != src && !math.IsInf(pruned.DistAt(d), 1) {
				t.Fatalf("src=%d: filtered door %d reached (%g)", src, d, pruned.DistAt(d))
			}
		}
	}
}
