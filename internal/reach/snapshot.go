package reach

import (
	"fmt"

	"indoorsq/internal/geom"
	"indoorsq/internal/snapshot"
)

// AppendTo writes the summary under the given tag. Two reach variants serve
// a space — FromSpace's topological summary (TagReachSpace) and FromGraph's
// exact-edge summary (TagReachGraph) — so the caller names which slot this
// instance fills.
func (r *Reach) AppendTo(w *snapshot.Writer, tag uint32) {
	sec := w.Begin(tag)
	sec.U64(uint64(r.n))
	sec.U64(uint64(r.np))
	sec.U64(uint64(r.numSCC))
	sec.U64(uint64(r.pw))
	sec.I32s(r.scc)
	mbr := make([]float64, 0, len(r.mbr)*4)
	for _, b := range r.mbr {
		mbr = append(mbr, b.MinX, b.MinY, b.MaxX, b.MaxY)
	}
	sec.F64s(mbr)
	hg := make([]byte, len(r.hasGeom))
	for i, v := range r.hasGeom {
		if v {
			hg[i] = 1
		}
	}
	sec.Bytes(hg)
	sec.I16s(r.floorLo)
	sec.I16s(r.floorHi)
	sec.Bool(r.parts != nil)
	sec.U64s(r.parts)
}

// LoadFrom reconstructs a summary from the given tag's section, skipping the
// Tarjan condensation and both summary passes. The SCC and bitmap arrays may
// alias the snapshot buffer.
func LoadFrom(rd *snapshot.Reader, tag uint32) (*Reach, error) {
	sec, err := rd.Section(tag)
	if err != nil {
		return nil, err
	}
	r := &Reach{
		n:      sec.Int(),
		np:     sec.Int(),
		numSCC: sec.Int(),
		pw:     sec.Int(),
	}
	r.scc = sec.I32s()
	mbr := sec.F64s()
	hg := sec.Bytes()
	r.floorLo = sec.I16s()
	r.floorHi = sec.I16s()
	hasParts := sec.Bool()
	parts := sec.U64s()
	if err := sec.Err(); err != nil {
		return nil, err
	}
	if len(r.scc) != r.n || len(mbr) != r.numSCC*4 || len(hg) != r.numSCC ||
		len(r.floorLo) != r.numSCC || len(r.floorHi) != r.numSCC {
		return nil, fmt.Errorf("reach: snapshot arrays inconsistent with %d doors / %d SCCs", r.n, r.numSCC)
	}
	if hasParts {
		if len(parts) != r.numSCC*r.pw || r.pw != (r.np+63)/64 {
			return nil, fmt.Errorf("reach: snapshot bitmap sized %d, want %d x %d", len(parts), r.numSCC, r.pw)
		}
		r.parts = parts
	}
	r.mbr = make([]geom.Rect, r.numSCC)
	r.hasGeom = make([]bool, r.numSCC)
	for c := 0; c < r.numSCC; c++ {
		r.mbr[c] = geom.Rect{MinX: mbr[c*4], MinY: mbr[c*4+1], MaxX: mbr[c*4+2], MaxY: mbr[c*4+3]}
		r.hasGeom[c] = hg[c] != 0
	}
	for _, c := range r.scc {
		if int(c) >= r.numSCC {
			return nil, fmt.Errorf("reach: snapshot SCC id %d of %d", c, r.numSCC)
		}
	}
	r.size = int64(r.n)*4 + int64(r.numSCC)*(32+1+2+2) + int64(len(r.parts))*8
	Metrics.SCCs.Store(int64(r.numSCC))
	Metrics.SummaryBytes.Store(r.size)
	return r, nil
}
