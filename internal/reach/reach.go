// Package reach precomputes reachability over the directed door graph: a
// Tarjan condensation into strongly connected components plus, per SCC, a
// spatial summary of everything reachable downstream in the condensation
// DAG — the MBR union of every partition enterable through a reachable
// door, the floor span of that region, and (under a memory budget) a
// partition bitmap. The design follows GeoReach's spatial reachability
// summaries: a query asks "crossing door d, can I still reach partition v /
// anything within `limit` of p?" and gets an O(1) answer instead of
// discovering unreachability by exhausting a Dijkstra frontier.
//
// Every answer is conservative in the pruning direction: "unreachable" is
// exact for the edge set the summary was built over, and builders may only
// over-approximate that edge set (FromSpace keeps topological edges whose
// geometric weight is +Inf), so a prune can never discard a door that some
// engine could actually traverse. Closing doors only removes edges, which
// is why a summary built over the full graph remains sound under any
// closed-door filter — and why the temporal engine can afford to rebuild a
// fresh condensation per schedule change instead of filtering per edge
// visit.
//
// The SCC ids are assigned in Tarjan pop order, i.e. reverse topological
// order of the condensation: every cross-SCC edge points from a higher id
// to a strictly lower one. Downstream summaries are therefore completed by
// a single ascending-id pass, after a chunked parallel pass (exec.Chunks)
// fills each SCC's direct summary; chunk boundaries only ever split between
// SCCs, so the output is byte-identical for any worker count.
package reach

import (
	"sync/atomic"

	"indoorsq/internal/doorgraph"
	"indoorsq/internal/exec"
	"indoorsq/internal/geom"
	"indoorsq/internal/indoor"
)

// Metrics aggregates process-wide reachability counters. SCCs and
// SummaryBytes describe the most recently built Reach; PruneHits counts
// doors (or whole queries) skipped because a summary proved them useless,
// PruneSkips the checks that could not prune. The obs registry exposes all
// four as gauges.
var Metrics struct {
	SCCs         atomic.Int64
	SummaryBytes atomic.Int64
	PruneHits    atomic.Int64
	PruneSkips   atomic.Int64
}

// partsBudget caps the partition-bitmap footprint (numSCC x ceil(P/64)
// words). Above it the bitmap is dropped and DoorReachesPart degrades to
// "maybe" (always true), keeping the MBR summaries — which stay O(SCCs) —
// as the only prune. Variable, so tests can force the fallback.
var partsBudget int64 = 64 << 20

// adjacency is the build-time edge set in CSR form (targets only; the
// condensation never needs weights).
type adjacency struct {
	off []int32 // len n+1
	to  []int32
}

// Reach is an immutable reachability summary of one door graph (optionally
// under a door filter). The zero value is not usable; a nil *Reach is a
// valid "no pruning" summary for the query-side helpers that accept one.
type Reach struct {
	n      int // doors
	np     int // partitions
	scc    []int32
	numSCC int

	// Per-SCC downstream summaries: the MBR union, floor span and (when
	// parts != nil) partition bitmap of every partition enterable through
	// any door reachable from the SCC, the SCC's own doors included.
	// hasGeom is false when nothing is enterable downstream at all.
	mbr     []geom.Rect
	hasGeom []bool
	floorLo []int16
	floorHi []int16
	parts   []uint64 // numSCC rows of pw words each; nil over budget
	pw      int

	size int64
}

// FromSpace builds the summary over the topological door graph of a space:
// d -> nd when one can enter some partition v through d and leave v through
// nd. This is a superset of the geometric door graph (edges whose walking
// distance is +Inf are kept), so the summary is sound for every engine.
// A non-nil open filter excludes closed doors entirely — their SCC is -1
// and no edge touches them — which is the temporal per-hour rebuild path.
// workers <= 0 means GOMAXPROCS; the result is identical for any count.
func FromSpace(sp *indoor.Space, open func(indoor.DoorID) bool, workers int) *Reach {
	n := sp.NumDoors()
	var excl []bool
	if open != nil {
		excl = make([]bool, n)
		for d := 0; d < n; d++ {
			excl[d] = !open(indoor.DoorID(d))
		}
	}
	closed := func(d int32) bool { return excl != nil && excl[d] }

	cnt := make([]int32, n+1)
	exec.Chunks(n, workers, func(lo, hi int) {
		for di := lo; di < hi; di++ {
			if closed(int32(di)) {
				continue
			}
			var c int32
			for _, v := range sp.Door(indoor.DoorID(di)).Enterable {
				for _, nd := range sp.Partition(v).Leave {
					if int(nd) != di && !closed(int32(nd)) {
						c++
					}
				}
			}
			cnt[di+1] = c
		}
	})
	var total int64
	off := cnt
	for i := 0; i < n; i++ {
		total += int64(off[i+1])
		if total > 1<<31-1 {
			panic("reach: edge count overflows int32 CSR offsets")
		}
		off[i+1] = int32(total)
	}
	to := make([]int32, total)
	exec.Chunks(n, workers, func(lo, hi int) {
		for di := lo; di < hi; di++ {
			if closed(int32(di)) {
				continue
			}
			pos := off[di]
			for _, v := range sp.Door(indoor.DoorID(di)).Enterable {
				for _, nd := range sp.Partition(v).Leave {
					if int(nd) != di && !closed(int32(nd)) {
						to[pos] = int32(nd)
						pos++
					}
				}
			}
		}
	})
	return build(sp, adjacency{off: off, to: to}, excl, workers)
}

// FromGraph builds the summary over the exact edge set of a built door
// graph (finite-weight edges only) — the natural choice for IDINDEX and
// IP/VIP-TREE, which derive their matrices from the same graph: there,
// summary-unreachable coincides with matrix-+Inf rather than merely
// bounding it.
func FromGraph(g *doorgraph.Graph, sp *indoor.Space, workers int) *Reach {
	n := g.N
	off := make([]int32, n+1)
	for d := 0; d < n; d++ {
		row, _ := g.FwdRow(d)
		off[d+1] = off[d] + int32(len(row))
	}
	to := make([]int32, off[n])
	exec.Chunks(n, workers, func(lo, hi int) {
		for d := lo; d < hi; d++ {
			row, _ := g.FwdRow(d)
			copy(to[off[d]:off[d+1]], row)
		}
	})
	return build(sp, adjacency{off: off, to: to}, nil, workers)
}

// tarjan assigns SCC ids in pop order (reverse topological: cross-SCC edges
// run from higher to strictly lower ids) with an iterative DFS. Excluded
// doors keep id -1. adj must contain no edge into or out of an excluded
// door.
func tarjan(adj adjacency, excl []bool) ([]int32, int) {
	n := len(adj.off) - 1
	scc := make([]int32, n)
	for i := range scc {
		scc[i] = -1
	}
	idx := make([]int32, n) // 1-based discovery index; 0 = unvisited
	low := make([]int32, n)
	onStack := make([]bool, n)
	stack := make([]int32, 0, n)
	type frame struct {
		v  int32
		ei int32
	}
	var frames []frame
	var counter int32
	numSCC := 0
	for root := 0; root < n; root++ {
		if idx[root] != 0 || (excl != nil && excl[root]) {
			continue
		}
		counter++
		idx[root], low[root] = counter, counter
		stack = append(stack, int32(root))
		onStack[root] = true
		frames = append(frames[:0], frame{int32(root), adj.off[root]})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ei < adj.off[v+1] {
				w := adj.to[f.ei]
				f.ei++
				if idx[w] == 0 {
					counter++
					idx[w], low[w] = counter, counter
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, adj.off[w]})
				} else if onStack[w] && idx[w] < low[v] {
					low[v] = idx[w]
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := frames[len(frames)-1].v; low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] != idx[v] {
				continue
			}
			c := int32(numSCC)
			numSCC++
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc[w] = c
				if w == v {
					break
				}
			}
		}
	}
	return scc, numSCC
}

func build(sp *indoor.Space, adj adjacency, excl []bool, workers int) *Reach {
	n := len(adj.off) - 1
	np := sp.NumPartitions()
	r := &Reach{n: n, np: np}
	r.scc, r.numSCC = tarjan(adj, excl)
	numSCC := r.numSCC

	// Member doors grouped by SCC (counting sort; ascending door id within
	// each group, so per-SCC iteration order is canonical).
	sccOff := make([]int32, numSCC+1)
	for _, c := range r.scc {
		if c >= 0 {
			sccOff[c+1]++
		}
	}
	for c := 0; c < numSCC; c++ {
		sccOff[c+1] += sccOff[c]
	}
	sccDoors := make([]int32, sccOff[numSCC])
	pos := make([]int32, numSCC)
	copy(pos, sccOff[:numSCC])
	for d, c := range r.scc {
		if c >= 0 {
			sccDoors[pos[c]] = int32(d)
			pos[c]++
		}
	}

	r.mbr = make([]geom.Rect, numSCC)
	r.hasGeom = make([]bool, numSCC)
	r.floorLo = make([]int16, numSCC)
	r.floorHi = make([]int16, numSCC)
	r.pw = (np + 63) / 64
	if int64(numSCC)*int64(r.pw)*8 <= partsBudget {
		r.parts = make([]uint64, numSCC*r.pw)
	}

	// Direct summaries: everything enterable through the SCC's own doors.
	// Chunk boundaries fall between SCCs, each SCC's row is written by
	// exactly one worker in a fixed member/partition order, and MBR union
	// is running min/max — byte-identical output for any worker count.
	exec.Chunks(numSCC, workers, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			var row []uint64
			if r.parts != nil {
				row = r.parts[c*r.pw : (c+1)*r.pw]
			}
			for _, di := range sccDoors[sccOff[c]:sccOff[c+1]] {
				for _, v := range sp.Door(indoor.DoorID(di)).Enterable {
					part := sp.Partition(v)
					if !r.hasGeom[c] {
						r.hasGeom[c] = true
						r.mbr[c] = part.MBR
						r.floorLo[c], r.floorHi[c] = part.Floor, part.TopFloor
					} else {
						r.mbr[c] = r.mbr[c].Union(part.MBR)
						if part.Floor < r.floorLo[c] {
							r.floorLo[c] = part.Floor
						}
						if part.TopFloor > r.floorHi[c] {
							r.floorHi[c] = part.TopFloor
						}
					}
					if row != nil {
						row[int(v)>>6] |= 1 << (uint(v) & 63)
					}
				}
			}
		}
	})

	// Downstream closure in one ascending-id pass: successors always have
	// strictly lower ids, so their summaries are final when merged. seen
	// deduplicates successor SCCs per source row without clearing.
	seen := make([]int32, numSCC)
	for i := range seen {
		seen[i] = -1
	}
	for c := 0; c < numSCC; c++ {
		for _, di := range sccDoors[sccOff[c]:sccOff[c+1]] {
			for _, w := range adj.to[adj.off[di]:adj.off[di+1]] {
				c2 := r.scc[w]
				if c2 == int32(c) || c2 < 0 || seen[c2] == int32(c) {
					continue
				}
				seen[c2] = int32(c)
				if r.hasGeom[c2] {
					if !r.hasGeom[c] {
						r.hasGeom[c] = true
						r.mbr[c] = r.mbr[c2]
						r.floorLo[c], r.floorHi[c] = r.floorLo[c2], r.floorHi[c2]
					} else {
						r.mbr[c] = r.mbr[c].Union(r.mbr[c2])
						if r.floorLo[c2] < r.floorLo[c] {
							r.floorLo[c] = r.floorLo[c2]
						}
						if r.floorHi[c2] > r.floorHi[c] {
							r.floorHi[c] = r.floorHi[c2]
						}
					}
				}
				if r.parts != nil {
					row := r.parts[c*r.pw : (c+1)*r.pw]
					src := r.parts[int(c2)*r.pw : (int(c2)+1)*r.pw]
					for wi := range row {
						row[wi] |= src[wi]
					}
				}
			}
		}
	}

	r.size = int64(n)*4 + int64(numSCC)*(32+1+2+2) + int64(len(r.parts))*8
	Metrics.SCCs.Store(int64(numSCC))
	Metrics.SummaryBytes.Store(r.size)
	return r
}

// NumDoors returns the door count of the summarized graph.
func (r *Reach) NumDoors() int { return r.n }

// NumSCCs returns the number of strongly connected components (excluded
// doors belong to none). 1 with no filter means the graph is strongly
// connected and no reach-based prune can ever fire — callers use that as a
// per-query short-circuit so fully reachable venues pay nothing per edge.
func (r *Reach) NumSCCs() int { return r.numSCC }

// SCCOf returns door d's SCC id, or -1 when the build's door filter
// excluded d.
func (r *Reach) SCCOf(d indoor.DoorID) int32 { return r.scc[d] }

// HasParts reports whether the partition bitmap fit the memory budget.
// Without it DoorReachesPart conservatively answers true.
func (r *Reach) HasParts() bool { return r.parts != nil }

// SizeBytes returns the retained footprint of the summary.
func (r *Reach) SizeBytes() int64 { return r.size }

func (r *Reach) partBit(c int32, v indoor.PartitionID) bool {
	return r.parts[int(c)*r.pw+(int(v)>>6)]&(1<<(uint(v)&63)) != 0
}

// DoorReachesPart reports whether a walker who just crossed door d can go
// on to enter partition v (d's own enterable partitions included). False is
// exact for the summarized edge set; true may be conservative when the
// bitmap was dropped for budget. Excluded doors reach nothing.
func (r *Reach) DoorReachesPart(d indoor.DoorID, v indoor.PartitionID) bool {
	c := r.scc[d]
	if c < 0 {
		return false
	}
	if r.parts == nil {
		return true
	}
	return r.partBit(c, v)
}

// DownstreamMBR returns the MBR union of everything enterable after
// crossing door d; ok is false when nothing is (or d is excluded).
func (r *Reach) DownstreamMBR(d indoor.DoorID) (geom.Rect, bool) {
	c := r.scc[d]
	if c < 0 || !r.hasGeom[c] {
		return geom.Rect{}, false
	}
	return r.mbr[c], true
}

// MBRPrune reports whether door d is useless for a query at p whose
// remaining results must lie within walking distance `limit`: true when
// everything enterable after crossing d sits on p's own floor (so the
// planar Euclidean distance lower-bounds the walking distance, the same
// conservatism as the engines' per-partition Euclidean check) yet its MBR
// is strictly farther than limit. Strict >, so a boundary tie never drops
// a result that distance-tie rules could still admit.
func (r *Reach) MBRPrune(d indoor.DoorID, p indoor.Point, limit float64) bool {
	c := r.scc[d]
	if c < 0 || !r.hasGeom[c] {
		return true
	}
	if r.floorLo[c] != p.Floor || r.floorHi[c] != p.Floor {
		return false
	}
	return r.mbr[c].MinDist(p.XY()) > limit
}

// From is the reachable set of a query's seed doors (the usable leave doors
// of the source partition): the union of their SCCs' downstream summaries.
// Built once per query; the per-target checks are then O(seed SCCs) bit
// tests. The zero From (and any From built from a nil *Reach or a summary
// without the partition bitmap) answers true to everything — conservative,
// never wrong in the pruning direction.
type From struct {
	r       *Reach
	sccs    []int32
	decided bool
}

// FromDoors collects the distinct SCCs of the seed doors, skipping doors
// the usable filter (when non-nil) rejects. The result is exact iff the
// summary kept its partition bitmap.
func (r *Reach) FromDoors(seeds []indoor.DoorID, usable func(indoor.DoorID) bool) From {
	f := From{r: r, decided: r != nil && r.parts != nil}
	if r == nil {
		return f
	}
	for _, d := range seeds {
		if usable != nil && !usable(d) {
			continue
		}
		c := r.scc[d]
		if c < 0 {
			continue
		}
		dup := false
		for _, e := range f.sccs {
			if e == c {
				dup = true
				break
			}
		}
		if !dup {
			f.sccs = append(f.sccs, c)
		}
	}
	return f
}

// CanReachPart reports whether any seed door can go on to enter partition
// v. With the bitmap present, false is exact: no door-using path from the
// seeds ever enters v (in particular, no seeds at all means nothing is
// door-reachable).
func (f From) CanReachPart(v indoor.PartitionID) bool {
	if !f.decided {
		return true
	}
	for _, c := range f.sccs {
		if f.r.partBit(c, v) {
			return true
		}
	}
	return false
}

// AnyPart reports whether any of the given partitions is reachable from the
// seed set.
func (f From) AnyPart(vs []indoor.PartitionID) bool {
	if !f.decided {
		return true
	}
	for _, v := range vs {
		if f.CanReachPart(v) {
			return true
		}
	}
	return false
}
