package doorgraph

import (
	"math"
	"sync"
	"testing"

	"indoorsq/internal/indoor"
	"indoorsq/internal/testspaces"
)

// This file keeps the pre-CSR door graph — [][]Edge slice-of-slices
// adjacency and a binary-heap Dijkstra — verbatim as a reference
// implementation. The equivalence tests pin down that the CSR layout stores
// exactly the same edges in exactly the same order with bit-identical
// weights, and that the overhauled sweep produces Float64bits-identical
// distances. Predecessor and first-hop arrays are validated structurally
// (every prev chain realizes the claimed distance) rather than bitwise:
// when two shortest paths tie exactly, the 2-ary and 4-ary frontiers may
// settle them in different orders, and either predecessor is correct.

type legacyEdge struct {
	To int32
	W  float64
}

type legacyGraph struct {
	n   int
	fwd [][]legacyEdge
	rev [][]legacyEdge
}

// legacyBuild is the old sequential derivation: per-row appends, then the
// reverse adjacency appended in ascending source order.
func legacyBuild(sp *indoor.Space) *legacyGraph {
	n := sp.NumDoors()
	g := &legacyGraph{n: n, fwd: make([][]legacyEdge, n), rev: make([][]legacyEdge, n)}
	for di := 0; di < n; di++ {
		d := indoor.DoorID(di)
		for _, v := range sp.Door(d).Enterable {
			for _, nd := range sp.Partition(v).Leave {
				if nd == d {
					continue
				}
				w, _ := sp.WithinDoorsCached(v, d, nd)
				if math.IsInf(w, 1) {
					continue
				}
				g.fwd[di] = append(g.fwd[di], legacyEdge{To: int32(nd), W: w})
			}
		}
	}
	for di := 0; di < n; di++ {
		for _, e := range g.fwd[di] {
			g.rev[e.To] = append(g.rev[e.To], legacyEdge{To: int32(di), W: e.W})
		}
	}
	return g
}

// legacyDijkstra is the old sweep: binary heap, touch-then-relax.
func legacyDijkstra(g *legacyGraph, src int32, reverse bool) (dist []float64, prev []int32) {
	adj := g.fwd
	if reverse {
		adj = g.rev
	}
	dist = make([]float64, g.n)
	prev = make([]int32, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	type item struct {
		d int32
		p float64
	}
	var heap []item
	push := func(d int32, p float64) {
		heap = append(heap, item{d, p})
		i := len(heap) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if heap[parent].p <= heap[i].p {
				break
			}
			heap[i], heap[parent] = heap[parent], heap[i]
			i = parent
		}
	}
	pop := func() item {
		it := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i, n := 0, len(heap)
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < n && heap[l].p < heap[small].p {
				small = l
			}
			if r < n && heap[r].p < heap[small].p {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return it
	}
	dist[src] = 0
	push(src, 0)
	for len(heap) > 0 {
		it := pop()
		if it.p > dist[it.d] {
			continue
		}
		for _, e := range adj[it.d] {
			if nd := it.p + e.W; nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = it.d
				push(e.To, nd)
			}
		}
	}
	return dist, prev
}

// legacySpaces is the corpus the equivalence tests sweep: varied grids with
// one-way doors, multiple floors, and a concave-hallway space.
func legacySpaces() []*indoor.Space {
	return []*indoor.Space{
		testspaces.NewStrip().Space,
		testspaces.RandomGrid(7, 4, 5, 2, 7, 0.25),
		testspaces.RandomGrid(21, 5, 6, 3, 9, 0.4),
		testspaces.RandomGridConcave(5, 4, 5, 2, 6),
	}
}

// TestCSRMatchesLegacyEdgeOrder asserts both directions of the CSR layout
// hold exactly the legacy adjacency: same rows, same in-row order, and
// Float64bits-identical weights.
func TestCSRMatchesLegacyEdgeOrder(t *testing.T) {
	for si, sp := range legacySpaces() {
		g := Build(sp)
		ref := legacyBuild(sp)
		if g.N != ref.n {
			t.Fatalf("space %d: N = %d, want %d", si, g.N, ref.n)
		}
		total := 0
		for d := 0; d < g.N; d++ {
			for dir, rows := range [][][]legacyEdge{ref.fwd, ref.rev} {
				to, w := g.FwdRow(d)
				if dir == 1 {
					to, w = g.RevRow(d)
				}
				want := rows[d]
				if len(to) != len(want) {
					t.Fatalf("space %d dir %d door %d: row has %d edges, legacy %d",
						si, dir, d, len(to), len(want))
				}
				for i := range want {
					if to[i] != want[i].To {
						t.Fatalf("space %d dir %d door %d edge %d: to %d, legacy %d",
							si, dir, d, i, to[i], want[i].To)
					}
					if math.Float64bits(w[i]) != math.Float64bits(want[i].W) {
						t.Fatalf("space %d dir %d door %d edge %d: weight %x, legacy %x",
							si, dir, d, i, math.Float64bits(w[i]), math.Float64bits(want[i].W))
					}
				}
			}
			fTo, _ := g.FwdRow(d)
			total += len(fTo)
		}
		if total != g.NumEdges() {
			t.Fatalf("space %d: NumEdges %d, rows sum to %d", si, g.NumEdges(), total)
		}
	}
}

// TestSweepMatchesLegacyDijkstra asserts the CSR sweep's distances are
// Float64bits-identical to the legacy binary-heap sweep from every source,
// in both directions, and that the new prev chains realize those distances
// edge by edge.
func TestSweepMatchesLegacyDijkstra(t *testing.T) {
	for si, sp := range legacySpaces() {
		g := Build(sp)
		ref := legacyBuild(sp)
		s := g.AcquireScratch()
		for src := int32(0); src < int32(g.N); src++ {
			for _, reverse := range []bool{false, true} {
				s.Run(g, src, reverse)
				wantDist, _ := legacyDijkstra(ref, src, reverse)
				for d := 0; d < g.N; d++ {
					if math.Float64bits(s.DistAt(d)) != math.Float64bits(wantDist[d]) {
						t.Fatalf("space %d src %d rev %v: dist[%d] = %g, legacy %g",
							si, src, reverse, d, s.DistAt(d), wantDist[d])
					}
				}
				validatePrevChains(t, g, s, src, reverse)
			}
		}
		g.ReleaseScratch(s)
	}
}

// validatePrevChains walks every reached door's predecessor chain back to
// the source, re-summing edge weights in chain order and requiring the
// exact floating-point distance the sweep reported.
func validatePrevChains(t *testing.T, g *Graph, s *Scratch, src int32, reverse bool) {
	t.Helper()
	edgeW := func(from, to int32) (float64, bool) {
		rowTo, rowW := g.FwdRow(int(from))
		if reverse {
			rowTo, rowW = g.RevRow(int(from))
		}
		for i, cand := range rowTo {
			if cand == to {
				return rowW[i], true
			}
		}
		return 0, false
	}
	for d := 0; d < g.N; d++ {
		if math.IsInf(s.DistAt(d), 1) {
			if s.PrevAt(d) != -1 || s.FirstAt(d) != -1 {
				t.Fatalf("unreached door %d has prev %d first %d", d, s.PrevAt(d), s.FirstAt(d))
			}
			continue
		}
		// Collect the chain src -> ... -> d, then sum forward.
		var chain []int32
		for cur := int32(d); cur != src; cur = s.PrevAt(int(cur)) {
			chain = append(chain, cur)
			if len(chain) > g.N {
				t.Fatalf("src %d: prev cycle at door %d", src, d)
			}
		}
		sum := 0.0
		at := src
		for i := len(chain) - 1; i >= 0; i-- {
			w, ok := edgeW(at, chain[i])
			if !ok {
				t.Fatalf("src %d door %d: prev chain uses nonexistent edge %d->%d",
					src, d, at, chain[i])
			}
			sum += w
			at = chain[i]
		}
		if math.Float64bits(sum) != math.Float64bits(s.DistAt(d)) {
			t.Fatalf("src %d door %d: prev chain sums to %g, dist says %g",
				src, d, sum, s.DistAt(d))
		}
		// First hop must be the chain's first step (src's own entry is src).
		want := src
		if len(chain) > 0 {
			want = chain[len(chain)-1]
		}
		if got := s.FirstAt(d); got != want {
			t.Fatalf("src %d door %d: first hop %d, chain says %d", src, d, got, want)
		}
	}
}

// TestConcurrentSweepsRace hammers one shared graph with pooled scratches
// from many goroutines under -race, checking each sweep against a
// sequentially computed reference.
func TestConcurrentSweepsRace(t *testing.T) {
	sp := testspaces.RandomGrid(3, 4, 5, 2, 8, 0.3)
	g := Build(sp)
	refs := make([][]float64, g.N)
	for src := 0; src < g.N; src++ {
		refs[src], _ = g.Dijkstra(int32(src), false)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := g.AcquireScratch()
			defer g.ReleaseScratch(s)
			for rep := 0; rep < 40; rep++ {
				src := (w*31 + rep*7) % g.N
				s.Run(g, int32(src), false)
				for d := 0; d < g.N; d++ {
					if math.Float64bits(s.DistAt(d)) != math.Float64bits(refs[src][d]) {
						t.Errorf("worker %d src %d: dist[%d] = %g, want %g",
							w, src, d, s.DistAt(d), refs[src][d])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
