package doorgraph

import (
	"math"
	"sync/atomic"

	"indoorsq/internal/pq"
)

// Metrics aggregates process-wide Dijkstra sweep counters across every
// Scratch (build-time and query-time alike), plus the footprint of the most
// recently built graph. The obs registry exposes them as gauges; the
// counters are global because a Scratch is pooled and has no natural owner
// to report through.
var Metrics struct {
	// Sweeps counts completed or aborted run() invocations.
	Sweeps atomic.Int64
	// Settled counts doors settled (popped final) across all sweeps.
	Settled atomic.Int64
	// Doors, Edges and Bytes describe the last graph BuildWorkers
	// completed: door count, directed edge count, and exact CSR footprint.
	Doors atomic.Int64
	Edges atomic.Int64
	Bytes atomic.Int64
}

// node is one door's sweep state. The fields are fused into a single record
// padded to 32 bytes — half a cache line, and a size the compiler indexes
// with one shift — so visiting an edge head touches exactly one scratch
// line where the split dist/prev/first/stamp arrays of the old layout
// touched up to four. The padding also keeps a record from ever straddling
// a line boundary.
type node struct {
	dist  float64
	prev  int32
	first int32
	stamp uint32
	_     [12]byte
}

// Scratch is a reusable single-source Dijkstra working set. Distance,
// predecessor and first-hop entries are epoch-stamped: a run bumps the
// epoch instead of clearing the records, so resetting costs O(doors touched
// by the previous run), not O(N). Accessors treat unstamped entries as
// unreached (+Inf distance, -1 predecessor).
//
// A Scratch is not safe for concurrent use; acquire one per goroutine.
type Scratch struct {
	nodes []node
	epoch uint32

	// Early-exit target marks (RunTargets), stamped independently so the
	// target set of one run never leaks into the next.
	tmark  []uint32
	tepoch uint32

	h pq.Indexed
}

// NewScratch returns a Scratch for graphs with n doors. The frontier heap
// is pre-grown to n entries so a full sweep performs no interleaved append
// growth.
func NewScratch(n int) *Scratch {
	s := &Scratch{
		nodes: make([]node, n),
		tmark: make([]uint32, n),
	}
	s.h.Grow(n)
	return s
}

// AcquireScratch returns a pooled Scratch sized for the graph. Release it
// with ReleaseScratch when the sweep is done so other goroutines can reuse
// its buffers.
func (g *Graph) AcquireScratch() *Scratch {
	if s, ok := g.scratch.Get().(*Scratch); ok {
		return s
	}
	return NewScratch(g.N)
}

// ReleaseScratch returns a Scratch to the graph's pool.
func (g *Graph) ReleaseScratch(s *Scratch) {
	if s != nil && len(s.nodes) == g.N {
		g.scratch.Put(s)
	}
}

// reset starts a new epoch, clearing the stamps only on wraparound.
func (s *Scratch) reset() {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.nodes {
			s.nodes[i].stamp = 0
		}
		s.epoch = 1
	}
	s.h.Reset()
}

// DistAt returns the shortest distance of door d from the last run's
// source (+Inf when unreached).
func (s *Scratch) DistAt(d int) float64 {
	if s.nodes[d].stamp != s.epoch {
		return math.Inf(1)
	}
	return s.nodes[d].dist
}

// PrevAt returns door d's predecessor (successor for reverse runs) on the
// shortest path, or -1 when unreached (and for the source itself).
func (s *Scratch) PrevAt(d int) int32 {
	if s.nodes[d].stamp != s.epoch {
		return -1
	}
	return s.nodes[d].prev
}

// FirstAt returns the first door after the source on the shortest path to
// d (d itself for the source's direct neighbors, the source for d == src),
// or -1 when unreached.
func (s *Scratch) FirstAt(d int) int32 {
	if s.nodes[d].stamp != s.epoch {
		return -1
	}
	return s.nodes[d].first
}

// CopyDist fills dst (length >= N) with the per-door distances.
func (s *Scratch) CopyDist(dst []float64) {
	inf := math.Inf(1)
	for i := range s.nodes {
		if s.nodes[i].stamp == s.epoch {
			dst[i] = s.nodes[i].dist
		} else {
			dst[i] = inf
		}
	}
}

// CopyPrev fills dst (length >= N) with the per-door predecessors.
func (s *Scratch) CopyPrev(dst []int32) {
	for i := range s.nodes {
		if s.nodes[i].stamp == s.epoch {
			dst[i] = s.nodes[i].prev
		} else {
			dst[i] = -1
		}
	}
}

// CopyFirst fills dst (length >= N) with the per-door first hops.
func (s *Scratch) CopyFirst(dst []int32) {
	for i := range s.nodes {
		if s.nodes[i].stamp == s.epoch {
			dst[i] = s.nodes[i].first
		} else {
			dst[i] = -1
		}
	}
}

// Run executes a full single-source Dijkstra from src (see Graph.Dijkstra
// for the forward/reverse semantics), leaving the results readable through
// the accessors until the next run.
func (s *Scratch) Run(g *Graph, src int32, reverse bool) {
	adj := &g.fwd
	if reverse {
		adj = &g.rev
	}
	s.runFast(adj, src, -1)
}

// RunChecked is Run with an amortized cancellation probe: check is invoked
// after every `every` settled doors (every <= 0 defaults to 64) and its
// first non-nil error aborts the sweep and is returned. The accessors then
// describe a partial relaxation; callers must not trust unreached entries.
func (s *Scratch) RunChecked(g *Graph, src int32, reverse bool, every int, check func() error) error {
	if every <= 0 {
		every = 64
	}
	if check == nil {
		s.run(g, src, reverse, 0, 0, nil, nil)
		return nil
	}
	return s.run(g, src, reverse, 0, every, check, nil)
}

// RunPruned is Run with an edge filter: relaxations into doors for which
// allow reports false are skipped, exactly as if those doors (and every
// edge into them) were removed from the graph; they end up unreached (+Inf
// distance, -1 predecessor). The filter is not applied to src itself. A nil
// allow is Run. Conservative reachability filters (e.g. "door can reach the
// goal" from internal/reach summaries) leave the distances of all surviving
// doors bit-identical to an unfiltered sweep, because every door on a
// shortest path to an allowed door must itself be allowed.
func (s *Scratch) RunPruned(g *Graph, src int32, reverse bool, allow func(int32) bool) {
	if allow == nil {
		s.Run(g, src, reverse)
		return
	}
	s.run(g, src, reverse, 0, 0, nil, allow)
}

// RunTargets is Run with an early exit: the sweep stops as soon as every
// door in targets has been settled (popped with its final distance), which
// for a single target turns an all-pairs sweep into a goal-directed one.
// Unreachable targets cannot settle; the sweep then ends when the frontier
// empties, exactly like Run.
func (s *Scratch) RunTargets(g *Graph, src int32, reverse bool, targets []int32) {
	adj := &g.fwd
	if reverse {
		adj = &g.rev
	}
	if len(targets) == 0 {
		s.runFast(adj, src, -1)
		return
	}
	// One target — the SPDQ case — keeps the goal in a register instead of
	// paying two tmark loads on every pop of the general loop.
	if len(targets) == 1 {
		s.runFast(adj, src, targets[0])
		return
	}
	s.tepoch++
	if s.tepoch == 0 {
		for i := range s.tmark {
			s.tmark[i] = 0
		}
		s.tepoch = 1
	}
	remaining := 0
	for _, t := range targets {
		if s.tmark[t] != s.tepoch {
			s.tmark[t] = s.tepoch
			remaining++
		}
	}
	s.run(g, src, reverse, remaining, 0, nil, nil)
}

// runFast is the specialized sweep behind Run and single-target RunTargets:
// no cancellation probe and no target set, so the pop loop carries nothing
// but the settle count (and, when target >= 0, one register compare for the
// goal-directed early exit).
//
// The relaxation iterates one direction's CSR arrays directly: row bounds
// come from one offset array and the target/weight scans are sequential, so
// the hardware prefetcher can run ahead of the sweep. Each row is resliced
// once (with the weight view pinned to the row length) so the inner loop is
// bounds-check free. A door is stamped only when a strictly better distance
// is written — the unstamped default (+Inf, -1) is never materialized — and
// an improvement to an already-queued door is a decrease-key on the indexed
// heap, so no stale entries exist and every Pop is final.
func (s *Scratch) runFast(adj *csr, src, target int32) {
	off, to, ws := adj.off, adj.to, adj.w
	nodes := s.nodes
	s.reset()
	epoch := s.epoch
	nodes[src] = node{dist: 0, prev: -1, first: src, stamp: epoch}
	s.h.Push(src, 0)
	settled := 0
	for s.h.Len() > 0 {
		d, dd := s.h.Pop()
		settled++
		if d == target {
			break
		}
		isSrc := d == src
		fd := nodes[d].first
		row := to[off[d]:off[d+1]]
		wr := ws[off[d]:off[d+1]]
		wr = wr[:len(row)]
		for i, t := range row {
			nd := dd + wr[i]
			nt := &nodes[t]
			if nt.stamp == epoch {
				if nd >= nt.dist {
					continue
				}
				nt.dist = nd
				nt.prev = d
				if isSrc {
					nt.first = t
				} else {
					nt.first = fd
				}
				s.h.Decrease(t, nd)
				continue
			}
			nt.stamp = epoch
			nt.dist = nd
			nt.prev = d
			if isSrc {
				nt.first = t
			} else {
				nt.first = fd
			}
			s.h.Push(t, nd)
		}
	}
	Metrics.Sweeps.Add(1)
	Metrics.Settled.Add(int64(settled))
}

// run is the general sweep behind RunChecked, RunPruned and multi-target
// RunTargets; remainingTargets > 0 enables the early exit against the tmark
// set, a non-nil check is polled every `every` settled doors, and a non-nil
// allow drops relaxations into rejected doors.
func (s *Scratch) run(g *Graph, src int32, reverse bool, remainingTargets, every int, check func() error, allow func(int32) bool) error {
	adj := &g.fwd
	if reverse {
		adj = &g.rev
	}
	off, to, ws := adj.off, adj.to, adj.w
	nodes := s.nodes
	s.reset()
	epoch := s.epoch
	nodes[src] = node{dist: 0, prev: -1, first: src, stamp: epoch}
	s.h.Push(src, 0)
	settled := 0
	defer func() {
		Metrics.Sweeps.Add(1)
		Metrics.Settled.Add(int64(settled))
	}()
	for s.h.Len() > 0 {
		d, dd := s.h.Pop()
		settled++
		if check != nil && settled%every == 0 {
			if err := check(); err != nil {
				return err
			}
		}
		if remainingTargets > 0 && s.tmark[d] == s.tepoch {
			s.tmark[d] = s.tepoch - 1 // settle each target once
			if remainingTargets--; remainingTargets == 0 {
				return nil
			}
		}
		isSrc := d == src
		fd := nodes[d].first
		row := to[off[d]:off[d+1]]
		wr := ws[off[d]:off[d+1]]
		wr = wr[:len(row)]
		for i, t := range row {
			if allow != nil && !allow(t) {
				continue
			}
			nd := dd + wr[i]
			nt := &nodes[t]
			if nt.stamp == epoch {
				if nd >= nt.dist {
					continue
				}
				nt.dist = nd
				nt.prev = d
				if isSrc {
					nt.first = t
				} else {
					nt.first = fd
				}
				s.h.Decrease(t, nd)
				continue
			}
			nt.stamp = epoch
			nt.dist = nd
			nt.prev = d
			if isSrc {
				nt.first = t
			} else {
				nt.first = fd
			}
			s.h.Push(t, nd)
		}
	}
	return nil
}
