package doorgraph

import (
	"math"
	"sync/atomic"

	"indoorsq/internal/pq"
)

// Metrics aggregates process-wide Dijkstra sweep counters across every
// Scratch (build-time and query-time alike). The obs registry exposes them
// as gauges; the counters are global because a Scratch is pooled and has no
// natural owner to report through.
var Metrics struct {
	// Sweeps counts completed or aborted run() invocations.
	Sweeps atomic.Int64
	// Settled counts doors settled (popped final) across all sweeps.
	Settled atomic.Int64
}

// Scratch is a reusable single-source Dijkstra working set. Distance,
// predecessor and first-hop entries are epoch-stamped: a run bumps the
// epoch instead of clearing the arrays, so resetting costs O(doors touched
// by the previous run), not O(N). Accessors treat unstamped entries as
// unreached (+Inf distance, -1 predecessor).
//
// A Scratch is not safe for concurrent use; acquire one per goroutine.
type Scratch struct {
	dist  []float64
	prev  []int32
	first []int32 // first door after src on the shortest path src -> t
	stamp []uint32
	epoch uint32

	// Early-exit target marks (RunTargets), stamped independently so the
	// target set of one run never leaks into the next.
	tmark  []uint32
	tepoch uint32

	h pq.Heap[int32]
}

// NewScratch returns a Scratch for graphs with n doors.
func NewScratch(n int) *Scratch {
	return &Scratch{
		dist:  make([]float64, n),
		prev:  make([]int32, n),
		first: make([]int32, n),
		stamp: make([]uint32, n),
		tmark: make([]uint32, n),
	}
}

// AcquireScratch returns a pooled Scratch sized for the graph. Release it
// with ReleaseScratch when the sweep is done so other goroutines can reuse
// its buffers.
func (g *Graph) AcquireScratch() *Scratch {
	if s, ok := g.scratch.Get().(*Scratch); ok {
		return s
	}
	return NewScratch(g.N)
}

// ReleaseScratch returns a Scratch to the graph's pool.
func (g *Graph) ReleaseScratch(s *Scratch) {
	if s != nil && len(s.stamp) == g.N {
		g.scratch.Put(s)
	}
}

// reset starts a new epoch, clearing the stamp arrays only on wraparound.
func (s *Scratch) reset() {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	s.h.Reset()
}

// touch stamps door d for the current epoch with unreached defaults.
func (s *Scratch) touch(d int32) {
	if s.stamp[d] != s.epoch {
		s.stamp[d] = s.epoch
		s.dist[d] = math.Inf(1)
		s.prev[d] = -1
		s.first[d] = -1
	}
}

// DistAt returns the shortest distance of door d from the last run's
// source (+Inf when unreached).
func (s *Scratch) DistAt(d int) float64 {
	if s.stamp[d] != s.epoch {
		return math.Inf(1)
	}
	return s.dist[d]
}

// PrevAt returns door d's predecessor (successor for reverse runs) on the
// shortest path, or -1 when unreached (and for the source itself).
func (s *Scratch) PrevAt(d int) int32 {
	if s.stamp[d] != s.epoch {
		return -1
	}
	return s.prev[d]
}

// FirstAt returns the first door after the source on the shortest path to
// d (d itself for the source's direct neighbors, the source for d == src),
// or -1 when unreached.
func (s *Scratch) FirstAt(d int) int32 {
	if s.stamp[d] != s.epoch {
		return -1
	}
	return s.first[d]
}

// CopyDist fills dst (length >= N) with the per-door distances.
func (s *Scratch) CopyDist(dst []float64) {
	for i := range s.stamp {
		dst[i] = s.DistAt(i)
	}
}

// CopyPrev fills dst (length >= N) with the per-door predecessors.
func (s *Scratch) CopyPrev(dst []int32) {
	for i := range s.stamp {
		dst[i] = s.PrevAt(i)
	}
}

// CopyFirst fills dst (length >= N) with the per-door first hops.
func (s *Scratch) CopyFirst(dst []int32) {
	for i := range s.stamp {
		dst[i] = s.FirstAt(i)
	}
}

// Run executes a full single-source Dijkstra from src (see Graph.Dijkstra
// for the forward/reverse semantics), leaving the results readable through
// the accessors until the next run.
func (s *Scratch) Run(g *Graph, src int32, reverse bool) {
	s.run(g, src, reverse, 0, 0, nil)
}

// RunChecked is Run with an amortized cancellation probe: check is invoked
// after every `every` settled doors (every <= 0 defaults to 64) and its
// first non-nil error aborts the sweep and is returned. The accessors then
// describe a partial relaxation; callers must not trust unreached entries.
func (s *Scratch) RunChecked(g *Graph, src int32, reverse bool, every int, check func() error) error {
	if every <= 0 {
		every = 64
	}
	if check == nil {
		s.run(g, src, reverse, 0, 0, nil)
		return nil
	}
	return s.run(g, src, reverse, 0, every, check)
}

// RunTargets is Run with an early exit: the sweep stops as soon as every
// door in targets has been settled (popped with its final distance), which
// for a single target turns an all-pairs sweep into a goal-directed one.
// Unreachable targets cannot settle; the sweep then ends when the frontier
// empties, exactly like Run.
func (s *Scratch) RunTargets(g *Graph, src int32, reverse bool, targets []int32) {
	if len(targets) == 0 {
		s.run(g, src, reverse, 0, 0, nil)
		return
	}
	s.tepoch++
	if s.tepoch == 0 {
		for i := range s.tmark {
			s.tmark[i] = 0
		}
		s.tepoch = 1
	}
	remaining := 0
	for _, t := range targets {
		if s.tmark[t] != s.tepoch {
			s.tmark[t] = s.tepoch
			remaining++
		}
	}
	s.run(g, src, reverse, remaining, 0, nil)
}

// run is the shared sweep; remainingTargets > 0 enables the early exit
// against the tmark set, and a non-nil check is polled every `every`
// settled doors (RunChecked).
func (s *Scratch) run(g *Graph, src int32, reverse bool, remainingTargets, every int, check func() error) error {
	adj := g.Fwd
	if reverse {
		adj = g.Rev
	}
	s.reset()
	s.touch(src)
	s.dist[src] = 0
	s.first[src] = src
	s.h.Push(src, 0)
	settled := 0
	defer func() {
		Metrics.Sweeps.Add(1)
		Metrics.Settled.Add(int64(settled))
	}()
	for s.h.Len() > 0 {
		d, dd := s.h.Pop()
		if dd > s.dist[d] {
			continue
		}
		settled++
		if check != nil && settled%every == 0 {
			if err := check(); err != nil {
				return err
			}
		}
		if remainingTargets > 0 && s.tmark[d] == s.tepoch {
			s.tmark[d] = s.tepoch - 1 // settle each target once
			if remainingTargets--; remainingTargets == 0 {
				return nil
			}
		}
		for _, e := range adj[d] {
			nd := dd + e.W
			s.touch(e.To)
			if nd < s.dist[e.To] {
				s.dist[e.To] = nd
				s.prev[e.To] = d
				if d == src {
					s.first[e.To] = e.To
				} else {
					s.first[e.To] = s.first[d]
				}
				s.h.Push(e.To, nd)
			}
		}
	}
	return nil
}
