// Package doorgraph builds the directed door connectivity graph of an
// indoor space — nodes are doors, and an edge d -> d' with weight
// fd2d(v, d, d') exists when one can enter partition v through d and leave
// it through d' — and runs single-source Dijkstra in either direction.
// It is the construction-time substrate of IDINDEX and IP/VIP-TREE.
package doorgraph

import (
	"math"

	"indoorsq/internal/indoor"
	"indoorsq/internal/pq"
)

// Edge is a weighted directed connection between doors.
type Edge struct {
	To int32
	W  float64
}

// Graph is the door graph with forward and reverse adjacency.
type Graph struct {
	N   int
	Fwd [][]Edge // Fwd[d]: edges leaving door d
	Rev [][]Edge // Rev[d]: reversed edges (for distances *to* a door)
}

// Build derives the door graph of a space.
func Build(sp *indoor.Space) *Graph {
	n := sp.NumDoors()
	g := &Graph{N: n, Fwd: make([][]Edge, n), Rev: make([][]Edge, n)}
	for di := 0; di < n; di++ {
		d := indoor.DoorID(di)
		for _, v := range sp.Door(d).Enterable {
			for _, nd := range sp.Partition(v).Leave {
				if nd == d {
					continue
				}
				w := sp.WithinDoors(v, d, nd)
				if math.IsInf(w, 1) {
					continue
				}
				g.Fwd[di] = append(g.Fwd[di], Edge{To: int32(nd), W: w})
				g.Rev[nd] = append(g.Rev[nd], Edge{To: int32(di), W: w})
			}
		}
	}
	return g
}

// SizeBytes returns a deep size estimate of the adjacency lists.
func (g *Graph) SizeBytes() int64 {
	var sz int64
	for i := range g.Fwd {
		sz += int64(len(g.Fwd[i])+len(g.Rev[i])) * 16
	}
	return sz + int64(g.N)*48
}

// Dijkstra computes single-source shortest distances over the door graph.
// With reverse = false, dist[t] is the distance from src to t and prev[t]
// is t's predecessor on that path. With reverse = true, dist[t] is the
// distance from t to src and prev[t] is t's successor on that path.
// Unreachable doors have dist +Inf and prev -1.
func (g *Graph) Dijkstra(src int32, reverse bool) (dist []float64, prev []int32) {
	adj := g.Fwd
	if reverse {
		adj = g.Rev
	}
	dist = make([]float64, g.N)
	prev = make([]int32, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	var h pq.Heap[int32]
	h.Push(src, 0)
	for h.Len() > 0 {
		d, dd := h.Pop()
		if dd > dist[d] {
			continue
		}
		for _, e := range adj[d] {
			if nd := dd + e.W; nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = d
				h.Push(e.To, nd)
			}
		}
	}
	return dist, prev
}
