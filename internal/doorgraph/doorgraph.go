// Package doorgraph builds the directed door connectivity graph of an
// indoor space — nodes are doors, and an edge d -> d' with weight
// fd2d(v, d, d') exists when one can enter partition v through d and leave
// it through d' — and runs single-source Dijkstra in either direction.
// It is the construction-time substrate of IDINDEX and IP/VIP-TREE.
//
// Both directions are stored in compressed-sparse-row, struct-of-arrays
// form: a row-offset array plus flat target and weight arrays. Compared to
// the earlier [][]Edge slice-of-slices this removes one pointer chase per
// row, drops the 4 padding bytes of every 16-byte Edge (12 payload bytes per
// edge), and lays all edges out contiguously in source-door order, so a
// Dijkstra sweep scans memory forward instead of hopping between per-row
// heap allocations. Three flat arrays per direction are also exactly the
// shape a snapshot codec can write and mmap back without pointer fixups.
//
// Dijkstra state (distance, predecessor and first-hop arrays plus the
// frontier heap) lives in a reusable Scratch managed by a per-graph
// sync.Pool, so repeated sweeps — one per door during index construction —
// allocate nothing and reset in O(doors touched) rather than O(N).
package doorgraph

import (
	"math"

	"sync"

	"indoorsq/internal/exec"
	"indoorsq/internal/indoor"
)

// csr is one direction's adjacency in compressed-sparse-row form: the
// neighbors of door d are to[off[d]:off[d+1]] with weights at the same
// positions of w.
type csr struct {
	off []int32 // len N+1, ascending; off[N] == len(to)
	to  []int32
	w   []float64
}

// Graph is the door graph with forward and reverse CSR adjacency.
type Graph struct {
	N   int
	fwd csr // edges leaving each door
	rev csr // reversed edges (for distances *to* a door)

	scratch sync.Pool // *Scratch sized for N
}

// Build derives the door graph of a space using one worker per available
// CPU. The result is identical to a sequential build.
func Build(sp *indoor.Space) *Graph { return BuildWorkers(sp, 0) }

// chunkRows is one build chunk's forward rows, buffered in final edge order:
// doors [lo, hi) contributed rowLen[di-lo] edges each, laid out back to back
// in to/w. Because chunk contents depend only on the doors they cover, the
// assembled CSR arrays are byte-identical for every worker count.
type chunkRows struct {
	lo, hi int
	rowLen []int32
	to     []int32
	w      []float64
}

// BuildWorkers derives the door graph with an explicit worker count
// (workers <= 0 means GOMAXPROCS). One chunked parallel pass computes every
// edge weight exactly once, buffering each chunk's rows in final order;
// row lengths are then prefix-summed into the offset array and the buffers
// copied into the flat CSR arrays — no per-row append growth on the final
// arrays and, more importantly, a single distance-cache lookup per edge
// (a separate counting pass would double them, and at 10^5 doors the
// lookups dominate the build). The reverse adjacency is then derived from
// the forward rows in ascending source-door order, preserving the
// historical edge order exactly.
func BuildWorkers(sp *indoor.Space, workers int) *Graph {
	n := sp.NumDoors()
	g := &Graph{N: n}

	// Pass 1: enumerate and weigh every forward edge, chunk-buffered.
	var mu sync.Mutex
	var chunks []chunkRows
	exec.Chunks(n, workers, func(lo, hi int) {
		b := chunkRows{lo: lo, hi: hi, rowLen: make([]int32, hi-lo)}
		for di := lo; di < hi; di++ {
			d := indoor.DoorID(di)
			var cnt int32
			for _, v := range sp.Door(d).Enterable {
				for _, nd := range sp.Partition(v).Leave {
					if nd == d {
						continue
					}
					w, _ := sp.WithinDoorsCached(v, d, nd)
					if math.IsInf(w, 1) {
						continue
					}
					b.to = append(b.to, int32(nd))
					b.w = append(b.w, w)
					cnt++
				}
			}
			b.rowLen[di-lo] = cnt
		}
		mu.Lock()
		chunks = append(chunks, b)
		mu.Unlock()
	})

	// Exact prefix sum over the buffered row lengths.
	off := make([]int32, n+1)
	for _, b := range chunks {
		for i, c := range b.rowLen {
			off[b.lo+i+1] = c
		}
	}
	var total int64
	for i := 0; i < n; i++ {
		total += int64(off[i+1])
		if total > math.MaxInt32 {
			panic("doorgraph: edge count overflows int32 CSR offsets")
		}
		off[i+1] = int32(total)
	}
	m := int(total)
	g.fwd = csr{off: off, to: make([]int32, m), w: make([]float64, m)}

	// Pass 2: each chunk's buffer is its doors' rows in final order, so
	// assembly is one contiguous copy per array per chunk.
	for _, b := range chunks {
		copy(g.fwd.to[off[b.lo]:off[b.hi]], b.to)
		copy(g.fwd.w[off[b.lo]:off[b.hi]], b.w)
	}

	// Reverse adjacency, derived deterministically: scanning sources in
	// ascending order writes each rev row in exactly the order the old
	// sequential build appended it.
	roff := make([]int32, n+1)
	for _, t := range g.fwd.to {
		roff[t+1]++
	}
	for i := 0; i < n; i++ {
		roff[i+1] += roff[i]
	}
	g.rev = csr{off: roff, to: make([]int32, m), w: make([]float64, m)}
	pos := make([]int32, n)
	copy(pos, roff[:n])
	for di := 0; di < n; di++ {
		for i := off[di]; i < off[di+1]; i++ {
			t := g.fwd.to[i]
			p := pos[t]
			pos[t] = p + 1
			g.rev.to[p] = int32(di)
			g.rev.w[p] = g.fwd.w[i]
		}
	}

	Metrics.Doors.Store(int64(n))
	Metrics.Edges.Store(int64(m))
	Metrics.Bytes.Store(g.SizeBytes())
	return g
}

// NumEdges returns the number of directed edges (counted once; the reverse
// adjacency mirrors the same edge set).
func (g *Graph) NumEdges() int { return len(g.fwd.to) }

// FwdRow returns door d's outgoing edges as parallel target/weight slices.
// The slices alias the graph's CSR arrays and must not be modified.
func (g *Graph) FwdRow(d int) (to []int32, w []float64) {
	lo, hi := g.fwd.off[d], g.fwd.off[d+1]
	return g.fwd.to[lo:hi], g.fwd.w[lo:hi]
}

// RevRow returns the reversed edges into door d (sources and weights of the
// forward edges pointing at d), in ascending source order.
func (g *Graph) RevRow(d int) (to []int32, w []float64) {
	lo, hi := g.rev.off[d], g.rev.off[d+1]
	return g.rev.to[lo:hi], g.rev.w[lo:hi]
}

// SizeBytes returns the exact CSR footprint: two offset arrays of N+1
// int32s and, per direction, one int32 target plus one float64 weight per
// edge. There are no per-row slice headers to estimate.
func (g *Graph) SizeBytes() int64 {
	m := int64(len(g.fwd.to))
	offs := int64(len(g.fwd.off) + len(g.rev.off))
	return offs*4 + 2*m*(4+8)
}

// Dijkstra computes single-source shortest distances over the door graph.
// With reverse = false, dist[t] is the distance from src to t and prev[t]
// is t's predecessor on that path. With reverse = true, dist[t] is the
// distance from t to src and prev[t] is t's successor on that path.
// Unreachable doors have dist +Inf and prev -1.
//
// The unreached encoding is exact, not approximate: the sweep stamps a
// door's scratch record only on a strict distance improvement, so a door no
// finite-weight path reaches is never stamped, and CopyDist/CopyPrev
// synthesize exactly +Inf / -1 for it. Consumers may therefore treat
// dist[t] == +Inf as "no path" with no epsilon, and reachability summaries
// (internal/reach) built from the same CSR agree bit-for-bit with these
// matrices. TestUnreachedEncoding pins this contract.
//
// The returned slices are freshly allocated; construction loops that sweep
// many sources should use AcquireScratch and Scratch.Run instead.
func (g *Graph) Dijkstra(src int32, reverse bool) (dist []float64, prev []int32) {
	s := g.AcquireScratch()
	defer g.ReleaseScratch(s)
	s.Run(g, src, reverse)
	dist = make([]float64, g.N)
	prev = make([]int32, g.N)
	s.CopyDist(dist)
	s.CopyPrev(prev)
	return dist, prev
}
