// Package doorgraph builds the directed door connectivity graph of an
// indoor space — nodes are doors, and an edge d -> d' with weight
// fd2d(v, d, d') exists when one can enter partition v through d and leave
// it through d' — and runs single-source Dijkstra in either direction.
// It is the construction-time substrate of IDINDEX and IP/VIP-TREE.
//
// Dijkstra state (distance, predecessor and first-hop arrays plus the
// frontier heap) lives in a reusable Scratch managed by a per-graph
// sync.Pool, so repeated sweeps — one per door during index construction —
// allocate nothing and reset in O(doors touched) rather than O(N).
package doorgraph

import (
	"math"
	"runtime"
	"sync"
	"unsafe"

	"indoorsq/internal/indoor"
)

// Edge is a weighted directed connection between doors.
type Edge struct {
	To int32
	W  float64
}

// Graph is the door graph with forward and reverse adjacency.
type Graph struct {
	N   int
	Fwd [][]Edge // Fwd[d]: edges leaving door d
	Rev [][]Edge // Rev[d]: reversed edges (for distances *to* a door)

	scratch sync.Pool // *Scratch sized for N
}

// Build derives the door graph of a space using one worker per available
// CPU. The result is identical to a sequential build.
func Build(sp *indoor.Space) *Graph { return BuildWorkers(sp, 0) }

// BuildWorkers derives the door graph with an explicit worker count
// (workers <= 0 means GOMAXPROCS). The forward rows are computed in
// parallel — each worker owns disjoint Fwd rows — and the reverse adjacency
// is then derived from them in source-door order, so the adjacency lists
// are byte-identical regardless of the worker count.
func BuildWorkers(sp *indoor.Space, workers int) *Graph {
	n := sp.NumDoors()
	g := &Graph{N: n, Fwd: make([][]Edge, n), Rev: make([][]Edge, n)}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for di := range next {
				d := indoor.DoorID(di)
				for _, v := range sp.Door(d).Enterable {
					for _, nd := range sp.Partition(v).Leave {
						if nd == d {
							continue
						}
						w, _ := sp.WithinDoorsCached(v, d, nd)
						if math.IsInf(w, 1) {
							continue
						}
						g.Fwd[di] = append(g.Fwd[di], Edge{To: int32(nd), W: w})
					}
				}
			}
		}()
	}
	for di := 0; di < n; di++ {
		next <- di
	}
	close(next)
	wg.Wait()

	// Reverse adjacency, derived deterministically: scanning sources in
	// ascending order appends Rev entries in exactly the order the old
	// sequential build produced.
	cnt := make([]int32, n)
	for di := 0; di < n; di++ {
		for _, e := range g.Fwd[di] {
			cnt[e.To]++
		}
	}
	for di := 0; di < n; di++ {
		if cnt[di] > 0 {
			g.Rev[di] = make([]Edge, 0, cnt[di])
		}
	}
	for di := 0; di < n; di++ {
		for _, e := range g.Fwd[di] {
			g.Rev[e.To] = append(g.Rev[e.To], Edge{To: int32(di), W: e.W})
		}
	}
	return g
}

// SizeBytes returns a deep size estimate of the adjacency lists.
func (g *Graph) SizeBytes() int64 {
	const (
		edgeSize   = int64(unsafe.Sizeof(Edge{}))
		headerSize = int64(unsafe.Sizeof([]Edge(nil))) * 2 // Fwd[i] + Rev[i]
	)
	var sz int64
	for i := range g.Fwd {
		sz += int64(len(g.Fwd[i])+len(g.Rev[i])) * edgeSize
	}
	return sz + int64(g.N)*headerSize
}

// Dijkstra computes single-source shortest distances over the door graph.
// With reverse = false, dist[t] is the distance from src to t and prev[t]
// is t's predecessor on that path. With reverse = true, dist[t] is the
// distance from t to src and prev[t] is t's successor on that path.
// Unreachable doors have dist +Inf and prev -1.
//
// The returned slices are freshly allocated; construction loops that sweep
// many sources should use AcquireScratch and Scratch.Run instead.
func (g *Graph) Dijkstra(src int32, reverse bool) (dist []float64, prev []int32) {
	s := g.AcquireScratch()
	defer g.ReleaseScratch(s)
	s.Run(g, src, reverse)
	dist = make([]float64, g.N)
	prev = make([]int32, g.N)
	s.CopyDist(dist)
	s.CopyPrev(prev)
	return dist, prev
}
