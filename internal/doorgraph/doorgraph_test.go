package doorgraph

import (
	"math"
	"testing"

	"indoorsq/internal/indoor"
	"indoorsq/internal/testspaces"
)

func TestBuildStrip(t *testing.T) {
	f := testspaces.NewStrip()
	g := Build(f.Space)
	if g.N != f.Space.NumDoors() {
		t.Fatalf("N = %d, want %d", g.N, f.Space.NumDoors())
	}
	// D1 enters the hall and R1; from the hall every other hall door is
	// reachable in one hop: 6 hall doors + 0 from R1 (its only door is D1).
	if to, _ := g.FwdRow(int(f.D1)); len(to) != 6 {
		t.Fatalf("fwd(D1) = %d edges, want 6", len(to))
	}
	// One-way D8 has forward edges only out of R7.
	d8To, _ := g.FwdRow(int(f.D8))
	for _, to := range d8To {
		if indoor.DoorID(to) == f.D8 {
			t.Fatal("self edge")
		}
	}
	// D8 is reachable only by entering R6: only D6 has an edge to D8.
	var into []int32
	for d := 0; d < g.N; d++ {
		to, _ := g.FwdRow(d)
		for _, t := range to {
			if indoor.DoorID(t) == f.D8 {
				into = append(into, int32(d))
			}
		}
	}
	if len(into) != 1 || indoor.DoorID(into[0]) != f.D6 {
		t.Fatalf("edges into D8 from %v, want [D6]", into)
	}
	// The reverse rows must mirror the same edge set.
	revTo, _ := g.RevRow(int(f.D8))
	if len(revTo) != 1 || indoor.DoorID(revTo[0]) != f.D6 {
		t.Fatalf("rev(D8) = %v, want [D6]", revTo)
	}
}

func TestDijkstraForwardVsReverse(t *testing.T) {
	sp := testspaces.RandomGrid(3, 4, 4, 2, 6, 0.3)
	g := Build(sp)
	// dist_fwd(a -> b) must equal dist_rev measured from b.
	for a := int32(0); a < int32(g.N); a += 3 {
		fwd, _ := g.Dijkstra(a, false)
		for b := int32(0); b < int32(g.N); b += 5 {
			rev, _ := g.Dijkstra(b, true)
			if math.Abs(fwd[b]-rev[a]) > 1e-9 &&
				!(math.IsInf(fwd[b], 1) && math.IsInf(rev[a], 1)) {
				t.Fatalf("fwd[%d->%d]=%g != rev=%g", a, b, fwd[b], rev[a])
			}
		}
	}
}

func TestDijkstraPrevChainsReachSource(t *testing.T) {
	f := testspaces.NewStrip()
	g := Build(f.Space)
	dist, prev := g.Dijkstra(int32(f.D1), false)
	for d := 0; d < g.N; d++ {
		if math.IsInf(dist[d], 1) {
			if prev[d] != -1 {
				t.Fatalf("unreachable door %d has prev %d", d, prev[d])
			}
			continue
		}
		// Walk predecessors back to the source.
		seen := 0
		for cur := int32(d); cur != int32(f.D1); cur = prev[cur] {
			if prev[cur] < 0 {
				t.Fatalf("door %d: broken prev chain at %d", d, cur)
			}
			if seen++; seen > g.N {
				t.Fatalf("door %d: prev cycle", d)
			}
		}
	}
}

func TestDijkstraTriangle(t *testing.T) {
	sp := testspaces.RandomGrid(9, 3, 5, 1, 4, 0)
	g := Build(sp)
	d0, _ := g.Dijkstra(0, false)
	for m := int32(1); m < int32(g.N); m++ {
		dm, _ := g.Dijkstra(m, false)
		for to := 0; to < g.N; to++ {
			if d0[to] > d0[m]+dm[to]+1e-9 {
				t.Fatalf("triangle violated: 0->%d = %g > 0->%d->%d = %g",
					to, d0[to], m, to, d0[m]+dm[to])
			}
		}
	}
}

// TestSizeBytesExact pins SizeBytes to the exact CSR footprint: two int32
// offset arrays of N+1 entries and, per direction, 12 bytes per edge.
func TestSizeBytesExact(t *testing.T) {
	g := Build(testspaces.NewStrip().Space)
	m := int64(g.NumEdges())
	want := 2*int64(g.N+1)*4 + 2*m*(4+8)
	if got := g.SizeBytes(); got != want {
		t.Fatalf("SizeBytes = %d, want exact CSR footprint %d (N=%d, edges=%d)",
			got, want, g.N, m)
	}
	if m <= 0 {
		t.Fatal("strip space must have edges")
	}
}

// TestBuildPublishesMetrics asserts BuildWorkers records the last-built
// graph's footprint in the process-wide gauges.
func TestBuildPublishesMetrics(t *testing.T) {
	g := Build(testspaces.NewStrip().Space)
	if got := Metrics.Doors.Load(); got != int64(g.N) {
		t.Fatalf("Metrics.Doors = %d, want %d", got, g.N)
	}
	if got := Metrics.Edges.Load(); got != int64(g.NumEdges()) {
		t.Fatalf("Metrics.Edges = %d, want %d", got, g.NumEdges())
	}
	if got := Metrics.Bytes.Load(); got != g.SizeBytes() {
		t.Fatalf("Metrics.Bytes = %d, want %d", got, g.SizeBytes())
	}
}
