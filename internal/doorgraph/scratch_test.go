package doorgraph

import (
	"math"
	"reflect"
	"testing"

	"indoorsq/internal/testspaces"
)

// TestBuildWorkersDeterministic asserts the parallel edge derivation yields
// byte-identical CSR arrays regardless of the worker count.
func TestBuildWorkersDeterministic(t *testing.T) {
	sp := testspaces.RandomGrid(7, 4, 5, 2, 7, 0.25)
	ref := BuildWorkers(sp, 1)
	for _, w := range []int{2, 4, 8} {
		g := BuildWorkers(sp, w)
		if !reflect.DeepEqual(ref.fwd, g.fwd) {
			t.Fatalf("Fwd CSR differs at workers=%d", w)
		}
		if !reflect.DeepEqual(ref.rev, g.rev) {
			t.Fatalf("Rev CSR differs at workers=%d", w)
		}
	}
}

// TestScratchReuseMatchesFresh asserts a reused scratch (epoch reset)
// produces the same sweep as a fresh one.
func TestScratchReuseMatchesFresh(t *testing.T) {
	sp := testspaces.RandomGrid(5, 4, 4, 2, 6, 0.3)
	g := Build(sp)
	reused := g.AcquireScratch()
	defer g.ReleaseScratch(reused)
	for src := int32(0); src < int32(g.N); src += 2 {
		for _, reverse := range []bool{false, true} {
			reused.Run(g, src, reverse)
			fresh := NewScratch(g.N)
			fresh.Run(g, src, reverse)
			for d := 0; d < g.N; d++ {
				if rd, fd := reused.DistAt(d), fresh.DistAt(d); rd != fd &&
					!(math.IsInf(rd, 1) && math.IsInf(fd, 1)) {
					t.Fatalf("src %d rev %v: dist[%d] reused %g fresh %g", src, reverse, d, rd, fd)
				}
				if reused.PrevAt(d) != fresh.PrevAt(d) {
					t.Fatalf("src %d rev %v: prev[%d] reused %d fresh %d",
						src, reverse, d, reused.PrevAt(d), fresh.PrevAt(d))
				}
				if reused.FirstAt(d) != fresh.FirstAt(d) {
					t.Fatalf("src %d rev %v: first[%d] reused %d fresh %d",
						src, reverse, d, reused.FirstAt(d), fresh.FirstAt(d))
				}
			}
		}
	}
}

// TestFirstHopConsistent asserts FirstAt matches the first step of the prev
// chain walked back from each reachable door.
func TestFirstHopConsistent(t *testing.T) {
	sp := testspaces.RandomGrid(4, 4, 4, 2, 6, 0.3)
	g := Build(sp)
	s := g.AcquireScratch()
	defer g.ReleaseScratch(s)
	src := int32(0)
	s.Run(g, src, false)
	for d := 0; d < g.N; d++ {
		if math.IsInf(s.DistAt(d), 1) {
			if s.FirstAt(d) != -1 {
				t.Fatalf("unreachable door %d has first hop %d", d, s.FirstAt(d))
			}
			continue
		}
		// Walk prev pointers from d back to the door right after src.
		cur := int32(d)
		for cur != src && s.PrevAt(int(cur)) != src {
			cur = s.PrevAt(int(cur))
		}
		want := cur // src itself when d == src
		if got := s.FirstAt(d); got != want {
			t.Fatalf("door %d: first hop %d, prev chain says %d", d, got, want)
		}
	}
}

// TestRunTargetsEarlyExit asserts the goal-directed sweep settles every
// requested target with its full-run distance.
func TestRunTargetsEarlyExit(t *testing.T) {
	sp := testspaces.RandomGrid(6, 4, 4, 2, 6, 0.3)
	g := Build(sp)
	full := NewScratch(g.N)
	full.Run(g, 0, false)
	s := g.AcquireScratch()
	defer g.ReleaseScratch(s)
	targets := []int32{int32(g.N - 1), int32(g.N / 2), 3}
	s.RunTargets(g, 0, false, targets)
	for _, tgt := range targets {
		got, want := s.DistAt(int(tgt)), full.DistAt(int(tgt))
		if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
			t.Fatalf("target %d: early-exit dist %g, full %g", tgt, got, want)
		}
	}
	// A second run with a different target set must not inherit marks.
	s.RunTargets(g, 0, false, []int32{1})
	if got, want := s.DistAt(1), full.DistAt(1); got != want {
		t.Fatalf("second RunTargets: dist[1] = %g, want %g", got, want)
	}
}

// TestSizeBytesCoversEdgePayload sanity-checks the CSR accounting against
// the accessor-visible edge count.
func TestSizeBytesCoversEdgePayload(t *testing.T) {
	f := testspaces.NewStrip()
	g := Build(f.Space)
	edges := 0
	for i := 0; i < g.N; i++ {
		fTo, _ := g.FwdRow(i)
		rTo, _ := g.RevRow(i)
		edges += len(fTo) + len(rTo)
	}
	if edges != 2*g.NumEdges() {
		t.Fatalf("row iteration saw %d edges, NumEdges reports %d", edges, g.NumEdges())
	}
	if got := g.SizeBytes(); got < int64(edges)*12 {
		t.Fatalf("SizeBytes %d smaller than edge payload %d", got, edges*12)
	}
}

// BenchmarkDijkstraAlloc measures the legacy copy-out API.
func BenchmarkDijkstraAlloc(b *testing.B) {
	sp := testspaces.RandomGrid(9, 4, 5, 2, 7, 0.25)
	g := Build(sp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Dijkstra(int32(i%g.N), false)
	}
}

// BenchmarkScratchRun measures the pooled zero-alloc sweep.
func BenchmarkScratchRun(b *testing.B) {
	sp := testspaces.RandomGrid(9, 4, 5, 2, 7, 0.25)
	g := Build(sp)
	s := g.AcquireScratch()
	defer g.ReleaseScratch(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(g, int32(i%g.N), false)
	}
}
