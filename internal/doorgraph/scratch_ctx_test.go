package doorgraph

import (
	"errors"
	"math"
	"testing"

	"indoorsq/internal/testspaces"
)

// TestRunCheckedMatchesRun asserts a non-aborting checked sweep is
// indistinguishable from Run.
func TestRunCheckedMatchesRun(t *testing.T) {
	sp := testspaces.RandomGrid(8, 4, 5, 2, 6, 0.2)
	g := Build(sp)
	ref := NewScratch(g.N)
	chk := NewScratch(g.N)
	for src := int32(0); src < int32(g.N); src += 3 {
		ref.Run(g, src, false)
		calls := 0
		if err := chk.RunChecked(g, src, false, 1, func() error { calls++; return nil }); err != nil {
			t.Fatalf("src %d: RunChecked: %v", src, err)
		}
		if calls == 0 {
			t.Fatalf("src %d: check was never polled", src)
		}
		for d := 0; d < g.N; d++ {
			rd, cd := ref.DistAt(d), chk.DistAt(d)
			if rd != cd && !(math.IsInf(rd, 1) && math.IsInf(cd, 1)) {
				t.Fatalf("src %d: dist[%d] = %g checked vs %g plain", src, d, cd, rd)
			}
		}
	}

	// A nil check degrades to the plain sweep.
	if err := chk.RunChecked(g, 0, false, 1, nil); err != nil {
		t.Fatalf("RunChecked(nil check): %v", err)
	}
}

// TestRunCheckedAborts asserts the first check error stops the sweep and is
// returned verbatim.
func TestRunCheckedAborts(t *testing.T) {
	sp := testspaces.RandomGrid(8, 4, 5, 2, 6, 0.2)
	g := Build(sp)
	s := NewScratch(g.N)
	boom := errors.New("boom")
	calls := 0
	err := s.RunChecked(g, 0, false, 1, func() error {
		if calls++; calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 2 {
		t.Fatalf("sweep kept running after the abort: %d checks", calls)
	}
}
