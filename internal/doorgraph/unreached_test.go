package doorgraph

import (
	"math"
	"testing"

	"indoorsq/internal/geom"
	"indoorsq/internal/indoor"
	"indoorsq/internal/testspaces"
)

// severed builds a four-room space cut by one one-way door (A1 -> B1), so
// sweeps from the B side leave the whole A cluster unreached:
//
//	y=8 +----+----+
//	    | A2 | B2 |
//	y=4 +-dA-+-dB-+
//	    | A1 > B1 |
//	y=0 +----+----+
//	   x=0   5   10
func severed(t *testing.T) (sp *indoor.Space, dA, dAB, dB indoor.DoorID) {
	t.Helper()
	b := indoor.NewBuilder("severed", 1)
	rect := func(x0, y0, x1, y1 float64) geom.Polygon {
		return geom.RectPoly(geom.R(x0, y0, x1, y1))
	}
	a1 := b.AddRoom(0, rect(0, 0, 5, 4))
	a2 := b.AddRoom(0, rect(0, 4, 5, 8))
	b1 := b.AddRoom(0, rect(5, 0, 10, 4))
	b2 := b.AddRoom(0, rect(5, 4, 10, 8))
	dA = b.AddDoor(geom.Pt(2.5, 4), 0)
	b.ConnectBoth(dA, a1, a2)
	dAB = b.AddDoor(geom.Pt(5, 2), 0)
	b.ConnectOneWay(dAB, a1, b1)
	dB = b.AddDoor(geom.Pt(7.5, 4), 0)
	b.ConnectBoth(dB, b1, b2)
	sp, err := b.Build()
	if err != nil {
		t.Fatalf("build severed: %v", err)
	}
	return sp, dA, dAB, dB
}

// TestUnreachedEncoding pins the Dijkstra/CopyDist/CopyPrev contract for
// unreached doors: exactly +Inf distance and -1 predecessor, regardless of
// what the output buffers previously held and regardless of what earlier
// runs of the same (epoch-stamped) scratch touched.
func TestUnreachedEncoding(t *testing.T) {
	sp, dA, dAB, dB := severed(t)
	g := Build(sp)

	// From dB, the one-way cut makes dA and dAB unreached.
	dist, prev := g.Dijkstra(int32(dB), false)
	for _, d := range []indoor.DoorID{dA, dAB} {
		if bits := math.Float64bits(dist[d]); bits != math.Float64bits(math.Inf(1)) {
			t.Errorf("dist[%d] = %x, want exact +Inf", d, bits)
		}
		if prev[d] != -1 {
			t.Errorf("prev[%d] = %d, want -1", d, prev[d])
		}
	}
	if math.IsInf(dist[dB], 1) || prev[dB] != -1 {
		t.Errorf("source: dist=%g prev=%d, want 0 / -1", dist[dB], prev[dB])
	}

	// Poisoned buffers: the copies must overwrite every entry, not just the
	// stamped ones.
	s := g.AcquireScratch()
	defer g.ReleaseScratch(s)
	s.Run(g, int32(dB), false)
	pd := make([]float64, g.N)
	pp := make([]int32, g.N)
	for i := range pd {
		pd[i] = math.NaN()
		pp[i] = 12345
	}
	s.CopyDist(pd)
	s.CopyPrev(pp)
	for d := 0; d < g.N; d++ {
		if math.Float64bits(pd[d]) != math.Float64bits(dist[d]) {
			t.Errorf("CopyDist[%d] = %v, want %v", d, pd[d], dist[d])
		}
		if pp[d] != prev[d] {
			t.Errorf("CopyPrev[%d] = %d, want %d", d, pp[d], prev[d])
		}
	}

	// Epoch reuse: a sweep from dA reaches everything; the next sweep from
	// dB on the same scratch must not leak dA-epoch entries for the doors
	// it leaves unreached.
	s.Run(g, int32(dA), false)
	if math.IsInf(s.DistAt(int(dB)), 1) {
		t.Fatal("dB should be reachable from dA")
	}
	s.Run(g, int32(dB), false)
	for _, d := range []indoor.DoorID{dA, dAB} {
		if !math.IsInf(s.DistAt(int(d)), 1) || s.PrevAt(int(d)) != -1 || s.FirstAt(int(d)) != -1 {
			t.Errorf("stale epoch leaked into door %d: dist=%g prev=%d first=%d",
				d, s.DistAt(int(d)), s.PrevAt(int(d)), s.FirstAt(int(d)))
		}
	}
}

// TestRunPruned checks the edge-filtered sweep: a nil/allow-all filter is
// bit-identical to Run, and a filter rejecting a cut door unreaches exactly
// the doors behind it.
func TestRunPruned(t *testing.T) {
	sp := testspaces.RandomGrid(3, 4, 4, 2, 6, 0.3)
	g := Build(sp)
	s1 := NewScratch(g.N)
	s2 := NewScratch(g.N)
	for src := int32(0); src < int32(g.N); src += 7 {
		s1.Run(g, src, false)
		s2.RunPruned(g, src, false, func(int32) bool { return true })
		for d := 0; d < g.N; d++ {
			if math.Float64bits(s1.DistAt(d)) != math.Float64bits(s2.DistAt(d)) ||
				s1.PrevAt(d) != s2.PrevAt(d) {
				t.Fatalf("allow-all differs from Run at src=%d door=%d", src, d)
			}
		}
	}

	// Rejecting the one-way cut door of the severed fixture strands the far
	// side even from the source side of the cut.
	svp, dA, dAB, dB := severed(t)
	sg := Build(svp)
	ss := NewScratch(sg.N)
	ss.RunPruned(sg, int32(dA), false, func(d int32) bool { return d != int32(dAB) })
	if !math.IsInf(ss.DistAt(int(dAB)), 1) || !math.IsInf(ss.DistAt(int(dB)), 1) {
		t.Fatalf("filtered-out cut door still reached: dAB=%g dB=%g",
			ss.DistAt(int(dAB)), ss.DistAt(int(dB)))
	}
	if math.IsInf(ss.DistAt(int(dA)), 1) {
		t.Fatal("source itself must not be filtered")
	}
}
