package doorgraph

import (
	"fmt"

	"indoorsq/internal/snapshot"
)

// AppendTo writes both CSR directions as the TagDoorGraph section. The
// struct-of-arrays layout goes to disk exactly as it sits in memory — six
// flat arrays plus the door count — which is why this was designed
// "snapshot-ready" (DESIGN.md §10).
func (g *Graph) AppendTo(w *snapshot.Writer) {
	sec := w.Begin(snapshot.TagDoorGraph)
	sec.U64(uint64(g.N))
	sec.I32s(g.fwd.off)
	sec.I32s(g.fwd.to)
	sec.F64s(g.fwd.w)
	sec.I32s(g.rev.off)
	sec.I32s(g.rev.to)
	sec.F64s(g.rev.w)
}

// LoadFrom reconstructs the door graph from the TagDoorGraph section,
// skipping the build's distance-cache lookups entirely. The CSR arrays may
// alias the snapshot buffer (they are never mutated after construction).
// Offsets are bounds-checked so a corrupt-but-CRC-colliding file cannot
// induce out-of-range row slicing later.
func LoadFrom(r *snapshot.Reader) (*Graph, error) {
	sec, err := r.Section(snapshot.TagDoorGraph)
	if err != nil {
		return nil, err
	}
	g := &Graph{N: sec.Int()}
	g.fwd = csr{off: sec.I32s(), to: sec.I32s(), w: sec.F64s()}
	g.rev = csr{off: sec.I32s(), to: sec.I32s(), w: sec.F64s()}
	if err := sec.Err(); err != nil {
		return nil, err
	}
	if err := g.fwd.check(g.N); err != nil {
		return nil, fmt.Errorf("doorgraph: snapshot fwd: %w", err)
	}
	if err := g.rev.check(g.N); err != nil {
		return nil, fmt.Errorf("doorgraph: snapshot rev: %w", err)
	}
	if len(g.fwd.to) != len(g.rev.to) {
		return nil, fmt.Errorf("doorgraph: snapshot edge counts differ (%d fwd, %d rev)", len(g.fwd.to), len(g.rev.to))
	}
	Metrics.Doors.Store(int64(g.N))
	Metrics.Edges.Store(int64(g.NumEdges()))
	Metrics.Bytes.Store(g.SizeBytes())
	return g, nil
}

// check validates one direction's CSR invariants: n+1 ascending offsets
// spanning the target array, parallel weight array, in-range targets.
func (c *csr) check(n int) error {
	if n < 0 || len(c.off) != n+1 {
		return fmt.Errorf("offset array has %d entries, want %d", len(c.off), n+1)
	}
	if len(c.to) != len(c.w) {
		return fmt.Errorf("target/weight arrays sized %d/%d", len(c.to), len(c.w))
	}
	if n >= 0 && len(c.off) > 0 {
		if c.off[0] != 0 || int(c.off[n]) != len(c.to) {
			return fmt.Errorf("offsets span [%d,%d], want [0,%d]", c.off[0], c.off[n], len(c.to))
		}
	}
	for i := 0; i < n; i++ {
		if c.off[i] > c.off[i+1] {
			return fmt.Errorf("offsets not ascending at door %d", i)
		}
	}
	for _, t := range c.to {
		if int(t) < 0 || int(t) >= n {
			return fmt.Errorf("edge target %d of %d doors", t, n)
		}
	}
	return nil
}
