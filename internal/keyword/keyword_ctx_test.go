package keyword_test

import (
	"context"
	"errors"
	"testing"

	"indoorsq/internal/idmodel"
	"indoorsq/internal/keyword"
	"indoorsq/internal/testspaces"
)

func TestKeywordCtxCancelled(t *testing.T) {
	f := testspaces.NewStrip()
	x := keyword.New(idmodel.New(f.Space), f.Space, tagged(f))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := x.BooleanKNNCtx(ctx, p, 2, nil, "coffee"); !errors.Is(err, context.Canceled) {
		t.Fatalf("BooleanKNNCtx(cancelled) = %v, want Canceled", err)
	}
	if _, err := x.BooleanRangeCtx(ctx, p, 12, nil, "coffee"); !errors.Is(err, context.Canceled) {
		t.Fatalf("BooleanRangeCtx(cancelled) = %v, want Canceled", err)
	}
	if _, err := x.RouteCtx(ctx, p, p, nil, "atm"); !errors.Is(err, context.Canceled) {
		t.Fatalf("RouteCtx(cancelled) = %v, want Canceled", err)
	}
}
