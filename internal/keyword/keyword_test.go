package keyword_test

import (
	"math"
	"testing"

	"indoorsq/internal/idmodel"
	"indoorsq/internal/indoor"
	"indoorsq/internal/keyword"
	"indoorsq/internal/query"
	"indoorsq/internal/testspaces"
)

// tagged places keyworded objects on the Strip fixture:
//
//	o1 "coffee"        @ (2.5,9)  in R1  (dist 1 from p)
//	o2 "coffee","wifi" @ (7.5,9)  in R2  (dist 10)
//	o3 "atm"           @ (1,5)    in Hall (dist ~3.80)
//	o4 "pizza"         @ (17.5,9) in R4  (dist 20)
func tagged(f *testspaces.Strip) []keyword.Tagged {
	return []keyword.Tagged{
		{Object: query.Object{ID: 1, Loc: indoor.At(2.5, 9, 0), Part: f.R1}, Words: []string{"coffee"}},
		{Object: query.Object{ID: 2, Loc: indoor.At(7.5, 9, 0), Part: f.R2}, Words: []string{"coffee", "wifi"}},
		{Object: query.Object{ID: 3, Loc: indoor.At(1, 5, 0), Part: f.Hall}, Words: []string{"atm"}},
		{Object: query.Object{ID: 4, Loc: indoor.At(17.5, 9, 0), Part: f.R4}, Words: []string{"pizza"}},
	}
}

var p = indoor.At(2.5, 8, 0) // in R1

func newIndex(f *testspaces.Strip) *keyword.Index {
	return keyword.New(idmodel.New(f.Space), f.Space, tagged(f))
}

func TestVocabAndInverted(t *testing.T) {
	f := testspaces.NewStrip()
	x := newIndex(f)
	if x.Vocab() != 4 {
		t.Fatalf("Vocab = %d, want 4", x.Vocab())
	}
	if got := x.ObjectsWith("coffee"); len(got) != 2 {
		t.Fatalf("coffee objects = %v", got)
	}
	if got := x.ObjectsWith("tea"); got != nil {
		t.Fatalf("unknown word objects = %v", got)
	}
}

func TestBooleanKNN(t *testing.T) {
	f := testspaces.NewStrip()
	x := newIndex(f)
	var st query.Stats

	// Nearest coffee: o1.
	nn, err := x.BooleanKNN(p, 1, &st, "coffee")
	if err != nil || len(nn) != 1 || nn[0].ID != 1 {
		t.Fatalf("BooleanKNN coffee = %v, %v", nn, err)
	}
	// Nearest coffee AND wifi: o2, although o1 is nearer.
	nn, err = x.BooleanKNN(p, 1, &st, "coffee", "wifi")
	if err != nil || len(nn) != 1 || nn[0].ID != 2 {
		t.Fatalf("BooleanKNN coffee+wifi = %v, %v", nn, err)
	}
	if math.Abs(nn[0].Dist-10) > 1e-9 {
		t.Fatalf("dist = %g, want 10", nn[0].Dist)
	}
	// Unknown word: no results.
	nn, err = x.BooleanKNN(p, 3, &st, "sushi")
	if err != nil || len(nn) != 0 {
		t.Fatalf("BooleanKNN unknown = %v, %v", nn, err)
	}
	// No words: plain kNN.
	nn, err = x.BooleanKNN(p, 2, &st)
	if err != nil || len(nn) != 2 || nn[0].ID != 1 || nn[1].ID != 3 {
		t.Fatalf("BooleanKNN no-words = %v, %v", nn, err)
	}
}

func TestBooleanRange(t *testing.T) {
	f := testspaces.NewStrip()
	x := newIndex(f)
	var st query.Stats
	ids, err := x.BooleanRange(p, 12, &st, "coffee")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("BooleanRange coffee = %v", ids)
	}
	ids, err = x.BooleanRange(p, 5, &st, "coffee", "wifi")
	if err != nil || len(ids) != 0 {
		t.Fatalf("BooleanRange tight = %v, %v", ids, err)
	}
}

func TestRoutePlain(t *testing.T) {
	// No keywords: Route degenerates to the shortest path.
	f := testspaces.NewStrip()
	x := newIndex(f)
	var st query.Stats
	q := indoor.At(7.5, 9, 0) // in R2
	res, err := x.Route(p, q, &st)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Path.Dist-10) > 1e-9 {
		t.Fatalf("plain route dist = %g, want 10", res.Path.Dist)
	}
	if len(res.Visits) != 0 {
		t.Fatalf("plain route visits %v", res.Visits)
	}
}

func TestRouteWithDetour(t *testing.T) {
	f := testspaces.NewStrip()
	x := newIndex(f)
	var st query.Stats

	// From R5 to R4, covering "atm": o3 sits in the hall near the west end;
	// the optimal walk leaves R5, detours to o3, then crosses to D4 and R4.
	pStart := indoor.At(2.5, 2, 0) // R5
	qEnd := indoor.At(17.5, 9, 0)  // R4
	res, err := x.Route(pStart, qEnd, &st, "atm")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Visits) != 1 || res.Visits[0] != 3 {
		t.Fatalf("route visits = %v, want [3]", res.Visits)
	}
	// Hand-computed: p->D5 = 2, D5 at (2.5,4); D5->o3(1,5) = sqrt(2.25+1);
	// o3->D4(17.5,6) = sqrt(16.5^2+1); D4->q = 3.
	want := 2 + math.Sqrt(3.25) + math.Sqrt(16.5*16.5+1) + 3
	if math.Abs(res.Path.Dist-want) > 1e-9 {
		t.Fatalf("route dist = %g, want %g", res.Path.Dist, want)
	}
	// Without the keyword the route is shorter.
	plain, err := x.Route(pStart, qEnd, &st)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Path.Dist >= res.Path.Dist {
		t.Fatalf("keyword route %g should exceed plain %g", res.Path.Dist, plain.Path.Dist)
	}
}

func TestRouteTwoKeywords(t *testing.T) {
	f := testspaces.NewStrip()
	x := newIndex(f)
	var st query.Stats
	pStart := indoor.At(2.5, 2, 0) // R5
	qEnd := indoor.At(15, 2, 0)    // R7
	res, err := x.Route(pStart, qEnd, &st, "atm", "coffee")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Visits) != 2 {
		t.Fatalf("visits = %v, want two objects", res.Visits)
	}
	// Must include an atm (o3) and a coffee (o1 or o2).
	seen := map[int32]bool{}
	for _, v := range res.Visits {
		seen[v] = true
	}
	if !seen[3] || (!seen[1] && !seen[2]) {
		t.Fatalf("visits = %v must cover atm and coffee", res.Visits)
	}
	// Sanity: covering more keywords cannot be cheaper.
	one, _ := x.Route(pStart, qEnd, &st, "atm")
	if res.Path.Dist < one.Path.Dist-1e-9 {
		t.Fatalf("two-keyword route %g cheaper than one-keyword %g", res.Path.Dist, one.Path.Dist)
	}
}

func TestRouteSamePartitionDirect(t *testing.T) {
	f := testspaces.NewStrip()
	x := newIndex(f)
	var st query.Stats
	a := indoor.At(1, 5, 0)
	b := indoor.At(19, 5, 0)
	res, err := x.Route(a, b, &st)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Path.Dist-18) > 1e-9 || len(res.Path.Doors) != 0 {
		t.Fatalf("direct route = %v", res.Path)
	}
	// Covering "atm" from inside the hall: o3 is in the hall itself.
	res, err = x.Route(a, b, &st, "atm")
	if err != nil {
		t.Fatal(err)
	}
	want := a.XY().Dist(indoor.At(1, 5, 0).XY()) // a == o3? no: o3 at (1,5) == a!
	_ = want
	if math.Abs(res.Path.Dist-18) > 1e-9 {
		t.Fatalf("atm route = %g, want 18 (o3 is at the source)", res.Path.Dist)
	}
	if len(res.Visits) != 1 || res.Visits[0] != 3 {
		t.Fatalf("visits = %v", res.Visits)
	}
}

func TestRouteErrors(t *testing.T) {
	f := testspaces.NewStrip()
	x := newIndex(f)
	var st query.Stats
	if _, err := x.Route(indoor.At(-1, -1, 0), p, &st); err != query.ErrNoHost {
		t.Fatalf("bad source err = %v", err)
	}
	if _, err := x.Route(p, p, &st, "nonexistent"); err != query.ErrUnreachable {
		t.Fatalf("missing keyword err = %v", err)
	}
	many := make([]string, keyword.MaxRouteWords+1)
	for i := range many {
		many[i] = string(rune('a' + i))
	}
	if _, err := x.Route(p, p, &st, many...); err == nil {
		t.Fatal("too many keywords must error")
	}
}

// TestRouteLegSum verifies the route distance decomposes into its legs.
func TestRouteLegSum(t *testing.T) {
	f := testspaces.NewStrip()
	x := newIndex(f)
	var st query.Stats
	res, err := x.Route(indoor.At(2.5, 2, 0), indoor.At(15, 2, 0), &st, "coffee")
	if err != nil {
		t.Fatal(err)
	}
	if res.Path.Dist <= 0 || math.IsInf(res.Path.Dist, 1) {
		t.Fatalf("bad dist %g", res.Path.Dist)
	}
	if len(res.Path.Doors) < 2 {
		t.Fatalf("route doors = %v", res.Path.Doors)
	}
}
