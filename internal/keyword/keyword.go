// Package keyword implements the spatial-keyword extension of the paper's
// Sec. 7: objects carry keywords, and the model/indexes are augmented with
// keyword mappings to answer
//
//   - boolean keyword kNN queries — the k nearest objects containing every
//     query keyword (as supported on VIP-TREE by Shao et al., TKDE 2020);
//   - boolean keyword range queries;
//   - keyword-aware routing — the shortest walk from p to q that visits,
//     for every query keyword, an object carrying it (the indoor top-k
//     keyword-aware routing of Feng et al., ICDE 2020, restricted to the
//     single best route).
//
// Routing runs a Dijkstra over (door, covered-keyword-set) states: crossing
// a partition may detour through one of its keyword-bearing objects, paying
// the intra-partition walk to the object and onward to the exit door. With
// bidirectional doors, repeated traversal states make multi-object detours
// inside one partition reachable as well, so the returned walk is optimal
// for up to MaxRouteWords keywords.
package keyword

import (
	"context"
	"fmt"
	"math"
	"sort"

	"indoorsq/internal/idmodel"
	"indoorsq/internal/indoor"
	"indoorsq/internal/pq"
	"indoorsq/internal/query"
)

// MaxRouteWords bounds the keyword count of Route (the state space grows as
// doors x 2^words).
const MaxRouteWords = 12

// Tagged is a static object with keywords.
type Tagged struct {
	query.Object
	Words []string
}

// Index is the keyword layer over an IDMODEL base engine.
type Index struct {
	sp   *indoor.Space
	base *idmodel.Model

	vocab    map[string]int32
	words    []string
	objWords [][]int32         // per object (by store order), sorted word ids
	inverted map[int32][]int32 // word id -> object ids
	byID     map[int32]int     // object id -> index into objWords/objs
	objs     []Tagged
}

// New builds the keyword layer and installs the objects into the base
// engine.
func New(base *idmodel.Model, sp *indoor.Space, objs []Tagged) *Index {
	x := &Index{
		sp:       sp,
		base:     base,
		vocab:    make(map[string]int32),
		inverted: make(map[int32][]int32),
		byID:     make(map[int32]int, len(objs)),
		objs:     append([]Tagged(nil), objs...),
	}
	plain := make([]query.Object, len(objs))
	for i, o := range x.objs {
		plain[i] = o.Object
		x.byID[o.ID] = i
		ids := make([]int32, 0, len(o.Words))
		for _, w := range o.Words {
			id, ok := x.vocab[w]
			if !ok {
				id = int32(len(x.words))
				x.vocab[w] = id
				x.words = append(x.words, w)
			}
			ids = append(ids, id)
			x.inverted[id] = append(x.inverted[id], o.ID)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		x.objWords = append(x.objWords, ids)
	}
	base.SetObjects(plain)
	return x
}

// Vocab returns the number of distinct keywords.
func (x *Index) Vocab() int { return len(x.words) }

// ObjectsWith returns the ids of objects carrying the keyword.
func (x *Index) ObjectsWith(word string) []int32 {
	id, ok := x.vocab[word]
	if !ok {
		return nil
	}
	return x.inverted[id]
}

// hasAll reports whether object id carries every word id in want (sorted).
func (x *Index) hasAll(id int32, want []int32) bool {
	oi, ok := x.byID[id]
	if !ok {
		return false
	}
	have := x.objWords[oi]
	j := 0
	for _, w := range want {
		for j < len(have) && have[j] < w {
			j++
		}
		if j >= len(have) || have[j] != w {
			return false
		}
	}
	return true
}

// wordIDs resolves query words; missing words report ok = false (no object
// can match).
func (x *Index) wordIDs(words []string) ([]int32, bool) {
	ids := make([]int32, 0, len(words))
	for _, w := range words {
		id, ok := x.vocab[w]
		if !ok {
			return nil, false
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	// De-duplicate.
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out, true
}

// BooleanKNNCtx is BooleanKNN bounded by ctx and any query.Budget it
// carries: the underlying filtered expansion aborts as soon as the context
// is done or the budget exhausts.
func (x *Index) BooleanKNNCtx(ctx context.Context, p indoor.Point, k int, st *query.Stats, words ...string) ([]query.Neighbor, error) {
	st = query.Track(ctx, st)
	if err := st.Interrupted(); err != nil {
		return nil, err
	}
	return x.BooleanKNN(p, k, st, words...)
}

// BooleanRangeCtx is BooleanRange bounded by ctx and any query.Budget it
// carries.
func (x *Index) BooleanRangeCtx(ctx context.Context, p indoor.Point, r float64, st *query.Stats, words ...string) ([]int32, error) {
	st = query.Track(ctx, st)
	if err := st.Interrupted(); err != nil {
		return nil, err
	}
	return x.BooleanRange(p, r, st, words...)
}

// RouteCtx is Route bounded by ctx and any query.Budget it carries: the
// (door, covered-keyword-set) Dijkstra aborts between state expansions.
func (x *Index) RouteCtx(ctx context.Context, p, q indoor.Point, st *query.Stats, words ...string) (RouteResult, error) {
	st = query.Track(ctx, st)
	if err := st.Interrupted(); err != nil {
		return RouteResult{}, err
	}
	return x.Route(p, q, st, words...)
}

// BooleanKNN returns the k nearest objects containing all query words.
func (x *Index) BooleanKNN(p indoor.Point, k int, st *query.Stats, words ...string) ([]query.Neighbor, error) {
	want, ok := x.wordIDs(words)
	if !ok {
		return nil, nil
	}
	return x.base.KNNFilter(p, k, func(id int32) bool { return x.hasAll(id, want) }, st)
}

// BooleanRange returns the objects within indoor distance r of p containing
// all query words, in ascending id order.
func (x *Index) BooleanRange(p indoor.Point, r float64, st *query.Stats, words ...string) ([]int32, error) {
	want, ok := x.wordIDs(words)
	if !ok {
		return nil, nil
	}
	all, err := x.base.Range(p, r, st)
	if err != nil {
		return nil, err
	}
	out := all[:0]
	for _, id := range all {
		if x.hasAll(id, want) {
			out = append(out, id)
		}
	}
	return out, nil
}

// RouteResult is a keyword-aware route: the door walk, the objects visited
// (in order), and the total length.
type RouteResult struct {
	Path   query.Path
	Visits []int32
}

// routeState is one Dijkstra state: standing at a door with a subset of
// query keywords already covered.
type routeState struct {
	door indoor.DoorID
	mask uint32
}

// routeHop remembers how a state was reached, for path reconstruction.
type routeHop struct {
	from  routeState
	visit int32 // object id visited on this hop, or -1
	seed  bool  // state seeded directly from p
}

// Route returns the shortest walk from p to q that visits, for each query
// word, at least one object carrying it. It errors when more than
// MaxRouteWords distinct words are given, and returns ErrUnreachable when
// no such walk exists (missing keywords included).
func (x *Index) Route(p, q indoor.Point, st *query.Stats, words ...string) (RouteResult, error) {
	want, known := x.wordIDs(words)
	if len(want) > MaxRouteWords {
		return RouteResult{}, fmt.Errorf("keyword: route supports at most %d words, got %d", MaxRouteWords, len(want))
	}
	vp, ok := x.sp.HostPartition(p)
	if !ok {
		return RouteResult{}, query.ErrNoHost
	}
	vq, ok := x.sp.HostPartition(q)
	if !ok {
		return RouteResult{}, query.ErrNoHost
	}
	if !known {
		return RouteResult{}, query.ErrUnreachable
	}
	full := uint32(1)<<uint(len(want)) - 1

	// localMask maps an object to the query-word bits it covers.
	localMask := func(id int32) uint32 {
		oi := x.byID[id]
		var m uint32
		for bit, w := range want {
			for _, ow := range x.objWords[oi] {
				if ow == w {
					m |= 1 << uint(bit)
				}
			}
		}
		return m
	}
	// useful lists, per partition, the objects covering at least one query
	// word.
	useful := make(map[indoor.PartitionID][]int32)
	for _, w := range want {
		for _, id := range x.inverted[w] {
			o := &x.objs[x.byID[id]]
			list := useful[o.Part]
			dup := false
			for _, e := range list {
				if e == id {
					dup = true
					break
				}
			}
			if !dup {
				useful[o.Part] = append(useful[o.Part], id)
			}
		}
	}

	dist := make(map[routeState]float64)
	prev := make(map[routeState]routeHop)
	var h pq.Heap[routeState]
	// The frontier holds (door, collected-words) states — at least one per
	// reachable door; pre-grow both heap arrays to that floor in one step.
	h.Grow(x.sp.NumDoors())

	relaxTo := func(s routeState, d float64, hop routeHop) {
		if old, ok := dist[s]; !ok || d < old {
			dist[s] = d
			prev[s] = hop
			h.Push(s, d)
		}
	}

	// Seeds: leave vp directly, or via one object visit inside vp.
	pRef := x.sp.Ref(vp, p)
	for _, d := range x.sp.Partition(vp).Leave {
		w := x.sp.RefToDoor(pRef, d)
		relaxTo(routeState{d, 0}, w, routeHop{visit: -1, seed: true})
		for _, id := range useful[vp] {
			o := &x.objs[x.byID[id]]
			leg := x.sp.RefDist(pRef, x.sp.Ref(vp, o.Loc)) + x.sp.RefToDoor(x.sp.Ref(vp, o.Loc), d)
			relaxTo(routeState{d, localMask(id)}, leg, routeHop{visit: id, seed: true})
		}
	}
	// Direct answers when p and q share a partition.
	best := math.Inf(1)
	var bestState routeState
	bestVisit := int32(-1)
	bestDirect := false
	if vp == vq && full == 0 {
		best = x.sp.WithinPoints(vp, p, q)
		bestDirect = true
	}
	if vp == vq && full != 0 {
		// p -> object -> q inside one partition.
		for _, id := range useful[vp] {
			if localMask(id) == full {
				o := &x.objs[x.byID[id]]
				if cand := x.sp.WithinPoints(vp, p, o.Loc) + x.sp.WithinPoints(vp, o.Loc, q); cand < best {
					best = cand
					bestVisit = id
					bestDirect = true
				}
			}
		}
	}

	qRef := x.sp.Ref(vq, q)
	enterQ := make(map[indoor.DoorID]float64)
	for _, d := range x.sp.Partition(vq).Enter {
		enterQ[d] = x.sp.RefToDoor(qRef, d)
	}

	settled := make(map[routeState]bool)
	for h.Len() > 0 {
		s, sd := h.Pop()
		if settled[s] || sd > dist[s] {
			continue
		}
		if sd >= best {
			break
		}
		settled[s] = true
		st.Door()
		if err := st.Interrupted(); err != nil {
			return RouteResult{}, err
		}

		// Finish: enter vq, optionally via a final object visit.
		if tail, ok := enterQ[s.door]; ok {
			if s.mask == full {
				if cand := sd + tail; cand < best {
					best = cand
					bestState = s
					bestVisit = -1
					bestDirect = false
				}
			}
			for _, id := range useful[vq] {
				if s.mask|localMask(id) == full {
					o := &x.objs[x.byID[id]]
					leg := x.sp.WithinPointDoor(vq, o.Loc, s.door) + x.sp.WithinPoints(vq, o.Loc, q)
					if cand := sd + leg; cand < best {
						best = cand
						bestState = s
						bestVisit = id
						bestDirect = false
					}
				}
			}
		}

		for _, v := range x.sp.Door(s.door).Enterable {
			for _, nd := range x.sp.Partition(v).Leave {
				// Straight crossing.
				w, hit := x.sp.WithinDoorsCached(v, s.door, nd)
				st.Cache(hit)
				if !math.IsInf(w, 1) {
					relaxTo(routeState{nd, s.mask}, sd+w, routeHop{from: s, visit: -1})
				}
				// Crossing via one keyword object.
				for _, id := range useful[v] {
					m := localMask(id)
					if s.mask|m == s.mask {
						continue // nothing new
					}
					o := &x.objs[x.byID[id]]
					leg := x.sp.WithinPointDoor(v, o.Loc, s.door) + x.sp.WithinPointDoor(v, o.Loc, nd)
					if !math.IsInf(leg, 1) {
						relaxTo(routeState{nd, s.mask | m}, sd+leg, routeHop{from: s, visit: id})
					}
				}
			}
		}
	}
	st.Alloc(int64(len(dist)) * 32)

	if math.IsInf(best, 1) {
		return RouteResult{}, query.ErrUnreachable
	}

	// Reconstruct doors and visits.
	var doors []indoor.DoorID
	var visits []int32
	if bestVisit >= 0 {
		visits = append(visits, bestVisit)
	}
	if !bestDirect {
		// Walk back through the hop chain to the seed.
		s := bestState
		for {
			hop, ok := prev[s]
			if !ok {
				break
			}
			doors = append(doors, s.door)
			if hop.visit >= 0 {
				visits = append(visits, hop.visit)
			}
			if hop.seed {
				break
			}
			s = hop.from
		}
	}
	// Reverse into travel order.
	for i, j := 0, len(doors)-1; i < j; i, j = i+1, j-1 {
		doors[i], doors[j] = doors[j], doors[i]
	}
	for i, j := 0, len(visits)-1; i < j; i, j = i+1, j-1 {
		visits[i], visits[j] = visits[j], visits[i]
	}
	return RouteResult{
		Path:   query.Path{Source: p, Target: q, Doors: doors, Dist: best},
		Visits: visits,
	}, nil
}
