package tenant

import (
	"context"
	"path/filepath"
	"sync"
	"testing"

	"indoorsq/internal/exec"
	"indoorsq/internal/obs"
	"indoorsq/internal/query"
	"indoorsq/internal/snapshot/bundle"
	"indoorsq/internal/spacegen"
	"indoorsq/internal/workload"
)

// fastEngines keeps tier tests quick: the model plus both precomputed
// matrices exercise the build, snapshot, and routing paths without the
// tree constructions.
var fastEngines = []string{"IDModel", "IDIndex", "CIndex"}

func testSpecs() []VenueSpec {
	mk := func(id string, seed int64) VenueSpec {
		return VenueSpec{
			ID:      id,
			GenSeed: seed,
			GenParams: spacegen.Params{
				Floors: 1, Rows: 2, Cols: 3, ExtraDoors: 2,
			},
			Engines: fastEngines,
			Objects: 20,
		}
	}
	return []VenueSpec{mk("mall-a", 11), mk("mall-b", 12), mk("airport-c", 13)}
}

func newTestTier(t *testing.T) *Tier {
	t.Helper()
	tier, err := New(testSpecs(), Options{
		Shards: 2, Seed: 99,
		Router: RouterConfig{ExplorePerEngine: 1, ReevalEvery: 8, SampleEvery: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tier
}

// TestTierBoot checks shard placement, venue lookup, object seeding, and
// that routed queries agree with every pinned engine (the engines answer
// identically by the differential-suite guarantee, so routing can never
// change an answer — only who computes it).
func TestTierBoot(t *testing.T) {
	tier := newTestTier(t)
	if got := tier.VenueIDs(); len(got) != 3 || got[0] != "airport-c" || got[1] != "mall-a" || got[2] != "mall-b" {
		t.Fatalf("VenueIDs = %v", got)
	}
	if tier.NumShards() != 2 {
		t.Fatalf("NumShards = %d", tier.NumShards())
	}
	if _, ok := tier.Venue("nope"); ok {
		t.Fatal("lookup of unknown venue succeeded")
	}
	for _, id := range tier.VenueIDs() {
		v, ok := tier.Venue(id)
		if !ok {
			t.Fatalf("venue %q missing", id)
		}
		if got := tier.ShardOf(id); got < 0 || got >= tier.NumShards() {
			t.Fatalf("ShardOf(%q) = %d", id, got)
		}
		if len(v.Objects) != 20 {
			t.Fatalf("venue %q seeded %d objects", id, len(v.Objects))
		}
		if v.Epoch() != 1 {
			t.Fatalf("venue %q boot epoch %d", id, v.Epoch())
		}
		if got := v.EngineList(); len(got) != len(fastEngines) {
			t.Fatalf("venue %q engines %v", id, got)
		}

		gen := workload.New(v.Space, 5)
		p, _ := gen.PointIn()
		var st query.Stats
		routed, eng, err := v.Range(context.Background(), p, 8, &st, "")
		if err != nil {
			t.Fatalf("venue %q routed range via %s: %v", id, eng, err)
		}
		for _, pin := range fastEngines {
			got, _, err := v.Range(context.Background(), p, 8, &st, pin)
			if err != nil {
				t.Fatalf("venue %q pinned range via %s: %v", id, pin, err)
			}
			if len(got) != len(routed) {
				t.Fatalf("venue %q: %s answered %v, routed answer was %v", id, pin, got, routed)
			}
			for i := range got {
				if got[i] != routed[i] {
					t.Fatalf("venue %q: %s answered %v, routed answer was %v", id, pin, got, routed)
				}
			}
		}
		// The venue registry collected the latencies (the router's evidence).
		var total int64
		for _, e := range fastEngines {
			total += v.Registry().Series(e, obs.OpRange).Count.Load()
		}
		if total == 0 {
			t.Fatalf("venue %q: no latency evidence landed in the registry", id)
		}
		// An override naming a missing engine is rejected.
		if _, _, err := v.Range(context.Background(), p, 8, &st, "VIPTree"); err == nil {
			t.Fatalf("venue %q accepted an override for an engine it does not serve", id)
		}
	}
}

// TestTierExploreOrderDeterministic boots two tiers from identical specs and
// seeds: every venue's router must have the identical explore order, the
// traffic-independent half of decision reproducibility (the evidence-driven
// half is covered at the router level).
func TestTierExploreOrderDeterministic(t *testing.T) {
	a := newTestTier(t)
	b := newTestTier(t)
	for _, id := range a.VenueIDs() {
		va, _ := a.Venue(id)
		vb, _ := b.Venue(id)
		for _, op := range RoutedOps {
			oa, ob := va.Router().ops[op].order, vb.Router().ops[op].order
			for i := range oa {
				if oa[i] != ob[i] {
					t.Fatalf("venue %q op %s: explore orders diverge: %v vs %v", id, op, oa, ob)
				}
			}
		}
	}
}

// TestTierRun routes a mixed batch through the shard pool and cross-checks
// every result against a direct pinned call on the same generation.
func TestTierRun(t *testing.T) {
	tier := newTestTier(t)
	v, _ := tier.Venue("mall-a")
	gen := workload.New(v.Space, 3)
	var ops []exec.Op
	for i := 0; i < 12; i++ {
		p, _ := gen.PointIn()
		switch i % 3 {
		case 0:
			ops = append(ops, exec.Op{Kind: exec.RangeQ, P: p, R: 7.5})
		case 1:
			ops = append(ops, exec.Op{Kind: exec.KNNQ, P: p, K: 3})
		default:
			q, _ := gen.PointIn()
			ops = append(ops, exec.Op{Kind: exec.SPDQ, P: p, Q: q})
		}
	}
	results, batch, engines, err := tier.Run(context.Background(), "mall-a", ops, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ops) || len(engines) != len(ops) {
		t.Fatalf("got %d results, %d engines for %d ops", len(results), len(engines), len(ops))
	}
	if batch.Errs != 0 {
		t.Fatalf("batch errs: %d", batch.Errs)
	}
	var st query.Stats
	for i, op := range ops {
		r := results[i]
		if r.Err != nil {
			t.Fatalf("op %d via %s: %v", i, engines[i], r.Err)
		}
		switch op.Kind {
		case exec.RangeQ:
			want, _, err := v.Range(context.Background(), op.P, op.R, &st, engines[i])
			if err != nil || len(want) != len(r.IDs) {
				t.Fatalf("op %d: range mismatch (%v): %v vs %v", i, err, r.IDs, want)
			}
		case exec.KNNQ:
			want, _, err := v.KNN(context.Background(), op.P, op.K, &st, engines[i])
			if err != nil || len(want) != len(r.Neighbors) {
				t.Fatalf("op %d: knn mismatch (%v)", i, err)
			}
		case exec.SPDQ:
			want, _, err := v.SPD(context.Background(), op.P, op.Q, &st, engines[i])
			if err != nil || want.Dist != r.Path.Dist {
				t.Fatalf("op %d: spd mismatch (%v): %v vs %v", i, err, r.Path.Dist, want.Dist)
			}
		}
	}
	// Unknown venue and unknown override are rejected up front.
	if _, _, _, err := tier.Run(context.Background(), "nope", ops, ""); err == nil {
		t.Fatal("Run on unknown venue succeeded")
	}
	if _, _, _, err := tier.Run(context.Background(), "mall-a", ops, "VIPTree"); err == nil {
		t.Fatal("Run with an unserved override succeeded")
	}
}

// TestTierSwap snapshots one venue, swaps it in, and checks the epoch
// advances, the object set carries over, the router (same engine set)
// persists with its evidence, and the pre-swap generation stays usable.
func TestTierSwap(t *testing.T) {
	tier := newTestTier(t)
	old, _ := tier.Venue("mall-b")
	gen := workload.New(old.Space, 4)
	p, _ := gen.PointIn()
	var st query.Stats
	if _, _, err := old.Range(context.Background(), p, 9, &st, ""); err != nil {
		t.Fatal(err)
	}
	routerBefore := old.Router()

	b, err := bundle.Build("mall-b", old.Space, bundle.Options{Engines: fastEngines, Gamma: old.Gamma})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mall-b.isnap")
	if err := b.WriteFile(path, false); err != nil {
		t.Fatal(err)
	}

	if _, err := tier.SwapSnapshot("nope", path); err == nil {
		t.Fatal("swap of unknown venue succeeded")
	}
	nv, err := tier.SwapSnapshot("mall-b", path)
	if err != nil {
		t.Fatal(err)
	}
	if nv.Epoch() != 2 {
		t.Fatalf("post-swap epoch %d", nv.Epoch())
	}
	if nv.Origin != "snapshot" {
		t.Fatalf("post-swap origin %q", nv.Origin)
	}
	if len(nv.Objects) != len(old.Objects) {
		t.Fatalf("swap dropped objects: %d vs %d", len(nv.Objects), len(old.Objects))
	}
	if nv.Router() != routerBefore {
		t.Fatal("swap with an unchanged engine set replaced the router")
	}
	cur, _ := tier.Venue("mall-b")
	if cur != nv {
		t.Fatal("lookup does not see the new generation")
	}
	// Both generations answer identically (immutable states).
	got, _, err := nv.Range(context.Background(), p, 9, &st, "IDIndex")
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := old.Range(context.Background(), p, 9, &st, "IDIndex")
	if err != nil || len(got) != len(want) {
		t.Fatalf("generations disagree: %v vs %v (%v)", got, want, err)
	}
	// Other venues were untouched.
	if va, _ := tier.Venue("mall-a"); va.Epoch() != 1 {
		t.Fatalf("swap of mall-b bumped mall-a to epoch %d", va.Epoch())
	}
}

// TestTierConcurrentSwap hammers one venue with routed queries and batch
// runs while snapshots swap underneath; run under -race via the Makefile
// race target. Every query must succeed against a consistent generation.
func TestTierConcurrentSwap(t *testing.T) {
	tier := newTestTier(t)
	v, _ := tier.Venue("mall-a")
	b, err := bundle.Build("mall-a", v.Space, bundle.Options{Engines: fastEngines, Gamma: v.Gamma})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mall-a.isnap")
	if err := b.WriteFile(path, false); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lg := workload.New(v.Space, int64(100+g))
			var st query.Stats
			for i := 0; i < 40; i++ {
				cv, ok := tier.Venue("mall-a")
				if !ok {
					t.Error("venue vanished")
					return
				}
				p, _ := lg.PointIn()
				if _, _, err := cv.Range(context.Background(), p, 6, &st, ""); err != nil {
					t.Errorf("range: %v", err)
					return
				}
				if i%4 == 0 {
					q, _ := lg.PointIn()
					ops := []exec.Op{{Kind: exec.SPDQ, P: p, Q: q}, {Kind: exec.KNNQ, P: p, K: 2}}
					if _, _, _, err := tier.Run(context.Background(), "mall-a", ops, ""); err != nil {
						t.Errorf("run: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := tier.SwapSnapshot("mall-a", path); err != nil {
				t.Errorf("swap: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if cv, ok := tier.Venue("mall-a"); ok {
				cv.Router().Decisions()
				cv.Epoch()
			}
		}
	}()
	wg.Wait()
	cur, _ := tier.Venue("mall-a")
	if cur.Epoch() != 6 {
		t.Fatalf("expected epoch 6 after 5 swaps, got %d", cur.Epoch())
	}
}
