// Cost-based engine routing. The paper's own conclusion — reiterated by the
// extended experimental analysis — is that no single index wins every
// workload: IDINDEX dominates dense range workloads, VIP-TREE wins long-haul
// SPDQ, CINDEX shifts with topology. So instead of hard-coding one engine
// per process, every venue carries a Router that picks the serving engine
// per query class at runtime from observed latencies.
//
// The model is deliberately small. Evidence comes from the venue's
// obs.Registry — the same per-engine × per-op latency histograms /metrics
// scrapes — read as bucket deltas per decision window and folded into an
// exponentially decayed accumulator, so the decision tracks recent traffic
// and re-evaluates as it shifts. Each query class starts in an explore
// phase that cycles through all engines in a seeded deterministic order;
// after that the router exploits the engine with the lowest decayed p95
// (p50 as tie-break), keeps sampling the others at a low deterministic
// cadence so the evidence never goes stale, and re-evaluates every
// ReevalEvery queries. A deterministic-override pin bypasses the model
// entirely, and Decisions exposes the full decision table with its
// evidence for the introspection endpoint.
package tenant

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"indoorsq/internal/obs"
)

// Ops routed per venue, in canonical order: the three query classes of the
// serving tier (obs op labels, shared with the registry).
var RoutedOps = []string{obs.OpRange, obs.OpKNN, obs.OpSPD}

// RouterConfig tunes the cost model. The zero value selects the defaults.
type RouterConfig struct {
	// ExplorePerEngine is how many samples per engine each query class
	// collects in the explore phase before exploiting (default 4).
	ExplorePerEngine int
	// ReevalEvery re-evaluates the decision every N routed queries per
	// class after the explore phase (default 128).
	ReevalEvery int
	// SampleEvery keeps evidence fresh during exploitation: every N-th
	// query is routed round-robin to the next engine instead of the chosen
	// one (default 16; negative disables shadow sampling).
	SampleEvery int
	// Decay is the per-window retention of old evidence in (0,1): at each
	// re-evaluation the accumulated bucket weights are multiplied by Decay
	// before the new window's deltas fold in (default 0.5).
	Decay float64
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.ExplorePerEngine <= 0 {
		c.ExplorePerEngine = 4
	}
	if c.ReevalEvery <= 0 {
		c.ReevalEvery = 128
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 16
	}
	if c.Decay <= 0 || c.Decay >= 1 {
		c.Decay = 0.5
	}
	return c
}

// Router picks the serving engine per query class for one venue.
type Router struct {
	cfg     RouterConfig
	reg     *obs.Registry
	engines []string // canonical order
	ops     map[string]*opRouter
	// pins is the deterministic-override table (op -> engine), published
	// copy-on-write so the hot path reads it with one atomic load.
	pins atomic.Pointer[map[string]string]
}

// opRouter is the per-query-class routing state.
type opRouter struct {
	op string
	// order is the seeded deterministic engine cycle used by the explore
	// phase and by shadow sampling.
	order      []string
	exploreLen int64
	n          atomic.Int64
	choice     atomic.Pointer[string]
	// mu guards the evidence accumulators (taken only on re-evaluation).
	mu      sync.Mutex
	windows int64
	ev      map[string]*evidence
}

// evidence is the decayed latency accounting for one (op, engine).
type evidence struct {
	lastBuckets [obs.NumBuckets + 1]int64
	decayed     [obs.NumBuckets + 1]float64
	total       float64
	p50, p95    time.Duration
}

// NewRouter builds a router over the venue's engine set (canonical order)
// reading evidence from reg. The seed fixes the explore/sampling cycle, so
// two routers with equal seeds route identically given equal evidence.
func NewRouter(engines []string, reg *obs.Registry, seed int64, cfg RouterConfig) *Router {
	cfg = cfg.withDefaults()
	r := &Router{
		cfg:     cfg,
		reg:     reg,
		engines: append([]string(nil), engines...),
		ops:     make(map[string]*opRouter, len(RoutedOps)),
	}
	for i, op := range RoutedOps {
		order := append([]string(nil), r.engines...)
		// Seeded deterministic shuffle, distinct per op, so concurrent
		// venues don't all hammer the same engine first.
		rng := rand.New(rand.NewSource(seed*31 + int64(i)))
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		o := &opRouter{
			op:         op,
			order:      order,
			exploreLen: int64(cfg.ExplorePerEngine) * int64(len(order)),
			ev:         make(map[string]*evidence, len(order)),
		}
		for _, e := range order {
			o.ev[e] = &evidence{}
		}
		r.ops[op] = o
	}
	empty := map[string]string{}
	r.pins.Store(&empty)
	return r
}

// Engines returns the canonical engine set the router decides over.
func (r *Router) Engines() []string { return append([]string(nil), r.engines...) }

// Pin deterministically overrides one query class: every Choose(op) returns
// engine until Unpin. An empty op pins all classes.
func (r *Router) Pin(op, engine string) error {
	found := false
	for _, e := range r.engines {
		if e == engine {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("tenant: pin to unknown engine %q (have %v)", engine, r.engines)
	}
	if op != "" {
		if _, ok := r.ops[op]; !ok {
			return fmt.Errorf("tenant: pin on unknown op %q", op)
		}
	}
	for {
		cur := r.pins.Load()
		next := make(map[string]string, len(*cur)+len(RoutedOps))
		for k, v := range *cur {
			next[k] = v
		}
		if op == "" {
			for _, o := range RoutedOps {
				next[o] = engine
			}
		} else {
			next[op] = engine
		}
		if r.pins.CompareAndSwap(cur, &next) {
			return nil
		}
	}
}

// Unpin removes the override for op ("" removes every pin).
func (r *Router) Unpin(op string) {
	for {
		cur := r.pins.Load()
		next := make(map[string]string, len(*cur))
		for k, v := range *cur {
			if op == "" || k == op {
				continue
			}
			next[k] = v
		}
		if r.pins.CompareAndSwap(cur, &next) {
			return
		}
	}
}

// PrimeBaseline marks the registry's current counts as already seen, so the
// first evidence window folds only traffic arriving after the call. Used
// when a swap replaces a venue's router over its persistent registry.
func (r *Router) PrimeBaseline() {
	for _, o := range r.ops {
		o.mu.Lock()
		for _, eng := range r.engines {
			ev := o.ev[eng]
			ser := r.reg.Series(eng, o.op)
			for i := 0; i <= obs.NumBuckets; i++ {
				ev.lastBuckets[i] = ser.Latency.Bucket(i)
			}
		}
		o.mu.Unlock()
	}
}

// Choose returns the engine to serve the next query of class op. Unknown
// ops fall back to the first canonical engine (the caller validates ops at
// the HTTP layer; this keeps Choose total).
func (r *Router) Choose(op string) string {
	o, ok := r.ops[op]
	if !ok {
		return r.engines[0]
	}
	if pin, ok := (*r.pins.Load())[op]; ok {
		return pin
	}
	n := o.n.Add(1)
	if n <= o.exploreLen {
		return o.order[int((n-1)%int64(len(o.order)))]
	}
	k := n - o.exploreLen
	if o.choice.Load() == nil || k%int64(r.cfg.ReevalEvery) == 1 {
		r.reevaluate(o)
	}
	if s := int64(r.cfg.SampleEvery); s > 0 && k%s == 0 {
		return o.order[int((k/s)%int64(len(o.order)))]
	}
	return *o.choice.Load()
}

// reevaluate folds the latest registry window into the decayed evidence and
// re-picks the engine with the lowest decayed p95 (then p50, then canonical
// order). Serialized per op; idempotent if two queries race into the same
// window boundary.
func (r *Router) reevaluate(o *opRouter) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.windows++
	type scored struct {
		engine   string
		p95, p50 time.Duration
		total    float64
	}
	var best *scored
	for _, eng := range r.engines {
		ev := o.ev[eng]
		ser := r.reg.Series(eng, o.op)
		ev.total = 0
		for i := 0; i <= obs.NumBuckets; i++ {
			cur := ser.Latency.Bucket(i)
			delta := cur - ev.lastBuckets[i]
			if delta < 0 {
				delta = 0
			}
			ev.lastBuckets[i] = cur
			ev.decayed[i] = ev.decayed[i]*r.cfg.Decay + float64(delta)
			ev.total += ev.decayed[i]
		}
		ev.p50 = decayedQuantile(&ev.decayed, ev.total, 0.50)
		ev.p95 = decayedQuantile(&ev.decayed, ev.total, 0.95)
		if ev.total <= 0 {
			continue // no evidence yet: not eligible
		}
		// Canonical-order tie-break falls out of the iteration order: a
		// later engine must strictly improve to displace the incumbent.
		s := &scored{engine: eng, p95: ev.p95, p50: ev.p50, total: ev.total}
		if best == nil ||
			s.p95 < best.p95 ||
			(s.p95 == best.p95 && s.p50 < best.p50) {
			best = s
		}
	}
	if best != nil {
		choice := best.engine
		o.choice.Store(&choice)
	} else if o.choice.Load() == nil {
		// Exploit reached with an empty registry (possible only when the
		// registry was swapped out underneath): fall back deterministically.
		choice := o.order[0]
		o.choice.Store(&choice)
	}
}

// decayedQuantile walks the decayed bucket weights like
// obs.Histogram.Quantile walks raw counts (overflow included).
func decayedQuantile(buckets *[obs.NumBuckets + 1]float64, total, q float64) time.Duration {
	if total <= 0 {
		return 0
	}
	rank := q * total
	var seen float64
	for i := 0; i <= obs.NumBuckets; i++ {
		seen += buckets[i]
		if seen >= rank {
			return obs.BucketBound(i)
		}
	}
	return obs.BucketBound(obs.NumBuckets)
}

// EngineEvidence is one engine's entry in a decision's evidence table.
type EngineEvidence struct {
	Engine string `json:"engine"`
	// Samples is the decayed sample weight backing the quantiles; Queries
	// and Errors are the cumulative registry counters.
	Samples float64 `json:"samples"`
	Queries int64   `json:"queries"`
	Errors  int64   `json:"errors"`
	P50     string  `json:"p50"`
	P95     string  `json:"p95"`
	P50Ns   int64   `json:"p50Ns"`
	P95Ns   int64   `json:"p95Ns"`
}

// Decision is the current routing state of one query class.
type Decision struct {
	Op string `json:"op"`
	// Mode is "pinned", "explore", or "exploit".
	Mode   string `json:"mode"`
	Engine string `json:"engine"` // serving target ("" while exploring)
	Pinned string `json:"pinned,omitempty"`
	// N counts routed queries; ExploreRemaining how many explore slots are
	// left; Windows how many re-evaluations have folded evidence.
	N                int64            `json:"n"`
	ExploreRemaining int64            `json:"exploreRemaining"`
	Windows          int64            `json:"windows"`
	ExploreOrder     []string         `json:"exploreOrder"`
	Evidence         []EngineEvidence `json:"evidence"`
}

// Decisions returns the routing decision table with its evidence, ordered
// by query class, for the introspection endpoint.
func (r *Router) Decisions() []Decision {
	pins := *r.pins.Load()
	out := make([]Decision, 0, len(RoutedOps))
	for _, op := range RoutedOps {
		o := r.ops[op]
		n := o.n.Load()
		d := Decision{
			Op:           op,
			N:            n,
			ExploreOrder: append([]string(nil), o.order...),
		}
		if rem := o.exploreLen - n; rem > 0 {
			d.ExploreRemaining = rem
		}
		switch {
		case pins[op] != "":
			d.Mode, d.Engine, d.Pinned = "pinned", pins[op], pins[op]
		case n < o.exploreLen || o.choice.Load() == nil:
			d.Mode = "explore"
		default:
			d.Mode, d.Engine = "exploit", *o.choice.Load()
		}
		o.mu.Lock()
		d.Windows = o.windows
		for _, eng := range r.engines {
			ev := o.ev[eng]
			ser := r.reg.Series(eng, op)
			d.Evidence = append(d.Evidence, EngineEvidence{
				Engine:  eng,
				Samples: ev.total,
				Queries: ser.Count.Load(),
				Errors:  ser.Errs.Load(),
				P50:     ev.p50.String(),
				P95:     ev.p95.String(),
				P50Ns:   ev.p50.Nanoseconds(),
				P95Ns:   ev.p95.Nanoseconds(),
			})
		}
		o.mu.Unlock()
		sort.SliceStable(d.Evidence, func(i, j int) bool {
			return d.Evidence[i].Engine < d.Evidence[j].Engine
		})
		out = append(out, d)
	}
	return out
}
