// Package tenant is the multi-venue serving tier: N venues hashed across M
// shards, each shard holding an immutable generation of its venues behind an
// atomic pointer (the PR 8 hot-swap discipline, lifted from one venue to a
// shard map) plus one bounded exec.Pool for batch work. Venues boot from any
// of the three sources the repo knows — a benchmark dataset, a spacegen
// seed, or a snapshot bundle — and each carries a persistent control block
// (metrics registry, cost-based Router, epoch counter) that survives
// generation swaps, so routing evidence accumulated before a swap keeps
// steering traffic after it.
package tenant

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"indoorsq/internal/dataset"
	"indoorsq/internal/exec"
	"indoorsq/internal/indoor"
	"indoorsq/internal/obs"
	"indoorsq/internal/query"
	"indoorsq/internal/snapshot/bundle"
	"indoorsq/internal/spacegen"
)

// ErrUnknownEngine marks a query whose engine override names an engine the
// venue's current generation does not serve — a caller error (404 at the
// HTTP layer), not a query failure.
var ErrUnknownEngine = errors.New("tenant: unknown engine")

// VenueSpec describes one venue to boot. Exactly one source wins, checked in
// order: Snapshot (a bundle artifact path), Dataset (a benchmark dataset
// name), else GenSeed/GenParams (a generated venue).
type VenueSpec struct {
	ID        string
	Snapshot  string
	Dataset   string
	GenSeed   int64
	GenParams spacegen.Params

	// Engines selects which engines to build (build sources only; empty =
	// all five). Snapshot venues serve whatever the artifact carries.
	Engines []string
	// Gamma is the IP/VIP-TREE crucial threshold (0: the dataset's tuned
	// value, or 4 for generated venues).
	Gamma int
	// Objects seeds this many deterministic POIs (ObjectSeed; 0 = derived
	// from GenSeed) into every engine at boot. 0 boots empty.
	Objects    int
	ObjectSeed int64
}

// Options configures the tier.
type Options struct {
	// Shards is the number of shards venues hash across (default
	// min(4, len(specs)), at least 1).
	Shards int
	// Workers bounds each shard's exec.Pool and bundle construction
	// parallelism (<= 0: GOMAXPROCS).
	Workers int
	// Seed fixes every router's explore order; two tiers booted with equal
	// specs and seeds route identically given equal traffic.
	Seed int64
	// Router tunes the cost model (zero value = defaults).
	Router RouterConfig
}

// Venue is one immutable serving generation of one venue. Query handlers
// load it once (via Tier.Venue) and keep a consistent view for their whole
// request while a swap publishes the next generation.
type Venue struct {
	ID      string
	Space   *indoor.Space
	Engines map[string]query.Engine
	Gamma   int
	Objects []query.Object

	// Provenance, as on server.ServingState.
	Origin        string
	Fingerprint   uint64
	FormatVersion uint32

	engineList []string // canonical order
	ctl        *venueCtl
}

// venueCtl is the per-venue state that persists across generation swaps:
// the metrics registry the routing evidence lives in, the router itself
// (replaced only when a swap changes the engine set), and the venue epoch.
type venueCtl struct {
	id     string
	seed   int64
	reg    *obs.Registry
	router atomic.Pointer[Router]
	epoch  atomic.Uint64
}

// Shard owns a disjoint subset of the venues: an atomically published
// generation map and one bounded pool for batch execution.
type Shard struct {
	index int
	pool  *exec.Pool
	// mu serializes swaps on this shard (never taken on the query path).
	mu  sync.Mutex
	gen atomic.Pointer[map[string]*Venue]
}

// Tier is the multi-venue serving tier.
type Tier struct {
	opts   Options
	shards []*Shard
	ids    []string // sorted venue ids (fixed at boot)
}

// shardIndex places a venue id on a shard (FNV-1a, stable across runs).
func shardIndex(id string, n int) int {
	h := fnv.New64a()
	h.Write([]byte(id))
	return int(h.Sum64() % uint64(n))
}

// New boots the tier: every venue is built (in parallel), seeded with its
// object set, given its control block, and published on its shard.
func New(specs []VenueSpec, opts Options) (*Tier, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("tenant: no venues")
	}
	if opts.Shards <= 0 {
		opts.Shards = len(specs)
		if opts.Shards > 4 {
			opts.Shards = 4
		}
	}
	seen := make(map[string]bool, len(specs))
	for _, s := range specs {
		if s.ID == "" {
			return nil, fmt.Errorf("tenant: venue with empty id")
		}
		if seen[s.ID] {
			return nil, fmt.Errorf("tenant: duplicate venue id %q", s.ID)
		}
		seen[s.ID] = true
	}

	t := &Tier{opts: opts, shards: make([]*Shard, opts.Shards)}
	maps := make([]map[string]*Venue, opts.Shards)
	for i := range t.shards {
		t.shards[i] = &Shard{index: i, pool: &exec.Pool{Workers: opts.Workers}}
		maps[i] = make(map[string]*Venue)
	}

	venues := make([]*Venue, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			venues[i], errs[i] = t.buildVenue(specs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("tenant: venue %q: %w", specs[i].ID, err)
		}
	}
	for _, v := range venues {
		maps[shardIndex(v.ID, opts.Shards)][v.ID] = v
		t.ids = append(t.ids, v.ID)
		v.ctl.epoch.Store(1)
	}
	sort.Strings(t.ids)
	for i := range t.shards {
		m := maps[i]
		t.shards[i].gen.Store(&m)
	}
	return t, nil
}

// buildVenue constructs one venue generation plus its control block.
func (t *Tier) buildVenue(spec VenueSpec) (*Venue, error) {
	var b *bundle.Bundle
	var err error
	gamma := spec.Gamma
	switch {
	case spec.Snapshot != "":
		b, err = bundle.LoadFile(spec.Snapshot)
	case spec.Dataset != "":
		var info *dataset.Info
		if info, err = dataset.Build(spec.Dataset); err == nil {
			if gamma == 0 {
				gamma = info.Gamma
			}
			b, err = bundle.Build(spec.ID, info.Space,
				bundle.Options{Engines: spec.Engines, Gamma: gamma, Workers: t.opts.Workers})
		}
	default:
		var sp *indoor.Space
		if sp, err = spacegen.Generate(spec.GenSeed, spec.GenParams.Normalize()); err == nil {
			if gamma == 0 {
				gamma = 4
			}
			b, err = bundle.Build(spec.ID, sp,
				bundle.Options{Engines: spec.Engines, Gamma: gamma, Workers: t.opts.Workers})
		}
	}
	if err != nil {
		return nil, err
	}
	var objs []query.Object
	if spec.Objects > 0 {
		objSeed := spec.ObjectSeed
		if objSeed == 0 {
			objSeed = spec.GenSeed*31 + 7
		}
		objs = spacegen.Objects(b.Space, objSeed, spec.Objects)
	}
	ctl := &venueCtl{
		id:   spec.ID,
		seed: t.opts.Seed ^ int64(fnvHash(spec.ID)),
		reg:  obs.NewRegistry(),
	}
	v := adoptBundle(spec.ID, b, objs, ctl)
	ctl.router.Store(NewRouter(v.engineList, ctl.reg, ctl.seed, t.opts.Router))
	return v, nil
}

func fnvHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// adoptBundle turns a bundle into a venue generation: objects are installed
// on the (not yet published) engines, provenance is carried over.
func adoptBundle(id string, b *bundle.Bundle, objs []query.Object, ctl *venueCtl) *Venue {
	for _, e := range b.Engines {
		e.SetObjects(objs)
	}
	return &Venue{
		ID:            id,
		Space:         b.Space,
		Engines:       b.Engines,
		Gamma:         b.Gamma,
		Objects:       objs,
		Origin:        b.Origin,
		Fingerprint:   b.Fingerprint,
		FormatVersion: b.FormatVersion,
		engineList:    b.EngineList(),
		ctl:           ctl,
	}
}

// NumShards returns the shard count.
func (t *Tier) NumShards() int { return len(t.shards) }

// ShardOf returns the shard index a venue id hashes to.
func (t *Tier) ShardOf(id string) int { return shardIndex(id, len(t.shards)) }

// VenueIDs returns all venue ids, sorted.
func (t *Tier) VenueIDs() []string { return append([]string(nil), t.ids...) }

// Venue returns the current generation of one venue.
func (t *Tier) Venue(id string) (*Venue, bool) {
	sh := t.shards[shardIndex(id, len(t.shards))]
	v, ok := (*sh.gen.Load())[id]
	return v, ok
}

// SwapSnapshot loads a bundle artifact and publishes it as the venue's next
// generation: the serving object set is carried over, the control block
// (registry, router, epoch) persists, and only the shard map pointer moves —
// requests in flight finish on the generation they loaded. If the artifact
// changes the venue's engine set the router is replaced (its evidence keyed
// the old set) and primed so pre-swap traffic doesn't leak into the first
// window of the new one.
func (t *Tier) SwapSnapshot(id, path string) (*Venue, error) {
	sh := t.shards[shardIndex(id, len(t.shards))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := *sh.gen.Load()
	v, ok := cur[id]
	if !ok {
		return nil, fmt.Errorf("tenant: unknown venue %q", id)
	}
	b, err := bundle.LoadFile(path)
	if err != nil {
		return nil, err
	}
	nv := adoptBundle(id, b, v.Objects, v.ctl)
	if !equalStrings(v.engineList, nv.engineList) {
		r := NewRouter(nv.engineList, v.ctl.reg, v.ctl.seed, t.opts.Router)
		r.PrimeBaseline()
		v.ctl.router.Store(r)
	}
	next := make(map[string]*Venue, len(cur))
	for k, vv := range cur {
		next[k] = vv
	}
	next[id] = nv
	sh.gen.Store(&next)
	v.ctl.epoch.Add(1)
	return nv, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EngineList returns the venue's engine names in canonical order.
func (v *Venue) EngineList() []string { return append([]string(nil), v.engineList...) }

// Router returns the venue's current router.
func (v *Venue) Router() *Router { return v.ctl.router.Load() }

// Registry returns the venue's metrics registry (persists across swaps).
func (v *Venue) Registry() *obs.Registry { return v.ctl.reg }

// Epoch returns the venue's serving epoch: 1 at boot, +1 per swap.
func (v *Venue) Epoch() uint64 { return v.ctl.epoch.Load() }

// resolve picks the serving engine for one query of class op: an explicit
// override wins (the deterministic knob), otherwise the router decides.
func (v *Venue) resolve(op, override string) (query.EngineCtx, string, error) {
	name := override
	if name == "" {
		name = v.Router().Choose(op)
	}
	e, ok := v.Engines[name]
	if !ok {
		return nil, name, fmt.Errorf("%w: venue %q has no engine %q", ErrUnknownEngine, v.ID, name)
	}
	return query.AsCtx(e), name, nil
}

// bind attaches the venue registry to the query context so the engine's
// latency lands in the evidence the router reads.
func (v *Venue) bind(ctx context.Context) context.Context {
	return obs.WithRegistry(ctx, v.ctl.reg)
}

// Range answers a routed range query; the second return is the engine that
// served it. override pins the engine for this query ("" routes).
func (v *Venue) Range(ctx context.Context, p indoor.Point, r float64, st *query.Stats, override string) ([]int32, string, error) {
	eng, name, err := v.resolve(obs.OpRange, override)
	if err != nil {
		return nil, name, err
	}
	ids, err := eng.RangeCtx(v.bind(ctx), p, r, st)
	return ids, name, err
}

// KNN answers a routed k-nearest-neighbors query.
func (v *Venue) KNN(ctx context.Context, p indoor.Point, k int, st *query.Stats, override string) ([]query.Neighbor, string, error) {
	eng, name, err := v.resolve(obs.OpKNN, override)
	if err != nil {
		return nil, name, err
	}
	nn, err := eng.KNNCtx(v.bind(ctx), p, k, st)
	return nn, name, err
}

// SPD answers a routed shortest-path-distance query.
func (v *Venue) SPD(ctx context.Context, p, q indoor.Point, st *query.Stats, override string) (query.Path, string, error) {
	eng, name, err := v.resolve(obs.OpSPD, override)
	if err != nil {
		return query.Path{}, name, err
	}
	path, err := eng.SPDCtx(v.bind(ctx), p, q, st)
	return path, name, err
}

// opLabel maps an exec op kind to its obs/router query-class label.
func opLabel(k exec.Kind) string {
	switch k {
	case exec.RangeQ:
		return obs.OpRange
	case exec.KNNQ:
		return obs.OpKNN
	default:
		return obs.OpSPD
	}
}

// Run executes a batch against one venue through its shard's pool: each op
// is routed individually (override pins all of them), ops are grouped by
// chosen engine, and each group runs as one pooled sub-batch. Results are
// indexed like ops; the returned engine slice records who served each op.
func (t *Tier) Run(ctx context.Context, venueID string, ops []exec.Op, override string) ([]exec.Result, exec.Batch, []string, error) {
	sh := t.shards[shardIndex(venueID, len(t.shards))]
	v, ok := (*sh.gen.Load())[venueID]
	if !ok {
		return nil, exec.Batch{}, nil, fmt.Errorf("tenant: unknown venue %q", venueID)
	}
	names := make([]string, len(ops))
	groups := make(map[string][]int)
	for i := range ops {
		name := override
		if name == "" {
			name = v.Router().Choose(opLabel(ops[i].Kind))
		}
		if _, ok := v.Engines[name]; !ok {
			return nil, exec.Batch{}, nil, fmt.Errorf("%w: venue %q has no engine %q", ErrUnknownEngine, venueID, name)
		}
		names[i] = name
		groups[name] = append(groups[name], i)
	}
	ctx = v.bind(ctx)
	results := make([]exec.Result, len(ops))
	var batch exec.Batch
	start := time.Now()
	// Canonical engine order keeps multi-engine batches deterministic.
	for _, name := range v.engineList {
		idx := groups[name]
		if len(idx) == 0 {
			continue
		}
		sub := make([]exec.Op, len(idx))
		for j, i := range idx {
			sub[j] = ops[i]
		}
		res, b := sh.pool.RunCtx(ctx, v.Engines[name], sub)
		for j, i := range idx {
			results[i] = res[j]
		}
		batch.Stats.Add(b.Stats)
		batch.QueryTime += b.QueryTime
		batch.Errs += b.Errs
		batch.Cancelled += b.Cancelled
	}
	batch.Wall = time.Since(start)
	return results, batch, names, nil
}
