package tenant

import (
	"testing"
	"time"

	"indoorsq/internal/obs"
)

// testEngines is a small synthetic engine set with a known latency ranking.
var testEngines = []string{"A", "B", "C"}

// latencyFor is the synthetic cost model the tests feed the registry with:
// B is the fast engine for every op, A mid, C slow.
func latencyFor(engine string) time.Duration {
	switch engine {
	case "B":
		return 100 * time.Microsecond
	case "A":
		return 3 * time.Millisecond
	default:
		return 40 * time.Millisecond
	}
}

// drive runs n Choose/observe rounds for op and returns the chosen engines.
func drive(r *Router, reg *obs.Registry, op string, n int) []string {
	out := make([]string, n)
	for i := 0; i < n; i++ {
		e := r.Choose(op)
		reg.Series(e, op).Observe(latencyFor(e), 0, 0, 0, 0, false)
		out[i] = e
	}
	return out
}

// TestRouterReproducible pins the acceptance criterion: two routers with the
// same seed, fed identical evidence, make the identical decision sequence.
func TestRouterReproducible(t *testing.T) {
	cfg := RouterConfig{ExplorePerEngine: 2, ReevalEvery: 10, SampleEvery: 5}
	mk := func() (*Router, *obs.Registry) {
		reg := obs.NewRegistry()
		return NewRouter(testEngines, reg, 42, cfg), reg
	}
	r1, g1 := mk()
	r2, g2 := mk()
	for _, op := range RoutedOps {
		s1 := drive(r1, g1, op, 200)
		s2 := drive(r2, g2, op, 200)
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("op %s: decision %d diverged: %q vs %q", op, i, s1[i], s2[i])
			}
		}
	}
	// A different seed produces a different explore order for some op
	// (the orders are seeded shuffles; with 3 engines and 3 ops a full
	// collision across all ops is astronomically unlikely).
	r3 := NewRouter(testEngines, obs.NewRegistry(), 43, cfg)
	same := true
	for _, op := range RoutedOps {
		o1, o3 := r1.ops[op].order, r3.ops[op].order
		for i := range o1 {
			if o1[i] != o3[i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical explore orders for every op")
	}
}

// TestRouterConvergesToFastest drives enough traffic for the explore phase
// plus several re-evaluation windows and checks the router exploits the
// engine the evidence says is fastest, while shadow sampling keeps touching
// the others.
func TestRouterConvergesToFastest(t *testing.T) {
	cfg := RouterConfig{ExplorePerEngine: 2, ReevalEvery: 10, SampleEvery: 5}
	reg := obs.NewRegistry()
	r := NewRouter(testEngines, reg, 7, cfg)
	seq := drive(r, reg, obs.OpRange, 400)

	counts := map[string]int{}
	for _, e := range seq[100:] { // steady state
		counts[e]++
	}
	if counts["B"] < 200 {
		t.Fatalf("steady state should mostly serve the fast engine, got %v", counts)
	}
	if counts["A"] == 0 || counts["C"] == 0 {
		t.Fatalf("shadow sampling should keep touching every engine, got %v", counts)
	}

	var d Decision
	for _, dd := range r.Decisions() {
		if dd.Op == obs.OpRange {
			d = dd
		}
	}
	if d.Mode != "exploit" || d.Engine != "B" {
		t.Fatalf("decision should exploit B, got mode=%q engine=%q", d.Mode, d.Engine)
	}
	if d.Windows == 0 || d.N != 400 {
		t.Fatalf("decision bookkeeping off: windows=%d n=%d", d.Windows, d.N)
	}
	for _, ev := range d.Evidence {
		if ev.Samples <= 0 || ev.Queries <= 0 {
			t.Fatalf("engine %s has no evidence: %+v", ev.Engine, ev)
		}
		if ev.P95Ns <= 0 {
			t.Fatalf("engine %s has no p95: %+v", ev.Engine, ev)
		}
	}
}

// TestRouterReevaluates shifts the cost model mid-stream: once the fast
// engine turns slow, the decayed evidence must move the decision off it.
func TestRouterReevaluates(t *testing.T) {
	cfg := RouterConfig{ExplorePerEngine: 2, ReevalEvery: 10, SampleEvery: 5, Decay: 0.3}
	reg := obs.NewRegistry()
	r := NewRouter(testEngines, reg, 7, cfg)
	drive(r, reg, obs.OpKNN, 200)
	if got := mustDecision(t, r, obs.OpKNN).Engine; got != "B" {
		t.Fatalf("phase 1 should exploit B, got %q", got)
	}
	// Phase 2: B degrades to 200ms, A stays at 3ms.
	for i := 0; i < 300; i++ {
		e := r.Choose(obs.OpKNN)
		d := latencyFor(e)
		if e == "B" {
			d = 200 * time.Millisecond
		}
		reg.Series(e, obs.OpKNN).Observe(d, 0, 0, 0, 0, false)
	}
	if got := mustDecision(t, r, obs.OpKNN).Engine; got != "A" {
		t.Fatalf("after B degrades the router should move to A, got %q", got)
	}
}

func mustDecision(t *testing.T, r *Router, op string) Decision {
	t.Helper()
	for _, d := range r.Decisions() {
		if d.Op == op {
			return d
		}
	}
	t.Fatalf("no decision for op %s", op)
	return Decision{}
}

// TestRouterPins covers the deterministic-override knob: a pin bypasses the
// model, an unknown engine or op is rejected, and unpinning resumes routing.
func TestRouterPins(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewRouter(testEngines, reg, 1, RouterConfig{})
	if err := r.Pin(obs.OpRange, "Z"); err == nil {
		t.Fatal("pin to unknown engine accepted")
	}
	if err := r.Pin("teleport", "A"); err == nil {
		t.Fatal("pin on unknown op accepted")
	}
	if err := r.Pin(obs.OpRange, "C"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if e := r.Choose(obs.OpRange); e != "C" {
			t.Fatalf("pinned op routed to %q", e)
		}
	}
	if d := mustDecision(t, r, obs.OpRange); d.Mode != "pinned" || d.Pinned != "C" {
		t.Fatalf("decision should report the pin, got %+v", d)
	}
	// Pin-all, then unpin everything.
	if err := r.Pin("", "A"); err != nil {
		t.Fatal(err)
	}
	for _, op := range RoutedOps {
		if e := r.Choose(op); e != "A" {
			t.Fatalf("pin-all: op %s routed to %q", op, e)
		}
	}
	r.Unpin("")
	if d := mustDecision(t, r, obs.OpRange); d.Mode == "pinned" {
		t.Fatalf("unpin left the pin in place: %+v", d)
	}
}

// TestRouterPrimeBaseline checks that a primed router excludes pre-existing
// registry history from its first evidence window.
func TestRouterPrimeBaseline(t *testing.T) {
	reg := obs.NewRegistry()
	// History: engine C looks blazing fast before the router exists.
	for i := 0; i < 1000; i++ {
		reg.Series("C", obs.OpRange).Observe(time.Microsecond, 0, 0, 0, 0, false)
	}
	cfg := RouterConfig{ExplorePerEngine: 2, ReevalEvery: 10, SampleEvery: 5}
	r := NewRouter(testEngines, reg, 9, cfg)
	r.PrimeBaseline()
	drive(r, reg, obs.OpRange, 200)
	if got := mustDecision(t, r, obs.OpRange).Engine; got != "B" {
		t.Fatalf("primed router should ignore stale history and pick B, got %q", got)
	}
}
