package oracle_test

import (
	"errors"
	"math"
	"testing"

	"indoorsq/internal/geom"
	"indoorsq/internal/indoor"
	"indoorsq/internal/oracle"
	"indoorsq/internal/query"
	"indoorsq/internal/testspaces"
)

const tol = 1e-9

// stripObjects places four objects in the Strip fixture whose distances
// from (7.5, 2) in R6 are hand-computable:
//
//	o0 (7.5,3) in R6:  1
//	o1 (15,2)  in R7:  7.5          (through the one-way door D8)
//	o2 (1,5)   in Hall: 2 + sqrt(43.25)
//	o3 (2.5,8) in R1:  2 + sqrt(29) + 2
func stripObjects(f *testspaces.Strip) []query.Object {
	return []query.Object{
		{ID: 0, Loc: indoor.At(7.5, 3, 0), Part: f.R6},
		{ID: 1, Loc: indoor.At(15, 2, 0), Part: f.R7},
		{ID: 2, Loc: indoor.At(1, 5, 0), Part: f.Hall},
		{ID: 3, Loc: indoor.At(2.5, 8, 0), Part: f.R1},
	}
}

func TestOracleStripHandComputed(t *testing.T) {
	f := testspaces.NewStrip()
	e := oracle.New(f.Space)
	e.SetObjects(stripObjects(f))
	p := indoor.At(7.5, 2, 0) // in R6

	// Same-partition SPD is the direct geodesic with no doors.
	path, err := e.SPD(indoor.At(1, 5, 0), indoor.At(9, 5, 0), nil)
	if err != nil || math.Abs(path.Dist-8) > tol || len(path.Doors) != 0 {
		t.Fatalf("hall SPD = %+v, %v; want dist 8 with no doors", path, err)
	}

	// Cross-partition SPD through the hallway.
	path, err = e.SPD(indoor.At(2.5, 8, 0), indoor.At(2.5, 2, 0), nil)
	if err != nil || math.Abs(path.Dist-6) > tol {
		t.Fatalf("R1->R5 SPD = %+v, %v; want dist 6", path, err)
	}
	if len(path.Doors) != 2 || path.Doors[0] != f.D1 || path.Doors[1] != f.D5 {
		t.Fatalf("R1->R5 doors = %v, want [D1 D5]", path.Doors)
	}

	// The one-way door D8 makes R6->R7 and R7->R6 asymmetric.
	q := indoor.At(15, 2, 0)
	fwd, err := e.SPD(p, q, nil)
	if err != nil || math.Abs(fwd.Dist-7.5) > tol {
		t.Fatalf("R6->R7 = %+v, %v; want 7.5 via D8", fwd, err)
	}
	back, err := e.SPD(q, p, nil)
	if err != nil || math.Abs(back.Dist-11.5) > tol {
		t.Fatalf("R7->R6 = %+v, %v; want 11.5 via D7,D6", back, err)
	}

	// Range and kNN against the hand-computed distance ladder.
	d2 := 2 + math.Sqrt(43.25)
	d3 := 4 + math.Sqrt(29)
	ids, err := e.Range(p, 7.5, nil)
	if err != nil || len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("Range(7.5) = %v, %v; want [0 1]", ids, err)
	}
	ids, err = e.Range(p, d2+tol, nil)
	if err != nil || len(ids) != 3 {
		t.Fatalf("Range(%g) = %v, %v; want 3 ids", d2, ids, err)
	}
	nn, err := e.KNN(p, 2, nil)
	if err != nil || len(nn) != 2 || nn[0].ID != 0 || nn[1].ID != 1 {
		t.Fatalf("KNN(2) = %v, %v; want objects 0,1", nn, err)
	}
	if math.Abs(nn[0].Dist-1) > tol || math.Abs(nn[1].Dist-7.5) > tol {
		t.Fatalf("KNN(2) dists = %v; want [1 7.5]", nn)
	}
	nn, err = e.KNN(p, 10, nil) // k > |O| returns everything reachable
	if err != nil || len(nn) != 4 {
		t.Fatalf("KNN(10) = %v, %v; want 4 neighbors", nn, err)
	}
	if math.Abs(nn[2].Dist-d2) > tol || math.Abs(nn[3].Dist-d3) > tol {
		t.Fatalf("KNN(10) far dists = %v; want %g and %g", nn, d2, d3)
	}
	all, err := e.AllDists(p)
	if err != nil || len(all) != 4 {
		t.Fatalf("AllDists = %v, %v; want 4 entries", all, err)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Dist < all[i-1].Dist {
			t.Fatalf("AllDists not sorted: %v", all)
		}
	}

	// Queries from a wall return ErrNoHost.
	if _, err := e.Range(indoor.At(-5, -5, 0), 1, nil); !errors.Is(err, query.ErrNoHost) {
		t.Fatalf("outdoor Range err = %v, want ErrNoHost", err)
	}
	if _, err := e.KNN(indoor.At(-5, -5, 0), 1, nil); !errors.Is(err, query.ErrNoHost) {
		t.Fatalf("outdoor KNN err = %v, want ErrNoHost", err)
	}
	if _, err := e.SPD(p, indoor.At(-5, -5, 0), nil); !errors.Is(err, query.ErrNoHost) {
		t.Fatalf("outdoor SPD err = %v, want ErrNoHost", err)
	}
	if nn, err := e.KNN(p, 0, nil); err != nil || nn != nil {
		t.Fatalf("KNN(0) = %v, %v; want empty", nn, err)
	}
}

func TestOracleTwoFloorStairDistance(t *testing.T) {
	f := testspaces.NewTwoFloor()
	e := oracle.New(f.Space)
	p := indoor.At(2.5, 8, 0)
	q := indoor.At(2.5, 8, 1)
	// p -> DA0 (2) -> DS0 through hall0 -> stair (5) -> DS1 -> DA1
	// through hall1 -> q (2), with each hall leg sqrt(17.5^2 + 1).
	hallLeg := math.Sqrt(17.5*17.5 + 1)
	want := 2 + hallLeg + 5 + hallLeg + 2
	path, err := e.SPD(p, q, nil)
	if err != nil || math.Abs(path.Dist-want) > tol {
		t.Fatalf("cross-floor SPD = %+v, %v; want %g", path, err, want)
	}
	wantDoors := []indoor.DoorID{f.DA0, f.DS0, f.DS1, f.DA1}
	if len(path.Doors) != len(wantDoors) {
		t.Fatalf("cross-floor doors = %v, want %v", path.Doors, wantDoors)
	}
	for i := range wantDoors {
		if path.Doors[i] != wantDoors[i] {
			t.Fatalf("cross-floor doors = %v, want %v", path.Doors, wantDoors)
		}
	}
}

// TestOracleUnreachable builds two rooms joined by a single one-way door:
// the reverse direction must report ErrUnreachable, range scans must
// exclude the unreachable object, and kNN must omit it.
func TestOracleUnreachable(t *testing.T) {
	b := indoor.NewBuilder("oneway", 1)
	a := b.AddRoom(0, geom.RectPoly(geom.R(0, 0, 5, 5)))
	z := b.AddRoom(0, geom.RectPoly(geom.R(5, 0, 10, 5)))
	d := b.AddDoor(geom.Pt(5, 2.5), 0)
	b.ConnectOneWay(d, a, z)
	sp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := oracle.New(sp)
	e.SetObjects([]query.Object{{ID: 0, Loc: indoor.At(2, 2, 0), Part: a}})
	pa, pz := indoor.At(1, 1, 0), indoor.At(9, 1, 0)

	if path, err := e.SPD(pa, pz, nil); err != nil || math.IsInf(path.Dist, 1) {
		t.Fatalf("forward SPD = %+v, %v; want reachable", path, err)
	}
	if _, err := e.SPD(pz, pa, nil); !errors.Is(err, query.ErrUnreachable) {
		t.Fatalf("reverse SPD err = %v, want ErrUnreachable", err)
	}
	if ids, err := e.Range(pz, 1e9, nil); err != nil || len(ids) != 0 {
		t.Fatalf("Range from z = %v, %v; want empty", ids, err)
	}
	if nn, err := e.KNN(pz, 3, nil); err != nil || len(nn) != 0 {
		t.Fatalf("KNN from z = %v, %v; want empty", nn, err)
	}

	// FromDoor reflects the asymmetry on the raw door graph: leaving z
	// through d is impossible, so d cannot reach itself a second time,
	// while from a's side it is its own origin at distance zero.
	dist := e.FromDoor(d)
	if dist[d] != 0 {
		t.Fatalf("FromDoor self distance = %g, want 0", dist[d])
	}
}
