// Package oracle implements a deliberately naive reference engine for
// differential testing: exhaustive Dijkstra over the raw door graph with
// O(D^2) linear minimum selection and no early exit, plus linear scans
// over the full object set for range and kNN. It builds no index, keeps
// no cache, and prunes nothing — per query it costs O(D^2 + D*L*W + N)
// where D is the door count, L the maximum leave-set size, W one
// intra-partition distance computation (a visibility sweep in concave
// partitions), and N the object count.
//
// Because the oracle shares only the Space distance primitives with the
// five real engines (none of their traversal, caching, or index code),
// agreement between an engine and the oracle is strong evidence the
// engine's shortcuts are sound. It implements query.Engine, so the
// differential harness drives it exactly like the engines, including
// through the query.AsCtx adapter.
package oracle

import (
	"math"
	"sort"

	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
)

// Engine is the brute-force reference engine.
type Engine struct {
	sp   *indoor.Space
	objs []query.Object
}

// New returns an oracle over sp.
func New(sp *indoor.Space) *Engine { return &Engine{sp: sp} }

// Name implements query.Engine.
func (e *Engine) Name() string { return "Oracle" }

// SetObjects implements query.Engine.
func (e *Engine) SetObjects(objs []query.Object) {
	e.objs = append([]query.Object(nil), objs...)
}

// SizeBytes implements query.Engine. The oracle holds no index beyond
// its object copy.
func (e *Engine) SizeBytes() int64 { return int64(len(e.objs)) * 24 }

// dijkstra runs the exhaustive expansion to every door from the given
// initial distances, with O(D^2) selection and no early termination.
// dist and prev are fully settled on return.
func (e *Engine) dijkstra(dist []float64, prev []indoor.DoorID) {
	settled := make([]bool, len(dist))
	for {
		u := -1
		for i := range dist {
			if !settled[i] && !math.IsInf(dist[i], 1) && (u < 0 || dist[i] < dist[u]) {
				u = i
			}
		}
		if u < 0 {
			return
		}
		settled[u] = true
		du := dist[u]
		d := indoor.DoorID(u)
		for _, v := range e.sp.Door(d).Enterable {
			for _, nd := range e.sp.Partition(v).Leave {
				if settled[nd] {
					continue
				}
				w := e.sp.WithinDoors(v, d, nd)
				if cand := du + w; cand < dist[nd] {
					dist[nd] = cand
					prev[nd] = d
				}
			}
		}
	}
}

// doorDists returns the shortest distance from point p in partition vp
// to every door (leaving vp through its leave set), plus predecessor
// doors for path reconstruction.
func (e *Engine) doorDists(vp indoor.PartitionID, p indoor.Point) ([]float64, []indoor.DoorID) {
	n := e.sp.NumDoors()
	dist := make([]float64, n)
	prev := make([]indoor.DoorID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = indoor.NoDoor
	}
	for _, d := range e.sp.Partition(vp).Leave {
		if w := e.sp.WithinPointDoor(vp, p, d); w < dist[d] {
			dist[d] = w
		}
	}
	e.dijkstra(dist, prev)
	return dist, prev
}

// pointDist finishes a door-distance vector into the indoor distance to
// point q hosted by vq: the minimum over vq's enterable doors, or the
// direct intra-partition geodesic when p and q share a partition.
func (e *Engine) pointDist(dist []float64, vp indoor.PartitionID, p indoor.Point, vq indoor.PartitionID, q indoor.Point) (float64, indoor.DoorID) {
	best := math.Inf(1)
	bestDoor := indoor.NoDoor
	if vp == vq {
		best = e.sp.WithinPoints(vp, p, q)
	}
	for _, d := range e.sp.Partition(vq).Enter {
		if c := dist[d] + e.sp.WithinPointDoor(vq, q, d); c < best {
			best, bestDoor = c, d
		}
	}
	return best, bestDoor
}

// Range implements query.Engine by scanning every object.
func (e *Engine) Range(p indoor.Point, r float64, st *query.Stats) ([]int32, error) {
	vp, ok := e.sp.HostPartition(p)
	if !ok {
		return nil, query.ErrNoHost
	}
	dist, _ := e.doorDists(vp, p)
	out := make([]int32, 0, len(e.objs))
	for _, o := range e.objs {
		if d, _ := e.pointDist(dist, vp, p, o.Part, o.Loc); d <= r {
			out = append(out, o.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// KNN implements query.Engine by sorting the full object set by
// (distance, id) — the same tie-break every engine's top-k collector
// applies — and truncating to k reachable objects.
func (e *Engine) KNN(p indoor.Point, k int, st *query.Stats) ([]query.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	vp, ok := e.sp.HostPartition(p)
	if !ok {
		return nil, query.ErrNoHost
	}
	nn, _ := e.allDists(vp, p)
	if len(nn) > k {
		nn = nn[:k]
	}
	return nn, nil
}

// allDists returns every reachable object as a (id, dist) pair sorted by
// (dist, id), plus the door-distance vector it was derived from.
func (e *Engine) allDists(vp indoor.PartitionID, p indoor.Point) ([]query.Neighbor, []float64) {
	dist, _ := e.doorDists(vp, p)
	nn := make([]query.Neighbor, 0, len(e.objs))
	for _, o := range e.objs {
		d, _ := e.pointDist(dist, vp, p, o.Part, o.Loc)
		if math.IsInf(d, 1) {
			continue
		}
		nn = append(nn, query.Neighbor{ID: o.ID, Dist: d})
	}
	sort.Slice(nn, func(i, j int) bool {
		if nn[i].Dist != nn[j].Dist {
			return nn[i].Dist < nn[j].Dist
		}
		return nn[i].ID < nn[j].ID
	})
	return nn, dist
}

// AllDists returns the indoor distance from p to every reachable object,
// sorted by (distance, id). The differential harness uses it to snap
// query radii and k values away from floating-point decision boundaries.
func (e *Engine) AllDists(p indoor.Point) ([]query.Neighbor, error) {
	vp, ok := e.sp.HostPartition(p)
	if !ok {
		return nil, query.ErrNoHost
	}
	nn, _ := e.allDists(vp, p)
	return nn, nil
}

// SPD implements query.Engine.
func (e *Engine) SPD(p, q indoor.Point, st *query.Stats) (query.Path, error) {
	vp, ok := e.sp.HostPartition(p)
	if !ok {
		return query.Path{}, query.ErrNoHost
	}
	vq, ok := e.sp.HostPartition(q)
	if !ok {
		return query.Path{}, query.ErrNoHost
	}
	dist, prev := e.doorDists(vp, p)
	best, bestDoor := e.pointDist(dist, vp, p, vq, q)
	if math.IsInf(best, 1) {
		return query.Path{}, query.ErrUnreachable
	}
	var doors []indoor.DoorID
	for d := bestDoor; d != indoor.NoDoor; d = prev[d] {
		doors = append(doors, d)
	}
	for i, j := 0, len(doors)-1; i < j; i, j = i+1, j-1 {
		doors[i], doors[j] = doors[j], doors[i]
	}
	return query.Path{Source: p, Target: q, Doors: doors, Dist: best}, nil
}

// FromDoor returns the shortest door-graph distance from door d to every
// door: zero at d itself, then exhaustive relaxation. The metamorphic
// suite checks the triangle inequality over these vectors.
func (e *Engine) FromDoor(d indoor.DoorID) []float64 {
	n := e.sp.NumDoors()
	dist := make([]float64, n)
	prev := make([]indoor.DoorID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = indoor.NoDoor
	}
	dist[d] = 0
	e.dijkstra(dist, prev)
	return dist
}
