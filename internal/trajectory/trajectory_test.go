package trajectory_test

import (
	"testing"

	"indoorsq/internal/indoor"
	"indoorsq/internal/trajectory"
)

// Partitions used symbolically in the tests.
const (
	lobby indoor.PartitionID = 0
	cafe  indoor.PartitionID = 1
	shop  indoor.PartitionID = 2
)

func demoLog(t *testing.T) *trajectory.Log {
	t.Helper()
	l, err := trajectory.NewLog([]trajectory.Record{
		{Obj: 1, Part: lobby, In: 0, Out: 10},
		{Obj: 1, Part: cafe, In: 10, Out: 20},
		{Obj: 2, Part: lobby, In: 5, Out: 15},
		{Obj: 2, Part: cafe, In: 15, Out: 25},
		{Obj: 3, Part: shop, In: 0, Out: 30},
		{Obj: 4, Part: cafe, In: 21, Out: 22},
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewLogValidates(t *testing.T) {
	if _, err := trajectory.NewLog([]trajectory.Record{{Obj: 1, Part: lobby, In: 5, Out: 5}}); err == nil {
		t.Fatal("empty stay must fail")
	}
	l := demoLog(t)
	if l.Len() != 6 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestTopVisited(t *testing.T) {
	l := demoLog(t)
	top := l.TopVisited(0, 30, 2)
	// cafe: 3 visits (o1, o2, o4); lobby: 2; shop: 1.
	if len(top) != 2 || top[0].Part != cafe || top[0].Visits != 3 || top[1].Part != lobby {
		t.Fatalf("TopVisited = %v", top)
	}
	// Restricted window excludes late visits.
	top = l.TopVisited(0, 12, 3)
	if top[0].Part != lobby || top[0].Visits != 2 {
		t.Fatalf("windowed TopVisited = %v", top)
	}
}

func TestJoin(t *testing.T) {
	l := demoLog(t)
	// o1+o2 overlap in the lobby (5-10) and cafe (15-20); o2+o4 overlap in
	// the cafe (21-22).
	pairs := l.Join(0, 30)
	want := []trajectory.Pair{{A: 1, B: 2}, {A: 2, B: 4}}
	if len(pairs) != 2 || pairs[0] != want[0] || pairs[1] != want[1] {
		t.Fatalf("Join = %v", pairs)
	}
	// A window covering only o4's minute finds just that pair.
	pairs = l.Join(21, 22)
	if len(pairs) != 1 || pairs[0] != (trajectory.Pair{A: 2, B: 4}) {
		t.Fatalf("Join window = %v", pairs)
	}
	// Disjoint stays produce no pair.
	pairs = l.Join(0, 4.9)
	if len(pairs) != 0 {
		t.Fatalf("early Join = %v", pairs)
	}
}

func TestDense(t *testing.T) {
	l := demoLog(t)
	dense := l.Dense(0, 30, 2)
	// lobby peaks at 2 (o1+o2 during 5-10); cafe peaks at 2 (o2+o4 during
	// 21-22); shop peaks at 1.
	if len(dense) != 2 {
		t.Fatalf("Dense = %v", dense)
	}
	for _, d := range dense {
		if d.Visits != 2 {
			t.Fatalf("Dense = %v", dense)
		}
	}
	if len(l.Dense(0, 30, 3)) != 0 {
		t.Fatal("no partition reaches density 3")
	}
	// Exits at the same instant as entries do not double-count.
	if d := l.Dense(10, 20, 2); len(d) != 1 || d[0].Part != lobby {
		// lobby 5-15 has o2 only within [10,20)? o1 leaves at 10 (exclusive)
		// -> peak 1; cafe has o1 (10-20) and o2 (15-25) overlapping 15-20 ->
		// peak 2.
		if len(d) != 1 || d[0].Part != cafe {
			t.Fatalf("Dense tie handling = %v", d)
		}
	}
}

func TestFlow(t *testing.T) {
	l := demoLog(t)
	if f := l.Flow(cafe, 0, 30); f != 3 {
		t.Fatalf("Flow(cafe) = %d, want 3", f)
	}
	if f := l.Flow(shop, 0, 30); f != 1 {
		t.Fatalf("Flow(shop) = %d", f)
	}
	if f := l.Flow(cafe, 0, 5); f != 0 {
		t.Fatalf("Flow early = %d", f)
	}
}

func TestFromUpdates(t *testing.T) {
	updates := []trajectory.PositionUpdate{
		{1, lobby, 0},
		{1, lobby, 5},
		{1, cafe, 10},
		{2, shop, 3},
		{1, cafe, 12},
	}
	l, err := trajectory.FromUpdates(updates, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Object 1: lobby [0,10), cafe [10,13); object 2: shop [3,4).
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if f := l.Flow(lobby, 0, 100); f != 1 {
		t.Fatalf("Flow(lobby) = %d", f)
	}
	top := l.TopVisited(0, 100, 1)
	if len(top) != 1 || top[0].Visits != 1 {
		t.Fatalf("TopVisited = %v", top)
	}

	// Out-of-order updates fail.
	bad := []trajectory.PositionUpdate{
		{1, lobby, 10},
		{1, lobby, 5},
	}
	if _, err := trajectory.FromUpdates(bad, 1); err == nil {
		t.Fatal("out-of-order updates must fail")
	}
}
