// Package trajectory provides analytics over symbolic indoor tracking data:
// sequences of (object, partition, enter-time, exit-time) records as
// produced by RFID/Bluetooth tracking — the historical-query families the
// paper surveys in Sec. 2.3 and names as future work in its conclusion:
//
//   - TopVisited — the k most frequently visited partitions in a time
//     interval (Lu et al., EDBT 2016);
//   - Join — pairs of objects co-located in the same partition with
//     overlapping presence (the spatio-temporal join of Lu et al., ICDE 2011);
//   - Dense — partitions hosting at least a threshold number of objects
//     during an interval (the threshold density query of Ahmed et al.);
//   - Flow — the number of distinct objects passing a partition in an
//     interval (the flow values of Li et al., TKDE 2019).
package trajectory

import (
	"context"
	"fmt"
	"sort"

	"indoorsq/internal/indoor"
)

// Record states that object Obj stayed in partition Part during [In, Out).
type Record struct {
	Obj     int32
	Part    indoor.PartitionID
	In, Out float64
}

// overlaps reports whether the record's stay intersects [t1, t2).
func (r Record) overlaps(t1, t2 float64) bool {
	return r.In < t2 && t1 < r.Out
}

// Log is an immutable set of tracking records indexed by partition.
type Log struct {
	recs   []Record
	byPart map[indoor.PartitionID][]int
}

// NewLog validates and indexes tracking records.
func NewLog(recs []Record) (*Log, error) {
	l := &Log{
		recs:   append([]Record(nil), recs...),
		byPart: make(map[indoor.PartitionID][]int),
	}
	for i, r := range l.recs {
		if r.Out <= r.In {
			return nil, fmt.Errorf("trajectory: record %d has Out %g <= In %g", i, r.Out, r.In)
		}
		l.byPart[r.Part] = append(l.byPart[r.Part], i)
	}
	return l, nil
}

// Len returns the number of records.
func (l *Log) Len() int { return len(l.recs) }

// PositionUpdate is one symbolic position report: object Obj was observed
// in partition Part at time T.
type PositionUpdate struct {
	Obj  int32
	Part indoor.PartitionID
	T    float64
}

// FromUpdates derives stay records from a time-ordered position-update
// stream: consecutive updates of one object in the same partition extend a
// stay; a partition change closes it. Objects' final stays are closed at
// their last report time plus closeAfter.
func FromUpdates(updates []PositionUpdate, closeAfter float64) (*Log, error) {
	type open struct {
		part indoor.PartitionID
		in   float64
		last float64
	}
	cur := make(map[int32]*open)
	var recs []Record
	for _, u := range updates {
		o := cur[u.Obj]
		if o == nil {
			cur[u.Obj] = &open{part: u.Part, in: u.T, last: u.T}
			continue
		}
		if u.T < o.last {
			return nil, fmt.Errorf("trajectory: updates of object %d out of order", u.Obj)
		}
		if u.Part != o.part {
			recs = append(recs, Record{Obj: u.Obj, Part: o.part, In: o.in, Out: u.T})
			cur[u.Obj] = &open{part: u.Part, in: u.T, last: u.T}
		} else {
			o.last = u.T
		}
	}
	objs := make([]int32, 0, len(cur))
	for id := range cur {
		objs = append(objs, id)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	for _, id := range objs {
		o := cur[id]
		recs = append(recs, Record{Obj: id, Part: o.part, In: o.in, Out: o.last + closeAfter})
	}
	return NewLog(recs)
}

// Visit counts one partition's visits.
type Visit struct {
	Part   indoor.PartitionID
	Visits int
}

// TopVisited returns the k partitions with the most visits overlapping
// [t1, t2), descending, ties broken by ascending partition id.
func (l *Log) TopVisited(t1, t2 float64, k int) []Visit {
	counts := make(map[indoor.PartitionID]int)
	for _, r := range l.recs {
		if r.overlaps(t1, t2) {
			counts[r.Part]++
		}
	}
	out := make([]Visit, 0, len(counts))
	for part, c := range counts {
		out = append(out, Visit{Part: part, Visits: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Visits != out[j].Visits {
			return out[i].Visits > out[j].Visits
		}
		return out[i].Part < out[j].Part
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Pair is an unordered object pair (A < B).
type Pair struct {
	A, B int32
}

// joinCheckEvery is how many candidate record pairs Join examines between
// context polls — comparisons are a few float compares each, so a coarse
// stride keeps the poll cost invisible while still bounding the latency of
// a cancellation to microseconds.
const joinCheckEvery = 4096

// Join returns the object pairs that were in the same partition with
// overlapping presence within [t1, t2), sorted.
func (l *Log) Join(t1, t2 float64) []Pair {
	out, _ := l.JoinCtx(context.Background(), t1, t2)
	return out
}

// JoinCtx is Join bounded by ctx: the O(n²) per-partition pair scan polls
// the context every joinCheckEvery candidate pairs, so a join over a large
// tracking log can be cancelled or deadline-bounded.
func (l *Log) JoinCtx(ctx context.Context, t1, t2 float64) ([]Pair, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	work := 0
	seen := make(map[Pair]bool)
	for _, idxs := range l.byPart {
		for i := 0; i < len(idxs); i++ {
			a := l.recs[idxs[i]]
			if !a.overlaps(t1, t2) {
				continue
			}
			for j := i + 1; j < len(idxs); j++ {
				if work++; work%joinCheckEvery == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				b := l.recs[idxs[j]]
				if a.Obj == b.Obj || !b.overlaps(t1, t2) {
					continue
				}
				// Their stays must overlap each other inside the window.
				lo := max3(a.In, b.In, t1)
				hi := min3(a.Out, b.Out, t2)
				if lo < hi {
					p := Pair{A: a.Obj, B: b.Obj}
					if p.A > p.B {
						p.A, p.B = p.B, p.A
					}
					seen[p] = true
				}
			}
		}
	}
	out := make([]Pair, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out, nil
}

// Dense returns the partitions whose peak simultaneous occupancy within
// [t1, t2) reaches minCount, sorted by descending peak.
func (l *Log) Dense(t1, t2 float64, minCount int) []Visit {
	var out []Visit
	for part, idxs := range l.byPart {
		// Sweep the entry/exit events clipped to the window.
		type ev struct {
			t     float64
			delta int
		}
		var evs []ev
		for _, i := range idxs {
			r := l.recs[i]
			if !r.overlaps(t1, t2) {
				continue
			}
			in, outT := r.In, r.Out
			if in < t1 {
				in = t1
			}
			if outT > t2 {
				outT = t2
			}
			evs = append(evs, ev{in, +1}, ev{outT, -1})
		}
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].t != evs[j].t {
				return evs[i].t < evs[j].t
			}
			return evs[i].delta < evs[j].delta // exits before entries at ties
		})
		cur, peak := 0, 0
		for _, e := range evs {
			cur += e.delta
			if cur > peak {
				peak = cur
			}
		}
		if peak >= minCount {
			out = append(out, Visit{Part: part, Visits: peak})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Visits != out[j].Visits {
			return out[i].Visits > out[j].Visits
		}
		return out[i].Part < out[j].Part
	})
	return out
}

// Flow returns the number of distinct objects present in partition v during
// [t1, t2).
func (l *Log) Flow(v indoor.PartitionID, t1, t2 float64) int {
	objs := make(map[int32]bool)
	for _, i := range l.byPart[v] {
		if r := l.recs[i]; r.overlaps(t1, t2) {
			objs[r.Obj] = true
		}
	}
	return len(objs)
}

func max3(a, b, c float64) float64 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

func min3(a, b, c float64) float64 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
