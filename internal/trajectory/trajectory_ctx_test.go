package trajectory_test

import (
	"context"
	"errors"
	"testing"
)

func TestJoinCtxCancelled(t *testing.T) {
	l := demoLog(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.JoinCtx(ctx, 0, 30); !errors.Is(err, context.Canceled) {
		t.Fatalf("JoinCtx(cancelled) = %v, want Canceled", err)
	}
}

func TestJoinCtxMatchesJoin(t *testing.T) {
	l := demoLog(t)
	want := l.Join(0, 30)
	got, err := l.JoinCtx(context.Background(), 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("JoinCtx = %v, Join = %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("JoinCtx[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
