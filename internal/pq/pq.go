// Package pq provides a small generic binary min-heap keyed by float64
// priorities. It replaces the per-package container/heap boilerplate in the
// query processors and avoids interface boxing on the hot paths.
package pq

// Heap is a min-heap of values with float64 priorities. The zero value is
// an empty heap ready for use.
type Heap[T any] struct {
	vs []T
	ps []float64
}

// Len returns the number of queued items.
func (h *Heap[T]) Len() int { return len(h.vs) }

// Reset empties the heap, retaining capacity.
func (h *Heap[T]) Reset() {
	h.vs = h.vs[:0]
	h.ps = h.ps[:0]
}

// Cap returns the heap's current capacity (for memory accounting).
func (h *Heap[T]) Cap() int { return cap(h.vs) }

// Push queues v with priority p.
func (h *Heap[T]) Push(v T, p float64) {
	h.vs = append(h.vs, v)
	h.ps = append(h.ps, p)
	i := len(h.vs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.ps[parent] <= h.ps[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// Pop removes and returns the item with the smallest priority.
// It must not be called on an empty heap.
func (h *Heap[T]) Pop() (T, float64) {
	v, p := h.vs[0], h.ps[0]
	last := len(h.vs) - 1
	h.vs[0], h.ps[0] = h.vs[last], h.ps[last]
	var zero T
	h.vs[last] = zero
	h.vs = h.vs[:last]
	h.ps = h.ps[:last]
	h.siftDown(0)
	return v, p
}

// Peek returns the smallest priority without removing its item.
// It must not be called on an empty heap.
func (h *Heap[T]) Peek() float64 { return h.ps[0] }

func (h *Heap[T]) siftDown(i int) {
	n := len(h.vs)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.ps[l] < h.ps[small] {
			small = l
		}
		if r < n && h.ps[r] < h.ps[small] {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}

func (h *Heap[T]) swap(i, j int) {
	h.vs[i], h.vs[j] = h.vs[j], h.vs[i]
	h.ps[i], h.ps[j] = h.ps[j], h.ps[i]
}
