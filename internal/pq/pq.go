// Package pq provides a small generic 4-ary min-heap keyed by float64
// priorities. It replaces the per-package container/heap boilerplate in the
// query processors and avoids interface boxing on the hot paths.
//
// The heap is 4-ary rather than binary: a sift-down touches half as many
// levels, and the four children of a node sit in one 32-byte span of the
// priority array, so the extra comparisons per level are served from a line
// that is already resident. On the Dijkstra frontiers that dominate this
// codebase (mostly-ascending pushes, frequent pops) the shallower tree wins;
// pq/bench_test.go keeps the 2-ary reference around and measures both.
package pq

// Heap is a min-heap of values with float64 priorities. The zero value is
// an empty heap ready for use.
type Heap[T any] struct {
	vs []T
	ps []float64
}

// Len returns the number of queued items.
func (h *Heap[T]) Len() int { return len(h.vs) }

// Reset empties the heap, retaining capacity.
func (h *Heap[T]) Reset() {
	h.vs = h.vs[:0]
	h.ps = h.ps[:0]
}

// Cap returns the heap's current capacity (for memory accounting).
func (h *Heap[T]) Cap() int { return cap(h.vs) }

// Grow ensures capacity for at least n queued items, resizing the value and
// priority arrays together in one step each. Sweeps that know their frontier
// bound (e.g. the door count) call it once up front instead of paying
// interleaved append growth on both arrays mid-sweep.
func (h *Heap[T]) Grow(n int) {
	if cap(h.vs) >= n {
		return
	}
	vs := make([]T, len(h.vs), n)
	copy(vs, h.vs)
	h.vs = vs
	ps := make([]float64, len(h.ps), n)
	copy(ps, h.ps)
	h.ps = ps
}

// Push queues v with priority p. The sift-up moves displaced parents down
// into the hole left by the new item and writes (v, p) once at its final
// slot, instead of swapping both arrays at every level.
func (h *Heap[T]) Push(v T, p float64) {
	h.vs = append(h.vs, v)
	h.ps = append(h.ps, p)
	i := len(h.vs) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		pp := h.ps[parent]
		if pp <= p {
			break
		}
		h.ps[i] = pp
		h.vs[i] = h.vs[parent]
		i = parent
	}
	h.ps[i] = p
	h.vs[i] = v
}

// Pop removes and returns the item with the smallest priority.
// It must not be called on an empty heap.
//
// The displaced last element sinks through a hole: each level moves only
// the smallest child up, and the element is stored once where it lands —
// half the memory traffic of a swap-based sift over the paired arrays.
func (h *Heap[T]) Pop() (T, float64) {
	v, p := h.vs[0], h.ps[0]
	last := len(h.vs) - 1
	lv, lp := h.vs[last], h.ps[last]
	var zero T
	h.vs[last] = zero
	h.vs = h.vs[:last]
	h.ps = h.ps[:last]
	if last > 0 {
		vs, ps := h.vs, h.ps
		i := 0
		for {
			first := (i << 2) + 1
			if first >= last {
				break
			}
			end := first + 4
			if end > last {
				end = last
			}
			small, sp := first, ps[first]
			for c := first + 1; c < end; c++ {
				if cp := ps[c]; cp < sp {
					small, sp = c, cp
				}
			}
			if lp <= sp {
				break
			}
			ps[i] = sp
			vs[i] = vs[small]
			i = small
		}
		ps[i] = lp
		vs[i] = lv
	}
	return v, p
}

// Peek returns the smallest priority without removing its item.
// It must not be called on an empty heap.
func (h *Heap[T]) Peek() float64 { return h.ps[0] }
