package pq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapOrdersByPriority(t *testing.T) {
	var h Heap[string]
	h.Push("c", 3)
	h.Push("a", 1)
	h.Push("b", 2)
	for _, want := range []string{"a", "b", "c"} {
		v, _ := h.Pop()
		if v != want {
			t.Fatalf("got %q, want %q", v, want)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestHeapMatchesSort(t *testing.T) {
	f := func(ps []float64) bool {
		var h Heap[int]
		for i, p := range ps {
			h.Push(i, p)
		}
		sorted := append([]float64(nil), ps...)
		sort.Float64s(sorted)
		for _, want := range sorted {
			_, p := h.Pop()
			if p != want {
				return false
			}
		}
		return h.Len() == 0
	}
	// Seeded explicitly so a property failure reproduces deterministically;
	// the seed is in the failure message for replay.
	const seed = 20260805
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(seed))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatalf("quick seed %d: %v", seed, err)
	}
}

func TestHeapPeekAndReset(t *testing.T) {
	var h Heap[int]
	h.Push(1, 5)
	h.Push(2, 3)
	if h.Peek() != 3 {
		t.Fatalf("Peek = %g", h.Peek())
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("Reset failed")
	}
	if h.Cap() == 0 {
		t.Fatal("Reset should keep capacity")
	}
}

func TestGrowKeepsContentsAndCapacity(t *testing.T) {
	var h Heap[int]
	h.Push(1, 5)
	h.Push(2, 3)
	h.Grow(1000)
	if h.Cap() < 1000 {
		t.Fatalf("Cap = %d after Grow(1000)", h.Cap())
	}
	if h.Len() != 2 || h.Peek() != 3 {
		t.Fatalf("Grow lost contents: len=%d peek=%g", h.Len(), h.Peek())
	}
	// Filling up to the grown capacity must not reallocate.
	before := h.Cap()
	for i := 0; i < 998; i++ {
		h.Push(i, float64(i))
	}
	if h.Cap() != before {
		t.Fatalf("push within grown capacity reallocated: %d -> %d", before, h.Cap())
	}
	// Shrinking requests are no-ops.
	h.Grow(1)
	if h.Cap() != before {
		t.Fatalf("Grow(1) changed capacity: %d -> %d", before, h.Cap())
	}
	want := -1.0
	for h.Len() > 0 {
		_, p := h.Pop()
		if p < want {
			t.Fatalf("order violated after Grow: %g after %g", p, want)
		}
		want = p
	}
}

// TestFourAryMatchesBinaryReference drains the exported 4-ary heap and the
// 2-ary reference (bench_test.go) side by side: the popped priority
// sequences must be identical on any input.
func TestFourAryMatchesBinaryReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		var a Heap[int]
		var b heap2[int]
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			p := float64(rng.Intn(20))
			a.Push(i, p)
			b.Push(i, p)
		}
		for a.Len() > 0 {
			_, pa := a.Pop()
			_, pb := b.Pop()
			if pa != pb {
				t.Fatalf("trial %d: 4-ary popped %g, 2-ary popped %g", trial, pa, pb)
			}
		}
		if b.Len() != 0 {
			t.Fatalf("trial %d: reference heap left with %d items", trial, b.Len())
		}
	}
}

func TestHeapDuplicatePriorities(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h Heap[int]
	for i := 0; i < 1000; i++ {
		h.Push(i, float64(rng.Intn(10)))
	}
	prev := -1.0
	for h.Len() > 0 {
		_, p := h.Pop()
		if p < prev {
			t.Fatalf("pop order violated: %g after %g", p, prev)
		}
		prev = p
	}
}
