package pq

import (
	"math/rand"
	"testing"
)

// heap2 is the pre-PR-6 binary (2-ary) heap, kept verbatim as the reference
// side of the arity benchmarks below. The exported Heap is 4-ary.
type heap2[T any] struct {
	vs []T
	ps []float64
}

func (h *heap2[T]) Len() int { return len(h.vs) }

func (h *heap2[T]) Push(v T, p float64) {
	h.vs = append(h.vs, v)
	h.ps = append(h.ps, p)
	i := len(h.vs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.ps[parent] <= h.ps[i] {
			break
		}
		h.vs[i], h.vs[parent] = h.vs[parent], h.vs[i]
		h.ps[i], h.ps[parent] = h.ps[parent], h.ps[i]
		i = parent
	}
}

func (h *heap2[T]) Pop() (T, float64) {
	v, p := h.vs[0], h.ps[0]
	last := len(h.vs) - 1
	h.vs[0], h.ps[0] = h.vs[last], h.ps[last]
	var zero T
	h.vs[last] = zero
	h.vs = h.vs[:last]
	h.ps = h.ps[:last]
	n := len(h.vs)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.ps[l] < h.ps[small] {
			small = l
		}
		if r < n && h.ps[r] < h.ps[small] {
			small = r
		}
		if small == i {
			break
		}
		h.vs[i], h.vs[small] = h.vs[small], h.vs[i]
		h.ps[i], h.ps[small] = h.ps[small], h.ps[i]
		i = small
	}
	return v, p
}

// benchPriorities is a shared deterministic workload: uniformly random
// priorities stress sift depth; Dijkstra frontiers look closer to
// mostly-ascending, covered by the drain benchmarks.
func benchPriorities(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	ps := make([]float64, n)
	for i := range ps {
		ps[i] = rng.Float64()
	}
	return ps
}

// BenchmarkPushPop4ary is the steady-state mixed workload on the exported
// 4-ary heap: push always, pop past a 512-entry floor.
func BenchmarkPushPop4ary(b *testing.B) {
	ps := benchPriorities(1024)
	var h Heap[int32]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(int32(i), ps[i%1024])
		if h.Len() > 512 {
			h.Pop()
		}
	}
}

// BenchmarkPushPop2ary is the same workload on the binary reference heap.
func BenchmarkPushPop2ary(b *testing.B) {
	ps := benchPriorities(1024)
	var h heap2[int32]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(int32(i), ps[i%1024])
		if h.Len() > 512 {
			h.Pop()
		}
	}
}

// BenchmarkFillDrain4ary fills a heap of the given size and drains it —
// the shape of one Dijkstra sweep's frontier life cycle.
func BenchmarkFillDrain4ary(b *testing.B) {
	const size = 4096
	ps := benchPriorities(size)
	var h Heap[int32]
	h.Grow(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < size; j++ {
			h.Push(int32(j), ps[j])
		}
		for h.Len() > 0 {
			h.Pop()
		}
	}
}

// BenchmarkFillDrain2ary is the fill/drain cycle on the binary reference.
func BenchmarkFillDrain2ary(b *testing.B) {
	const size = 4096
	ps := benchPriorities(size)
	var h heap2[int32]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < size; j++ {
			h.Push(int32(j), ps[j])
		}
		for h.Len() > 0 {
			h.Pop()
		}
	}
}

// BenchmarkGrowThenFill measures the preallocated fill against
// BenchmarkAppendFill's interleaved growth of vs and ps.
func BenchmarkGrowThenFill(b *testing.B) {
	const size = 4096
	ps := benchPriorities(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var h Heap[int32]
		h.Grow(size)
		for j := 0; j < size; j++ {
			h.Push(int32(j), ps[j])
		}
	}
}

// BenchmarkAppendFill fills a zero-value heap, paying append growth on both
// arrays as the frontier expands.
func BenchmarkAppendFill(b *testing.B) {
	const size = 4096
	ps := benchPriorities(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var h Heap[int32]
		for j := 0; j < size; j++ {
			h.Push(int32(j), ps[j])
		}
	}
}
