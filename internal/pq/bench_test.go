package pq

import (
	"math/rand"
	"testing"
)

func BenchmarkPushPop(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ps := make([]float64, 1024)
	for i := range ps {
		ps[i] = rng.Float64()
	}
	var h Heap[int32]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(int32(i), ps[i%1024])
		if h.Len() > 512 {
			h.Pop()
		}
	}
}
