package pq

// Indexed is a 4-ary min-heap of int32 keys with float64 priorities that
// tracks each key's heap slot in an external position index. Knowing the
// slot enables decrease-key: a relaxation that improves a queued key sifts
// it up in place instead of pushing a duplicate, so the heap never exceeds
// the frontier size and no stale entries are ever popped. On Dijkstra
// frontiers over graphs with dense rows (the hall-partition cliques of a
// door graph) this removes the bulk of the sift work the lazy-deletion
// discipline pays.
//
// Keys must be in [0, n) for the n passed to Grow. The zero value is an
// empty heap; call Grow before the first Push. Like Heap, every sift moves
// the displaced element through a hole and stores it once at its final
// slot.
type Indexed struct {
	vs  []int32
	ps  []float64
	pos []int32 // pos[key] = slot in vs/ps, -1 when not queued
}

// Len returns the number of queued keys.
func (h *Indexed) Len() int { return len(h.vs) }

// Cap returns the heap's current key-space size (for memory accounting).
func (h *Indexed) Cap() int { return len(h.pos) }

// Grow ensures the heap accepts keys in [0, n), resizing the slot arrays
// and the position index together. It must be called while the heap is
// empty.
func (h *Indexed) Grow(n int) {
	if len(h.pos) >= n {
		return
	}
	if cap(h.vs) < n {
		h.vs = make([]int32, 0, n)
		h.ps = make([]float64, 0, n)
	}
	h.pos = make([]int32, n)
	for i := range h.pos {
		h.pos[i] = -1
	}
}

// Reset empties the heap, clearing the position of any key still queued
// (an early-exited sweep leaves its frontier behind) and retaining all
// capacity.
func (h *Indexed) Reset() {
	for _, k := range h.vs {
		h.pos[k] = -1
	}
	h.vs = h.vs[:0]
	h.ps = h.ps[:0]
}

// Contains reports whether key k is currently queued.
func (h *Indexed) Contains(k int32) bool { return h.pos[k] >= 0 }

// Push queues key k with priority p. k must not already be queued.
func (h *Indexed) Push(k int32, p float64) {
	h.vs = append(h.vs, k)
	h.ps = append(h.ps, p)
	h.siftUp(len(h.vs)-1, k, p)
}

// Decrease lowers queued key k's priority to p. k must be queued and p
// must not exceed its current priority.
func (h *Indexed) Decrease(k int32, p float64) {
	h.siftUp(int(h.pos[k]), k, p)
}

func (h *Indexed) siftUp(i int, k int32, p float64) {
	for i > 0 {
		parent := (i - 1) >> 2
		pp := h.ps[parent]
		if pp <= p {
			break
		}
		pk := h.vs[parent]
		h.ps[i] = pp
		h.vs[i] = pk
		h.pos[pk] = int32(i)
		i = parent
	}
	h.ps[i] = p
	h.vs[i] = k
	h.pos[k] = int32(i)
}

// Pop removes and returns the key with the smallest priority. It must not
// be called on an empty heap.
func (h *Indexed) Pop() (int32, float64) {
	k, p := h.vs[0], h.ps[0]
	h.pos[k] = -1
	last := len(h.vs) - 1
	lk, lp := h.vs[last], h.ps[last]
	h.vs = h.vs[:last]
	h.ps = h.ps[:last]
	if last > 0 {
		vs, ps := h.vs, h.ps
		i := 0
		for {
			first := (i << 2) + 1
			if first >= last {
				break
			}
			end := first + 4
			if end > last {
				end = last
			}
			small, sp := first, ps[first]
			for c := first + 1; c < end; c++ {
				if cp := ps[c]; cp < sp {
					small, sp = c, cp
				}
			}
			if lp <= sp {
				break
			}
			sk := vs[small]
			ps[i] = sp
			vs[i] = sk
			h.pos[sk] = int32(i)
			i = small
		}
		ps[i] = lp
		vs[i] = lk
		h.pos[lk] = int32(i)
	}
	return k, p
}

// Peek returns the smallest priority without removing its key. It must not
// be called on an empty heap.
func (h *Indexed) Peek() float64 { return h.ps[0] }
