package iptree_test

import (
	"math"
	"testing"

	"indoorsq/internal/doorgraph"
	"indoorsq/internal/enginetest"
	"indoorsq/internal/indoor"
	"indoorsq/internal/iptree"
	"indoorsq/internal/query"
	"indoorsq/internal/testspaces"
)

func TestConformanceIPDefault(t *testing.T) {
	enginetest.Run(t, func(sp *indoor.Space) query.Engine {
		return iptree.New(sp, iptree.Options{})
	})
}

func TestConformanceIPDeepTree(t *testing.T) {
	// Tiny leaves and fan-out force multi-level trees even on the small
	// fixtures, exercising the lifting machinery.
	enginetest.Run(t, func(sp *indoor.Space) query.Engine {
		return iptree.New(sp, iptree.Options{LeafSize: 2, Fanout: 2, Gamma: 3})
	})
}

func TestConformanceVIPDefault(t *testing.T) {
	enginetest.Run(t, func(sp *indoor.Space) query.Engine {
		return iptree.New(sp, iptree.Options{VIP: true})
	})
}

func TestConformanceVIPDeepTree(t *testing.T) {
	enginetest.Run(t, func(sp *indoor.Space) query.Engine {
		return iptree.New(sp, iptree.Options{VIP: true, LeafSize: 2, Fanout: 2, Gamma: 3})
	})
}

func TestStructure(t *testing.T) {
	sp := testspaces.RandomGrid(17, 5, 6, 2, 8, 0.1)
	tr := iptree.New(sp, iptree.Options{LeafSize: 4, Fanout: 3, Gamma: 4})
	if tr.NumLeaves() < 2 {
		t.Fatalf("expected multiple leaves, got %d", tr.NumLeaves())
	}
	if tr.Depth() < 2 {
		t.Fatalf("expected depth >= 2, got %d", tr.Depth())
	}
}

func TestVIPFasterPrecomputedSize(t *testing.T) {
	sp := testspaces.RandomGrid(23, 5, 6, 2, 8, 0)
	ip := iptree.New(sp, iptree.Options{LeafSize: 4, Fanout: 3})
	vip := iptree.New(sp, iptree.Options{LeafSize: 4, Fanout: 3, VIP: true})
	if vip.SizeBytes() <= ip.SizeBytes() {
		t.Fatalf("VIP size %d should exceed IP size %d (extra materialization)",
			vip.SizeBytes(), ip.SizeBytes())
	}
}

// TestSPDMatchesDoorGraph compares IP/VIP SPD answers against plain global
// Dijkstra door-to-door distances on randomized grids.
func TestSPDMatchesDoorGraph(t *testing.T) {
	for _, vip := range []bool{false, true} {
		for seed := int64(0); seed < 3; seed++ {
			sp := testspaces.RandomGrid(seed, 4, 5, 2, 6, 0.25)
			tr := iptree.New(sp, iptree.Options{LeafSize: 3, Fanout: 2, Gamma: 3, VIP: vip})
			tr.SetObjects(nil)
			dg := doorgraph.Build(sp)
			var st query.Stats
			for d1 := 0; d1 < sp.NumDoors(); d1 += 3 {
				dist, _ := dg.Dijkstra(int32(d1), false)
				for d2 := 1; d2 < sp.NumDoors(); d2 += 4 {
					p := sp.DoorPoint(indoor.DoorID(d1))
					q := sp.DoorPoint(indoor.DoorID(d2))
					path, err := tr.SPD(p, q, &st)
					if err != nil {
						if math.IsInf(dist[d2], 1) {
							continue
						}
						// Door points host in adjacent partitions; the SPD
						// may still be feasible only via a different route.
						continue
					}
					// The point-to-point SPD can be shorter than the pure
					// door-to-door distance (the door graph forces passing
					// through partitions), but never longer.
					if path.Dist > dist[d2]+1e-9 {
						t.Fatalf("vip=%v seed=%d: SPD(%d->%d) = %g exceeds door graph %g",
							vip, seed, d1, d2, path.Dist, dist[d2])
					}
				}
			}
		}
	}
}

func TestNVDSmallerThanGraphTraversal(t *testing.T) {
	sp := testspaces.RandomGrid(5, 6, 6, 3, 10, 0)
	vip := iptree.New(sp, iptree.Options{VIP: true})
	vip.SetObjects(nil)
	var st query.Stats
	p := indoor.At(2, 2, 0)
	q := indoor.At(55, 55, 2)
	if _, err := vip.SPD(p, q, &st); err != nil {
		t.Fatal(err)
	}
	if st.VisitedDoors >= sp.NumDoors() {
		t.Fatalf("VIP NVD %d should be far below total doors %d", st.VisitedDoors, sp.NumDoors())
	}
}

func TestPathDoorsFormValidSequence(t *testing.T) {
	sp := testspaces.RandomGrid(9, 4, 4, 2, 5, 0)
	for _, vip := range []bool{false, true} {
		tr := iptree.New(sp, iptree.Options{LeafSize: 3, Fanout: 2, VIP: vip})
		tr.SetObjects(nil)
		var st query.Stats
		p := indoor.At(1, 1, 0)
		q := indoor.At(35, 35, 1)
		path, err := tr.SPD(p, q, &st)
		if err != nil {
			t.Fatal(err)
		}
		if len(path.Doors) == 0 {
			t.Fatal("cross-floor path must pass doors")
		}
		// Consecutive doors share a partition that the walker can traverse.
		hops := append([]indoor.DoorID{}, path.Doors...)
		for i := 0; i+1 < len(hops); i++ {
			if !shareTraversablePartition(sp, hops[i], hops[i+1]) {
				t.Fatalf("vip=%v: doors %d and %d not connected via a partition", vip, hops[i], hops[i+1])
			}
		}
		// Path length sanity: at least the Euclidean lower bound.
		if path.Dist < sp.EuclideanLB(p, q)-1e-9 {
			t.Fatalf("path dist %g below Euclidean bound", path.Dist)
		}
	}
}

func shareTraversablePartition(sp *indoor.Space, d1, d2 indoor.DoorID) bool {
	for _, v := range sp.Door(d1).Enterable {
		for _, u := range sp.Door(d2).Leaveable {
			if v == u {
				return true
			}
		}
	}
	return false
}
