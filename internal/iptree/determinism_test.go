package iptree

import (
	"reflect"
	"testing"

	"indoorsq/internal/testspaces"
)

// TestParallelBuildDeterministic asserts parallel construction fills every
// node matrix, the VIP materialization, and the routing tables identically
// to a sequential (one-worker) build.
func TestParallelBuildDeterministic(t *testing.T) {
	sp := testspaces.RandomGrid(9, 4, 5, 2, 7, 0.25)
	for _, vip := range []bool{false, true} {
		opt := Options{LeafSize: 3, Fanout: 2, Gamma: 4, VIP: vip}
		optSeq := opt
		optSeq.Workers = 1
		seq := New(sp, optSeq)
		for _, w := range []int{2, 4, 8} {
			optPar := opt
			optPar.Workers = w
			par := New(sp, optPar)
			if len(seq.nodes) != len(par.nodes) {
				t.Fatalf("vip=%v workers=%d: node count %d != %d", vip, w, len(par.nodes), len(seq.nodes))
			}
			for i := range seq.nodes {
				a, b := &seq.nodes[i], &par.nodes[i]
				if !reflect.DeepEqual(a.md2a, b.md2a) || !reflect.DeepEqual(a.ma2d, b.ma2d) {
					t.Fatalf("vip=%v workers=%d: leaf matrices differ at node %d", vip, w, i)
				}
				if !reflect.DeepEqual(a.m, b.m) {
					t.Fatalf("vip=%v workers=%d: non-leaf matrix differs at node %d", vip, w, i)
				}
				if !reflect.DeepEqual(a.vipD2A, b.vipD2A) || !reflect.DeepEqual(a.vipA2D, b.vipA2D) {
					t.Fatalf("vip=%v workers=%d: VIP matrices differ at node %d", vip, w, i)
				}
			}
			if len(seq.routes) != len(par.routes) {
				t.Fatalf("vip=%v workers=%d: route count differs", vip, w)
			}
			for d, ra := range seq.routes {
				rb, ok := par.routes[d]
				if !ok || !reflect.DeepEqual(ra.next, rb.next) || !reflect.DeepEqual(ra.prev, rb.prev) {
					t.Fatalf("vip=%v workers=%d: routes differ at door %d", vip, w, d)
				}
			}
		}
	}
}
