package iptree

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"indoorsq/internal/spacegen"
	"indoorsq/internal/testspaces"
)

// TestParallelBuildDeterministic asserts parallel construction fills every
// node matrix, the VIP materialization, and the routing tables identically
// to a sequential (one-worker) build.
func TestParallelBuildDeterministic(t *testing.T) {
	sp := testspaces.RandomGrid(9, 4, 5, 2, 7, 0.25)
	for _, vip := range []bool{false, true} {
		opt := Options{LeafSize: 3, Fanout: 2, Gamma: 4, VIP: vip}
		optSeq := opt
		optSeq.Workers = 1
		seq := New(sp, optSeq)
		for _, w := range []int{2, 4, 8} {
			optPar := opt
			optPar.Workers = w
			par := New(sp, optPar)
			if len(seq.nodes) != len(par.nodes) {
				t.Fatalf("vip=%v workers=%d: node count %d != %d", vip, w, len(par.nodes), len(seq.nodes))
			}
			for i := range seq.nodes {
				a, b := &seq.nodes[i], &par.nodes[i]
				if !reflect.DeepEqual(a.md2a, b.md2a) || !reflect.DeepEqual(a.ma2d, b.ma2d) {
					t.Fatalf("vip=%v workers=%d: leaf matrices differ at node %d", vip, w, i)
				}
				if !reflect.DeepEqual(a.m, b.m) {
					t.Fatalf("vip=%v workers=%d: non-leaf matrix differs at node %d", vip, w, i)
				}
				if !reflect.DeepEqual(a.vipD2A, b.vipD2A) || !reflect.DeepEqual(a.vipA2D, b.vipA2D) {
					t.Fatalf("vip=%v workers=%d: VIP matrices differ at node %d", vip, w, i)
				}
			}
			if len(seq.routes) != len(par.routes) {
				t.Fatalf("vip=%v workers=%d: route count differs", vip, w)
			}
			for d, ra := range seq.routes {
				rb, ok := par.routes[d]
				if !ok || !reflect.DeepEqual(ra.next, rb.next) || !reflect.DeepEqual(ra.prev, rb.prev) {
					t.Fatalf("vip=%v workers=%d: routes differ at door %d", vip, w, d)
				}
			}
		}
	}
}

// eqBits reports whether two float64 slices are Float64bits-identical,
// element for element.
func eqBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestParallelBuildDeterministicSpacegen repeats the VIP-tree matrix
// identity check over generated venues from the same corpus family the
// differential harness sweeps, comparing every leaf, non-leaf, and VIP
// materialization matrix at the Float64bits level across worker counts.
func TestParallelBuildDeterministicSpacegen(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := spacegen.Params{
			Floors:     1 + rng.Intn(3),
			Rows:       1 + rng.Intn(3),
			Cols:       2 + rng.Intn(3),
			Hall:       spacegen.HallKind(rng.Intn(3)),
			ExtraDoors: rng.Intn(6),
			OneWayFrac: float64(rng.Intn(3)) / 2,
			Imbalance:  rng.Float64(),
			Decompose:  rng.Intn(2) == 1,
		}.Normalize()
		sp, err := spacegen.Generate(seed, p)
		if err != nil {
			t.Fatalf("seed=%d: generate: %v", seed, err)
		}
		opt := Options{LeafSize: 3, Fanout: 2, Gamma: 4, VIP: true, Workers: 1}
		seq := New(sp, opt)
		for _, w := range []int{3, 8} {
			optPar := opt
			optPar.Workers = w
			par := New(sp, optPar)
			if len(seq.nodes) != len(par.nodes) {
				t.Fatalf("seed=%d workers=%d: node count %d != %d", seed, w, len(par.nodes), len(seq.nodes))
			}
			for i := range seq.nodes {
				a, b := &seq.nodes[i], &par.nodes[i]
				if !eqBits(a.md2a, b.md2a) || !eqBits(a.ma2d, b.ma2d) || !eqBits(a.m, b.m) {
					t.Fatalf("seed=%d workers=%d: matrices differ at node %d", seed, w, i)
				}
				if len(a.vipD2A) != len(b.vipD2A) || len(a.vipA2D) != len(b.vipA2D) {
					t.Fatalf("seed=%d workers=%d: VIP level count differs at node %d", seed, w, i)
				}
				for li := range a.vipD2A {
					if !eqBits(a.vipD2A[li], b.vipD2A[li]) || !eqBits(a.vipA2D[li], b.vipA2D[li]) {
						t.Fatalf("seed=%d workers=%d: VIP matrices differ at node %d level %d", seed, w, i, li)
					}
				}
			}
			for d, ra := range seq.routes {
				rb, ok := par.routes[d]
				if !ok || !reflect.DeepEqual(ra.next, rb.next) || !reflect.DeepEqual(ra.prev, rb.prev) {
					t.Fatalf("seed=%d workers=%d: routes differ at door %d", seed, w, d)
				}
			}
		}
	}
}
