package iptree

import (
	"math"
	"sort"

	"indoorsq/internal/indoor"
	"indoorsq/internal/obs"
	"indoorsq/internal/pq"
	"indoorsq/internal/query"
	"indoorsq/internal/reach"
)

// dvec is a distance-only access-door vector.
type dvec []float64

func infDvec(n int) dvec {
	v := make(dvec, n)
	for i := range v {
		v[i] = math.Inf(1)
	}
	return v
}

func (v dvec) min() float64 {
	m := math.Inf(1)
	for _, x := range v {
		if x < m {
			m = x
		}
	}
	return m
}

// nodeCand is a best-first traversal entry: a node with the p-vector over
// its access doors.
type nodeCand struct {
	id  int32
	vec dvec
}

// leafDoorDists runs the within-leaf Dijkstra from p and returns the
// distance from p to each door of the leaf along paths that stay inside.
func (t *Tree) leafDoorDists(L int32, vp indoor.PartitionID, p indoor.Point, st *query.Stats) dvec {
	leaf := &t.nodes[L]
	n := len(leaf.doors)
	dist := infDvec(n)
	done := make([]bool, n)
	for _, d := range t.sp.Partition(vp).Leave {
		if i, ok := leaf.doorIdx[d]; ok {
			if w := t.sp.WithinPointDoor(vp, p, d); w < dist[i] {
				dist[i] = w
			}
		}
	}
	for {
		u, bu := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < bu {
				u, bu = i, dist[i]
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		st.Door()
		if st.Interrupted() != nil {
			break // the caller surfaces the cause; the partial vector is dead
		}
		du := leaf.doors[u]
		for _, v := range t.sp.Door(du).Enterable {
			if t.partLeaf[v] != L {
				continue
			}
			for _, nd := range t.sp.Partition(v).Leave {
				i, ok := leaf.doorIdx[nd]
				if !ok || done[i] {
					continue
				}
				w, hit := t.sp.WithinDoorsCached(v, du, nd)
				st.Cache(hit)
				if cand := bu + w; cand < dist[i] {
					dist[i] = cand
				}
			}
		}
	}
	st.Alloc(int64(n) * 9)
	return dist
}

// homeLeafDoorDists combines the within-leaf Dijkstra with the out-and-back
// access-door routes to yield exact p-to-door distances for p's own leaf.
func (t *Tree) homeLeafDoorDists(L int32, vp indoor.PartitionID, p indoor.Point, pvec dvec, st *query.Stats) dvec {
	leaf := &t.nodes[L]
	pd := t.leafDoorDists(L, vp, p, st)
	na := len(leaf.ad)
	for di := range leaf.doors {
		for ai := 0; ai < na; ai++ {
			if cand := pvec[ai] + leaf.ma2d[ai*len(leaf.doors)+di]; cand < pd[di] {
				pd[di] = cand
			}
		}
	}
	return pd
}

// pDvecLeaf is the distance-only leaf vector.
func (t *Tree) pDvecLeaf(L int32, vp indoor.PartitionID, p indoor.Point, st *query.Stats) dvec {
	leaf := &t.nodes[L]
	vec := infDvec(len(leaf.ad))
	for _, d := range t.sp.Partition(vp).Leave {
		w := t.sp.WithinPointDoor(vp, p, d)
		st.Door()
		for i, a := range leaf.ad {
			if cand := w + leaf.leafD2A(d, a); cand < vec[i] {
				vec[i] = cand
			}
		}
	}
	return vec
}

// liftDvec lifts a distance vector from node cur onto target access doors
// through the parent matrix m of node `via`.
func (t *Tree) liftDvec(vec dvec, cur *node, via *node, targetAD []indoor.DoorID, st *query.Stats) dvec {
	out := infDvec(len(targetAD))
	for j, a2 := range targetAD {
		st.Door()
		for i, a1 := range cur.ad {
			if math.IsInf(vec[i], 1) {
				continue
			}
			if cand := vec[i] + via.mAt(a1, a2); cand < out[j] {
				out[j] = cand
			}
		}
	}
	return out
}

// scanLeafObjects qualifies the objects of leaf L given pd, the exact
// distance from p to every leaf door, offering each to emit. directPart, if
// valid, is p's host partition, whose objects also have the direct
// intra-partition distance.
func (t *Tree) scanLeafObjects(L int32, pd dvec, directPart indoor.PartitionID, p indoor.Point, limit func() float64, emit func(id int32, dist float64)) {
	leaf := &t.nodes[L]
	for _, v := range leaf.parts {
		bucket := t.store.Bucket(v)
		if len(bucket) == 0 {
			continue
		}
		best := make(dvec, len(bucket))
		if v == directPart {
			c := t.sp.Ref(v, p)
			for bi, oi := range bucket {
				best[bi] = t.sp.RefDist(c, t.store.Ref(oi))
			}
		} else {
			for i := range best {
				best[i] = math.Inf(1)
			}
		}
		lim := limit()
		for _, dq := range t.sp.Partition(v).Enter {
			i, ok := leaf.doorIdx[dq]
			if !ok || math.IsInf(pd[i], 1) {
				continue
			}
			// Doors already farther than the pruning limit cannot yield a
			// qualifying object (object dist >= door dist).
			if pd[i] > lim {
				continue
			}
			for bi, oi := range bucket {
				if cand := pd[i] + t.store.DistToDoor(t.sp, oi, dq); cand < best[bi] {
					best[bi] = cand
				}
			}
		}
		for bi, oi := range bucket {
			if !math.IsInf(best[bi], 1) {
				emit(t.store.At(oi).ID, best[bi])
			}
		}
	}
}

// forEachLeafByBound drives the object search shared by Range and KNN:
// it visits leaves in (roughly) increasing lower-bound order, calling
// scanLeafObjects for every leaf whose bound does not exceed limit() at the
// time it is considered. IP-TREE uses best-first tree traversal with
// on-the-fly access-door vector computation; VIP-TREE computes leaf bounds
// directly from its materialized ancestor matrices.
func (t *Tree) forEachLeafByBound(p indoor.Point, st *query.Stats, limit func() float64, emit func(id int32, dist float64)) error {
	endHost := st.Span(obs.StageHost)
	vp, ok := t.sp.HostPartition(p)
	if !ok {
		endHost()
		return query.ErrNoHost
	}
	Lp := t.leafOf(vp)
	endHost()

	// p's own leaf first: exact door distances via Dijkstra + out-and-back.
	endExpand := st.Span(obs.StageExpand)
	pvec := t.pDvecLeaf(Lp, vp, p, st)
	pd := t.homeLeafDoorDists(Lp, vp, p, pvec, st)
	endExpand()
	t.scanLeafObjects(Lp, pd, vp, p, limit, emit)
	st.Alloc(int64(len(pd)) * 8)
	if err := st.Interrupted(); err != nil {
		return err
	}

	// The remaining leaves are reached through precomputed ancestor
	// matrices: an index probe, no Dijkstra.
	endProbe := st.Span(obs.StageProbe)
	defer endProbe()

	// Reachability seed set for subtree skipping (multi-SCC venues only):
	// a leaf none of whose partitions is reachable from p's leaveable
	// doors can only ever produce +Inf object distances.
	var from reach.From
	usePrune := false
	if rc := t.reach; rc != nil && rc.NumSCCs() > 1 {
		from = rc.FromDoors(t.sp.Partition(vp).Leave, nil)
		usePrune = true
	}
	if t.opt.VIP {
		return t.vipLeafSweep(Lp, vp, p, pvec, from, usePrune, st, limit, emit)
	}
	var hits, skips int64
	if usePrune {
		defer func() {
			reach.Metrics.PruneHits.Add(hits)
			reach.Metrics.PruneSkips.Add(skips)
		}()
	}

	// IP-TREE: best-first descent from the siblings of the path to the root.
	var h pq.Heap[nodeCand]
	cur := Lp
	vec := pvec
	for cur != t.root {
		parID := t.nodes[cur].parent
		par := &t.nodes[parID]
		for _, sib := range par.children {
			if sib == cur {
				continue
			}
			svec := t.liftDvec(vec, &t.nodes[cur], par, t.nodes[sib].ad, st)
			// An all-+Inf vector means no door of the sibling subtree is
			// reachable: descending could only generate more +Inf vectors
			// and no emissions, so the subtree is dropped outright.
			if b := svec.min(); !math.IsInf(b, 1) {
				h.Push(nodeCand{id: sib, vec: svec}, b)
			}
		}
		vec = t.liftDvec(vec, &t.nodes[cur], par, par.ad, st)
		cur = parID
	}
	for h.Len() > 0 {
		c, bound := h.Pop()
		if bound > limit() {
			break
		}
		if err := st.Interrupted(); err != nil {
			return err
		}
		n := &t.nodes[c.id]
		if n.leaf {
			if usePrune && !from.AnyPart(n.parts) {
				hits++
				continue
			}
			if usePrune {
				skips++
			}
			// Exact distance to every leaf door through the access doors.
			pd := infDvec(len(n.doors))
			na := len(n.ad)
			for di := range n.doors {
				for ai := 0; ai < na; ai++ {
					if cand := c.vec[ai] + n.ma2d[ai*len(n.doors)+di]; cand < pd[di] {
						pd[di] = cand
					}
				}
			}
			t.scanLeafObjects(c.id, pd, indoor.NoPartition, p, limit, emit)
			continue
		}
		for _, ch := range n.children {
			cvec := t.liftDvec(c.vec, n, n, t.nodes[ch].ad, st)
			if b := cvec.min(); !math.IsInf(b, 1) {
				h.Push(nodeCand{id: ch, vec: cvec}, b)
			}
		}
	}
	st.Alloc(int64(h.Cap()) * 32)
	return nil
}

// vipLeafSweep visits every other leaf ordered by a lower bound computed
// from the VIP materialization: p-side vectors are read straight from p's
// leaf matrices, lifted once through the LCA, and landed on the target
// leaf's ancestor matrices.
func (t *Tree) vipLeafSweep(Lp int32, vp indoor.PartitionID, p indoor.Point, pvecLeaf dvec, from reach.From, usePrune bool, st *query.Stats, limit func() float64, emit func(id int32, dist float64)) error {
	var hits, skips int64
	if usePrune {
		defer func() {
			reach.Metrics.PruneHits.Add(hits)
			reach.Metrics.PruneSkips.Add(skips)
		}()
	}
	// p-side vectors for every node on the path Lp -> root.
	path := []int32{Lp}
	for id := Lp; t.nodes[id].parent >= 0; {
		id = t.nodes[id].parent
		path = append(path, id)
	}
	pvecs := make([]dvec, len(path))
	pvecs[0] = pvecLeaf
	leaf := &t.nodes[Lp]
	for li := 1; li < len(path); li++ {
		anc := &t.nodes[path[li]]
		vec := infDvec(len(anc.ad))
		na := len(anc.ad)
		for _, d := range t.sp.Partition(vp).Leave {
			w := t.sp.WithinPointDoor(vp, p, d)
			di := leaf.doorIdx[d]
			for i := range anc.ad {
				if cand := w + leaf.vipD2A[li-1][int(di)*na+i]; cand < vec[i] {
					vec[i] = cand
				}
			}
		}
		pvecs[li] = vec
		st.Alloc(int64(na) * 8)
	}
	depthIdx := make(map[int32]int, len(path)) // node id -> index in path
	for i, id := range path {
		depthIdx[id] = i
	}

	// First pass: a cheap lower bound per leaf (distance to the leaf's
	// enclosing child-of-LCA access doors), so far-away leaves never pay
	// for full door vectors.
	type leafCand struct {
		id    int32
		cL    int32
		bound float64
		dv    dvec
	}
	var cands []leafCand
	for i := range t.nodes {
		n := &t.nodes[i]
		if !n.leaf || n.id == Lp {
			continue
		}
		if usePrune && !from.AnyPart(n.parts) {
			hits++
			continue
		}
		if usePrune {
			skips++
		}
		lcaID, cp, cL := t.lca(Lp, n.id)
		lcaNode := &t.nodes[lcaID]
		// p-side vector at cp (a path node), lifted once through the LCA
		// matrix onto AD(cL).
		pv := pvecs[depthIdx[cp]]
		cpAD := t.nodes[cp].ad
		cLAD := t.nodes[cL].ad
		dv := infDvec(len(cLAD))
		for j, b := range cLAD {
			st.Door()
			for i2, a := range cpAD {
				if math.IsInf(pv[i2], 1) {
					continue
				}
				if cand := pv[i2] + lcaNode.mAt(a, b); cand < dv[j] {
					dv[j] = cand
				}
			}
		}
		cands = append(cands, leafCand{id: n.id, cL: cL, bound: dv.min(), dv: dv})
		if err := st.Interrupted(); err != nil {
			return err
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].bound < cands[j].bound })
	st.Alloc(int64(len(cands)) * 40)

	// Second pass, in bound order: materialize the exact door vector from
	// the leaf's VIP ancestor matrices only while the bound qualifies.
	for _, c := range cands {
		// A +Inf bound means the leaf's access doors are unreachable, so
		// every object distance would be +Inf too; bounds are sorted, so
		// nothing after it can qualify either.
		if math.IsInf(c.bound, 1) || c.bound > limit() {
			break
		}
		if err := st.Interrupted(); err != nil {
			return err
		}
		n := &t.nodes[c.id]
		pd := infDvec(len(n.doors))
		if c.cL == c.id {
			na := len(n.ad)
			for di := range n.doors {
				for ai := 0; ai < na; ai++ {
					if cand := c.dv[ai] + n.ma2d[ai*len(n.doors)+di]; cand < pd[di] {
						pd[di] = cand
					}
				}
			}
		} else {
			lvl := t.ancestorLevel(c.id, c.cL)
			for di := range n.doors {
				for ai := range c.dv {
					if cand := c.dv[ai] + n.vipA2D[lvl][ai*len(n.doors)+di]; cand < pd[di] {
						pd[di] = cand
					}
				}
			}
		}
		t.scanLeafObjects(c.id, pd, indoor.NoPartition, p, limit, emit)
	}
	return nil
}

// Range implements query.Engine.
func (t *Tree) Range(p indoor.Point, r float64, st *query.Stats) ([]int32, error) {
	res := make(map[int32]struct{})
	err := t.forEachLeafByBound(p, st,
		func() float64 { return r },
		func(id int32, dist float64) {
			if dist <= r {
				res[id] = struct{}{}
			}
		})
	if err != nil {
		return nil, err
	}
	st.Alloc(int64(len(res)) * 8)
	endRefine := st.Span(obs.StageRefine)
	defer endRefine()
	out := make([]int32, 0, len(res))
	for id := range res {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// KNN implements query.Engine.
func (t *Tree) KNN(p indoor.Point, k int, st *query.Stats) ([]query.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	tk := query.NewTopK(k)
	err := t.forEachLeafByBound(p, st,
		tk.Bound,
		func(id int32, dist float64) { tk.Offer(id, dist) })
	if err != nil {
		return nil, err
	}
	st.Alloc(tk.SizeBytes())
	endRefine := st.Span(obs.StageRefine)
	defer endRefine()
	return tk.Results(), nil
}
