package iptree

import (
	"fmt"
	"sort"

	"indoorsq/internal/indoor"
	"indoorsq/internal/reach"
	"indoorsq/internal/snapshot"
)

// AppendTo writes the full materialization — tree shape, access-door sets,
// every node matrix, the VIP per-leaf ancestor matrices, and the
// path-reconstruction routing tables — under the given tag (TagIPTree or
// TagVIPTree; one snapshot can carry both trees side by side). Routing
// tables are emitted in ascending door order, mirroring the deterministic
// construction order.
func (t *Tree) AppendTo(w *snapshot.Writer, tag uint32) {
	sec := w.Begin(tag)
	sec.I64(int64(t.opt.Gamma))
	sec.I64(int64(t.opt.LeafSize))
	sec.I64(int64(t.opt.Fanout))
	sec.Bool(t.opt.VIP)
	sec.I64(int64(t.opt.Workers))
	sec.I64(int64(t.root))
	sec.I32s(t.partLeaf)
	sec.U64(uint64(len(t.nodes)))
	for i := range t.nodes {
		n := &t.nodes[i]
		sec.I64(int64(n.parent))
		sec.I64(int64(n.depth))
		sec.I32s(n.children)
		sec.I32s(doorsToI32(n.ad))
		sec.Bool(n.leaf)
		if n.leaf {
			sec.I32s(partsToI32(n.parts))
			sec.I32s(doorsToI32(n.doors))
			sec.F64s(n.md2a)
			sec.F64s(n.ma2d)
			sec.U64(uint64(len(n.vipD2A)))
			for li := range n.vipD2A {
				sec.F64s(n.vipD2A[li])
				sec.F64s(n.vipA2D[li])
			}
		} else {
			sec.I32s(doorsToI32(n.uad))
			sec.F64s(n.m)
		}
	}
	routeDoors := make([]indoor.DoorID, 0, len(t.routes))
	for d := range t.routes {
		routeDoors = append(routeDoors, d)
	}
	sort.Slice(routeDoors, func(i, j int) bool { return routeDoors[i] < routeDoors[j] })
	sec.U64(uint64(len(routeDoors)))
	for _, d := range routeDoors {
		r := t.routes[d]
		sec.I64(int64(d))
		sec.I32s(r.next)
		sec.I32s(r.prev)
	}
}

// LoadFrom reconstructs the engine from the given tag's section over an
// already-loaded space, adopting rch (typically the snapshot's FromGraph
// summary). This skips the expensive pass entirely — two Dijkstra sweeps per
// distinct access door; the matrices and routing tables may alias the
// snapshot buffer, and only the lookup maps are rebuilt.
func LoadFrom(r *snapshot.Reader, tag uint32, sp *indoor.Space, rch *reach.Reach) (*Tree, error) {
	sec, err := r.Section(tag)
	if err != nil {
		return nil, err
	}
	t := &Tree{sp: sp}
	t.opt.Gamma = int(sec.I64())
	t.opt.LeafSize = int(sec.I64())
	t.opt.Fanout = int(sec.I64())
	t.opt.VIP = sec.Bool()
	t.opt.Workers = int(sec.I64())
	t.root = int32(sec.I64())
	t.partLeaf = sec.I32s()
	numNodes := sec.Int()
	if err := sec.Err(); err != nil {
		return nil, err
	}
	if len(t.partLeaf) != sp.NumPartitions() {
		return nil, fmt.Errorf("iptree: snapshot partition map sized %d, want %d", len(t.partLeaf), sp.NumPartitions())
	}
	if numNodes <= 0 || int(t.root) >= numNodes {
		return nil, fmt.Errorf("iptree: snapshot has %d nodes, root %d", numNodes, t.root)
	}
	nd := sp.NumDoors()
	t.nodes = make([]node, numNodes)
	for i := range t.nodes {
		n := &t.nodes[i]
		n.id = int32(i)
		n.parent = int32(sec.I64())
		n.depth = int32(sec.I64())
		n.children = sec.I32s()
		n.ad = i32ToDoors(sec.I32s())
		n.leaf = sec.Bool()
		n.adIdx = make(map[indoor.DoorID]int32, len(n.ad))
		for j, a := range n.ad {
			n.adIdx[a] = int32(j)
		}
		if n.leaf {
			n.parts = i32ToParts(sec.I32s())
			n.doors = i32ToDoors(sec.I32s())
			n.md2a = sec.F64s()
			n.ma2d = sec.F64s()
			nvip := sec.Int()
			if sec.Err() != nil {
				break
			}
			if nvip < 0 || nvip > numNodes {
				return nil, fmt.Errorf("iptree: snapshot node %d has %d VIP levels", i, nvip)
			}
			if nvip > 0 {
				n.vipD2A = make([][]float64, nvip)
				n.vipA2D = make([][]float64, nvip)
				for li := 0; li < nvip; li++ {
					n.vipD2A[li] = sec.F64s()
					n.vipA2D[li] = sec.F64s()
				}
			}
			n.doorIdx = make(map[indoor.DoorID]int32, len(n.doors))
			for j, d := range n.doors {
				n.doorIdx[d] = int32(j)
			}
			if len(n.md2a) != len(n.doors)*len(n.ad) || len(n.ma2d) != len(n.md2a) {
				return nil, fmt.Errorf("iptree: snapshot leaf %d matrices sized %d/%d, want %d", i, len(n.md2a), len(n.ma2d), len(n.doors)*len(n.ad))
			}
		} else {
			n.uad = i32ToDoors(sec.I32s())
			n.m = sec.F64s()
			n.uadIdx = make(map[indoor.DoorID]int32, len(n.uad))
			for j, a := range n.uad {
				n.uadIdx[a] = int32(j)
			}
			if len(n.m) != len(n.uad)*len(n.uad) {
				return nil, fmt.Errorf("iptree: snapshot node %d matrix sized %d, want %d^2", i, len(n.m), len(n.uad))
			}
		}
	}
	numRoutes := sec.Int()
	if err := sec.Err(); err != nil {
		return nil, err
	}
	if numRoutes < 0 || numRoutes > nd {
		return nil, fmt.Errorf("iptree: snapshot has %d routes for %d doors", numRoutes, nd)
	}
	t.routes = make(map[indoor.DoorID]*route, numRoutes)
	for ri := 0; ri < numRoutes; ri++ {
		d := indoor.DoorID(sec.I64())
		rt := &route{next: sec.I32s(), prev: sec.I32s()}
		if sec.Err() != nil {
			break
		}
		if int(d) < 0 || int(d) >= nd || len(rt.next) != nd || len(rt.prev) != nd {
			return nil, fmt.Errorf("iptree: snapshot route %d corrupt", ri)
		}
		t.routes[d] = rt
	}
	if err := sec.Err(); err != nil {
		return nil, err
	}
	// Structural sanity over the loaded shape (cheap; matrices are guarded
	// by the section CRC and the sizes checked above).
	for i := range t.nodes {
		n := &t.nodes[i]
		if int(n.parent) >= numNodes || (n.parent < 0 && int32(i) != t.root) {
			return nil, fmt.Errorf("iptree: snapshot node %d has parent %d", i, n.parent)
		}
		for _, c := range n.children {
			if int(c) < 0 || int(c) >= numNodes {
				return nil, fmt.Errorf("iptree: snapshot node %d has child %d", i, c)
			}
		}
	}
	for _, l := range t.partLeaf {
		if int(l) < 0 || int(l) >= numNodes || !t.nodes[l].leaf {
			return nil, fmt.Errorf("iptree: snapshot maps a partition to non-leaf %d", l)
		}
	}
	t.reach = rch
	t.accountSize()
	return t, nil
}

func doorsToI32(v []indoor.DoorID) []int32 {
	out := make([]int32, len(v))
	for i, d := range v {
		out[i] = int32(d)
	}
	return out
}

func i32ToDoors(v []int32) []indoor.DoorID {
	out := make([]indoor.DoorID, len(v))
	for i, d := range v {
		out[i] = indoor.DoorID(d)
	}
	return out
}

func partsToI32(v []indoor.PartitionID) []int32 {
	out := make([]int32, len(v))
	for i, p := range v {
		out[i] = int32(p)
	}
	return out
}

func i32ToParts(v []int32) []indoor.PartitionID {
	out := make([]indoor.PartitionID, len(v))
	for i, p := range v {
		out[i] = indoor.PartitionID(p)
	}
	return out
}
