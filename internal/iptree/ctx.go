package iptree

import (
	"context"

	"indoorsq/internal/indoor"
	"indoorsq/internal/obs"
	"indoorsq/internal/query"
)

// RangeCtx implements query.EngineCtx: Range bounded by ctx and any
// attached query.Budget, observed by any attached obs binding (registry
// series + trace summary on completion). Cancellation rides the Stats
// accumulator into the leaf Dijkstras and the best-first leaf sweep, which
// probe it every query.CheckInterval door expansions.
func (t *Tree) RangeCtx(ctx context.Context, p indoor.Point, r float64, st *query.Stats) (ids []int32, err error) {
	st, done := query.Begin(ctx, t.Name(), obs.OpRange, st)
	if done != nil {
		defer func() { done(err) }()
	}
	if err = st.Interrupted(); err != nil {
		return nil, err
	}
	ids, err = t.Range(p, r, st)
	return ids, err
}

// KNNCtx implements query.EngineCtx.
func (t *Tree) KNNCtx(ctx context.Context, p indoor.Point, k int, st *query.Stats) (nn []query.Neighbor, err error) {
	st, done := query.Begin(ctx, t.Name(), obs.OpKNN, st)
	if done != nil {
		defer func() { done(err) }()
	}
	if err = st.Interrupted(); err != nil {
		return nil, err
	}
	nn, err = t.KNN(p, k, st)
	return nn, err
}

// SPDCtx implements query.EngineCtx.
func (t *Tree) SPDCtx(ctx context.Context, p, q indoor.Point, st *query.Stats) (path query.Path, err error) {
	st, done := query.Begin(ctx, t.Name(), obs.OpSPD, st)
	if done != nil {
		defer func() { done(err) }()
	}
	if err = st.Interrupted(); err != nil {
		return query.Path{}, err
	}
	path, err = t.SPD(p, q, st)
	return path, err
}
