package iptree

import (
	"context"

	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
)

// RangeCtx implements query.EngineCtx: Range bounded by ctx and any
// attached query.Budget. Cancellation rides the Stats accumulator into the
// leaf Dijkstras and the best-first leaf sweep, which probe it every
// query.CheckInterval door expansions.
func (t *Tree) RangeCtx(ctx context.Context, p indoor.Point, r float64, st *query.Stats) ([]int32, error) {
	st = query.Track(ctx, st)
	if err := st.Interrupted(); err != nil {
		return nil, err
	}
	return t.Range(p, r, st)
}

// KNNCtx implements query.EngineCtx.
func (t *Tree) KNNCtx(ctx context.Context, p indoor.Point, k int, st *query.Stats) ([]query.Neighbor, error) {
	st = query.Track(ctx, st)
	if err := st.Interrupted(); err != nil {
		return nil, err
	}
	return t.KNN(p, k, st)
}

// SPDCtx implements query.EngineCtx.
func (t *Tree) SPDCtx(ctx context.Context, p, q indoor.Point, st *query.Stats) (query.Path, error) {
	st = query.Track(ctx, st)
	if err := st.Interrupted(); err != nil {
		return query.Path{}, err
	}
	return t.SPD(p, q, st)
}
