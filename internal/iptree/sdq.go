package iptree

import (
	"math"

	"indoorsq/internal/indoor"
	"indoorsq/internal/obs"
	"indoorsq/internal/query"
	"indoorsq/internal/reach"
)

// ventry is a vector entry used during access-door lifting: the distance
// plus the chain of doors chosen so far (provenance for path
// reconstruction). Chains on the p-side run source -> access door; on the
// q-side access door -> target.
type ventry struct {
	dist  float64
	chain []indoor.DoorID
}

func infVec(n int) []ventry {
	v := make([]ventry, n)
	for i := range v {
		v[i].dist = math.Inf(1)
	}
	return v
}

func extend(chain []indoor.DoorID, d indoor.DoorID) []indoor.DoorID {
	out := make([]indoor.DoorID, len(chain)+1)
	copy(out, chain)
	out[len(chain)] = d
	return out
}

func prepend(d indoor.DoorID, chain []indoor.DoorID) []indoor.DoorID {
	out := make([]indoor.DoorID, len(chain)+1)
	out[0] = d
	copy(out[1:], chain)
	return out
}

// pVecLeaf computes the p-side vector over the access doors of p's leaf.
func (t *Tree) pVecLeaf(L *node, vp indoor.PartitionID, p indoor.Point, st *query.Stats) []ventry {
	vec := infVec(len(L.ad))
	for _, d := range t.sp.Partition(vp).Leave {
		w := t.sp.WithinPointDoor(vp, p, d)
		st.Door()
		for i, a := range L.ad {
			if cand := w + L.leafD2A(d, a); cand < vec[i].dist {
				if d == a {
					vec[i] = ventry{cand, []indoor.DoorID{a}}
				} else {
					vec[i] = ventry{cand, []indoor.DoorID{d, a}}
				}
			}
		}
	}
	return vec
}

// qVecLeaf computes the q-side vector (distance from each access door of
// q's leaf to q).
func (t *Tree) qVecLeaf(L *node, vq indoor.PartitionID, q indoor.Point, st *query.Stats) []ventry {
	vec := infVec(len(L.ad))
	for _, d := range t.sp.Partition(vq).Enter {
		w := t.sp.WithinPointDoor(vq, q, d)
		st.Door()
		for i, a := range L.ad {
			if cand := L.leafA2D(a, d) + w; cand < vec[i].dist {
				if d == a {
					vec[i] = ventry{cand, []indoor.DoorID{a}}
				} else {
					vec[i] = ventry{cand, []indoor.DoorID{a, d}}
				}
			}
		}
	}
	return vec
}

// liftP lifts a p-side vector from node cur to its parent.
func (t *Tree) liftP(vec []ventry, cur, par *node, st *query.Stats) []ventry {
	out := infVec(len(par.ad))
	for j, a2 := range par.ad {
		st.Door()
		for i, a1 := range cur.ad {
			if math.IsInf(vec[i].dist, 1) {
				continue
			}
			if cand := vec[i].dist + par.mAt(a1, a2); cand < out[j].dist {
				if a1 == a2 {
					out[j] = ventry{cand, vec[i].chain}
				} else {
					out[j] = ventry{cand, extend(vec[i].chain, a2)}
				}
			}
		}
	}
	return out
}

// liftQ lifts a q-side vector from node cur to its parent.
func (t *Tree) liftQ(vec []ventry, cur, par *node, st *query.Stats) []ventry {
	out := infVec(len(par.ad))
	for j, b2 := range par.ad {
		st.Door()
		for i, b1 := range cur.ad {
			if math.IsInf(vec[i].dist, 1) {
				continue
			}
			if cand := par.mAt(b2, b1) + vec[i].dist; cand < out[j].dist {
				if b1 == b2 {
					out[j] = ventry{cand, vec[i].chain}
				} else {
					out[j] = ventry{cand, prepend(b2, vec[i].chain)}
				}
			}
		}
	}
	return out
}

// pVecAt computes the p-side vector over the access doors of `target`,
// which must be p's leaf or one of its ancestors. IP-TREE ascends level by
// level; VIP-TREE reads the leaf's materialized ancestor matrices directly.
func (t *Tree) pVecAt(Lp int32, target int32, vp indoor.PartitionID, p indoor.Point, st *query.Stats) []ventry {
	if target == Lp {
		return t.pVecLeaf(&t.nodes[Lp], vp, p, st)
	}
	if t.opt.VIP {
		leaf := &t.nodes[Lp]
		tn := &t.nodes[target]
		lvl := t.ancestorLevel(Lp, target)
		vec := infVec(len(tn.ad))
		na := len(tn.ad)
		for _, d := range t.sp.Partition(vp).Leave {
			w := t.sp.WithinPointDoor(vp, p, d)
			st.Door()
			di := leaf.doorIdx[d]
			for i, a := range tn.ad {
				if cand := w + leaf.vipD2A[lvl][int(di)*na+i]; cand < vec[i].dist {
					if d == a {
						vec[i] = ventry{cand, []indoor.DoorID{a}}
					} else {
						vec[i] = ventry{cand, []indoor.DoorID{d, a}}
					}
				}
			}
		}
		return vec
	}
	vec := t.pVecLeaf(&t.nodes[Lp], vp, p, st)
	cur := Lp
	for cur != target {
		par := t.nodes[cur].parent
		vec = t.liftP(vec, &t.nodes[cur], &t.nodes[par], st)
		cur = par
	}
	return vec
}

// qVecAt is the q-side analogue of pVecAt.
func (t *Tree) qVecAt(Lq int32, target int32, vq indoor.PartitionID, q indoor.Point, st *query.Stats) []ventry {
	if target == Lq {
		return t.qVecLeaf(&t.nodes[Lq], vq, q, st)
	}
	if t.opt.VIP {
		leaf := &t.nodes[Lq]
		tn := &t.nodes[target]
		lvl := t.ancestorLevel(Lq, target)
		vec := infVec(len(tn.ad))
		for _, d := range t.sp.Partition(vq).Enter {
			w := t.sp.WithinPointDoor(vq, q, d)
			st.Door()
			di := leaf.doorIdx[d]
			for i, a := range tn.ad {
				if cand := leaf.vipA2D[lvl][i*len(leaf.doors)+int(di)] + w; cand < vec[i].dist {
					if d == a {
						vec[i] = ventry{cand, []indoor.DoorID{a}}
					} else {
						vec[i] = ventry{cand, []indoor.DoorID{a, d}}
					}
				}
			}
		}
		return vec
	}
	vec := t.qVecLeaf(&t.nodes[Lq], vq, q, st)
	cur := Lq
	for cur != target {
		par := t.nodes[cur].parent
		vec = t.liftQ(vec, &t.nodes[cur], &t.nodes[par], st)
		cur = par
	}
	return vec
}

// ancestorLevel returns the index into vipD2A/vipA2D for ancestor `anc` of
// leaf `leaf`: 0 for the parent, 1 for the grandparent, and so on.
func (t *Tree) ancestorLevel(leaf, anc int32) int {
	lvl := 0
	for p := t.nodes[leaf].parent; p >= 0; p = t.nodes[p].parent {
		if p == anc {
			return lvl
		}
		lvl++
	}
	panic("iptree: ancestorLevel: not an ancestor")
}

// leafDijkstra runs a door Dijkstra restricted to the partitions of leaf L,
// returning the best distance from p to q that never leaves the leaf, plus
// the door chain realizing it.
func (t *Tree) leafDijkstra(L int32, vp indoor.PartitionID, p indoor.Point, vq indoor.PartitionID, q indoor.Point, st *query.Stats) (float64, []indoor.DoorID) {
	leaf := &t.nodes[L]
	n := len(leaf.doors)
	dist := make([]float64, n)
	prev := make([]int32, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	for _, d := range t.sp.Partition(vp).Leave {
		if i, ok := leaf.doorIdx[d]; ok {
			if w := t.sp.WithinPointDoor(vp, p, d); w < dist[i] {
				dist[i] = w
			}
		}
	}
	st.Alloc(int64(n) * 13)

	// Dense selection: leaves are small.
	best := math.Inf(1)
	var bestDoor int32 = -1
	tailOf := func(di indoor.DoorID) (float64, bool) {
		for _, d := range t.sp.Partition(vq).Enter {
			if d == di {
				return t.sp.WithinPointDoor(vq, q, d), true
			}
		}
		return 0, false
	}
	for {
		u, bu := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < bu {
				u, bu = i, dist[i]
			}
		}
		if u < 0 || bu >= best {
			break
		}
		done[u] = true
		st.Door()
		if st.Interrupted() != nil {
			break // SPD re-checks at the stage boundary and surfaces the cause
		}
		du := leaf.doors[u]
		if w, ok := tailOf(du); ok {
			if cand := bu + w; cand < best {
				best = cand
				bestDoor = int32(u)
			}
		}
		for _, v := range t.sp.Door(du).Enterable {
			if t.partLeaf[v] != L {
				continue
			}
			for _, nd := range t.sp.Partition(v).Leave {
				i, ok := leaf.doorIdx[nd]
				if !ok || done[i] {
					continue
				}
				w, hit := t.sp.WithinDoorsCached(v, du, nd)
				st.Cache(hit)
				if cand := bu + w; cand < dist[i] {
					dist[i] = cand
					prev[i] = int32(u)
				}
			}
		}
	}
	if bestDoor < 0 {
		return best, nil
	}
	var chain []indoor.DoorID
	for i := bestDoor; i >= 0; i = prev[i] {
		chain = append(chain, leaf.doors[i])
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return best, chain
}

// legDoors returns the doors strictly between x and y on the global
// shortest path x -> y, using the routing table of whichever endpoint is an
// access door.
func (t *Tree) legDoors(x, y indoor.DoorID) []indoor.DoorID {
	if x == y {
		return nil
	}
	if r, ok := t.routes[y]; ok {
		var out []indoor.DoorID
		for d := r.next[x]; d >= 0 && indoor.DoorID(d) != y; {
			out = append(out, indoor.DoorID(d))
			d = r.next[d]
		}
		return out
	}
	if r, ok := t.routes[x]; ok {
		var out []indoor.DoorID
		for d := r.prev[y]; d >= 0 && indoor.DoorID(d) != x; {
			out = append(out, indoor.DoorID(d))
			d = r.prev[d]
		}
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
		return out
	}
	panic("iptree: legDoors: neither endpoint is an access door")
}

// expandChain turns an access-door chain into the full door sequence.
func (t *Tree) expandChain(chain []indoor.DoorID) []indoor.DoorID {
	if len(chain) == 0 {
		return nil
	}
	out := []indoor.DoorID{chain[0]}
	for i := 1; i < len(chain); i++ {
		if chain[i] == chain[i-1] {
			continue
		}
		out = append(out, t.legDoors(chain[i-1], chain[i])...)
		out = append(out, chain[i])
	}
	return out
}

// joinChains concatenates a p-side chain (ending at access door a) with a
// q-side chain (starting at the same or a different access door).
func joinChains(pc, qc []indoor.DoorID) []indoor.DoorID {
	out := make([]indoor.DoorID, 0, len(pc)+len(qc))
	out = append(out, pc...)
	out = append(out, qc...)
	return out
}

// SPD implements query.Engine.
func (t *Tree) SPD(p, q indoor.Point, st *query.Stats) (query.Path, error) {
	endHost := st.Span(obs.StageHost)
	vp, ok := t.sp.HostPartition(p)
	if !ok {
		endHost()
		return query.Path{}, query.ErrNoHost
	}
	vq, ok := t.sp.HostPartition(q)
	if !ok {
		endHost()
		return query.Path{}, query.ErrNoHost
	}
	Lp, Lq := t.leafOf(vp), t.leafOf(vq)
	endHost()

	// Reachability gate: when no leaveable door of vp reaches vq in the
	// condensation, every door-mediated candidate below is +Inf (the node
	// matrices were swept over the same graph), so only the direct
	// within-partition geodesic can answer — skip all matrix work.
	if rc := t.reach; rc != nil && rc.NumSCCs() > 1 {
		if from := rc.FromDoors(t.sp.Partition(vp).Leave, nil); !from.CanReachPart(vq) {
			reach.Metrics.PruneHits.Add(1)
			direct := math.Inf(1)
			if vp == vq {
				direct = t.sp.WithinPointsStop(vp, p, q, st.Stop())
			}
			if err := st.Interrupted(); err != nil {
				return query.Path{}, err
			}
			if math.IsInf(direct, 1) {
				return query.Path{}, query.ErrUnreachable
			}
			return query.Path{Source: p, Target: q, Dist: direct}, nil
		}
		reach.Metrics.PruneSkips.Add(1)
	}

	best := math.Inf(1)
	var chain []indoor.DoorID // access-door chain, expanded into legs below
	var literal []indoor.DoorID
	isLiteral := false // literal door sequence (direct / within-leaf Dijkstra)
	if vp == vq {
		best = t.sp.WithinPointsStop(vp, p, q, st.Stop())
		isLiteral = true
	}
	if err := st.Interrupted(); err != nil {
		return query.Path{}, err
	}

	if Lp == Lq {
		endExpand := st.Span(obs.StageExpand)
		d, c := t.leafDijkstra(Lp, vp, p, vq, q, st)
		endExpand()
		if d < best {
			best, literal, isLiteral = d, c, true
		}
		if err := st.Interrupted(); err != nil {
			return query.Path{}, err
		}
		// Out-and-back through the leaf's access doors.
		endProbe := st.Span(obs.StageProbe)
		pvec := t.pVecAt(Lp, Lp, vp, p, st)
		qvec := t.qVecAt(Lq, Lq, vq, q, st)
		for i := range pvec {
			if cand := pvec[i].dist + qvec[i].dist; cand < best {
				best = cand
				chain = joinChains(pvec[i].chain, qvec[i].chain[1:])
				isLiteral = false
			}
		}
		endProbe()
	} else {
		endProbe := st.Span(obs.StageProbe)
		defer endProbe()
		lcaID, cp, cq := t.lca(Lp, Lq)
		lcaNode := &t.nodes[lcaID]
		pvec := t.pVecAt(Lp, cp, vp, p, st)
		qvec := t.qVecAt(Lq, cq, vq, q, st)
		if err := st.Interrupted(); err != nil {
			return query.Path{}, err
		}
		adP := t.nodes[cp].ad
		adQ := t.nodes[cq].ad
		for i, a := range adP {
			if math.IsInf(pvec[i].dist, 1) {
				continue
			}
			for j, b := range adQ {
				if math.IsInf(qvec[j].dist, 1) {
					continue
				}
				if cand := pvec[i].dist + lcaNode.mAt(a, b) + qvec[j].dist; cand < best {
					best = cand
					isLiteral = false
					if a == b {
						chain = joinChains(pvec[i].chain, qvec[j].chain[1:])
					} else {
						chain = joinChains(pvec[i].chain, qvec[j].chain)
					}
				}
			}
		}
		st.Alloc(int64(len(adP)+len(adQ)) * 24)
		endProbe()
	}

	if err := st.Interrupted(); err != nil {
		return query.Path{}, err
	}
	if math.IsInf(best, 1) {
		return query.Path{}, query.ErrUnreachable
	}
	endRefine := st.Span(obs.StageRefine)
	defer endRefine()
	doors := literal
	if !isLiteral {
		doors = t.expandChain(chain)
	}
	return query.Path{Source: p, Target: q, Doors: doors, Dist: best}, nil
}
