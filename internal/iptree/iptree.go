// Package iptree implements IP-TREE and VIP-TREE (Shao et al., VLDB 2016;
// Sec. 3.4 of the paper): a tree over topologically adjacent indoor
// partitions. Each leaf groups adjacent partitions with at most one
// "crucial" partition (door count exceeding the γ threshold, Sec. 5.3);
// adjacent nodes merge hierarchically into a root. Every node carries a
// distance matrix over its access doors — the border doors connecting it to
// the rest of the space:
//
//   - a leaf stores the distances (and first-hop information) between every
//     door of the leaf and every access door of the leaf;
//   - a non-leaf stores the distances between every pair of its children's
//     access doors;
//   - VIP-TREE additionally materializes, per leaf, the distances between
//     every leaf door and every access door of all its ancestors, which
//     turns shortest-distance queries into O(ρ²) lookups.
//
// Distances honour door directionality, so each matrix stores both
// directions (doubling storage, as the paper notes).
package iptree

import (
	"fmt"
	"math"
	"sort"

	"indoorsq/internal/doorgraph"
	"indoorsq/internal/exec"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/reach"
)

// Options configure tree construction.
type Options struct {
	// Gamma is the crucial-partition threshold: a partition is crucial when
	// it has more than Gamma doors. Values <= 0 default to 6.
	Gamma int
	// LeafSize is the maximum number of partitions per leaf (default 8).
	LeafSize int
	// Fanout is the maximum number of children per non-leaf node; the
	// minimum children degree is 2, as suggested by the paper (default 4).
	Fanout int
	// VIP enables the VIP-TREE leaf materialization.
	VIP bool
	// Workers bounds the construction worker pool (<= 0: GOMAXPROCS). The
	// resulting matrices are identical for every worker count.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Gamma <= 0 {
		o.Gamma = 6
	}
	if o.LeafSize <= 0 {
		o.LeafSize = 8
	}
	if o.Fanout < 2 {
		o.Fanout = 4
	}
	return o
}

// node is one IP-tree node.
type node struct {
	id       int32
	parent   int32 // -1 at the root
	children []int32
	depth    int32 // root = 0

	// ad is the node's access-door set; adIdx maps door id -> position.
	ad    []indoor.DoorID
	adIdx map[indoor.DoorID]int32

	// Leaf fields.
	leaf    bool
	parts   []indoor.PartitionID
	doors   []indoor.DoorID
	doorIdx map[indoor.DoorID]int32
	// md2a[d*len(ad)+a]: global shortest dist door d -> access door a.
	// ma2d[a*len(doors)+d]: access door a -> door d.
	md2a, ma2d []float64
	// vipD2A[lvl], vipA2D[lvl]: as md2a/ma2d but against the access doors of
	// the ancestor at distance lvl+1 above the leaf (VIP-TREE only).
	vipD2A, vipA2D [][]float64

	// Non-leaf fields: uad is the union of the children's access doors and
	// m the square matrix of pairwise distances (row -> col).
	uad    []indoor.DoorID
	uadIdx map[indoor.DoorID]int32
	m      []float64
}

// route holds the path-reconstruction tables of one access door a:
// next[d] is the door after d on the shortest path d -> a;
// prev[d] is the door before d on the shortest path a -> d.
type route struct {
	next, prev []int32
}

// Tree is the IP-TREE (or VIP-TREE) engine.
type Tree struct {
	sp       *indoor.Space
	opt      Options
	nodes    []node
	root     int32
	partLeaf []int32 // partition id -> leaf node id
	routes   map[indoor.DoorID]*route
	store    *query.ObjectStore

	// reach condenses the same door graph the matrices were swept from, so
	// "summary says unreachable" coincides exactly with "matrix entry is
	// +Inf"; SetReach(nil) disables pruning.
	reach *reach.Reach

	size int64
}

// New builds an IP-TREE (or VIP-TREE when opt.VIP is set) over a space.
func New(sp *indoor.Space, opt Options) *Tree {
	t := &Tree{sp: sp, opt: opt.withDefaults()}
	t.buildLeaves()
	t.buildHierarchy()
	t.computeAccessDoors()
	t.fillMatrices()
	t.accountSize()
	return t
}

// Name implements query.Engine.
func (t *Tree) Name() string {
	if t.opt.VIP {
		return "VIPTree"
	}
	return "IPTree"
}

// SetObjects implements query.Engine.
func (t *Tree) SetObjects(objs []query.Object) {
	t.store = query.NewObjectStore(t.sp, objs)
}

// SizeBytes implements query.Engine.
func (t *Tree) SizeBytes() int64 { return t.size }

// NumLeaves returns the number of leaf nodes.
func (t *Tree) NumLeaves() int {
	n := 0
	for i := range t.nodes {
		if t.nodes[i].leaf {
			n++
		}
	}
	return n
}

// Depth returns the tree depth (root = 1).
func (t *Tree) Depth() int {
	max := int32(0)
	for i := range t.nodes {
		if t.nodes[i].depth > max {
			max = t.nodes[i].depth
		}
	}
	return int(max) + 1
}

// crucial reports whether partition v is crucial under γ.
func (t *Tree) crucial(v indoor.PartitionID) bool {
	return len(t.sp.Partition(v).Doors) > t.opt.Gamma
}

// partNeighbors returns the partitions adjacent to v through any door.
func (t *Tree) partNeighbors(v indoor.PartitionID) []indoor.PartitionID {
	var out []indoor.PartitionID
	seen := map[indoor.PartitionID]bool{v: true}
	for _, d := range t.sp.Partition(v).Doors {
		for _, u := range t.sp.Door(d).Parts {
			if !seen[u] {
				seen[u] = true
				out = append(out, u)
			}
		}
	}
	return out
}

// buildLeaves groups topologically adjacent partitions into leaves with at
// most one crucial partition each, seeding from crucial partitions first.
func (t *Tree) buildLeaves() {
	np := t.sp.NumPartitions()
	t.partLeaf = make([]int32, np)
	for i := range t.partLeaf {
		t.partLeaf[i] = -1
	}

	var seeds []indoor.PartitionID
	for v := 0; v < np; v++ {
		if t.crucial(indoor.PartitionID(v)) {
			seeds = append(seeds, indoor.PartitionID(v))
		}
	}
	for v := 0; v < np; v++ {
		if !t.crucial(indoor.PartitionID(v)) {
			seeds = append(seeds, indoor.PartitionID(v))
		}
	}

	for _, seed := range seeds {
		if t.partLeaf[seed] >= 0 {
			continue
		}
		id := int32(len(t.nodes))
		group := []indoor.PartitionID{seed}
		t.partLeaf[seed] = id
		hasCrucial := t.crucial(seed)
		// BFS growth.
		for qi := 0; qi < len(group) && len(group) < t.opt.LeafSize; qi++ {
			for _, nb := range t.partNeighbors(group[qi]) {
				if len(group) >= t.opt.LeafSize {
					break
				}
				if t.partLeaf[nb] >= 0 {
					continue
				}
				if t.crucial(nb) {
					if hasCrucial {
						continue
					}
					hasCrucial = true
				}
				t.partLeaf[nb] = id
				group = append(group, nb)
			}
		}
		t.nodes = append(t.nodes, node{id: id, parent: -1, leaf: true, parts: group})
	}

	// Leaf door lists.
	for i := range t.nodes {
		l := &t.nodes[i]
		l.doorIdx = make(map[indoor.DoorID]int32)
		for _, v := range l.parts {
			for _, d := range t.sp.Partition(v).Doors {
				if _, ok := l.doorIdx[d]; !ok {
					l.doorIdx[d] = int32(len(l.doors))
					l.doors = append(l.doors, d)
				}
			}
		}
	}
}

// buildHierarchy merges adjacent nodes level by level until a root forms.
func (t *Tree) buildHierarchy() {
	current := make([]int32, 0, len(t.nodes))
	for i := range t.nodes {
		current = append(current, t.nodes[i].id)
	}
	for len(current) > 1 {
		owner := make(map[int32]bool, len(current))
		for _, id := range current {
			owner[id] = true
		}
		// Node adjacency at this level.
		partOwner := t.levelOwner(current)
		adj := make(map[int32]map[int32]bool, len(current))
		for di := 0; di < t.sp.NumDoors(); di++ {
			parts := t.sp.Door(indoor.DoorID(di)).Parts
			if len(parts) != 2 {
				continue
			}
			a, b := partOwner[parts[0]], partOwner[parts[1]]
			if a == b {
				continue
			}
			if adj[a] == nil {
				adj[a] = make(map[int32]bool)
			}
			if adj[b] == nil {
				adj[b] = make(map[int32]bool)
			}
			adj[a][b] = true
			adj[b][a] = true
		}

		// Sorted neighbor lists: iterating the adjacency maps directly
		// would make the tree shape depend on Go's randomized map order,
		// i.e. differ between two builds of the same space.
		nbs := make(map[int32][]int32, len(adj))
		for id, set := range adj {
			l := make([]int32, 0, len(set))
			for nb := range set {
				l = append(l, nb)
			}
			sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
			nbs[id] = l
		}

		assigned := make(map[int32]int32, len(current)) // node -> parent
		var parents []int32
		for _, seed := range current {
			if _, ok := assigned[seed]; ok {
				continue
			}
			pid := int32(len(t.nodes))
			group := []int32{seed}
			assigned[seed] = pid
			for qi := 0; qi < len(group) && len(group) < t.opt.Fanout; qi++ {
				for _, nb := range nbs[group[qi]] {
					if len(group) >= t.opt.Fanout {
						break
					}
					if _, ok := assigned[nb]; ok {
						continue
					}
					assigned[nb] = pid
					group = append(group, nb)
				}
			}
			if len(group) == 1 {
				// A singleton cannot form a parent: attach it to an
				// adjacent, already-formed parent to keep degree >= 2.
				attached := false
				for _, nb := range nbs[seed] {
					if ppid, ok := assigned[nb]; ok && ppid != pid {
						assigned[seed] = ppid
						t.nodes[seed].parent = ppid
						t.nodes[ppid].children = append(t.nodes[ppid].children, seed)
						attached = true
						break
					}
				}
				if attached {
					continue
				}
				// Disconnected component: promote as its own parent chain.
			}
			t.nodes = append(t.nodes, node{id: pid, parent: -1, children: group})
			for _, c := range group {
				t.nodes[c].parent = pid
			}
			parents = append(parents, pid)
		}
		if len(parents) >= len(current) {
			panic(fmt.Sprintf("iptree: hierarchy not shrinking (%d -> %d)", len(current), len(parents)))
		}
		current = parents
	}
	t.root = current[0]
	// Depths.
	var setDepth func(id, d int32)
	setDepth = func(id, d int32) {
		t.nodes[id].depth = d
		for _, c := range t.nodes[id].children {
			setDepth(c, d+1)
		}
	}
	setDepth(t.root, 0)
}

// levelOwner maps every partition to its owning node among `current`.
func (t *Tree) levelOwner(current []int32) []int32 {
	cur := make(map[int32]bool, len(current))
	for _, id := range current {
		cur[id] = true
	}
	out := make([]int32, len(t.partLeaf))
	for p, leaf := range t.partLeaf {
		id := leaf
		for !cur[id] {
			id = t.nodes[id].parent
		}
		out[p] = id
	}
	return out
}

// inSubtree reports whether partition p belongs to node n's subtree.
func (t *Tree) inSubtree(p indoor.PartitionID, n int32) bool {
	id := t.partLeaf[p]
	for id >= 0 {
		if id == n {
			return true
		}
		id = t.nodes[id].parent
	}
	return false
}

// computeAccessDoors fills ad/adIdx for every node: the doors whose two
// partitions straddle the node boundary.
func (t *Tree) computeAccessDoors() {
	for i := range t.nodes {
		n := &t.nodes[i]
		n.adIdx = make(map[indoor.DoorID]int32)
		for di := 0; di < t.sp.NumDoors(); di++ {
			d := indoor.DoorID(di)
			parts := t.sp.Door(d).Parts
			if len(parts) != 2 {
				continue
			}
			in0 := t.inSubtree(parts[0], n.id)
			in1 := t.inSubtree(parts[1], n.id)
			if in0 != in1 {
				n.adIdx[d] = int32(len(n.ad))
				n.ad = append(n.ad, d)
			}
		}
	}
	// Union access-door sets for non-leaf nodes.
	for i := range t.nodes {
		n := &t.nodes[i]
		if n.leaf {
			continue
		}
		n.uadIdx = make(map[indoor.DoorID]int32)
		for _, c := range n.children {
			for _, a := range t.nodes[c].ad {
				if _, ok := n.uadIdx[a]; !ok {
					n.uadIdx[a] = int32(len(n.uad))
					n.uad = append(n.uad, a)
				}
			}
		}
	}
}

// ancestors returns the ancestor chain of a node, nearest first.
func (t *Tree) ancestors(id int32) []int32 {
	var out []int32
	for p := t.nodes[id].parent; p >= 0; p = t.nodes[p].parent {
		out = append(out, p)
	}
	return out
}

// fillMatrices runs two Dijkstras per distinct access door over the door
// graph and populates every node matrix, the VIP materialization, and the
// path-reconstruction routing tables.
func (t *Tree) fillMatrices() {
	dg := doorgraph.BuildWorkers(t.sp, t.opt.Workers)
	t.reach = reach.FromGraph(dg, t.sp, t.opt.Workers)

	// Every door that appears as an access door anywhere.
	need := make(map[indoor.DoorID]bool)
	for i := range t.nodes {
		for _, a := range t.nodes[i].ad {
			need[a] = true
		}
	}

	// Allocate matrices.
	for i := range t.nodes {
		n := &t.nodes[i]
		if n.leaf {
			n.md2a = make([]float64, len(n.doors)*len(n.ad))
			n.ma2d = make([]float64, len(n.ad)*len(n.doors))
			if t.opt.VIP {
				anc := t.ancestors(n.id)
				n.vipD2A = make([][]float64, len(anc))
				n.vipA2D = make([][]float64, len(anc))
				for li, aid := range anc {
					na := len(t.nodes[aid].ad)
					n.vipD2A[li] = make([]float64, len(n.doors)*na)
					n.vipA2D[li] = make([]float64, na*len(n.doors))
				}
			}
		} else {
			n.m = make([]float64, len(n.uad)*len(n.uad))
		}
	}

	// One forward and one reverse Dijkstra per distinct access door, in
	// parallel: each door owns disjoint matrix rows/columns (leaf matrices
	// are indexed by the door's own position; non-leaf rows by the door),
	// so workers never write the same element.
	doors := make([]indoor.DoorID, 0, len(need))
	for a := range need {
		doors = append(doors, a)
	}
	sort.Slice(doors, func(i, j int) bool { return doors[i] < doors[j] })
	routesArr := make([]*route, len(doors))

	// Chunked index ranges instead of one channel op per door; each chunk
	// writes matrix rows owned by its doors only, so any worker count
	// produces identical matrices.
	exec.Chunks(len(doors), t.opt.Workers, func(lo, hi int) {
		// Two pooled scratches per chunk: the forward and reverse
		// sweeps of one door must be readable at the same time while
		// the matrices are filled.
		sFwd := dg.AcquireScratch()
		defer dg.ReleaseScratch(sFwd)
		sRev := dg.AcquireScratch()
		defer dg.ReleaseScratch(sRev)
		for ji := lo; ji < hi; ji++ {
			a := doors[ji]
			sFwd.Run(dg, int32(a), false) // a -> d
			sRev.Run(dg, int32(a), true)  // d -> a
			// The routing tables outlive the scratch; copy them out.
			r := &route{next: make([]int32, dg.N), prev: make([]int32, dg.N)}
			sRev.CopyPrev(r.next)
			sFwd.CopyPrev(r.prev)
			routesArr[ji] = r

			for i := range t.nodes {
				n := &t.nodes[i]
				if n.leaf {
					if ai, ok := n.adIdx[a]; ok {
						na := len(n.ad)
						for dIdx, d := range n.doors {
							n.md2a[dIdx*na+int(ai)] = sRev.DistAt(int(d))
							n.ma2d[int(ai)*len(n.doors)+dIdx] = sFwd.DistAt(int(d))
						}
					}
					if t.opt.VIP {
						for li, aid := range t.ancestors(n.id) {
							anc := &t.nodes[aid]
							if ai, ok := anc.adIdx[a]; ok {
								na := len(anc.ad)
								for dIdx, d := range n.doors {
									n.vipD2A[li][dIdx*na+int(ai)] = sRev.DistAt(int(d))
									n.vipA2D[li][int(ai)*len(n.doors)+dIdx] = sFwd.DistAt(int(d))
								}
							}
						}
					}
				} else if ri, ok := n.uadIdx[a]; ok {
					// Row a -> every uad door; the reverse direction is
					// covered by that door's own worker writing its row.
					nu := len(n.uad)
					for ci, c := range n.uad {
						n.m[int(ri)*nu+ci] = sFwd.DistAt(int(c))
					}
				}
			}
		}
	})

	t.routes = make(map[indoor.DoorID]*route, len(doors))
	for ji, a := range doors {
		t.routes[a] = routesArr[ji]
	}
}

func (t *Tree) accountSize() {
	var sz int64
	for i := range t.nodes {
		n := &t.nodes[i]
		sz += 96
		sz += int64(len(n.children))*4 + int64(len(n.ad))*8
		sz += int64(len(n.md2a)+len(n.ma2d)+len(n.m)) * 8
		sz += int64(len(n.doors)) * 8
		sz += int64(len(n.uad)) * 8
		for li := range n.vipD2A {
			sz += int64(len(n.vipD2A[li])+len(n.vipA2D[li])) * 8
		}
	}
	for _, r := range t.routes {
		sz += int64(len(r.next)+len(r.prev)) * 4
	}
	sz += int64(len(t.partLeaf)) * 4
	sz += t.sp.BaseSizeBytes() + t.sp.GeomSizeBytes()
	sz += t.reach.SizeBytes()
	t.size = sz
}

// Reach returns the tree's reachability summary (nil after SetReach(nil)).
func (t *Tree) Reach() *reach.Reach { return t.reach }

// SetReach swaps the reachability summary used to prune query processing
// (nil disables pruning — an ablation knob). Results are bit-identical
// either way.
func (t *Tree) SetReach(r *reach.Reach) { t.reach = r }

// leafOf returns the leaf node id hosting partition v.
func (t *Tree) leafOf(v indoor.PartitionID) int32 { return t.partLeaf[v] }

// lca returns the lowest common ancestor of nodes x and y, plus the children
// of the LCA on each side (cx on x's side, cy on y's side). When x == y the
// LCA is x itself and cx = cy = x.
func (t *Tree) lca(x, y int32) (lca, cx, cy int32) {
	for t.nodes[x].depth > t.nodes[y].depth {
		x = t.nodes[x].parent
	}
	for t.nodes[y].depth > t.nodes[x].depth {
		y = t.nodes[y].parent
	}
	if x == y {
		return x, x, y
	}
	for t.nodes[x].parent != t.nodes[y].parent {
		x = t.nodes[x].parent
		y = t.nodes[y].parent
	}
	return t.nodes[x].parent, x, y
}

// mAt looks up the non-leaf matrix entry from door a to door b in node n.
func (n *node) mAt(a, b indoor.DoorID) float64 {
	i, ok := n.uadIdx[a]
	if !ok {
		return math.Inf(1)
	}
	j, ok := n.uadIdx[b]
	if !ok {
		return math.Inf(1)
	}
	return n.m[int(i)*len(n.uad)+int(j)]
}

// leafD2A returns the global distance from leaf door d to access door a.
func (n *node) leafD2A(d, a indoor.DoorID) float64 {
	di, ok := n.doorIdx[d]
	if !ok {
		return math.Inf(1)
	}
	ai, ok := n.adIdx[a]
	if !ok {
		return math.Inf(1)
	}
	return n.md2a[int(di)*len(n.ad)+int(ai)]
}

// leafA2D returns the global distance from access door a to leaf door d.
func (n *node) leafA2D(a, d indoor.DoorID) float64 {
	di, ok := n.doorIdx[d]
	if !ok {
		return math.Inf(1)
	}
	ai, ok := n.adIdx[a]
	if !ok {
		return math.Inf(1)
	}
	return n.ma2d[int(ai)*len(n.doors)+int(di)]
}

// ensureStore lazily creates an empty object store.
func (t *Tree) ensureStore() *query.ObjectStore {
	if t.store == nil {
		t.store = query.NewObjectStore(t.sp, nil)
	}
	return t.store
}

// InsertObject implements query.ObjectUpdater.
func (t *Tree) InsertObject(o query.Object) bool {
	return t.ensureStore().Insert(t.sp, o)
}

// DeleteObject implements query.ObjectUpdater.
func (t *Tree) DeleteObject(id int32) bool {
	return t.ensureStore().Delete(id)
}

// MoveObject implements query.ObjectUpdater.
func (t *Tree) MoveObject(id int32, loc indoor.Point, part indoor.PartitionID) bool {
	return t.ensureStore().Move(t.sp, id, loc, part)
}
