package dataset

import (
	"testing"

	"indoorsq/internal/indoor"
)

func stats(t *testing.T, name string, gamma int) indoor.Stats {
	t.Helper()
	info, err := Build(name)
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	return info.Space.SpaceStats(gamma)
}

func TestSYN5MatchesTable4(t *testing.T) {
	st := stats(t, "SYN5", 6)
	// Table 4: 5 floors, 1080 doors, 705 partitions, 205 hallways,
	// extent 1368 x 1368, Q2(#dv) = 2.
	if st.Floors != 5 {
		t.Fatalf("floors = %d", st.Floors)
	}
	if st.Hallways != 205 {
		t.Fatalf("hallways = %d, want 205 (41 per floor)", st.Hallways)
	}
	if st.Rooms != 500 {
		t.Fatalf("rooms = %d, want 500", st.Rooms)
	}
	if st.Length != 1368 {
		t.Fatalf("length = %g, want 1368", st.Length)
	}
	if st.Doors < 900 || st.Doors > 1200 {
		t.Fatalf("doors = %d, want ~1080", st.Doors)
	}
	if st.Partitions < 700 || st.Partitions > 730 {
		t.Fatalf("partitions = %d, want ~705", st.Partitions)
	}
	if st.Q2 < 1 || st.Q2 > 3 {
		t.Fatalf("Q2 = %d, want ~2", st.Q2)
	}
	if st.Max < 6 || st.Max > 12 {
		t.Fatalf("max #dv = %d, want ~10", st.Max)
	}
	if st.Crucial != 40 { // Table 4: 8n crucial partitions
		t.Fatalf("crucial = %d, want 40", st.Crucial)
	}
}

func TestSYNVariantsChangeDoors(t *testing.T) {
	minus := stats(t, "SYN5-", 6)
	def := stats(t, "SYN5", 6)
	plus := stats(t, "SYN5+", 6)
	if !(minus.Doors < def.Doors && def.Doors < plus.Doors) {
		t.Fatalf("door ordering: %d, %d, %d", minus.Doors, def.Doors, plus.Doors)
	}
	// Partition counts stay identical across B6 variants.
	if minus.Partitions != def.Partitions || plus.Partitions != def.Partitions {
		t.Fatalf("partitions differ: %d, %d, %d", minus.Partitions, def.Partitions, plus.Partitions)
	}
}

func TestSYN0Undecomposed(t *testing.T) {
	zero := stats(t, "SYN50", 6)
	if zero.Hallways != 5 {
		t.Fatalf("SYN50 hallways = %d, want 5 (one per floor)", zero.Hallways)
	}
	def := stats(t, "SYN5", 6)
	if zero.Doors >= def.Doors {
		t.Fatalf("SYN50 doors %d should be below SYN5 %d (no virtual doors)", zero.Doors, def.Doors)
	}
	if zero.Max <= def.Max {
		t.Fatalf("SYN50 max #dv %d should exceed SYN5 %d", zero.Max, def.Max)
	}
}

func TestMZBMatchesTable4(t *testing.T) {
	st := stats(t, "MZB", 4)
	if st.Floors != 17 {
		t.Fatalf("floors = %d", st.Floors)
	}
	if st.Length < 124.9 || st.Length > 125.1 || st.Width != 35 {
		t.Fatalf("extent = %g x %g", st.Length, st.Width)
	}
	// Skewed profile: median partition has exactly one door.
	if st.Q1 != 1 || st.Q2 != 1 {
		t.Fatalf("Q1/Q2 = %d/%d, want 1/1", st.Q1, st.Q2)
	}
	if st.Max < 40 {
		t.Fatalf("max #dv = %d, want a >50-door crucial corridor", st.Max)
	}
	if st.Hallways != 5*17 {
		t.Fatalf("hallways = %d, want 85", st.Hallways)
	}
	if st.Partitions < 1250 || st.Partitions > 1450 {
		t.Fatalf("partitions = %d, want ~1344", st.Partitions)
	}
	if st.Doors < 1250 || st.Doors > 1500 {
		t.Fatalf("doors = %d, want ~1375", st.Doors)
	}
}

func TestMZBVariants(t *testing.T) {
	zero := stats(t, "MZB0", 4)
	def := stats(t, "MZB", 4)
	delta := stats(t, "MZBD", 4)
	if zero.Hallways != 17 {
		t.Fatalf("MZB0 hallways = %d, want 17", zero.Hallways)
	}
	if delta.Hallways != 11*17 {
		t.Fatalf("MZBD hallways = %d, want 187", delta.Hallways)
	}
	if !(zero.Doors < def.Doors && def.Doors < delta.Doors) {
		t.Fatalf("door ordering: %d, %d, %d", zero.Doors, def.Doors, delta.Doors)
	}
	if zero.Max <= def.Max {
		t.Fatalf("MZB0 max %d should exceed MZB %d", zero.Max, def.Max)
	}
}

func TestHSMMatchesTable4(t *testing.T) {
	st := stats(t, "HSM", 7)
	if st.Floors != 7 {
		t.Fatalf("floors = %d", st.Floors)
	}
	if st.Length != 2700 {
		t.Fatalf("length = %g", st.Length)
	}
	if st.Partitions < 850 || st.Partitions > 1150 {
		t.Fatalf("partitions = %d, want ~1050", st.Partitions)
	}
	if st.Doors < 1900 || st.Doors > 2350 {
		t.Fatalf("doors = %d, want ~2093", st.Doors)
	}
	if st.Q2 < 3 || st.Q2 > 5 {
		t.Fatalf("Q2 = %d, want ~4", st.Q2)
	}
	if st.Max < 12 || st.Max > 22 {
		t.Fatalf("max #dv = %d, want ~17", st.Max)
	}
	if st.Crucial < 80 {
		t.Fatalf("crucial = %d, want ~133", st.Crucial)
	}
}

func TestCPHMatchesTable4(t *testing.T) {
	st := stats(t, "CPH", 5)
	if st.Floors != 1 || st.Staircases != 0 {
		t.Fatalf("floors/stairs = %d/%d", st.Floors, st.Staircases)
	}
	if st.Length != 2000 || st.Width != 600 {
		t.Fatalf("extent = %g x %g", st.Length, st.Width)
	}
	if st.Partitions < 135 || st.Partitions > 160 {
		t.Fatalf("partitions = %d, want ~147", st.Partitions)
	}
	if st.Doors < 190 || st.Doors > 230 {
		t.Fatalf("doors = %d, want ~211", st.Doors)
	}
	if st.Hallways != cphMainN+cphSecN {
		t.Fatalf("hallways = %d, want 25", st.Hallways)
	}
	if st.Q2 != 2 {
		t.Fatalf("Q2 = %d, want 2", st.Q2)
	}
	if st.Max < 8 || st.Max > 14 {
		t.Fatalf("max #dv = %d, want ~12", st.Max)
	}
}

func TestSYNScalesWithFloors(t *testing.T) {
	s3 := stats(t, "SYN3", 6)
	s5 := stats(t, "SYN5", 6)
	if s5.Partitions <= s3.Partitions || s5.Doors <= s3.Doors {
		t.Fatal("SYN5 must be larger than SYN3")
	}
	// Roughly linear growth per floor.
	perFloor3 := float64(s3.Partitions) / 3
	perFloor5 := float64(s5.Partitions) / 5
	if perFloor5/perFloor3 > 1.1 || perFloor3/perFloor5 > 1.1 {
		t.Fatalf("per-floor partitions diverge: %g vs %g", perFloor3, perFloor5)
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("NOPE"); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestGetCaches(t *testing.T) {
	a := Get("CPH")
	b := Get("CPH")
	if a != b {
		t.Fatal("Get should cache")
	}
}

// TestDatasetsPassDeepCheck guards the generators: every benchmark venue
// must be geometrically and topologically clean (no overlapping partitions,
// doors on walls, full reachability).
func TestDatasetsPassDeepCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("builds every dataset")
	}
	for _, name := range Names() {
		info, err := Build(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if errs := info.Space.Check(); len(errs) != 0 {
			for _, e := range errs[:min(len(errs), 10)] {
				t.Errorf("%s: %v", name, e)
			}
			t.Fatalf("%s: %d problems", name, len(errs))
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSYNArbitraryFloors(t *testing.T) {
	info, err := Build("SYN2")
	if err != nil {
		t.Fatal(err)
	}
	if info.Space.Floors != 2 {
		t.Fatalf("floors = %d", info.Space.Floors)
	}
	if _, err := Build("SYN0"); err == nil {
		t.Fatal("SYN0 collides with nothing and must fail (0 floors)")
	}
	if _, err := Build("SYNx"); err == nil {
		t.Fatal("SYNx must fail")
	}
}
