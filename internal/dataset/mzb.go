package dataset

import (
	"fmt"

	"indoorsq/internal/geom"
	"indoorsq/internal/indoor"
)

// MZB builds a synthetic stand-in for the Menzies Building (Monash
// University): 17 long and narrow floors (125m x 35m) with a central
// corridor, a highly skewed door distribution (most rooms have exactly one
// door; one corridor section concentrates more than fifty doors — the
// "crucial partitions" the paper highlights), and two or four 5m stairways
// per adjacent floor pair.
//
// Variants control the hallway decomposition (task B7):
//
//	MzbDefault — corridor cut into 5 uneven pieces (one dense crucial piece)
//	MzbZero    — corridor kept as a single partition per floor
//	MzbDelta   — corridor cut into 11 pieces
type MzbVariant int

// MZB variants.
const (
	MzbDefault MzbVariant = iota
	MzbZero
	MzbDelta
)

const (
	mzbFloors   = 17
	mzbW        = 125.0
	mzbH        = 35.0
	mzbCorrY0   = 15.0
	mzbCorrY1   = 20.0
	mzbDenseEnd = 87.5 // dense-room section [0, 87.5]
	mzbDenseN   = 28   // dense rooms per side
	mzbSparseN  = 9    // sparse rooms per side
	mzbStairLen = 5.0
)

// mzbCuts returns the corridor cut positions for a variant.
func mzbCuts(variant MzbVariant) []float64 {
	switch variant {
	case MzbZero:
		return nil
	case MzbDelta:
		cuts := make([]float64, 0, 10)
		for i := 1; i <= 10; i++ {
			cuts = append(cuts, mzbW*float64(i)/11)
		}
		return cuts
	default:
		return []float64{mzbDenseEnd, 97, 106.5, 116}
	}
}

// mzbFloor adds one floor: the corridor pieces, the rooms and the per-floor
// doors; it returns a locator for corridor pieces.
func mzbFloor(b *indoor.Builder, fl int16, variant MzbVariant) func(geom.Point) indoor.PartitionID {
	cuts := mzbCuts(variant)
	xs := append([]float64{0}, cuts...)
	xs = append(xs, mzbW)
	ids := make([]indoor.PartitionID, 0, len(xs)-1)
	rects := make([]geom.Rect, 0, len(xs)-1)
	for i := 0; i+1 < len(xs); i++ {
		r := geom.R(xs[i], mzbCorrY0, xs[i+1], mzbCorrY1)
		rects = append(rects, r)
		ids = append(ids, b.AddHallway(fl, geom.RectPoly(r)))
	}
	for i := 0; i+1 < len(ids); i++ {
		d := b.AddVirtualDoor(geom.Pt(xs[i+1], (mzbCorrY0+mzbCorrY1)/2), fl)
		b.ConnectBoth(d, ids[i], ids[i+1])
	}
	locate := func(p geom.Point) indoor.PartitionID {
		for i, r := range rects {
			if r.Contains(p) {
				return ids[i]
			}
		}
		panic(fmt.Sprintf("dataset: no MZB corridor piece contains %v", p))
	}

	// Dense single-door rooms in [0, mzbDenseEnd].
	dw := mzbDenseEnd / mzbDenseN
	for i := 0; i < mzbDenseN; i++ {
		x0, x1 := float64(i)*dw, float64(i+1)*dw
		xm := (x0 + x1) / 2
		up := b.AddRoom(fl, geom.RectPoly(geom.R(x0, mzbCorrY1, x1, mzbH)))
		d := b.AddDoor(geom.Pt(xm, mzbCorrY1), fl)
		b.ConnectBoth(d, up, locate(geom.Pt(xm, mzbCorrY1)))
		dn := b.AddRoom(fl, geom.RectPoly(geom.R(x0, 0, x1, mzbCorrY0)))
		d2 := b.AddDoor(geom.Pt(xm, mzbCorrY0), fl)
		b.ConnectBoth(d2, dn, locate(geom.Pt(xm, mzbCorrY0)))
	}
	// Sparse rooms in [mzbDenseEnd, mzbW]; four upper slots are reserved
	// for stairwells (two per floor parity) and get no room.
	sw := (mzbW - mzbDenseEnd) / mzbSparseN
	for i := 0; i < mzbSparseN; i++ {
		x0 := mzbDenseEnd + float64(i)*sw
		x1 := x0 + sw
		xm := (x0 + x1) / 2
		if !mzbStairSlot(i) {
			up := b.AddRoom(fl, geom.RectPoly(geom.R(x0, mzbCorrY1, x1, mzbH)))
			d := b.AddDoor(geom.Pt(xm, mzbCorrY1), fl)
			b.ConnectBoth(d, up, locate(geom.Pt(xm, mzbCorrY1)))
		}
		dn := b.AddRoom(fl, geom.RectPoly(geom.R(x0, 0, x1, mzbCorrY0)))
		d2 := b.AddDoor(geom.Pt(xm, mzbCorrY0), fl)
		b.ConnectBoth(d2, dn, locate(geom.Pt(xm, mzbCorrY0)))
	}
	return locate
}

// mzbStairSlot reports whether sparse upper slot i is reserved for stairs.
func mzbStairSlot(i int) bool { return i == 1 || i == 3 || i == 5 || i == 7 }

// mzbStairs links floor fl to fl+1 with two stairways, alternating slots by
// floor parity.
func mzbStairs(b *indoor.Builder, fl int16, low, high func(geom.Point) indoor.PartitionID) {
	slots := []int{1, 5}
	if fl%2 == 1 {
		slots = []int{3, 7}
	}
	sw := (mzbW - mzbDenseEnd) / mzbSparseN
	for _, i := range slots {
		x0 := mzbDenseEnd + float64(i)*sw
		x1 := x0 + sw
		xm := (x0 + x1) / 2
		poly := geom.RectPoly(geom.R(x0, mzbCorrY1, x1, mzbH))
		st := b.AddStair(fl, fl+1, poly, mzbStairLen)
		p := geom.Pt(xm, mzbCorrY1)
		dLow := b.AddDoor(p, fl)
		b.ConnectBoth(dLow, low(p), st)
		dHigh := b.AddDoor(p, fl+1)
		b.ConnectBoth(dHigh, high(p), st)
	}
}

// MZB builds the Menzies-Building-like dataset with the given decomposition
// variant and floor count (pass mzbFloors upstream; exposed for tests).
func MZB(floors int, variant MzbVariant) (*indoor.Space, error) {
	if floors < 1 {
		return nil, fmt.Errorf("dataset: MZB needs >= 1 floor")
	}
	name := "MZB"
	switch variant {
	case MzbZero:
		name = "MZB0"
	case MzbDelta:
		name = "MZBD"
	}
	b := indoor.NewBuilder(name, floors)
	locs := make([]func(geom.Point) indoor.PartitionID, floors)
	for fl := 0; fl < floors; fl++ {
		locs[fl] = mzbFloor(b, int16(fl), variant)
	}
	for fl := 0; fl+1 < floors; fl++ {
		mzbStairs(b, int16(fl), locs[fl], locs[fl+1])
	}
	return b.Build()
}

// MZBFull builds the full 17-floor dataset.
func MZBFull(variant MzbVariant) (*indoor.Space, error) { return MZB(mzbFloors, variant) }
