package dataset

import (
	"fmt"

	"indoorsq/internal/decomp"
	"indoorsq/internal/geom"
	"indoorsq/internal/indoor"
)

// SYN builds the synthetic n-floor building of Sec. 5.1: each floor is a
// 1368m x 1368m plan with a comb-shaped corridor (20 branches), 100 rooms,
// and four 20m stairways to the next floor. The default topology variant
// decomposes the corridor into 41 rectangular pieces joined by virtual
// doors, exactly as Table 4 reports.
//
// Topology variants (Table 4 / task B6-B7):
//
//	SynDefault — corridor decomposed, default door set
//	SynMinus   — fewer doors (rooms have a single door each)
//	SynPlus    — more doors (extra room-room and room-corridor doors)
//	SynZero    — corridor not decomposed (one concave hallway per floor)
type SynVariant int

// SYN variants.
const (
	SynDefault SynVariant = iota
	SynMinus
	SynPlus
	SynZero
)

// Geometry constants of one SYN floor (meters).
const (
	synSize       = 1368.0
	synBranches   = 20
	synPitch      = 68.0
	synBranchW    = 28.0
	synBranchLen  = 500.0
	synCorrY0     = 670.0
	synCorrY1     = 698.0
	synRoomW      = 20.0
	synRoomDepth  = 250.0
	synTopDepth   = 170.0
	synStairLen   = 20.0
	synStairDepth = 60.0
)

// synCrucialBranch designates the branches whose corridor slab keeps all
// five room doors and therefore becomes a crucial partition (8 per floor,
// matching Table 4's "8n" crucial partitions for SYN).
func synCrucialBranch(k int) bool {
	return k%5 == 0 || k%5 == 2
}

// synBranchX returns the x-extent of branch k.
func synBranchX(k int) (bx0, bx1 float64) {
	return float64(k)*synPitch + 20, float64(k)*synPitch + 48
}

// synCombPolygon builds the CCW comb-shaped corridor outline: even branches
// point up, odd branches point down.
func synCombPolygon() geom.Polygon {
	var p geom.Polygon
	// East along the bottom edge with down-teeth at odd branches.
	p = append(p, geom.Pt(0, synCorrY0))
	for k := 1; k < synBranches; k += 2 {
		bx0, bx1 := synBranchX(k)
		y := synCorrY0 - synBranchLen
		p = append(p,
			geom.Pt(bx0, synCorrY0), geom.Pt(bx0, y),
			geom.Pt(bx1, y), geom.Pt(bx1, synCorrY0))
	}
	p = append(p, geom.Pt(synSize, synCorrY0), geom.Pt(synSize, synCorrY1))
	// West along the top edge with up-teeth at even branches.
	for k := synBranches - 2; k >= 0; k -= 2 {
		bx0, bx1 := synBranchX(k)
		y := synCorrY1 + synBranchLen
		p = append(p,
			geom.Pt(bx1, synCorrY1), geom.Pt(bx1, y),
			geom.Pt(bx0, y), geom.Pt(bx0, synCorrY1))
	}
	p = append(p, geom.Pt(0, synCorrY1))
	return p
}

// synFloorHalls adds the corridor partitions of one floor and returns a
// locator mapping a point on the corridor boundary to its hallway piece.
func synFloorHalls(b *indoor.Builder, fl int16, variant SynVariant) (func(geom.Point) indoor.PartitionID, error) {
	poly := synCombPolygon()
	if variant == SynZero {
		hall := b.AddHallway(fl, poly)
		return func(geom.Point) indoor.PartitionID { return hall }, nil
	}
	res, err := decomp.Decompose(poly)
	if err != nil {
		return nil, fmt.Errorf("dataset: SYN corridor decomposition: %w", err)
	}
	ids := make([]indoor.PartitionID, len(res.Pieces))
	for i, r := range res.Pieces {
		ids[i] = b.AddHallway(fl, geom.RectPoly(r))
	}
	for _, j := range res.Junctions {
		d := b.AddVirtualDoor(j.P, fl)
		b.ConnectBoth(d, ids[j.A], ids[j.B])
	}
	rects := res.Pieces
	locate := func(p geom.Point) indoor.PartitionID {
		for i, r := range rects {
			if r.Contains(p) {
				return ids[i]
			}
		}
		panic(fmt.Sprintf("dataset: no SYN corridor piece contains %v", p))
	}
	return locate, nil
}

// synFloorRooms adds the 100 rooms of one floor with their doors.
func synFloorRooms(b *indoor.Builder, fl int16, variant SynVariant, hallAt func(geom.Point) indoor.PartitionID) {
	addDoor := func(p geom.Point, v1, v2 indoor.PartitionID) {
		d := b.AddDoor(p, fl)
		b.ConnectBoth(d, v1, v2)
	}
	for k := 0; k < synBranches; k++ {
		bx0, bx1 := synBranchX(k)
		up := k%2 == 0
		// Oriented helpers: for up branches rooms grow in +y from the
		// corridor top; for down branches in -y from the corridor bottom.
		base := synCorrY1
		dir := 1.0
		if !up {
			base = synCorrY0
			dir = -1
		}
		yy := func(off float64) float64 { return base + dir*off }
		rect := func(x0, x1, off0, off1 float64) geom.Polygon {
			y0, y1 := yy(off0), yy(off1)
			if y0 > y1 {
				y0, y1 = y1, y0
			}
			return geom.RectPoly(geom.R(x0, y0, x1, y1))
		}

		// Two stacked side rooms on each side of the branch. In crucial
		// branches all four side rooms open onto the branch slab; elsewhere
		// the lower rooms open onto the corridor band beside the branch,
		// spreading their doors over the gap slabs.
		crucial := synCrucialBranch(k)
		var side [2][2]indoor.PartitionID // [left/right][lower/upper]
		for s, x := range [2][2]float64{{bx0 - synRoomW, bx0}, {bx1, bx1 + synRoomW}} {
			for lvl := 0; lvl < 2; lvl++ {
				off0 := float64(lvl) * synRoomDepth
				room := b.AddRoom(fl, rect(x[0], x[1], off0, off0+synRoomDepth))
				side[s][lvl] = room
				var doorP geom.Point
				if lvl == 0 && !crucial {
					// Lower room: door onto the corridor band.
					doorP = geom.Pt((x[0]+x[1])/2, base)
				} else {
					doorX := bx0
					if s == 1 {
						doorX = bx1
					}
					doorP = geom.Pt(doorX, (yy(off0)+yy(off0+synRoomDepth))/2)
				}
				addDoor(doorP, room, hallAt(doorP))
			}
		}
		// Top (or bottom) room across the branch tip.
		tip := yy(synBranchLen)
		top := b.AddRoom(fl, rect(bx0-synRoomW, bx1+synRoomW, synBranchLen, synBranchLen+synTopDepth))
		tipDoor := geom.Pt((bx0+bx1)/2, tip)
		addDoor(tipDoor, top, hallAt(tipDoor))

		if variant != SynMinus {
			// Stacked-room doors.
			addDoor(geom.Pt(bx0-synRoomW/2, yy(synRoomDepth)), side[0][0], side[0][1])
			addDoor(geom.Pt(bx1+synRoomW/2, yy(synRoomDepth)), side[1][0], side[1][1])
			// Tip room to the upper-left side room.
			addDoor(geom.Pt(bx0-synRoomW/2, tip), side[0][1], top)
		}
		if variant == SynPlus {
			// Tip room to the upper-right side room.
			addDoor(geom.Pt(bx1+synRoomW/2, tip), side[1][1], top)
			// Second exits for the lower side rooms: onto whichever corridor
			// slab they are not yet connected to.
			for s, xm := range [2]float64{bx0 - synRoomW/2, bx1 + synRoomW/2} {
				var doorP geom.Point
				if crucial {
					doorP = geom.Pt(xm, base)
				} else {
					doorX := bx0
					if s == 1 {
						doorX = bx1
					}
					doorP = geom.Pt(doorX, (yy(0)+yy(synRoomDepth))/2)
				}
				addDoor(doorP, side[s][0], hallAt(doorP))
			}
		}
	}
}

// synStairs adds four stairways between floor fl and fl+1, alternating
// positions by floor parity so consecutive stairwells do not overlap.
func synStairs(b *indoor.Builder, fl int16, hallAtLow, hallAtHigh func(geom.Point) indoor.PartitionID) {
	slots := []int{2, 6, 10, 14}
	if fl%2 == 1 {
		slots = []int{4, 8, 12, 16}
	}
	for _, k := range slots {
		x0 := float64(k)*synPitch - 20
		x1 := float64(k) * synPitch
		poly := geom.RectPoly(geom.R(x0, synCorrY1, x1, synCorrY1+synStairDepth))
		st := b.AddStair(fl, fl+1, poly, synStairLen)
		pLow := geom.Pt((x0+x1)/2, synCorrY1)
		dLow := b.AddDoor(pLow, fl)
		b.ConnectBoth(dLow, hallAtLow(pLow), st)
		dHigh := b.AddDoor(pLow, fl+1)
		b.ConnectBoth(dHigh, hallAtHigh(pLow), st)
	}
}

// SYN builds the synthetic building with n floors and the given topology
// variant.
func SYN(n int, variant SynVariant) (*indoor.Space, error) {
	if n < 1 {
		return nil, fmt.Errorf("dataset: SYN needs >= 1 floor, got %d", n)
	}
	name := fmt.Sprintf("SYN%d", n)
	switch variant {
	case SynMinus:
		name += "-"
	case SynPlus:
		name += "+"
	case SynZero:
		name += "0"
	}
	b := indoor.NewBuilder(name, n)
	locators := make([]func(geom.Point) indoor.PartitionID, n)
	for fl := 0; fl < n; fl++ {
		loc, err := synFloorHalls(b, int16(fl), variant)
		if err != nil {
			return nil, err
		}
		locators[fl] = loc
		synFloorRooms(b, int16(fl), variant, loc)
	}
	for fl := 0; fl+1 < n; fl++ {
		synStairs(b, int16(fl), locators[fl], locators[fl+1])
	}
	return b.Build()
}
