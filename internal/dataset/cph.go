package dataset

import (
	"fmt"

	"indoorsq/internal/geom"
	"indoorsq/internal/indoor"
)

// CPH builds a synthetic stand-in for the ground floor of Copenhagen
// Airport: a single long, narrow, open floor (2000m x 600m) with a wide
// main hall and a secondary concourse, joined through a band of gate/office
// rooms; door density is low and regular (Q2 = 2, max ~12), matching the
// open character the paper describes.
const (
	cphW      = 2000.0
	cphH      = 600.0
	cphMainY0 = 250.0
	cphMainY1 = 350.0
	cphMainN  = 13 // main hall pieces
	cphSecY0  = 100.0
	cphSecY1  = 150.0
	cphSecN   = 12 // secondary hall pieces
	cphMidN   = 24 // rooms joining the two halls
	cphUpperN = 72 // rooms above the main hall
	cphLowerN = 24 // rooms below the secondary hall
)

// cphChain adds a chain of hallway pieces spanning [0, cphW] x [y0, y1].
func cphChain(b *indoor.Builder, n int, y0, y1 float64) (func(geom.Point) indoor.PartitionID, []indoor.PartitionID) {
	ids := make([]indoor.PartitionID, n)
	rects := make([]geom.Rect, n)
	for i := 0; i < n; i++ {
		r := geom.R(cphW*float64(i)/float64(n), y0, cphW*float64(i+1)/float64(n), y1)
		rects[i] = r
		ids[i] = b.AddHallway(0, geom.RectPoly(r))
		if i > 0 {
			d := b.AddVirtualDoor(geom.Pt(r.MinX, (y0+y1)/2), 0)
			b.ConnectBoth(d, ids[i-1], ids[i])
		}
	}
	locate := func(p geom.Point) indoor.PartitionID {
		for i, r := range rects {
			if r.Contains(p) {
				return ids[i]
			}
		}
		panic(fmt.Sprintf("dataset: no CPH hall piece contains %v", p))
	}
	return locate, ids
}

// CPH builds the airport dataset (always a single floor).
func CPH() (*indoor.Space, error) {
	b := indoor.NewBuilder("CPH", 1)
	mainAt, _ := cphChain(b, cphMainN, cphMainY0, cphMainY1)
	secAt, _ := cphChain(b, cphSecN, cphSecY0, cphSecY1)

	// Upper rooms: one door onto the main hall; every third adjacent pair
	// is additionally interconnected.
	uw := cphW / cphUpperN
	var prevUpper indoor.PartitionID = indoor.NoPartition
	for i := 0; i < cphUpperN; i++ {
		x0, x1 := float64(i)*uw, float64(i+1)*uw
		room := b.AddRoom(0, geom.RectPoly(geom.R(x0, cphMainY1, x1, cphH)))
		p := geom.Pt((x0+x1)/2, cphMainY1)
		d := b.AddDoor(p, 0)
		b.ConnectBoth(d, room, mainAt(p))
		if prevUpper != indoor.NoPartition && i%5 == 1 {
			nd := b.AddDoor(geom.Pt(x0, (cphMainY1+cphH)/2), 0)
			b.ConnectBoth(nd, prevUpper, room)
		}
		prevUpper = room
	}

	// Middle rooms: doors to both halls.
	mw := cphW / cphMidN
	for i := 0; i < cphMidN; i++ {
		x0, x1 := float64(i)*mw, float64(i+1)*mw
		xm := (x0 + x1) / 2
		room := b.AddRoom(0, geom.RectPoly(geom.R(x0, cphSecY1, x1, cphMainY0)))
		dTop := b.AddDoor(geom.Pt(xm, cphMainY0), 0)
		b.ConnectBoth(dTop, room, mainAt(geom.Pt(xm, cphMainY0)))
		dBot := b.AddDoor(geom.Pt(xm, cphSecY1), 0)
		b.ConnectBoth(dBot, room, secAt(geom.Pt(xm, cphSecY1)))
	}

	// Lower rooms: one door onto the secondary hall plus neighbor doors.
	lw := cphW / cphLowerN
	var prevLower indoor.PartitionID = indoor.NoPartition
	for i := 0; i < cphLowerN; i++ {
		x0, x1 := float64(i)*lw, float64(i+1)*lw
		xm := (x0 + x1) / 2
		room := b.AddRoom(0, geom.RectPoly(geom.R(x0, 0, x1, cphSecY0)))
		d := b.AddDoor(geom.Pt(xm, cphSecY0), 0)
		b.ConnectBoth(d, room, secAt(geom.Pt(xm, cphSecY0)))
		if prevLower != indoor.NoPartition {
			nd := b.AddDoor(geom.Pt(x0, cphSecY0/2), 0)
			b.ConnectBoth(nd, prevLower, room)
		}
		prevLower = room
	}
	return b.Build()
}
