// Package dataset builds the four benchmark venues of the paper's Sec. 5.1
// (SYN, MZB, HSM, CPH) and their topology/decomposition variants (Table 4).
//
// The real floorplans used by the paper (a mall floorplan for SYN floors,
// the Menzies Building, the Hangzhou Shopping Mall, and Copenhagen Airport)
// are not redistributable; each generator here is a parametric synthetic
// equivalent engineered to match the published dataset statistics — floor
// count, partition/door/hallway counts, extents, and the #dv quartile
// profile — which are the only properties the evaluated algorithms depend
// on. EXPERIMENTS.md records generated-vs-published statistics.
package dataset

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"indoorsq/internal/indoor"
)

// Info bundles a benchmark dataset with its evaluation parameters from
// Table 5 (defaults in bold there: |O| = 1000, r = 600 (MZB 60), k = 10,
// s2t = 1500 (MZB 90)).
type Info struct {
	Name  string
	Space *indoor.Space
	// Gamma is the tuned crucial-partition threshold for IP/VIP-TREE
	// construction (Sec. 5.3: SYN 6, MZB 4, HSM 7, CPH 5).
	Gamma int
	// RValues are the B3 range-query radii; DefaultR is the bold default.
	RValues  []float64
	DefaultR float64
	// S2TValues are the B5 source-target distances; DefaultS2T the default.
	S2TValues  []float64
	DefaultS2T float64
}

var (
	largeR   = []float64{200, 400, 600, 800, 1000}
	smallR   = []float64{20, 40, 60, 80, 100}
	largeS2T = []float64{1100, 1300, 1500, 1700, 1900}
	smallS2T = []float64{30, 60, 90, 120, 150}
)

// Names lists every dataset understood by Build, in presentation order.
func Names() []string {
	return []string{
		"SYN3", "SYN5", "SYN7", "SYN9",
		"SYN5-", "SYN5+", "SYN50",
		"MZB", "MZB0", "MZBD",
		"HSM", "CPH",
	}
}

// Build constructs the named dataset. Recognized names are those returned
// by Names.
func Build(name string) (*Info, error) {
	info := &Info{Name: name}
	var sp *indoor.Space
	var err error
	switch name {
	case "SYN5-":
		sp, err = SYN(5, SynMinus)
		info.Gamma = 6
	case "SYN5+":
		sp, err = SYN(5, SynPlus)
		info.Gamma = 6
	case "SYN50":
		sp, err = SYN(5, SynZero)
		info.Gamma = 6
	case "MZB":
		sp, err = MZBFull(MzbDefault)
		info.Gamma = 4
	case "MZB0":
		sp, err = MZBFull(MzbZero)
		info.Gamma = 4
	case "MZBD":
		sp, err = MZBFull(MzbDelta)
		info.Gamma = 4
	case "HSM":
		sp, err = HSMFull()
		info.Gamma = 7
	case "CPH":
		sp, err = CPH()
		info.Gamma = 5
	default:
		// SYN<n> for any floor count, e.g. SYN3, SYN12.
		if suffix, ok := strings.CutPrefix(name, "SYN"); ok {
			if n, perr := strconv.Atoi(suffix); perr == nil && n >= 1 && n <= 99 {
				sp, err = SYN(n, SynDefault)
				info.Gamma = 6
				break
			}
		}
		return nil, fmt.Errorf("dataset: unknown dataset %q", name)
	}
	if err != nil {
		return nil, err
	}
	info.Space = sp
	if name == "MZB" || name == "MZB0" || name == "MZBD" {
		info.RValues, info.DefaultR = smallR, 60
		info.S2TValues, info.DefaultS2T = smallS2T, 90
	} else {
		info.RValues, info.DefaultR = largeR, 600
		info.S2TValues, info.DefaultS2T = largeS2T, 1500
	}
	return info, nil
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*Info{}
)

// Get returns the named dataset, building it once and caching the result.
// It panics on unknown names; use Build for error handling.
func Get(name string) *Info {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if info, ok := cache[name]; ok {
		return info
	}
	info, err := Build(name)
	if err != nil {
		panic(err)
	}
	cache[name] = info
	return info
}
