package dataset

import (
	"fmt"

	"indoorsq/internal/geom"
	"indoorsq/internal/indoor"
)

// HSM builds a synthetic stand-in for the Hangzhou Shopping Mall: a 7-floor
// 2700m x 2000m venue with a regular corridor grid (two long horizontal
// corridors linked by a vertical connector), rows of shops with medium door
// density (most shops have 3-5 doors: one or two onto the corridor plus
// doors to their neighbors), and ten stairways per adjacent floor pair.
const (
	hsmFloors    = 7
	hsmW         = 2700.0
	hsmH         = 2000.0
	hsmC1Y0      = 450.0
	hsmC1Y1      = 500.0
	hsmC2Y0      = 1500.0
	hsmC2Y1      = 1550.0
	hsmPieces    = 8 // pieces per horizontal corridor
	hsmShops     = 30
	hsmShopDepth = 450.0
	hsmVertX0    = 1485.0
	hsmVertX1    = 1535.0
	hsmStairLen  = 6.0
)

// hsmCorridors adds one floor's corridor pieces and returns a locator.
func hsmCorridors(b *indoor.Builder, fl int16) func(geom.Point) indoor.PartitionID {
	type piece struct {
		r  geom.Rect
		id indoor.PartitionID
	}
	var pieces []piece
	addChain := func(y0, y1 float64) {
		var prev indoor.PartitionID = indoor.NoPartition
		for i := 0; i < hsmPieces; i++ {
			x0 := hsmW * float64(i) / hsmPieces
			x1 := hsmW * float64(i+1) / hsmPieces
			r := geom.R(x0, y0, x1, y1)
			id := b.AddHallway(fl, geom.RectPoly(r))
			pieces = append(pieces, piece{r, id})
			if prev != indoor.NoPartition {
				d := b.AddVirtualDoor(geom.Pt(x0, (y0+y1)/2), fl)
				b.ConnectBoth(d, prev, id)
			}
			prev = id
		}
	}
	addChain(hsmC1Y0, hsmC1Y1)
	addChain(hsmC2Y0, hsmC2Y1)

	// Vertical connector between the two corridors, two pieces.
	vr1 := geom.R(hsmVertX0, hsmC1Y1, hsmVertX1, (hsmC1Y1+hsmC2Y0)/2)
	vr2 := geom.R(hsmVertX0, (hsmC1Y1+hsmC2Y0)/2, hsmVertX1, hsmC2Y0)
	v1 := b.AddHallway(fl, geom.RectPoly(vr1))
	v2 := b.AddHallway(fl, geom.RectPoly(vr2))
	pieces = append(pieces, piece{vr1, v1}, piece{vr2, v2})
	dv := b.AddVirtualDoor(geom.Pt((hsmVertX0+hsmVertX1)/2, (hsmC1Y1+hsmC2Y0)/2), fl)
	b.ConnectBoth(dv, v1, v2)

	locate := func(p geom.Point) indoor.PartitionID {
		for _, pc := range pieces {
			if pc.r.Contains(p) {
				return pc.id
			}
		}
		panic(fmt.Sprintf("dataset: no HSM corridor piece contains %v", p))
	}
	// Join the connector ends to the horizontal corridors.
	xm := (hsmVertX0 + hsmVertX1) / 2
	dLow := b.AddVirtualDoor(geom.Pt(xm, hsmC1Y1), fl)
	b.ConnectBoth(dLow, v1, locate(geom.Pt(xm, hsmC1Y1-1)))
	dHigh := b.AddVirtualDoor(geom.Pt(xm, hsmC2Y0), fl)
	b.ConnectBoth(dHigh, v2, locate(geom.Pt(xm, hsmC2Y0+1)))
	return locate
}

// hsmRow describes one shop row: its y extent and the corridor wall side.
type hsmRow struct {
	y0, y1    float64
	corridorY float64 // y of the wall shared with the corridor
	skipVert  bool    // drop slots covered by the vertical connector
	stairs    bool    // row hosts the stairwell slots
}

func hsmRows() []hsmRow {
	return []hsmRow{
		{y0: hsmC1Y0 - hsmShopDepth, y1: hsmC1Y0, corridorY: hsmC1Y0, stairs: true},
		{y0: hsmC1Y1, y1: hsmC1Y1 + hsmShopDepth, corridorY: hsmC1Y1, skipVert: true},
		{y0: hsmC2Y0 - hsmShopDepth, y1: hsmC2Y0, corridorY: hsmC2Y0, skipVert: true},
		{y0: hsmC2Y1, y1: hsmC2Y1 + hsmShopDepth, corridorY: hsmC2Y1},
	}
}

// hsmStairSlot reports whether slot i of the stair row is reserved.
func hsmStairSlot(i int) bool {
	switch i {
	case 1, 4, 7, 10, 13, 16, 19, 22, 25, 28:
		return true
	}
	return false
}

// hsmShopRows adds the shop rows of one floor.
func hsmShopRows(b *indoor.Builder, fl int16, locate func(geom.Point) indoor.PartitionID) {
	w := hsmW / hsmShops
	for _, row := range hsmRows() {
		var prev indoor.PartitionID = indoor.NoPartition
		var prevEdge float64
		for i := 0; i < hsmShops; i++ {
			x0, x1 := float64(i)*w, float64(i+1)*w
			if row.skipVert && x1 > hsmVertX0 && x0 < hsmVertX1 {
				prev = indoor.NoPartition
				continue
			}
			if row.stairs && hsmStairSlot(i) {
				prev = indoor.NoPartition
				continue
			}
			shop := b.AddRoom(fl, geom.RectPoly(geom.R(x0, row.y0, x1, row.y1)))
			// Two corridor doors per shop.
			p1 := geom.Pt(x0+w/4, row.corridorY)
			d1 := b.AddDoor(p1, fl)
			b.ConnectBoth(d1, shop, locate(p1))
			p2 := geom.Pt(x0+3*w/4, row.corridorY)
			d2 := b.AddDoor(p2, fl)
			b.ConnectBoth(d2, shop, locate(p2))
			// Neighbor door to the previous shop for two of three walls.
			if prev != indoor.NoPartition && i%3 != 0 {
				nd := b.AddDoor(geom.Pt(prevEdge, (row.y0+row.y1)/2), fl)
				b.ConnectBoth(nd, prev, shop)
			}
			prev = shop
			prevEdge = x1
		}
	}
}

// hsmStairs links floor fl to fl+1 with ten stairways in the reserved slots
// of the stair row, alternating slot halves by parity.
func hsmStairs(b *indoor.Builder, fl int16, low, high func(geom.Point) indoor.PartitionID) {
	even := []int{1, 7, 13, 19, 25}
	odd := []int{4, 10, 16, 22, 28}
	slots := even
	if fl%2 == 1 {
		slots = odd
	}
	w := hsmW / hsmShops
	row := hsmRows()[0]
	for _, i := range slots {
		x0, x1 := float64(i)*w, float64(i+1)*w
		poly := geom.RectPoly(geom.R(x0, row.y0, x1, row.y1))
		st := b.AddStair(fl, fl+1, poly, hsmStairLen)
		p := geom.Pt((x0+x1)/2, row.corridorY)
		dl := b.AddDoor(p, fl)
		b.ConnectBoth(dl, low(p), st)
		dh := b.AddDoor(p, fl+1)
		b.ConnectBoth(dh, high(p), st)
	}
}

// HSM builds the shopping-mall dataset with the given floor count.
func HSM(floors int) (*indoor.Space, error) {
	if floors < 1 {
		return nil, fmt.Errorf("dataset: HSM needs >= 1 floor")
	}
	b := indoor.NewBuilder("HSM", floors)
	locs := make([]func(geom.Point) indoor.PartitionID, floors)
	for fl := 0; fl < floors; fl++ {
		locs[fl] = hsmCorridors(b, int16(fl))
		hsmShopRows(b, int16(fl), locs[fl])
	}
	for fl := 0; fl+1 < floors; fl++ {
		hsmStairs(b, int16(fl), locs[fl], locs[fl+1])
	}
	return b.Build()
}

// HSMFull builds the full 7-floor dataset.
func HSMFull() (*indoor.Space, error) { return HSM(hsmFloors) }
