package traverse_test

import (
	"math"
	"testing"

	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/testspaces"
	"indoorsq/internal/traverse"
)

// newGraph builds a traversal graph with sequential-scan host lookup and
// on-the-fly distances (direction-checked).
func newGraph(sp *indoor.Space, prune bool) *traverse.Graph {
	d2d := func(v indoor.PartitionID, di, dj indoor.DoorID, _ *query.Stats) float64 {
		// Honour direction like the engines do.
		enterOK, leaveOK := false, false
		for _, d := range sp.Partition(v).Enter {
			if d == di {
				enterOK = true
				break
			}
		}
		for _, d := range sp.Partition(v).Leave {
			if d == dj {
				leaveOK = true
				break
			}
		}
		if di == dj {
			return 0
		}
		if !enterOK || !leaveOK {
			return math.Inf(1)
		}
		return sp.WithinDoors(v, di, dj)
	}
	return traverse.New(sp, sp.HostPartition, d2d, prune)
}

func TestSPDDirect(t *testing.T) {
	f := testspaces.NewStrip()
	g := newGraph(f.Space, false)
	var st query.Stats
	path, err := g.SPD(indoor.At(1, 5, 0), indoor.At(19, 5, 0), &st)
	if err != nil || math.Abs(path.Dist-18) > 1e-9 {
		t.Fatalf("SPD = %v, %v", path, err)
	}
}

func TestPruneOnOffSameAnswers(t *testing.T) {
	f := testspaces.NewStrip()
	plain := newGraph(f.Space, false)
	pruned := newGraph(f.Space, true)
	store := query.NewObjectStore(f.Space, []query.Object{
		{ID: 1, Loc: indoor.At(2.5, 9, 0), Part: f.R1},
		{ID: 2, Loc: indoor.At(17.5, 9, 0), Part: f.R4},
		{ID: 3, Loc: indoor.At(10, 5, 0), Part: f.Hall},
	})
	var st query.Stats
	p := indoor.At(2.5, 8, 0)
	for _, r := range []float64{1, 5, 12, 100} {
		a, err1 := plain.Range(store, p, r, &st)
		b, err2 := pruned.Range(store, p, r, &st)
		if err1 != nil || err2 != nil || len(a) != len(b) {
			t.Fatalf("r=%g: %v/%v vs %v/%v", r, a, err1, b, err2)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("r=%g: prune changed answers: %v vs %v", r, a, b)
			}
		}
	}
	for _, k := range []int{1, 2, 3} {
		a, _ := plain.KNN(store, p, k, &st)
		b, _ := pruned.KNN(store, p, k, &st)
		if len(a) != len(b) {
			t.Fatalf("k=%d: %v vs %v", k, a, b)
		}
		for i := range a {
			if math.Abs(a[i].Dist-b[i].Dist) > 1e-9 {
				t.Fatalf("k=%d: prune changed distances", k)
			}
		}
	}
}

func TestWithFilterRestrictsKNN(t *testing.T) {
	f := testspaces.NewStrip()
	g := newGraph(f.Space, false)
	store := query.NewObjectStore(f.Space, []query.Object{
		{ID: 1, Loc: indoor.At(2.5, 9, 0), Part: f.R1},
		{ID: 2, Loc: indoor.At(7.5, 9, 0), Part: f.R2},
	})
	var st query.Stats
	p := indoor.At(2.5, 8, 0)
	// Unfiltered: nearest is 1.
	nn, err := g.KNN(store, p, 1, &st)
	if err != nil || nn[0].ID != 1 {
		t.Fatalf("base KNN = %v, %v", nn, err)
	}
	// Filter out object 1: nearest becomes 2.
	fg := g.WithFilter(func(id int32) bool { return id != 1 })
	nn, err = fg.KNN(store, p, 1, &st)
	if err != nil || len(nn) != 1 || nn[0].ID != 2 {
		t.Fatalf("filtered KNN = %v, %v", nn, err)
	}
	// Original graph unaffected (WithFilter copies).
	nn, _ = g.KNN(store, p, 1, &st)
	if nn[0].ID != 1 {
		t.Fatal("WithFilter mutated the base graph")
	}
}

func TestWithOpenBlocksSeedsAndTails(t *testing.T) {
	f := testspaces.NewStrip()
	g := newGraph(f.Space, false)
	var st query.Stats
	p := indoor.At(2.5, 8, 0) // R1, only door D1
	q := indoor.At(10, 5, 0)  // hall

	closed := g.WithOpen(func(d indoor.DoorID) bool { return d != f.D1 })
	if _, err := closed.SPD(p, q, &st); err != query.ErrUnreachable {
		t.Fatalf("closed seed door: err = %v", err)
	}
	if _, err := closed.SPD(q, p, &st); err != query.ErrUnreachable {
		t.Fatalf("closed tail door: err = %v", err)
	}
	// Same-partition queries survive closed doors.
	path, err := closed.SPD(p, indoor.At(4, 9, 0), &st)
	if err != nil || path.Dist <= 0 {
		t.Fatalf("same-partition with closed doors: %v, %v", path, err)
	}
}

func TestNVDBoundedByDoors(t *testing.T) {
	sp := testspaces.RandomGrid(4, 5, 5, 2, 8, 0.1)
	g := newGraph(sp, false)
	store := query.NewObjectStore(sp, nil)
	var st query.Stats
	if _, err := g.Range(store, indoor.At(5, 5, 0), 1e9, &st); err != nil {
		t.Fatal(err)
	}
	if st.VisitedDoors > sp.NumDoors() {
		t.Fatalf("NVD %d exceeds total doors %d", st.VisitedDoors, sp.NumDoors())
	}
	if st.VisitedDoors == 0 {
		t.Fatal("unbounded range should visit doors")
	}
}
