// Package traverse implements the Dijkstra-style door-graph expansion shared
// by the graph-based engines (IDMODEL and CINDEX): range query and kNN query
// per Algorithms 1–2 of the paper's Appendix, and the fused shortest
// path/distance query. The two engines differ only in how they locate the
// host partition (sequential scan vs. R-tree) and how they obtain
// door-to-door distances within a partition (precomputed fd2d arrays vs.
// on-the-fly computation over inter-partition links); both are injected.
package traverse

import (
	"math"
	"sort"
	"sync"

	"indoorsq/internal/indoor"
	"indoorsq/internal/obs"
	"indoorsq/internal/pq"
	"indoorsq/internal/query"
	"indoorsq/internal/reach"
)

// D2DFunc returns the distance from door di to door dj through partition v,
// honouring direction (di must be enterable into v, dj leaveable from v),
// or +Inf when the move is impossible. The stats accumulator rides along so
// cache-backed implementations can report hit/miss effectiveness per query;
// st may be nil, and implementations that do no caching ignore it.
type D2DFunc func(v indoor.PartitionID, di, dj indoor.DoorID, st *query.Stats) float64

// HostFunc locates the partition hosting a point.
type HostFunc func(p indoor.Point) (indoor.PartitionID, bool)

// Graph drives door-graph query processing over a space.
type Graph struct {
	sp   *indoor.Space
	host HostFunc
	d2d  D2DFunc
	// euclidPrune enables the R-tree style Euclidean lower-bound check on
	// partitions before their object buckets are scanned (CINDEX only; the
	// paper observes it rarely helps under indoor topology, Sec. 6.2 B5).
	euclidPrune bool
	// open filters doors for temporal-variation queries (Sec. 7); nil means
	// every door is traversable.
	open func(indoor.DoorID) bool
	// filter restricts kNN candidates by object id (keyword extension);
	// nil accepts everything.
	filter func(id int32) bool
	// reach is the SCC condensation + downstream spatial summaries used to
	// prune expansion (nil disables pruning). It must be built over an edge
	// superset of this graph's traversable edges — for a door-filtered copy
	// (WithOpen), either a summary built under the same filter or one of
	// the unfiltered graph (closing doors only removes edges, so the
	// unfiltered summary stays conservative).
	reach *reach.Reach
	// states pools per-query Dijkstra working sets. The pool pointer is
	// shared by WithOpen/WithFilter copies, which traverse the same space
	// and therefore need identically-sized states.
	states *sync.Pool
}

// New returns a traversal graph. host and d2d must not be nil.
func New(sp *indoor.Space, host HostFunc, d2d D2DFunc, euclidPrune bool) *Graph {
	return &Graph{sp: sp, host: host, d2d: d2d, euclidPrune: euclidPrune, states: &sync.Pool{}}
}

// WithOpen returns a copy of g that only traverses doors for which open
// reports true — the temporal-variation extension of Sec. 7: closed doors
// are filtered from the base graph at query time, with no precomputed state
// to invalidate (which is why only the graph-based engines support it).
func (g *Graph) WithOpen(open func(indoor.DoorID) bool) *Graph {
	c := *g
	c.open = open
	return &c
}

// WithReach returns a copy of g that prunes expansion with the given
// reachability summary: SPD fails fast (or skips the sweep) when the target
// partition is provably door-unreachable, and every relaxation skips head
// doors whose reachable region cannot contribute. Answers are bit-identical
// to the unpruned graph; only visited-door counts and latency change. A nil
// summary disables pruning.
func (g *Graph) WithReach(r *reach.Reach) *Graph {
	c := *g
	c.reach = r
	return &c
}

// Reach returns the attached reachability summary (nil when disabled).
func (g *Graph) Reach() *reach.Reach { return g.reach }

// usable reports whether door d may be traversed under the current filter.
func (g *Graph) usable(d indoor.DoorID) bool {
	return g.open == nil || g.open(d)
}

// accept reports whether object id passes the current candidate filter.
func (g *Graph) accept(id int32) bool {
	return g.filter == nil || g.filter(id)
}

// WithFilter returns a copy of g whose kNN only considers objects accepted
// by the predicate — the building block of boolean keyword queries
// (Sec. 7).
func (g *Graph) WithFilter(accept func(id int32) bool) *Graph {
	c := *g
	c.filter = accept
	return &c
}

// state is the per-query Dijkstra working set. Entries are epoch-stamped so
// a pooled state resets in O(doors touched by the previous query) instead
// of O(doors); unstamped entries read as +Inf / NoDoor / unsettled.
type state struct {
	dist    []float64
	prev    []indoor.DoorID
	touched []uint32
	settled []uint32
	epoch   uint32
	h       pq.Heap[indoor.DoorID]

	// Per-query working-set counters. Reported instead of slice capacities
	// so WorkBytes reflects this query's footprint and stays identical
	// whether the state came fresh or from the pool.
	ntouched, npushed int
}

// newState acquires a pooled state (allocating on first use) and starts a
// fresh epoch. Return it with putState once the query's results have been
// copied out.
func (g *Graph) newState() *state {
	s, ok := g.states.Get().(*state)
	if !ok {
		n := g.sp.NumDoors()
		s = &state{
			dist:    make([]float64, n),
			prev:    make([]indoor.DoorID, n),
			touched: make([]uint32, n),
			settled: make([]uint32, n),
		}
		// Size the frontier heap once: its value and priority arrays grow
		// together here instead of through interleaved appends mid-query.
		s.h.Grow(n)
	}
	s.epoch++
	if s.epoch == 0 {
		for i := range s.touched {
			s.touched[i] = 0
			s.settled[i] = 0
		}
		s.epoch = 1
	}
	s.h.Reset()
	s.ntouched, s.npushed = 0, 0
	return s
}

func (g *Graph) putState(s *state) { g.states.Put(s) }

// push queues a frontier entry, counting it for the working-set estimate.
func (s *state) push(d indoor.DoorID, dist float64) {
	s.npushed++
	s.h.Push(d, dist)
}

// distAt returns d's tentative distance (+Inf when untouched this query).
func (s *state) distAt(d indoor.DoorID) float64 {
	if s.touched[d] != s.epoch {
		return math.Inf(1)
	}
	return s.dist[d]
}

// prevAt returns d's predecessor door (NoDoor when untouched).
func (s *state) prevAt(d indoor.DoorID) indoor.DoorID {
	if s.touched[d] != s.epoch {
		return indoor.NoDoor
	}
	return s.prev[d]
}

// setDist records a tentative distance, stamping the entry if needed.
func (s *state) setDist(d indoor.DoorID, dist float64, prev indoor.DoorID) {
	if s.touched[d] != s.epoch {
		s.touched[d] = s.epoch
		s.ntouched++
	}
	s.dist[d] = dist
	s.prev[d] = prev
}

func (s *state) isSettled(d indoor.DoorID) bool { return s.settled[d] == s.epoch }
func (s *state) settle(d indoor.DoorID)         { s.settled[d] = s.epoch }

func (s *state) bytes() int64 {
	return int64(s.ntouched)*(8+4+4+4) + int64(s.npushed)*16
}

// seed initializes the frontier with the leaveable doors of the source
// partition.
func (g *Graph) seed(s *state, v indoor.PartitionID, p indoor.Point) {
	for _, d := range g.sp.Partition(v).Leave {
		if !g.usable(d) {
			continue
		}
		w := g.sp.WithinPointDoor(v, p, d)
		if w < s.distAt(d) {
			s.setDist(d, w, indoor.NoDoor)
			s.push(d, w)
		}
	}
}

// relax expands settled door d at distance dd into its enterable partitions,
// optionally invoking visit for each (door, partition) pair before the
// door-to-door relaxation. A non-nil prune vetoes head doors before their
// (possibly expensive) d2d distance is computed; it must only veto doors
// that provably cannot contribute to the result.
func (g *Graph) relax(s *state, d indoor.DoorID, dd float64, st *query.Stats, prune func(nd indoor.DoorID) bool, visit func(v indoor.PartitionID, dd float64)) {
	for _, v := range g.sp.Door(d).Enterable {
		if visit != nil {
			visit(v, dd)
		}
		for _, nd := range g.sp.Partition(v).Leave {
			if s.isSettled(nd) || !g.usable(nd) {
				continue
			}
			if prune != nil && prune(nd) {
				continue
			}
			w := g.d2d(v, d, nd, st)
			if cand := dd + w; cand < s.distAt(nd) {
				s.setDist(nd, cand, d)
				s.push(nd, cand)
			}
		}
	}
}

// pruneByEuclid reports whether partition v can be skipped because every
// point of it is Euclidean-farther than radius from p (same floor only; a
// conservative check).
func (g *Graph) pruneByEuclid(v indoor.PartitionID, p indoor.Point, radius float64) bool {
	if !g.euclidPrune {
		return false
	}
	part := g.sp.Partition(v)
	if part.Floor != p.Floor || part.TopFloor != p.Floor {
		return false
	}
	return part.MBR.MinDist(p.XY()) > radius
}

// rangePrune builds the reach-based relaxation veto for a bounded search
// from p: a head door is skipped when everything enterable after crossing
// it is provably farther than limit() (the range radius, or the current
// k-th distance). Both closures are nil-safe no-ops when pruning is off or
// the graph is one SCC (fully reachable: nothing can ever be vetoed, so
// the per-edge check is not worth its cost); flush publishes the hit/skip
// counters once per query.
func (g *Graph) rangePrune(p indoor.Point, limit func() float64) (prune func(indoor.DoorID) bool, flush func()) {
	rc := g.reach
	if rc == nil || rc.NumSCCs() <= 1 {
		return nil, func() {}
	}
	var hits, skips int64
	prune = func(nd indoor.DoorID) bool {
		if rc.MBRPrune(nd, p, limit()) {
			hits++
			return true
		}
		skips++
		return false
	}
	flush = func() {
		reach.Metrics.PruneHits.Add(hits)
		reach.Metrics.PruneSkips.Add(skips)
	}
	return prune, flush
}

// Range answers RQ(p, r) over the given object store.
func (g *Graph) Range(store *query.ObjectStore, p indoor.Point, r float64, st *query.Stats) ([]int32, error) {
	endHost := st.Span(obs.StageHost)
	v0, ok := g.host(p)
	endHost()
	if !ok {
		return nil, query.ErrNoHost
	}
	res := make(map[int32]struct{})
	for _, n := range store.RangeScan(g.sp, v0, p, 0, r, nil) {
		res[n.ID] = struct{}{}
	}

	endExpand := st.Span(obs.StageExpand)
	defer endExpand()
	s := g.newState()
	defer g.putState(s)
	prune, flush := g.rangePrune(p, func() float64 { return r })
	defer flush()
	g.seed(s, v0, p)
	for s.h.Len() > 0 {
		d, dd := s.h.Pop()
		if s.isSettled(d) || dd > s.distAt(d) {
			continue
		}
		if dd > r {
			break
		}
		s.settle(d)
		st.Door()
		if err := st.Interrupted(); err != nil {
			return nil, err
		}
		door := d
		g.relax(s, d, dd, st, prune, func(v indoor.PartitionID, base float64) {
			if g.pruneByEuclid(v, p, r) {
				return
			}
			for _, n := range store.RangeScanDoor(g.sp, v, door, base, r-base, nil) {
				res[n.ID] = struct{}{}
			}
		})
	}
	endExpand()
	st.Alloc(s.bytes() + int64(len(res))*8)

	endRefine := st.Span(obs.StageRefine)
	defer endRefine()
	out := make([]int32, 0, len(res))
	for id := range res {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// KNN answers kNNQ(p, k) over the given object store.
func (g *Graph) KNN(store *query.ObjectStore, p indoor.Point, k int, st *query.Stats) ([]query.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	endHost := st.Span(obs.StageHost)
	v0, ok := g.host(p)
	endHost()
	if !ok {
		return nil, query.ErrNoHost
	}
	tk := query.NewTopK(k)
	for _, i := range store.Bucket(v0) {
		o := store.At(i)
		if !g.accept(o.ID) {
			continue
		}
		tk.Offer(o.ID, g.sp.WithinPoints(v0, p, o.Loc))
	}

	endExpand := st.Span(obs.StageExpand)
	defer endExpand()
	s := g.newState()
	defer g.putState(s)
	prune, flush := g.rangePrune(p, tk.Bound)
	defer flush()
	g.seed(s, v0, p)
	for s.h.Len() > 0 {
		d, dd := s.h.Pop()
		if s.isSettled(d) || dd > s.distAt(d) {
			continue
		}
		if dd > tk.Bound() {
			break
		}
		s.settle(d)
		st.Door()
		if err := st.Interrupted(); err != nil {
			return nil, err
		}
		door := d
		g.relax(s, d, dd, st, prune, func(v indoor.PartitionID, base float64) {
			// Objects Euclidean-farther than the current k-th distance can
			// never enter the top-k (the bound only shrinks).
			if g.pruneByEuclid(v, p, tk.Bound()) {
				return
			}
			for _, i := range store.Bucket(v) {
				if !g.accept(store.At(i).ID) {
					continue
				}
				tk.Offer(store.At(i).ID, base+store.DistToDoor(g.sp, i, door))
			}
		})
	}
	endExpand()
	st.Alloc(s.bytes() + tk.SizeBytes())
	endRefine := st.Span(obs.StageRefine)
	defer endRefine()
	return tk.Results(), nil
}

// SPD answers the fused shortest path + distance query SPDQ(p, q).
func (g *Graph) SPD(p, q indoor.Point, st *query.Stats) (query.Path, error) {
	endHost := st.Span(obs.StageHost)
	vp, ok := g.host(p)
	if !ok {
		endHost()
		return query.Path{}, query.ErrNoHost
	}
	vq, ok := g.host(q)
	endHost()
	if !ok {
		return query.Path{}, query.ErrNoHost
	}

	best := math.Inf(1)
	bestDoor := indoor.NoDoor
	if vp == vq {
		// The in-partition geodesic sweep expands no doors, so it polls
		// cancellation through the Stop probe instead (concave partitions
		// only; convex ones answer in O(1)).
		best = g.sp.WithinPointsStop(vp, p, q, st.Stop())
	}

	var prune func(indoor.DoorID) bool
	if rc := g.reach; rc != nil && rc.NumSCCs() > 1 {
		var usable func(indoor.DoorID) bool
		if g.open != nil {
			usable = g.usable
		}
		from := rc.FromDoors(g.sp.Partition(vp).Leave, usable)
		if !from.CanReachPart(vq) {
			// No door path from vp's usable leave doors ever enters vq: the
			// door sweep below could only exhaust the reachable component
			// and find nothing, so answer from the in-partition geodesic
			// alone. Bit-identical to the sweep's outcome.
			reach.Metrics.PruneHits.Add(1)
			if err := st.Interrupted(); err != nil {
				return query.Path{}, err
			}
			if math.IsInf(best, 1) {
				return query.Path{}, query.ErrUnreachable
			}
			return query.Path{Source: p, Target: q, Doors: nil, Dist: best}, nil
		}
		var hits, skips int64
		prune = func(nd indoor.DoorID) bool {
			if !rc.DoorReachesPart(nd, vq) {
				hits++
				return true
			}
			skips++
			return false
		}
		defer func() {
			reach.Metrics.PruneHits.Add(hits)
			reach.Metrics.PruneSkips.Add(skips)
		}()
	}

	// Distances from each enterable door of vq to q within vq.
	tail := make(map[indoor.DoorID]float64, len(g.sp.Partition(vq).Enter))
	for _, d := range g.sp.Partition(vq).Enter {
		if !g.usable(d) {
			continue
		}
		tail[d] = g.sp.WithinPointDoor(vq, q, d)
	}

	endExpand := st.Span(obs.StageExpand)
	defer endExpand()
	s := g.newState()
	defer g.putState(s)
	g.seed(s, vp, p)
	for s.h.Len() > 0 {
		d, dd := s.h.Pop()
		if s.isSettled(d) || dd > s.distAt(d) {
			continue
		}
		if dd >= best {
			break
		}
		s.settle(d)
		st.Door()
		if err := st.Interrupted(); err != nil {
			return query.Path{}, err
		}
		if w, ok := tail[d]; ok {
			if cand := dd + w; cand < best {
				best = cand
				bestDoor = d
			}
		}
		g.relax(s, d, dd, st, prune, nil)
	}
	endExpand()
	st.Alloc(s.bytes() + int64(len(tail))*16)

	if err := st.Interrupted(); err != nil {
		// The in-partition sweep may have been interrupted with an empty
		// frontier left; report the cancellation, not unreachability.
		return query.Path{}, err
	}
	if math.IsInf(best, 1) {
		return query.Path{}, query.ErrUnreachable
	}
	endRefine := st.Span(obs.StageRefine)
	defer endRefine()
	var doors []indoor.DoorID
	for d := bestDoor; d != indoor.NoDoor; d = s.prevAt(d) {
		doors = append(doors, d)
	}
	// Reverse into source-to-target order.
	for i, j := 0, len(doors)-1; i < j; i, j = i+1, j-1 {
		doors[i], doors[j] = doors[j], doors[i]
	}
	return query.Path{Source: p, Target: q, Doors: doors, Dist: best}, nil
}
