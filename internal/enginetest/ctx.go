package enginetest

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/testspaces"
	"indoorsq/internal/workload"
)

// ctxFixture builds the engine over a multi-floor random grid with a
// cross-floor SPDQ pair, so every query type must expand doors (and thus
// pass the amortized cancellation probes) before it can answer.
func ctxFixture(t *testing.T, build BuildFunc) (query.EngineCtx, indoor.Point, indoor.Point) {
	t.Helper()
	sp := testspaces.RandomGrid(19, 5, 6, 2, 8, 0.1)
	e := build(sp)
	gen := workload.New(sp, 7)
	e.SetObjects(gen.Objects(200))

	var p, q indoor.Point
	for p.Floor == q.Floor {
		p = gen.Point()
		q = gen.Point()
	}
	return query.AsCtx(e), p, q
}

func cancellation(t *testing.T, build BuildFunc) {
	ec, p, q := ctxFixture(t, build)

	t.Run("BackgroundEquivalence", func(t *testing.T) {
		// An uncancellable, budget-free context must not change answers.
		var st1, st2 query.Stats
		plain, err1 := ec.SPD(p, q, &st1)
		ctxed, err2 := ec.SPDCtx(context.Background(), p, q, &st2)
		if err1 != nil || err2 != nil {
			t.Fatalf("SPD errs: %v, %v", err1, err2)
		}
		if math.Abs(plain.Dist-ctxed.Dist) > tol {
			t.Fatalf("SPDCtx(Background) = %g, SPD = %g", ctxed.Dist, plain.Dist)
		}
		// Cache hit/miss counters legitimately differ (the first query warms
		// the lazy distance cache); the traversal counters must not.
		if st1.VisitedDoors != st2.VisitedDoors || st1.WorkBytes != st2.WorkBytes {
			t.Fatalf("stats diverge: %+v vs %+v", st1, st2)
		}
	})

	t.Run("PreCancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var st query.Stats
		if _, err := ec.RangeCtx(ctx, p, 1000, &st); !errors.Is(err, context.Canceled) {
			t.Errorf("RangeCtx on cancelled ctx: err = %v, want Canceled", err)
		}
		if _, err := ec.KNNCtx(ctx, p, 10, &st); !errors.Is(err, context.Canceled) {
			t.Errorf("KNNCtx on cancelled ctx: err = %v, want Canceled", err)
		}
		if _, err := ec.SPDCtx(ctx, p, q, &st); !errors.Is(err, context.Canceled) {
			t.Errorf("SPDCtx on cancelled ctx: err = %v, want Canceled", err)
		}
	})

	t.Run("ExpiredDeadline", func(t *testing.T) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
		defer cancel()
		if _, err := ec.SPDCtx(ctx, p, q, nil); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("SPDCtx past deadline: err = %v, want DeadlineExceeded", err)
		}
	})

	t.Run("DoorBudget", func(t *testing.T) {
		ctx := query.WithBudget(context.Background(), query.Budget{MaxVisitedDoors: 1})
		var st query.Stats
		if _, err := ec.SPDCtx(ctx, p, q, &st); !errors.Is(err, query.ErrBudgetExhausted) {
			t.Errorf("SPDCtx over door budget: err = %v, want ErrBudgetExhausted", err)
		}
		if st.VisitedDoors < 1 {
			t.Errorf("partial stats lost: VisitedDoors = %d, want >= 1", st.VisitedDoors)
		}
		st.Reset()
		if _, err := ec.RangeCtx(ctx, p, 1000, &st); !errors.Is(err, query.ErrBudgetExhausted) {
			t.Errorf("RangeCtx over door budget: err = %v, want ErrBudgetExhausted", err)
		}
		st.Reset()
		if _, err := ec.KNNCtx(ctx, p, 200, &st); !errors.Is(err, query.ErrBudgetExhausted) {
			t.Errorf("KNNCtx over door budget: err = %v, want ErrBudgetExhausted", err)
		}
	})

	t.Run("BudgetDeadline", func(t *testing.T) {
		// The budget's own wall-clock cutoff works without a context deadline.
		ctx := query.WithBudget(context.Background(),
			query.Budget{Deadline: time.Now().Add(-time.Millisecond)})
		if _, err := ec.SPDCtx(ctx, p, q, nil); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("SPDCtx past budget deadline: err = %v, want DeadlineExceeded", err)
		}
	})

	t.Run("GenerousLimitsAnswer", func(t *testing.T) {
		// Limits far above the query's cost must not perturb the answer.
		ctx, cancel := context.WithTimeout(
			query.WithBudget(context.Background(), query.Budget{MaxVisitedDoors: 1 << 30}),
			time.Hour)
		defer cancel()
		var st1, st2 query.Stats
		plain, err1 := ec.SPD(p, q, &st1)
		bounded, err2 := ec.SPDCtx(ctx, p, q, &st2)
		if err1 != nil || err2 != nil {
			t.Fatalf("SPD errs: %v, %v", err1, err2)
		}
		if math.Abs(plain.Dist-bounded.Dist) > tol {
			t.Fatalf("bounded SPD = %g, unbounded = %g", bounded.Dist, plain.Dist)
		}
		if st1.VisitedDoors != st2.VisitedDoors {
			t.Fatalf("NVD diverges under generous limits: %d vs %d",
				st1.VisitedDoors, st2.VisitedDoors)
		}
	})

	t.Run("NoGoroutineLeak", func(t *testing.T) {
		before := runtime.NumGoroutine()
		for i := 0; i < 64; i++ {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, _ = ec.SPDCtx(ctx, p, q, nil)
			_, _ = ec.RangeCtx(ctx, p, 100, nil)
		}
		runtime.GC()
		if after := runtime.NumGoroutine(); after > before+4 {
			t.Errorf("goroutines grew from %d to %d across cancelled queries", before, after)
		}
	})
}
