package enginetest

import (
	"math"
	"math/rand"
	"testing"

	"indoorsq/internal/bench"
	"indoorsq/internal/dataset"
	"indoorsq/internal/query"
	"indoorsq/internal/workload"
)

// TestCrossEngineOnBenchmarkVenues runs the identical-answers invariant on
// the real benchmark datasets (the venues every figure uses), not just on
// synthetic grids: CPH (small, open) and MZB (skewed, crucial corridors,
// 17 floors).
func TestCrossEngineOnBenchmarkVenues(t *testing.T) {
	if testing.Short() {
		t.Skip("builds benchmark venues")
	}
	for _, ds := range []string{"CPH", "MZB"} {
		ds := ds
		t.Run(ds, func(t *testing.T) {
			info := dataset.Get(ds)
			var engines []query.Engine
			for _, name := range bench.EngineNames {
				eng, err := bench.NewEngine(name, info)
				if err != nil {
					t.Fatal(err)
				}
				engines = append(engines, eng)
			}
			gen := workload.New(info.Space, 2024)
			objs := gen.Objects(300)
			for _, e := range engines {
				e.SetObjects(objs)
			}
			rng := rand.New(rand.NewSource(99))
			pts := gen.Points(8)
			pairs := gen.SPDPairs(info.DefaultS2T, 4)
			ref := engines[0]
			var st query.Stats
			for _, p := range pts {
				r := info.DefaultR * (0.5 + rng.Float64())
				k := 1 + rng.Intn(20)
				wantIDs, err := ref.Range(p, r, &st)
				if err != nil {
					t.Fatal(err)
				}
				wantKNN, err := ref.KNN(p, k, &st)
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range engines[1:] {
					gotIDs, err := e.Range(p, r, &st)
					if err != nil || !sameIDs(gotIDs, wantIDs) {
						t.Fatalf("%s Range(%v, %.0f) = %d ids (%v), want %d",
							e.Name(), p, r, len(gotIDs), err, len(wantIDs))
					}
					gotKNN, err := e.KNN(p, k, &st)
					if err != nil || len(gotKNN) != len(wantKNN) {
						t.Fatalf("%s KNN(%v, %d): %d results (%v), want %d",
							e.Name(), p, k, len(gotKNN), err, len(wantKNN))
					}
					for i := range gotKNN {
						if math.Abs(gotKNN[i].Dist-wantKNN[i].Dist) > 1e-6 {
							t.Fatalf("%s KNN dist[%d] = %g, want %g",
								e.Name(), i, gotKNN[i].Dist, wantKNN[i].Dist)
						}
					}
				}
			}
			for _, pr := range pairs {
				want, err := ref.SPD(pr.P, pr.Q, &st)
				if err != nil {
					t.Fatal(err)
				}
				// The workload generator's ground-truth distance must agree.
				if math.Abs(want.Dist-pr.Dist) > 1e-6 {
					t.Fatalf("generator dist %g != engine dist %g", pr.Dist, want.Dist)
				}
				for _, e := range engines[1:] {
					got, err := e.SPD(pr.P, pr.Q, &st)
					if err != nil || math.Abs(got.Dist-want.Dist) > 1e-6 {
						t.Fatalf("%s SPD = %.9g (%v), want %.9g",
							e.Name(), got.Dist, err, want.Dist)
					}
					if err := checkPathSum(info.Space, got); err != nil {
						t.Fatalf("%s path: %v", e.Name(), err)
					}
				}
			}
		})
	}
}
