package enginetest

import (
	"math"
	"testing"

	"indoorsq/internal/doorgraph"
	"indoorsq/internal/spacegen"
)

// csrSeeds is how many generated spaces the CSR determinism sweep covers.
// It reuses diffParams, so the spaces sample the same topology corpus as
// the 210-space differential harness (which itself exercises the CSR door
// graph inside every engine build it performs).
const csrSeeds = 24

// TestDoorGraphDeterministicAcrossWorkers pins the PR 1 guarantee on the
// flattened representation: for any worker count, BuildWorkers must emit
// bitwise-identical CSR arrays — same offsets, same target order, and
// Float64bits-identical weights — and full Dijkstra sweeps from every
// source must produce Float64bits-identical distance matrices in both
// directions.
func TestDoorGraphDeterministicAcrossWorkers(t *testing.T) {
	for seed := int64(1); seed <= csrSeeds; seed++ {
		seed := seed
		params := diffParams(seed)
		sp, err := spacegen.Generate(seed, params)
		if err != nil {
			t.Fatalf("seed=%d params=%s: generate: %v", seed, params, err)
		}
		ref := doorgraph.BuildWorkers(sp, 1)
		for _, workers := range []int{2, 3, 8} {
			g := doorgraph.BuildWorkers(sp, workers)
			if g.N != ref.N || g.NumEdges() != ref.NumEdges() {
				t.Fatalf("seed=%d workers=%d: shape %d/%d != %d/%d",
					seed, workers, g.N, g.NumEdges(), ref.N, ref.NumEdges())
			}
			for d := 0; d < ref.N; d++ {
				compareRow(t, seed, workers, "fwd", d, g, ref, false)
				compareRow(t, seed, workers, "rev", d, g, ref, true)
			}
			sweepCompare(t, seed, workers, g, ref)
		}
	}
}

func compareRow(t *testing.T, seed int64, workers int, dir string, d int, g, ref *doorgraph.Graph, reverse bool) {
	t.Helper()
	row := func(gr *doorgraph.Graph) ([]int32, []float64) {
		if reverse {
			return gr.RevRow(d)
		}
		return gr.FwdRow(d)
	}
	gt, gw := row(g)
	rt, rw := row(ref)
	if len(gt) != len(rt) {
		t.Fatalf("seed=%d workers=%d: %s row %d length %d != %d",
			seed, workers, dir, d, len(gt), len(rt))
	}
	for i := range gt {
		if gt[i] != rt[i] || math.Float64bits(gw[i]) != math.Float64bits(rw[i]) {
			t.Fatalf("seed=%d workers=%d: %s row %d edge %d differs: (%d, %x) vs (%d, %x)",
				seed, workers, dir, d, i, gt[i], math.Float64bits(gw[i]), rt[i], math.Float64bits(rw[i]))
		}
	}
}

func sweepCompare(t *testing.T, seed int64, workers int, g, ref *doorgraph.Graph) {
	t.Helper()
	sg := g.AcquireScratch()
	defer g.ReleaseScratch(sg)
	sr := ref.AcquireScratch()
	defer ref.ReleaseScratch(sr)
	for _, reverse := range []bool{false, true} {
		for src := int32(0); src < int32(ref.N); src++ {
			sg.Run(g, src, reverse)
			sr.Run(ref, src, reverse)
			for d := 0; d < ref.N; d++ {
				if math.Float64bits(sg.DistAt(d)) != math.Float64bits(sr.DistAt(d)) {
					t.Fatalf("seed=%d workers=%d reverse=%v: dist[%d->%d] %x != %x",
						seed, workers, reverse, src, d,
						math.Float64bits(sg.DistAt(d)), math.Float64bits(sr.DistAt(d)))
				}
				if sg.PrevAt(d) != sr.PrevAt(d) || sg.FirstAt(d) != sr.FirstAt(d) {
					t.Fatalf("seed=%d workers=%d reverse=%v: tree[%d->%d] (%d,%d) != (%d,%d)",
						seed, workers, reverse, src, d,
						sg.PrevAt(d), sg.FirstAt(d), sr.PrevAt(d), sr.FirstAt(d))
				}
			}
		}
	}
}
