package enginetest

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"indoorsq/internal/cindex"
	"indoorsq/internal/idindex"
	"indoorsq/internal/idmodel"
	"indoorsq/internal/indoor"
	"indoorsq/internal/iptree"
	"indoorsq/internal/query"
	"indoorsq/internal/testspaces"
)

// allEngines builds all five model/indexes over one space.
func allEngines(sp *indoor.Space) []query.Engine {
	return []query.Engine{
		idmodel.New(sp),
		idindex.New(sp),
		cindex.New(sp),
		iptree.New(sp, iptree.Options{LeafSize: 3, Fanout: 2, Gamma: 4}),
		iptree.New(sp, iptree.Options{LeafSize: 3, Fanout: 2, Gamma: 4, VIP: true}),
	}
}

// randomObjects scatters n objects over random partitions of sp.
func randomObjects(sp *indoor.Space, rng *rand.Rand, n int) []query.Object {
	objs := make([]query.Object, 0, n)
	for len(objs) < n {
		v := indoor.PartitionID(rng.Intn(sp.NumPartitions()))
		part := sp.Partition(v)
		if part.Kind == indoor.Staircase {
			continue
		}
		mbr := part.MBR
		x := mbr.MinX + rng.Float64()*mbr.Width()
		y := mbr.MinY + rng.Float64()*mbr.Height()
		p := indoor.At(x, y, part.Floor)
		if !part.Poly.Contains(p.XY()) {
			continue
		}
		objs = append(objs, query.Object{ID: int32(len(objs)), Loc: p, Part: v})
	}
	return objs
}

// randomPoint picks a valid indoor point.
func randomPoint(sp *indoor.Space, rng *rand.Rand) indoor.Point {
	for {
		v := indoor.PartitionID(rng.Intn(sp.NumPartitions()))
		part := sp.Partition(v)
		if part.Kind == indoor.Staircase {
			continue
		}
		mbr := part.MBR
		x := mbr.MinX + rng.Float64()*mbr.Width()
		y := mbr.MinY + rng.Float64()*mbr.Height()
		p := indoor.At(x, y, part.Floor)
		if part.Poly.Contains(p.XY()) {
			return p
		}
	}
}

// TestCrossEngineConsistency verifies that all five engines return identical
// answers for RQ, kNNQ, and SPDQ on randomized multi-floor spaces with
// unidirectional doors.
func TestCrossEngineConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-engine sweep is slow")
	}
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed * 101))
		sp := testspaces.RandomGrid(seed, 4, 5, 2, 7, 0.2)
		engines := allEngines(sp)
		objs := randomObjects(sp, rng, 40)
		for _, e := range engines {
			e.SetObjects(objs)
		}
		ref := engines[0]
		var st query.Stats

		for trial := 0; trial < 12; trial++ {
			p := randomPoint(sp, rng)
			q := randomPoint(sp, rng)
			r := 5 + rng.Float64()*60
			k := 1 + rng.Intn(8)

			wantIDs, err := ref.Range(p, r, &st)
			if err != nil {
				t.Fatalf("seed %d: reference Range: %v", seed, err)
			}
			wantKNN, err := ref.KNN(p, k, &st)
			if err != nil {
				t.Fatalf("seed %d: reference KNN: %v", seed, err)
			}
			wantPath, wantErr := ref.SPD(p, q, &st)

			for _, e := range engines[1:] {
				gotIDs, err := e.Range(p, r, &st)
				if err != nil {
					t.Fatalf("seed %d %s Range: %v", seed, e.Name(), err)
				}
				if !sameIDs(gotIDs, wantIDs) {
					t.Fatalf("seed %d trial %d: %s Range(%v, %g) = %v, want %v",
						seed, trial, e.Name(), p, r, gotIDs, wantIDs)
				}

				gotKNN, err := e.KNN(p, k, &st)
				if err != nil {
					t.Fatalf("seed %d %s KNN: %v", seed, e.Name(), err)
				}
				if len(gotKNN) != len(wantKNN) {
					t.Fatalf("seed %d trial %d: %s KNN count %d, want %d",
						seed, trial, e.Name(), len(gotKNN), len(wantKNN))
				}
				// Exact result-set equality, ids included: the shared
				// (dist, id) tie-break makes the surviving set independent
				// of each engine's candidate iteration order, so any id
				// disagreement is a real bug, not a tie artifact.
				if !sameIDs(knnIDs(gotKNN), knnIDs(wantKNN)) {
					t.Fatalf("seed %d trial %d: %s KNN ids %v, want %v",
						seed, trial, e.Name(), knnIDs(gotKNN), knnIDs(wantKNN))
				}
				for i := range gotKNN {
					if math.Abs(gotKNN[i].Dist-wantKNN[i].Dist) > 1e-6 {
						t.Fatalf("seed %d trial %d: %s KNN[%d] dist %g, want %g",
							seed, trial, e.Name(), i, gotKNN[i].Dist, wantKNN[i].Dist)
					}
				}

				gotPath, err := e.SPD(p, q, &st)
				if wantErr != nil {
					if err == nil {
						t.Fatalf("seed %d trial %d: %s SPD should fail like reference (%v)",
							seed, trial, e.Name(), wantErr)
					}
					continue
				}
				if err != nil {
					t.Fatalf("seed %d trial %d: %s SPD: %v", seed, trial, e.Name(), err)
				}
				if math.Abs(gotPath.Dist-wantPath.Dist) > 1e-6 {
					t.Fatalf("seed %d trial %d: %s SPD(%v -> %v) = %.9g, want %.9g",
						seed, trial, e.Name(), p, q, gotPath.Dist, wantPath.Dist)
				}
				// The reported path must be internally consistent: its door
				// sequence length sums to its distance.
				if err := checkPathSum(sp, gotPath); err != nil {
					t.Fatalf("seed %d trial %d: %s path: %v", seed, trial, e.Name(), err)
				}
			}
		}
	}
}

// checkPathSum verifies L(φ) = Σ hop lengths (footnote 2 of the paper).
func checkPathSum(sp *indoor.Space, path query.Path) error {
	sum, err := PathLength(sp, path)
	if err != nil {
		return err
	}
	if math.Abs(sum-path.Dist) > 1e-6 {
		return errPathSum(path.Dist, sum)
	}
	return nil
}

type errPathSum2 struct{ want, got float64 }

func errPathSum(want, got float64) error { return errPathSum2{want, got} }
func (e errPathSum2) Error() string {
	return "path distance mismatch with hop sum"
}

// knnIDs projects a kNN answer onto its id set, sorted so positional noise
// between near-equal distances does not masquerade as a set difference.
func knnIDs(nn []query.Neighbor) []int32 {
	ids := make([]int32, len(nn))
	for i, n := range nn {
		ids[i] = n.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sameIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCrossEngineConsistencyConcave repeats the consistency sweep on spaces
// whose hallway is a concave L, so intra-partition distances go through the
// visibility graph in every engine.
func TestCrossEngineConsistencyConcave(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-engine sweep is slow")
	}
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed * 211))
		sp := testspaces.RandomGridConcave(seed, 4, 5, 2, 0)
		engines := allEngines(sp)
		objs := randomObjects(sp, rng, 30)
		for _, e := range engines {
			e.SetObjects(objs)
		}
		ref := engines[0]
		var st query.Stats
		for trial := 0; trial < 8; trial++ {
			p := randomPoint(sp, rng)
			q := randomPoint(sp, rng)
			r := 10 + rng.Float64()*60

			k := 1 + rng.Intn(6)
			wantIDs, err := ref.Range(p, r, &st)
			if err != nil {
				t.Fatalf("seed %d: reference Range: %v", seed, err)
			}
			wantKNN, err := ref.KNN(p, k, &st)
			if err != nil {
				t.Fatalf("seed %d: reference KNN: %v", seed, err)
			}
			wantPath, wantErr := ref.SPD(p, q, &st)
			for _, e := range engines[1:] {
				gotIDs, err := e.Range(p, r, &st)
				if err != nil || !sameIDs(gotIDs, wantIDs) {
					t.Fatalf("seed %d trial %d: %s Range = %v (%v), want %v",
						seed, trial, e.Name(), gotIDs, err, wantIDs)
				}
				gotKNN, err := e.KNN(p, k, &st)
				if err != nil || !sameIDs(knnIDs(gotKNN), knnIDs(wantKNN)) {
					t.Fatalf("seed %d trial %d: %s KNN ids = %v (%v), want %v",
						seed, trial, e.Name(), knnIDs(gotKNN), err, knnIDs(wantKNN))
				}
				gotPath, err := e.SPD(p, q, &st)
				if (wantErr != nil) != (err != nil) {
					t.Fatalf("seed %d trial %d: %s SPD err %v vs ref %v",
						seed, trial, e.Name(), err, wantErr)
				}
				if err == nil && math.Abs(gotPath.Dist-wantPath.Dist) > 1e-6 {
					t.Fatalf("seed %d trial %d: %s SPD = %.9g, want %.9g",
						seed, trial, e.Name(), gotPath.Dist, wantPath.Dist)
				}
			}
		}
	}
}
