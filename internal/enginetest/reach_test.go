package enginetest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"indoorsq/internal/cindex"
	"indoorsq/internal/geom"
	"indoorsq/internal/idmodel"
	"indoorsq/internal/indoor"
	"indoorsq/internal/oracle"
	"indoorsq/internal/query"
	"indoorsq/internal/reach"
	"indoorsq/internal/spacegen"
	"indoorsq/internal/temporal"
)

// reachSetter is implemented by every engine that prunes with a
// reachability summary; SetReach(nil) is the unpruned ablation.
type reachSetter interface {
	SetReach(*reach.Reach)
}

// twoWing builds a 2x8 room grid severed between columns 3 and 4: the only
// crossing is one one-way door (main -> wing), so the wing cannot reach the
// main block at all. The door graph has multiple SCCs, which makes the
// reachability pruning of every engine live (unlike spacegen venues, whose
// bidirectional spanning tree keeps the door graph strongly connected).
//
//	y=8 +----+----+----+----+ ~~ +----+----+----+----+
//	    | A4 | A5 | A6 | A7 | ~~ | B4 | B5 | B6 | B7 |
//	y=4 +-d--+-d--+-d--+-d--+ ~~ +-d--+-d--+-d--+-d--+
//	    | A0 - A1 - A2 - A3 |  > | B0 - B1 - B2 - B3 |
//	y=0 +----+----+----+----+ ~~ +----+----+----+----+
//	   x=0        (cut at x=20: one one-way door A3 -> B0)
func twoWing(t *testing.T) (*indoor.Space, []query.Object) {
	t.Helper()
	b := indoor.NewBuilder("twowing", 1)
	rect := func(x0, y0, x1, y1 float64) geom.Polygon {
		return geom.RectPoly(geom.R(x0, y0, x1, y1))
	}
	var low, high [8]indoor.PartitionID
	for i := 0; i < 8; i++ {
		x0 := float64(i * 5)
		low[i] = b.AddRoom(0, rect(x0, 0, x0+5, 4))
		high[i] = b.AddRoom(0, rect(x0, 4, x0+5, 8))
	}
	for i := 0; i < 8; i++ {
		d := b.AddDoor(geom.Pt(float64(i*5)+2.5, 4), 0)
		b.ConnectBoth(d, low[i], high[i])
	}
	for i := 0; i < 7; i++ {
		x := float64((i + 1) * 5)
		if i == 3 {
			d := b.AddDoor(geom.Pt(x, 2), 0)
			b.ConnectOneWay(d, low[i], low[i+1]) // the only crossing: main -> wing
			continue
		}
		d := b.AddDoor(geom.Pt(x, 2), 0)
		b.ConnectBoth(d, low[i], low[i+1])
	}
	sp, err := b.Build()
	if err != nil {
		t.Fatalf("build twowing: %v", err)
	}
	var objs []query.Object
	for i, v := range []indoor.PartitionID{low[1], high[2], low[4], high[6], low[7]} {
		part := sp.Partition(v)
		c := part.MBR.Center()
		objs = append(objs, query.Object{ID: int32(i), Loc: indoor.At(c.X, c.Y, 0), Part: v})
	}
	return sp, objs
}

// prunedAndUnpruned builds the five engines twice over one space: the
// default (pruned) set and a SetReach(nil) twin set.
func prunedAndUnpruned(sp *indoor.Space, objs []query.Object) (pruned, unpruned []query.Engine) {
	pruned = allEngines(sp)
	unpruned = allEngines(sp)
	for _, e := range unpruned {
		e.(reachSetter).SetReach(nil)
	}
	for _, e := range pruned {
		e.SetObjects(objs)
	}
	for _, e := range unpruned {
		e.SetObjects(objs)
	}
	return pruned, unpruned
}

// assertBitIdentical drives one pruned/unpruned engine pair through
// Range, KNN and SPD at the given points and requires bit-for-bit equal
// answers: identical id slices, identical distance bit patterns, identical
// door sequences and identical errors.
func assertBitIdentical(t *testing.T, label string, p, u query.Engine, pts []indoor.Point, radii []float64, ks []int) {
	t.Helper()
	var st query.Stats
	for _, pt := range pts {
		for _, r := range radii {
			gp, ep := p.Range(pt, r, &st)
			gu, eu := u.Range(pt, r, &st)
			if !errors.Is(ep, eu) && !errors.Is(eu, ep) {
				t.Fatalf("%s %s: Range(%v, %g) err %v vs %v", label, p.Name(), pt, r, ep, eu)
			}
			if !reflect.DeepEqual(gp, gu) {
				t.Fatalf("%s %s: Range(%v, %g) pruned %v != unpruned %v", label, p.Name(), pt, r, gp, gu)
			}
		}
		for _, k := range ks {
			gp, ep := p.KNN(pt, k, &st)
			gu, eu := u.KNN(pt, k, &st)
			if (ep == nil) != (eu == nil) {
				t.Fatalf("%s %s: KNN(%v, %d) err %v vs %v", label, p.Name(), pt, k, ep, eu)
			}
			if len(gp) != len(gu) {
				t.Fatalf("%s %s: KNN(%v, %d) %d vs %d results", label, p.Name(), pt, k, len(gp), len(gu))
			}
			for i := range gp {
				if gp[i].ID != gu[i].ID ||
					math.Float64bits(gp[i].Dist) != math.Float64bits(gu[i].Dist) {
					t.Fatalf("%s %s: KNN(%v, %d)[%d] pruned %v != unpruned %v",
						label, p.Name(), pt, k, i, gp[i], gu[i])
				}
			}
		}
		for _, qt := range pts {
			pp, ep := p.SPD(pt, qt, &st)
			pu, eu := u.SPD(pt, qt, &st)
			if (ep == nil) != (eu == nil) || (ep != nil && !errors.Is(ep, eu)) {
				t.Fatalf("%s %s: SPD(%v -> %v) err %v vs %v", label, p.Name(), pt, qt, ep, eu)
			}
			if ep != nil {
				continue
			}
			if math.Float64bits(pp.Dist) != math.Float64bits(pu.Dist) {
				t.Fatalf("%s %s: SPD(%v -> %v) dist %.17g != %.17g",
					label, p.Name(), pt, qt, pp.Dist, pu.Dist)
			}
			if !reflect.DeepEqual(pp.Doors, pu.Doors) {
				t.Fatalf("%s %s: SPD(%v -> %v) doors %v != %v",
					label, p.Name(), pt, qt, pp.Doors, pu.Doors)
			}
		}
	}
}

// TestReachPrunedVsUnpruned checks the tentpole exactness claim on a venue
// where pruning is actually live (multiple SCCs): every engine with its
// reachability summary must answer bit-identically to its SetReach(nil)
// twin, and both must match the brute-force oracle.
func TestReachPrunedVsUnpruned(t *testing.T) {
	sp, objs := twoWing(t)
	pruned, unpruned := prunedAndUnpruned(sp, objs)

	// The venue must make pruning live, or this test proves nothing.
	if r := pruned[0].(*idmodel.Model).Reach(); r.NumSCCs() <= 1 {
		t.Fatalf("twoWing door graph has %d SCC(s), want several", r.NumSCCs())
	}

	pts := []indoor.Point{
		indoor.At(2.5, 2, 0),  // main block, low row
		indoor.At(17, 6, 0),   // main block, high row, near the cut
		indoor.At(22.5, 2, 0), // wing, just past the one-way door
		indoor.At(37, 6, 0),   // wing, far end
	}
	radii := []float64{0, 7, 25, 1000}
	ks := []int{1, 3, 10}
	assertBitIdentical(t, "twowing", pruned[0], unpruned[0], pts, radii, ks)
	for i := 1; i < len(pruned); i++ {
		assertBitIdentical(t, "twowing", pruned[i], unpruned[i], pts, radii, ks)
	}

	// Wing -> main must be ErrUnreachable (through the reach gate), and the
	// oracle must agree with the pruned engines everywhere.
	ref := oracle.New(sp)
	ref.SetObjects(objs)
	var st query.Stats
	for _, e := range pruned {
		if _, err := e.SPD(pts[2], pts[0], &st); !errors.Is(err, query.ErrUnreachable) {
			t.Fatalf("%s: wing->main SPD err = %v, want ErrUnreachable", e.Name(), err)
		}
	}
	for _, pt := range pts {
		wantIDs, err := ref.Range(pt, 25, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range pruned {
			gotIDs, err := e.Range(pt, 25, &st)
			if err != nil || !sameIDs(gotIDs, wantIDs) {
				t.Fatalf("%s: Range(%v) = %v (%v), oracle %v", e.Name(), pt, gotIDs, err, wantIDs)
			}
		}
		for _, qt := range pts {
			wantPath, wantErr := ref.SPD(pt, qt, nil)
			for _, e := range pruned {
				gotPath, err := e.SPD(pt, qt, &st)
				comparePath(func(format string, args ...any) {
					t.Helper()
					t.Fatalf("oracle cross-check %s: %s", e.Name(), fmt.Sprintf(format, args...))
				}, sp, 0, e.Name(), gotPath, err, wantPath, wantErr)
			}
		}
	}
}

// TestDifferentialHighOneWay extends the oracle sweep with venues saturated
// with one-way doors (every extra vertical-wall door directed), the regime
// the reachability summaries are built for.
func TestDifferentialHighOneWay(t *testing.T) {
	for seed := int64(500); seed < 512; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			p := spacegen.Params{
				Floors:      1 + int(seed%3),
				Rows:        2,
				Cols:        4,
				Hall:        spacegen.HallKind(seed % 3),
				ExtraDoors:  8,
				OneWayFrac:  1,
				Imbalance:   0.5,
				StairLength: 5,
				Objects:     12,
			}
			runDifferential(t, seed, p.Normalize(), 3)
		})
	}
}

// wingSchedule closes every bidirectional door crossing the vertical line
// x = cut, leaving one-way crossings open — after hours the wing becomes
// one-way or fully unreachable, so the filtered condensation splits.
func wingSchedule(sp *indoor.Space, cut float64) *temporal.Schedule {
	sch := temporal.NewSchedule()
	for di := 0; di < sp.NumDoors(); di++ {
		d := sp.Door(indoor.DoorID(di))
		if len(d.Parts) != 2 || len(d.Enterable) < 2 {
			continue // one-way (or degenerate) doors stay open
		}
		a := sp.Partition(d.Parts[0]).MBR.Center()
		b := sp.Partition(d.Parts[1]).MBR.Center()
		if (a.X < cut) != (b.X < cut) {
			sch.Set(indoor.DoorID(di), temporal.Interval{Open: 8, Close: 20})
		}
	}
	return sch
}

// TestTemporalClosedWingParity drives the temporal engines over a venue
// whose wing is severed after hours: the per-hour filtered condensation
// must keep IDMODEL and CINDEX bit-identical to their unpruned open-door
// views, agreeing on ErrUnreachable, and actually split into several SCCs.
func TestTemporalClosedWingParity(t *testing.T) {
	params := spacegen.Params{
		Floors: 1, Rows: 4, Cols: 10, Hall: spacegen.HallStraight,
		ExtraDoors: 6, OneWayFrac: 0.5, StairLength: 5, Objects: 20,
	}.Normalize()
	sp, err := spacegen.Generate(42, params)
	if err != nil {
		t.Fatal(err)
	}
	objs := spacegen.Objects(sp, 43, params.Objects)

	maxX := math.Inf(-1)
	for i := 0; i < sp.NumPartitions(); i++ {
		if x := sp.Partition(indoor.PartitionID(i)).MBR.MaxX; x > maxX {
			maxX = x
		}
	}
	sch := wingSchedule(sp, 0.6*maxX)
	if sch.Len() == 0 {
		t.Fatal("wing schedule closed no doors; cut is wrong")
	}

	mP, mU := idmodel.New(sp), idmodel.New(sp)
	cP, cU := cindex.New(sp), cindex.New(sp)
	mU.SetReach(nil)
	cU.SetReach(nil)
	for _, e := range []query.Engine{mP, mU, cP, cU} {
		e.SetObjects(objs)
	}

	const night = 23.0
	eM := temporal.NewIDModel(mP, sch, night)
	eC := temporal.NewCIndex(cP, sch, night)
	if eM.Reach().NumSCCs() <= 1 {
		t.Fatalf("night condensation has %d SCC(s); the wing cut is not live", eM.Reach().NumSCCs())
	}
	// Unpruned twins: the raw open-door views of the SetReach(nil) models.
	open := sch.At(night)
	uM := mU.WithOpen(open)
	uC := cU.WithOpen(open)
	uM.SetObjects(objs)
	uC.SetObjects(objs)

	rng := rand.New(rand.NewSource(99))
	var pts []indoor.Point
	for len(pts) < 10 {
		pts = append(pts, randomPoint(sp, rng))
	}
	radii := []float64{0, 15, 60, 1e4}
	ks := []int{1, 4, 25}
	assertBitIdentical(t, "night", eM, uM, pts, radii, ks)
	assertBitIdentical(t, "night", eC, uC, pts, radii, ks)

	// The two engines must also agree with each other, including on which
	// pairs are unreachable; at least one pair must actually be severed.
	var st query.Stats
	severed := 0
	for _, p := range pts {
		for _, q := range pts {
			pm, errM := eM.SPD(p, q, &st)
			pc, errC := eC.SPD(p, q, &st)
			if (errM == nil) != (errC == nil) {
				t.Fatalf("night SPD(%v -> %v): IDModel err %v, CIndex err %v", p, q, errM, errC)
			}
			if errM != nil {
				if !errors.Is(errM, query.ErrUnreachable) {
					t.Fatalf("night SPD(%v -> %v): %v", p, q, errM)
				}
				severed++
				continue
			}
			if math.Abs(pm.Dist-pc.Dist) > tol {
				t.Fatalf("night SPD(%v -> %v): %g vs %g", p, q, pm.Dist, pc.Dist)
			}
		}
	}
	if severed == 0 {
		t.Fatal("no severed pair among the sampled points; the wing cut is not exercised")
	}
}
