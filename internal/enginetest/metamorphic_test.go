package enginetest

import (
	"fmt"
	"math"
	"testing"

	"indoorsq/internal/indoor"
	"indoorsq/internal/oracle"
	"indoorsq/internal/query"
	"indoorsq/internal/spacegen"

	"math/rand"
)

// metamorphicSeeds is the number of generated spaces each metamorphic
// property is exercised on.
const metamorphicSeeds = 24

func metaSpace(t *testing.T, seed int64, p spacegen.Params) (*indoor.Space, []query.Object) {
	t.Helper()
	p = p.Normalize()
	sp, err := spacegen.Generate(seed, p)
	if err != nil {
		t.Fatalf("seed=%d params=%s: %v", seed, p, err)
	}
	return sp, spacegen.Objects(sp, seed+1, p.Objects)
}

// TestMetamorphicRangeMonotone: growing the radius can only grow the
// result set, and every smaller-radius result survives in the larger one.
func TestMetamorphicRangeMonotone(t *testing.T) {
	for seed := int64(1); seed <= metamorphicSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			params := diffParams(seed)
			sp, objs := metaSpace(t, seed, params)
			rng := rand.New(rand.NewSource(seed * 31))
			p := randomPoint(sp, rng)
			var st query.Stats
			for _, e := range allEngines(sp) {
				e.SetObjects(objs)
				prev := map[int32]bool{}
				prevLen := 0
				for _, r := range []float64{0, 5, 15, 40, 120, 1e6} {
					ids, err := e.Range(p, r, &st)
					if err != nil {
						t.Fatalf("seed=%d params=%s: %s Range(r=%g): %v", seed, params, e.Name(), r, err)
					}
					if len(ids) < prevLen {
						t.Fatalf("seed=%d params=%s: %s Range shrank from %d to %d at r=%g",
							seed, params, e.Name(), prevLen, len(ids), r)
					}
					cur := map[int32]bool{}
					for _, id := range ids {
						cur[id] = true
					}
					for id := range prev {
						if !cur[id] {
							t.Fatalf("seed=%d params=%s: %s Range(r=%g) lost object %d present at a smaller radius",
								seed, params, e.Name(), r, id)
						}
					}
					prev, prevLen = cur, len(ids)
				}
			}
		})
	}
}

// TestMetamorphicKNNNested: the k nearest neighbors are a prefix of the
// k+1 nearest — same ids, same distances, in the same order.
func TestMetamorphicKNNNested(t *testing.T) {
	for seed := int64(1); seed <= metamorphicSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			params := diffParams(seed)
			sp, objs := metaSpace(t, seed, params)
			rng := rand.New(rand.NewSource(seed * 37))
			p := randomPoint(sp, rng)
			var st query.Stats
			for _, e := range allEngines(sp) {
				e.SetObjects(objs)
				var prev []query.Neighbor
				for k := 1; k <= len(objs)+1; k++ {
					nn, err := e.KNN(p, k, &st)
					if err != nil {
						t.Fatalf("seed=%d params=%s: %s KNN(k=%d): %v", seed, params, e.Name(), k, err)
					}
					if len(nn) > k || len(nn) < len(prev) {
						t.Fatalf("seed=%d params=%s: %s KNN(k=%d) returned %d neighbors after %d at k-1",
							seed, params, e.Name(), k, len(nn), len(prev))
					}
					for i := range prev {
						// Equal-distance neighbors are ordered by id, so the
						// prefix must be bit-for-bit stable as k grows.
						if nn[i] != prev[i] {
							t.Fatalf("seed=%d params=%s: %s KNN(k=%d)[%d] = %+v, was %+v at k-1",
								seed, params, e.Name(), k, i, nn[i], prev[i])
						}
					}
					prev = nn
				}
			}
		})
	}
}

// TestMetamorphicSPDSymmetry: on spaces with no one-way doors, indoor
// distance is a metric and d(p,q) must equal d(q,p) for every engine.
func TestMetamorphicSPDSymmetry(t *testing.T) {
	for seed := int64(1); seed <= metamorphicSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			params := diffParams(seed)
			params.OneWayFrac = 0 // all doors bidirectional => symmetric metric
			sp, _ := metaSpace(t, seed, params)
			rng := rand.New(rand.NewSource(seed * 41))
			var st query.Stats
			for _, e := range allEngines(sp) {
				for trial := 0; trial < 3; trial++ {
					p := randomPoint(sp, rng)
					q := randomPoint(sp, rng)
					fwd, err1 := e.SPD(p, q, &st)
					back, err2 := e.SPD(q, p, &st)
					if err1 != nil || err2 != nil {
						t.Fatalf("seed=%d params=%s: %s SPD errs %v / %v on a bidirectional space",
							seed, params, e.Name(), err1, err2)
					}
					if math.Abs(fwd.Dist-back.Dist) > tol {
						t.Fatalf("seed=%d params=%s: %s asymmetric: d(p,q)=%.12g d(q,p)=%.12g",
							seed, params, e.Name(), fwd.Dist, back.Dist)
					}
				}
			}
		})
	}
}

// TestMetamorphicTriangleInequality: the oracle's door-to-door distance
// vectors must satisfy d(a,c) <= d(a,b) + d(b,c) — Dijkstra over any
// graph yields a shortest-path quasi-metric, so a violation means the
// relaxation (and hence every engine trusting it) is broken.
func TestMetamorphicTriangleInequality(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			params := diffParams(seed)
			sp, _ := metaSpace(t, seed, params)
			ref := oracle.New(sp)
			from := make([][]float64, sp.NumDoors())
			for d := 0; d < sp.NumDoors(); d++ {
				from[d] = ref.FromDoor(indoor.DoorID(d))
			}
			rng := rand.New(rand.NewSource(seed * 43))
			for trial := 0; trial < 200; trial++ {
				a := rng.Intn(sp.NumDoors())
				b := rng.Intn(sp.NumDoors())
				c := rng.Intn(sp.NumDoors())
				ab, bc, ac := from[a][b], from[b][c], from[a][c]
				if math.IsInf(ab, 1) || math.IsInf(bc, 1) {
					continue
				}
				if ac > ab+bc+1e-6 {
					t.Fatalf("seed=%d params=%s: triangle violation: d(%d,%d)=%.12g > d(%d,%d)+d(%d,%d)=%.12g",
						seed, params, a, c, ac, a, b, b, c, ab+bc)
				}
			}
		})
	}
}

// TestMetamorphicCacheBitIdentity: WithinDoorsCached must return values
// bit-identical to the uncached WithinDoors, both on the fill pass and on
// the memo-hit pass.
func TestMetamorphicCacheBitIdentity(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			params := diffParams(seed)
			sp, _ := metaSpace(t, seed, params)
			for pass := 0; pass < 2; pass++ {
				for v := 0; v < sp.NumPartitions(); v++ {
					part := sp.Partition(indoor.PartitionID(v))
					for _, di := range part.Enter {
						for _, dj := range part.Leave {
							want := sp.WithinDoors(indoor.PartitionID(v), di, dj)
							got, _ := sp.WithinDoorsCached(indoor.PartitionID(v), di, dj)
							if math.Float64bits(got) != math.Float64bits(want) {
								t.Fatalf("seed=%d params=%s: pass %d: cached dist(v=%d, %d->%d) = %x, uncached %x",
									seed, params, pass, v, di, dj,
									math.Float64bits(got), math.Float64bits(want))
							}
						}
					}
				}
			}
		})
	}
}
