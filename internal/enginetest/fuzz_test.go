package enginetest

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"indoorsq/internal/oracle"
	"indoorsq/internal/query"
	"indoorsq/internal/spacegen"
)

// FuzzDifferentialEngines lets the fuzzer drive the differential harness:
// arbitrary bytes decode into generator parameters (clamped small so each
// execution stays fast), and all five engines must agree with the oracle
// on range, kNN, and shortest-path queries over the resulting space.
func FuzzDifferentialEngines(f *testing.F) {
	f.Add(int64(1), []byte{})
	f.Add(int64(7), []byte{1, 2, 3, 1, 4, 2, 3, 1, 5, 20})
	f.Add(int64(-3), []byte{2, 1, 2, 2, 0, 0, 9, 1, 7, 12})
	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		p := spacegen.ParamsFromBytes(raw)
		// Keep fuzz executions cheap: the oracle is O(D^2) per query.
		if p.Floors > 2 {
			p.Floors = 2
		}
		if p.Rows > 2 {
			p.Rows = 2
		}
		if p.Cols > 3 {
			p.Cols = 3
		}
		if p.Objects > 12 {
			p.Objects = 12
		}
		p = p.Normalize()
		sp, err := spacegen.Generate(seed, p)
		if err != nil {
			t.Fatalf("seed=%d params=%s: %v", seed, p, err)
		}
		objs := spacegen.Objects(sp, seed+1, p.Objects)
		ref := oracle.New(sp)
		ref.SetObjects(objs)
		engines := allEngines(sp)
		for _, e := range engines {
			e.SetObjects(objs)
		}
		rng := rand.New(rand.NewSource(seed ^ 0x0ddba11))
		var st query.Stats
		pt := randomPoint(sp, rng)
		q := randomPoint(sp, rng)
		all, err := ref.AllDists(pt)
		if err != nil {
			t.Fatalf("seed=%d params=%s: oracle AllDists: %v", seed, p, err)
		}
		radii := snapRadii(all, rng)
		ks := snapKs(all, len(objs), rng)
		wantPath, wantErr := ref.SPD(pt, q, nil)
		for _, e := range engines {
			for _, r := range radii {
				wantIDs, _ := ref.Range(pt, r, nil)
				gotIDs, err := e.Range(pt, r, &st)
				if err != nil || !sameIDs(gotIDs, wantIDs) {
					t.Fatalf("seed=%d params=%s: %s Range(r=%g) = %v (%v), oracle %v",
						seed, p, e.Name(), r, gotIDs, err, wantIDs)
				}
			}
			for _, k := range ks {
				wantKNN, _ := ref.KNN(pt, k, nil)
				gotKNN, err := e.KNN(pt, k, &st)
				if err != nil || !sameIDs(knnIDs(gotKNN), knnIDs(wantKNN)) {
					t.Fatalf("seed=%d params=%s: %s KNN(k=%d) = %v (%v), oracle %v",
						seed, p, e.Name(), k, gotKNN, err, wantKNN)
				}
			}
			gotPath, err := e.SPD(pt, q, &st)
			if wantErr != nil {
				if !errors.Is(err, query.ErrUnreachable) {
					t.Fatalf("seed=%d params=%s: %s SPD err = %v, oracle %v", seed, p, e.Name(), err, wantErr)
				}
				continue
			}
			if err != nil || math.Abs(gotPath.Dist-wantPath.Dist) > tol {
				t.Fatalf("seed=%d params=%s: %s SPD dist %.12g (%v), oracle %.12g",
					seed, p, e.Name(), gotPath.Dist, err, wantPath.Dist)
			}
			if err := checkPathSum(sp, gotPath); err != nil {
				t.Fatalf("seed=%d params=%s: %s path %v: %v", seed, p, e.Name(), gotPath.Doors, err)
			}
		}
	})
}
