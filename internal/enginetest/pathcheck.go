package enginetest

import (
	"fmt"
	"math"

	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
)

// PathLength recomputes L(φ) of a reported path from its door hops
// (footnote 2 of the paper): the intra-partition legs p -> d_0,
// d_i -> d_{i+1}, and d_k -> q, each measured within a partition that the
// two hop endpoints legitimately share (entered through the first, left
// through the second). It errors when the hop sequence is not traversable.
func PathLength(sp *indoor.Space, path query.Path) (float64, error) {
	vp, ok := sp.HostPartition(path.Source)
	if !ok {
		return 0, fmt.Errorf("source not indoors")
	}
	vq, ok := sp.HostPartition(path.Target)
	if !ok {
		return 0, fmt.Errorf("target not indoors")
	}
	if len(path.Doors) == 0 {
		if vp != vq {
			return 0, fmt.Errorf("empty door sequence across partitions %d and %d", vp, vq)
		}
		return sp.WithinPoints(vp, path.Source, path.Target), nil
	}

	sum := sp.WithinPointDoor(vp, path.Source, path.Doors[0])
	if math.IsInf(sum, 1) {
		return 0, fmt.Errorf("first door %d not reachable from source partition %d", path.Doors[0], vp)
	}
	for i := 0; i+1 < len(path.Doors); i++ {
		w := hopDist(sp, path.Doors[i], path.Doors[i+1])
		if math.IsInf(w, 1) {
			return 0, fmt.Errorf("doors %d -> %d not traversable", path.Doors[i], path.Doors[i+1])
		}
		sum += w
	}
	last := path.Doors[len(path.Doors)-1]
	w := sp.WithinPointDoor(vq, path.Target, last)
	if math.IsInf(w, 1) {
		return 0, fmt.Errorf("last door %d does not reach target partition %d", last, vq)
	}
	// The last door must actually permit entering vq.
	enterOK := false
	for _, d := range sp.Partition(vq).Enter {
		if d == last {
			enterOK = true
			break
		}
	}
	if !enterOK {
		return 0, fmt.Errorf("last door %d is not enterable into %d", last, vq)
	}
	return sum + w, nil
}

// hopDist returns the legal distance from door a to door b through any
// partition entered via a and left via b.
func hopDist(sp *indoor.Space, a, b indoor.DoorID) float64 {
	best := math.Inf(1)
	for _, v := range sp.Door(a).Enterable {
		leaves := false
		for _, d := range sp.Partition(v).Leave {
			if d == b {
				leaves = true
				break
			}
		}
		if !leaves {
			continue
		}
		if w := sp.WithinDoors(v, a, b); w < best {
			best = w
		}
	}
	return best
}
