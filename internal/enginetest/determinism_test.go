package enginetest

import (
	"math"
	"math/rand"
	"testing"

	"indoorsq/internal/cindex"
	"indoorsq/internal/idindex"
	"indoorsq/internal/idmodel"
	"indoorsq/internal/indoor"
	"indoorsq/internal/iptree"
	"indoorsq/internal/query"
	"indoorsq/internal/testspaces"
)

// TestParallelConstructionDeterministic builds every engine sequentially and
// with a parallel worker pool over the same seeded synthetic dataset and
// asserts the two builds answer RQ/kNN/SPDQ identically — the engine-level
// counterpart of the matrix-identity tests in idindex and iptree.
func TestParallelConstructionDeterministic(t *testing.T) {
	sp := testspaces.RandomGrid(13, 4, 5, 2, 7, 0.2)
	treeOpt := iptree.Options{LeafSize: 3, Fanout: 2, Gamma: 4}
	vipOpt := treeOpt
	vipOpt.VIP = true
	seqTree, parTree := treeOpt, treeOpt
	seqTree.Workers, parTree.Workers = 1, 8
	seqVIP, parVIP := vipOpt, vipOpt
	seqVIP.Workers, parVIP.Workers = 1, 8

	// IDModel and CIndex construct without a worker pool; building them
	// twice still pins down that their construction is deterministic.
	pairs := []struct {
		name     string
		seq, par query.Engine
	}{
		{"IDModel", idmodel.New(sp), idmodel.New(sp)},
		{"IDIndex", idindex.NewWorkers(sp, 1), idindex.NewWorkers(sp, 8)},
		{"CIndex", cindex.New(sp), cindex.New(sp)},
		{"IPTree", iptree.New(sp, seqTree), iptree.New(sp, parTree)},
		{"VIPTree", iptree.New(sp, seqVIP), iptree.New(sp, parVIP)},
	}

	rng := rand.New(rand.NewSource(42))
	objs := randomObjects(sp, rng, 60)
	pts := make([]indoor.Point, 0, 12)
	for len(pts) < 12 {
		v := sp.Partition(indoor.PartitionID(rng.Intn(sp.NumPartitions())))
		if v.Kind == indoor.Staircase {
			continue
		}
		c := v.MBR.Center()
		pts = append(pts, indoor.At(c.X, c.Y, v.Floor))
	}

	for _, pr := range pairs {
		pr := pr
		t.Run(pr.name, func(t *testing.T) {
			pr.seq.SetObjects(objs)
			pr.par.SetObjects(objs)
			if pr.seq.SizeBytes() != pr.par.SizeBytes() {
				t.Fatalf("SizeBytes %d != %d", pr.par.SizeBytes(), pr.seq.SizeBytes())
			}
			var st query.Stats
			for i, p := range pts {
				sIDs, sErr := pr.seq.Range(p, 35, &st)
				pIDs, pErr := pr.par.Range(p, 35, &st)
				if (sErr == nil) != (pErr == nil) || !sameIDs(sIDs, pIDs) {
					t.Fatalf("Range diverges at %v: %v/%v vs %v/%v", p, sIDs, sErr, pIDs, pErr)
				}
				sNN, _ := pr.seq.KNN(p, 5, &st)
				pNN, _ := pr.par.KNN(p, 5, &st)
				if len(sNN) != len(pNN) {
					t.Fatalf("KNN size diverges at %v", p)
				}
				for j := range sNN {
					if sNN[j].ID != pNN[j].ID || math.Abs(sNN[j].Dist-pNN[j].Dist) > 0 {
						t.Fatalf("KNN diverges at %v: %v vs %v", p, sNN, pNN)
					}
				}
				q := pts[(i+1)%len(pts)]
				sPath, sErr := pr.seq.SPD(p, q, &st)
				pPath, pErr := pr.par.SPD(p, q, &st)
				if (sErr == nil) != (pErr == nil) {
					t.Fatalf("SPD error diverges at %v->%v", p, q)
				}
				if sErr == nil {
					if sPath.Dist != pPath.Dist || len(sPath.Doors) != len(pPath.Doors) {
						t.Fatalf("SPD diverges at %v->%v: %v vs %v", p, q, sPath, pPath)
					}
					for j := range sPath.Doors {
						if sPath.Doors[j] != pPath.Doors[j] {
							t.Fatalf("SPD door sequence diverges at %v->%v", p, q)
						}
					}
				}
			}
		})
	}
}
