package enginetest

import (
	"math"
	"sync"
	"testing"

	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/testspaces"
)

// TestConcurrentQueries verifies every engine is safe for concurrent
// read-only use after SetObjects: run with -race to catch violations.
func TestConcurrentQueries(t *testing.T) {
	sp := testspaces.RandomGrid(11, 4, 5, 2, 7, 0.2)
	engines := allEngines(sp)
	gen := struct{ objs []query.Object }{}
	gen.objs = randomObjectsForConcurrency(sp)
	for _, e := range engines {
		e.SetObjects(gen.objs)
	}

	pts := []indoor.Point{
		indoor.At(5, 5, 0), indoor.At(35, 25, 0), indoor.At(15, 35, 1),
		indoor.At(45, 5, 1), indoor.At(25, 15, 0),
	}
	for _, e := range engines {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			// Baseline answers, computed sequentially.
			var st query.Stats
			baseRange := make([][]int32, len(pts))
			baseKNN := make([][]query.Neighbor, len(pts))
			baseSPD := make([]float64, len(pts))
			for i, p := range pts {
				baseRange[i], _ = e.Range(p, 40, &st)
				baseKNN[i], _ = e.KNN(p, 5, &st)
				if path, err := e.SPD(p, pts[(i+1)%len(pts)], &st); err == nil {
					baseSPD[i] = path.Dist
				} else {
					baseSPD[i] = -1
				}
			}

			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(worker int) {
					defer wg.Done()
					var st query.Stats
					for round := 0; round < 20; round++ {
						i := (worker + round) % len(pts)
						p := pts[i]
						ids, err := e.Range(p, 40, &st)
						if err != nil || !sameIDs(ids, baseRange[i]) {
							t.Errorf("concurrent Range mismatch at %v", p)
							return
						}
						nn, err := e.KNN(p, 5, &st)
						if err != nil || len(nn) != len(baseKNN[i]) {
							t.Errorf("concurrent KNN mismatch at %v", p)
							return
						}
						for j := range nn {
							if math.Abs(nn[j].Dist-baseKNN[i][j].Dist) > 1e-9 {
								t.Errorf("concurrent KNN dist mismatch at %v", p)
								return
							}
						}
						path, err := e.SPD(p, pts[(i+1)%len(pts)], &st)
						got := -1.0
						if err == nil {
							got = path.Dist
						}
						if math.Abs(got-baseSPD[i]) > 1e-9 {
							t.Errorf("concurrent SPD mismatch at %v", p)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

func randomObjectsForConcurrency(sp *indoor.Space) []query.Object {
	var objs []query.Object
	id := int32(0)
	for i := 0; i < sp.NumPartitions(); i++ {
		v := sp.Partition(indoor.PartitionID(i))
		if v.Kind == indoor.Staircase {
			continue
		}
		c := v.MBR.Center()
		objs = append(objs, query.Object{
			ID:   id,
			Loc:  indoor.At(c.X, c.Y, v.Floor),
			Part: v.ID,
		})
		id++
	}
	return objs
}
