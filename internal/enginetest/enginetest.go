// Package enginetest provides a conformance suite run against every
// model/index engine: all five must produce identical answers for the four
// indoor spatial query types on fixtures with hand-computed distances.
package enginetest

import (
	"math"
	"testing"

	"indoorsq/internal/geom"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/testspaces"
)

// BuildFunc constructs the engine under test for a space.
type BuildFunc func(sp *indoor.Space) query.Engine

const tol = 1e-6

// Run executes the full conformance suite.
func Run(t *testing.T, build BuildFunc) {
	t.Run("StripRange", func(t *testing.T) { stripRange(t, build) })
	t.Run("StripKNN", func(t *testing.T) { stripKNN(t, build) })
	t.Run("StripSPD", func(t *testing.T) { stripSPD(t, build) })
	t.Run("StripAsymmetry", func(t *testing.T) { stripAsymmetry(t, build) })
	t.Run("TwoFloorSPD", func(t *testing.T) { twoFloorSPD(t, build) })
	t.Run("ConcaveHall", func(t *testing.T) { concaveHall(t, build) })
	t.Run("OneWayUnreachable", func(t *testing.T) { oneWayUnreachable(t, build) })
	t.Run("EdgeCases", func(t *testing.T) { edgeCases(t, build) })
	t.Run("SizeBytes", func(t *testing.T) { sizeBytes(t, build) })
	t.Run("Cancellation", func(t *testing.T) { cancellation(t, build) })
}

// stripObjects places six objects with hand-computed distances from
// p = (2.5, 8) in R1:
//
//	o1 @ (2.5,9)  in R1   -> 1
//	o3 @ (1,5)    in Hall -> 2 + sqrt(3.25)           ~ 3.802776
//	o2 @ (7.5,9)  in R2   -> 2 + 5 + 3                = 10
//	o5 @ (7,1)    in R6   -> 2 + sqrt(29) + sqrt(9.25) ~ 10.426600
//	o6 @ (18,2)   in R7   -> 2 + sqrt(160.25) + sqrt(13) ~ 18.264634
//	o4 @ (17.5,9) in R4   -> 2 + 15 + 3               = 20
func stripObjects(f *testspaces.Strip) []query.Object {
	return []query.Object{
		{ID: 1, Loc: indoor.At(2.5, 9, 0), Part: f.R1},
		{ID: 2, Loc: indoor.At(7.5, 9, 0), Part: f.R2},
		{ID: 3, Loc: indoor.At(1, 5, 0), Part: f.Hall},
		{ID: 4, Loc: indoor.At(17.5, 9, 0), Part: f.R4},
		{ID: 5, Loc: indoor.At(7, 1, 0), Part: f.R6},
		{ID: 6, Loc: indoor.At(18, 2, 0), Part: f.R7},
	}
}

var stripP = indoor.At(2.5, 8, 0)

var stripDists = map[int32]float64{
	1: 1,
	3: 2 + math.Sqrt(3.25),
	2: 10,
	5: 2 + math.Sqrt(29) + math.Sqrt(9.25),
	6: 2 + math.Sqrt(160.25) + math.Sqrt(13),
	4: 20,
}

func stripRange(t *testing.T, build BuildFunc) {
	f := testspaces.NewStrip()
	e := build(f.Space)
	e.SetObjects(stripObjects(f))

	var st query.Stats
	cases := []struct {
		r    float64
		want []int32
	}{
		{0.5, nil},
		{1, []int32{1}},
		{3, []int32{1}},
		{4, []int32{1, 3}},
		{10.5, []int32{1, 2, 3, 5}},
		{100, []int32{1, 2, 3, 4, 5, 6}},
	}
	for _, c := range cases {
		st.Reset()
		got, err := e.Range(stripP, c.r, &st)
		if err != nil {
			t.Fatalf("Range(r=%g): %v", c.r, err)
		}
		if !eqIDs(got, c.want) {
			t.Errorf("Range(r=%g) = %v, want %v", c.r, got, c.want)
		}
	}
}

func stripKNN(t *testing.T, build BuildFunc) {
	f := testspaces.NewStrip()
	e := build(f.Space)
	e.SetObjects(stripObjects(f))

	var st query.Stats
	got, err := e.KNN(stripP, 3, &st)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []int32{1, 3, 2}
	if len(got) != 3 {
		t.Fatalf("KNN(3) returned %d results", len(got))
	}
	for i, n := range got {
		if n.ID != wantIDs[i] {
			t.Errorf("KNN(3)[%d].ID = %d, want %d", i, n.ID, wantIDs[i])
		}
		if want := stripDists[wantIDs[i]]; math.Abs(n.Dist-want) > tol {
			t.Errorf("KNN(3)[%d].Dist = %g, want %g", i, n.Dist, want)
		}
	}

	// k exceeding |O| returns everything in distance order.
	got, err = e.KNN(stripP, 50, &st)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("KNN(50) returned %d results, want 6", len(got))
	}
	order := []int32{1, 3, 2, 5, 6, 4}
	for i, n := range got {
		if n.ID != order[i] {
			t.Fatalf("KNN(50) order = %v", got)
		}
		if want := stripDists[n.ID]; math.Abs(n.Dist-want) > tol {
			t.Errorf("KNN(50)[%d].Dist = %g, want %g", i, n.Dist, want)
		}
	}
}

func stripSPD(t *testing.T, build BuildFunc) {
	f := testspaces.NewStrip()
	e := build(f.Space)
	e.SetObjects(nil)

	var st query.Stats
	// Same-partition direct path.
	p1, p2 := indoor.At(1, 5, 0), indoor.At(19, 5, 0)
	path, err := e.SPD(p1, p2, &st)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(path.Dist-18) > tol {
		t.Fatalf("same-partition SPD = %g, want 18", path.Dist)
	}
	if len(path.Doors) != 0 {
		t.Fatalf("same-partition path should have no doors, got %v", path.Doors)
	}

	// R1 -> R2 through the hallway.
	path, err = e.SPD(indoor.At(2.5, 8, 0), indoor.At(7.5, 9, 0), &st)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(path.Dist-10) > tol {
		t.Fatalf("R1->R2 SPD = %g, want 10", path.Dist)
	}
	if len(path.Doors) != 2 || path.Doors[0] != f.D1 || path.Doors[1] != f.D2 {
		t.Fatalf("R1->R2 path doors = %v, want [D1 D2]", path.Doors)
	}
}

func stripAsymmetry(t *testing.T, build BuildFunc) {
	f := testspaces.NewStrip()
	e := build(f.Space)
	e.SetObjects(nil)

	var st query.Stats
	p6 := indoor.At(7, 2, 0)  // in R6
	p7 := indoor.At(15, 2, 0) // in R7

	fwd, err := e.SPD(p6, p7, &st)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fwd.Dist-8) > tol {
		t.Fatalf("R6->R7 = %g, want 8 (through one-way D8)", fwd.Dist)
	}
	if len(fwd.Doors) != 1 || fwd.Doors[0] != f.D8 {
		t.Fatalf("R6->R7 doors = %v, want [D8]", fwd.Doors)
	}

	back, err := e.SPD(p7, p6, &st)
	if err != nil {
		t.Fatal(err)
	}
	wantBack := 2 + 7.5 + math.Sqrt(0.25+4)
	if math.Abs(back.Dist-wantBack) > tol {
		t.Fatalf("R7->R6 = %g, want %g (around through the hall)", back.Dist, wantBack)
	}
	if len(back.Doors) != 2 || back.Doors[0] != f.D7 || back.Doors[1] != f.D6 {
		t.Fatalf("R7->R6 doors = %v, want [D7 D6]", back.Doors)
	}
}

func twoFloorSPD(t *testing.T, build BuildFunc) {
	f := testspaces.NewTwoFloor()
	e := build(f.Space)
	e.SetObjects(nil)

	var st query.Stats
	p := indoor.At(2.5, 8, 0) // RoomA0
	q := indoor.At(2.5, 8, 1) // RoomA1
	path, err := e.SPD(p, q, &st)
	if err != nil {
		t.Fatal(err)
	}
	leg := math.Sqrt(17.5*17.5 + 1) // DA to DS within a hallway
	want := 2 + leg + 5 + leg + 2
	if math.Abs(path.Dist-want) > tol {
		t.Fatalf("cross-floor SPD = %g, want %g", path.Dist, want)
	}
	wantDoors := []indoor.DoorID{f.DA0, f.DS0, f.DS1, f.DA1}
	if len(path.Doors) != len(wantDoors) {
		t.Fatalf("cross-floor path = %v, want %v", path.Doors, wantDoors)
	}
	for i := range wantDoors {
		if path.Doors[i] != wantDoors[i] {
			t.Fatalf("cross-floor path = %v, want %v", path.Doors, wantDoors)
		}
	}

	// kNN across floors.
	e.SetObjects([]query.Object{
		{ID: 1, Loc: indoor.At(3, 8, 0), Part: f.RoomA0},
		{ID: 2, Loc: indoor.At(2.5, 8, 1), Part: f.RoomA1},
	})
	got, err := e.KNN(p, 2, &st)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("cross-floor KNN = %v", got)
	}
	if math.Abs(got[1].Dist-want) > tol {
		t.Fatalf("cross-floor KNN dist = %g, want %g", got[1].Dist, want)
	}
}

func concaveHall(t *testing.T, build BuildFunc) {
	f := testspaces.NewLHall()
	e := build(f.Space)
	e.SetObjects(nil)

	var st query.Stats
	p := indoor.At(1, 9, 0)  // R1
	q := indoor.At(11, 1, 0) // R2
	path, err := e.SPD(p, q, &st)
	if err != nil {
		t.Fatal(err)
	}
	corner := geom.Pt(2, 2)
	want := 1 + geom.Pt(1, 8).Dist(corner) + corner.Dist(geom.Pt(10, 1)) + 1
	if math.Abs(path.Dist-want) > tol {
		t.Fatalf("concave SPD = %g, want %g", path.Dist, want)
	}

	// Range query whose geodesic matters: object around the corner.
	e.SetObjects([]query.Object{
		{ID: 1, Loc: indoor.At(9, 1, 0), Part: f.Hall},
	})
	straight := indoor.At(1, 7, 0).XY().Dist(geom.Pt(9, 1))
	geodesic := geom.Pt(1, 7).Dist(corner) + corner.Dist(geom.Pt(9, 1))
	got, err := e.Range(indoor.At(1, 7, 0), (straight+geodesic)/2, &st)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("object should be outside geodesic range, got %v", got)
	}
	got, err = e.Range(indoor.At(1, 7, 0), geodesic+tol, &st)
	if err != nil {
		t.Fatal(err)
	}
	if !eqIDs(got, []int32{1}) {
		t.Fatalf("object should be inside geodesic range, got %v", got)
	}
}

// oneWaySpace has a room X whose only door leads out (X -> Hall), so X is
// unreachable from the hall.
func oneWaySpace() (*indoor.Space, indoor.PartitionID, indoor.PartitionID) {
	b := indoor.NewBuilder("oneway", 1)
	hall := b.AddHallway(0, geom.RectPoly(geom.R(0, 0, 10, 4)))
	x := b.AddRoom(0, geom.RectPoly(geom.R(0, 4, 5, 8)))
	y := b.AddRoom(0, geom.RectPoly(geom.R(5, 4, 10, 8)))
	dx := b.AddDoor(geom.Pt(2.5, 4), 0)
	b.ConnectOneWay(dx, x, hall) // exit-only
	dy := b.AddDoor(geom.Pt(7.5, 4), 0)
	b.ConnectBoth(dy, hall, y)
	sp, err := b.Build()
	if err != nil {
		panic(err)
	}
	return sp, hall, x
}

func oneWayUnreachable(t *testing.T, build BuildFunc) {
	sp, hall, x := oneWaySpace()
	e := build(sp)
	e.SetObjects([]query.Object{
		{ID: 1, Loc: indoor.At(2, 6, 0), Part: x},
		{ID: 2, Loc: indoor.At(7, 6, 0), Part: indoor.PartitionID(2)},
	})
	_ = hall

	var st query.Stats
	pHall := indoor.At(5, 2, 0)
	pX := indoor.At(2, 6, 0)

	// Hall -> X is impossible.
	if _, err := e.SPD(pHall, pX, &st); err != query.ErrUnreachable {
		t.Fatalf("SPD into exit-only room: err = %v, want ErrUnreachable", err)
	}
	// X -> Hall works.
	path, err := e.SPD(pX, pHall, &st)
	if err != nil {
		t.Fatal(err)
	}
	want := geom.Pt(2, 6).Dist(geom.Pt(2.5, 4)) + geom.Pt(2.5, 4).Dist(geom.Pt(5, 2))
	if math.Abs(path.Dist-want) > tol {
		t.Fatalf("X->Hall = %g, want %g", path.Dist, want)
	}

	// Range from the hall must not see the object locked in X.
	got, err := e.Range(pHall, 1000, &st)
	if err != nil {
		t.Fatal(err)
	}
	if !eqIDs(got, []int32{2}) {
		t.Fatalf("Range sees unreachable object: %v", got)
	}
	// kNN likewise returns only the reachable object.
	nn, err := e.KNN(pHall, 5, &st)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 1 || nn[0].ID != 2 {
		t.Fatalf("KNN sees unreachable object: %v", nn)
	}
}

func edgeCases(t *testing.T, build BuildFunc) {
	f := testspaces.NewStrip()
	e := build(f.Space)
	e.SetObjects(stripObjects(f))

	var st query.Stats
	bad := indoor.At(-5, -5, 0)
	if _, err := e.Range(bad, 10, &st); err != query.ErrNoHost {
		t.Fatalf("Range from invalid point: err = %v, want ErrNoHost", err)
	}
	if _, err := e.KNN(bad, 3, &st); err != query.ErrNoHost {
		t.Fatalf("KNN from invalid point: err = %v, want ErrNoHost", err)
	}
	if _, err := e.SPD(bad, stripP, &st); err != query.ErrNoHost {
		t.Fatalf("SPD from invalid point: err = %v, want ErrNoHost", err)
	}
	if _, err := e.SPD(stripP, bad, &st); err != query.ErrNoHost {
		t.Fatalf("SPD to invalid point: err = %v, want ErrNoHost", err)
	}

	// k = 0 yields no results.
	got, err := e.KNN(stripP, 0, &st)
	if err != nil {
		t.Fatalf("KNN(0): %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("KNN(0) = %v", got)
	}

	// Zero radius finds only co-located objects.
	ids, err := e.Range(indoor.At(2.5, 9, 0), 0, &st)
	if err != nil {
		t.Fatal(err)
	}
	if !eqIDs(ids, []int32{1}) {
		t.Fatalf("Range(r=0) = %v, want [1]", ids)
	}

	// Queries with an empty object set.
	e.SetObjects(nil)
	ids, err = e.Range(stripP, 100, &st)
	if err != nil || len(ids) != 0 {
		t.Fatalf("Range with no objects = %v, %v", ids, err)
	}
	nn, err := e.KNN(stripP, 3, &st)
	if err != nil || len(nn) != 0 {
		t.Fatalf("KNN with no objects = %v, %v", nn, err)
	}

	// SPD to self.
	path, err := e.SPD(stripP, stripP, &st)
	if err != nil || path.Dist != 0 {
		t.Fatalf("SPD to self = %v, %v", path, err)
	}
}

func sizeBytes(t *testing.T, build BuildFunc) {
	f := testspaces.NewStrip()
	e := build(f.Space)
	if e.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
	if e.Name() == "" {
		t.Fatal("Name must not be empty")
	}
}

func eqIDs(got []int32, want []int32) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}
