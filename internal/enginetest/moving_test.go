package enginetest

import (
	"math"
	"testing"

	"indoorsq/internal/cindex"
	"indoorsq/internal/idindex"
	"indoorsq/internal/idmodel"
	"indoorsq/internal/indoor"
	"indoorsq/internal/iptree"
	"indoorsq/internal/query"
	"indoorsq/internal/testspaces"
)

// TestMovingObjects exercises the Sec. 7 moving-objects extension on all
// five engines: insert, move across partitions, delete — query answers must
// track the updates.
func TestMovingObjects(t *testing.T) {
	f := testspaces.NewStrip()
	engines := []query.Engine{
		idmodel.New(f.Space),
		idindex.New(f.Space),
		cindex.New(f.Space),
		iptree.New(f.Space, iptree.Options{LeafSize: 3, Fanout: 2}),
		iptree.New(f.Space, iptree.Options{LeafSize: 3, Fanout: 2, VIP: true}),
	}
	p := indoor.At(2.5, 8, 0) // in R1
	var st query.Stats

	for _, e := range engines {
		up, ok := e.(query.ObjectUpdater)
		if !ok {
			t.Fatalf("%s does not support object updates", e.Name())
		}
		// Insert without any prior SetObjects.
		if !up.InsertObject(query.Object{ID: 1, Loc: indoor.At(2.5, 9, 0), Part: f.R1}) {
			t.Fatalf("%s: insert failed", e.Name())
		}
		if up.InsertObject(query.Object{ID: 1, Loc: indoor.At(3, 9, 0), Part: f.R1}) {
			t.Fatalf("%s: duplicate insert must fail", e.Name())
		}
		nn, err := e.KNN(p, 1, &st)
		if err != nil || len(nn) != 1 || nn[0].ID != 1 || math.Abs(nn[0].Dist-1) > 1e-9 {
			t.Fatalf("%s: after insert KNN = %v, %v", e.Name(), nn, err)
		}

		// Move it to R4 across the hall.
		if !up.MoveObject(1, indoor.At(17.5, 9, 0), f.R4) {
			t.Fatalf("%s: move failed", e.Name())
		}
		nn, err = e.KNN(p, 1, &st)
		if err != nil || len(nn) != 1 {
			t.Fatalf("%s: after move KNN = %v, %v", e.Name(), nn, err)
		}
		want := 2 + 15 + 3.0 // p -> D1 -> D4 -> object
		if math.Abs(nn[0].Dist-want) > 1e-9 {
			t.Fatalf("%s: after move dist = %g, want %g", e.Name(), nn[0].Dist, want)
		}
		// Range no longer sees it nearby.
		ids, err := e.Range(p, 5, &st)
		if err != nil || len(ids) != 0 {
			t.Fatalf("%s: after move Range = %v, %v", e.Name(), ids, err)
		}

		// Delete it.
		if !up.DeleteObject(1) {
			t.Fatalf("%s: delete failed", e.Name())
		}
		if up.DeleteObject(1) {
			t.Fatalf("%s: double delete must fail", e.Name())
		}
		nn, err = e.KNN(p, 1, &st)
		if err != nil || len(nn) != 0 {
			t.Fatalf("%s: after delete KNN = %v, %v", e.Name(), nn, err)
		}
	}
}

// TestMovingObjectsKeepOthersIntact verifies deletions do not disturb
// other objects' bucket entries.
func TestMovingObjectsKeepOthersIntact(t *testing.T) {
	f := testspaces.NewStrip()
	e := idmodel.New(f.Space)
	e.SetObjects([]query.Object{
		{ID: 1, Loc: indoor.At(2, 9, 0), Part: f.R1},
		{ID: 2, Loc: indoor.At(3, 9, 0), Part: f.R1},
		{ID: 3, Loc: indoor.At(10, 5, 0), Part: f.Hall},
	})
	e.DeleteObject(2)
	var st query.Stats
	ids, err := e.Range(indoor.At(2.5, 8, 0), 1000, &st)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("Range after delete = %v", ids)
	}
	// Re-inserting the deleted id works.
	if !e.InsertObject(query.Object{ID: 2, Loc: indoor.At(7, 2, 0), Part: f.R6}) {
		t.Fatal("re-insert failed")
	}
	ids, _ = e.Range(indoor.At(2.5, 8, 0), 1000, &st)
	if len(ids) != 3 {
		t.Fatalf("Range after re-insert = %v", ids)
	}
}
