package enginetest

import (
	"math"
	"math/rand"
	"testing"

	"indoorsq/internal/cindex"
	"indoorsq/internal/exec"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/testspaces"
)

// TestCIndexCachedEqualsUncached runs the same randomized RQ/kNNQ/SPDQ
// workload over a concave multi-floor space against two CINDEX instances —
// one computing every door-pair distance on the fly (NoDistCache), one going
// through the space's lazy door-pair cache — and requires bit-identical
// answers. Only the cost counters may differ.
func TestCIndexCachedEqualsUncached(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		sp := testspaces.RandomGridConcave(seed*31, 4, 4, 2, 3)
		rng := rand.New(rand.NewSource(seed))
		objs := randomObjects(sp, rng, 25)

		cached := cindex.New(sp)
		uncached := cindex.NewOpts(sp, cindex.Options{NoDistCache: true})
		cached.SetObjects(objs)
		uncached.SetObjects(objs)

		for q := 0; q < 20; q++ {
			p := randomPoint(sp, rng)
			var stC, stU query.Stats

			idsC, errC := cached.Range(p, 35, &stC)
			idsU, errU := uncached.Range(p, 35, &stU)
			if (errC == nil) != (errU == nil) || !eqIDs(idsC, idsU) {
				t.Fatalf("seed %d: Range(%v) cached %v / uncached %v", seed, p, idsC, idsU)
			}

			nnC, _ := cached.KNN(p, 5, &stC)
			nnU, _ := uncached.KNN(p, 5, &stU)
			if len(nnC) != len(nnU) {
				t.Fatalf("seed %d: KNN(%v) lengths %d vs %d", seed, p, len(nnC), len(nnU))
			}
			for i := range nnC {
				if nnC[i].ID != nnU[i].ID ||
					math.Float64bits(nnC[i].Dist) != math.Float64bits(nnU[i].Dist) {
					t.Fatalf("seed %d: KNN(%v)[%d] cached %+v != uncached %+v",
						seed, p, i, nnC[i], nnU[i])
				}
			}

			q2 := randomPoint(sp, rng)
			pathC, errC2 := cached.SPD(p, q2, &stC)
			pathU, errU2 := uncached.SPD(p, q2, &stU)
			if (errC2 == nil) != (errU2 == nil) {
				t.Fatalf("seed %d: SPD(%v,%v) errs %v vs %v", seed, p, q2, errC2, errU2)
			}
			if errC2 == nil && math.Float64bits(pathC.Dist) != math.Float64bits(pathU.Dist) {
				t.Fatalf("seed %d: SPD(%v,%v) dist %v vs %v", seed, p, q2, pathC.Dist, pathU.Dist)
			}

			if stU.CacheHits != 0 || stU.CacheMisses != 0 {
				t.Fatalf("seed %d: uncached engine recorded cache counters %+v", seed, stU)
			}
		}
	}
}

// TestDistCacheUnderExecWorkers fans a mixed batch over a cached CINDEX
// through the exec worker pool on a concave space — run with -race in
// tier-1 — and checks that the answers match a 1-worker run and that cache
// counters survive the per-worker stats merge.
func TestDistCacheUnderExecWorkers(t *testing.T) {
	sp := testspaces.RandomGridConcave(17, 5, 4, 2, 4)
	rng := rand.New(rand.NewSource(99))
	eng := cindex.New(sp)
	eng.SetObjects(randomObjects(sp, rng, 30))

	var ops []exec.Op
	for i := 0; i < 24; i++ {
		p := randomPoint(sp, rng)
		switch i % 3 {
		case 0:
			ops = append(ops, exec.Op{Kind: exec.RangeQ, P: p, R: 35})
		case 1:
			ops = append(ops, exec.Op{Kind: exec.KNNQ, P: p, K: 5})
		case 2:
			ops = append(ops, exec.Op{Kind: exec.SPDQ, P: p, Q: randomPoint(sp, rng)})
		}
	}

	seq := exec.Pool{Workers: 1}
	seqRes, seqBatch := seq.Run(eng, ops)

	par := exec.Pool{Workers: 8}
	parRes, parBatch := par.Run(eng, ops)

	for i := range seqRes {
		if (seqRes[i].Err == nil) != (parRes[i].Err == nil) {
			t.Fatalf("op %d: err %v vs %v", i, seqRes[i].Err, parRes[i].Err)
		}
		if !eqIDs(seqRes[i].IDs, parRes[i].IDs) {
			t.Fatalf("op %d: Range ids diverge", i)
		}
		if len(seqRes[i].Neighbors) != len(parRes[i].Neighbors) {
			t.Fatalf("op %d: KNN lengths diverge", i)
		}
		for j := range seqRes[i].Neighbors {
			if seqRes[i].Neighbors[j] != parRes[i].Neighbors[j] {
				t.Fatalf("op %d: KNN[%d] diverges", i, j)
			}
		}
	}

	if total := parBatch.Stats.CacheHits + parBatch.Stats.CacheMisses; total == 0 {
		t.Fatal("concurrent batch recorded no cache lookups")
	}
	// The cache was warmed by the sequential run, so every lookup of the
	// concurrent batch must be a hit — and the merged totals must match the
	// sequential run's lookup count exactly.
	if parBatch.Stats.CacheMisses != 0 {
		t.Fatalf("warm concurrent batch recorded %d misses", parBatch.Stats.CacheMisses)
	}
	seqTotal := seqBatch.Stats.CacheHits + seqBatch.Stats.CacheMisses
	if parBatch.Stats.CacheHits != seqTotal {
		t.Fatalf("merged hits %d != sequential lookups %d", parBatch.Stats.CacheHits, seqTotal)
	}

	// Everything the cache holds must still agree with the uncached kernel.
	var vID indoor.PartitionID
	for vi := 0; vi < sp.NumPartitions(); vi++ {
		vID = indoor.PartitionID(vi)
		for _, a := range sp.Partition(vID).Doors {
			for _, b := range sp.Partition(vID).Doors {
				got, _ := sp.WithinDoorsCached(vID, a, b)
				want := sp.WithinDoors(vID, a, b)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("v=%d ‖%d,%d‖: cached %v != uncached %v", vID, a, b, got, want)
				}
			}
		}
	}
}
