package enginetest

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"indoorsq/internal/indoor"
	"indoorsq/internal/oracle"
	"indoorsq/internal/query"
	"indoorsq/internal/spacegen"
)

// diffSpaces is the number of generated spaces the differential sweep
// checks; the harness contract is at least 200.
const diffSpaces = 210

// diffParams derives a varied generator parameterization from the seed,
// cycling through every hallway topology, decomposition, imbalance,
// one-way doors, and floor counts while keeping each space small enough
// that the whole sweep stays fast under -race.
func diffParams(seed int64) spacegen.Params {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed5eed))
	p := spacegen.Params{
		Floors:      1 + rng.Intn(3),
		Rows:        1 + rng.Intn(3),
		Cols:        2 + rng.Intn(3),
		Hall:        spacegen.HallKind(rng.Intn(3)),
		ExtraDoors:  rng.Intn(6),
		OneWayFrac:  float64(rng.Intn(3)) / 2,
		Imbalance:   rng.Float64(),
		Decompose:   rng.Intn(2) == 1,
		StairLength: 4 + rng.Float64()*6,
		Objects:     8 + rng.Intn(12),
	}
	return p.Normalize()
}

// TestDifferentialVsOracle is the tentpole harness: for hundreds of
// generated (seed, space, query) triples, all five engines — driven both
// directly and through query.AsCtx — must match the brute-force oracle
// exactly on every query type. It runs in short mode too; any divergence
// prints the failing seed and generator parameters.
func TestDifferentialVsOracle(t *testing.T) {
	for seed := int64(1); seed <= diffSpaces; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runDifferential(t, seed, diffParams(seed), 3)
		})
	}
}

// runDifferential checks every engine against the oracle on one
// generated space over the given number of query trials.
func runDifferential(t *testing.T, seed int64, params spacegen.Params, trials int) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("seed=%d params=%s: %s", seed, params, fmt.Sprintf(format, args...))
	}
	sp, err := spacegen.Generate(seed, params)
	if err != nil {
		fail("generate: %v", err)
	}
	objs := spacegen.Objects(sp, seed+1, params.Objects)
	ref := oracle.New(sp)
	ref.SetObjects(objs)
	engines := allEngines(sp)
	ctxEngines := make([]query.EngineCtx, len(engines))
	for i, e := range engines {
		e.SetObjects(objs)
		ctxEngines[i] = query.AsCtx(e)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed * 7919))
	var st query.Stats

	// ErrNoHost parity: a point outside every partition must be rejected
	// identically by the oracle and every engine on every entry point.
	out := indoor.At(-1e6, -1e6, 0)
	if _, err := ref.Range(out, 1, nil); !errors.Is(err, query.ErrNoHost) {
		fail("oracle outdoor Range err = %v", err)
	}
	for i, e := range engines {
		if _, err := e.Range(out, 1, &st); !errors.Is(err, query.ErrNoHost) {
			fail("%s outdoor Range err = %v, want ErrNoHost", e.Name(), err)
		}
		if _, err := e.KNN(out, 1, &st); !errors.Is(err, query.ErrNoHost) {
			fail("%s outdoor KNN err = %v, want ErrNoHost", e.Name(), err)
		}
		if _, err := ctxEngines[i].SPDCtx(ctx, out, out, &st); !errors.Is(err, query.ErrNoHost) {
			fail("%s outdoor SPDCtx err = %v, want ErrNoHost", e.Name(), err)
		}
	}

	for trial := 0; trial < trials; trial++ {
		p := randomPoint(sp, rng)
		q := randomPoint(sp, rng)
		all, err := ref.AllDists(p)
		if err != nil {
			fail("trial %d: oracle AllDists: %v", trial, err)
		}

		// RQ at radii snapped away from floating-point decision
		// boundaries (engines sum distances in different orders, so a
		// radius within ~1e-12 of an object distance could legally flip
		// its membership).
		for _, r := range snapRadii(all, rng) {
			wantIDs, err := ref.Range(p, r, nil)
			if err != nil {
				fail("trial %d: oracle Range(r=%g): %v", trial, r, err)
			}
			for i, e := range engines {
				gotIDs, err := e.Range(p, r, &st)
				if err != nil {
					fail("trial %d: %s Range(r=%g): %v", trial, e.Name(), r, err)
				}
				if !sameIDs(gotIDs, wantIDs) {
					fail("trial %d: %s Range(%v, r=%g) = %v, oracle %v",
						trial, e.Name(), p, r, gotIDs, wantIDs)
				}
				gotCtx, err := ctxEngines[i].RangeCtx(ctx, p, r, &st)
				if err != nil || !sameIDs(gotCtx, wantIDs) {
					fail("trial %d: %s RangeCtx(r=%g) = %v (%v), oracle %v",
						trial, e.Name(), r, gotCtx, err, wantIDs)
				}
			}
		}

		// kNNQ at k values snapped off near-ties at the k-th distance.
		for _, k := range snapKs(all, len(objs), rng) {
			wantKNN, err := ref.KNN(p, k, nil)
			if err != nil {
				fail("trial %d: oracle KNN(k=%d): %v", trial, k, err)
			}
			for i, e := range engines {
				gotKNN, err := e.KNN(p, k, &st)
				if err != nil {
					fail("trial %d: %s KNN(k=%d): %v", trial, e.Name(), k, err)
				}
				compareKNN(fail, trial, e.Name(), k, gotKNN, wantKNN)
				gotCtx, err := ctxEngines[i].KNNCtx(ctx, p, k, &st)
				if err != nil {
					fail("trial %d: %s KNNCtx(k=%d): %v", trial, e.Name(), k, err)
				}
				compareKNN(fail, trial, e.Name()+"Ctx", k, gotCtx, wantKNN)
			}
		}

		// SPDQ: distance equality, error parity, and path validity (the
		// reported door sequence must be traversable and sum to the
		// distance — door choices between equal-length paths may differ).
		wantPath, wantErr := ref.SPD(p, q, nil)
		if wantErr == nil {
			if err := checkPathSum(sp, wantPath); err != nil {
				fail("trial %d: oracle path %v: %v", trial, wantPath.Doors, err)
			}
		} else if !errors.Is(wantErr, query.ErrUnreachable) {
			fail("trial %d: oracle SPD(%v -> %v): %v", trial, p, q, wantErr)
		}
		for i, e := range engines {
			gotPath, err := e.SPD(p, q, &st)
			comparePath(fail, sp, trial, e.Name(), gotPath, err, wantPath, wantErr)
			gotCtx, err := ctxEngines[i].SPDCtx(ctx, p, q, &st)
			comparePath(fail, sp, trial, e.Name()+"Ctx", gotCtx, err, wantPath, wantErr)
		}
	}
}

type failFunc func(format string, args ...any)

func compareKNN(fail failFunc, trial int, name string, k int, got, want []query.Neighbor) {
	if len(got) != len(want) {
		fail("trial %d: %s KNN(k=%d) returned %d neighbors, oracle %d",
			trial, name, k, len(got), len(want))
	}
	if !sameIDs(knnIDs(got), knnIDs(want)) {
		fail("trial %d: %s KNN(k=%d) ids %v, oracle %v",
			trial, name, k, knnIDs(got), knnIDs(want))
	}
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > tol {
			fail("trial %d: %s KNN(k=%d)[%d] dist %.12g, oracle %.12g",
				trial, name, k, i, got[i].Dist, want[i].Dist)
		}
	}
}

func comparePath(fail failFunc, sp *indoor.Space, trial int, name string, got query.Path, err error, want query.Path, wantErr error) {
	if wantErr != nil {
		if !errors.Is(err, query.ErrUnreachable) {
			fail("trial %d: %s SPD err = %v, oracle %v", trial, name, err, wantErr)
		}
		return
	}
	if err != nil {
		fail("trial %d: %s SPD: %v (oracle dist %.12g)", trial, name, err, want.Dist)
	}
	if math.Abs(got.Dist-want.Dist) > tol {
		fail("trial %d: %s SPD dist %.12g, oracle %.12g (doors %v vs %v)",
			trial, name, got.Dist, want.Dist, got.Doors, want.Doors)
	}
	if err := checkPathSum(sp, got); err != nil {
		fail("trial %d: %s path %v: %v", trial, name, got.Doors, err)
	}
}

// snapRadii picks range radii that are safely away from any object
// distance: zero, a midpoint of a well-separated gap in the oracle's
// sorted distance ladder, and beyond the farthest reachable object.
func snapRadii(all []query.Neighbor, rng *rand.Rand) []float64 {
	radii := []float64{0}
	if len(all) == 0 {
		return append(radii, 1)
	}
	for try := 0; try < 12; try++ {
		i := rng.Intn(len(all))
		lo := all[i].Dist
		hi := math.Inf(1)
		if i+1 < len(all) {
			hi = all[i+1].Dist
		}
		if hi-lo > 1e-6 {
			r := lo + 1
			if !math.IsInf(hi, 1) {
				r = (lo + hi) / 2
			}
			radii = append(radii, r)
			break
		}
	}
	return append(radii, all[len(all)-1].Dist+1)
}

// snapKs picks kNN k values whose k-th and (k+1)-th oracle distances are
// well separated, so the cut point is unambiguous for every engine; it
// always includes k=1 and one k exceeding the object count.
func snapKs(all []query.Neighbor, objects int, rng *rand.Rand) []int {
	ks := []int{1, objects + 3}
	if len(all) > 1 {
		k := 1 + rng.Intn(len(all))
		for k < len(all) && all[k].Dist-all[k-1].Dist <= 1e-6 {
			k++
		}
		ks = append(ks, k)
	}
	return ks
}
