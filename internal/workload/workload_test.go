package workload

import (
	"math"
	"testing"

	"indoorsq/internal/idmodel"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/testspaces"
)

func TestObjectsAreValid(t *testing.T) {
	sp := testspaces.RandomGrid(1, 4, 5, 2, 6, 0.1)
	g := New(sp, 42)
	objs := g.Objects(200)
	if len(objs) != 200 {
		t.Fatalf("got %d objects", len(objs))
	}
	for _, o := range objs {
		host, ok := sp.HostPartition(o.Loc)
		if !ok {
			t.Fatalf("object %d at %v is not indoors", o.ID, o.Loc)
		}
		if host != o.Part {
			t.Fatalf("object %d host mismatch: %d vs %d", o.ID, host, o.Part)
		}
		if sp.Partition(o.Part).Kind == indoor.Staircase {
			t.Fatalf("object %d in a staircase", o.ID)
		}
	}
}

func TestObjectsDeterministic(t *testing.T) {
	sp := testspaces.RandomGrid(1, 3, 3, 1, 3, 0)
	a := New(sp, 7).Objects(50)
	b := New(sp, 7).Objects(50)
	for i := range a {
		if a[i].Loc != b[i].Loc {
			t.Fatal("same seed must give same objects")
		}
	}
	c := New(sp, 8).Objects(50)
	same := true
	for i := range a {
		if a[i].Loc != c[i].Loc {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestPointsAreValid(t *testing.T) {
	sp := testspaces.NewStrip().Space
	g := New(sp, 3)
	for _, p := range g.Points(100) {
		if !sp.Contains(p) {
			t.Fatalf("point %v not indoors", p)
		}
	}
}

func TestSPDPairsApproximateS2T(t *testing.T) {
	sp := testspaces.RandomGrid(5, 6, 6, 2, 10, 0)
	g := New(sp, 11)
	const s2t = 60.0
	pairs := g.SPDPairs(s2t, 10)
	if len(pairs) != 10 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	eng := idmodel.New(sp)
	eng.SetObjects(nil)
	var st query.Stats
	okCount := 0
	for _, pr := range pairs {
		path, err := eng.SPD(pr.P, pr.Q, &st)
		if err != nil {
			t.Fatalf("generated pair unreachable: %v", err)
		}
		if math.Abs(path.Dist-pr.Dist) > 1e-6 {
			t.Fatalf("generator distance %g != engine distance %g", pr.Dist, path.Dist)
		}
		if math.Abs(path.Dist-s2t) <= 0.25*s2t {
			okCount++
		}
	}
	if okCount < 7 {
		t.Fatalf("only %d/10 pairs near s2t", okCount)
	}
}

func TestSPDPairsSmallSpace(t *testing.T) {
	// s2t larger than the whole space: best-effort pairs still come back.
	sp := testspaces.NewStrip().Space
	g := New(sp, 2)
	pairs := g.SPDPairs(500, 3)
	if len(pairs) != 3 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for _, pr := range pairs {
		if math.IsInf(pr.Dist, 1) || pr.Dist <= 0 {
			t.Fatalf("bad pair dist %g", pr.Dist)
		}
	}
}
