package workload_test

import (
	"context"
	"errors"
	"testing"

	"indoorsq/internal/testspaces"
	"indoorsq/internal/workload"
)

func TestSPDPairsCtxCancelled(t *testing.T) {
	sp := testspaces.RandomGrid(5, 4, 4, 2, 6, 0.2)
	g := workload.New(sp, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pairs, err := g.SPDPairsCtx(ctx, 40, 8)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SPDPairsCtx(cancelled) = %v, want Canceled", err)
	}
	if len(pairs) != 0 {
		t.Fatalf("pre-cancelled generation produced %d pairs", len(pairs))
	}
}

func TestSPDPairsCtxBackgroundEquivalence(t *testing.T) {
	sp := testspaces.RandomGrid(5, 4, 4, 2, 6, 0.2)
	g := workload.New(sp, 3)
	pairs, err := g.SPDPairsCtx(context.Background(), 40, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 4 {
		t.Fatalf("SPDPairsCtx produced %d pairs, want 4", len(pairs))
	}
}
