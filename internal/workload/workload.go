// Package workload generates the object sets and query instances of the
// paper's benchmark (Sec. 5.2): random valid indoor objects, random query
// points for RQ/kNNQ, and SPDQ source-target pairs whose shortest indoor
// distance approximates a controlled s2t value.
package workload

import (
	"context"
	"math"
	"math/rand"

	"indoorsq/internal/doorgraph"
	"indoorsq/internal/indoor"
	"indoorsq/internal/pq"
	"indoorsq/internal/query"
)

// Generator produces reproducible workloads over one space.
type Generator struct {
	sp  *indoor.Space
	g   *doorgraph.Graph
	rng *rand.Rand

	parts []indoor.PartitionID // candidate host partitions (non-staircase)
	cum   []float64            // cumulative area weights
}

// New returns a generator seeded deterministically.
func New(sp *indoor.Space, seed int64) *Generator {
	g := &Generator{
		sp:  sp,
		rng: rand.New(rand.NewSource(seed)),
	}
	var total float64
	for i := range sp.Partitions() {
		v := sp.Partition(indoor.PartitionID(i))
		if v.Kind == indoor.Staircase {
			continue
		}
		total += v.Poly.Area()
		g.parts = append(g.parts, v.ID)
		g.cum = append(g.cum, total)
	}
	return g
}

// graph lazily builds the door graph (needed only for SPDQ pairs).
func (g *Generator) graph() *doorgraph.Graph {
	if g.g == nil {
		g.g = doorgraph.Build(g.sp)
	}
	return g.g
}

// Point returns a uniformly distributed valid indoor point (area-weighted
// over non-staircase partitions).
func (g *Generator) Point() indoor.Point {
	p, _ := g.PointIn()
	return p
}

// PointIn returns a random valid point together with its host partition.
func (g *Generator) PointIn() (indoor.Point, indoor.PartitionID) {
	for {
		x := g.rng.Float64() * g.cum[len(g.cum)-1]
		lo, hi := 0, len(g.cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if g.cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		v := g.parts[lo]
		if p, ok := g.pointWithin(v); ok {
			return p, v
		}
	}
}

// pointWithin rejection-samples a point inside partition v.
func (g *Generator) pointWithin(v indoor.PartitionID) (indoor.Point, bool) {
	part := g.sp.Partition(v)
	for try := 0; try < 64; try++ {
		x := part.MBR.MinX + g.rng.Float64()*part.MBR.Width()
		y := part.MBR.MinY + g.rng.Float64()*part.MBR.Height()
		p := indoor.At(x, y, part.Floor)
		if part.Poly.Contains(p.XY()) {
			// Verify the point is not claimed by another partition first
			// (e.g. a point exactly on a shared wall).
			if host, ok := g.sp.HostPartition(p); ok && host == v {
				return p, true
			}
		}
	}
	return indoor.Point{}, false
}

// Objects generates n static objects at random valid locations.
func (g *Generator) Objects(n int) []query.Object {
	objs := make([]query.Object, n)
	for i := range objs {
		p, v := g.PointIn()
		objs[i] = query.Object{ID: int32(i), Loc: p, Part: v}
	}
	return objs
}

// Points generates n random query points.
func (g *Generator) Points(n int) []indoor.Point {
	pts := make([]indoor.Point, n)
	for i := range pts {
		pts[i] = g.Point()
	}
	return pts
}

// Pair is one SPDQ instance.
type Pair struct {
	P, Q indoor.Point
	// Dist is the shortest indoor distance from P to Q, computed during
	// generation (useful as ground truth in tests).
	Dist float64
}

// SPDPairs generates n source-target pairs whose indoor distance
// approximates s2t (within ±15%, best effort): a random source p is chosen,
// doors are expanded from p as in the paper, and a target q is sampled
// beyond a door whose distance approaches s2t.
func (g *Generator) SPDPairs(s2t float64, n int) []Pair {
	pairs, _ := g.SPDPairsCtx(context.Background(), s2t, n)
	return pairs
}

// SPDPairsCtx is SPDPairs bounded by ctx: generation polls the context
// between candidate sources (each candidate runs a bounded door Dijkstra),
// so an oversized or unlucky workload build can be cancelled or
// deadline-bounded. The pairs generated so far are returned alongside the
// context's error.
func (g *Generator) SPDPairsCtx(ctx context.Context, s2t float64, n int) ([]Pair, error) {
	pairs := make([]Pair, 0, n)
	for len(pairs) < n {
		pr, ok, err := g.spdPair(ctx, s2t)
		if err != nil {
			return pairs, err
		}
		if ok {
			pairs = append(pairs, pr)
		}
	}
	return pairs, nil
}

func (g *Generator) spdPair(ctx context.Context, s2t float64) (Pair, bool, error) {
	const tol = 0.15
	best := Pair{Dist: math.Inf(1)}
	bestErr := math.Inf(1)
	for attempt := 0; attempt < 24; attempt++ {
		if err := ctx.Err(); err != nil {
			return Pair{}, false, err
		}
		p, vp := g.PointIn()
		dist := g.distFrom(p, vp, s2t*1.2)
		// Choose the reachable door closest below s2t.
		var door indoor.DoorID = indoor.NoDoor
		dd := -1.0
		for d, dv := range dist {
			if dv <= s2t && dv > dd {
				door = indoor.DoorID(d)
				dd = dv
			}
		}
		if door == indoor.NoDoor {
			continue
		}
		// Sample candidate targets in the door's enterable partitions and
		// keep the one whose true distance from p is nearest s2t.
		enter := g.sp.Door(door).Enterable
		for trial := 0; trial < 16; trial++ {
			v := enter[g.rng.Intn(len(enter))]
			if g.sp.Partition(v).Kind == indoor.Staircase {
				continue
			}
			q, ok := g.pointWithin(v)
			if !ok {
				continue
			}
			true_ := g.trueDist(dist, p, vp, q, v)
			if math.IsInf(true_, 1) {
				continue
			}
			if err := math.Abs(true_ - s2t); err < bestErr {
				bestErr = err
				best = Pair{P: p, Q: q, Dist: true_}
			}
		}
		if bestErr <= tol*s2t {
			return best, true, nil
		}
	}
	return best, !math.IsInf(best.Dist, 1), nil
}

// distFrom runs a door Dijkstra from p (bounded by limit) and returns the
// per-door distance array.
func (g *Generator) distFrom(p indoor.Point, vp indoor.PartitionID, limit float64) []float64 {
	dg := g.graph()
	dist := make([]float64, dg.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	var h pq.Heap[int32]
	h.Grow(dg.N)
	for _, d := range g.sp.Partition(vp).Leave {
		w := g.sp.WithinPointDoor(vp, p, d)
		if w < dist[d] {
			dist[d] = w
			h.Push(int32(d), w)
		}
	}
	for h.Len() > 0 {
		d, dd := h.Pop()
		if dd > dist[d] || dd > limit {
			continue
		}
		to, w := dg.FwdRow(int(d))
		for i, t := range to {
			if nd := dd + w[i]; nd < dist[t] {
				dist[t] = nd
				h.Push(t, nd)
			}
		}
	}
	return dist
}

// trueDist computes the exact indoor distance from p (with door distances
// dist) to q in partition vq.
func (g *Generator) trueDist(dist []float64, p indoor.Point, vp indoor.PartitionID, q indoor.Point, vq indoor.PartitionID) float64 {
	best := math.Inf(1)
	if vp == vq {
		best = g.sp.WithinPoints(vp, p, q)
	}
	for _, d := range g.sp.Partition(vq).Enter {
		if math.IsInf(dist[d], 1) {
			continue
		}
		if cand := dist[d] + g.sp.WithinPointDoor(vq, q, d); cand < best {
			best = cand
		}
	}
	return best
}
