package moving_test

import (
	"errors"
	"testing"

	"indoorsq/internal/indoor"
	"indoorsq/internal/moving"
	"indoorsq/internal/testspaces"
)

// TestRegistrationSentinels pins the wrapped sentinel errors both
// evaluators return, so server handlers can map them to HTTP statuses with
// errors.Is instead of matching message text.
func TestRegistrationSentinels(t *testing.T) {
	f := testspaces.NewStrip()
	in := indoor.At(2.5, 8, 0)        // hosted by R1
	out := indoor.At(-1000, -1000, 0) // far outside every partition

	newMon := func() func(qid int32, p indoor.Point) error {
		m := moving.NewMonitor(f.Space)
		return func(qid int32, p indoor.Point) error {
			_, err := m.Register(qid, p, 5, 0)
			return err
		}
	}
	newStream := func() func(qid int32, p indoor.Point) error {
		s := moving.NewStream(f.Space, moving.StreamOptions{})
		return func(qid int32, p indoor.Point) error {
			_, err := s.Register(qid, p, 5, 0)
			return err
		}
	}
	newStreamKNN := func() func(qid int32, p indoor.Point) error {
		s := moving.NewStream(f.Space, moving.StreamOptions{})
		return func(qid int32, p indoor.Point) error {
			_, err := s.RegisterKNN(qid, p, 2, 0)
			return err
		}
	}

	cases := []struct {
		name string
		mk   func() func(qid int32, p indoor.Point) error
	}{
		{"monitor", newMon},
		{"stream-range", newStream},
		{"stream-knn", newStreamKNN},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := tc.mk()
			if err := reg(1, in); err != nil {
				t.Fatalf("first registration: %v", err)
			}
			err := reg(1, in)
			if !errors.Is(err, moving.ErrDuplicateQuery) {
				t.Fatalf("duplicate: got %v, want ErrDuplicateQuery", err)
			}
			if errors.Is(err, moving.ErrNotIndoors) {
				t.Fatal("duplicate error must not also match ErrNotIndoors")
			}
			err = reg(2, out)
			if !errors.Is(err, moving.ErrNotIndoors) {
				t.Fatalf("outdoors: got %v, want ErrNotIndoors", err)
			}
			if errors.Is(err, moving.ErrDuplicateQuery) {
				t.Fatal("outdoors error must not also match ErrDuplicateQuery")
			}
			// Failed registrations leave no trace: the id stays available.
			if err := reg(2, in); err != nil {
				t.Fatalf("register after failure: %v", err)
			}
		})
	}
}

// TestRemoveUnknownZeroAlloc is the regression test for the early-return
// path: removing an object the evaluator never saw must emit no events and
// allocate nothing, even with many queries registered — previously the
// Monitor walked and sorted every query for nothing.
func TestRemoveUnknownZeroAlloc(t *testing.T) {
	f := testspaces.NewStrip()
	mon := moving.NewMonitor(f.Space)
	st := moving.NewStream(f.Space, moving.StreamOptions{Shards: 4})
	for qid := int32(1); qid <= 20; qid++ {
		p := indoor.At(2.5, 8, 0)
		if _, err := mon.Register(qid, p, 5, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Register(qid, p, 5, 0); err != nil {
			t.Fatal(err)
		}
	}
	// One known object, so the maps are non-empty.
	u := moving.Update{ID: 1, Loc: indoor.At(2.5, 9, 0), Part: f.R1, T: 1}
	if _, err := mon.Apply(u); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Apply(u); err != nil {
		t.Fatal(err)
	}

	if allocs := testing.AllocsPerRun(200, func() {
		if evs := mon.Remove(9999, 2); evs != nil {
			t.Fatalf("unknown-object Remove emitted %v", evs)
		}
	}); allocs != 0 {
		t.Errorf("Monitor.Remove(unknown) allocates %.1f times, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if evs := st.Remove(9999, 2); evs != nil {
			t.Fatalf("unknown-object Stream.Remove emitted %v", evs)
		}
	}); allocs != 0 {
		t.Errorf("Stream.Remove(unknown) allocates %.1f times, want 0", allocs)
	}

	// The known object still leaves normally afterwards.
	if evs := mon.Remove(1, 3); len(evs) != 20 {
		t.Fatalf("known-object Remove emitted %d leave events, want 20", len(evs))
	}
	if evs := st.Remove(1, 3); len(evs) != 20 {
		t.Fatalf("known-object Stream.Remove emitted %d leave events, want 20", len(evs))
	}
}
