package moving_test

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"indoorsq/internal/indoor"
	"indoorsq/internal/moving"
	"indoorsq/internal/oracle"
	"indoorsq/internal/query"
	"indoorsq/internal/spacegen"
	"indoorsq/internal/testspaces"
	"indoorsq/internal/workload"
)

// canonEvents sorts a copy of evs by the Stream's merge key (T, query,
// object) — the canonical order both the serial and the sharded paths are
// compared in. The key is total for streams with strictly increasing
// timestamps, so equality here is equality of event sequences.
func canonEvents(evs []moving.Event) []moving.Event {
	out := append([]moving.Event(nil), evs...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		if out[i].Query != out[j].Query {
			return out[i].Query < out[j].Query
		}
		return out[i].Object < out[j].Object
	})
	return out
}

func diffEvents(t *testing.T, label string, got, want []moving.Event) {
	t.Helper()
	g, w := canonEvents(got), canonEvents(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d events, want %d\ngot  %v\nwant %v", label, len(g), len(w), g, w)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: event %d = %+v, want %+v", label, i, g[i], w[i])
		}
	}
}

func toUpdates(ms []spacegen.Motion) []moving.Update {
	out := make([]moving.Update, len(ms))
	for i, m := range ms {
		out[i] = moving.Update{ID: m.ID, Loc: m.Loc, Part: m.Part, T: m.T}
	}
	return out
}

// TestStreamMatchesMonitor is the core equivalence gate of the sharded
// path: the same motion stream applied to the scan-all Monitor one update
// at a time and to a multi-shard multi-worker Stream in batches must yield
// bit-identical event streams and result sets — registrations, moves,
// partition crossings, and removals included.
func TestStreamMatchesMonitor(t *testing.T) {
	t.Parallel()
	sp, err := spacegen.Generate(11, spacegen.Params{
		Floors: 2, Rows: 3, Cols: 4, ExtraDoors: 3, OneWayFrac: 0.2,
	}.Normalize())
	if err != nil {
		t.Fatal(err)
	}
	mon := moving.NewMonitor(sp)
	st := moving.NewStream(sp, moving.StreamOptions{Shards: 4, Workers: 4})
	gen := workload.New(sp, 77)

	var monEvents, stEvents []moving.Event
	for qid := int32(1); qid <= 8; qid++ {
		p, _ := gen.PointIn()
		r := 8 + float64(qid)
		me, err := mon.Register(qid, p, r, 0)
		if err != nil {
			t.Fatalf("monitor register %d: %v", qid, err)
		}
		se, err := st.Register(qid, p, r, 0)
		if err != nil {
			t.Fatalf("stream register %d: %v", qid, err)
		}
		diffEvents(t, fmt.Sprintf("register %d", qid), se, me)
		monEvents = append(monEvents, me...)
		stEvents = append(stEvents, se...)
	}

	ms := spacegen.MotionStream(sp, 13, 40, 1200, 1, 0.25, 0.3)
	us := toUpdates(ms)
	const batch = 64
	for lo := 0; lo < len(us); lo += batch {
		hi := lo + batch
		if hi > len(us) {
			hi = len(us)
		}
		for _, u := range us[lo:hi] {
			evs, err := mon.Apply(u)
			if err != nil {
				t.Fatalf("monitor apply: %v", err)
			}
			monEvents = append(monEvents, evs...)
		}
		evs, err := st.ApplyBatch(us[lo:hi])
		if err != nil {
			t.Fatalf("stream batch [%d,%d): %v", lo, hi, err)
		}
		stEvents = append(stEvents, evs...)

		// Interleave a removal between batches; T keeps increasing.
		if lo/batch%5 == 4 {
			id := us[lo].ID
			rt := us[hi-1].T + 0.5
			monEvents = append(monEvents, mon.Remove(id, rt)...)
			stEvents = append(stEvents, st.Remove(id, rt)...)
		}

		for qid := int32(1); qid <= 8; qid++ {
			mr, sr := mon.Result(qid), st.Result(qid)
			if len(mr) != len(sr) {
				t.Fatalf("batch %d query %d: stream result %v, monitor %v", lo/batch, qid, sr, mr)
			}
			for i := range mr {
				if mr[i] != sr[i] {
					t.Fatalf("batch %d query %d: stream result %v, monitor %v", lo/batch, qid, sr, mr)
				}
			}
		}
	}
	diffEvents(t, "full stream", stEvents, monEvents)
	if st.NumQueries() != 8 || st.NumObjects() == 0 {
		t.Fatalf("queries=%d objects=%d", st.NumQueries(), st.NumObjects())
	}
}

// TestStreamKNNVsOracle maintains standing kNN monitors through a motion
// stream and checks, after every batch, that each monitor's incrementally
// maintained top-k equals the oracle's from-scratch kNN over the same
// object set — ids and distances both.
func TestStreamKNNVsOracle(t *testing.T) {
	t.Parallel()
	sp, err := spacegen.Generate(21, spacegen.Params{
		Floors: 1, Rows: 3, Cols: 4, ExtraDoors: 2,
	}.Normalize())
	if err != nil {
		t.Fatal(err)
	}
	st := moving.NewStream(sp, moving.StreamOptions{Shards: 4, Workers: 2})
	ora := oracle.New(sp)
	gen := workload.New(sp, 5)

	type qdef struct {
		qid int32
		p   indoor.Point
		k   int
	}
	var qs []qdef
	for i := 0; i < 4; i++ {
		p, _ := gen.PointIn()
		qs = append(qs, qdef{qid: int32(100 + i), p: p, k: 1 + i})
	}

	ms := spacegen.MotionStream(sp, 31, 25, 600, 1, 0.25, 0.3)
	us := toUpdates(ms)
	cur := map[int32]moving.Update{}

	// Seed half the objects, then register, then stream the rest — the
	// monitors must absorb both the initial evaluation and the deltas.
	if _, err := st.ApplyBatch(us[:120]); err != nil {
		t.Fatal(err)
	}
	for _, u := range us[:120] {
		cur[u.ID] = u
	}
	for _, q := range qs {
		if _, err := st.RegisterKNN(q.qid, q.p, q.k, 0.5); err != nil {
			t.Fatalf("register knn %d: %v", q.qid, err)
		}
	}

	check := func(tag string) {
		objs := make([]query.Object, 0, len(cur))
		for id, u := range cur {
			objs = append(objs, query.Object{ID: id, Loc: u.Loc, Part: u.Part})
		}
		sort.Slice(objs, func(i, j int) bool { return objs[i].ID < objs[j].ID })
		ora.SetObjects(objs)
		for _, q := range qs {
			want, err := ora.KNN(q.p, q.k, nil)
			if err != nil {
				t.Fatalf("%s: oracle knn: %v", tag, err)
			}
			got := st.Neighbors(q.qid)
			if len(got) != len(want) {
				t.Fatalf("%s query %d: top-k %v, oracle %v", tag, q.qid, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s query %d: top-k %v, oracle %v", tag, q.qid, got, want)
				}
			}
		}
	}
	check("post-register")

	const batch = 48
	for lo := 120; lo < len(us); lo += batch {
		hi := lo + batch
		if hi > len(us) {
			hi = len(us)
		}
		if _, err := st.ApplyBatch(us[lo:hi]); err != nil {
			t.Fatal(err)
		}
		for _, u := range us[lo:hi] {
			cur[u.ID] = u
		}
		if lo/batch%3 == 2 {
			id := us[lo].ID
			st.Remove(id, us[hi-1].T+0.5)
			delete(cur, id)
		}
		check(fmt.Sprintf("batch %d", lo/batch))
	}
}

// TestStreamSubscriptions pins the delta-push semantics: events reach
// subscribers in fold order, slow subscribers drop (counted) rather than
// stall, and Unregister / Close end the channel.
func TestStreamSubscriptions(t *testing.T) {
	t.Parallel()
	f := testspaces.NewStrip()
	st := moving.NewStream(f.Space, moving.StreamOptions{Shards: 2})
	if _, err := st.Register(1, indoor.At(2.5, 8, 0), 6, 0); err != nil {
		t.Fatal(err)
	}
	sub, err := st.Subscribe(1, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Subscribe(99, 4); err == nil {
		t.Fatal("subscribe to unknown monitor must fail")
	}

	in := moving.Update{ID: 7, Loc: indoor.At(2.5, 9, 0), Part: f.R1, T: 1}
	if _, err := st.Apply(in); err != nil {
		t.Fatal(err)
	}
	ev := <-sub.Events()
	if ev.Query != 1 || ev.Object != 7 || !ev.Enter {
		t.Fatalf("subscription delivered %+v, want enter of object 7", ev)
	}

	// A buffer-1 subscriber facing a multi-event batch must drop, not block.
	tiny, err := st.Subscribe(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	batch := []moving.Update{
		{ID: 20, Loc: indoor.At(2, 9, 0), Part: f.R1, T: 2},
		{ID: 21, Loc: indoor.At(3, 9, 0), Part: f.R1, T: 3},
		{ID: 22, Loc: indoor.At(2, 8, 0), Part: f.R1, T: 4},
	}
	if _, err := st.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if sub.Dropped() != 0 {
		t.Fatalf("roomy subscriber dropped %d", sub.Dropped())
	}
	if tiny.Dropped() == 0 {
		t.Fatal("buffer-1 subscriber absorbed 3 events without dropping")
	}
	tiny.Close()
	tiny.Close() // idempotent

	st.Unregister(1)
	for range sub.Events() {
		// drain until the unregister closes the channel
	}

	if _, err := st.Register(2, indoor.At(2.5, 8, 0), 6, 5); err != nil {
		t.Fatal(err)
	}
	sub2, err := st.Subscribe(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, open := <-sub2.Events(); open {
		t.Fatal("Close left a subscription channel open")
	}
	if _, err := st.ApplyBatch(batch); !errors.Is(err, moving.ErrStreamClosed) {
		t.Fatalf("ApplyBatch after Close: %v, want ErrStreamClosed", err)
	}
	if _, err := st.Register(3, indoor.At(2.5, 8, 0), 6, 6); !errors.Is(err, moving.ErrStreamClosed) {
		t.Fatalf("Register after Close: %v, want ErrStreamClosed", err)
	}
	if _, err := st.Subscribe(2, 4); !errors.Is(err, moving.ErrStreamClosed) {
		t.Fatalf("Subscribe after Close: %v, want ErrStreamClosed", err)
	}
}

// TestStreamMonitorsListing pins the introspection surface the HTTP
// endpoints expose.
func TestStreamMonitorsListing(t *testing.T) {
	t.Parallel()
	f := testspaces.NewStrip()
	st := moving.NewStream(f.Space, moving.StreamOptions{})
	if _, err := st.Register(5, indoor.At(2.5, 8, 0), 6, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := st.RegisterKNN(2, indoor.At(2.5, 8, 0), 3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := st.RegisterKNN(9, indoor.At(2.5, 8, 0), 0, 0); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	if _, err := st.Apply(moving.Update{ID: 1, Loc: indoor.At(2.5, 9, 0), Part: f.R1, T: 1}); err != nil {
		t.Fatal(err)
	}
	mons := st.Monitors()
	if len(mons) != 2 || mons[0].ID != 2 || mons[1].ID != 5 {
		t.Fatalf("monitors = %+v, want ids [2 5]", mons)
	}
	if mons[0].Kind != "knn" || mons[0].K != 3 || mons[0].Size != 1 {
		t.Fatalf("knn info = %+v", mons[0])
	}
	if mons[1].Kind != "range" || mons[1].R != 6 || mons[1].Size != 1 {
		t.Fatalf("range info = %+v", mons[1])
	}
	if st.Result(5) == nil || st.Result(2) == nil || st.Result(404) != nil {
		t.Fatal("Result lookup surface broken")
	}
	if st.Neighbors(5) != nil {
		t.Fatal("Neighbors of a range monitor must be nil")
	}
	if !st.Unregister(5) || st.Unregister(5) {
		t.Fatal("Unregister must report prior existence")
	}
}
