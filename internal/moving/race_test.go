package moving_test

import (
	"sync"
	"testing"

	"indoorsq/internal/indoor"
	"indoorsq/internal/moving"
	"indoorsq/internal/testspaces"
	"indoorsq/internal/workload"
)

// TestConcurrentMonitor hammers one Monitor from concurrent registrars,
// updaters, and readers. Run under -race (the Makefile race target includes
// this package) it proves the mutex covers every map mutation — the shape
// the multi-venue serving tier and the streaming roadmap item both imply.
func TestConcurrentMonitor(t *testing.T) {
	f := testspaces.NewStrip()
	m := moving.NewMonitor(f.Space)
	gen := workload.New(f.Space, 11)
	type spot struct {
		p indoor.Point
		v indoor.PartitionID
	}
	spots := make([]spot, 64)
	for i := range spots {
		p, v := gen.PointIn()
		spots[i] = spot{p, v}
	}

	const (
		writers  = 4
		steps    = 300
		readers  = 2
		monitors = 3
	)
	var wg sync.WaitGroup
	// Registrars: register/unregister disjoint query-id ranges.
	for g := 0; g < monitors; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < steps; i++ {
				qid := int32(g*1000 + i%7)
				s := spots[(g+i)%len(spots)]
				if _, err := m.Register(qid, s.p, 10, float64(i)); err == nil {
					if i%3 == 0 {
						m.Unregister(qid)
					}
				}
				if i%5 == 4 {
					m.Unregister(qid)
				}
			}
		}(g)
	}
	// Updaters: disjoint object-id ranges, valid spots only.
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < steps; i++ {
				id := int32(g*100 + i%13)
				s := spots[(g*7+i)%len(spots)]
				if _, err := m.Apply(moving.Update{ID: id, Loc: s.p, Part: s.v, T: float64(i)}); err != nil {
					t.Errorf("apply: %v", err)
					return
				}
				if i%11 == 10 {
					m.Remove(id, float64(i))
				}
			}
		}(g)
	}
	// Readers: results, counts.
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < steps*2; i++ {
				m.Result(int32(i % 2000))
				m.NumQueries()
			}
		}(g)
	}
	wg.Wait()
}
