package moving

import (
	"sync/atomic"

	"indoorsq/internal/obs"
)

// Metrics aggregates streaming-ingestion counters across every Stream in
// the process, following the doorgraph/reach package-metrics pattern: the
// hot path touches only atomics, and the server exports them as gauges.
var Metrics struct {
	// Updates counts position updates absorbed by ApplyBatch.
	Updates atomic.Int64
	// Batches counts ApplyBatch calls that reached ingestion.
	Batches atomic.Int64
	// Events counts emitted enter/leave events.
	Events atomic.Int64
	// ShardInFlight is the number of shard-apply tasks currently running —
	// a gauge of ingestion fan-out pressure.
	ShardInFlight atomic.Int64
	// Touched is the per-update count of queries whose distance was
	// evaluated — the quantity the inverted index exists to keep far below
	// the number of registered queries.
	Touched obs.IntHistogram
}
