package moving

import (
	"math"
	"testing"

	"indoorsq/internal/indoor"
	"indoorsq/internal/spacegen"
	"indoorsq/internal/testspaces"
)

// TestDistFieldInvariant pins the doorDist contract: every entry of the
// cached field is either a finite distance <= r or +Inf. (Regression: the
// relaxation used to store any improving candidate, leaking finite
// out-of-range entries that only objDist's redundant re-guard hid.)
func TestDistFieldInvariant(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		sp, err := spacegen.Generate(seed, spacegen.Params{
			Floors: 2, Rows: 3, Cols: 4, ExtraDoors: 4, Hall: spacegen.HallL,
		}.Normalize())
		if err != nil {
			t.Fatal(err)
		}
		m := NewMonitor(sp)
		p := sp.DoorPoint(0)
		vp, ok := sp.HostPartition(p)
		if !ok {
			// Door points sit on boundaries; nudge into the first partition.
			part := sp.Partition(0)
			p = indoor.At(part.MBR.MinX+part.MBR.Width()/2, part.MBR.MinY+part.MBR.Height()/2, part.Floor)
			vp, ok = sp.HostPartition(p)
			if !ok {
				t.Fatalf("seed %d: no host for probe point", seed)
			}
		}
		for _, r := range []float64{3, 9.5, 21} {
			if _, err := m.Register(int32(r*10), p, r, 0); err != nil {
				t.Fatal(err)
			}
			q := m.queries[int32(r*10)]
			for d, dd := range q.doorDist {
				if !math.IsInf(dd, 1) && dd > r {
					t.Fatalf("seed %d r=%g: doorDist[%d] = %g leaks beyond the limit (host %d)",
						seed, r, d, dd, vp)
				}
			}
		}
	}
}

// TestApplyRejectsMismatchedPart pins the update contract: an Update whose
// Part does not host Loc is rejected and leaves the monitor untouched.
func TestApplyRejectsMismatchedPart(t *testing.T) {
	f := testspaces.NewStrip()
	m := NewMonitor(f.Space)
	if _, err := m.Register(1, indoor.At(10, 5, 0), 100, 0); err != nil {
		t.Fatal(err)
	}
	// (2.5, 7) lies in R1, not in the hall.
	if _, err := m.Apply(Update{ID: 9, Loc: indoor.At(2.5, 7, 0), Part: f.Hall, T: 1}); err == nil {
		t.Fatal("Apply accepted an update whose Part does not host Loc")
	}
	// Wrong floor: same xy, nonexistent second floor of the strip.
	if _, err := m.Apply(Update{ID: 9, Loc: indoor.At(2.5, 7, 1), Part: f.R1, T: 1}); err == nil {
		t.Fatal("Apply accepted an update on the wrong floor")
	}
	// Out-of-range partition id.
	if _, err := m.Apply(Update{ID: 9, Loc: indoor.At(2.5, 7, 0), Part: 9999, T: 1}); err == nil {
		t.Fatal("Apply accepted an invalid partition id")
	}
	if len(m.cur) != 0 {
		t.Fatalf("rejected updates mutated the monitor: %v", m.cur)
	}
	if got := m.Result(1); len(got) != 0 {
		t.Fatalf("rejected updates produced members: %v", got)
	}
	// The valid variant of the same report is accepted.
	if _, err := m.Apply(Update{ID: 9, Loc: indoor.At(2.5, 7, 0), Part: f.R1, T: 1}); err != nil {
		t.Fatal(err)
	}
}
