package moving_test

import (
	"context"
	"errors"
	"testing"

	"indoorsq/internal/indoor"
	"indoorsq/internal/moving"
	"indoorsq/internal/testspaces"
)

func TestRegisterCtxCancelled(t *testing.T) {
	f := testspaces.NewStrip()
	m := moving.NewMonitor(f.Space)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.RegisterCtx(ctx, 7, indoor.At(2.5, 5, 0), 4, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("RegisterCtx(cancelled) = %v, want Canceled", err)
	}
}

func TestRegisterCtxBackgroundEquivalence(t *testing.T) {
	f := testspaces.NewStrip()
	m := moving.NewMonitor(f.Space)
	if _, err := m.Apply(moving.Update{ID: 1, Loc: indoor.At(2.5, 7, 0), Part: f.R1, T: 0}); err != nil {
		t.Fatal(err)
	}
	evs, err := m.RegisterCtx(context.Background(), 7, indoor.At(2.5, 5, 0), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || !evs[0].Enter || evs[0].Object != 1 {
		t.Fatalf("RegisterCtx events = %v", evs)
	}
}
