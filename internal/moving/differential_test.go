package moving_test

import (
	"fmt"
	"sort"
	"testing"

	"indoorsq/internal/indoor"
	"indoorsq/internal/moving"
	"indoorsq/internal/oracle"
	"indoorsq/internal/query"
	"indoorsq/internal/spacegen"
	"indoorsq/internal/workload"
)

// TestDifferentialVsOracle replays scripted update streams on generated
// venues and, after every step, re-evaluates every continuous query from
// scratch with the naive oracle engine: the monitor's incremental result
// sets and its emitted event sets must both match the oracle's full
// recomputation exactly. This is the moving-objects analogue of the PR 5
// differential harness — the incremental distance-field path versus a
// from-scratch evaluation sharing only the Space distance primitives.
func TestDifferentialVsOracle(t *testing.T) {
	cases := []struct {
		seed   int64
		params spacegen.Params
		radius float64
	}{
		{seed: 101, params: spacegen.Params{Floors: 1, Rows: 2, Cols: 4, ExtraDoors: 3}, radius: 9.7},
		{seed: 102, params: spacegen.Params{Floors: 2, Rows: 2, Cols: 3, Hall: spacegen.HallL, ExtraDoors: 2}, radius: 14.3},
		{seed: 103, params: spacegen.Params{Floors: 1, Rows: 3, Cols: 3, Hall: spacegen.HallComb, ExtraDoors: 4, OneWayFrac: 0.5}, radius: 11.9},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("seed%d", tc.seed), func(t *testing.T) {
			t.Parallel()
			params := tc.params.Normalize()
			sp, err := spacegen.Generate(tc.seed, params)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("seed=%d params=%s r=%g", tc.seed, params, tc.radius)

			mon := moving.NewMonitor(sp)
			ora := oracle.New(sp)
			gen := workload.New(sp, tc.seed*7+1)

			const nObjects = 12
			const nQueries = 4
			const steps = 60

			// cur is the from-scratch oracle's world state; inside the
			// oracle-side membership per query, diffed into expected events.
			cur := map[int32]query.Object{}
			inside := map[int32]map[int32]bool{}
			queries := map[int32]struct {
				p indoor.Point
				r float64
			}{}

			// oracleMembers recomputes one query's member set from scratch.
			oracleMembers := func(p indoor.Point, r float64) map[int32]bool {
				objs := make([]query.Object, 0, len(cur))
				for _, o := range cur {
					objs = append(objs, o)
				}
				sort.Slice(objs, func(i, j int) bool { return objs[i].ID < objs[j].ID })
				ora.SetObjects(objs)
				ids, err := ora.Range(p, r, nil)
				if err != nil {
					t.Fatalf("%s: oracle range: %v", label, err)
				}
				set := make(map[int32]bool, len(ids))
				for _, id := range ids {
					set[id] = true
				}
				return set
			}

			// checkStep compares the monitor's events and result sets against
			// the oracle's full recomputation after one mutation.
			checkStep := func(step int, events []moving.Event) {
				// Expected events: membership diff per query, in query order.
				var want []moving.Event
				qids := make([]int32, 0, len(queries))
				for qid := range queries {
					qids = append(qids, qid)
				}
				sort.Slice(qids, func(i, j int) bool { return qids[i] < qids[j] })
				for _, qid := range qids {
					q := queries[qid]
					now := oracleMembers(q.p, q.r)
					was := inside[qid]
					for id := range now {
						if !was[id] {
							want = append(want, moving.Event{Query: qid, Object: id, Enter: true})
						}
					}
					for id := range was {
						if !now[id] {
							want = append(want, moving.Event{Query: qid, Object: id, Enter: false})
						}
					}
					inside[qid] = now

					// Result sets must match the oracle exactly.
					got := mon.Result(qid)
					wantIDs := make([]int32, 0, len(now))
					for id := range now {
						wantIDs = append(wantIDs, id)
					}
					sort.Slice(wantIDs, func(i, j int) bool { return wantIDs[i] < wantIDs[j] })
					if len(got) != len(wantIDs) {
						t.Fatalf("%s step %d query %d: result %v, oracle %v", label, step, qid, got, wantIDs)
					}
					for i := range got {
						if got[i] != wantIDs[i] {
							t.Fatalf("%s step %d query %d: result %v, oracle %v", label, step, qid, got, wantIDs)
						}
					}
				}
				// Event sets must match (order-normalized by query, object).
				norm := func(evs []moving.Event) []moving.Event {
					out := append([]moving.Event(nil), evs...)
					for i := range out {
						out[i].T = 0
					}
					sort.Slice(out, func(i, j int) bool {
						if out[i].Query != out[j].Query {
							return out[i].Query < out[j].Query
						}
						if out[i].Object != out[j].Object {
							return out[i].Object < out[j].Object
						}
						return !out[i].Enter && out[j].Enter
					})
					return out
				}
				g, w := norm(events), norm(want)
				if len(g) != len(w) {
					t.Fatalf("%s step %d: events %v, oracle diff %v", label, step, g, w)
				}
				for i := range g {
					if g[i] != w[i] {
						t.Fatalf("%s step %d: events %v, oracle diff %v", label, step, g, w)
					}
				}
			}

			// Seed some objects before any query exists.
			for id := int32(0); id < nObjects; id++ {
				p, v := gen.PointIn()
				u := moving.Update{ID: id, Loc: p, Part: v, T: 0}
				if _, err := mon.Apply(u); err != nil {
					t.Fatalf("%s: seed apply: %v", label, err)
				}
				cur[id] = query.Object{ID: id, Loc: p, Part: v}
			}

			// The scripted stream: registrations interleaved with moves and
			// removals; every mutation is cross-checked in full.
			for step := 0; step < steps; step++ {
				tm := float64(step + 1)
				switch {
				case step%15 == 0 && len(queries) < nQueries:
					qid := int32(len(queries) + 1)
					p, _ := gen.PointIn()
					evs, err := mon.Register(qid, p, tc.radius, tm)
					if err != nil {
						t.Fatalf("%s step %d: register: %v", label, step, err)
					}
					queries[qid] = struct {
						p indoor.Point
						r float64
					}{p, tc.radius}
					inside[qid] = map[int32]bool{}
					checkStep(step, evs)
				case step%13 == 12 && len(cur) > 0:
					// Remove the smallest current object id.
					var id int32 = -1
					for oid := range cur {
						if id < 0 || oid < id {
							id = oid
						}
					}
					evs := mon.Remove(id, tm)
					delete(cur, id)
					checkStep(step, evs)
				default:
					id := int32(step % nObjects)
					if _, ok := cur[id]; !ok {
						// Re-admit a removed object at a fresh spot.
						id = int32((step + 1) % nObjects)
					}
					p, v := gen.PointIn()
					evs, err := mon.Apply(moving.Update{ID: id, Loc: p, Part: v, T: tm})
					if err != nil {
						t.Fatalf("%s step %d: apply: %v", label, step, err)
					}
					cur[id] = query.Object{ID: id, Loc: p, Part: v}
					checkStep(step, evs)
				}
			}
		})
	}
}
