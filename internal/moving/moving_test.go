package moving_test

import (
	"testing"

	"indoorsq/internal/indoor"
	"indoorsq/internal/moving"
	"indoorsq/internal/testspaces"
)

// mustApply absorbs one update, failing the test on a rejected report.
func mustApply(t *testing.T, m *moving.Monitor, u moving.Update) []moving.Event {
	t.Helper()
	evs, err := m.Apply(u)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

func TestRegisterAndApply(t *testing.T) {
	f := testspaces.NewStrip()
	m := moving.NewMonitor(f.Space)

	// Object 1 starts in R1 near the door.
	mustApply(t, m, moving.Update{ID: 1, Loc: indoor.At(2.5, 7, 0), Part: f.R1, T: 0})

	// Query around (2.5, 5) in the hall with r = 4: object 1 is at
	// 1 + 1 = 2m away through D1 -> inside immediately.
	evs, err := m.Register(7, indoor.At(2.5, 5, 0), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || !evs[0].Enter || evs[0].Object != 1 || evs[0].Query != 7 {
		t.Fatalf("register events = %v", evs)
	}
	if got := m.Result(7); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Result = %v", got)
	}

	// The object walks deep into R1: leaves the range.
	evs = mustApply(t, m, moving.Update{ID: 1, Loc: indoor.At(2.5, 10, 0), Part: f.R1, T: 2})
	if len(evs) != 1 || evs[0].Enter {
		t.Fatalf("leave events = %v", evs)
	}
	if len(m.Result(7)) != 0 {
		t.Fatalf("Result after leave = %v", m.Result(7))
	}

	// Walks back: re-enters.
	evs = mustApply(t, m, moving.Update{ID: 1, Loc: indoor.At(2.5, 6.5, 0), Part: f.R1, T: 3})
	if len(evs) != 1 || !evs[0].Enter {
		t.Fatalf("re-enter events = %v", evs)
	}

	// No movement relevant to the query: no events.
	evs = mustApply(t, m, moving.Update{ID: 2, Loc: indoor.At(18, 2, 0), Part: f.R7, T: 4})
	if len(evs) != 0 {
		t.Fatalf("far object events = %v", evs)
	}
}

func TestRemoveEmitsLeave(t *testing.T) {
	f := testspaces.NewStrip()
	m := moving.NewMonitor(f.Space)
	if _, err := m.Register(1, indoor.At(10, 5, 0), 100, 0); err != nil {
		t.Fatal(err)
	}
	mustApply(t, m, moving.Update{ID: 5, Loc: indoor.At(10, 5, 0), Part: f.Hall, T: 1})
	evs := m.Remove(5, 2)
	if len(evs) != 1 || evs[0].Enter || evs[0].Object != 5 {
		t.Fatalf("remove events = %v", evs)
	}
	if m.NumQueries() != 1 {
		t.Fatalf("NumQueries = %d", m.NumQueries())
	}
}

func TestDirectionalityRespected(t *testing.T) {
	// D8 is one-way R6 -> R7: a query in R6 cannot reach objects in R7
	// through D8 directly; the distance runs around through the hall.
	f := testspaces.NewStrip()
	m := moving.NewMonitor(f.Space)
	// Query at (9,2) in R6, r = 7: through D8 the distance to (11,2) in R7
	// would be 1+2 = 3... but direction matters for the REVERSE case below.
	if _, err := m.Register(1, indoor.At(9, 2, 0), 7, 0); err != nil {
		t.Fatal(err)
	}
	evs := mustApply(t, m, moving.Update{ID: 1, Loc: indoor.At(11, 2, 0), Part: f.R7, T: 1})
	if len(evs) != 1 || !evs[0].Enter {
		t.Fatalf("R6->R7 should be within range via one-way D8: %v", evs)
	}
	// Reverse: a query in R7 must NOT see a nearby object in R6 through D8.
	if _, err := m.Register(2, indoor.At(11, 2, 0), 7, 2); err != nil {
		t.Fatal(err)
	}
	evs = mustApply(t, m, moving.Update{ID: 2, Loc: indoor.At(9, 2, 0), Part: f.R6, T: 3})
	for _, e := range evs {
		if e.Query == 2 && e.Enter {
			t.Fatalf("query in R7 reached R6 through one-way D8: %v", evs)
		}
	}
}

func TestMultipleQueries(t *testing.T) {
	f := testspaces.NewStrip()
	m := moving.NewMonitor(f.Space)
	m.Register(1, indoor.At(2.5, 5, 0), 3, 0)
	m.Register(2, indoor.At(17.5, 5, 0), 3, 0)
	evs := mustApply(t, m, moving.Update{ID: 9, Loc: indoor.At(17, 5, 0), Part: f.Hall, T: 1})
	if len(evs) != 1 || evs[0].Query != 2 {
		t.Fatalf("events = %v", evs)
	}
	m.Unregister(2)
	if m.NumQueries() != 1 {
		t.Fatalf("NumQueries = %d", m.NumQueries())
	}
	if got := m.Result(2); got != nil {
		t.Fatalf("Result of unregistered query = %v", got)
	}
}

func TestRegisterErrors(t *testing.T) {
	f := testspaces.NewStrip()
	m := moving.NewMonitor(f.Space)
	if _, err := m.Register(1, indoor.At(-5, -5, 0), 3, 0); err == nil {
		t.Fatal("outdoor query point must fail")
	}
	if _, err := m.Register(1, indoor.At(10, 5, 0), 3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(1, indoor.At(10, 5, 0), 3, 0); err == nil {
		t.Fatal("duplicate registration must fail")
	}
}
