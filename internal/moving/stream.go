package moving

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"indoorsq/internal/exec"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/reach"
)

// ErrStreamClosed marks any operation on a Stream after Close.
var ErrStreamClosed = fmt.Errorf("moving: stream closed")

// monitor kinds.
const (
	kindRange = iota
	kindKNN
)

// StreamOptions configures a Stream. The zero value is usable: DefaultShards
// object shards, GOMAXPROCS batch workers, no reach summary.
type StreamOptions struct {
	// Shards is the number of object shards (<= 0 means DefaultShards).
	Shards int
	// Workers bounds the exec.Pool fan-out of ApplyBatch (<= 0 means
	// GOMAXPROCS). Events are identical for any value.
	Workers int
	// Reach optionally gates registration: partitions its summary proves
	// unreachable from the query point are skipped when deriving the
	// inverted index. Purely an optimization — the derived index, and
	// therefore every answer, is identical with or without it, because a
	// partition the summary rules out can hold no finite field entry.
	Reach *reach.Reach
}

// DefaultShards is the object-shard count of a zero-options Stream.
const DefaultShards = 8

// Stream is the sharded streaming continuous-query engine. It maintains the
// same per-query cached door-distance fields as Monitor but replaces the
// scan-all update path with a partition→query inverted index: an update
// touches only the queries for which the object's old or new partition is
// relevant (the query's host partition, or a partition with a finite field
// entry on some enter door). Object state is sharded by FNV hash so batched
// ingestion fans out across an exec.Pool, and the merged event stream is
// bit-identical to a serial evaluation for any shard/worker count (for
// update streams with strictly increasing timestamps; see ApplyBatch).
//
// Alongside continuous range monitors it supports standing kNN monitors and
// per-query subscriptions receiving incremental enter/leave deltas.
type Stream struct {
	sp   *indoor.Space
	rc   *reach.Reach
	pool exec.Pool
	nsh  int

	// mu guards queries, partQ, and closed. ApplyBatch/Remove hold it for
	// read (registration topology is frozen during a batch); Register,
	// Unregister, and Close hold it for write.
	mu      sync.RWMutex
	queries map[int32]*stQuery
	// partQ is the inverted index: partQ[P] lists the queries relevant to
	// partition P, ascending by query id.
	partQ  [][]*stQuery
	closed bool

	shards []streamShard
}

// streamShard owns the current positions of the objects hashed to it.
type streamShard struct {
	mu  sync.Mutex
	cur map[int32]Update
}

// stQuery is one standing monitor of a Stream.
type stQuery struct {
	qcore
	kind  int
	k     int                  // kindKNN only
	parts []indoor.PartitionID // relevant partitions (for unregister)

	// mu guards everything below. Batch folding locks at most one query at
	// a time, so query locks never nest.
	mu     sync.Mutex
	inside map[int32]bool    // kindRange: current result
	dists  map[int32]float64 // kindKNN: finite distance per known object
	top    []query.Neighbor  // kindKNN: current top-k, ascending (dist, id)
	inTop  map[int32]bool    // kindKNN: membership of top
	subs   []*Sub
}

// delta is one (query, update) evaluation produced by phase A of a batch
// and folded into query state by phase B.
type delta struct {
	q    *stQuery
	obj  int32
	idx  int32 // index in the batch: per-query fold order
	dist float64
	t    float64
	gone bool // object removed (Remove path)
}

// NewStream returns an empty streaming engine over a space.
func NewStream(sp *indoor.Space, opt StreamOptions) *Stream {
	nsh := opt.Shards
	if nsh <= 0 {
		nsh = DefaultShards
	}
	s := &Stream{
		sp:      sp,
		rc:      opt.Reach,
		pool:    exec.Pool{Workers: opt.Workers},
		nsh:     nsh,
		queries: make(map[int32]*stQuery),
		partQ:   make([][]*stQuery, len(sp.Partitions())),
		shards:  make([]streamShard, nsh),
	}
	for i := range s.shards {
		s.shards[i].cur = make(map[int32]Update)
	}
	return s
}

// shardOf hashes an object id to its shard (FNV-1a over the 4 id bytes).
func (s *Stream) shardOf(id int32) int {
	h := uint32(2166136261)
	x := uint32(id)
	for i := 0; i < 4; i++ {
		h ^= x & 0xff
		h *= 16777619
		x >>= 8
	}
	return int(h % uint32(s.nsh))
}

// relevantParts derives the query's slice of the inverted index from its
// door-distance field: the host partition, plus every partition with a
// finite field entry on some enter door. Any object whose distance to the
// query point is finite sits in such a partition (objDist is +Inf
// otherwise), so folding only touched queries loses no event. A reach
// summary, when configured, skips partitions proven unreachable from the
// host's leave doors — those can hold no finite entry, so the result is
// identical, just cheaper to derive on venues with closed-off wings.
func (s *Stream) relevantParts(q *qcore) []indoor.PartitionID {
	var from reach.From
	gated := false
	if s.rc != nil {
		from = s.rc.FromDoors(s.sp.Partition(q.vp).Leave, nil)
		gated = true
	}
	var out []indoor.PartitionID
	for v := range s.partQ {
		pid := indoor.PartitionID(v)
		if pid == q.vp {
			out = append(out, pid)
			continue
		}
		if gated && !from.CanReachPart(pid) {
			continue
		}
		for _, d := range s.sp.Partition(pid).Enter {
			if !math.IsInf(q.doorDist[d], 1) {
				out = append(out, pid)
				break
			}
		}
	}
	return out
}

// insertIndexed adds q to the index lists of its relevant partitions,
// keeping each list ascending by query id.
func (s *Stream) insertIndexed(q *stQuery) {
	for _, v := range q.parts {
		lst := s.partQ[v]
		i := sort.Search(len(lst), func(i int) bool { return lst[i].id >= q.id })
		lst = append(lst, nil)
		copy(lst[i+1:], lst[i:])
		lst[i] = q
		s.partQ[v] = lst
	}
}

// removeIndexed undoes insertIndexed.
func (s *Stream) removeIndexed(q *stQuery) {
	for _, v := range q.parts {
		lst := s.partQ[v]
		i := sort.Search(len(lst), func(i int) bool { return lst[i].id >= q.id })
		if i < len(lst) && lst[i] == q {
			s.partQ[v] = append(lst[:i], lst[i+1:]...)
		}
	}
}

// Register adds a continuous range monitor around p with radius r; objects
// already known are evaluated immediately and their enter events returned,
// ascending by object id. Fails with ErrDuplicateQuery / ErrNotIndoors
// (wrapped) like Monitor.Register.
func (s *Stream) Register(qid int32, p indoor.Point, r float64, t float64) ([]Event, error) {
	return s.RegisterCtx(context.Background(), qid, p, r, t)
}

// RegisterCtx is Register with the registration-time Dijkstra bounded by ctx.
func (s *Stream) RegisterCtx(ctx context.Context, qid int32, p indoor.Point, r float64, t float64) ([]Event, error) {
	return s.register(ctx, qid, p, kindRange, r, 0, t)
}

// RegisterKNN adds a standing k-nearest-neighbors monitor at p: its result
// is the k objects nearest to p by indoor walking distance, maintained
// incrementally as updates arrive. Initial enter events are returned
// ascending by object id. k must be >= 1.
func (s *Stream) RegisterKNN(qid int32, p indoor.Point, k int, t float64) ([]Event, error) {
	return s.RegisterKNNCtx(context.Background(), qid, p, k, t)
}

// RegisterKNNCtx is RegisterKNN with the registration-time Dijkstra bounded
// by ctx. A kNN monitor's distance field is unbounded (every reachable door
// is settled), so large venues may want a deadline here.
func (s *Stream) RegisterKNNCtx(ctx context.Context, qid int32, p indoor.Point, k int, t float64) ([]Event, error) {
	if k < 1 {
		return nil, fmt.Errorf("moving: knn monitor %d: k must be >= 1, got %d", qid, k)
	}
	return s.register(ctx, qid, p, kindKNN, math.Inf(1), k, t)
}

func (s *Stream) register(ctx context.Context, qid int32, p indoor.Point, kind int, r float64, k int, t float64) ([]Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrStreamClosed
	}
	if _, dup := s.queries[qid]; dup {
		return nil, fmt.Errorf("%w: id %d", ErrDuplicateQuery, qid)
	}
	vp, ok := s.sp.HostPartition(p)
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNotIndoors, p)
	}
	field, err := distField(ctx, s.sp, p, vp, r)
	if err != nil {
		return nil, err
	}
	q := &stQuery{
		qcore: qcore{
			id:       qid,
			p:        p,
			pRef:     s.sp.Ref(vp, p),
			vp:       vp,
			r:        r,
			doorDist: field,
		},
		kind: kind,
		k:    k,
	}
	q.parts = s.relevantParts(&q.qcore)
	if kind == kindRange {
		q.inside = make(map[int32]bool)
	} else {
		q.dists = make(map[int32]float64)
		q.inTop = make(map[int32]bool)
	}
	events := s.initialEval(q, t)
	s.queries[qid] = q
	s.insertIndexed(q)
	return events, nil
}

// initialEval evaluates every known object against a fresh query, filling
// its result state and returning the enter events ascending by object id.
// Caller holds s.mu for write, so no batch is in flight.
func (s *Stream) initialEval(q *stQuery, t float64) []Event {
	type od struct {
		id int32
		d  float64
	}
	var cands []od
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.Lock()
		for id, u := range sh.cur {
			d := q.objDist(s.sp, u.Part, u.Loc)
			if !math.IsInf(d, 1) && d <= q.r {
				cands = append(cands, od{id, d})
			}
		}
		sh.mu.Unlock()
	}
	var events []Event
	if q.kind == kindRange {
		sort.Slice(cands, func(i, j int) bool { return cands[i].id < cands[j].id })
		for _, c := range cands {
			q.inside[c.id] = true
			events = append(events, Event{Query: q.id, Object: c.id, Enter: true, T: t})
		}
		return events
	}
	tk := query.NewTopK(q.k)
	for _, c := range cands {
		q.dists[c.id] = c.d
		tk.Offer(c.id, c.d)
	}
	q.top = tk.Results()
	ids := make([]int32, 0, len(q.top))
	for _, nb := range q.top {
		q.inTop[nb.ID] = true
		ids = append(ids, nb.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		events = append(events, Event{Query: q.id, Object: id, Enter: true, T: t})
	}
	return events
}

// Unregister removes a monitor, closing its subscriptions. It reports
// whether the id was registered.
func (s *Stream) Unregister(qid int32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queries[qid]
	if !ok {
		return false
	}
	delete(s.queries, qid)
	s.removeIndexed(q)
	q.mu.Lock()
	for _, sub := range q.subs {
		sub.closeLocked()
	}
	q.subs = nil
	q.mu.Unlock()
	return true
}

// NumQueries returns the number of registered monitors.
func (s *Stream) NumQueries() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.queries)
}

// NumObjects returns the number of objects with a known position.
func (s *Stream) NumObjects() int {
	n := 0
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.Lock()
		n += len(sh.cur)
		sh.mu.Unlock()
	}
	return n
}

// Result returns the object ids currently in monitor qid's result,
// ascending — the range membership, or the current top-k of a kNN monitor.
// Unknown ids return nil.
func (s *Stream) Result(qid int32) []int32 {
	s.mu.RLock()
	q, ok := s.queries[qid]
	s.mu.RUnlock()
	if !ok {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []int32
	if q.kind == kindRange {
		out = make([]int32, 0, len(q.inside))
		for id := range q.inside {
			out = append(out, id)
		}
	} else {
		out = make([]int32, 0, len(q.top))
		for _, nb := range q.top {
			out = append(out, nb.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Neighbors returns a kNN monitor's current result ascending by
// (distance, id), or nil for unknown or range monitors.
func (s *Stream) Neighbors(qid int32) []query.Neighbor {
	s.mu.RLock()
	q, ok := s.queries[qid]
	s.mu.RUnlock()
	if !ok || q.kind != kindKNN {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]query.Neighbor, len(q.top))
	copy(out, q.top)
	return out
}

// MonitorInfo describes one registered monitor.
type MonitorInfo struct {
	ID   int32        `json:"id"`
	Kind string       `json:"kind"` // "range" | "knn"
	P    indoor.Point `json:"p"`
	R    float64      `json:"r,omitempty"` // range only
	K    int          `json:"k,omitempty"` // knn only
	Size int          `json:"size"`        // current result cardinality
}

// Monitors lists the registered monitors ascending by id.
func (s *Stream) Monitors() []MonitorInfo {
	s.mu.RLock()
	qs := make([]*stQuery, 0, len(s.queries))
	for _, q := range s.queries {
		qs = append(qs, q)
	}
	s.mu.RUnlock()
	sort.Slice(qs, func(i, j int) bool { return qs[i].id < qs[j].id })
	out := make([]MonitorInfo, 0, len(qs))
	for _, q := range qs {
		mi := MonitorInfo{ID: q.id, P: q.p}
		q.mu.Lock()
		if q.kind == kindRange {
			mi.Kind = "range"
			mi.R = q.r
			mi.Size = len(q.inside)
		} else {
			mi.Kind = "knn"
			mi.K = q.k
			mi.Size = len(q.top)
		}
		q.mu.Unlock()
		out = append(out, mi)
	}
	return out
}

// Apply absorbs a single update — ApplyBatch of one.
func (s *Stream) Apply(u Update) ([]Event, error) {
	return s.ApplyBatch([]Update{u})
}

// ApplyBatch absorbs a batch of position updates and returns the emitted
// membership events sorted by (T, query, object). The whole batch is
// validated up front; an invalid update rejects the batch with no state
// change. Updates fan out across the object shards through the exec.Pool
// (phase A: per-shard position writes and per-touched-query distance
// evaluations), then fold into per-query result state in batch order
// (phase B), so for update streams with strictly increasing timestamps the
// emitted events are bit-identical to applying the same updates one at a
// time on a single shard — for any shard count, worker count, or batch
// partitioning. Each object's updates land on one shard, preserving their
// relative order; each query folds its deltas by batch index; and the final
// sort key (T, query, object) is total because one update yields at most
// one event per query.
func (s *Stream) ApplyBatch(us []Update) ([]Event, error) {
	if len(us) == 0 {
		return nil, nil
	}
	for i := range us {
		if err := validateUpdate(s.sp, us[i]); err != nil {
			return nil, fmt.Errorf("moving: batch index %d: %w", i, err)
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrStreamClosed
	}

	// Fan update indices out by object shard.
	byShard := make([][]int32, s.nsh)
	for i := range us {
		si := s.shardOf(us[i].ID)
		byShard[si] = append(byShard[si], int32(i))
	}
	active := make([]int, 0, s.nsh)
	for si := range byShard {
		if len(byShard[si]) > 0 {
			active = append(active, si)
		}
	}

	// Phase A: per-shard position writes + distance evaluation of every
	// touched query. Deltas carry the batch index so phase B can fold them
	// in batch order; no query state is touched yet.
	shardDeltas := make([][]delta, len(active))
	s.pool.Map(len(active), func(ai int, _ *query.Stats) error {
		Metrics.ShardInFlight.Add(1)
		defer Metrics.ShardInFlight.Add(-1)
		shardDeltas[ai] = s.shardApply(&s.shards[active[ai]], us, byShard[active[ai]])
		return nil
	})

	// Group deltas by query. (qid, batch index) is unique per delta — the
	// touched set is deduplicated per update — so this order is total.
	var all []delta
	for _, ds := range shardDeltas {
		all = append(all, ds...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].q.id != all[j].q.id {
			return all[i].q.id < all[j].q.id
		}
		return all[i].idx < all[j].idx
	})
	var groups [][]delta
	for lo := 0; lo < len(all); {
		hi := lo + 1
		for hi < len(all) && all[hi].q == all[lo].q {
			hi++
		}
		groups = append(groups, all[lo:hi])
		lo = hi
	}

	// Phase B: fold each query's deltas in batch order. Queries are
	// independent (each owns its result state behind its own mutex), so
	// groups run concurrently.
	groupEvents := make([][]Event, len(groups))
	s.pool.Map(len(groups), func(gi int, _ *query.Stats) error {
		groupEvents[gi] = groups[gi][0].q.fold(groups[gi])
		return nil
	})

	var events []Event
	for _, evs := range groupEvents {
		events = append(events, evs...)
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].T != events[j].T {
			return events[i].T < events[j].T
		}
		if events[i].Query != events[j].Query {
			return events[i].Query < events[j].Query
		}
		return events[i].Object < events[j].Object
	})

	Metrics.Batches.Add(1)
	Metrics.Updates.Add(int64(len(us)))
	Metrics.Events.Add(int64(len(events)))
	return events, nil
}

// shardApply runs phase A for one shard: write the shard's updates in batch
// order and evaluate each against the queries its old/new partitions touch.
func (s *Stream) shardApply(sh *streamShard, us []Update, idxs []int32) []delta {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var out []delta
	for _, i := range idxs {
		u := us[i]
		prev, known := sh.cur[u.ID]
		sh.cur[u.ID] = u
		newQ := s.partQ[u.Part]
		var oldQ []*stQuery
		if known && prev.Part != u.Part {
			oldQ = s.partQ[prev.Part]
		}
		// Merge the two qid-sorted lists, deduplicating queries relevant to
		// both partitions.
		touched := int64(0)
		a, b := 0, 0
		for a < len(newQ) || b < len(oldQ) {
			var q *stQuery
			switch {
			case b >= len(oldQ):
				q = newQ[a]
				a++
			case a >= len(newQ):
				q = oldQ[b]
				b++
			case newQ[a].id == oldQ[b].id:
				q = newQ[a]
				a++
				b++
			case newQ[a].id < oldQ[b].id:
				q = newQ[a]
				a++
			default:
				q = oldQ[b]
				b++
			}
			touched++
			out = append(out, delta{
				q:    q,
				obj:  u.ID,
				idx:  i,
				dist: q.objDist(s.sp, u.Part, u.Loc),
				t:    u.T,
			})
		}
		Metrics.Touched.Observe(touched)
	}
	return out
}

// Remove drops an object (it left the building), emitting leave events
// ascending by query id. Unknown objects return immediately with nil.
func (s *Stream) Remove(objID int32, t float64) []Event {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil
	}
	sh := &s.shards[s.shardOf(objID)]
	sh.mu.Lock()
	prev, known := sh.cur[objID]
	if known {
		delete(sh.cur, objID)
	}
	sh.mu.Unlock()
	if !known {
		return nil
	}
	var events []Event
	for _, q := range s.partQ[prev.Part] { // ascending by qid
		evs := q.fold([]delta{{q: q, obj: objID, t: t, gone: true}})
		events = append(events, evs...)
	}
	return events
}

// fold is phase B for one query: apply its deltas in batch order to the
// result state, emit membership events, and push them to subscribers.
func (q *stQuery) fold(ds []delta) []Event {
	q.mu.Lock()
	defer q.mu.Unlock()
	var evs []Event
	for i := range ds {
		d := &ds[i]
		if q.kind == kindRange {
			now := !d.gone && d.dist <= q.r
			was := q.inside[d.obj]
			switch {
			case now && !was:
				q.inside[d.obj] = true
				evs = append(evs, Event{Query: q.id, Object: d.obj, Enter: true, T: d.t})
			case !now && was:
				delete(q.inside, d.obj)
				evs = append(evs, Event{Query: q.id, Object: d.obj, Enter: false, T: d.t})
			}
			continue
		}
		evs = q.foldKNN(evs, d)
	}
	if len(evs) > 0 && len(q.subs) > 0 {
		q.pushLocked(evs)
	}
	return evs
}

// foldKNN applies one delta to a kNN monitor. The top-k is recomputed (an
// offer-order-independent scan of the known finite distances) only when the
// delta can actually change it: the object is currently in the top, the top
// is underfull, or the new distance beats the current k-th bound under the
// (distance, id) tie-break.
func (q *stQuery) foldKNN(evs []Event, d *delta) []Event {
	finite := !d.gone && !math.IsInf(d.dist, 1)
	_, had := q.dists[d.obj]
	if finite {
		q.dists[d.obj] = d.dist
	} else if had {
		delete(q.dists, d.obj)
	} else {
		return evs // unreachable object was already absent: nothing changes
	}
	if !q.inTop[d.obj] {
		if !finite {
			return evs // a non-member got farther: the top is untouched
		}
		if len(q.top) >= q.k {
			kth := q.top[len(q.top)-1]
			if d.dist > kth.Dist || (d.dist == kth.Dist && d.obj > kth.ID) {
				return evs // cannot displace the k-th under the tie-break
			}
		}
	}
	tk := query.NewTopK(q.k)
	for id, dd := range q.dists {
		tk.Offer(id, dd)
	}
	newTop := tk.Results()
	newSet := make(map[int32]bool, len(newTop))
	for _, nb := range newTop {
		newSet[nb.ID] = true
	}
	var leaves, enters []int32
	for id := range q.inTop {
		if !newSet[id] {
			leaves = append(leaves, id)
		}
	}
	for id := range newSet {
		if !q.inTop[id] {
			enters = append(enters, id)
		}
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i] < leaves[j] })
	sort.Slice(enters, func(i, j int) bool { return enters[i] < enters[j] })
	for _, id := range leaves {
		evs = append(evs, Event{Query: q.id, Object: id, Enter: false, T: d.t})
	}
	for _, id := range enters {
		evs = append(evs, Event{Query: q.id, Object: id, Enter: true, T: d.t})
	}
	q.top = newTop
	q.inTop = newSet
	return evs
}

// Close shuts the stream down: every subscription is closed and every
// subsequent operation fails with ErrStreamClosed (reads return empty).
func (s *Stream) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, q := range s.queries {
		q.mu.Lock()
		for _, sub := range q.subs {
			sub.closeLocked()
		}
		q.subs = nil
		q.mu.Unlock()
	}
	s.queries = make(map[int32]*stQuery)
	s.partQ = make([][]*stQuery, len(s.partQ))
}

// Sub is one subscription to a monitor's event deltas. Events are pushed
// non-blocking into a buffered channel: a subscriber that falls behind loses
// events (counted by Dropped) rather than stalling ingestion. The channel is
// closed when the subscription, its monitor, or the stream closes.
type Sub struct {
	q  *stQuery
	ch chan Event
	// mu guards dropped and closed; it nests inside q.mu (pushes and
	// teardown hold q.mu first).
	mu      sync.Mutex
	dropped int64
	closed  bool
}

// Subscribe attaches a delta subscription to monitor qid with the given
// channel buffer (minimum 1).
func (s *Stream) Subscribe(qid int32, buf int) (*Sub, error) {
	if buf < 1 {
		buf = 1
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrStreamClosed
	}
	q, ok := s.queries[qid]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("moving: subscribe: unknown monitor %d", qid)
	}
	sub := &Sub{q: q, ch: make(chan Event, buf)}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.subs = append(q.subs, sub)
	return sub, nil
}

// Events is the subscription's delta channel; it is closed when the
// subscription ends.
func (sub *Sub) Events() <-chan Event { return sub.ch }

// Dropped returns how many events were discarded because the subscriber's
// buffer was full.
func (sub *Sub) Dropped() int64 {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.dropped
}

// Close detaches the subscription and closes its channel. Safe to call more
// than once and concurrently with event pushes.
func (sub *Sub) Close() {
	q := sub.q
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, x := range q.subs {
		if x == sub {
			q.subs = append(q.subs[:i], q.subs[i+1:]...)
			break
		}
	}
	sub.closeLocked()
}

// closeLocked closes the channel once; callers hold q.mu, which serializes
// against pushLocked so there is no send-on-closed-channel race.
func (sub *Sub) closeLocked() {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if !sub.closed {
		sub.closed = true
		close(sub.ch)
	}
}

// pushLocked delivers events to every subscriber; caller holds q.mu.
func (q *stQuery) pushLocked(evs []Event) {
	for _, sub := range q.subs {
		sub.mu.Lock()
		if sub.closed {
			sub.mu.Unlock()
			continue
		}
		for _, e := range evs {
			select {
			case sub.ch <- e:
			default:
				sub.dropped++
			}
		}
		sub.mu.Unlock()
	}
}
