// Package moving supports indoor moving objects — the adaptation the
// paper's Sec. 7 and conclusion name as future work. Objects report
// timestamped position updates; the package maintains their current
// positions and evaluates continuous range monitoring queries in the spirit
// of Yang et al. (CIKM 2009): each registered query caches the door-distance
// field around its query point once, so every position update is absorbed
// with a handful of intra-partition distance computations, emitting
// enter/leave events only when a membership actually changes.
package moving

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"indoorsq/internal/indoor"
	"indoorsq/internal/pq"
	"indoorsq/internal/query"
)

// Update is one position report of a moving object.
type Update struct {
	ID   int32
	Loc  indoor.Point
	Part indoor.PartitionID
	T    float64 // timestamp, seconds
}

// Event is an emitted membership change of a continuous query.
type Event struct {
	Query  int32
	Object int32
	Enter  bool // true: entered the range; false: left it
	T      float64
}

// crq is one registered continuous range query.
type crq struct {
	id       int32
	p        indoor.Point
	pRef     indoor.PointRef
	vp       indoor.PartitionID
	r        float64
	doorDist []float64 // distance field from p, +Inf beyond r
	inside   map[int32]bool
}

// Monitor evaluates continuous range queries over a stream of updates. All
// methods are safe for concurrent use: one mutex serializes registrations,
// updates, and result reads (registration is the only heavy operation — it
// runs a range-bounded Dijkstra — so the streaming path contends only with
// other O(#queries) update absorptions).
type Monitor struct {
	sp *indoor.Space
	// mu guards queries, cur, and every crq's inside set.
	mu      sync.Mutex
	queries map[int32]*crq
	// cur holds each object's latest update.
	cur map[int32]Update
}

// NewMonitor returns an empty monitor over a space.
func NewMonitor(sp *indoor.Space) *Monitor {
	return &Monitor{
		sp:      sp,
		queries: make(map[int32]*crq),
		cur:     make(map[int32]Update),
	}
}

// Register adds a continuous range query around p with radius r. Objects
// already known to the monitor are evaluated immediately; their enter events
// are returned.
func (m *Monitor) Register(qid int32, p indoor.Point, r float64, t float64) ([]Event, error) {
	return m.RegisterCtx(context.Background(), qid, p, r, t)
}

// RegisterCtx is Register bounded by ctx: the registration-time Dijkstra
// that caches the door-distance field around p checks the context between
// door expansions, so an oversized registration can be cancelled or
// deadline-bounded. Later Apply calls absorb updates with a handful of
// intra-partition computations and need no context.
func (m *Monitor) RegisterCtx(ctx context.Context, qid int32, p indoor.Point, r float64, t float64) ([]Event, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.queries[qid]; dup {
		return nil, fmt.Errorf("moving: query %d already registered", qid)
	}
	vp, ok := m.sp.HostPartition(p)
	if !ok {
		return nil, fmt.Errorf("moving: query point %v is not indoors", p)
	}
	field, err := m.distField(ctx, p, vp, r)
	if err != nil {
		return nil, err
	}
	q := &crq{
		id:       qid,
		p:        p,
		pRef:     m.sp.Ref(vp, p),
		vp:       vp,
		r:        r,
		doorDist: field,
		inside:   make(map[int32]bool),
	}
	m.queries[qid] = q
	var events []Event
	ids := make([]int32, 0, len(m.cur))
	for id := range m.cur {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		u := m.cur[id]
		if m.objDist(q, u) <= q.r {
			q.inside[id] = true
			events = append(events, Event{Query: qid, Object: id, Enter: true, T: t})
		}
	}
	return events, nil
}

// Unregister removes a continuous query.
func (m *Monitor) Unregister(qid int32) {
	m.mu.Lock()
	delete(m.queries, qid)
	m.mu.Unlock()
}

// NumQueries returns the number of registered queries.
func (m *Monitor) NumQueries() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queries)
}

// Result returns the ids currently inside query qid, ascending.
func (m *Monitor) Result(qid int32) []int32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	q, ok := m.queries[qid]
	if !ok {
		return nil
	}
	out := make([]int32, 0, len(q.inside))
	for id := range q.inside {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Apply absorbs one position update, returning the membership changes it
// caused across all registered queries (ordered by query id). The update's
// Part must host Loc (same floor, point inside the partition's polygon);
// a mismatched report is rejected rather than silently producing garbage
// distances from door fields that do not apply to Loc's true partition.
func (m *Monitor) Apply(u Update) ([]Event, error) {
	if err := m.validate(u); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cur[u.ID] = u
	return m.reevaluate(u.ID, &u, u.T), nil
}

// validate checks that u.Part actually hosts u.Loc. Boundary points shared
// by two partitions are accepted for either (containment is closed), which
// keeps reports snapped to a wall by quantization valid.
func (m *Monitor) validate(u Update) error {
	if int(u.Part) < 0 || int(u.Part) >= len(m.sp.Partitions()) {
		return fmt.Errorf("moving: update for object %d names invalid partition %d", u.ID, u.Part)
	}
	part := m.sp.Partition(u.Part)
	if part.Floor != u.Loc.Floor || !part.Poly.Contains(u.Loc.XY()) {
		return fmt.Errorf("moving: update for object %d: partition %d does not host %v",
			u.ID, u.Part, u.Loc)
	}
	return nil
}

// Remove drops an object (it left the building), emitting leave events.
func (m *Monitor) Remove(objID int32, t float64) []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.cur, objID)
	return m.reevaluate(objID, nil, t)
}

// reevaluate diffs object objID's membership in every query; u == nil means
// the object is gone.
func (m *Monitor) reevaluate(objID int32, u *Update, t float64) []Event {
	qids := make([]int32, 0, len(m.queries))
	for id := range m.queries {
		qids = append(qids, id)
	}
	sort.Slice(qids, func(i, j int) bool { return qids[i] < qids[j] })
	var events []Event
	for _, qid := range qids {
		q := m.queries[qid]
		now := false
		if u != nil {
			now = m.objDist(q, *u) <= q.r
		}
		was := q.inside[objID]
		switch {
		case now && !was:
			q.inside[objID] = true
			events = append(events, Event{Query: qid, Object: objID, Enter: true, T: t})
		case !now && was:
			delete(q.inside, objID)
			events = append(events, Event{Query: qid, Object: objID, Enter: false, T: t})
		}
	}
	return events
}

// objDist computes the indoor distance from the query point to an object
// position using the cached door field.
func (m *Monitor) objDist(q *crq, u Update) float64 {
	best := math.Inf(1)
	if u.Part == q.vp {
		best = m.sp.RefDist(q.pRef, m.sp.Ref(q.vp, u.Loc))
	}
	for _, d := range m.sp.Partition(u.Part).Enter {
		dd := q.doorDist[d]
		if math.IsInf(dd, 1) || dd > q.r {
			continue
		}
		if cand := dd + m.sp.WithinPointDoor(u.Part, u.Loc, d); cand < best {
			best = cand
		}
	}
	return best
}

// distField runs the bounded Dijkstra from p once at registration, polling
// ctx every query.CheckInterval settled doors. The returned field upholds
// the doorDist invariant: every entry is either a distance <= limit or
// +Inf — candidates beyond the limit are never stored, at the seeds or
// during relaxation, so consumers may treat any finite entry as in-range.
func (m *Monitor) distField(ctx context.Context, p indoor.Point, vp indoor.PartitionID, limit float64) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := m.sp.NumDoors()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	var h pq.Heap[indoor.DoorID]
	for _, d := range m.sp.Partition(vp).Leave {
		if w := m.sp.WithinPointDoor(vp, p, d); w <= limit && w < dist[d] {
			dist[d] = w
			h.Push(d, w)
		}
	}
	settled := 0
	for h.Len() > 0 {
		d, dd := h.Pop()
		if dd > dist[d] {
			continue
		}
		if settled++; settled%query.CheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for _, v := range m.sp.Door(d).Enterable {
			for _, nd := range m.sp.Partition(v).Leave {
				if w, _ := m.sp.WithinDoorsCached(v, d, nd); !math.IsInf(w, 1) {
					if cand := dd + w; cand <= limit && cand < dist[nd] {
						dist[nd] = cand
						h.Push(nd, cand)
					}
				}
			}
		}
	}
	return dist, nil
}
