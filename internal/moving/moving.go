// Package moving supports indoor moving objects — the adaptation the
// paper's Sec. 7 and conclusion name as future work. Objects report
// timestamped position updates; the package maintains their current
// positions and evaluates continuous queries in the spirit of Yang et al.
// (CIKM 2009): each registered query caches the door-distance field around
// its query point once, so every position update is absorbed with a handful
// of intra-partition distance computations, emitting enter/leave events only
// when a membership actually changes.
//
// Two evaluators share the same distance machinery:
//
//   - Monitor is the simple serial evaluator: one mutex, every update
//     re-evaluated against every registered range query. It is the scan-all
//     reference the streaming benchmarks compare against.
//   - Stream (stream.go) is the sharded streaming subsystem: a
//     partition→query inverted index derived from each query's cached
//     distance field, object-sharded state, batched deterministic ingestion
//     through exec.Pool, standing range and kNN monitors, and incremental
//     delta push over subscriptions.
package moving

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"indoorsq/internal/indoor"
	"indoorsq/internal/pq"
	"indoorsq/internal/query"
)

// Sentinel registration errors. Both Monitor and Stream wrap these, so
// callers (the HTTP monitor endpoints in particular) can map them to
// distinct statuses with errors.Is instead of matching message text.
var (
	// ErrDuplicateQuery marks a Register with an already-registered query id.
	ErrDuplicateQuery = errors.New("moving: query already registered")
	// ErrNotIndoors marks a query point hosted by no indoor partition.
	ErrNotIndoors = errors.New("moving: query point is not indoors")
)

// Update is one position report of a moving object.
type Update struct {
	ID   int32
	Loc  indoor.Point
	Part indoor.PartitionID
	T    float64 // timestamp, seconds
}

// Event is an emitted membership change of a continuous query.
type Event struct {
	Query  int32
	Object int32
	Enter  bool // true: entered the result; false: left it
	T      float64
}

// qcore is the immutable evaluation core shared by Monitor range queries and
// Stream monitors: the query point with its reusable intra-partition handle,
// the host partition, the radius bound (+Inf for kNN monitors, whose fields
// are unbounded), and the cached door-distance field.
type qcore struct {
	id       int32
	p        indoor.Point
	pRef     indoor.PointRef
	vp       indoor.PartitionID
	r        float64
	doorDist []float64 // distance from p, +Inf beyond r
}

// objDist computes the indoor distance from the query point to an object at
// loc in partition part, using the cached door field. Both evaluators call
// exactly this, which is what makes their membership decisions bit-identical.
func (q *qcore) objDist(sp *indoor.Space, part indoor.PartitionID, loc indoor.Point) float64 {
	best := math.Inf(1)
	if part == q.vp {
		best = sp.RefDist(q.pRef, sp.Ref(q.vp, loc))
	}
	for _, d := range sp.Partition(part).Enter {
		dd := q.doorDist[d]
		if math.IsInf(dd, 1) || dd > q.r {
			continue
		}
		if cand := dd + sp.WithinPointDoor(part, loc, d); cand < best {
			best = cand
		}
	}
	return best
}

// distField runs the bounded Dijkstra from p once at registration, polling
// ctx every query.CheckInterval settled doors. The returned field upholds
// the doorDist invariant: every entry is either a distance <= limit or
// +Inf — candidates beyond the limit are never stored, at the seeds or
// during relaxation, so consumers may treat any finite entry as in-range.
// An unbounded field (kNN monitors) passes limit = +Inf and settles every
// reachable door.
func distField(ctx context.Context, sp *indoor.Space, p indoor.Point, vp indoor.PartitionID, limit float64) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := sp.NumDoors()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	var h pq.Heap[indoor.DoorID]
	for _, d := range sp.Partition(vp).Leave {
		if w := sp.WithinPointDoor(vp, p, d); w <= limit && w < dist[d] {
			dist[d] = w
			h.Push(d, w)
		}
	}
	settled := 0
	for h.Len() > 0 {
		d, dd := h.Pop()
		if dd > dist[d] {
			continue
		}
		if settled++; settled%query.CheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for _, v := range sp.Door(d).Enterable {
			for _, nd := range sp.Partition(v).Leave {
				if w, _ := sp.WithinDoorsCached(v, d, nd); !math.IsInf(w, 1) {
					if cand := dd + w; cand <= limit && cand < dist[nd] {
						dist[nd] = cand
						h.Push(nd, cand)
					}
				}
			}
		}
	}
	return dist, nil
}

// validateUpdate checks that u.Part actually hosts u.Loc. Boundary points
// shared by two partitions are accepted for either (containment is closed),
// which keeps reports snapped to a wall by quantization valid.
func validateUpdate(sp *indoor.Space, u Update) error {
	if int(u.Part) < 0 || int(u.Part) >= len(sp.Partitions()) {
		return fmt.Errorf("moving: update for object %d names invalid partition %d", u.ID, u.Part)
	}
	part := sp.Partition(u.Part)
	if part.Floor != u.Loc.Floor || !part.Poly.Contains(u.Loc.XY()) {
		return fmt.Errorf("moving: update for object %d: partition %d does not host %v",
			u.ID, u.Part, u.Loc)
	}
	return nil
}

// crq is one registered continuous range query of the serial Monitor.
type crq struct {
	qcore
	inside map[int32]bool
}

// Monitor evaluates continuous range queries over a stream of updates by
// re-evaluating every registered query on every update. All methods are safe
// for concurrent use: one mutex serializes registrations, updates, and
// result reads. It is the scan-all baseline the sharded Stream is measured
// against; new consumers should normally use Stream.
type Monitor struct {
	sp *indoor.Space
	// mu guards queries, cur, and every crq's inside set.
	mu      sync.Mutex
	queries map[int32]*crq
	// cur holds each object's latest update.
	cur map[int32]Update
}

// NewMonitor returns an empty monitor over a space.
func NewMonitor(sp *indoor.Space) *Monitor {
	return &Monitor{
		sp:      sp,
		queries: make(map[int32]*crq),
		cur:     make(map[int32]Update),
	}
}

// Register adds a continuous range query around p with radius r. Objects
// already known to the monitor are evaluated immediately; their enter events
// are returned. A duplicate id fails with ErrDuplicateQuery, an outdoor
// query point with ErrNotIndoors (both wrapped, test with errors.Is).
func (m *Monitor) Register(qid int32, p indoor.Point, r float64, t float64) ([]Event, error) {
	return m.RegisterCtx(context.Background(), qid, p, r, t)
}

// RegisterCtx is Register bounded by ctx: the registration-time Dijkstra
// that caches the door-distance field around p checks the context between
// door expansions, so an oversized registration can be cancelled or
// deadline-bounded. A failed registration leaves no trace. Later Apply
// calls absorb updates with a handful of intra-partition computations and
// need no context.
func (m *Monitor) RegisterCtx(ctx context.Context, qid int32, p indoor.Point, r float64, t float64) ([]Event, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.queries[qid]; dup {
		return nil, fmt.Errorf("%w: id %d", ErrDuplicateQuery, qid)
	}
	vp, ok := m.sp.HostPartition(p)
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNotIndoors, p)
	}
	field, err := distField(ctx, m.sp, p, vp, r)
	if err != nil {
		return nil, err
	}
	q := &crq{
		qcore: qcore{
			id:       qid,
			p:        p,
			pRef:     m.sp.Ref(vp, p),
			vp:       vp,
			r:        r,
			doorDist: field,
		},
		inside: make(map[int32]bool),
	}
	m.queries[qid] = q
	var events []Event
	ids := make([]int32, 0, len(m.cur))
	for id := range m.cur {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		u := m.cur[id]
		if q.objDist(m.sp, u.Part, u.Loc) <= q.r {
			q.inside[id] = true
			events = append(events, Event{Query: qid, Object: id, Enter: true, T: t})
		}
	}
	return events, nil
}

// Unregister removes a continuous query.
func (m *Monitor) Unregister(qid int32) {
	m.mu.Lock()
	delete(m.queries, qid)
	m.mu.Unlock()
}

// NumQueries returns the number of registered queries.
func (m *Monitor) NumQueries() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queries)
}

// Result returns the ids currently inside query qid, ascending.
func (m *Monitor) Result(qid int32) []int32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	q, ok := m.queries[qid]
	if !ok {
		return nil
	}
	out := make([]int32, 0, len(q.inside))
	for id := range q.inside {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Apply absorbs one position update, returning the membership changes it
// caused across all registered queries (ordered by query id). The update's
// Part must host Loc (same floor, point inside the partition's polygon);
// a mismatched report is rejected rather than silently producing garbage
// distances from door fields that do not apply to Loc's true partition.
func (m *Monitor) Apply(u Update) ([]Event, error) {
	if err := validateUpdate(m.sp, u); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cur[u.ID] = u
	return m.reevaluate(u.ID, &u, u.T), nil
}

// Remove drops an object (it left the building), emitting leave events.
// An object the monitor never saw returns immediately: membership is a
// subset of the known objects (inside sets only gain ids through Apply or
// registration over cur), so there is nothing to walk and nothing to emit —
// the unknown-object path costs no allocations.
func (m *Monitor) Remove(objID int32, t float64) []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, known := m.cur[objID]; !known {
		return nil
	}
	delete(m.cur, objID)
	return m.reevaluate(objID, nil, t)
}

// reevaluate diffs object objID's membership in every query; u == nil means
// the object is gone. With no queries registered it returns immediately
// without allocating.
func (m *Monitor) reevaluate(objID int32, u *Update, t float64) []Event {
	if len(m.queries) == 0 {
		return nil
	}
	qids := make([]int32, 0, len(m.queries))
	for id := range m.queries {
		qids = append(qids, id)
	}
	sort.Slice(qids, func(i, j int) bool { return qids[i] < qids[j] })
	var events []Event
	for _, qid := range qids {
		q := m.queries[qid]
		now := false
		if u != nil {
			now = q.objDist(m.sp, u.Part, u.Loc) <= q.r
		}
		was := q.inside[objID]
		switch {
		case now && !was:
			q.inside[objID] = true
			events = append(events, Event{Query: qid, Object: objID, Enter: true, T: t})
		case !now && was:
			delete(q.inside, objID)
			events = append(events, Event{Query: qid, Object: objID, Enter: false, T: t})
		}
	}
	return events
}
