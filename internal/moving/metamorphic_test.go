package moving_test

import (
	"fmt"
	"math/rand"
	"testing"

	"indoorsq/internal/indoor"
	"indoorsq/internal/moving"
	"indoorsq/internal/spacegen"
	"indoorsq/internal/workload"
)

// metaFixture is the shared venue + query set + motion stream of the
// metamorphic suite.
type metaFixture struct {
	sp *indoor.Space
	us []moving.Update
	rq []struct {
		qid int32
		p   indoor.Point
		r   float64
	}
	kq []struct {
		qid int32
		p   indoor.Point
		k   int
	}
}

func newMetaFixture(t *testing.T) *metaFixture {
	t.Helper()
	sp, err := spacegen.Generate(33, spacegen.Params{
		Floors: 2, Rows: 3, Cols: 3, ExtraDoors: 3, OneWayFrac: 0.25,
	}.Normalize())
	if err != nil {
		t.Fatal(err)
	}
	fx := &metaFixture{sp: sp}
	fx.us = toUpdates(spacegen.MotionStream(sp, 91, 30, 2000, 1, 0.25, 0.3))
	gen := workload.New(sp, 17)
	for i := 0; i < 6; i++ {
		p, _ := gen.PointIn()
		fx.rq = append(fx.rq, struct {
			qid int32
			p   indoor.Point
			r   float64
		}{int32(i + 1), p, 7 + 2*float64(i)})
	}
	for i := 0; i < 2; i++ {
		p, _ := gen.PointIn()
		fx.kq = append(fx.kq, struct {
			qid int32
			p   indoor.Point
			k   int
		}{int32(50 + i), p, 2 + 3*i})
	}
	return fx
}

// run replays the fixture on a fresh Stream with the given shard/worker
// counts and batch size, returning all emitted events (registrations
// included) and the final result set per query.
func (fx *metaFixture) run(t *testing.T, shards, workers, batch int) ([]moving.Event, map[int32][]int32) {
	t.Helper()
	st := moving.NewStream(fx.sp, moving.StreamOptions{Shards: shards, Workers: workers})
	var events []moving.Event
	for _, q := range fx.rq {
		evs, err := st.Register(q.qid, q.p, q.r, 0)
		if err != nil {
			t.Fatalf("register %d: %v", q.qid, err)
		}
		events = append(events, evs...)
	}
	for _, q := range fx.kq {
		evs, err := st.RegisterKNN(q.qid, q.p, q.k, 0)
		if err != nil {
			t.Fatalf("register knn %d: %v", q.qid, err)
		}
		events = append(events, evs...)
	}
	for lo := 0; lo < len(fx.us); lo += batch {
		hi := lo + batch
		if hi > len(fx.us) {
			hi = len(fx.us)
		}
		evs, err := st.ApplyBatch(fx.us[lo:hi])
		if err != nil {
			t.Fatalf("batch [%d,%d): %v", lo, hi, err)
		}
		events = append(events, evs...)
	}
	final := map[int32][]int32{}
	for _, q := range fx.rq {
		final[q.qid] = st.Result(q.qid)
	}
	for _, q := range fx.kq {
		final[q.qid] = st.Result(q.qid)
	}
	return events, final
}

func diffFinal(t *testing.T, label string, got, want map[int32][]int32) {
	t.Helper()
	for qid, w := range want {
		g := got[qid]
		if len(g) != len(w) {
			t.Fatalf("%s: query %d final result %v, want %v", label, qid, g, w)
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("%s: query %d final result %v, want %v", label, qid, g, w)
			}
		}
	}
}

// TestMetamorphicShardsAndBatches asserts the tentpole determinism claim:
// for an update stream with strictly increasing timestamps, the emitted
// event stream — range and kNN monitors alike — is bit-identical across
// shard counts {1,2,8}, worker counts, and batch sizes {1,64,4096}. The
// {shards:1, workers:1, batch:1} run is serial evaluation; every other
// configuration must reproduce it exactly.
func TestMetamorphicShardsAndBatches(t *testing.T) {
	t.Parallel()
	fx := newMetaFixture(t)
	refEvents, refFinal := fx.run(t, 1, 1, 1)
	if len(refEvents) == 0 {
		t.Fatal("fixture produced no events; the suite is vacuous")
	}
	for _, shards := range []int{1, 2, 8} {
		for _, batch := range []int{1, 64, 4096} {
			if shards == 1 && batch == 1 {
				continue
			}
			label := fmt.Sprintf("shards=%d batch=%d", shards, batch)
			events, final := fx.run(t, shards, 4, batch)
			diffEvents(t, label, events, refEvents)
			diffFinal(t, label, final, refFinal)
		}
	}
}

// TestMetamorphicPermutation permutes updates within each batch tick. The
// batches are built so no object repeats inside one batch, which makes a
// range monitor's per-update membership decision independent of fold order
// — so the range event stream must be exactly invariant. kNN intermediate
// events legitimately depend on intra-batch order (exactly as a serial
// evaluation of the permuted stream would), so for kNN monitors the
// assertion is on the final result sets, which depend only on the final
// positions.
func TestMetamorphicPermutation(t *testing.T) {
	t.Parallel()
	fx := newMetaFixture(t)

	// Chunk the stream into ticks of <= 64 updates with unique object ids.
	var ticks [][]moving.Update
	seen := map[int32]bool{}
	lo := 0
	for i := range fx.us {
		if len(seen) >= 64 || seen[fx.us[i].ID] {
			ticks = append(ticks, fx.us[lo:i])
			seen = map[int32]bool{}
			lo = i
		}
		seen[fx.us[i].ID] = true
	}
	ticks = append(ticks, fx.us[lo:])

	run := func(perm *rand.Rand) ([]moving.Event, map[int32][]int32) {
		st := moving.NewStream(fx.sp, moving.StreamOptions{Shards: 4, Workers: 4})
		var events []moving.Event
		for _, q := range fx.rq {
			evs, err := st.Register(q.qid, q.p, q.r, 0)
			if err != nil {
				t.Fatalf("register %d: %v", q.qid, err)
			}
			events = append(events, evs...)
		}
		for _, q := range fx.kq {
			if _, err := st.RegisterKNN(q.qid, q.p, q.k, 0); err != nil {
				t.Fatalf("register knn %d: %v", q.qid, err)
			}
		}
		for _, tick := range ticks {
			batch := append([]moving.Update(nil), tick...)
			if perm != nil {
				perm.Shuffle(len(batch), func(i, j int) { batch[i], batch[j] = batch[j], batch[i] })
			}
			evs, err := st.ApplyBatch(batch)
			if err != nil {
				t.Fatalf("batch: %v", err)
			}
			events = append(events, evs...)
		}
		final := map[int32][]int32{}
		for _, q := range fx.rq {
			final[q.qid] = st.Result(q.qid)
		}
		for _, q := range fx.kq {
			final[q.qid] = st.Result(q.qid)
		}
		// Range events only: kNN deltas are order-sensitive by design.
		var rangeEvents []moving.Event
		for _, e := range events {
			if e.Query < 50 {
				rangeEvents = append(rangeEvents, e)
			}
		}
		return rangeEvents, final
	}

	refEvents, refFinal := run(nil)
	for trial := 0; trial < 3; trial++ {
		label := fmt.Sprintf("permutation %d", trial)
		events, final := run(rand.New(rand.NewSource(int64(trial + 1))))
		diffEvents(t, label, events, refEvents)
		diffFinal(t, label, final, refFinal)
	}
}
