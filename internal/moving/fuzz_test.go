package moving_test

import (
	"math/rand"
	"sort"
	"testing"

	"indoorsq/internal/indoor"
	"indoorsq/internal/moving"
	"indoorsq/internal/oracle"
	"indoorsq/internal/query"
	"indoorsq/internal/spacegen"
	"indoorsq/internal/workload"
)

// fuzzVenue is one pre-generated venue the fuzzer can select, with a pool
// of valid indoor points ops draw from.
type fuzzVenue struct {
	sp   *indoor.Space
	pts  []indoor.Point
	part []indoor.PartitionID
}

func buildFuzzVenues() []fuzzVenue {
	specs := []struct {
		seed int64
		p    spacegen.Params
	}{
		{1, spacegen.Params{Floors: 1, Rows: 2, Cols: 3}},
		{2, spacegen.Params{Floors: 1, Rows: 2, Cols: 4, ExtraDoors: 2}},
		{3, spacegen.Params{Floors: 2, Rows: 2, Cols: 2, Hall: spacegen.HallL}},
		{4, spacegen.Params{Floors: 1, Rows: 3, Cols: 3, OneWayFrac: 0.4}},
	}
	venues := make([]fuzzVenue, 0, len(specs))
	for _, s := range specs {
		sp, err := spacegen.Generate(s.seed, s.p.Normalize())
		if err != nil {
			panic(err)
		}
		v := fuzzVenue{sp: sp}
		gen := workload.New(sp, s.seed*31)
		for i := 0; i < 64; i++ {
			p, part := gen.PointIn()
			v.pts = append(v.pts, p)
			v.part = append(v.part, part)
		}
		venues = append(venues, v)
	}
	return venues
}

// FuzzMonitorStream drives a Stream with a byte-derived op sequence —
// updates, removals, range and kNN registrations, unregistrations — and
// after every op diffs the full monitor state against the oracle's
// from-scratch recomputation over the same object set: range result sets,
// kNN top-k (ids and distances), and the emitted event diffs. The Stream's
// shard count is fuzzed too, so the generative harness also exercises the
// fan-out/merge path.
func FuzzMonitorStream(f *testing.F) {
	venues := buildFuzzVenues()

	f.Add([]byte{0})
	f.Add([]byte{1, 0, 1, 0, 2, 3, 10, 4, 7, 0, 5, 1})
	f.Add([]byte{2, 3, 5, 2, 6, 1, 2, 0, 9, 1, 4, 3, 3, 2, 8})
	f.Add([]byte{3, 7, 7, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		v := venues[int(data[0])%len(venues)]
		shards := 1 + int(data[0]>>2)%4
		st := moving.NewStream(v.sp, moving.StreamOptions{Shards: shards, Workers: 2})
		ora := oracle.New(v.sp)
		rng := rand.New(rand.NewSource(int64(data[0]) + 7))

		cur := map[int32]moving.Update{}
		type rq struct {
			p indoor.Point
			r float64
		}
		type kq struct {
			p indoor.Point
			k int
		}
		ranges := map[int32]rq{}
		knns := map[int32]kq{}
		inside := map[int32]map[int32]bool{}
		tm := 0.0

		syncOracle := func() {
			objs := make([]query.Object, 0, len(cur))
			for id, u := range cur {
				objs = append(objs, query.Object{ID: id, Loc: u.Loc, Part: u.Part})
			}
			sort.Slice(objs, func(i, j int) bool { return objs[i].ID < objs[j].ID })
			ora.SetObjects(objs)
		}

		// checkAll diffs every query's state against the oracle and the
		// emitted events against the oracle-side membership diff.
		checkAll := func(op int, events []moving.Event) {
			syncOracle()
			var want []moving.Event
			for qid, q := range ranges {
				ids, err := ora.Range(q.p, q.r, nil)
				if err != nil {
					t.Fatalf("op %d: oracle range: %v", op, err)
				}
				now := make(map[int32]bool, len(ids))
				for _, id := range ids {
					now[id] = true
				}
				got := st.Result(qid)
				if len(got) != len(ids) {
					t.Fatalf("op %d query %d: result %v, oracle %v", op, qid, got, ids)
				}
				for i := range got {
					if got[i] != ids[i] {
						t.Fatalf("op %d query %d: result %v, oracle %v", op, qid, got, ids)
					}
				}
				was := inside[qid]
				for id := range now {
					if !was[id] {
						want = append(want, moving.Event{Query: qid, Object: id, Enter: true})
					}
				}
				for id := range was {
					if !now[id] {
						want = append(want, moving.Event{Query: qid, Object: id, Enter: false})
					}
				}
				inside[qid] = now
			}
			for qid, q := range knns {
				wantN, err := ora.KNN(q.p, q.k, nil)
				if err != nil {
					t.Fatalf("op %d: oracle knn: %v", op, err)
				}
				gotN := st.Neighbors(qid)
				if len(gotN) != len(wantN) {
					t.Fatalf("op %d knn %d: top-k %v, oracle %v", op, qid, gotN, wantN)
				}
				for i := range gotN {
					if gotN[i] != wantN[i] {
						t.Fatalf("op %d knn %d: top-k %v, oracle %v", op, qid, gotN, wantN)
					}
				}
			}
			// Range events must equal the oracle membership diff (kNN events
			// are covered through the top-k state check above).
			var got []moving.Event
			for _, e := range events {
				if _, isRange := ranges[e.Query]; isRange {
					got = append(got, moving.Event{Query: e.Query, Object: e.Object, Enter: e.Enter})
				}
			}
			key := func(e moving.Event) uint64 {
				k := uint64(uint32(e.Query))<<33 | uint64(uint32(e.Object))<<1
				if e.Enter {
					k |= 1
				}
				return k
			}
			sort.Slice(got, func(i, j int) bool { return key(got[i]) < key(got[j]) })
			sort.Slice(want, func(i, j int) bool { return key(want[i]) < key(want[j]) })
			if len(got) != len(want) {
				t.Fatalf("op %d: range events %v, oracle diff %v", op, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("op %d: range events %v, oracle diff %v", op, got, want)
				}
			}
		}

		next := func(i int) byte {
			if i < len(data) {
				return data[i]
			}
			return byte(rng.Intn(256))
		}

		ops := 0
		for i := 1; i < len(data) && ops < 48; ops++ {
			op := next(i) % 8
			arg := next(i + 1)
			i += 2
			tm += 1
			switch {
			case op <= 3: // update: object to a pooled point
				pi := int(arg) % len(v.pts)
				u := moving.Update{
					ID:   int32(arg % 12),
					Loc:  v.pts[pi],
					Part: v.part[pi],
					T:    tm,
				}
				evs, err := st.Apply(u)
				if err != nil {
					t.Fatalf("op %d: apply: %v", ops, err)
				}
				cur[u.ID] = u
				checkAll(ops, evs)
			case op == 4: // register range
				qid := int32(arg % 6)
				if _, dup := ranges[qid]; dup {
					if _, dup2 := knns[qid]; !dup2 {
						st.Unregister(qid)
						delete(ranges, qid)
						delete(inside, qid)
						checkAll(ops, nil)
						continue
					}
				}
				p := v.pts[int(arg)%len(v.pts)]
				r := 4 + float64(arg%5)*3.5
				evs, err := st.Register(qid, p, r, tm)
				if err != nil {
					continue // duplicate with a knn id: fine, skip
				}
				ranges[qid] = rq{p, r}
				inside[qid] = map[int32]bool{}
				checkAll(ops, evs)
			case op == 5: // register knn
				qid := int32(100 + arg%4)
				if _, dup := knns[qid]; dup {
					st.Unregister(qid)
					delete(knns, qid)
					checkAll(ops, nil)
					continue
				}
				p := v.pts[(int(arg)+7)%len(v.pts)]
				if _, err := st.RegisterKNN(qid, p, 1+int(arg)%4, tm); err != nil {
					t.Fatalf("op %d: register knn: %v", ops, err)
				}
				knns[qid] = kq{p, 1 + int(arg)%4}
				checkAll(ops, nil)
			case op == 6: // remove object
				id := int32(arg % 12)
				evs := st.Remove(id, tm)
				delete(cur, id)
				checkAll(ops, evs)
			default: // batched updates: three objects at once
				var batch []moving.Update
				for j := 0; j < 3; j++ {
					pi := (int(arg) + j*11) % len(v.pts)
					id := int32((int(arg) + j*5) % 12)
					dup := false
					for _, b := range batch {
						if b.ID == id {
							dup = true
							break
						}
					}
					if dup {
						continue
					}
					tm += 1
					batch = append(batch, moving.Update{
						ID: id, Loc: v.pts[pi], Part: v.part[pi], T: tm,
					})
				}
				evs, err := st.ApplyBatch(batch)
				if err != nil {
					t.Fatalf("op %d: batch: %v", ops, err)
				}
				for _, u := range batch {
					cur[u.ID] = u
				}
				checkAll(ops, evs)
			}
		}
	})
}
