package moving_test

import (
	"fmt"
	"sync"
	"testing"

	"indoorsq/internal/indoor"
	"indoorsq/internal/moving"
	"indoorsq/internal/spacegen"
	"indoorsq/internal/workload"
)

// TestStreamSoakConcurrent hammers two venues' streams from 8 goroutines
// mixing ApplyBatch, Remove, Register/Unregister churn, Result reads, and
// subscription reads, for >30k updates total. Each goroutine owns a
// disjoint object-id range per venue, so every object's update sequence is
// well-ordered even though batches from different goroutines interleave.
// At quiescence the membership of every permanent monitor must equal a
// from-scratch serial replay of the final positions, and the net of each
// goroutine's collected enter/leave events must reproduce exactly that
// membership — a lost or duplicated event breaks the ±1 accounting.
//
// The moving package is in the tier-1 race target list, so this runs under
// -race on every verify.
func TestStreamSoakConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short")
	}
	const (
		goroutines = 8
		batches    = 16
		batchSize  = 128 // per goroutine per venue: 16*128*2 = 4096 updates
		permanents = 6
		objsPerG   = 32
	)
	// 8 goroutines × 2 venues × 16 × 128 = 32768 updates > 30k.

	type venue struct {
		sp   *indoor.Space
		st   *moving.Stream
		perm []struct {
			qid int32
			p   indoor.Point
			r   float64
			k   int // 0 = range monitor
		}
	}
	mkVenue := func(seed int64) *venue {
		sp, err := spacegen.Generate(seed, spacegen.Params{
			Floors: 1, Rows: 3, Cols: 4, ExtraDoors: 2,
		}.Normalize())
		if err != nil {
			t.Fatal(err)
		}
		v := &venue{sp: sp, st: moving.NewStream(sp, moving.StreamOptions{Shards: 8, Workers: 4})}
		gen := workload.New(sp, seed*3)
		for i := 0; i < permanents; i++ {
			p, _ := gen.PointIn()
			q := struct {
				qid int32
				p   indoor.Point
				r   float64
				k   int
			}{qid: int32(i + 1), p: p, r: 9 + float64(i)*2}
			if i >= permanents-2 {
				q.k = 2 + i // last two permanents are kNN monitors
			}
			v.perm = append(v.perm, q)
			var err error
			if q.k > 0 {
				_, err = v.st.RegisterKNN(q.qid, q.p, q.k, 0)
			} else {
				_, err = v.st.Register(q.qid, q.p, q.r, 0)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		return v
	}
	venues := []*venue{mkVenue(71), mkVenue(72)}

	// Per (goroutine, venue): the event log from this goroutine's own calls
	// and the final state of its objects. Merged after the fact.
	type gvState struct {
		events  []moving.Event
		final   map[int32]moving.Update // last applied update per live object
		removed map[int32]bool
	}
	states := make([][]gvState, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		states[g] = make([]gvState, len(venues))
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for vi, v := range venues {
				st := &states[g][vi]
				st.final = map[int32]moving.Update{}
				st.removed = map[int32]bool{}
				base := int32(1000 + g*objsPerG) // disjoint per goroutine
				ms := spacegen.MotionStream(v.sp, int64(100+g*10+vi), objsPerG,
					batches*batchSize, float64(g)*1e6+1, 0.25, 0.3)
				us := toUpdates(ms)
				for i := range us {
					us[i].ID += base
				}
				churnID := int32(9000 + g)
				sub, err := v.st.Subscribe(v.perm[g%permanents].qid, 64)
				if err != nil {
					panic(err)
				}
				for b := 0; b < batches; b++ {
					batch := us[b*batchSize : (b+1)*batchSize]
					evs, err := v.st.ApplyBatch(batch)
					if err != nil {
						panic(err)
					}
					st.events = append(st.events, evs...)
					for _, u := range batch {
						st.final[u.ID] = u
						delete(st.removed, u.ID)
					}
					switch b % 4 {
					case 0: // query churn: register + result + unregister
						p := v.perm[0].p
						if _, err := v.st.Register(churnID, p, 6, batch[len(batch)-1].T+0.1); err != nil {
							panic(err)
						}
						v.st.Result(churnID)
						v.st.Unregister(churnID)
					case 1: // remove one own object
						id := batch[0].ID
						evs := v.st.Remove(id, batch[len(batch)-1].T+0.2)
						st.events = append(st.events, evs...)
						delete(st.final, id)
						st.removed[id] = true
					case 2: // result reads of permanents
						for _, q := range v.perm {
							v.st.Result(q.qid)
						}
						v.st.Monitors()
					default: // drain the subscription (lossy reads are fine)
						for drained := false; !drained; {
							select {
							case <-sub.Events():
							default:
								drained = true
							}
						}
					}
				}
				sub.Close()
			}
		}(g)
	}
	wg.Wait()

	for vi, v := range venues {
		// Serial replay: a fresh single-shard stream fed each object's final
		// position once. Membership at quiescence is a pure function of the
		// final positions and the query set, so it must match the live
		// stream that got there through 32k interleaved concurrent updates.
		replay := moving.NewStream(v.sp, moving.StreamOptions{Shards: 1, Workers: 1})
		for _, q := range v.perm {
			var err error
			if q.k > 0 {
				_, err = replay.RegisterKNN(q.qid, q.p, q.k, 0)
			} else {
				_, err = replay.Register(q.qid, q.p, q.r, 0)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		tm := 1.0
		for g := 0; g < goroutines; g++ {
			for _, u := range states[g][vi].final {
				u.T = tm
				tm++
				if _, err := replay.Apply(u); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, q := range v.perm {
			live, want := v.st.Result(q.qid), replay.Result(q.qid)
			if fmt.Sprint(live) != fmt.Sprint(want) {
				t.Fatalf("venue %d query %d: live membership %v, serial replay %v",
					vi, q.qid, live, want)
			}
		}

		// Event accounting for the range permanents: net enter-leave per
		// (query, object) across all goroutines must be exactly the final
		// membership indicator — any lost or duplicated event shows up here.
		net := map[[2]int32]int{}
		for g := 0; g < goroutines; g++ {
			for _, e := range states[g][vi].events {
				isPerm := e.Query >= 1 && e.Query <= permanents
				if !isPerm || v.perm[e.Query-1].k > 0 {
					continue
				}
				k := [2]int32{e.Query, e.Object}
				if e.Enter {
					net[k]++
				} else {
					net[k]--
				}
				if net[k] < 0 || net[k] > 1 {
					t.Fatalf("venue %d query %d object %d: event net %d — lost or duplicated event",
						vi, e.Query, e.Object, net[k])
				}
			}
		}
		for _, q := range v.perm {
			if q.k > 0 {
				continue
			}
			member := map[int32]bool{}
			for _, id := range v.st.Result(q.qid) {
				member[id] = true
			}
			for k, n := range net {
				if k[0] != q.qid {
					continue
				}
				if (n == 1) != member[k[1]] {
					t.Fatalf("venue %d query %d object %d: event net %d but membership %v",
						vi, q.qid, k[1], n, member[k[1]])
				}
			}
			for id := range member {
				if net[[2]int32{q.qid, id}] != 1 {
					t.Fatalf("venue %d query %d object %d: member without net enter", vi, q.qid, id)
				}
			}
		}
	}
}
