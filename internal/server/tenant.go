// Multi-venue serving: TenantServer mounts one HTTP surface over a
// tenant.Tier — per-venue query endpoints that go through each venue's
// cost-based router (with ?engine= as the per-query deterministic
// override), per-venue snapshot swaps, a routing introspection endpoint
// exposing the decision table and its evidence, and per-venue metrics. The
// single-venue Server stays as-is; isqserve picks one surface or the other
// based on whether -venues is given.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"indoorsq/internal/query"
	"indoorsq/internal/tenant"
)

// TenantServer serves N venues through their routers.
type TenantServer struct {
	tier       *tenant.Tier
	timeouts   map[string]time.Duration
	budget     query.Budget
	encodeErrs atomic.Int64

	// movMu guards movs, the lazily created per-venue continuous-query
	// streams (see streamFor in monitors.go). Entries are keyed by venue id
	// and invalidated when the venue's space pointer changes on swap.
	movMu sync.Mutex
	movs  map[string]*tenantStream
}

// NewTenantServer wires the HTTP surface around a booted tier.
func NewTenantServer(tier *tenant.Tier) *TenantServer {
	return &TenantServer{
		tier:     tier,
		timeouts: make(map[string]time.Duration),
		movs:     make(map[string]*tenantStream),
	}
}

// Tier returns the underlying tier.
func (s *TenantServer) Tier() *tenant.Tier { return s.tier }

// SetTimeout bounds queries of one endpoint ("range", "knn", "spd") with a
// per-request deadline; call before serving starts.
func (s *TenantServer) SetTimeout(endpoint string, d time.Duration) {
	if d <= 0 {
		delete(s.timeouts, endpoint)
		return
	}
	s.timeouts[endpoint] = d
}

// SetBudget attaches a work budget to every query context; call before
// serving starts.
func (s *TenantServer) SetBudget(b query.Budget) { s.budget = b }

// EncodeErrors returns how many response bodies failed to encode.
func (s *TenantServer) EncodeErrors() int64 { return s.encodeErrs.Load() }

// Handler returns the multi-venue HTTP handler.
func (s *TenantServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/venues", s.handleVenues)
	mux.HandleFunc("GET /v1/venues/{id}/info", s.handleVenueInfo)
	mux.HandleFunc("GET /v1/venues/{id}/range", s.handleVenueRange)
	mux.HandleFunc("GET /v1/venues/{id}/knn", s.handleVenueKNN)
	mux.HandleFunc("GET /v1/venues/{id}/spd", s.handleVenueSPD)
	mux.HandleFunc("GET /v1/venues/{id}/route", s.handleVenueRoute)
	mux.HandleFunc("POST /v1/venues/{id}/route", s.handleVenuePin)
	mux.HandleFunc("POST /v1/venues/{id}/swap", s.handleVenueSwap)
	mux.HandleFunc("GET /v1/venues/{id}/metrics", s.handleVenueMetrics)
	mux.HandleFunc("GET /v1/venues/{id}/monitors", s.handleVenueMonitorList)
	mux.HandleFunc("POST /v1/venues/{id}/monitors", s.handleVenueMonitorCreate)
	mux.HandleFunc("DELETE /v1/venues/{id}/monitors/{mid}", s.handleVenueMonitorDelete)
	mux.HandleFunc("GET /v1/venues/{id}/monitors/{mid}/result", s.handleVenueMonitorResult)
	mux.HandleFunc("GET /v1/venues/{id}/monitors/{mid}/stream", s.handleVenueMonitorStream)
	mux.HandleFunc("POST /v1/venues/{id}/updates", s.handleVenueUpdates)
	return mux
}

func (s *TenantServer) writeJSON(w http.ResponseWriter, code int, v any) {
	if encodeJSON(w, code, v) != nil {
		s.encodeErrs.Add(1)
	}
}

func (s *TenantServer) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.writeJSON(w, code, httpError{Error: fmt.Sprintf(format, args...)})
}

func (s *TenantServer) failQuery(w http.ResponseWriter, err error, st *query.Stats) {
	he := httpError{Error: err.Error()}
	if errors.Is(err, query.ErrBudgetExhausted) || errors.Is(err, context.DeadlineExceeded) {
		he.VisitedDoors = &st.VisitedDoors
		he.WorkBytes = &st.WorkBytes
	}
	s.writeJSON(w, errStatus(err), he)
}

// venue resolves the {id} path segment against the tier's current shard map.
func (s *TenantServer) venue(w http.ResponseWriter, r *http.Request) (*tenant.Venue, bool) {
	id := r.PathValue("id")
	v, ok := s.tier.Venue(id)
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown venue %q", id)
		return nil, false
	}
	return v, true
}

// queryCtx derives one query's context: request cancellation, the endpoint
// timeout, and the admission budget. The venue registry is bound inside the
// venue's query methods, so the router's evidence is fed automatically.
func (s *TenantServer) queryCtx(r *http.Request, endpoint string) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	cancel := context.CancelFunc(func() {})
	if d, ok := s.timeouts[endpoint]; ok {
		ctx, cancel = context.WithTimeout(ctx, d)
	}
	if b := s.budget; b != (query.Budget{}) {
		ctx = query.WithBudget(ctx, b)
	}
	return ctx, cancel
}

func (s *TenantServer) handleVenues(w http.ResponseWriter, r *http.Request) {
	type venueJSON struct {
		ID      string   `json:"id"`
		Shard   int      `json:"shard"`
		Epoch   uint64   `json:"epoch"`
		Engines []string `json:"engines"`
		Objects int      `json:"objects"`
		Origin  string   `json:"origin"`
	}
	out := make([]venueJSON, 0, len(s.tier.VenueIDs()))
	for _, id := range s.tier.VenueIDs() {
		v, ok := s.tier.Venue(id)
		if !ok {
			continue
		}
		out = append(out, venueJSON{
			ID:      id,
			Shard:   s.tier.ShardOf(id),
			Epoch:   v.Epoch(),
			Engines: v.EngineList(),
			Objects: len(v.Objects),
			Origin:  v.Origin,
		})
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"shards": s.tier.NumShards(),
		"venues": out,
	})
}

func (s *TenantServer) handleVenueInfo(w http.ResponseWriter, r *http.Request) {
	v, ok := s.venue(w, r)
	if !ok {
		return
	}
	stats := v.Space.SpaceStats(v.Gamma)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"venue":      v.ID,
		"shard":      s.tier.ShardOf(v.ID),
		"epoch":      v.Epoch(),
		"floors":     stats.Floors,
		"partitions": stats.Partitions,
		"doors":      stats.Doors,
		"engines":    v.EngineList(),
		"objects":    len(v.Objects),
		"snapshot": map[string]any{
			"origin":        v.Origin,
			"fingerprint":   fmt.Sprintf("%016x", v.Fingerprint),
			"formatVersion": v.FormatVersion,
		},
	})
}

// tenantRangeResponse mirrors rangeResponse plus who served it and which
// generation answered.
type tenantRangeResponse struct {
	Objects      []int32 `json:"objects"`
	VisitedDoors int     `json:"visitedDoors"`
	Engine       string  `json:"engine"`
	Epoch        uint64  `json:"epoch"`
}

func (s *TenantServer) handleVenueRange(w http.ResponseWriter, r *http.Request) {
	v, ok := s.venue(w, r)
	if !ok {
		return
	}
	p, err := pointParam(r, "")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	radius, err := floatParam(r, "r")
	if err != nil || radius < 0 {
		s.fail(w, http.StatusBadRequest, "bad radius")
		return
	}
	ctx, cancel := s.queryCtx(r, "range")
	defer cancel()
	var qst query.Stats
	ids, engine, err := v.Range(ctx, p, radius, &qst, r.URL.Query().Get("engine"))
	if err != nil {
		s.failVenueQuery(w, err, &qst)
		return
	}
	if ids == nil {
		ids = []int32{}
	}
	s.writeJSON(w, http.StatusOK, tenantRangeResponse{
		Objects: ids, VisitedDoors: qst.VisitedDoors, Engine: engine, Epoch: v.Epoch(),
	})
}

type tenantKNNResponse struct {
	Neighbors    []query.Neighbor `json:"neighbors"`
	VisitedDoors int              `json:"visitedDoors"`
	Engine       string           `json:"engine"`
	Epoch        uint64           `json:"epoch"`
}

func (s *TenantServer) handleVenueKNN(w http.ResponseWriter, r *http.Request) {
	v, ok := s.venue(w, r)
	if !ok {
		return
	}
	p, err := pointParam(r, "")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	k := 5
	if raw := r.URL.Query().Get("k"); raw != "" {
		k, err = strconv.Atoi(raw)
		if err != nil || k < 0 {
			s.fail(w, http.StatusBadRequest, "bad k")
			return
		}
	}
	ctx, cancel := s.queryCtx(r, "knn")
	defer cancel()
	var qst query.Stats
	nn, engine, err := v.KNN(ctx, p, k, &qst, r.URL.Query().Get("engine"))
	if err != nil {
		s.failVenueQuery(w, err, &qst)
		return
	}
	if nn == nil {
		nn = []query.Neighbor{}
	}
	s.writeJSON(w, http.StatusOK, tenantKNNResponse{
		Neighbors: nn, VisitedDoors: qst.VisitedDoors, Engine: engine, Epoch: v.Epoch(),
	})
}

type tenantSPDResponse struct {
	Dist         float64      `json:"dist"`
	Doors        []int32      `json:"doors"`
	Geom         [][3]float64 `json:"geometry"`
	VisitedDoors int          `json:"visitedDoors"`
	Engine       string       `json:"engine"`
	Epoch        uint64       `json:"epoch"`
}

func (s *TenantServer) handleVenueSPD(w http.ResponseWriter, r *http.Request) {
	v, ok := s.venue(w, r)
	if !ok {
		return
	}
	p, err := pointParam(r, "")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	q, err := pointParam(r, "2")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.queryCtx(r, "spd")
	defer cancel()
	var qst query.Stats
	path, engine, err := v.SPD(ctx, p, q, &qst, r.URL.Query().Get("engine"))
	if err != nil {
		s.failVenueQuery(w, err, &qst)
		return
	}
	resp := tenantSPDResponse{
		Dist: path.Dist, Doors: make([]int32, 0, len(path.Doors)),
		VisitedDoors: qst.VisitedDoors, Engine: engine, Epoch: v.Epoch(),
	}
	resp.Geom = append(resp.Geom, [3]float64{p.X, p.Y, float64(p.Floor)})
	for _, d := range path.Doors {
		resp.Doors = append(resp.Doors, int32(d))
		dp := v.Space.DoorPoint(d)
		resp.Geom = append(resp.Geom, [3]float64{dp.X, dp.Y, float64(dp.Floor)})
	}
	resp.Geom = append(resp.Geom, [3]float64{q.X, q.Y, float64(q.Floor)})
	s.writeJSON(w, http.StatusOK, resp)
}

// failVenueQuery maps venue query errors; an unknown ?engine= override is
// the caller's 404 rather than a query failure.
func (s *TenantServer) failVenueQuery(w http.ResponseWriter, err error, st *query.Stats) {
	if errors.Is(err, tenant.ErrUnknownEngine) {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}
	s.failQuery(w, err, st)
}

// handleVenueRoute is the routing introspection endpoint: the decision
// table per query class with the evidence (decayed p50/p95 per engine,
// cumulative counts) behind each decision.
func (s *TenantServer) handleVenueRoute(w http.ResponseWriter, r *http.Request) {
	v, ok := s.venue(w, r)
	if !ok {
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"venue":     v.ID,
		"epoch":     v.Epoch(),
		"engines":   v.EngineList(),
		"decisions": v.Router().Decisions(),
	})
}

// pinRequest is the POST /v1/venues/{id}/route body: the deterministic
// override knob. An empty op applies to every query class; an empty engine
// removes the pin.
type pinRequest struct {
	Op     string `json:"op"`
	Engine string `json:"engine"`
}

func (s *TenantServer) handleVenuePin(w http.ResponseWriter, r *http.Request) {
	v, ok := s.venue(w, r)
	if !ok {
		return
	}
	var req pinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Engine == "" {
		v.Router().Unpin(req.Op)
	} else if err := v.Router().Pin(req.Op, req.Engine); err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"venue":     v.ID,
		"decisions": v.Router().Decisions(),
	})
}

func (s *TenantServer) handleVenueSwap(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req swapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Path == "" {
		s.fail(w, http.StatusBadRequest, "swap needs a snapshot path")
		return
	}
	start := time.Now()
	v, err := s.tier.SwapSnapshot(id, req.Path)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "swap: %v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"venue":         v.ID,
		"epoch":         v.Epoch(),
		"origin":        v.Origin,
		"fingerprint":   fmt.Sprintf("%016x", v.Fingerprint),
		"formatVersion": v.FormatVersion,
		"engines":       v.EngineList(),
		"loadMs":        time.Since(start).Milliseconds(),
	})
}

// handleVenueMetrics scrapes one venue's registry — the same text format as
// the single-venue /metrics, scoped to the venue the router's evidence
// lives in.
func (s *TenantServer) handleVenueMetrics(w http.ResponseWriter, r *http.Request) {
	v, ok := s.venue(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = v.Registry().WriteText(w)
}
