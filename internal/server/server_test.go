package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"indoorsq/internal/idmodel"
	"indoorsq/internal/indoor"
	"indoorsq/internal/iptree"
	"indoorsq/internal/query"
	"indoorsq/internal/server"
	"indoorsq/internal/testspaces"
)

func newTestServer(t *testing.T) (*httptest.Server, *testspaces.Strip) {
	t.Helper()
	f := testspaces.NewStrip()
	objs := []query.Object{
		{ID: 1, Loc: indoor.At(2.5, 9, 0), Part: f.R1},
		{ID: 2, Loc: indoor.At(7.5, 9, 0), Part: f.R2},
		{ID: 3, Loc: indoor.At(1, 5, 0), Part: f.Hall},
	}
	engines := map[string]query.Engine{
		"IDModel": idmodel.New(f.Space),
		"VIPTree": iptree.New(f.Space, iptree.Options{VIP: true}),
	}
	for _, e := range engines {
		e.SetObjects(objs)
	}
	srv, err := server.New("strip", f.Space, engines, "IDModel", 4)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, f
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestInfo(t *testing.T) {
	ts, _ := newTestServer(t)
	var info map[string]any
	if code := getJSON(t, ts.URL+"/v1/info", &info); code != 200 {
		t.Fatalf("status %d", code)
	}
	if info["venue"] != "strip" || info["default"] != "IDModel" {
		t.Fatalf("info = %v", info)
	}
	if int(info["partitions"].(float64)) != 8 {
		t.Fatalf("partitions = %v", info["partitions"])
	}
	// The reach section reflects the summaries built by the engines above.
	rsec, ok := info["reach"].(map[string]any)
	if !ok {
		t.Fatalf("info has no reach section: %v", info)
	}
	if rsec["sccs"].(float64) <= 0 || rsec["bytes"].(float64) <= 0 {
		t.Fatalf("reach section not populated: %v", rsec)
	}
}

func TestRangeEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var resp struct {
		Objects      []int32 `json:"objects"`
		VisitedDoors int     `json:"visitedDoors"`
	}
	url := ts.URL + "/v1/range?x=2.5&y=8&r=4"
	if code := getJSON(t, url, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Objects) != 2 || resp.Objects[0] != 1 || resp.Objects[1] != 3 {
		t.Fatalf("objects = %v", resp.Objects)
	}

	// Both engines agree.
	var resp2 struct {
		Objects []int32 `json:"objects"`
	}
	if code := getJSON(t, url+"&engine=VIPTree", &resp2); code != 200 {
		t.Fatal("VIPTree request failed")
	}
	if fmt.Sprint(resp2.Objects) != fmt.Sprint(resp.Objects) {
		t.Fatalf("engines disagree: %v vs %v", resp2.Objects, resp.Objects)
	}
}

func TestKNNEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var resp struct {
		Neighbors []struct {
			ID   int32   `json:"ID"`
			Dist float64 `json:"Dist"`
		} `json:"neighbors"`
	}
	if code := getJSON(t, ts.URL+"/v1/knn?x=2.5&y=8&k=2", &resp); code != 200 {
		t.Fatal("knn failed")
	}
	if len(resp.Neighbors) != 2 || resp.Neighbors[0].ID != 1 {
		t.Fatalf("neighbors = %v", resp.Neighbors)
	}
}

func TestRouteEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var resp struct {
		Dist  float64      `json:"dist"`
		Doors []int32      `json:"doors"`
		Geom  [][3]float64 `json:"geometry"`
	}
	url := ts.URL + "/v1/route?x=2.5&y=8&x2=7.5&y2=9"
	if code := getJSON(t, url, &resp); code != 200 {
		t.Fatal("route failed")
	}
	if resp.Dist != 10 || len(resp.Doors) != 2 {
		t.Fatalf("route = %+v", resp)
	}
	if len(resp.Geom) != 4 { // p, two doors, q
		t.Fatalf("geometry = %v", resp.Geom)
	}
}

func TestPartitionsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var parts []struct {
		ID   int32  `json:"id"`
		Kind string `json:"kind"`
	}
	if code := getJSON(t, ts.URL+"/v1/partitions?floor=0", &parts); code != 200 {
		t.Fatal("partitions failed")
	}
	if len(parts) != 8 {
		t.Fatalf("got %d partitions", len(parts))
	}
	halls := 0
	for _, p := range parts {
		if p.Kind == "hallway" {
			halls++
		}
	}
	if halls != 1 {
		t.Fatalf("halls = %d", halls)
	}
}

func TestErrorStatuses(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		url  string
		want int
	}{
		{"/v1/range?x=2.5&y=8&r=4&engine=Nope", 404},
		{"/v1/range?y=8&r=4", 400},
		{"/v1/range?x=2.5&y=8", 400},
		{"/v1/range?x=-99&y=-99&r=4", 422}, // outdoors
		{"/v1/knn?x=2.5&y=8&k=-1", 400},
		{"/v1/route?x=2.5&y=8", 400},
		{"/v1/route?x=2.5&y=8&x2=-99&y2=-99", 422},
		{"/v1/partitions?floor=zzz", 400},
	}
	for _, c := range cases {
		var e map[string]any
		if code := getJSON(t, ts.URL+c.url, &e); code != c.want {
			t.Errorf("%s: status %d, want %d (%v)", c.url, code, c.want, e)
		}
	}
}

func TestServerValidation(t *testing.T) {
	f := testspaces.NewStrip()
	if _, err := server.New("x", f.Space, nil, "IDModel", 4); err == nil {
		t.Fatal("no engines must fail")
	}
	engines := map[string]query.Engine{"A": idmodel.New(f.Space)}
	if _, err := server.New("x", f.Space, engines, "B", 4); err == nil {
		t.Fatal("bad default must fail")
	}
}
