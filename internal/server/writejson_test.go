package server

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestWriteJSONUnencodablePayload is the regression test for the buffered
// response writer: a payload that fails mid-encode (json cannot represent
// +Inf) must produce a clean 500 with a JSON error body — not a truncated
// 200 whose WriteHeader already went out with the first encoded bytes.
func TestWriteJSONUnencodablePayload(t *testing.T) {
	s := &Server{}
	rec := httptest.NewRecorder()
	s.writeJSON(rec, http.StatusOK, map[string]any{
		"pad": make([]int, 4096), // force the old streaming path past its first flush
		"bad": math.Inf(1),
	})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (encode failure must not commit the 200)", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("error body is not valid JSON: %v (%q)", err, rec.Body.String())
	}
	if body["error"] == "" || body["error"] == nil {
		t.Fatalf("error body missing error field: %v", body)
	}
	if got := s.EncodeErrors(); got != 1 {
		t.Fatalf("EncodeErrors = %d, want 1", got)
	}
}

// TestWriteJSONSuccessAtomic pins the happy path: the requested status and
// the complete body arrive together.
func TestWriteJSONSuccessAtomic(t *testing.T) {
	s := &Server{}
	rec := httptest.NewRecorder()
	s.writeJSON(rec, http.StatusTeapot, map[string]any{"ok": true})
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status = %d, want 418", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["ok"] != true {
		t.Fatalf("body = %v", body)
	}
	if got := s.EncodeErrors(); got != 0 {
		t.Fatalf("EncodeErrors = %d, want 0", got)
	}
}
