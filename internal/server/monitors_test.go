package server_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"indoorsq/internal/idmodel"
	"indoorsq/internal/moving"
	"indoorsq/internal/query"
	"indoorsq/internal/server"
	"indoorsq/internal/testspaces"
	"indoorsq/internal/workload"
)

func postJSON(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode POST %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func doJSON(t *testing.T, method, url string) int {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestMonitorEndpoints walks the single-venue continuous-query surface:
// registration (range and kNN), batched updates with events in the
// response, result reads, listing, unregistration, and the error mapping
// the sentinel errors promise (409 duplicate, 422 outdoors).
func TestMonitorEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)

	// Range monitor in R1, kNN monitor next to it.
	var created struct {
		ID     int32 `json:"id"`
		Events []struct {
			Object int32 `json:"object"`
			Enter  bool  `json:"enter"`
		} `json:"events"`
	}
	if code := postJSON(t, ts.URL+"/v1/monitors",
		`{"id":1,"kind":"range","x":2.5,"y":8,"floor":0,"r":5,"t":0}`, &created); code != http.StatusCreated {
		t.Fatalf("register range: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/monitors",
		`{"id":2,"kind":"knn","x":2.5,"y":8,"floor":0,"k":2,"t":0}`, nil); code != http.StatusCreated {
		t.Fatalf("register knn: status %d", code)
	}

	// Error mapping: duplicate id is a conflict, outdoor point is
	// unprocessable, unknown kind and bad k are plain bad requests.
	cases := []struct {
		name string
		body string
		want int
	}{
		{"duplicate", `{"id":1,"x":2.5,"y":8,"r":5}`, http.StatusConflict},
		{"outdoors", `{"id":9,"x":-1000,"y":-1000,"r":5}`, http.StatusUnprocessableEntity},
		{"bad kind", `{"id":9,"kind":"nearest","x":2.5,"y":8}`, http.StatusBadRequest},
		{"bad k", `{"id":9,"kind":"knn","x":2.5,"y":8,"k":0}`, http.StatusBadRequest},
		{"bad body", `{`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code := postJSON(t, ts.URL+"/v1/monitors", tc.body, nil); code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		}
	}

	// A batch: object 7 into R1 (covered by both monitors), object 8 into
	// R2. Part omitted — the server resolves the host partition.
	var applied struct {
		Applied int `json:"applied"`
		Events  []struct {
			Query  int32 `json:"query"`
			Object int32 `json:"object"`
			Enter  bool  `json:"enter"`
		} `json:"events"`
	}
	if code := postJSON(t, ts.URL+"/v1/updates",
		`{"updates":[{"id":7,"x":2.5,"y":9,"t":1},{"id":8,"x":7.5,"y":9,"t":2}]}`, &applied); code != http.StatusOK {
		t.Fatalf("updates: status %d", code)
	}
	if applied.Applied != 2 {
		t.Fatalf("applied %d updates, want 2", applied.Applied)
	}
	gotEnter := false
	for _, e := range applied.Events {
		if e.Query == 1 && e.Object == 7 && e.Enter {
			gotEnter = true
		}
	}
	if !gotEnter {
		t.Fatalf("no enter event for (query 1, object 7) in %v", applied.Events)
	}

	// An outdoor update without an explicit partition is unprocessable.
	if code := postJSON(t, ts.URL+"/v1/updates",
		`{"updates":[{"id":9,"x":-500,"y":-500,"t":3}]}`, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("outdoor update: status %d, want 422", code)
	}

	// Result read: range monitor holds object 7; the kNN monitor reports
	// neighbors with distances.
	var res struct {
		Objects   []int32          `json:"objects"`
		Neighbors []query.Neighbor `json:"neighbors"`
	}
	if code := getJSON(t, ts.URL+"/v1/monitors/1/result", &res); code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}
	if len(res.Objects) != 1 || res.Objects[0] != 7 {
		t.Fatalf("monitor 1 result %v, want [7]", res.Objects)
	}
	res.Objects, res.Neighbors = nil, nil
	if code := getJSON(t, ts.URL+"/v1/monitors/2/result", &res); code != http.StatusOK {
		t.Fatalf("knn result: status %d", code)
	}
	if len(res.Neighbors) == 0 || res.Neighbors[0].ID != 7 {
		t.Fatalf("monitor 2 neighbors %v, want object 7 first", res.Neighbors)
	}

	// Listing reports both monitors with kind and cardinality.
	var list struct {
		Monitors []moving.MonitorInfo `json:"monitors"`
		Objects  int                  `json:"objects"`
	}
	if code := getJSON(t, ts.URL+"/v1/monitors", &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list.Monitors) != 2 || list.Objects != 2 {
		t.Fatalf("list %+v objects %d, want 2 monitors / 2 objects", list.Monitors, list.Objects)
	}
	if list.Monitors[0].Kind != "range" || list.Monitors[1].Kind != "knn" {
		t.Fatalf("monitor kinds %q/%q", list.Monitors[0].Kind, list.Monitors[1].Kind)
	}

	// Unknown monitor: result and delete are 404; delete is not idempotent.
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/monitors/99/result"); code != http.StatusNotFound {
		t.Fatalf("unknown result: status %d", code)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/monitors/1"); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/monitors/1"); code != http.StatusNotFound {
		t.Fatalf("second delete: status %d", code)
	}
	// The freed id is immediately reusable.
	if code := postJSON(t, ts.URL+"/v1/monitors",
		`{"id":1,"x":2.5,"y":8,"r":5,"t":4}`, nil); code != http.StatusCreated {
		t.Fatalf("re-register freed id: status %d", code)
	}
}

// TestMonitorStreamNDJSON subscribes to a monitor's delta stream over HTTP
// and checks events arrive as ndjson lines as updates are applied. The
// subscription is established before the response header goes out, so once
// the client has the header no event can be lost.
func TestMonitorStreamNDJSON(t *testing.T) {
	ts, _ := newTestServer(t)
	if code := postJSON(t, ts.URL+"/v1/monitors",
		`{"id":5,"x":2.5,"y":8,"r":5,"t":0}`, nil); code != http.StatusCreated {
		t.Fatalf("register: status %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/monitors/5/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}

	if code := postJSON(t, ts.URL+"/v1/updates",
		`{"updates":[{"id":7,"x":2.5,"y":9,"t":1}]}`, nil); code != http.StatusOK {
		t.Fatalf("update: status %d", code)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no stream line: %v", sc.Err())
	}
	var ev struct {
		Query  int32   `json:"query"`
		Object int32   `json:"object"`
		Enter  bool    `json:"enter"`
		T      float64 `json:"t"`
	}
	if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
		t.Fatalf("bad stream line %q: %v", sc.Text(), err)
	}
	if ev.Query != 5 || ev.Object != 7 || !ev.Enter || ev.T != 1 {
		t.Fatalf("stream event %+v, want enter of object 7 at t=1", ev)
	}

	// Unregistering the monitor ends the stream.
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/monitors/5"); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if sc.Scan() {
		t.Fatalf("unexpected line after unregister: %q", sc.Text())
	}

	// Streaming an unknown monitor is a 404.
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/monitors/99/stream"); code != http.StatusNotFound {
		t.Fatalf("unknown stream: status %d", code)
	}
}

// TestMonitorSwapResets pins the generation contract: a snapshot swap
// retires all standing monitors (their door-distance fields were computed
// against the old topology) and the ids become free on the new generation.
func TestMonitorSwapResets(t *testing.T) {
	f := testspaces.NewStrip()
	engines := map[string]query.Engine{"IDModel": idmodel.New(f.Space)}
	srv, err := server.New("strip", f.Space, engines, "IDModel", 4)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	if code := postJSON(t, ts.URL+"/v1/monitors",
		`{"id":1,"x":2.5,"y":8,"r":5,"t":0}`, nil); code != http.StatusCreated {
		t.Fatalf("register: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/updates",
		`{"updates":[{"id":7,"x":2.5,"y":9,"t":1}]}`, nil); code != http.StatusOK {
		t.Fatalf("update: status %d", code)
	}

	f2 := testspaces.NewStrip()
	st := &server.ServingState{
		Name: "strip-v2", Space: f2.Space, Default: "IDModel", Gamma: 4,
		Engines: map[string]query.Engine{"IDModel": idmodel.New(f2.Space)},
	}
	if err := srv.Swap(st); err != nil {
		t.Fatal(err)
	}

	var list struct {
		Monitors []moving.MonitorInfo `json:"monitors"`
		Objects  int                  `json:"objects"`
	}
	if code := getJSON(t, ts.URL+"/v1/monitors", &list); code != http.StatusOK {
		t.Fatalf("list after swap: status %d", code)
	}
	if len(list.Monitors) != 0 || list.Objects != 0 {
		t.Fatalf("after swap: %d monitors %d objects, want 0/0", len(list.Monitors), list.Objects)
	}
	// The old generation's id registers cleanly — no stale 409.
	if code := postJSON(t, ts.URL+"/v1/monitors",
		`{"id":1,"x":2.5,"y":8,"r":5,"t":2}`, nil); code != http.StatusCreated {
		t.Fatalf("register after swap: status %d", code)
	}
}

// TestTenantMonitorEndpoints exercises the per-venue surface: streams are
// venue-scoped (the same monitor id registers independently on two venues),
// updates only touch their venue's monitors, and the sentinel error mapping
// holds behind the venue prefix.
func TestTenantMonitorEndpoints(t *testing.T) {
	tier := newTenantTier(t)
	s := server.NewTenantServer(tier)
	h := s.Handler()

	post := func(url, body string, v any) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, url, strings.NewReader(body)))
		if v != nil {
			if err := json.NewDecoder(rec.Body).Decode(v); err != nil {
				t.Fatalf("POST %s: decode: %v", url, err)
			}
		}
		return rec.Code
	}

	// One valid indoor point per venue.
	pts := map[string]string{}
	for _, id := range []string{"north", "south"} {
		v, ok := tier.Venue(id)
		if !ok {
			t.Fatalf("venue %s missing", id)
		}
		p, _ := workload.New(v.Space, 5).PointIn()
		pts[id] = fmt.Sprintf(`"x":%g,"y":%g,"floor":%d`, p.X, p.Y, p.Floor)
	}

	// The same monitor id on both venues: independent streams.
	for _, id := range []string{"north", "south"} {
		if code := post("/v1/venues/"+id+"/monitors",
			`{"id":1,`+pts[id]+`,"r":8,"t":0}`, nil); code != http.StatusCreated {
			t.Fatalf("register on %s: status %d", id, code)
		}
	}
	if code := post("/v1/venues/north/monitors",
		`{"id":1,`+pts["north"]+`,"r":8,"t":0}`, nil); code != http.StatusConflict {
		t.Fatalf("duplicate on north: status %d", code)
	}
	if code := post("/v1/venues/north/monitors",
		`{"id":2,"x":-900,"y":-900,"r":8}`, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("outdoors on north: status %d", code)
	}
	if code := post("/v1/venues/ghost/monitors",
		`{"id":1,"x":0,"y":0,"r":8}`, nil); code != http.StatusNotFound {
		t.Fatalf("unknown venue: status %d", code)
	}

	// An update on north reaches only north's monitor.
	var applied struct {
		Venue  string `json:"venue"`
		Events []struct {
			Query  int32 `json:"query"`
			Object int32 `json:"object"`
			Enter  bool  `json:"enter"`
		} `json:"events"`
	}
	if code := post("/v1/venues/north/updates",
		`{"updates":[{"id":3,`+pts["north"]+`,"t":1}]}`, &applied); code != http.StatusOK {
		t.Fatalf("north update: status %d", code)
	}
	if applied.Venue != "north" || len(applied.Events) != 1 || !applied.Events[0].Enter {
		t.Fatalf("north update response %+v, want one enter event", applied)
	}
	var res struct {
		Objects []int32 `json:"objects"`
	}
	tenantGetJSON(t, h, "/v1/venues/north/monitors/1/result", http.StatusOK, &res)
	if len(res.Objects) != 1 || res.Objects[0] != 3 {
		t.Fatalf("north monitor result %v, want [3]", res.Objects)
	}
	res.Objects = nil
	tenantGetJSON(t, h, "/v1/venues/south/monitors/1/result", http.StatusOK, &res)
	if len(res.Objects) != 0 {
		t.Fatalf("south monitor result %v, want empty", res.Objects)
	}

	var list struct {
		Monitors []moving.MonitorInfo `json:"monitors"`
	}
	tenantGetJSON(t, h, "/v1/venues/north/monitors", http.StatusOK, &list)
	if len(list.Monitors) != 1 || list.Monitors[0].Size != 1 {
		t.Fatalf("north listing %+v, want one monitor of size 1", list.Monitors)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/venues/south/monitors/1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("delete south monitor: status %d", rec.Code)
	}
	tenantGetJSON(t, h, "/v1/venues/south/monitors/1/result", http.StatusNotFound, nil)
	// North is untouched by south's delete.
	tenantGetJSON(t, h, "/v1/venues/north/monitors/1/result", http.StatusOK, nil)
}
