package server_test

import (
	"net/http/httptest"
	"testing"
	"time"

	"indoorsq/internal/idmodel"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/server"
	"indoorsq/internal/testspaces"
)

// newCtxServer builds a strip-venue server and returns it unstarted, so
// tests can set timeouts and budgets before mounting the handler.
func newCtxServer(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	f := testspaces.NewStrip()
	eng := idmodel.New(f.Space)
	eng.SetObjects([]query.Object{
		{ID: 1, Loc: indoor.At(2.5, 9, 0), Part: f.R1},
		{ID: 2, Loc: indoor.At(7.5, 9, 0), Part: f.R2},
		{ID: 3, Loc: indoor.At(1, 5, 0), Part: f.Hall},
	})
	srv, err := server.New("strip", f.Space, map[string]query.Engine{"IDModel": eng}, "IDModel", 4)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestEndpointTimeout504 asserts an endpoint whose deadline already expired
// answers 504 with the partial-progress payload.
func TestEndpointTimeout504(t *testing.T) {
	srv, ts := newCtxServer(t)
	srv.SetTimeout("route", time.Nanosecond)

	var e struct {
		Error        string `json:"error"`
		VisitedDoors *int   `json:"visitedDoors"`
	}
	if code := getJSON(t, ts.URL+"/v1/route?x=2.5&y=8&x2=7.5&y2=9", &e); code != 504 {
		t.Fatalf("status %d, want 504 (%+v)", code, e)
	}
	if e.Error == "" || e.VisitedDoors == nil {
		t.Fatalf("payload missing error/progress: %+v", e)
	}

	// Other endpoints are unaffected by the route-only timeout.
	var resp struct {
		Objects []int32 `json:"objects"`
	}
	if code := getJSON(t, ts.URL+"/v1/range?x=2.5&y=8&r=4", &resp); code != 200 {
		t.Fatalf("range status %d, want 200", code)
	}

	// Removing the timeout restores the endpoint.
	srv.SetTimeout("route", 0)
	var ok map[string]any
	if code := getJSON(t, ts.URL+"/v1/route?x=2.5&y=8&x2=7.5&y2=9", &ok); code != 200 {
		t.Fatalf("route status %d after timeout removal, want 200", code)
	}
}

// TestGenerousTimeoutAnswers asserts a sane deadline leaves answers intact.
func TestGenerousTimeoutAnswers(t *testing.T) {
	srv, ts := newCtxServer(t)
	for _, ep := range []string{"range", "knn", "route"} {
		srv.SetTimeout(ep, time.Minute)
	}
	var rr struct {
		Objects []int32 `json:"objects"`
	}
	if code := getJSON(t, ts.URL+"/v1/range?x=2.5&y=8&r=4", &rr); code != 200 || len(rr.Objects) != 2 {
		t.Fatalf("range = %d / %v", code, rr.Objects)
	}
	var kr struct {
		Neighbors []query.Neighbor `json:"neighbors"`
	}
	if code := getJSON(t, ts.URL+"/v1/knn?x=2.5&y=8&k=2", &kr); code != 200 || len(kr.Neighbors) != 2 {
		t.Fatalf("knn = %d / %v", code, kr.Neighbors)
	}
	var pr struct {
		Dist float64 `json:"dist"`
	}
	if code := getJSON(t, ts.URL+"/v1/route?x=2.5&y=8&x2=7.5&y2=9", &pr); code != 200 || pr.Dist != 10 {
		t.Fatalf("route = %d / %+v", code, pr)
	}
}

// TestBudget422 asserts an exhausted admission budget answers 422 and
// reports how far the query got.
func TestBudget422(t *testing.T) {
	srv, ts := newCtxServer(t)
	srv.SetBudget(query.Budget{MaxVisitedDoors: 1})

	var e struct {
		Error        string `json:"error"`
		VisitedDoors *int   `json:"visitedDoors"`
		WorkBytes    *int64 `json:"workBytes"`
	}
	// R1 -> R2 crosses two doors, so a one-door budget must trip.
	if code := getJSON(t, ts.URL+"/v1/route?x=2.5&y=8&x2=7.5&y2=9", &e); code != 422 {
		t.Fatalf("status %d, want 422 (%+v)", code, e)
	}
	if e.VisitedDoors == nil || *e.VisitedDoors < 1 {
		t.Fatalf("partial progress missing: %+v", e)
	}

	// Clearing the budget restores the endpoint.
	srv.SetBudget(query.Budget{})
	var pr struct {
		Dist float64 `json:"dist"`
	}
	if code := getJSON(t, ts.URL+"/v1/route?x=2.5&y=8&x2=7.5&y2=9", &pr); code != 200 || pr.Dist != 10 {
		t.Fatalf("route after budget removal = %d / %+v, want 200 / 10", code, pr)
	}
}

// TestInfoReportsEncodeErrors asserts the encode-failure counter is exposed
// (and zero on a healthy server).
func TestInfoReportsEncodeErrors(t *testing.T) {
	srv, ts := newCtxServer(t)
	var info map[string]any
	if code := getJSON(t, ts.URL+"/v1/info", &info); code != 200 {
		t.Fatalf("info status %d", code)
	}
	if v, ok := info["encodeErrors"]; !ok || v.(float64) != 0 {
		t.Fatalf("encodeErrors = %v", info["encodeErrors"])
	}
	if srv.EncodeErrors() != 0 {
		t.Fatalf("EncodeErrors = %d", srv.EncodeErrors())
	}
}
