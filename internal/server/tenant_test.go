package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"indoorsq/internal/server"
	"indoorsq/internal/snapshot/bundle"
	"indoorsq/internal/spacegen"
	"indoorsq/internal/tenant"
	"indoorsq/internal/workload"
)

var tenantTestEngines = []string{"IDModel", "IDIndex", "CIndex"}

func newTenantTier(t *testing.T) *tenant.Tier {
	t.Helper()
	mk := func(id string, seed int64) tenant.VenueSpec {
		return tenant.VenueSpec{
			ID: id, GenSeed: seed,
			GenParams: spacegen.Params{Floors: 1, Rows: 2, Cols: 3, ExtraDoors: 2},
			Engines:   tenantTestEngines,
			Objects:   16,
		}
	}
	tier, err := tenant.New([]tenant.VenueSpec{mk("north", 21), mk("south", 22)}, tenant.Options{
		Shards: 2, Seed: 7,
		Router: tenant.RouterConfig{ExplorePerEngine: 1, ReevalEvery: 8, SampleEvery: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tier
}

func tenantGetJSON(t *testing.T, h http.Handler, url string, wantCode int, v any) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	if rec.Code != wantCode {
		t.Fatalf("GET %s -> %d (want %d): %s", url, rec.Code, wantCode, rec.Body.String())
	}
	if v != nil {
		if err := json.NewDecoder(rec.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
}

// TestTenantEndpoints walks the multi-venue surface end to end: listing,
// per-venue info, routed queries reporting the engine that served them, the
// per-query override, the routing introspection table, the pin knob, and
// per-venue metrics.
func TestTenantEndpoints(t *testing.T) {
	tier := newTenantTier(t)
	srv := server.NewTenantServer(tier)
	h := srv.Handler()

	var listing struct {
		Shards int `json:"shards"`
		Venues []struct {
			ID      string   `json:"id"`
			Shard   int      `json:"shard"`
			Epoch   uint64   `json:"epoch"`
			Engines []string `json:"engines"`
			Objects int      `json:"objects"`
		} `json:"venues"`
	}
	tenantGetJSON(t, h, "/v1/venues", http.StatusOK, &listing)
	if listing.Shards != 2 || len(listing.Venues) != 2 {
		t.Fatalf("listing: %+v", listing)
	}
	for _, v := range listing.Venues {
		if v.Epoch != 1 || v.Objects != 16 || len(v.Engines) != 3 {
			t.Fatalf("venue listing entry: %+v", v)
		}
	}

	tenantGetJSON(t, h, "/v1/venues/nowhere/info", http.StatusNotFound, nil)

	v, _ := tier.Venue("north")
	pts := workload.New(v.Space, 5).Points(2)
	p, q := pts[0], pts[1]

	var rr struct {
		Objects []int32 `json:"objects"`
		Engine  string  `json:"engine"`
		Epoch   uint64  `json:"epoch"`
	}
	rangeURL := fmt.Sprintf("/v1/venues/north/range?x=%g&y=%g&floor=%d&r=8", p.X, p.Y, p.Floor)
	tenantGetJSON(t, h, rangeURL, http.StatusOK, &rr)
	if rr.Engine == "" || rr.Epoch != 1 {
		t.Fatalf("range response lacks routing info: %+v", rr)
	}
	// The per-query override pins this one request; an unknown override 404s.
	tenantGetJSON(t, h, rangeURL+"&engine=CIndex", http.StatusOK, &rr)
	if rr.Engine != "CIndex" {
		t.Fatalf("override ignored: served by %q", rr.Engine)
	}
	tenantGetJSON(t, h, rangeURL+"&engine=VIPTree", http.StatusNotFound, nil)

	var kr struct {
		Engine string `json:"engine"`
	}
	tenantGetJSON(t, h, fmt.Sprintf("/v1/venues/north/knn?x=%g&y=%g&floor=%d&k=3", p.X, p.Y, p.Floor),
		http.StatusOK, &kr)
	if kr.Engine == "" {
		t.Fatalf("knn response lacks engine: %+v", kr)
	}
	var sr struct {
		Dist   float64 `json:"dist"`
		Engine string  `json:"engine"`
	}
	tenantGetJSON(t, h, fmt.Sprintf("/v1/venues/south/spd?x=%g&y=%g&floor=%d&x2=%g&y2=%g&floor2=%d",
		p.X, p.Y, p.Floor, q.X, q.Y, q.Floor), http.StatusOK, &sr)
	if sr.Engine == "" {
		t.Fatalf("spd response lacks engine: %+v", sr)
	}

	// Routing introspection: a decision per query class, evidence per engine.
	var route struct {
		Venue     string `json:"venue"`
		Decisions []struct {
			Op       string `json:"op"`
			Mode     string `json:"mode"`
			Evidence []struct {
				Engine  string `json:"engine"`
				Queries int64  `json:"queries"`
			} `json:"evidence"`
		} `json:"decisions"`
	}
	tenantGetJSON(t, h, "/v1/venues/north/route", http.StatusOK, &route)
	if route.Venue != "north" || len(route.Decisions) != 3 {
		t.Fatalf("route table: %+v", route)
	}
	for _, d := range route.Decisions {
		if len(d.Evidence) != 3 {
			t.Fatalf("decision %s evidence: %+v", d.Op, d.Evidence)
		}
	}

	// The pin knob: pin every class, observe pinned serving, then unpin.
	post := func(url, body string, wantCode int) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, url, strings.NewReader(body)))
		if rec.Code != wantCode {
			t.Fatalf("POST %s -> %d (want %d): %s", url, rec.Code, wantCode, rec.Body.String())
		}
		return rec
	}
	post("/v1/venues/north/route", `{"op":"","engine":"IDModel"}`, http.StatusOK)
	tenantGetJSON(t, h, rangeURL, http.StatusOK, &rr)
	if rr.Engine != "IDModel" {
		t.Fatalf("pinned venue served by %q", rr.Engine)
	}
	post("/v1/venues/north/route", `{"op":"range","engine":"NoSuch"}`, http.StatusUnprocessableEntity)
	post("/v1/venues/north/route", `{"op":"","engine":""}`, http.StatusOK) // unpin all

	// Per-venue metrics carry the engine × op series the router reads.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/venues/north/metrics", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `op="range"`) {
		t.Fatalf("metrics: %d: %.200s", rec.Code, rec.Body.String())
	}
	if srv.EncodeErrors() != 0 {
		t.Fatalf("%d encode errors", srv.EncodeErrors())
	}
}

// TestTenantHotSwapTwoVenuesUnderLoad is the PR 8 hammer test lifted to two
// venues: workers hammer both venues' routed query endpoints while the main
// goroutine swaps both venues' snapshots concurrently. Zero failed and zero
// mixed-generation responses allowed: every query answers 200/422 with an
// engine from the serving set, per-venue infos always report that venue's
// own door count (a cross-venue mix would mismatch), and per-venue epochs
// never go backwards.
func TestTenantHotSwapTwoVenuesUnderLoad(t *testing.T) {
	tier := newTenantTier(t)
	srv := server.NewTenantServer(tier)
	h := srv.Handler()

	dir := t.TempDir()
	venueIDs := tier.VenueIDs()
	doors := map[string]int{}
	paths := map[string]string{}
	points := map[string][]struct {
		x, y  float64
		floor int16
	}{}
	engineSet := map[string]bool{}
	for _, n := range tenantTestEngines {
		engineSet[n] = true
	}
	for _, id := range venueIDs {
		v, _ := tier.Venue(id)
		doors[id] = v.Space.NumDoors()
		b, err := bundle.Build(id, v.Space, bundle.Options{Engines: tenantTestEngines, Gamma: v.Gamma})
		if err != nil {
			t.Fatal(err)
		}
		paths[id] = filepath.Join(dir, id+".isq")
		if err := b.WriteFile(paths[id], true); err != nil {
			t.Fatal(err)
		}
		for _, p := range workload.New(v.Space, 3).Points(4) {
			points[id] = append(points[id], struct {
				x, y  float64
				floor int16
			}{p.X, p.Y, p.Floor})
		}
	}
	if doors[venueIDs[0]] == doors[venueIDs[1]] {
		t.Fatalf("venues share a door count (%d); the mix detector needs them distinct", doors[venueIDs[0]])
	}

	const swapsPerVenue = 40
	done := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	report := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lastEpoch := map[string]uint64{}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				id := venueIDs[(g+i)%len(venueIDs)]
				pts := points[id]
				p := pts[i%len(pts)]
				q := pts[(i+1)%len(pts)]
				var url string
				switch i % 4 {
				case 0:
					url = fmt.Sprintf("/v1/venues/%s/range?x=%g&y=%g&floor=%d&r=7", id, p.x, p.y, p.floor)
				case 1:
					url = fmt.Sprintf("/v1/venues/%s/knn?x=%g&y=%g&floor=%d&k=2", id, p.x, p.y, p.floor)
				case 2:
					url = fmt.Sprintf("/v1/venues/%s/spd?x=%g&y=%g&floor=%d&x2=%g&y2=%g&floor2=%d",
						id, p.x, p.y, p.floor, q.x, q.y, q.floor)
				case 3:
					url = fmt.Sprintf("/v1/venues/%s/info", id)
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
				if rec.Code != http.StatusOK && rec.Code != http.StatusUnprocessableEntity {
					report("worker %d: %s -> %d: %s", g, url, rec.Code, rec.Body.String())
					return
				}
				if rec.Code != http.StatusOK {
					continue
				}
				if i%4 == 3 {
					var info struct {
						Venue string `json:"venue"`
						Doors int    `json:"doors"`
						Epoch uint64 `json:"epoch"`
					}
					if err := json.NewDecoder(rec.Body).Decode(&info); err != nil {
						report("worker %d: info decode: %v", g, err)
						return
					}
					if info.Venue != id || info.Doors != doors[id] {
						report("worker %d: mixed state: asked %s (%d doors), got %s (%d doors)",
							g, id, doors[id], info.Venue, info.Doors)
						return
					}
					if info.Epoch < lastEpoch[id] {
						report("worker %d: venue %s epoch went backwards %d -> %d", g, id, lastEpoch[id], info.Epoch)
						return
					}
					lastEpoch[id] = info.Epoch
				} else {
					var resp struct {
						Engine string `json:"engine"`
					}
					if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
						report("worker %d: %s decode: %v", g, url, err)
						return
					}
					if !engineSet[resp.Engine] {
						report("worker %d: %s served by unknown engine %q", g, url, resp.Engine)
						return
					}
				}
			}
		}(g)
	}

	for i := 0; i < swapsPerVenue; i++ {
		for _, id := range venueIDs {
			body := strings.NewReader(fmt.Sprintf(`{"path":%q}`, paths[id]))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/venues/"+id+"/swap", body))
			if rec.Code != http.StatusOK {
				t.Fatalf("swap %d of %s: %d: %s", i, id, rec.Code, rec.Body.String())
			}
			var resp struct {
				Epoch  uint64 `json:"epoch"`
				Origin string `json:"origin"`
			}
			if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
				t.Fatalf("swap %d of %s: decode: %v", i, id, err)
			}
			if resp.Epoch != uint64(i)+2 || resp.Origin != "snapshot" {
				t.Fatalf("swap %d of %s: epoch %d origin %q", i, id, resp.Epoch, resp.Origin)
			}
		}
	}
	close(done)
	wg.Wait()

	if len(failures) > 0 {
		t.Fatalf("%d failures during two-venue swaps, first: %s", len(failures), failures[0])
	}
	for _, id := range venueIDs {
		v, _ := tier.Venue(id)
		if v.Epoch() != swapsPerVenue+1 {
			t.Fatalf("venue %s final epoch %d, want %d", id, v.Epoch(), swapsPerVenue+1)
		}
		if len(v.Objects) != 16 {
			t.Fatalf("venue %s lost its objects across swaps: %d", id, len(v.Objects))
		}
	}
	if srv.EncodeErrors() != 0 {
		t.Fatalf("%d encode errors", srv.EncodeErrors())
	}
}
