// Package server exposes indoor spatial queries over HTTP/JSON — the thin
// LBS backend the paper's introduction motivates (POI search and routing
// services built on top of the four query types). One server wraps a single
// venue with any subset of the five engines; engines answer concurrent
// requests safely since query processing is read-only.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
)

// Server serves indoor spatial queries for one venue.
type Server struct {
	sp      *indoor.Space
	name    string
	engines map[string]query.Engine
	def     string
	gamma   int
}

// New wires a server around pre-built engines keyed by name; def is the
// engine used when a request omits ?engine=.
func New(name string, sp *indoor.Space, engines map[string]query.Engine, def string, gamma int) (*Server, error) {
	if len(engines) == 0 {
		return nil, errors.New("server: no engines")
	}
	if _, ok := engines[def]; !ok {
		return nil, fmt.Errorf("server: default engine %q not provided", def)
	}
	return &Server{sp: sp, name: name, engines: engines, def: def, gamma: gamma}, nil
}

// Handler returns the HTTP handler with all endpoints mounted.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/info", s.handleInfo)
	mux.HandleFunc("GET /v1/range", s.handleRange)
	mux.HandleFunc("GET /v1/knn", s.handleKNN)
	mux.HandleFunc("GET /v1/route", s.handleRoute)
	mux.HandleFunc("GET /v1/partitions", s.handlePartitions)
	return mux
}

// httpError is the uniform error payload.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func fail(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, httpError{Error: fmt.Sprintf(format, args...)})
}

// engineFor resolves the ?engine= parameter.
func (s *Server) engineFor(w http.ResponseWriter, r *http.Request) (query.Engine, bool) {
	name := r.URL.Query().Get("engine")
	if name == "" {
		name = s.def
	}
	eng, ok := s.engines[name]
	if !ok {
		fail(w, http.StatusNotFound, "unknown engine %q", name)
		return nil, false
	}
	return eng, true
}

// floatParam parses a required float query parameter.
func floatParam(r *http.Request, key string) (float64, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", key)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("bad parameter %q: %v", key, err)
	}
	return v, nil
}

// pointParam parses x/y/floor (floor optional, default 0) with a suffix
// ("" or "2").
func pointParam(r *http.Request, suffix string) (indoor.Point, error) {
	x, err := floatParam(r, "x"+suffix)
	if err != nil {
		return indoor.Point{}, err
	}
	y, err := floatParam(r, "y"+suffix)
	if err != nil {
		return indoor.Point{}, err
	}
	floor := 0
	if raw := r.URL.Query().Get("floor" + suffix); raw != "" {
		floor, err = strconv.Atoi(raw)
		if err != nil {
			return indoor.Point{}, fmt.Errorf("bad parameter floor%s: %v", suffix, err)
		}
	}
	return indoor.At(x, y, int16(floor)), nil
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	st := s.sp.SpaceStats(s.gamma)
	engines := make([]string, 0, len(s.engines))
	for name := range s.engines {
		engines = append(engines, name)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"venue":      s.name,
		"floors":     st.Floors,
		"partitions": st.Partitions,
		"doors":      st.Doors,
		"engines":    engines,
		"default":    s.def,
	})
}

type rangeResponse struct {
	Objects      []int32 `json:"objects"`
	VisitedDoors int     `json:"visitedDoors"`
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	eng, ok := s.engineFor(w, r)
	if !ok {
		return
	}
	p, err := pointParam(r, "")
	if err != nil {
		fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	radius, err := floatParam(r, "r")
	if err != nil || radius < 0 {
		fail(w, http.StatusBadRequest, "bad radius")
		return
	}
	var st query.Stats
	ids, err := eng.Range(p, radius, &st)
	if err != nil {
		fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if ids == nil {
		ids = []int32{}
	}
	writeJSON(w, http.StatusOK, rangeResponse{Objects: ids, VisitedDoors: st.VisitedDoors})
}

type knnResponse struct {
	Neighbors []query.Neighbor `json:"neighbors"`
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	eng, ok := s.engineFor(w, r)
	if !ok {
		return
	}
	p, err := pointParam(r, "")
	if err != nil {
		fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	k := 5
	if raw := r.URL.Query().Get("k"); raw != "" {
		k, err = strconv.Atoi(raw)
		if err != nil || k < 0 {
			fail(w, http.StatusBadRequest, "bad k")
			return
		}
	}
	nn, err := eng.KNN(p, k, nil)
	if err != nil {
		fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if nn == nil {
		nn = []query.Neighbor{}
	}
	writeJSON(w, http.StatusOK, knnResponse{Neighbors: nn})
}

type routeResponse struct {
	Dist  float64      `json:"dist"`
	Doors []int32      `json:"doors"`
	Geom  [][3]float64 `json:"geometry"` // (x, y, floor) polyline via door points
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	eng, ok := s.engineFor(w, r)
	if !ok {
		return
	}
	p, err := pointParam(r, "")
	if err != nil {
		fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	q, err := pointParam(r, "2")
	if err != nil {
		fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	path, err := eng.SPD(p, q, nil)
	if err != nil {
		fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp := routeResponse{Dist: path.Dist, Doors: make([]int32, 0, len(path.Doors))}
	resp.Geom = append(resp.Geom, [3]float64{p.X, p.Y, float64(p.Floor)})
	for _, d := range path.Doors {
		resp.Doors = append(resp.Doors, int32(d))
		dp := s.sp.DoorPoint(d)
		resp.Geom = append(resp.Geom, [3]float64{dp.X, dp.Y, float64(dp.Floor)})
	}
	resp.Geom = append(resp.Geom, [3]float64{q.X, q.Y, float64(q.Floor)})
	writeJSON(w, http.StatusOK, resp)
}

type partitionJSON struct {
	ID    int32        `json:"id"`
	Kind  string       `json:"kind"`
	Floor int16        `json:"floor"`
	Poly  [][2]float64 `json:"poly"`
}

func (s *Server) handlePartitions(w http.ResponseWriter, r *http.Request) {
	floor := 0
	if raw := r.URL.Query().Get("floor"); raw != "" {
		var err error
		floor, err = strconv.Atoi(raw)
		if err != nil {
			fail(w, http.StatusBadRequest, "bad floor")
			return
		}
	}
	ids := s.sp.OnFloor(int16(floor))
	out := make([]partitionJSON, 0, len(ids))
	for _, id := range ids {
		v := s.sp.Partition(id)
		pj := partitionJSON{ID: int32(id), Kind: v.Kind.String(), Floor: v.Floor}
		for _, pt := range v.Poly {
			pj.Poly = append(pj.Poly, [2]float64{pt.X, pt.Y})
		}
		out = append(out, pj)
	}
	writeJSON(w, http.StatusOK, out)
}
