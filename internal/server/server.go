// Package server exposes indoor spatial queries over HTTP/JSON — the thin
// LBS backend the paper's introduction motivates (POI search and routing
// services built on top of the four query types). One server wraps a single
// venue with any subset of the five engines; engines answer concurrent
// requests safely since query processing is read-only.
//
// The venue and its engines live in an immutable ServingState behind an
// atomic pointer. Every request loads the pointer exactly once and runs
// entirely against that state, so POST /v1/swap (or a SIGHUP in isqserve)
// can publish a freshly loaded snapshot mid-flight: in-progress queries
// finish on the state they started with, new requests see the new one, and
// no request ever observes a mix. Each successful swap advances the
// monotonic serving epoch (isq_serving_epoch in /metrics).
//
// Every query runs under a context derived from the request: client
// disconnects cancel the traversal, per-endpoint timeouts (SetTimeout)
// bound it, and an admission budget (SetBudget) caps its work. The error
// mapping is uniform: invalid parameters are 400, unanswerable queries
// (no host partition, unreachable target, exhausted budget) are 422 with a
// partial-progress payload, deadline expiry is 504, and a client that went
// away is 499.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"indoorsq/internal/doorgraph"
	"indoorsq/internal/indoor"
	"indoorsq/internal/moving"
	"indoorsq/internal/obs"
	"indoorsq/internal/query"
	"indoorsq/internal/reach"
	"indoorsq/internal/snapshot"
	"indoorsq/internal/snapshot/bundle"
)

// StatusClientClosedRequest is the non-standard (nginx-convention) status
// reported when the client cancelled the request mid-query.
const StatusClientClosedRequest = 499

// ServingState is one immutable generation of everything a request needs:
// the venue, its engines, and the provenance of how they came to be. States
// are built complete, published atomically, and never mutated afterwards —
// a handler that loaded one keeps a consistent view for its whole request
// even while a swap publishes the next generation.
type ServingState struct {
	Name    string
	Space   *indoor.Space
	Engines map[string]query.Engine
	Default string
	Gamma   int

	// Objects is the POI set the engines currently index; carried on the
	// state so a swap can re-seed the incoming engines with the serving set.
	Objects []query.Object

	// Provenance: Origin is "build" (engines constructed in this process) or
	// "snapshot" (loaded from an artifact); Fingerprint is the space topology
	// hash; FormatVersion the snapshot format that carried a loaded state.
	Origin        string
	Fingerprint   uint64
	FormatVersion uint32
}

// SetObjects installs the POI set on every engine and records it on the
// state. Call only on a state that has not been published yet (engines
// index objects without locking).
func (st *ServingState) SetObjects(objs []query.Object) {
	st.Objects = objs
	for _, e := range st.Engines {
		e.SetObjects(objs)
	}
}

func (st *ServingState) validate() error {
	if st.Space == nil {
		return errors.New("server: state has no space")
	}
	if len(st.Engines) == 0 {
		return errors.New("server: no engines")
	}
	if _, ok := st.Engines[st.Default]; !ok {
		return fmt.Errorf("server: default engine %q not provided", st.Default)
	}
	return nil
}

// StateFromBundle adapts a loaded (or built) bundle into a serving state.
// def selects the default engine; empty keeps the bundle's canonical first.
func StateFromBundle(b *bundle.Bundle, def string) (*ServingState, error) {
	if def == "" {
		if names := b.EngineList(); len(names) > 0 {
			def = names[0]
		}
	}
	st := &ServingState{
		Name:          b.Name,
		Space:         b.Space,
		Engines:       b.Engines,
		Default:       def,
		Gamma:         b.Gamma,
		Origin:        b.Origin,
		Fingerprint:   b.Fingerprint,
		FormatVersion: b.FormatVersion,
	}
	return st, st.validate()
}

// Server serves indoor spatial queries for one venue generation at a time.
type Server struct {
	// state is the serving generation. Handlers load it exactly once per
	// request; Swap publishes a replacement with a single Store.
	state atomic.Pointer[ServingState]
	// epoch counts published generations, starting at 1 for the initial
	// state; it only ever increases, and /metrics exports it so a fleet
	// rollout can watch every replica adopt a new snapshot.
	epoch atomic.Uint64
	// swapMu serializes swaps (never taken on the query path).
	swapMu sync.Mutex
	// snapPath is the default artifact for path-less swap requests and
	// SIGHUP reloads (SetSnapshotPath).
	snapPath atomic.Value // string

	// timeouts holds per-endpoint query deadlines (SetTimeout).
	timeouts map[string]time.Duration
	// budget, when non-zero, is attached to every query context
	// (SetBudget) as the admission-control work cap.
	budget query.Budget
	// encodeErrs counts responses whose body failed to encode; the client
	// receives a 500 instead (the body is buffered before any byte or the
	// status line goes out) and /v1/info surfaces the counter.
	encodeErrs atomic.Int64
	// obs is the server's metrics registry: every query emits into it via
	// the context binding, and GET /metrics scrapes it.
	obs *obs.Registry
	// mov is the continuous-query stream for the serving generation. Like
	// the engines it is topology-bound (monitors cache door-distance
	// fields), so a swap closes it and publishes a fresh one: standing
	// monitors do not survive a swap and clients re-register.
	mov atomic.Pointer[moving.Stream]
}

// New wires a server around pre-built engines keyed by name; def is the
// engine used when a request omits ?engine=. The resulting state carries
// "build" provenance; use NewFromBundle to boot from a snapshot artifact.
func New(name string, sp *indoor.Space, engines map[string]query.Engine, def string, gamma int) (*Server, error) {
	st := &ServingState{
		Name: name, Space: sp, Engines: engines, Default: def, Gamma: gamma,
		Origin:        "build",
		Fingerprint:   indoor.Fingerprint(sp),
		FormatVersion: snapshot.Version,
	}
	return NewFromState(st)
}

// NewFromBundle wires a server around a bundle (built or snapshot-loaded).
func NewFromBundle(b *bundle.Bundle, def string) (*Server, error) {
	st, err := StateFromBundle(b, def)
	if err != nil {
		return nil, err
	}
	return NewFromState(st)
}

// NewFromState wires a server around an explicit initial state.
func NewFromState(st *ServingState) (*Server, error) {
	if err := st.validate(); err != nil {
		return nil, err
	}
	srv := &Server{
		timeouts: make(map[string]time.Duration),
		obs:      obs.NewRegistry(),
	}
	srv.state.Store(st)
	srv.epoch.Store(1)
	srv.mov.Store(moving.NewStream(st.Space, moving.StreamOptions{}))
	// Layer gauges read through the atomic pointer so a swap retargets them
	// to the incoming state's space: distance-cache effectiveness and
	// footprint, the process-wide door-graph and reach counters, and the
	// serving epoch itself, scraped next to the per-query series so /metrics
	// shows every layer of a query's cost.
	srv.obs.RegisterGauge("isq_serving_epoch", func() float64 { return float64(srv.epoch.Load()) })
	dcGauge := func(get func(dc *indoor.DistCache) float64) func() float64 {
		return func() float64 {
			if dc := srv.state.Load().Space.DistCache(); dc != nil {
				return get(dc)
			}
			return 0
		}
	}
	srv.obs.RegisterGauge("isq_distcache_hits_total", dcGauge(func(dc *indoor.DistCache) float64 { return float64(dc.Stats().Hits) }))
	srv.obs.RegisterGauge("isq_distcache_misses_total", dcGauge(func(dc *indoor.DistCache) float64 { return float64(dc.Stats().Misses) }))
	srv.obs.RegisterGauge("isq_distcache_fills_total", dcGauge(func(dc *indoor.DistCache) float64 { return float64(dc.Stats().Fills) }))
	srv.obs.RegisterGauge("isq_distcache_size_bytes", dcGauge(func(dc *indoor.DistCache) float64 { return float64(dc.SizeBytes()) }))
	srv.obs.RegisterGauge("isq_doorgraph_sweeps_total", func() float64 { return float64(doorgraph.Metrics.Sweeps.Load()) })
	srv.obs.RegisterGauge("isq_doorgraph_settled_total", func() float64 { return float64(doorgraph.Metrics.Settled.Load()) })
	srv.obs.RegisterGauge("isq_doorgraph_doors", func() float64 { return float64(doorgraph.Metrics.Doors.Load()) })
	srv.obs.RegisterGauge("isq_doorgraph_edges", func() float64 { return float64(doorgraph.Metrics.Edges.Load()) })
	srv.obs.RegisterGauge("isq_doorgraph_size_bytes", func() float64 { return float64(doorgraph.Metrics.Bytes.Load()) })
	srv.obs.RegisterGauge("isq_reach_sccs", func() float64 { return float64(reach.Metrics.SCCs.Load()) })
	srv.obs.RegisterGauge("isq_reach_summary_bytes", func() float64 { return float64(reach.Metrics.SummaryBytes.Load()) })
	srv.obs.RegisterGauge("isq_reach_prune_hits", func() float64 { return float64(reach.Metrics.PruneHits.Load()) })
	srv.obs.RegisterGauge("isq_reach_prune_skips", func() float64 { return float64(reach.Metrics.PruneSkips.Load()) })
	// Continuous-query layer: process-wide ingestion counters from
	// internal/moving plus live per-server monitor/object population. The
	// touched quantiles summarize the inverted index's selectivity — how
	// many monitors each update actually reached.
	srv.obs.RegisterGauge("isq_moving_updates_total", func() float64 { return float64(moving.Metrics.Updates.Load()) })
	srv.obs.RegisterGauge("isq_moving_batches_total", func() float64 { return float64(moving.Metrics.Batches.Load()) })
	srv.obs.RegisterGauge("isq_moving_events_total", func() float64 { return float64(moving.Metrics.Events.Load()) })
	srv.obs.RegisterGauge("isq_moving_shard_inflight", func() float64 { return float64(moving.Metrics.ShardInFlight.Load()) })
	srv.obs.RegisterGauge("isq_moving_touched_p50", func() float64 { return float64(moving.Metrics.Touched.Quantile(0.50)) })
	srv.obs.RegisterGauge("isq_moving_touched_p95", func() float64 { return float64(moving.Metrics.Touched.Quantile(0.95)) })
	srv.obs.RegisterGauge("isq_moving_monitors", func() float64 { return float64(srv.mov.Load().NumQueries()) })
	srv.obs.RegisterGauge("isq_moving_objects", func() float64 { return float64(srv.mov.Load().NumObjects()) })
	return srv, nil
}

// State returns the currently published serving state.
func (s *Server) State() *ServingState { return s.state.Load() }

// Epoch returns the serving epoch: 1 for the initial state, +1 per swap.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// SetSnapshotPath sets the artifact used by path-less POST /v1/swap
// requests and by Reload (the SIGHUP handler in isqserve).
func (s *Server) SetSnapshotPath(path string) { s.snapPath.Store(path) }

// Swap validates and publishes a new serving state, advancing the epoch.
// In-flight requests complete against the state they loaded at entry.
func (s *Server) Swap(st *ServingState) error {
	if err := st.validate(); err != nil {
		return err
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	s.state.Store(st)
	s.epoch.Add(1)
	s.resetMoving(st.Space)
	return nil
}

// resetMoving retires the previous generation's continuous-query stream and
// publishes a fresh one bound to the incoming space. Open subscriptions see
// their channels close; registered monitors are gone (their cached
// door-distance fields were computed against the old topology). Called only
// under swapMu.
func (s *Server) resetMoving(sp *indoor.Space) {
	if old := s.mov.Swap(moving.NewStream(sp, moving.StreamOptions{})); old != nil {
		old.Close()
	}
}

// SwapFromSnapshot loads a snapshot artifact and publishes it as the new
// serving state, carrying the current POI set and default engine over to
// the incoming engines. The load happens outside the query path; queries
// keep answering on the old state until the single atomic publish. Used by
// both POST /v1/swap and the SIGHUP reload loop.
func (s *Server) SwapFromSnapshot(path string) (*ServingState, error) {
	if path == "" {
		path, _ = s.snapPath.Load().(string)
	}
	if path == "" {
		return nil, errors.New("server: no snapshot path configured")
	}
	// Serialize whole reloads, not just the publish: concurrent swaps would
	// race their carried-over object sets.
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	b, err := bundle.LoadFile(path)
	if err != nil {
		return nil, err
	}
	cur := s.state.Load()
	def := cur.Default
	if _, ok := b.Engines[def]; !ok {
		return nil, fmt.Errorf("server: snapshot %s lacks serving default engine %q (has %v)",
			path, def, b.EngineList())
	}
	st, err := StateFromBundle(b, def)
	if err != nil {
		return nil, err
	}
	st.SetObjects(cur.Objects)
	s.state.Store(st)
	s.epoch.Add(1)
	s.resetMoving(st.Space)
	return st, nil
}

// Reload re-loads the configured snapshot path (the SIGHUP semantics).
func (s *Server) Reload() (*ServingState, error) { return s.SwapFromSnapshot("") }

// Registry exposes the server's metrics registry (for the isqserve debug
// listener's expvar export and for tests).
func (s *Server) Registry() *obs.Registry { return s.obs }

// SetTimeout bounds queries of one endpoint ("range", "knn", "route") with
// a per-request deadline; d <= 0 removes the bound. Call before the handler
// starts serving.
func (s *Server) SetTimeout(endpoint string, d time.Duration) {
	if d <= 0 {
		delete(s.timeouts, endpoint)
		return
	}
	s.timeouts[endpoint] = d
}

// SetBudget attaches a work budget to every query context — the admission
// cap of a shared deployment. The zero budget disables it. Call before the
// handler starts serving.
func (s *Server) SetBudget(b query.Budget) { s.budget = b }

// EncodeErrors returns how many response bodies failed to encode.
func (s *Server) EncodeErrors() int64 { return s.encodeErrs.Load() }

// queryCtx derives the context one query runs under: the request context
// (so client disconnects cancel the traversal), the endpoint timeout, and
// the admission budget.
func (s *Server) queryCtx(r *http.Request, endpoint string) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	cancel := context.CancelFunc(func() {})
	if d, ok := s.timeouts[endpoint]; ok {
		ctx, cancel = context.WithTimeout(ctx, d)
	}
	if b := s.budget; b != (query.Budget{}) {
		ctx = query.WithBudget(ctx, b)
	}
	ctx = obs.WithRegistry(ctx, s.obs)
	return ctx, cancel
}

// Handler returns the HTTP handler with all endpoints mounted.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/info", s.handleInfo)
	mux.HandleFunc("GET /v1/range", s.handleRange)
	mux.HandleFunc("GET /v1/knn", s.handleKNN)
	mux.HandleFunc("GET /v1/route", s.handleRoute)
	mux.HandleFunc("GET /v1/partitions", s.handlePartitions)
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	mux.HandleFunc("POST /v1/swap", s.handleSwap)
	mux.HandleFunc("GET /v1/monitors", s.handleMonitorList)
	mux.HandleFunc("POST /v1/monitors", s.handleMonitorCreate)
	mux.HandleFunc("DELETE /v1/monitors/{id}", s.handleMonitorDelete)
	mux.HandleFunc("GET /v1/monitors/{id}/result", s.handleMonitorResult)
	mux.HandleFunc("GET /v1/monitors/{id}/stream", s.handleMonitorStream)
	mux.HandleFunc("POST /v1/updates", s.handleUpdates)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// httpError is the uniform error payload. Interrupted queries additionally
// report how far they got, so a caller hitting the admission budget can see
// what the query cost before it was cut off.
type httpError struct {
	Error        string `json:"error"`
	VisitedDoors *int   `json:"visitedDoors,omitempty"`
	WorkBytes    *int64 `json:"workBytes,omitempty"`
}

// encodeJSON writes v as a buffered JSON response: encoding straight into w
// would send the status line on the first byte, so a payload that fails to
// encode mid-body would leave the client a truncated 2xx and the server a
// superfluous-WriteHeader log when the error path tried to respond.
// Buffering makes status + body atomic either way. Returns the encode error
// (the client already received a 500 when it is non-nil).
func encodeJSON(w http.ResponseWriter, code int, v any) error {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(`{"error":"response encoding failed"}` + "\n"))
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(buf.Bytes())
	return nil
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	if encodeJSON(w, code, v) != nil {
		s.encodeErrs.Add(1)
	}
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.writeJSON(w, code, httpError{Error: fmt.Sprintf(format, args...)})
}

// errStatus maps a query error to its HTTP status: unanswerable queries are
// the client's problem (422), an expired deadline is the backend giving up
// (504), and a vanished client is 499.
func errStatus(err error) int {
	switch {
	case errors.Is(err, query.ErrNoHost),
		errors.Is(err, query.ErrUnreachable),
		errors.Is(err, query.ErrBudgetExhausted):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// failQuery reports a query error with the mapped status; interrupted
// queries (budget, deadline) attach their partial progress.
func (s *Server) failQuery(w http.ResponseWriter, err error, st *query.Stats) {
	he := httpError{Error: err.Error()}
	if errors.Is(err, query.ErrBudgetExhausted) || errors.Is(err, context.DeadlineExceeded) {
		he.VisitedDoors = &st.VisitedDoors
		he.WorkBytes = &st.WorkBytes
	}
	s.writeJSON(w, errStatus(err), he)
}

// engineFor resolves the ?engine= parameter against one loaded state.
func (s *Server) engineFor(st *ServingState, w http.ResponseWriter, r *http.Request) (query.EngineCtx, bool) {
	name := r.URL.Query().Get("engine")
	if name == "" {
		name = st.Default
	}
	eng, ok := st.Engines[name]
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown engine %q", name)
		return nil, false
	}
	return query.AsCtx(eng), true
}

// floatParam parses a required float query parameter.
func floatParam(r *http.Request, key string) (float64, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", key)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("bad parameter %q: %v", key, err)
	}
	return v, nil
}

// pointParam parses x/y/floor (floor optional, default 0) with a suffix
// ("" or "2").
func pointParam(r *http.Request, suffix string) (indoor.Point, error) {
	x, err := floatParam(r, "x"+suffix)
	if err != nil {
		return indoor.Point{}, err
	}
	y, err := floatParam(r, "y"+suffix)
	if err != nil {
		return indoor.Point{}, err
	}
	floor := 0
	if raw := r.URL.Query().Get("floor" + suffix); raw != "" {
		floor, err = strconv.Atoi(raw)
		if err != nil {
			return indoor.Point{}, fmt.Errorf("bad parameter floor%s: %v", suffix, err)
		}
	}
	return indoor.At(x, y, int16(floor)), nil
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	st := s.state.Load()
	stats := st.Space.SpaceStats(st.Gamma)
	engines := make([]string, 0, len(st.Engines))
	for name := range st.Engines {
		engines = append(engines, name)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"venue":        st.Name,
		"floors":       stats.Floors,
		"partitions":   stats.Partitions,
		"doors":        stats.Doors,
		"engines":      engines,
		"default":      st.Default,
		"encodeErrors": s.encodeErrs.Load(),
		// Serving-state provenance: which generation is live (epoch advances
		// on every successful swap), whether its engines were built in this
		// process or loaded from a snapshot artifact, and the snapshot
		// format + space-topology fingerprint identifying the artifact.
		"epoch": s.epoch.Load(),
		"snapshot": map[string]any{
			"origin":        st.Origin,
			"fingerprint":   fmt.Sprintf("%016x", st.Fingerprint),
			"formatVersion": st.FormatVersion,
		},
		// Footprint of the last door graph built in this process (CSR
		// layout): node and directed-edge counts plus the exact byte size
		// of the offset/target/weight arrays.
		"doorGraph": map[string]int64{
			"doors": doorgraph.Metrics.Doors.Load(),
			"edges": doorgraph.Metrics.Edges.Load(),
			"bytes": doorgraph.Metrics.Bytes.Load(),
		},
		// Reachability pruning (internal/reach): condensation shape of the
		// last summary built plus cumulative prune decisions (hits pruned
		// work, skips passed it through).
		"reach": map[string]int64{
			"sccs":       reach.Metrics.SCCs.Load(),
			"bytes":      reach.Metrics.SummaryBytes.Load(),
			"pruneHits":  reach.Metrics.PruneHits.Load(),
			"pruneSkips": reach.Metrics.PruneSkips.Load(),
		},
	})
}

// swapRequest is the optional POST /v1/swap body.
type swapRequest struct {
	// Path of the snapshot artifact to load; empty uses the path configured
	// at startup (-snapshot in isqserve).
	Path string `json:"path"`
}

// handleSwap loads a snapshot artifact and atomically publishes it as the
// new serving state. The response reports the adopted generation; queries
// in flight during the load keep answering on the previous state.
func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	var req swapRequest
	// An empty body means "reload the configured artifact".
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	start := time.Now()
	st, err := s.SwapFromSnapshot(req.Path)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "swap: %v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"epoch":         s.epoch.Load(),
		"origin":        st.Origin,
		"fingerprint":   fmt.Sprintf("%016x", st.Fingerprint),
		"formatVersion": st.FormatVersion,
		"engines":       engineNames(st),
		"default":       st.Default,
		"loadMs":        time.Since(start).Milliseconds(),
	})
}

func engineNames(st *ServingState) []string {
	out := make([]string, 0, len(st.Engines))
	for n := range st.Engines {
		out = append(out, n)
	}
	return out
}

type rangeResponse struct {
	Objects      []int32 `json:"objects"`
	VisitedDoors int     `json:"visitedDoors"`
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	st := s.state.Load()
	eng, ok := s.engineFor(st, w, r)
	if !ok {
		return
	}
	p, err := pointParam(r, "")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	radius, err := floatParam(r, "r")
	if err != nil || radius < 0 {
		s.fail(w, http.StatusBadRequest, "bad radius")
		return
	}
	ctx, cancel := s.queryCtx(r, "range")
	defer cancel()
	var qst query.Stats
	ids, err := eng.RangeCtx(ctx, p, radius, &qst)
	if err != nil {
		s.failQuery(w, err, &qst)
		return
	}
	if ids == nil {
		ids = []int32{}
	}
	s.writeJSON(w, http.StatusOK, rangeResponse{Objects: ids, VisitedDoors: qst.VisitedDoors})
}

type knnResponse struct {
	Neighbors    []query.Neighbor `json:"neighbors"`
	VisitedDoors int              `json:"visitedDoors"`
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	st := s.state.Load()
	eng, ok := s.engineFor(st, w, r)
	if !ok {
		return
	}
	p, err := pointParam(r, "")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	k := 5
	if raw := r.URL.Query().Get("k"); raw != "" {
		k, err = strconv.Atoi(raw)
		if err != nil || k < 0 {
			s.fail(w, http.StatusBadRequest, "bad k")
			return
		}
	}
	ctx, cancel := s.queryCtx(r, "knn")
	defer cancel()
	var qst query.Stats
	nn, err := eng.KNNCtx(ctx, p, k, &qst)
	if err != nil {
		s.failQuery(w, err, &qst)
		return
	}
	if nn == nil {
		nn = []query.Neighbor{}
	}
	s.writeJSON(w, http.StatusOK, knnResponse{Neighbors: nn, VisitedDoors: qst.VisitedDoors})
}

type routeResponse struct {
	Dist         float64      `json:"dist"`
	Doors        []int32      `json:"doors"`
	Geom         [][3]float64 `json:"geometry"` // (x, y, floor) polyline via door points
	VisitedDoors int          `json:"visitedDoors"`
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	st := s.state.Load()
	eng, ok := s.engineFor(st, w, r)
	if !ok {
		return
	}
	p, err := pointParam(r, "")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	q, err := pointParam(r, "2")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.queryCtx(r, "route")
	defer cancel()
	var qst query.Stats
	path, err := eng.SPDCtx(ctx, p, q, &qst)
	if err != nil {
		s.failQuery(w, err, &qst)
		return
	}
	resp := routeResponse{Dist: path.Dist, Doors: make([]int32, 0, len(path.Doors)), VisitedDoors: qst.VisitedDoors}
	resp.Geom = append(resp.Geom, [3]float64{p.X, p.Y, float64(p.Floor)})
	for _, d := range path.Doors {
		resp.Doors = append(resp.Doors, int32(d))
		dp := st.Space.DoorPoint(d)
		resp.Geom = append(resp.Geom, [3]float64{dp.X, dp.Y, float64(dp.Floor)})
	}
	resp.Geom = append(resp.Geom, [3]float64{q.X, q.Y, float64(q.Floor)})
	s.writeJSON(w, http.StatusOK, resp)
}

type partitionJSON struct {
	ID    int32        `json:"id"`
	Kind  string       `json:"kind"`
	Floor int16        `json:"floor"`
	Poly  [][2]float64 `json:"poly"`
}

// handleMetrics scrapes the registry in plain-text format: per-engine ×
// per-query-type counters and p50/p95/p99 latency quantiles, followed by
// the layer gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := s.obs.WriteText(&buf); err != nil {
		s.fail(w, http.StatusInternalServerError, "metrics: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

type traceSpan struct {
	Stage   string `json:"stage"`
	StartNs int64  `json:"startNs"`
	DurNs   int64  `json:"durNs"`
}

type traceResponse struct {
	Engine        string      `json:"engine"`
	Op            string      `json:"op"`
	Error         string      `json:"error,omitempty"`
	DurNs         int64       `json:"durNs"`
	VisitedDoors  int         `json:"visitedDoors"`
	WorkBytes     int64       `json:"workBytes"`
	PeakWorkBytes int64       `json:"peakWorkBytes"`
	CacheHits     int64       `json:"cacheHits"`
	CacheMisses   int64       `json:"cacheMisses"`
	Spans         []traceSpan `json:"spans"`
	Result        any         `json:"result,omitempty"`
}

// handleTrace runs one query with per-stage tracing and returns the span
// breakdown instead of the full result: GET /v1/trace?op=range|knn|route
// plus the target endpoint's usual parameters. Query-level failures (no
// host, unreachable, budget) still produce a 200 — the trace of a failed
// query is the point of the endpoint — with the error recorded in the
// payload; only parameter errors are 4xx.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	st := s.state.Load()
	eng, ok := s.engineFor(st, w, r)
	if !ok {
		return
	}
	op := r.URL.Query().Get("op")
	p, err := pointParam(r, "")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	tr := obs.NewTrace()
	ctx, cancel := s.queryCtx(r, op)
	defer cancel()
	ctx = obs.WithTrace(ctx, tr)
	var qst query.Stats
	var qerr error
	var result any
	switch op {
	case "range":
		var radius float64
		if radius, err = floatParam(r, "r"); err != nil || radius < 0 {
			s.fail(w, http.StatusBadRequest, "bad radius")
			return
		}
		var ids []int32
		ids, qerr = eng.RangeCtx(ctx, p, radius, &qst)
		result = map[string]any{"objects": len(ids)}
	case "knn":
		k := 5
		if raw := r.URL.Query().Get("k"); raw != "" {
			if k, err = strconv.Atoi(raw); err != nil || k < 0 {
				s.fail(w, http.StatusBadRequest, "bad k")
				return
			}
		}
		var nn []query.Neighbor
		nn, qerr = eng.KNNCtx(ctx, p, k, &qst)
		result = map[string]any{"neighbors": len(nn)}
	case "route":
		var q indoor.Point
		if q, err = pointParam(r, "2"); err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		var path query.Path
		path, qerr = eng.SPDCtx(ctx, p, q, &qst)
		result = map[string]any{"dist": path.Dist, "doors": len(path.Doors)}
	default:
		s.fail(w, http.StatusBadRequest, "bad op %q (want range, knn, or route)", op)
		return
	}
	queries := tr.Queries()
	if len(queries) == 0 {
		s.fail(w, http.StatusInternalServerError, "trace recorded no query")
		return
	}
	q0 := queries[0]
	resp := traceResponse{
		Engine:        q0.Engine,
		Op:            q0.Op,
		Error:         q0.Err,
		DurNs:         q0.Dur.Nanoseconds(),
		VisitedDoors:  q0.VisitedDoors,
		WorkBytes:     q0.WorkBytes,
		PeakWorkBytes: q0.PeakWorkBytes,
		CacheHits:     q0.CacheHits,
		CacheMisses:   q0.CacheMisses,
		Spans:         make([]traceSpan, 0, len(tr.Spans())),
	}
	if qerr == nil {
		resp.Result = result
	}
	for _, sp := range tr.Spans() {
		resp.Spans = append(resp.Spans, traceSpan{
			Stage:   sp.Stage.String(),
			StartNs: sp.Start.Nanoseconds(),
			DurNs:   sp.Dur.Nanoseconds(),
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePartitions(w http.ResponseWriter, r *http.Request) {
	st := s.state.Load()
	floor := 0
	if raw := r.URL.Query().Get("floor"); raw != "" {
		var err error
		floor, err = strconv.Atoi(raw)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "bad floor")
			return
		}
	}
	ids := st.Space.OnFloor(int16(floor))
	out := make([]partitionJSON, 0, len(ids))
	for _, id := range ids {
		v := st.Space.Partition(id)
		pj := partitionJSON{ID: int32(id), Kind: v.Kind.String(), Floor: v.Floor}
		for _, pt := range v.Poly {
			pj.Poly = append(pj.Poly, [2]float64{pt.X, pt.Y})
		}
		out = append(out, pj)
	}
	s.writeJSON(w, http.StatusOK, out)
}
