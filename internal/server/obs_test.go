package server_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"indoorsq/internal/idmodel"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/server"
	"indoorsq/internal/testspaces"
)

// newObsServer is newTestServer but keeps the *server.Server so tests can
// reach the registry.
func newObsServer(t *testing.T) (*httptest.Server, *server.Server) {
	t.Helper()
	f := testspaces.NewStrip()
	objs := []query.Object{
		{ID: 1, Loc: indoor.At(2.5, 9, 0), Part: f.R1},
		{ID: 2, Loc: indoor.At(7.5, 9, 0), Part: f.R2},
		{ID: 3, Loc: indoor.At(1, 5, 0), Part: f.Hall},
	}
	engines := map[string]query.Engine{"IDModel": idmodel.New(f.Space)}
	for _, e := range engines {
		e.SetObjects(objs)
	}
	srv, err := server.New("strip", f.Space, engines, "IDModel", 4)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newObsServer(t)
	// One query of each type so the registry has three series to scrape.
	for _, url := range []string{
		ts.URL + "/v1/range?x=2.5&y=9&r=30",
		ts.URL + "/v1/knn?x=2.5&y=9&k=2",
		ts.URL + "/v1/route?x=2.5&y=9&x2=7.5&y2=9",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", url, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`isq_queries_total{engine="IDModel",op="range"} 1`,
		`isq_queries_total{engine="IDModel",op="knn"} 1`,
		`isq_queries_total{engine="IDModel",op="spd"} 1`,
		`isq_query_latency_seconds{engine="IDModel",op="spd",quantile="0.5"}`,
		`isq_query_latency_seconds{engine="IDModel",op="spd",quantile="0.95"}`,
		`isq_query_latency_seconds{engine="IDModel",op="spd",quantile="0.99"}`,
		`isq_query_latency_seconds_count{engine="IDModel",op="range"} 1`,
		"isq_distcache_size_bytes",
		"isq_doorgraph_sweeps_total",
		"isq_reach_sccs",
		"isq_reach_summary_bytes",
		"isq_reach_prune_hits",
		"isq_reach_prune_skips",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestTraceEndpoint(t *testing.T) {
	ts, _ := newObsServer(t)
	var tr struct {
		Engine       string `json:"engine"`
		Op           string `json:"op"`
		Error        string `json:"error"`
		DurNs        int64  `json:"durNs"`
		VisitedDoors int    `json:"visitedDoors"`
		Spans        []struct {
			Stage   string `json:"stage"`
			StartNs int64  `json:"startNs"`
			DurNs   int64  `json:"durNs"`
		} `json:"spans"`
		Result map[string]any `json:"result"`
	}
	code := getJSON(t, ts.URL+"/v1/trace?op=route&x=2.5&y=9&x2=7.5&y2=9", &tr)
	if code != 200 {
		t.Fatalf("trace status %d", code)
	}
	if tr.Engine != "IDModel" || tr.Op != "spd" || tr.Error != "" {
		t.Fatalf("trace header = %+v", tr)
	}
	if tr.DurNs <= 0 || tr.VisitedDoors <= 0 {
		t.Fatalf("trace missing query costs: %+v", tr)
	}
	if len(tr.Spans) == 0 {
		t.Fatal("trace recorded no stage spans")
	}
	known := map[string]bool{"host_lookup": true, "index_probe": true, "graph_expand": true, "refine": true}
	seen := map[string]bool{}
	for _, sp := range tr.Spans {
		if !known[sp.Stage] {
			t.Fatalf("unknown span stage %q", sp.Stage)
		}
		if sp.StartNs < 0 || sp.DurNs < 0 {
			t.Fatalf("negative span offsets: %+v", sp)
		}
		seen[sp.Stage] = true
	}
	if !seen["host_lookup"] || !seen["graph_expand"] {
		t.Fatalf("route trace missing core stages: %v", seen)
	}
	if tr.Result["dist"] == nil {
		t.Fatalf("trace result missing dist: %v", tr.Result)
	}
}

func TestTraceEndpointFailedQueryStillTraces(t *testing.T) {
	ts, _ := newObsServer(t)
	var tr struct {
		Error  string         `json:"error"`
		Result map[string]any `json:"result"`
	}
	// (50, 50) is outside every partition: the query fails with ErrNoHost,
	// but the trace of the failure is still the answer.
	code := getJSON(t, ts.URL+"/v1/trace?op=range&x=50&y=50&r=5", &tr)
	if code != 200 {
		t.Fatalf("trace status %d, want 200 with in-payload error", code)
	}
	if tr.Error == "" {
		t.Fatal("failed query should report its error in the trace payload")
	}
	if tr.Result != nil {
		t.Fatalf("failed query should omit the result summary, got %v", tr.Result)
	}
}

func TestTraceEndpointValidation(t *testing.T) {
	ts, _ := newObsServer(t)
	for _, url := range []string{
		ts.URL + "/v1/trace?op=walk&x=2.5&y=9",      // unknown op
		ts.URL + "/v1/trace?op=range&x=2.5&y=9",     // missing radius
		ts.URL + "/v1/trace?op=route&x=2.5&y=9",     // missing target point
		ts.URL + "/v1/trace?op=knn&x=2.5&y=9&k=abc", // bad k
		ts.URL + "/v1/trace?op=range&r=5",           // missing point
	} {
		var e map[string]any
		if code := getJSON(t, url, &e); code != 400 {
			t.Fatalf("%s: status %d, want 400", url, code)
		}
	}
}
