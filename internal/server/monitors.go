// Continuous-query monitor endpoints: standing range / kNN monitors over
// the moving-objects stream (internal/moving.Stream), exposed on both the
// single-venue Server (/v1/monitors, /v1/updates) and the TenantServer
// (/v1/venues/{id}/monitors, /v1/venues/{id}/updates). Monitors are
// generation-scoped serving state, not venue data: a snapshot swap closes
// the venue's stream (cached door-distance fields are topology-dependent),
// and clients re-register against the new generation.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"indoorsq/internal/indoor"
	"indoorsq/internal/moving"
	"indoorsq/internal/tenant"
)

// monitorRequest is the POST body registering a monitor.
type monitorRequest struct {
	ID    int32   `json:"id"`
	Kind  string  `json:"kind"` // "range" (default) or "knn"
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Floor int16   `json:"floor"`
	R     float64 `json:"r"` // range radius
	K     int     `json:"k"` // knn k
	T     float64 `json:"t"` // registration timestamp
}

// eventJSON is one enter/leave delta on the wire.
type eventJSON struct {
	Query  int32   `json:"query"`
	Object int32   `json:"object"`
	Enter  bool    `json:"enter"`
	T      float64 `json:"t"`
}

func toEventJSON(evs []moving.Event) []eventJSON {
	out := make([]eventJSON, len(evs))
	for i, e := range evs {
		out[i] = eventJSON{Query: e.Query, Object: e.Object, Enter: e.Enter, T: e.T}
	}
	return out
}

// updateJSON is one position report in a POST /v1/updates batch. Part is
// optional: omitted, the server resolves the host partition itself (422
// when the point is outdoors).
type updateJSON struct {
	ID    int32   `json:"id"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Floor int16   `json:"floor"`
	Part  *int32  `json:"part"`
	T     float64 `json:"t"`
}

type updateRequest struct {
	Updates []updateJSON `json:"updates"`
}

// monitorErrStatus maps registration errors onto HTTP statuses: duplicate
// ids conflict (409), outdoor query points are unprocessable (422), a
// closed stream means a swap raced the request (409); everything else
// falls through to the standard query mapping (504 deadline, 499 gone).
func monitorErrStatus(err error) int {
	switch {
	case errors.Is(err, moving.ErrDuplicateQuery):
		return http.StatusConflict
	case errors.Is(err, moving.ErrNotIndoors):
		return http.StatusUnprocessableEntity
	case errors.Is(err, moving.ErrStreamClosed):
		return http.StatusConflict
	default:
		return errStatus(err)
	}
}

// registerMonitor validates and registers one monitor on mov.
func registerMonitor(mov *moving.Stream, req monitorRequest) ([]moving.Event, error) {
	p := indoor.At(req.X, req.Y, req.Floor)
	switch req.Kind {
	case "", "range":
		if req.R < 0 {
			return nil, fmt.Errorf("bad radius %v", req.R)
		}
		return mov.Register(req.ID, p, req.R, req.T)
	case "knn":
		return mov.RegisterKNN(req.ID, p, req.K, req.T)
	default:
		return nil, fmt.Errorf("bad kind %q (want range or knn)", req.Kind)
	}
}

// decodeUpdates converts a wire batch, resolving omitted partitions.
func decodeUpdates(sp *indoor.Space, req updateRequest) ([]moving.Update, error) {
	us := make([]moving.Update, len(req.Updates))
	for i, u := range req.Updates {
		p := indoor.At(u.X, u.Y, u.Floor)
		var part indoor.PartitionID
		if u.Part != nil {
			part = indoor.PartitionID(*u.Part)
		} else {
			v, ok := sp.HostPartition(p)
			if !ok {
				return nil, fmt.Errorf("update %d: object %d at %v is not indoors", i, u.ID, p)
			}
			part = v
		}
		us[i] = moving.Update{ID: u.ID, Loc: p, Part: part, T: u.T}
	}
	return us, nil
}

// monitorID parses the {mid} path segment.
func monitorID(r *http.Request, seg string) (int32, error) {
	v, err := strconv.ParseInt(r.PathValue(seg), 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad monitor id %q", r.PathValue(seg))
	}
	return int32(v), nil
}

// serveMonitorStream streams a monitor's deltas as ndjson until the client
// disconnects or the monitor/stream closes. Events are pushed through a
// bounded subscription: a client that cannot keep up loses deltas (the
// dropped count is its signal to resync via the result endpoint) instead of
// stalling ingestion.
func serveMonitorStream(w http.ResponseWriter, r *http.Request, mov *moving.Stream, qid int32) (int, error) {
	sub, err := mov.Subscribe(qid, 256)
	if err != nil {
		return http.StatusNotFound, err
	}
	defer sub.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return 0, nil
		case e, ok := <-sub.Events():
			if !ok {
				return 0, nil // monitor unregistered or generation swapped
			}
			if enc.Encode(eventJSON{Query: e.Query, Object: e.Object, Enter: e.Enter, T: e.T}) != nil {
				return 0, nil
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

// ---- single-venue Server ----

// Moving returns the server's live moving-object stream (for isqserve
// wiring and tests). It is replaced — and the old one closed — on swap.
func (s *Server) Moving() *moving.Stream { return s.mov.Load() }

func (s *Server) handleMonitorList(w http.ResponseWriter, r *http.Request) {
	mov := s.mov.Load()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"monitors": mov.Monitors(),
		"objects":  mov.NumObjects(),
	})
}

func (s *Server) handleMonitorCreate(w http.ResponseWriter, r *http.Request) {
	var req monitorRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	evs, err := registerMonitor(s.mov.Load(), req)
	if err != nil {
		if errors.Is(err, moving.ErrDuplicateQuery) || errors.Is(err, moving.ErrNotIndoors) || errors.Is(err, moving.ErrStreamClosed) {
			s.fail(w, monitorErrStatus(err), "%v", err)
		} else {
			s.fail(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	s.writeJSON(w, http.StatusCreated, map[string]any{
		"id":     req.ID,
		"events": toEventJSON(evs),
	})
}

func (s *Server) handleMonitorDelete(w http.ResponseWriter, r *http.Request) {
	qid, err := monitorID(r, "id")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.mov.Load().Unregister(qid) {
		s.fail(w, http.StatusNotFound, "unknown monitor %d", qid)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"id": qid, "removed": true})
}

func (s *Server) handleMonitorResult(w http.ResponseWriter, r *http.Request) {
	qid, err := monitorID(r, "id")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	mov := s.mov.Load()
	ids := mov.Result(qid)
	if ids == nil {
		s.fail(w, http.StatusNotFound, "unknown monitor %d", qid)
		return
	}
	resp := map[string]any{"id": qid, "objects": ids}
	if nn := mov.Neighbors(qid); nn != nil {
		resp["neighbors"] = nn
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMonitorStream(w http.ResponseWriter, r *http.Request) {
	qid, err := monitorID(r, "id")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if code, err := serveMonitorStream(w, r, s.mov.Load(), qid); err != nil {
		s.fail(w, code, "%v", err)
	}
}

func (s *Server) handleUpdates(w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	mov := s.mov.Load()
	us, err := decodeUpdates(s.state.Load().Space, req)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	evs, err := mov.ApplyBatch(us)
	if err != nil {
		s.fail(w, monitorErrStatus(err), "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"applied": len(us),
		"events":  toEventJSON(evs),
	})
}

// ---- TenantServer ----

// tenantStream caches one venue's moving stream, keyed by the venue's
// space pointer: a swap publishes a new Space, which invalidates every
// cached door-distance field, so the stream is closed and rebuilt.
type tenantStream struct {
	space *indoor.Space
	mov   *moving.Stream
}

// streamFor returns the venue's current-generation stream, creating it
// lazily and retiring the previous generation's on swap. Monitors do not
// survive a swap — same contract as the single-venue server.
func (s *TenantServer) streamFor(v *tenant.Venue) *moving.Stream {
	s.movMu.Lock()
	defer s.movMu.Unlock()
	if e := s.movs[v.ID]; e != nil {
		if e.space == v.Space {
			return e.mov
		}
		e.mov.Close() // venue swapped: retire the old generation's monitors
	}
	mov := moving.NewStream(v.Space, moving.StreamOptions{})
	s.movs[v.ID] = &tenantStream{space: v.Space, mov: mov}
	return mov
}

func (s *TenantServer) handleVenueMonitorList(w http.ResponseWriter, r *http.Request) {
	v, ok := s.venue(w, r)
	if !ok {
		return
	}
	mov := s.streamFor(v)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"venue":    v.ID,
		"epoch":    v.Epoch(),
		"monitors": mov.Monitors(),
		"objects":  mov.NumObjects(),
	})
}

func (s *TenantServer) handleVenueMonitorCreate(w http.ResponseWriter, r *http.Request) {
	v, ok := s.venue(w, r)
	if !ok {
		return
	}
	var req monitorRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	evs, err := registerMonitor(s.streamFor(v), req)
	if err != nil {
		if errors.Is(err, moving.ErrDuplicateQuery) || errors.Is(err, moving.ErrNotIndoors) || errors.Is(err, moving.ErrStreamClosed) {
			s.fail(w, monitorErrStatus(err), "%v", err)
		} else {
			s.fail(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	s.writeJSON(w, http.StatusCreated, map[string]any{
		"venue":  v.ID,
		"id":     req.ID,
		"events": toEventJSON(evs),
	})
}

func (s *TenantServer) handleVenueMonitorDelete(w http.ResponseWriter, r *http.Request) {
	v, ok := s.venue(w, r)
	if !ok {
		return
	}
	qid, err := monitorID(r, "mid")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.streamFor(v).Unregister(qid) {
		s.fail(w, http.StatusNotFound, "unknown monitor %d", qid)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"venue": v.ID, "id": qid, "removed": true})
}

func (s *TenantServer) handleVenueMonitorResult(w http.ResponseWriter, r *http.Request) {
	v, ok := s.venue(w, r)
	if !ok {
		return
	}
	qid, err := monitorID(r, "mid")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	mov := s.streamFor(v)
	ids := mov.Result(qid)
	if ids == nil {
		s.fail(w, http.StatusNotFound, "unknown monitor %d", qid)
		return
	}
	resp := map[string]any{"venue": v.ID, "id": qid, "objects": ids}
	if nn := mov.Neighbors(qid); nn != nil {
		resp["neighbors"] = nn
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *TenantServer) handleVenueMonitorStream(w http.ResponseWriter, r *http.Request) {
	v, ok := s.venue(w, r)
	if !ok {
		return
	}
	qid, err := monitorID(r, "mid")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if code, err := serveMonitorStream(w, r, s.streamFor(v), qid); err != nil {
		s.fail(w, code, "%v", err)
	}
}

func (s *TenantServer) handleVenueUpdates(w http.ResponseWriter, r *http.Request) {
	v, ok := s.venue(w, r)
	if !ok {
		return
	}
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	us, err := decodeUpdates(v.Space, req)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	evs, err := s.streamFor(v).ApplyBatch(us)
	if err != nil {
		s.fail(w, monitorErrStatus(err), "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"venue":   v.ID,
		"applied": len(us),
		"events":  toEventJSON(evs),
	})
}
