package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"indoorsq/internal/server"
	"indoorsq/internal/snapshot/bundle"
	"indoorsq/internal/spacegen"
	"indoorsq/internal/workload"
)

// TestHotSwapUnderLoad hammers the query endpoints from several goroutines
// while the main goroutine publishes 100 snapshot swaps through POST
// /v1/swap. Every query must complete against a consistent state: no 5xx,
// no encode errors, /v1/info always reports one of the two artifacts'
// venue names with a monotonically non-decreasing epoch, and the final
// epoch is initial + 100. Run under -race this also proves the single
// atomic-pointer publish needs no further synchronization on the query
// path.
func TestHotSwapUnderLoad(t *testing.T) {
	sp, err := spacegen.Generate(42, spacegen.Params{
		Floors: 2, Rows: 2, Cols: 3, ExtraDoors: 3, Objects: 16,
	}.Normalize())
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.Build("swap-A", sp, bundle.Options{
		Gamma: 4, Engines: []string{"IDModel", "CIndex"},
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.isq")
	pathB := filepath.Join(dir, "b.isq")
	if err := b.WriteFile(pathA, true); err != nil {
		t.Fatal(err)
	}
	// Same space, same engines, different venue name: the name is excluded
	// from the fingerprint, so both artifacts are loadable, and which one is
	// serving is observable through /v1/info.
	b.Name = "swap-B"
	if err := b.WriteFile(pathB, true); err != nil {
		t.Fatal(err)
	}

	srv, err := server.NewFromBundle(b, "CIndex")
	if err != nil {
		t.Fatal(err)
	}
	objs := spacegen.Objects(sp, 7, 16)
	srv.State().SetObjects(objs)
	handler := srv.Handler()
	pts := workload.New(sp, 99).Points(4)

	const swaps = 100
	done := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	report := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var lastEpoch uint64
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				p := pts[i%len(pts)]
				q := pts[(i+1)%len(pts)]
				var url string
				switch i % 4 {
				case 0:
					url = fmt.Sprintf("/v1/range?x=%g&y=%g&floor=%d&r=30", p.X, p.Y, p.Floor)
				case 1:
					url = fmt.Sprintf("/v1/knn?x=%g&y=%g&floor=%d&k=3", p.X, p.Y, p.Floor)
				case 2:
					url = fmt.Sprintf("/v1/route?x=%g&y=%g&floor=%d&x2=%g&y2=%g&floor2=%d",
						p.X, p.Y, p.Floor, q.X, q.Y, q.Floor)
				case 3:
					url = "/v1/info"
				}
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
				// 200 is the expected answer; 422 is a legitimately
				// unanswerable query (point outside any partition). Anything
				// else — especially a 5xx — is a swap-induced failure.
				if rec.Code != http.StatusOK && rec.Code != http.StatusUnprocessableEntity {
					report("worker %d: %s -> %d: %s", g, url, rec.Code, rec.Body.String())
					return
				}
				if i%4 == 3 && rec.Code == http.StatusOK {
					var info struct {
						Venue string `json:"venue"`
						Epoch uint64 `json:"epoch"`
						Doors int    `json:"doors"`
					}
					if err := json.NewDecoder(rec.Body).Decode(&info); err != nil {
						report("worker %d: info decode: %v", g, err)
						return
					}
					if info.Venue != "swap-A" && info.Venue != "swap-B" {
						report("worker %d: mixed-state venue %q", g, info.Venue)
						return
					}
					if info.Doors != sp.NumDoors() {
						report("worker %d: info doors %d, want %d", g, info.Doors, sp.NumDoors())
						return
					}
					if info.Epoch < lastEpoch {
						report("worker %d: epoch went backwards %d -> %d", g, lastEpoch, info.Epoch)
						return
					}
					lastEpoch = info.Epoch
				}
			}
		}(g)
	}

	initial := srv.Epoch()
	for i := 0; i < swaps; i++ {
		path := pathA
		if i%2 == 0 {
			path = pathB
		}
		body := strings.NewReader(fmt.Sprintf(`{"path":%q}`, path))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/swap", body))
		if rec.Code != http.StatusOK {
			t.Fatalf("swap %d: %d: %s", i, rec.Code, rec.Body.String())
		}
		var resp struct {
			Epoch  uint64 `json:"epoch"`
			Origin string `json:"origin"`
		}
		if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
			t.Fatalf("swap %d: decode: %v", i, err)
		}
		if resp.Epoch != initial+uint64(i)+1 {
			t.Fatalf("swap %d: epoch %d, want %d", i, resp.Epoch, initial+uint64(i)+1)
		}
		if resp.Origin != "snapshot" {
			t.Fatalf("swap %d: origin %q", i, resp.Origin)
		}
	}
	close(done)
	wg.Wait()

	if len(failures) > 0 {
		t.Fatalf("%d query failures during swaps, first: %s", len(failures), failures[0])
	}
	if got := srv.Epoch(); got != initial+swaps {
		t.Fatalf("final epoch %d, want %d", got, initial+swaps)
	}
	if n := srv.EncodeErrors(); n != 0 {
		t.Fatalf("%d encode errors", n)
	}
	// The swapped-in state carried the serving POI set over.
	if len(srv.State().Objects) != len(objs) {
		t.Fatalf("objects not carried across swap: %d, want %d", len(srv.State().Objects), len(objs))
	}
}

// TestSwapRejectsBadArtifacts pins the failure paths: a missing file, a
// missing configured path, and an artifact lacking the serving default all
// leave the current state untouched.
func TestSwapRejectsBadArtifacts(t *testing.T) {
	sp, err := spacegen.Generate(43, spacegen.Params{Rows: 1, Cols: 2}.Normalize())
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.Build("v", sp, bundle.Options{Gamma: 4, Engines: []string{"CIndex"}})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewFromBundle(b, "CIndex")
	if err != nil {
		t.Fatal(err)
	}
	handler := srv.Handler()
	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/swap", strings.NewReader(body)))
		return rec
	}
	if rec := post(`{"path":"/nonexistent/x.isq"}`); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("missing file: %d", rec.Code)
	}
	if rec := post(``); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("no configured path: %d", rec.Code)
	}
	// An artifact that lacks the serving default engine is refused.
	dir := t.TempDir()
	b2, err := bundle.Build("v2", sp, bundle.Options{Gamma: 4, Engines: []string{"IDModel"}})
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "m.isq")
	if err := b2.WriteFile(p, false); err != nil {
		t.Fatal(err)
	}
	if rec := post(fmt.Sprintf(`{"path":%q}`, p)); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("missing default engine: %d", rec.Code)
	}
	if srv.Epoch() != 1 {
		t.Fatalf("failed swaps advanced the epoch to %d", srv.Epoch())
	}
	if srv.State().Name != "v" {
		t.Fatalf("failed swap replaced the state with %q", srv.State().Name)
	}
}
