package temporal

import (
	"math/rand"
	"testing"

	"indoorsq/internal/idmodel"
	"indoorsq/internal/indoor"
	"indoorsq/internal/testspaces"
)

// randomSchedule closes assorted doors over assorted interval shapes,
// including permanently closed (no intervals) and split-day entries.
func randomSchedule(rng *rand.Rand, doors int) *Schedule {
	sch := NewSchedule()
	for d := 0; d < doors; d++ {
		switch rng.Intn(4) {
		case 0: // unscheduled: always open
		case 1:
			sch.Set(indoor.DoorID(d)) // permanently closed
		case 2:
			o := rng.Float64() * 20
			sch.Set(indoor.DoorID(d), Interval{Open: o, Close: o + rng.Float64()*6})
		case 3:
			sch.Set(indoor.DoorID(d),
				Interval{Open: 6, Close: 10 + rng.Float64()*2},
				Interval{Open: 14, Close: 18})
		}
	}
	return sch
}

// TestAtMatchesOpenAt pins the materialized bitset filter to the interval
// table it was evaluated from, including doors beyond the bitset (door ids
// the schedule never mentions must stay open).
func TestAtMatchesOpenAt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		const doors = 150
		sch := randomSchedule(rng, doors)
		for _, hour := range []float64{0, 5.99, 9, 13.5, 17, 23.99, rng.Float64() * 24} {
			at := sch.At(hour)
			lookup := sch.atLookup(hour)
			for d := 0; d < doors+200; d++ { // +200: past the bitset
				id := indoor.DoorID(d)
				want := sch.OpenAt(id, hour)
				if got := at(id); got != want {
					t.Fatalf("trial %d hour %g door %d: At = %v, OpenAt = %v",
						trial, hour, d, got, want)
				}
				if got := lookup(id); got != want {
					t.Fatalf("trial %d hour %g door %d: atLookup = %v, OpenAt = %v",
						trial, hour, d, got, want)
				}
			}
		}
	}
}

// TestSetHourReuse checks the incremental rebuild: moving the hour within
// one opening regime keeps the filter, base view and reachability summary;
// crossing a schedule boundary swaps them.
func TestSetHourReuse(t *testing.T) {
	f := testspaces.NewStrip()
	sch := NewSchedule()
	sch.Set(f.D1, Interval{Open: 9, Close: 17})

	e := NewIDModel(idmodel.New(f.Space), sch, 10)
	r0, b0 := e.r, e.base
	e.SetHour(16.5) // same regime: D1 still open
	if e.r != r0 || e.base != b0 {
		t.Fatal("SetHour within one regime must keep the summary and base view")
	}
	if e.Hour() != 16.5 {
		t.Fatalf("Hour = %g", e.Hour())
	}
	e.SetHour(18) // D1 closes: new closed set
	if e.r == r0 || e.base == b0 {
		t.Fatal("SetHour across a schedule boundary must rebuild")
	}
	r1 := e.r
	e.SetHour(23) // D1 still closed: same closed set again
	if e.r != r1 {
		t.Fatal("SetHour with an identical closed set must not rebuild")
	}
}

// BenchmarkDoorFilter compares the two filter implementations the way the
// engines use them: one schedule evaluation, then a call per edge visit.
func BenchmarkDoorFilter(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const doors = 2000
	sch := randomSchedule(rng, doors)
	ids := make([]indoor.DoorID, 4096)
	for i := range ids {
		ids[i] = indoor.DoorID(rng.Intn(doors))
	}
	b.Run("bitset", func(b *testing.B) {
		open := sch.At(13)
		n := 0
		for i := 0; i < b.N; i++ {
			if open(ids[i&4095]) {
				n++
			}
		}
		_ = n
	})
	b.Run("map", func(b *testing.B) {
		open := sch.atLookup(13)
		n := 0
		for i := 0; i < b.N; i++ {
			if open(ids[i&4095]) {
				n++
			}
		}
		_ = n
	})
}
