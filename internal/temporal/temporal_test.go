package temporal_test

import (
	"math"
	"testing"

	"indoorsq/internal/cindex"
	"indoorsq/internal/idmodel"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/temporal"
	"indoorsq/internal/testspaces"
)

func TestScheduleBasics(t *testing.T) {
	sch := temporal.NewSchedule()
	d := indoor.DoorID(3)
	if !sch.OpenAt(d, 12) {
		t.Fatal("unscheduled door must be open")
	}
	sch.Set(d, temporal.Interval{Open: 9, Close: 17})
	if !sch.OpenAt(d, 9) || !sch.OpenAt(d, 16.99) {
		t.Fatal("door should be open during business hours")
	}
	if sch.OpenAt(d, 8.99) || sch.OpenAt(d, 17) || sch.OpenAt(d, 23) {
		t.Fatal("door should be closed outside business hours")
	}
	// Two intervals.
	sch.Set(d, temporal.Interval{Open: 8, Close: 12}, temporal.Interval{Open: 14, Close: 18})
	if !sch.OpenAt(d, 10) || sch.OpenAt(d, 13) || !sch.OpenAt(d, 15) {
		t.Fatal("split schedule misbehaves")
	}
	// No intervals = permanently closed.
	sch.Set(d)
	if sch.OpenAt(d, 10) {
		t.Fatal("door with empty schedule must be closed")
	}
	sch.Clear(d)
	if !sch.OpenAt(d, 3) {
		t.Fatal("cleared door must be open again")
	}
	if sch.Len() != 0 {
		t.Fatalf("Len = %d", sch.Len())
	}
}

// stripEngines builds the two temporal-capable engines over the strip.
func stripEngines(f *testspaces.Strip, sch *temporal.Schedule, hour float64) []query.Engine {
	return []query.Engine{
		temporal.NewIDModel(idmodel.New(f.Space), sch, hour),
		temporal.NewCIndex(cindex.New(f.Space), sch, hour),
	}
}

func TestClosedDoorForcesDetour(t *testing.T) {
	f := testspaces.NewStrip()
	sch := temporal.NewSchedule()
	// The one-way shortcut D8 (R6 -> R7) is only open 9:00-17:00.
	sch.Set(f.D8, temporal.Interval{Open: 9, Close: 17})

	p6 := indoor.At(7, 2, 0)  // R6
	p7 := indoor.At(15, 2, 0) // R7
	direct := 8.0
	detour := math.Sqrt(0.25+4) + 7.5 + 2 // via D6, hall, D7

	for _, hour := range []float64{12, 22} {
		for _, e := range stripEngines(f, sch, hour) {
			e.SetObjects(nil)
			var st query.Stats
			path, err := e.SPD(p6, p7, &st)
			if err != nil {
				t.Fatalf("%s @%g: %v", e.Name(), hour, err)
			}
			want := direct
			if hour == 22 {
				want = detour
			}
			if math.Abs(path.Dist-want) > 1e-9 {
				t.Fatalf("%s @%g: dist = %g, want %g", e.Name(), hour, path.Dist, want)
			}
		}
	}
}

func TestClosedDoorsIsolateRoom(t *testing.T) {
	f := testspaces.NewStrip()
	sch := temporal.NewSchedule()
	// R1's only door D1 is closed at night.
	sch.Set(f.D1, temporal.Interval{Open: 6, Close: 22})

	objs := []query.Object{
		{ID: 1, Loc: indoor.At(2.5, 9, 0), Part: f.R1},
		{ID: 2, Loc: indoor.At(10, 5, 0), Part: f.Hall},
	}
	pHall := indoor.At(2.5, 5, 0)
	for _, e := range stripEngines(f, sch, 23) { // closed
		e.SetObjects(objs)
		var st query.Stats
		ids, err := e.Range(pHall, 1000, &st)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 1 || ids[0] != 2 {
			t.Fatalf("%s: Range through closed door = %v", e.Name(), ids)
		}
		nn, err := e.KNN(pHall, 5, &st)
		if err != nil {
			t.Fatal(err)
		}
		if len(nn) != 1 || nn[0].ID != 2 {
			t.Fatalf("%s: KNN through closed door = %v", e.Name(), nn)
		}
		if _, err := e.SPD(pHall, indoor.At(2.5, 9, 0), &st); err != query.ErrUnreachable {
			t.Fatalf("%s: SPD into closed room err = %v", e.Name(), err)
		}
	}
	// During the day everything is reachable again.
	for _, e := range stripEngines(f, sch, 12) {
		e.SetObjects(objs)
		var st query.Stats
		ids, err := e.Range(pHall, 1000, &st)
		if err != nil || len(ids) != 2 {
			t.Fatalf("%s: daytime Range = %v, %v", e.Name(), ids, err)
		}
	}
}

func TestTemporalViewSharesObjects(t *testing.T) {
	f := testspaces.NewStrip()
	base := idmodel.New(f.Space)
	base.SetObjects([]query.Object{{ID: 1, Loc: indoor.At(10, 5, 0), Part: f.Hall}})
	sch := temporal.NewSchedule()
	e := temporal.NewIDModel(base, sch, 12)
	var st query.Stats
	nn, err := e.KNN(indoor.At(1, 5, 0), 1, &st)
	if err != nil || len(nn) != 1 {
		t.Fatalf("temporal view does not see base objects: %v, %v", nn, err)
	}
	if e.Hour() != 12 {
		t.Fatalf("Hour = %g", e.Hour())
	}
	if e.Name() != "IDModel@t" {
		t.Fatalf("Name = %q", e.Name())
	}
	if e.SizeBytes() < base.SizeBytes() {
		t.Fatal("temporal view size must include the base")
	}
}

// TestTemporalCrossEngine checks that both temporal-capable engines agree
// under randomized schedules on randomized spaces.
func TestTemporalCrossEngine(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		sp := testspaces.RandomGrid(seed, 4, 4, 2, 6, 0.2)
		sch := temporal.NewSchedule()
		// Close every third door at night.
		for d := 0; d < sp.NumDoors(); d += 3 {
			sch.Set(indoor.DoorID(d), temporal.Interval{Open: 8, Close: 20})
		}
		base1 := idmodel.New(sp)
		base2 := cindex.New(sp)
		var objs []query.Object
		for i := 0; i < sp.NumPartitions(); i += 2 {
			v := sp.Partition(indoor.PartitionID(i))
			if v.Kind == indoor.Staircase {
				continue
			}
			c := v.MBR.Center()
			objs = append(objs, query.Object{
				ID: int32(len(objs)), Loc: indoor.At(c.X, c.Y, v.Floor), Part: v.ID,
			})
		}
		for _, hour := range []float64{12, 23} {
			a := temporal.NewIDModel(base1, sch, hour)
			b := temporal.NewCIndex(base2, sch, hour)
			a.SetObjects(objs)
			b.SetObjects(objs)
			var st query.Stats
			pts := []indoor.Point{indoor.At(5, 5, 0), indoor.At(25, 25, 0), indoor.At(15, 5, 1)}
			for _, p := range pts {
				ra, err1 := a.Range(p, 50, &st)
				rb, err2 := b.Range(p, 50, &st)
				if (err1 == nil) != (err2 == nil) || len(ra) != len(rb) {
					t.Fatalf("seed %d hour %g: Range disagree at %v: %v/%v vs %v/%v",
						seed, hour, p, ra, err1, rb, err2)
				}
				for i := range ra {
					if ra[i] != rb[i] {
						t.Fatalf("seed %d hour %g: Range ids differ at %v", seed, hour, p)
					}
				}
				for _, q := range pts {
					pa, err1 := a.SPD(p, q, &st)
					pb, err2 := b.SPD(p, q, &st)
					if (err1 == nil) != (err2 == nil) {
						t.Fatalf("seed %d hour %g: SPD err disagree %v->%v: %v vs %v",
							seed, hour, p, q, err1, err2)
					}
					if err1 == nil && math.Abs(pa.Dist-pb.Dist) > 1e-6 {
						t.Fatalf("seed %d hour %g: SPD %v->%v: %g vs %g",
							seed, hour, p, q, pa.Dist, pb.Dist)
					}
				}
			}
			// Night must be no better than day for any pair (closing doors
			// cannot shorten paths).
			if hour == 23 {
				day := temporal.NewIDModel(base1, sch, 12)
				day.SetObjects(objs)
				for _, p := range pts {
					for _, q := range pts {
						nightPath, err1 := a.SPD(p, q, &st)
						dayPath, err2 := day.SPD(p, q, &st)
						if err2 != nil {
							continue
						}
						if err1 == nil && nightPath.Dist < dayPath.Dist-1e-9 {
							t.Fatalf("closing doors shortened %v->%v: %g < %g",
								p, q, nightPath.Dist, dayPath.Dist)
						}
					}
				}
			}
		}
	}
}
