// Package temporal implements the temporal-variation extension of the
// paper's Sec. 7: doors may have open/close hours, and queries evaluated at
// a given time of day only traverse doors that are open then. As Table 6
// notes, this extension fits the engines without distance precomputation —
// IDMODEL (schedule table attached to the accessibility base graph) and
// CINDEX (attached to the topological layer) — whereas IDINDEX and
// IP/VIP-TREE would have to invalidate their precomputed matrices on every
// schedule change.
package temporal

import (
	"context"
	"sort"

	"indoorsq/internal/cindex"
	"indoorsq/internal/idmodel"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
)

// Interval is a daily open period [Open, Close) in hours of day.
// Intervals with Close <= Open are empty.
type Interval struct {
	Open, Close float64
}

// Contains reports whether hour falls inside the interval.
func (iv Interval) Contains(hour float64) bool {
	return hour >= iv.Open && hour < iv.Close
}

// Schedule maps doors to their daily open intervals. Doors without an entry
// are always open — matching how a venue's schedule table only lists doors
// with restrictions.
type Schedule struct {
	byDoor map[indoor.DoorID][]Interval
}

// NewSchedule returns an empty schedule.
func NewSchedule() *Schedule {
	return &Schedule{byDoor: make(map[indoor.DoorID][]Interval)}
}

// Set assigns the daily open intervals of door d, replacing any previous
// entry. Setting no intervals makes the door permanently closed.
func (s *Schedule) Set(d indoor.DoorID, ivs ...Interval) {
	sorted := append([]Interval(nil), ivs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Open < sorted[j].Open })
	s.byDoor[d] = sorted
}

// Clear removes door d's entry, making it always open again.
func (s *Schedule) Clear(d indoor.DoorID) { delete(s.byDoor, d) }

// OpenAt reports whether door d is open at the given hour of day.
func (s *Schedule) OpenAt(d indoor.DoorID, hour float64) bool {
	ivs, ok := s.byDoor[d]
	if !ok {
		return true
	}
	for _, iv := range ivs {
		if iv.Contains(hour) {
			return true
		}
	}
	return false
}

// At returns the door filter for one hour of day.
func (s *Schedule) At(hour float64) func(indoor.DoorID) bool {
	return func(d indoor.DoorID) bool { return s.OpenAt(d, hour) }
}

// Len returns the number of doors with schedule entries.
func (s *Schedule) Len() int { return len(s.byDoor) }

// Engine answers the four indoor spatial query types at a given time of
// day over a schedule-aware base engine (IDMODEL or CINDEX).
type Engine struct {
	base query.Engine
	sch  *Schedule
	hour float64
}

// NewIDModel wraps an IDMODEL with a door schedule evaluated at hour.
func NewIDModel(m *idmodel.Model, sch *Schedule, hour float64) *Engine {
	return &Engine{base: m.WithOpen(sch.At(hour)), sch: sch, hour: hour}
}

// NewCIndex wraps a CINDEX with a door schedule evaluated at hour.
func NewCIndex(ix *cindex.Index, sch *Schedule, hour float64) *Engine {
	return &Engine{base: ix.WithOpen(sch.At(hour)), sch: sch, hour: hour}
}

// Hour returns the evaluation time of day.
func (e *Engine) Hour() float64 { return e.hour }

// Name implements query.Engine.
func (e *Engine) Name() string { return e.base.Name() + "@t" }

// SetObjects implements query.Engine.
func (e *Engine) SetObjects(objs []query.Object) { e.base.SetObjects(objs) }

// Range implements query.Engine, ignoring doors closed at the engine hour.
func (e *Engine) Range(p indoor.Point, r float64, st *query.Stats) ([]int32, error) {
	return e.base.Range(p, r, st)
}

// KNN implements query.Engine, ignoring doors closed at the engine hour.
func (e *Engine) KNN(p indoor.Point, k int, st *query.Stats) ([]query.Neighbor, error) {
	return e.base.KNN(p, k, st)
}

// SPD implements query.Engine, routing only through doors open at the
// engine hour.
func (e *Engine) SPD(p, q indoor.Point, st *query.Stats) (query.Path, error) {
	return e.base.SPD(p, q, st)
}

// RangeCtx implements query.EngineCtx: the context-aware entry points of
// the base engine's open-door view are reached through query.AsCtx, so the
// schedule filter and cancellation compose.
func (e *Engine) RangeCtx(ctx context.Context, p indoor.Point, r float64, st *query.Stats) ([]int32, error) {
	return query.AsCtx(e.base).RangeCtx(ctx, p, r, st)
}

// KNNCtx implements query.EngineCtx.
func (e *Engine) KNNCtx(ctx context.Context, p indoor.Point, k int, st *query.Stats) ([]query.Neighbor, error) {
	return query.AsCtx(e.base).KNNCtx(ctx, p, k, st)
}

// SPDCtx implements query.EngineCtx.
func (e *Engine) SPDCtx(ctx context.Context, p, q indoor.Point, st *query.Stats) (query.Path, error) {
	return query.AsCtx(e.base).SPDCtx(ctx, p, q, st)
}

// SizeBytes implements query.Engine; the schedule table is tiny.
func (e *Engine) SizeBytes() int64 {
	return e.base.SizeBytes() + int64(e.sch.Len())*40
}
