// Package temporal implements the temporal-variation extension of the
// paper's Sec. 7: doors may have open/close hours, and queries evaluated at
// a given time of day only traverse doors that are open then. As Table 6
// notes, this extension fits the engines without distance precomputation —
// IDMODEL (schedule table attached to the accessibility base graph) and
// CINDEX (attached to the topological layer) — whereas IDINDEX and
// IP/VIP-TREE would have to invalidate their precomputed matrices on every
// schedule change.
//
// The door filter handed to the engines is materialized per hour: the
// schedule's interval table is evaluated once into a closed-door bitset, so
// every edge visit of a sweep costs one word test instead of a map lookup
// plus an interval scan (BenchmarkDoorFilter measures the difference). The
// same hourly evaluation also rebuilds a reachability condensation
// (internal/reach) under the filter, so queries at that hour prune against
// summaries that already know which wings the schedule closed.
package temporal

import (
	"context"
	"sort"

	"indoorsq/internal/cindex"
	"indoorsq/internal/idmodel"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/reach"
)

// Interval is a daily open period [Open, Close) in hours of day.
// Intervals with Close <= Open are empty.
type Interval struct {
	Open, Close float64
}

// Contains reports whether hour falls inside the interval.
func (iv Interval) Contains(hour float64) bool {
	return hour >= iv.Open && hour < iv.Close
}

// Schedule maps doors to their daily open intervals. Doors without an entry
// are always open — matching how a venue's schedule table only lists doors
// with restrictions.
type Schedule struct {
	byDoor map[indoor.DoorID][]Interval
}

// NewSchedule returns an empty schedule.
func NewSchedule() *Schedule {
	return &Schedule{byDoor: make(map[indoor.DoorID][]Interval)}
}

// Set assigns the daily open intervals of door d, replacing any previous
// entry. Setting no intervals makes the door permanently closed.
func (s *Schedule) Set(d indoor.DoorID, ivs ...Interval) {
	sorted := append([]Interval(nil), ivs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Open < sorted[j].Open })
	s.byDoor[d] = sorted
}

// Clear removes door d's entry, making it always open again.
func (s *Schedule) Clear(d indoor.DoorID) { delete(s.byDoor, d) }

// OpenAt reports whether door d is open at the given hour of day.
func (s *Schedule) OpenAt(d indoor.DoorID, hour float64) bool {
	ivs, ok := s.byDoor[d]
	if !ok {
		return true
	}
	for _, iv := range ivs {
		if iv.Contains(hour) {
			return true
		}
	}
	return false
}

// closedBits evaluates the whole schedule at one hour into a bitset of
// closed doors, sized by the highest closed door id. The result is
// independent of map iteration order (bits are ORed in).
func (s *Schedule) closedBits(hour float64) []uint64 {
	var bits []uint64
	for d, ivs := range s.byDoor {
		open := false
		for _, iv := range ivs {
			if iv.Contains(hour) {
				open = true
				break
			}
		}
		if open {
			continue
		}
		w := int(d) >> 6
		for len(bits) <= w {
			bits = append(bits, 0)
		}
		bits[w] |= 1 << (uint(d) & 63)
	}
	return bits
}

// openFunc wraps a closed-door bitset as the engines' door filter: one
// bounds check and one word test per call. Doors beyond the bitset have no
// (closed) schedule entry and are open.
func openFunc(closed []uint64) func(indoor.DoorID) bool {
	return func(d indoor.DoorID) bool {
		w := int(d) >> 6
		return w >= len(closed) || closed[w]&(1<<(uint(d)&63)) == 0
	}
}

// equalBits reports whether two closed-door bitsets are identical.
func equalBits(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// At returns the door filter for one hour of day, materialized from the
// interval table into a closed-door bitset so per-door evaluation is O(1).
func (s *Schedule) At(hour float64) func(indoor.DoorID) bool {
	return openFunc(s.closedBits(hour))
}

// atLookup is the pre-materialization filter — a map lookup plus interval
// scan per call. It answers identically to At and is kept as the baseline
// side of BenchmarkDoorFilter.
func (s *Schedule) atLookup(hour float64) func(indoor.DoorID) bool {
	return func(d indoor.DoorID) bool { return s.OpenAt(d, hour) }
}

// Len returns the number of doors with schedule entries.
func (s *Schedule) Len() int { return len(s.byDoor) }

// Engine answers the four indoor spatial query types at a given time of
// day over a schedule-aware base engine (IDMODEL or CINDEX). Moving the
// evaluation hour with SetHour re-materializes the door filter and, only
// when the closed-door set actually changed, rebuilds the filtered
// reachability condensation the base engine prunes with.
type Engine struct {
	m  *idmodel.Model // exactly one of m, ix is set
	ix *cindex.Index

	sch    *Schedule
	hour   float64
	closed []uint64
	r      *reach.Reach
	base   query.Engine
}

// NewIDModel wraps an IDMODEL with a door schedule evaluated at hour.
func NewIDModel(m *idmodel.Model, sch *Schedule, hour float64) *Engine {
	e := &Engine{m: m, sch: sch, hour: hour}
	e.rebuild(hour, true)
	return e
}

// NewCIndex wraps a CINDEX with a door schedule evaluated at hour.
func NewCIndex(ix *cindex.Index, sch *Schedule, hour float64) *Engine {
	e := &Engine{ix: ix, sch: sch, hour: hour}
	e.rebuild(hour, true)
	return e
}

// rebuild evaluates the schedule at hour. When the closed-door set is
// unchanged from the current one (and force is false) the existing filter,
// reachability summary and base view are kept — moving the hour inside one
// opening regime costs only the bitset comparison.
func (e *Engine) rebuild(hour float64, force bool) {
	closed := e.sch.closedBits(hour)
	e.hour = hour
	if !force && equalBits(closed, e.closed) && e.base != nil {
		return
	}
	e.closed = closed
	open := openFunc(closed)
	if e.m != nil {
		e.r = reach.FromSpace(e.m.Space(), open, 0)
		e.base = e.m.WithOpenReach(open, e.r)
	} else {
		e.r = reach.FromSpace(e.ix.Space(), open, 0)
		e.base = e.ix.WithOpenReach(open, e.r)
	}
}

// SetHour moves the engine to a new evaluation time of day, reusing the
// materialized filter and reachability summary when the closed-door set at
// the new hour is identical.
func (e *Engine) SetHour(hour float64) { e.rebuild(hour, false) }

// Hour returns the evaluation time of day.
func (e *Engine) Hour() float64 { return e.hour }

// Reach returns the reachability summary built for the engine's current
// closed-door set.
func (e *Engine) Reach() *reach.Reach { return e.r }

// Name implements query.Engine.
func (e *Engine) Name() string { return e.base.Name() + "@t" }

// SetObjects implements query.Engine.
func (e *Engine) SetObjects(objs []query.Object) { e.base.SetObjects(objs) }

// Range implements query.Engine, ignoring doors closed at the engine hour.
func (e *Engine) Range(p indoor.Point, r float64, st *query.Stats) ([]int32, error) {
	return e.base.Range(p, r, st)
}

// KNN implements query.Engine, ignoring doors closed at the engine hour.
func (e *Engine) KNN(p indoor.Point, k int, st *query.Stats) ([]query.Neighbor, error) {
	return e.base.KNN(p, k, st)
}

// SPD implements query.Engine, routing only through doors open at the
// engine hour.
func (e *Engine) SPD(p, q indoor.Point, st *query.Stats) (query.Path, error) {
	return e.base.SPD(p, q, st)
}

// RangeCtx implements query.EngineCtx: the context-aware entry points of
// the base engine's open-door view are reached through query.AsCtx, so the
// schedule filter and cancellation compose.
func (e *Engine) RangeCtx(ctx context.Context, p indoor.Point, r float64, st *query.Stats) ([]int32, error) {
	return query.AsCtx(e.base).RangeCtx(ctx, p, r, st)
}

// KNNCtx implements query.EngineCtx.
func (e *Engine) KNNCtx(ctx context.Context, p indoor.Point, k int, st *query.Stats) ([]query.Neighbor, error) {
	return query.AsCtx(e.base).KNNCtx(ctx, p, k, st)
}

// SPDCtx implements query.EngineCtx.
func (e *Engine) SPDCtx(ctx context.Context, p, q indoor.Point, st *query.Stats) (query.Path, error) {
	return query.AsCtx(e.base).SPDCtx(ctx, p, q, st)
}

// SizeBytes implements query.Engine: the base engine plus the schedule
// table, the materialized bitset and the hourly reachability summary.
func (e *Engine) SizeBytes() int64 {
	return e.base.SizeBytes() + int64(e.sch.Len())*40 +
		int64(len(e.closed))*8 + e.r.SizeBytes()
}
