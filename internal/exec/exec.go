// Package exec is the concurrent batch query executor: it fans a slice of
// queries (RQ / kNNQ / SPDQ) over one engine across a bounded worker pool.
// Engines are read-only at query time (verified by the race-detector suite
// in internal/enginetest), so the only shared mutable state is the cost
// accounting — each worker accumulates into its own query.Stats shard, and
// the shards are merged once the batch drains, keeping the hot path free of
// locks and the merged counters equal to a sequential run's.
package exec

import (
	"runtime"
	"sync"
	"time"

	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
)

// Kind selects the query type of an Op.
type Kind int

// The three query types the executor understands.
const (
	RangeQ Kind = iota // Range(P, R)
	KNNQ               // KNN(P, K)
	SPDQ               // SPD(P, Q)
)

// Op is one query of a batch.
type Op struct {
	Kind Kind
	P, Q indoor.Point // Q is the SPDQ target; unused otherwise
	R    float64      // RangeQ radius
	K    int          // KNNQ k
}

// Result is the outcome of one Op; exactly one of IDs / Neighbors / Path is
// populated according to the Op's Kind (unless Err is set).
type Result struct {
	IDs       []int32
	Neighbors []query.Neighbor
	Path      query.Path
	Err       error
	Stats     query.Stats   // this query's own counters
	Elapsed   time.Duration // this query's own latency
}

// Batch aggregates one executed batch.
type Batch struct {
	Stats     query.Stats   // merged worker shards (== sequential sums)
	Wall      time.Duration // wall-clock time of the whole batch
	QueryTime time.Duration // summed per-query latencies across workers
}

// Pool runs batches with at most Workers concurrent queries (<= 0 means
// GOMAXPROCS). The zero value is ready to use.
type Pool struct {
	Workers int
}

// workers resolves the effective worker count for a batch of n items.
func (p *Pool) workers(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes ops against eng. Results are indexed like ops regardless of
// scheduling, so the output is deterministic for deterministic engines.
func (p *Pool) Run(eng query.Engine, ops []Op) ([]Result, Batch) {
	results := make([]Result, len(ops))
	start := time.Now()
	merged, _ := p.Map(len(ops), func(i int, st *query.Stats) error {
		r := &results[i]
		var own query.Stats
		t0 := time.Now()
		switch ops[i].Kind {
		case RangeQ:
			r.IDs, r.Err = eng.Range(ops[i].P, ops[i].R, &own)
		case KNNQ:
			r.Neighbors, r.Err = eng.KNN(ops[i].P, ops[i].K, &own)
		case SPDQ:
			r.Path, r.Err = eng.SPD(ops[i].P, ops[i].Q, &own)
		}
		r.Elapsed = time.Since(t0)
		r.Stats = own
		st.Add(own)
		return nil // per-op errors live in the Result, not the batch
	})
	b := Batch{Stats: merged, Wall: time.Since(start)}
	for i := range results {
		b.QueryTime += results[i].Elapsed
	}
	return results, b
}

// Map runs fn(0) … fn(n-1) across the pool. Each invocation receives its
// worker's private Stats shard; the shards are merged into the returned
// Stats after all workers finish, so the totals match a sequential run.
// The returned error is the lowest-index non-nil error, independent of
// scheduling; later indexes still run (no cancellation).
func (p *Pool) Map(n int, fn func(i int, st *query.Stats) error) (query.Stats, error) {
	if n <= 0 {
		return query.Stats{}, nil
	}
	w := p.workers(n)
	if w == 1 {
		// Sequential fast path: no goroutines, same contract.
		var st query.Stats
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i, &st); err != nil && first == nil {
				first = err
			}
		}
		return st, first
	}

	shards := make([]query.Stats, w)
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int, w)
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(shard *query.Stats) {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i, shard)
			}
		}(&shards[wi])
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	var st query.Stats
	for i := range shards {
		st.Add(shards[i])
	}
	for _, err := range errs {
		if err != nil {
			return st, err
		}
	}
	return st, nil
}
