// Package exec is the concurrent batch query executor: it fans a slice of
// queries (RQ / kNNQ / SPDQ) over one engine across a bounded worker pool.
// Engines are read-only at query time (verified by the race-detector suite
// in internal/enginetest), so the only shared mutable state is the cost
// accounting — each worker accumulates into its own query.Stats shard, and
// the shards are merged once the batch drains, keeping the hot path free of
// locks and the merged counters equal to a sequential run's.
package exec

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"indoorsq/internal/indoor"
	"indoorsq/internal/obs"
	"indoorsq/internal/query"
)

// ErrInvalidOp marks an op rejected by up-front validation (negative or NaN
// range radius, non-positive k) before any engine work is spent on it.
var ErrInvalidOp = errors.New("exec: invalid op")

// Kind selects the query type of an Op.
type Kind int

// The three query types the executor understands.
const (
	RangeQ Kind = iota // Range(P, R)
	KNNQ               // KNN(P, K)
	SPDQ               // SPD(P, Q)
)

// Op is one query of a batch.
type Op struct {
	Kind Kind
	P, Q indoor.Point // Q is the SPDQ target; unused otherwise
	R    float64      // RangeQ radius
	K    int          // KNNQ k
}

// Result is the outcome of one Op; exactly one of IDs / Neighbors / Path is
// populated according to the Op's Kind (unless Err is set).
type Result struct {
	IDs       []int32
	Neighbors []query.Neighbor
	Path      query.Path
	Err       error
	Stats     query.Stats   // this query's own counters
	Elapsed   time.Duration // this query's own latency
}

// Batch aggregates one executed batch.
type Batch struct {
	Stats     query.Stats   // merged worker shards (== sequential sums)
	Wall      time.Duration // wall-clock time of the whole batch
	QueryTime time.Duration // summed per-query latencies across workers
	// Errs counts ops that finished with a non-nil Result.Err, including
	// validation rejects and cancellations.
	Errs int
	// Cancelled counts the subset of Errs caused by context cancellation,
	// deadline expiry, or budget exhaustion — ops that were interrupted
	// rather than answered.
	Cancelled int
}

// Pool runs batches with at most Workers concurrent queries (<= 0 means
// GOMAXPROCS). The zero value is ready to use.
type Pool struct {
	Workers int
	// FailFast cancels the remainder of a batch as soon as one op fails:
	// queued ops then return immediately with context.Canceled instead of
	// running to completion. Off by default — a batch normally answers every
	// op and reports per-op errors in the Results.
	FailFast bool
	// OpTimeout, when positive, bounds each op with its own deadline derived
	// from the batch context.
	OpTimeout time.Duration
	// Obs, when non-nil, is the metrics registry every op of a batch emits
	// into (per engine × query type, via the engines' Ctx entry points). It
	// composes with any obs binding already on the batch context: an
	// incoming trace is kept, the registry is overridden.
	Obs *obs.Registry
}

// validate rejects ops that could never produce an answer, so a worker is
// not burned on them.
func validate(op Op) error {
	switch op.Kind {
	case RangeQ:
		if math.IsNaN(op.R) || op.R < 0 {
			return fmt.Errorf("%w: range radius %v", ErrInvalidOp, op.R)
		}
	case KNNQ:
		if op.K <= 0 {
			return fmt.Errorf("%w: knn k %d", ErrInvalidOp, op.K)
		}
	}
	return nil
}

// interrupted reports whether err is an interruption (context cancellation,
// deadline expiry, or budget exhaustion) rather than a query failure.
func interrupted(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, query.ErrBudgetExhausted)
}

// workers resolves the effective worker count for a batch of n items.
func (p *Pool) workers(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes ops against eng. Results are indexed like ops regardless of
// scheduling, so the output is deterministic for deterministic engines.
func (p *Pool) Run(eng query.Engine, ops []Op) ([]Result, Batch) {
	return p.RunCtx(context.Background(), eng, ops)
}

// RunCtx is Run bounded by ctx: every op runs under a context derived from
// it (plus OpTimeout, when set), so cancelling ctx interrupts the whole
// batch mid-traversal. Interrupted and invalid ops report their error in
// their Result like any other per-op failure; the batch itself always
// completes and tallies them in Errs/Cancelled.
func (p *Pool) RunCtx(ctx context.Context, eng query.Engine, ops []Op) ([]Result, Batch) {
	if ctx == nil {
		ctx = context.Background()
	}
	if p.Obs != nil {
		ctx = obs.WithRegistry(ctx, p.Obs)
	}
	batchCtx := ctx
	var abort context.CancelFunc
	if p.FailFast {
		batchCtx, abort = context.WithCancel(ctx)
		defer abort()
	}
	ec := query.AsCtx(eng)
	results := make([]Result, len(ops))
	start := time.Now()
	merged, _ := p.MapCtx(batchCtx, len(ops), func(opCtx context.Context, i int, st *query.Stats) error {
		r := &results[i]
		if err := validate(ops[i]); err != nil {
			r.Err = err
			if abort != nil {
				abort()
			}
			return nil // per-op errors live in the Result, not the batch
		}
		done := func() {}
		if p.OpTimeout > 0 {
			opCtx, done = context.WithTimeout(opCtx, p.OpTimeout)
		}
		var own query.Stats
		t0 := time.Now()
		switch ops[i].Kind {
		case RangeQ:
			r.IDs, r.Err = ec.RangeCtx(opCtx, ops[i].P, ops[i].R, &own)
		case KNNQ:
			r.Neighbors, r.Err = ec.KNNCtx(opCtx, ops[i].P, ops[i].K, &own)
		case SPDQ:
			r.Path, r.Err = ec.SPDCtx(opCtx, ops[i].P, ops[i].Q, &own)
		}
		done()
		r.Elapsed = time.Since(t0)
		r.Stats = own
		st.Add(own)
		if r.Err != nil && abort != nil {
			abort()
		}
		return nil
	})
	b := Batch{Stats: merged, Wall: time.Since(start)}
	for i := range results {
		b.QueryTime += results[i].Elapsed
		if err := results[i].Err; err != nil {
			b.Errs++
			if interrupted(err) {
				b.Cancelled++
			}
		}
	}
	return results, b
}

// Map runs fn(0) … fn(n-1) across the pool. Each invocation receives its
// worker's private Stats shard; the shards are merged into the returned
// Stats after all workers finish, so the totals match a sequential run.
// The returned error is the lowest-index non-nil error, independent of
// scheduling; later indexes still run (no cancellation).
func (p *Pool) Map(n int, fn func(i int, st *query.Stats) error) (query.Stats, error) {
	if n <= 0 {
		return query.Stats{}, nil
	}
	w := p.workers(n)
	if w == 1 {
		// Sequential fast path: no goroutines, same contract.
		var st query.Stats
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i, &st); err != nil && first == nil {
				first = err
			}
		}
		return st, first
	}

	shards := make([]query.Stats, w)
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int, w)
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(shard *query.Stats) {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i, shard)
			}
		}(&shards[wi])
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	var st query.Stats
	for i := range shards {
		st.Add(shards[i])
	}
	for _, err := range errs {
		if err != nil {
			return st, err
		}
	}
	return st, nil
}

// MapCtx is Map with a context threaded to every invocation. It does not
// skip items itself: once ctx is cancelled each remaining fn call is
// expected to notice (engine ...Ctx entry points fail immediately on a
// cancelled context), which keeps Map's contract — every index runs, the
// lowest-index error wins — while the batch drains in microseconds.
func (p *Pool) MapCtx(ctx context.Context, n int, fn func(ctx context.Context, i int, st *query.Stats) error) (query.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return p.Map(n, func(i int, st *query.Stats) error { return fn(ctx, i, st) })
}
