package exec_test

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"indoorsq/internal/exec"
	"indoorsq/internal/query"
)

// TestValidateRejectsUpFront asserts invalid ops never reach the engine and
// are tallied as errors but not cancellations.
func TestValidateRejectsUpFront(t *testing.T) {
	eng, ops := testEngineAndOps()
	bad := append([]exec.Op{
		{Kind: exec.RangeQ, P: ops[0].P, R: math.NaN()},
		{Kind: exec.RangeQ, P: ops[0].P, R: -1},
		{Kind: exec.KNNQ, P: ops[0].P, K: 0},
		{Kind: exec.KNNQ, P: ops[0].P, K: -3},
	}, ops...)

	p := exec.Pool{Workers: 2}
	results, batch := p.Run(eng, bad)
	for i := 0; i < 4; i++ {
		if !errors.Is(results[i].Err, exec.ErrInvalidOp) {
			t.Errorf("op %d: err = %v, want exec.ErrInvalidOp", i, results[i].Err)
		}
		if results[i].Stats != (query.Stats{}) {
			t.Errorf("op %d: engine work was spent on an invalid op: %+v", i, results[i].Stats)
		}
	}
	for i := 4; i < len(bad); i++ {
		if results[i].Err != nil {
			t.Errorf("op %d: valid op failed: %v", i, results[i].Err)
		}
	}
	if batch.Errs != 4 || batch.Cancelled != 0 {
		t.Fatalf("batch tallies = %d errs / %d cancelled, want 4 / 0", batch.Errs, batch.Cancelled)
	}
}

// TestRunCtxCancelledBatch asserts a pre-cancelled context interrupts every
// op and the tallies say so.
func TestRunCtxCancelledBatch(t *testing.T) {
	eng, ops := testEngineAndOps()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	p := exec.Pool{Workers: 4}
	results, batch := p.RunCtx(ctx, eng, ops)
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("op %d: err = %v, want Canceled", i, r.Err)
		}
	}
	if batch.Errs != len(ops) || batch.Cancelled != len(ops) {
		t.Fatalf("batch tallies = %d errs / %d cancelled, want %d / %d",
			batch.Errs, batch.Cancelled, len(ops), len(ops))
	}
}

// TestFailFast asserts the first failure aborts the remainder of the batch.
func TestFailFast(t *testing.T) {
	eng, ops := testEngineAndOps()
	bad := append([]exec.Op{{Kind: exec.KNNQ, P: ops[0].P, K: 0}}, ops...)

	// Sequential, so ops after the invalid first one deterministically see
	// the aborted batch context.
	p := exec.Pool{Workers: 1, FailFast: true}
	results, batch := p.RunCtx(context.Background(), eng, bad)
	if !errors.Is(results[0].Err, exec.ErrInvalidOp) {
		t.Fatalf("op 0: err = %v, want exec.ErrInvalidOp", results[0].Err)
	}
	for i := 1; i < len(results); i++ {
		if !errors.Is(results[i].Err, context.Canceled) {
			t.Errorf("op %d: err = %v, want Canceled after fail-fast abort", i, results[i].Err)
		}
	}
	if batch.Errs != len(bad) || batch.Cancelled != len(bad)-1 {
		t.Fatalf("batch tallies = %d errs / %d cancelled, want %d / %d",
			batch.Errs, batch.Cancelled, len(bad), len(bad)-1)
	}

	// Without FailFast the same batch answers everything after the reject.
	p = exec.Pool{Workers: 1}
	_, batch = p.RunCtx(context.Background(), eng, bad)
	if batch.Errs != 1 || batch.Cancelled != 0 {
		t.Fatalf("non-fail-fast tallies = %d errs / %d cancelled, want 1 / 0",
			batch.Errs, batch.Cancelled)
	}
}

// TestOpTimeout asserts a hopeless per-op deadline interrupts each op
// individually while the batch still completes.
func TestOpTimeout(t *testing.T) {
	eng, ops := testEngineAndOps()
	p := exec.Pool{Workers: 2, OpTimeout: time.Nanosecond}
	results, batch := p.RunCtx(context.Background(), eng, ops)
	for i, r := range results {
		if !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Errorf("op %d: err = %v, want DeadlineExceeded", i, r.Err)
		}
	}
	if batch.Cancelled != len(ops) {
		t.Fatalf("batch.Cancelled = %d, want %d", batch.Cancelled, len(ops))
	}
}

// TestRunCtxBudget asserts a WithBudget context bounds every op of a batch.
func TestRunCtxBudget(t *testing.T) {
	eng, ops := testEngineAndOps()
	// Keep only cross-partition SPDQs, which must expand doors.
	var spds []exec.Op
	for _, op := range ops {
		if op.Kind == exec.SPDQ {
			spds = append(spds, op)
		}
	}
	ctx := query.WithBudget(context.Background(), query.Budget{MaxVisitedDoors: 1})
	p := exec.Pool{Workers: 2}
	results, batch := p.RunCtx(ctx, eng, spds)
	exhausted := 0
	for _, r := range results {
		if errors.Is(r.Err, query.ErrBudgetExhausted) {
			exhausted++
		}
	}
	if exhausted == 0 {
		t.Fatal("no exec.SPDQ hit the one-door budget")
	}
	if batch.Cancelled != exhausted {
		t.Fatalf("batch.Cancelled = %d, want %d", batch.Cancelled, exhausted)
	}
}

// TestMapCtxThreadsContext asserts MapCtx hands every invocation the batch
// context while preserving Map's run-everything contract.
func TestMapCtxThreadsContext(t *testing.T) {
	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, 42)
	p := exec.Pool{Workers: 3}
	var ran atomic.Int32
	_, err := p.MapCtx(ctx, 10, func(got context.Context, i int, st *query.Stats) error {
		if got.Value(key{}) != 42 {
			t.Errorf("item %d: context not threaded", i)
		}
		ran.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 10 {
		t.Fatalf("ran %d of 10 items", got)
	}
}
