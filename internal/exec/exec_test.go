package exec_test

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"indoorsq/internal/exec"
	"indoorsq/internal/idmodel"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/testspaces"
)

func testEngineAndOps() (query.Engine, []exec.Op) {
	sp := testspaces.RandomGrid(6, 4, 4, 2, 6, 0.25)
	eng := idmodel.New(sp)
	var objs []query.Object
	id := int32(0)
	for i := 0; i < sp.NumPartitions(); i++ {
		v := sp.Partition(indoor.PartitionID(i))
		if v.Kind == indoor.Staircase {
			continue
		}
		c := v.MBR.Center()
		objs = append(objs, query.Object{ID: id, Loc: indoor.At(c.X, c.Y, v.Floor), Part: v.ID})
		id++
	}
	eng.SetObjects(objs)

	pts := []indoor.Point{
		indoor.At(5, 5, 0), indoor.At(15, 25, 0), indoor.At(25, 15, 1),
		indoor.At(35, 5, 1), indoor.At(5, 35, 0),
	}
	var ops []exec.Op
	for i, p := range pts {
		ops = append(ops,
			exec.Op{Kind: exec.RangeQ, P: p, R: 30},
			exec.Op{Kind: exec.KNNQ, P: p, K: 4},
			exec.Op{Kind: exec.SPDQ, P: p, Q: pts[(i+1)%len(pts)]})
	}
	return eng, ops
}

// TestRunMatchesSequential asserts the concurrent batch returns the same
// answers and the same merged Stats as running the ops one by one.
func TestRunMatchesSequential(t *testing.T) {
	eng, ops := testEngineAndOps()

	// Sequential reference.
	var seqStats query.Stats
	type ref struct {
		ids  []int32
		nn   []query.Neighbor
		dist float64
		err  error
	}
	refs := make([]ref, len(ops))
	for i, op := range ops {
		var st query.Stats
		switch op.Kind {
		case exec.RangeQ:
			refs[i].ids, refs[i].err = eng.Range(op.P, op.R, &st)
		case exec.KNNQ:
			refs[i].nn, refs[i].err = eng.KNN(op.P, op.K, &st)
		case exec.SPDQ:
			var path query.Path
			path, refs[i].err = eng.SPD(op.P, op.Q, &st)
			refs[i].dist = path.Dist
		}
		seqStats.Add(st)
	}

	for _, workers := range []int{1, 4} {
		p := exec.Pool{Workers: workers}
		results, batch := p.Run(eng, ops)
		if len(results) != len(ops) {
			t.Fatalf("workers=%d: %d results for %d ops", workers, len(results), len(ops))
		}
		for i, r := range results {
			if (r.Err == nil) != (refs[i].err == nil) {
				t.Fatalf("workers=%d op %d: err %v vs reference %v", workers, i, r.Err, refs[i].err)
			}
			switch ops[i].Kind {
			case exec.RangeQ:
				if fmt.Sprint(r.IDs) != fmt.Sprint(refs[i].ids) {
					t.Fatalf("workers=%d op %d: Range %v != %v", workers, i, r.IDs, refs[i].ids)
				}
			case exec.KNNQ:
				if len(r.Neighbors) != len(refs[i].nn) {
					t.Fatalf("workers=%d op %d: KNN size mismatch", workers, i)
				}
				for j := range r.Neighbors {
					if math.Abs(r.Neighbors[j].Dist-refs[i].nn[j].Dist) > 1e-9 {
						t.Fatalf("workers=%d op %d: KNN dist mismatch", workers, i)
					}
				}
			case exec.SPDQ:
				if r.Err == nil && math.Abs(r.Path.Dist-refs[i].dist) > 1e-9 {
					t.Fatalf("workers=%d op %d: SPD %g != %g", workers, i, r.Path.Dist, refs[i].dist)
				}
			}
		}
		// Merged shards must equal the sequential sums exactly.
		if batch.Stats != seqStats {
			t.Fatalf("workers=%d: merged stats %+v != sequential %+v", workers, batch.Stats, seqStats)
		}
		// And the merged counters must equal the sum of per-op stats.
		var fromOps query.Stats
		for _, r := range results {
			fromOps.Add(r.Stats)
		}
		if batch.Stats != fromOps {
			t.Fatalf("workers=%d: merged stats %+v != per-op sum %+v", workers, batch.Stats, fromOps)
		}
		if batch.QueryTime <= 0 || batch.Wall <= 0 {
			t.Fatalf("workers=%d: non-positive timings %+v", workers, batch)
		}
	}
}

// TestMapShardsMergeExactly asserts worker-sharded Stats fold to the exact
// sequential totals.
func TestMapShardsMergeExactly(t *testing.T) {
	const n = 137
	for _, workers := range []int{1, 3, 16} {
		p := exec.Pool{Workers: workers}
		st, err := p.Map(n, func(i int, st *query.Stats) error {
			st.Door()
			st.Alloc(int64(i))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if st.VisitedDoors != n || st.WorkBytes != int64(n*(n-1)/2) {
			t.Fatalf("workers=%d: merged %+v, want %d doors / %d bytes",
				workers, st, n, n*(n-1)/2)
		}
	}
}

// TestMapFirstErrorDeterministic asserts the reported error is the
// lowest-index failure regardless of scheduling, and that later items
// still run.
func TestMapFirstErrorDeterministic(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 8} {
		var ran atomic.Int32
		p := exec.Pool{Workers: workers}
		_, err := p.Map(50, func(i int, st *query.Stats) error {
			ran.Add(1)
			switch i {
			case 7:
				return errA
			case 31:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: err %v, want lowest-index error %v", workers, err, errA)
		}
		if got := ran.Load(); got != 50 {
			t.Fatalf("workers=%d: ran %d of 50 items", workers, got)
		}
	}
}
