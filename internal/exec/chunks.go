package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Chunks fans the index range [0, n) over a worker pool as contiguous
// chunks claimed from a single atomic counter — a handful of fetch-adds per
// worker instead of one channel operation per index. It is the work feed of
// the construction loops (door-graph derivation, IDINDEX rows, IP/VIP-tree
// matrix fills), whose per-item channel handoff used to show up in build
// profiles.
//
// fn is called with disjoint [lo, hi) ranges covering [0, n) exactly once;
// calls may run concurrently, so fn must only write state owned by its
// range. workers <= 0 means GOMAXPROCS. Chunks returns when every range has
// been processed.
func Chunks(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	// 8 chunks per worker bounds the imbalance of uneven item costs at
	// ~1/8 of a worker's share while keeping counter traffic negligible.
	chunk := (n + workers*8 - 1) / (workers * 8)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				hi := int(next.Add(int64(chunk)))
				lo := hi - chunk
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}
