package exec

import (
	"sync"
	"testing"
)

// TestChunksCoversExactlyOnce asserts every index in [0, n) is visited by
// exactly one chunk, for degenerate and parallel worker counts alike.
func TestChunksCoversExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, workers := range []int{-1, 0, 1, 2, 3, 8, 64, 2000} {
			seen := make([]int32, n)
			var mu sync.Mutex
			Chunks(n, workers, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("n=%d workers=%d: bad range [%d,%d)", n, workers, lo, hi)
					return
				}
				mu.Lock()
				for i := lo; i < hi; i++ {
					seen[i]++
				}
				mu.Unlock()
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, c)
				}
			}
		}
	}
}

// TestChunksConcurrentSum exercises the feed under the race detector with
// workers accumulating into disjoint range-owned state.
func TestChunksConcurrentSum(t *testing.T) {
	const n = 100000
	out := make([]int, n)
	Chunks(n, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = i * 2
		}
	})
	for i := 0; i < n; i += 9973 {
		if out[i] != i*2 {
			t.Fatalf("out[%d] = %d", i, out[i])
		}
	}
}
