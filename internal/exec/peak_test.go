package exec

import (
	"testing"

	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
)

// allocEngine is a stub whose every query allocates exactly allocBytes of
// transient working set and expands one door.
type allocEngine struct{ allocBytes int64 }

func (e allocEngine) Name() string                   { return "alloc" }
func (e allocEngine) SetObjects(objs []query.Object) {}
func (e allocEngine) SizeBytes() int64               { return 0 }

func (e allocEngine) work(st *query.Stats) {
	st.Door()
	st.Alloc(e.allocBytes)
}

func (e allocEngine) Range(p indoor.Point, r float64, st *query.Stats) ([]int32, error) {
	e.work(st)
	return nil, nil
}

func (e allocEngine) KNN(p indoor.Point, k int, st *query.Stats) ([]query.Neighbor, error) {
	e.work(st)
	return nil, nil
}

func (e allocEngine) SPD(p, q indoor.Point, st *query.Stats) (query.Path, error) {
	e.work(st)
	return query.Path{}, nil
}

// TestBatchPeakMergesWithMax is the regression test for the sharded-stats
// peak folding: the ops of a batch each touch the same fixed working set,
// so the merged PeakWorkBytes must equal the single-query peak no matter
// how many workers the batch fans over — while WorkBytes still sums. The
// old Add folded peaks with +, reporting an 8-op batch as 8× the actual
// high-water mark.
func TestBatchPeakMergesWithMax(t *testing.T) {
	const bytesPerOp = int64(1 << 20)
	eng := allocEngine{allocBytes: bytesPerOp}
	ops := make([]Op, 8)
	for i := range ops {
		ops[i] = Op{Kind: SPDQ}
	}
	for _, workers := range []int{1, 4, 8} {
		p := Pool{Workers: workers}
		results, batch := p.Run(eng, ops)
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d op %d: %v", workers, i, r.Err)
			}
			if r.Stats.PeakWorkBytes != bytesPerOp {
				t.Fatalf("workers=%d op %d: per-op peak = %d, want %d",
					workers, i, r.Stats.PeakWorkBytes, bytesPerOp)
			}
		}
		if got := batch.Stats.WorkBytes; got != bytesPerOp*int64(len(ops)) {
			t.Fatalf("workers=%d: total work = %d, want sum %d",
				workers, got, bytesPerOp*int64(len(ops)))
		}
		if got := batch.Stats.PeakWorkBytes; got != bytesPerOp {
			t.Fatalf("workers=%d: merged peak = %d, want single-worker peak %d (peaks must fold with max, not +)",
				workers, got, bytesPerOp)
		}
	}
}

// TestStatsAddPeakMax pins the merge rule at the query.Stats level, where
// the executor's shard folding gets it from.
func TestStatsAddPeakMax(t *testing.T) {
	var a query.Stats
	a.Alloc(100)
	var b query.Stats
	b.Alloc(250)
	var merged query.Stats
	merged.Add(a)
	merged.Add(b)
	if merged.WorkBytes != 350 {
		t.Fatalf("work = %d, want 350", merged.WorkBytes)
	}
	if merged.PeakWorkBytes != 250 {
		t.Fatalf("peak = %d, want max 250", merged.PeakWorkBytes)
	}
}
