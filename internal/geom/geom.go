// Package geom provides the 2D geometric primitives underlying the indoor
// space model: points, axis-aligned rectangles, segments, rectilinear
// polygons, and visibility-graph shortest paths inside concave polygons.
//
// All coordinates are in meters. The package is deliberately small and
// allocation-conscious: every model/index in this repository funnels its
// geometric computations through these primitives.
package geom

import "math"

// Eps is the tolerance used for all geometric predicates.
const Eps = 1e-9

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Dist returns the Euclidean distance from p to q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance from p to q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Eq reports whether p and q coincide within Eps.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// Mid returns the midpoint of p and q.
func (p Point) Mid(q Point) Point {
	return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2}
}

// Rect is an axis-aligned rectangle. A Rect is valid when MinX <= MaxX and
// MinY <= MaxY; the zero Rect is a valid degenerate rectangle at the origin.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// R is shorthand for a Rect with the given corners.
func R(minX, minY, maxX, maxY float64) Rect {
	return Rect{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
}

// RectAround returns the degenerate rectangle covering only p.
func RectAround(p Point) Rect { return Rect{p.X, p.Y, p.X, p.Y} }

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Margin returns the half-perimeter of r.
func (r Rect) Margin() float64 { return r.Width() + r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX-Eps && p.X <= r.MaxX+Eps &&
		p.Y >= r.MinY-Eps && p.Y <= r.MaxY+Eps
}

// ContainsRect reports whether s lies fully inside r (boundary inclusive).
func (r Rect) ContainsRect(s Rect) bool {
	return s.MinX >= r.MinX-Eps && s.MaxX <= r.MaxX+Eps &&
		s.MinY >= r.MinY-Eps && s.MaxY <= r.MaxY+Eps
}

// Intersects reports whether r and s overlap (touching counts).
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX+Eps && s.MinX <= r.MaxX+Eps &&
		r.MinY <= s.MaxY+Eps && s.MinY <= r.MaxY+Eps
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Enlargement returns the area growth of r needed to cover s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// MinDist returns the minimum Euclidean distance from p to any point of r;
// zero when p is inside r.
func (r Rect) MinDist(p Point) float64 {
	dx := math.Max(0, math.Max(r.MinX-p.X, p.X-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-p.Y, p.Y-r.MaxY))
	return math.Hypot(dx, dy)
}

// MaxDist returns the maximum Euclidean distance from p to any point of r.
func (r Rect) MaxDist(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.MinX), math.Abs(p.X-r.MaxX))
	dy := math.Max(math.Abs(p.Y-r.MinY), math.Abs(p.Y-r.MaxY))
	return math.Hypot(dx, dy)
}

// Segment is a directed line segment from A to B.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{a, b} }

// Length returns the Euclidean length of s.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Mid returns the midpoint of s.
func (s Segment) Mid() Point { return s.A.Mid(s.B) }

// cross returns the z component of (b-a) x (c-a).
func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// onSegment reports whether point c, known to be collinear with [a,b],
// lies within the segment's bounding box.
func onSegment(a, b, c Point) bool {
	return c.X >= math.Min(a.X, b.X)-Eps && c.X <= math.Max(a.X, b.X)+Eps &&
		c.Y >= math.Min(a.Y, b.Y)-Eps && c.Y <= math.Max(a.Y, b.Y)+Eps
}

// ContainsPoint reports whether p lies on segment s.
func (s Segment) ContainsPoint(p Point) bool {
	if math.Abs(cross(s.A, s.B, p)) > Eps*(1+s.Length()) {
		return false
	}
	return onSegment(s.A, s.B, p)
}

// Intersects reports whether segments s and t share any point,
// including endpoint touches and collinear overlaps.
func (s Segment) Intersects(t Segment) bool {
	d1 := cross(t.A, t.B, s.A)
	d2 := cross(t.A, t.B, s.B)
	d3 := cross(s.A, s.B, t.A)
	d4 := cross(s.A, s.B, t.B)
	if ((d1 > Eps && d2 < -Eps) || (d1 < -Eps && d2 > Eps)) &&
		((d3 > Eps && d4 < -Eps) || (d3 < -Eps && d4 > Eps)) {
		return true
	}
	if math.Abs(d1) <= Eps && onSegment(t.A, t.B, s.A) {
		return true
	}
	if math.Abs(d2) <= Eps && onSegment(t.A, t.B, s.B) {
		return true
	}
	if math.Abs(d3) <= Eps && onSegment(s.A, s.B, t.A) {
		return true
	}
	if math.Abs(d4) <= Eps && onSegment(s.A, s.B, t.B) {
		return true
	}
	return false
}

// ProperlyCrosses reports whether s and t cross at a single interior point of
// both segments (endpoint touches and collinear overlaps do not count).
func (s Segment) ProperlyCrosses(t Segment) bool {
	d1 := cross(t.A, t.B, s.A)
	d2 := cross(t.A, t.B, s.B)
	d3 := cross(s.A, s.B, t.A)
	d4 := cross(s.A, s.B, t.B)
	return ((d1 > Eps && d2 < -Eps) || (d1 < -Eps && d2 > Eps)) &&
		((d3 > Eps && d4 < -Eps) || (d3 < -Eps && d4 > Eps))
}
