package geom

import (
	"fmt"
	"math"
)

// Polygon is a simple polygon given by its vertices in counter-clockwise
// order. The closing edge from the last vertex back to the first is implicit.
// Indoor partitions are rectilinear polygons (all edges axis-aligned), but
// the predicates here work for any simple polygon.
type Polygon []Point

// RectPoly returns the four-vertex polygon covering r, in CCW order.
func RectPoly(r Rect) Polygon {
	return Polygon{
		{r.MinX, r.MinY},
		{r.MaxX, r.MinY},
		{r.MaxX, r.MaxY},
		{r.MinX, r.MaxY},
	}
}

// Bounds returns the bounding rectangle of p.
func (p Polygon) Bounds() Rect {
	if len(p) == 0 {
		return Rect{}
	}
	r := RectAround(p[0])
	for _, v := range p[1:] {
		r.MinX = math.Min(r.MinX, v.X)
		r.MinY = math.Min(r.MinY, v.Y)
		r.MaxX = math.Max(r.MaxX, v.X)
		r.MaxY = math.Max(r.MaxY, v.Y)
	}
	return r
}

// Area returns the (signed-positive for CCW) area of p via the shoelace
// formula.
func (p Polygon) Area() float64 {
	n := len(p)
	if n < 3 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		s += p[i].X*p[j].Y - p[j].X*p[i].Y
	}
	return s / 2
}

// Edge returns the i-th edge of p (from vertex i to vertex i+1 mod n).
func (p Polygon) Edge(i int) Segment {
	return Segment{p[i], p[(i+1)%len(p)]}
}

// Contains reports whether q lies inside p; points on the boundary count as
// inside, since doors sit on partition boundaries.
func (p Polygon) Contains(q Point) bool {
	n := len(p)
	if n < 3 {
		return false
	}
	for i := 0; i < n; i++ {
		if p.Edge(i).ContainsPoint(q) {
			return true
		}
	}
	// Ray casting: count crossings of the ray going in +X direction.
	inside := false
	for i := 0; i < n; i++ {
		a, b := p[i], p[(i+1)%n]
		if (a.Y > q.Y) != (b.Y > q.Y) {
			x := a.X + (q.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if x > q.X {
				inside = !inside
			}
		}
	}
	return inside
}

// IsConvex reports whether p is convex (collinear vertices allowed).
func (p Polygon) IsConvex() bool {
	n := len(p)
	if n < 4 {
		return true
	}
	sign := 0
	for i := 0; i < n; i++ {
		c := cross(p[i], p[(i+1)%n], p[(i+2)%n])
		switch {
		case c > Eps:
			if sign < 0 {
				return false
			}
			sign = 1
		case c < -Eps:
			if sign > 0 {
				return false
			}
			sign = -1
		}
	}
	return true
}

// IsRectilinear reports whether every edge of p is axis-aligned.
func (p Polygon) IsRectilinear() bool {
	n := len(p)
	for i := 0; i < n; i++ {
		a, b := p[i], p[(i+1)%n]
		if math.Abs(a.X-b.X) > Eps && math.Abs(a.Y-b.Y) > Eps {
			return false
		}
	}
	return true
}

// Validate reports an error when p is degenerate: fewer than three vertices,
// repeated consecutive vertices, zero area, or clockwise orientation.
func (p Polygon) Validate() error {
	if len(p) < 3 {
		return fmt.Errorf("geom: polygon has %d vertices, need >= 3", len(p))
	}
	for i := range p {
		if p[i].Eq(p[(i+1)%len(p)]) {
			return fmt.Errorf("geom: polygon has repeated vertex %d", i)
		}
	}
	a := p.Area()
	if a <= Eps {
		return fmt.Errorf("geom: polygon area %g is not positive (need CCW orientation)", a)
	}
	return nil
}

// SegmentInside reports whether the open segment a-b lies entirely inside
// polygon p (endpoints may lie on the boundary). This is the visibility
// predicate used to build visibility graphs in concave partitions.
func (p Polygon) SegmentInside(a, b Point) bool {
	if a.Eq(b) {
		return p.Contains(a)
	}
	s := Segment{a, b}
	n := len(p)
	// Any proper crossing with an edge means the segment leaves the polygon.
	for i := 0; i < n; i++ {
		if s.ProperlyCrosses(p.Edge(i)) {
			return false
		}
	}
	// The segment may still run outside through a reflex notch while only
	// touching edges at vertices. Collect all touch parameters along s and
	// check the midpoint of every resulting sub-interval.
	ts := []float64{0, 1}
	for i := 0; i < n; i++ {
		e := p.Edge(i)
		for _, v := range []Point{e.A, e.B} {
			if s.ContainsPoint(v) {
				ts = append(ts, paramOn(s, v))
			}
		}
		// An edge endpoint-free collinear overlap contributes its endpoints,
		// already covered above; a vertex of s lying on e contributes 0/1,
		// also covered. Proper-touch of s's interior with e's interior at a
		// single point happens only when an s endpoint is on e or a p vertex
		// is on s, both handled.
	}
	sortFloats(ts)
	for i := 0; i+1 < len(ts); i++ {
		t0, t1 := ts[i], ts[i+1]
		if t1-t0 <= Eps {
			continue
		}
		m := Point{
			X: a.X + (b.X-a.X)*(t0+t1)/2,
			Y: a.Y + (b.Y-a.Y)*(t0+t1)/2,
		}
		if !p.Contains(m) {
			return false
		}
	}
	return true
}

// paramOn returns the parameter t in [0,1] such that s.A + t*(s.B-s.A) == v,
// assuming v lies on s.
func paramOn(s Segment, v Point) float64 {
	dx, dy := s.B.X-s.A.X, s.B.Y-s.A.Y
	if math.Abs(dx) >= math.Abs(dy) {
		if dx == 0 {
			return 0
		}
		return (v.X - s.A.X) / dx
	}
	return (v.Y - s.A.Y) / dy
}

func sortFloats(xs []float64) {
	// Insertion sort: the slices here are tiny (touch points on one segment).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// MaxDistFrom returns the greatest geodesic distance from point a (inside or
// on the boundary of p) to any vertex of p, which for a polygon is the
// greatest distance to any point of p. For convex polygons the geodesic is
// the straight line; for concave polygons callers should use a visibility
// graph (see VGraph.MaxDistFrom).
func (p Polygon) MaxDistFrom(a Point) float64 {
	var m float64
	for _, v := range p {
		if d := a.Dist(v); d > m {
			m = d
		}
	}
	return m
}
