package geom

import (
	"math"
	"testing"
)

func TestVGraphStraightLineWhenVisible(t *testing.T) {
	g := NewVGraph(lShape(), nil)
	a, b := Pt(1, 1), Pt(5, 1)
	if d := g.Dist(a, b); math.Abs(d-4) > Eps {
		t.Fatalf("Dist = %g, want 4", d)
	}
}

func TestVGraphAroundCorner(t *testing.T) {
	g := NewVGraph(lShape(), nil)
	a, b := Pt(1, 3), Pt(5, 1)
	// Geodesic bends at the reflex vertex (2,2).
	want := a.Dist(Pt(2, 2)) + Pt(2, 2).Dist(b)
	if d := g.Dist(a, b); math.Abs(d-want) > 1e-6 {
		t.Fatalf("Dist = %g, want %g", d, want)
	}
}

func TestVGraphAnchorDist(t *testing.T) {
	anchors := []Point{{1, 3}, {5, 1}, {1, 1}}
	g := NewVGraph(lShape(), anchors)
	if g.NumAnchors() != 3 {
		t.Fatalf("NumAnchors = %d", g.NumAnchors())
	}
	want01 := Pt(1, 3).Dist(Pt(2, 2)) + Pt(2, 2).Dist(Pt(5, 1))
	if d := g.AnchorDist(0, 1); math.Abs(d-want01) > 1e-6 {
		t.Fatalf("AnchorDist(0,1) = %g, want %g", d, want01)
	}
	if d := g.AnchorDist(1, 0); math.Abs(d-want01) > 1e-6 {
		t.Fatalf("AnchorDist(1,0) = %g, want %g", d, want01)
	}
	if d := g.AnchorDist(2, 2); d != 0 {
		t.Fatalf("AnchorDist(2,2) = %g, want 0", d)
	}
	// Anchors 2 and 1 see each other directly.
	if d := g.AnchorDist(2, 1); math.Abs(d-4) > 1e-6 {
		t.Fatalf("AnchorDist(2,1) = %g, want 4", d)
	}
}

func TestVGraphDistMatchesAnchorDist(t *testing.T) {
	anchors := []Point{{0.5, 3.5}, {5.5, 0.5}}
	g := NewVGraph(lShape(), anchors)
	free := g.Dist(anchors[0], anchors[1])
	pre := g.AnchorDist(0, 1)
	if math.Abs(free-pre) > 1e-6 {
		t.Fatalf("on-the-fly %g != precomputed %g", free, pre)
	}
}

func TestVGraphOutsidePointIsInf(t *testing.T) {
	g := NewVGraph(lShape(), nil)
	if d := g.Dist(Pt(4, 3), Pt(1, 1)); !math.IsInf(d, 1) {
		t.Fatalf("Dist from outside point = %g, want +Inf", d)
	}
}

func TestVGraphGeodesicAtLeastEuclidean(t *testing.T) {
	g := NewVGraph(lShape(), nil)
	pts := []Point{{1, 1}, {5, 1}, {1, 3}, {0.5, 3.9}, {5.9, 0.1}, {2, 2}}
	for _, a := range pts {
		for _, b := range pts {
			d := g.Dist(a, b)
			if d < a.Dist(b)-1e-6 {
				t.Fatalf("geodesic %g < Euclidean %g for %v-%v", d, a.Dist(b), a, b)
			}
		}
	}
}

func TestVGraphSymmetry(t *testing.T) {
	g := NewVGraph(lShape(), nil)
	f := func(ax, ay, bx, by uint8) bool {
		a := Pt(float64(ax%7)*0.9, float64(ay%5)*0.8)
		b := Pt(float64(bx%7)*0.9, float64(by%5)*0.8)
		if !lShape().Contains(a) || !lShape().Contains(b) {
			return true
		}
		d1, d2 := g.Dist(a, b), g.Dist(b, a)
		return math.Abs(d1-d2) <= 1e-6
	}
	checkQuick(t, f)
}

func TestVGraphTriangleInequality(t *testing.T) {
	g := NewVGraph(lShape(), nil)
	pts := []Point{{1, 1}, {5, 1}, {1, 3}, {2, 2}, {3, 1}}
	for _, a := range pts {
		for _, b := range pts {
			for _, c := range pts {
				if g.Dist(a, c) > g.Dist(a, b)+g.Dist(b, c)+1e-6 {
					t.Fatalf("triangle inequality violated for %v,%v,%v", a, b, c)
				}
			}
		}
	}
}

func TestVGraphMaxDistFrom(t *testing.T) {
	g := NewVGraph(lShape(), nil)
	// From deep in the bottom-right arm, the farthest vertex is (0,4),
	// reached around the reflex corner (2,2).
	a := Pt(5.5, 0.5)
	want := a.Dist(Pt(2, 2)) + Pt(2, 2).Dist(Pt(0, 4))
	if d := g.MaxDistFrom(a); math.Abs(d-want) > 1e-6 {
		t.Fatalf("MaxDistFrom = %g, want %g", d, want)
	}
}

func TestVGraphComb(t *testing.T) {
	// A comb with two teeth:
	//
	//	 _   _
	//	| | | |
	//	| |_| |
	//	|_____|
	comb := Polygon{
		{0, 0}, {5, 0}, {5, 3}, {4, 3}, {4, 1}, {3, 1}, {3, 3}, {2, 3}, {2, 1}, {1, 1}, {1, 3}, {0, 3},
	}
	if err := comb.Validate(); err != nil {
		t.Fatal(err)
	}
	g := NewVGraph(comb, []Point{{0.5, 2.5}, {4.5, 2.5}})
	// Shortest path between the teeth tips must weave under both teeth.
	d := g.AnchorDist(0, 1)
	lower := Pt(0.5, 2.5).Dist(Pt(4.5, 2.5))
	if d <= lower {
		t.Fatalf("comb geodesic %g should exceed straight line %g", d, lower)
	}
	want := Pt(0.5, 2.5).Dist(Pt(1, 1)) + Pt(1, 1).Dist(Pt(2, 1)) + Pt(2, 1).Dist(Pt(3, 1)) +
		Pt(3, 1).Dist(Pt(4, 1)) + Pt(4, 1).Dist(Pt(4.5, 2.5))
	if math.Abs(d-want) > 1e-6 {
		t.Fatalf("comb geodesic = %g, want %g", d, want)
	}
}

func TestVGraphSizeBytes(t *testing.T) {
	g := NewVGraph(lShape(), []Point{{1, 1}})
	if g.SizeBytes() <= 0 {
		t.Fatal("SizeBytes should be positive")
	}
}
