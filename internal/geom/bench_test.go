package geom

import (
	"math/rand"
	"testing"
)

func BenchmarkSegmentInside(b *testing.B) {
	poly := lShape()
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, 64)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*6, rng.Float64()*4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		poly.SegmentInside(pts[i%64], pts[(i+7)%64])
	}
}

func BenchmarkVGraphDist(b *testing.B) {
	poly := lShape()
	g := NewVGraph(poly, nil)
	a, c := Pt(1, 3), Pt(5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Dist(a, c)
	}
}

func BenchmarkSourceDist(b *testing.B) {
	poly := lShape()
	g := NewVGraph(poly, nil)
	src := g.SourceFrom(Pt(1, 3))
	c := Pt(5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Dist(c)
	}
}

func BenchmarkPolygonContains(b *testing.B) {
	poly := lShape()
	p := Pt(1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		poly.Contains(p)
	}
}
