package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// quickSeed pins the testing/quick value stream so property-test
// failures reproduce deterministically across runs and machines; bump it
// to explore a fresh stream.
const quickSeed = 20260805

// checkQuick runs the property f under testing/quick with an explicitly
// seeded source, logging the seed on failure so the exact run replays.
func checkQuick(t *testing.T, f any) {
	t.Helper()
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(quickSeed))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatalf("quick seed %d: %v", quickSeed, err)
	}
}
