package geom

import (
	"math"
	"testing"
)

// lShape is a concave rectilinear polygon:
//
//	(0,4)----(2,4)
//	  |        |
//	  |        |(2,2)----(6,2)
//	  |                    |
//	(0,0)---------------(6,0)
func lShape() Polygon {
	return Polygon{
		{0, 0}, {6, 0}, {6, 2}, {2, 2}, {2, 4}, {0, 4},
	}
}

func TestRectPoly(t *testing.T) {
	p := RectPoly(R(0, 0, 2, 3))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Area() != 6 {
		t.Fatalf("Area = %g, want 6", p.Area())
	}
	if !p.IsConvex() || !p.IsRectilinear() {
		t.Fatal("rectangle should be convex and rectilinear")
	}
}

func TestPolygonArea(t *testing.T) {
	if a := lShape().Area(); math.Abs(a-16) > Eps {
		t.Fatalf("L-shape area = %g, want 16", a)
	}
}

func TestPolygonBounds(t *testing.T) {
	b := lShape().Bounds()
	if b != R(0, 0, 6, 4) {
		t.Fatalf("Bounds = %v", b)
	}
}

func TestPolygonContains(t *testing.T) {
	p := lShape()
	cases := []struct {
		q    Point
		want bool
	}{
		{Pt(1, 1), true},
		{Pt(5, 1), true},
		{Pt(1, 3), true},
		{Pt(4, 3), false}, // in the notch
		{Pt(7, 1), false},
		{Pt(0, 0), true}, // vertex
		{Pt(3, 2), true}, // on edge
		{Pt(2, 3), true}, // on vertical edge
		{Pt(-1, -1), false},
	}
	for _, c := range cases {
		if got := p.Contains(c.q); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestPolygonConvexity(t *testing.T) {
	if lShape().IsConvex() {
		t.Fatal("L-shape should be concave")
	}
	tri := Polygon{{0, 0}, {4, 0}, {2, 3}}
	if !tri.IsConvex() {
		t.Fatal("triangle should be convex")
	}
	if tri.IsRectilinear() {
		t.Fatal("triangle is not rectilinear")
	}
	if !lShape().IsRectilinear() {
		t.Fatal("L-shape is rectilinear")
	}
}

func TestPolygonValidate(t *testing.T) {
	if err := lShape().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Polygon{{0, 0}, {1, 0}}).Validate(); err == nil {
		t.Fatal("2-vertex polygon should fail validation")
	}
	// Clockwise orientation has negative area.
	cw := Polygon{{0, 0}, {0, 4}, {4, 4}, {4, 0}}
	if err := cw.Validate(); err == nil {
		t.Fatal("clockwise polygon should fail validation")
	}
	dup := Polygon{{0, 0}, {0, 0}, {4, 4}, {0, 4}}
	if err := dup.Validate(); err == nil {
		t.Fatal("repeated vertex should fail validation")
	}
}

func TestSegmentInside(t *testing.T) {
	p := lShape()
	cases := []struct {
		a, b Point
		want bool
	}{
		{Pt(1, 1), Pt(5, 1), true},  // along the bottom arm
		{Pt(1, 1), Pt(1, 3), true},  // along the left arm
		{Pt(1, 3), Pt(5, 1), false}, // cuts through the notch
		{Pt(1, 3), Pt(2, 2), true},  // to the reflex vertex
		{Pt(2, 2), Pt(5, 1), true},  // from the reflex vertex
		{Pt(0, 0), Pt(6, 0), true},  // along the boundary
		{Pt(1, 3), Pt(1, 3), true},  // degenerate
		{Pt(1, 3), Pt(7, 3), false}, // exits the polygon
		{Pt(2, 4), Pt(6, 2), false}, // vertex-to-vertex across the notch
		{Pt(0, 4), Pt(6, 0), false}, // corner to corner through the notch
	}
	for i, c := range cases {
		if got := p.SegmentInside(c.a, c.b); got != c.want {
			t.Errorf("case %d: SegmentInside(%v,%v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestSegmentInsideConvex(t *testing.T) {
	// In a convex polygon every chord is inside.
	p := RectPoly(R(0, 0, 10, 10))
	f := func(ax, ay, bx, by uint8) bool {
		a := Pt(float64(ax%11), float64(ay%11))
		b := Pt(float64(bx%11), float64(by%11))
		return p.SegmentInside(a, b)
	}
	checkQuick(t, f)
}

func TestMaxDistFrom(t *testing.T) {
	p := RectPoly(R(0, 0, 3, 4))
	if d := p.MaxDistFrom(Pt(0, 0)); math.Abs(d-5) > Eps {
		t.Fatalf("MaxDistFrom corner = %g, want 5", d)
	}
	if d := p.MaxDistFrom(Pt(1.5, 2)); math.Abs(d-2.5) > Eps {
		t.Fatalf("MaxDistFrom center = %g, want 2.5", d)
	}
}
