package geom

import (
	"math"
	"testing"
)

// FuzzSegmentInside checks metamorphic properties of the visibility
// predicate on the L-shaped polygon: symmetry, endpoint containment, and
// consistency with midpoint containment.
func FuzzSegmentInside(f *testing.F) {
	f.Add(1.0, 1.0, 5.0, 1.0)
	f.Add(1.0, 3.0, 5.0, 1.0)
	f.Add(0.0, 0.0, 6.0, 2.0)
	f.Add(-1.0, -1.0, 7.0, 7.0)
	f.Add(2.0, 2.0, 2.0, 2.0)
	poly := lShape()
	f.Fuzz(func(t *testing.T, ax, ay, bx, by float64) {
		for _, v := range []float64{ax, ay, bx, by} {
			if math.IsNaN(v) || math.Abs(v) > 100 {
				t.Skip()
			}
		}
		a, b := Pt(ax, ay), Pt(bx, by)
		in1 := poly.SegmentInside(a, b)
		in2 := poly.SegmentInside(b, a)
		if in1 != in2 {
			t.Fatalf("SegmentInside not symmetric for %v-%v: %v vs %v", a, b, in1, in2)
		}
		if in1 {
			if !poly.Contains(a) || !poly.Contains(b) {
				t.Fatalf("inside segment %v-%v has an outside endpoint", a, b)
			}
			if !poly.Contains(a.Mid(b)) {
				t.Fatalf("inside segment %v-%v has an outside midpoint", a, b)
			}
		}
	})
}

// FuzzVGraphDist checks geodesic invariants on the L-shape: symmetry,
// the Euclidean lower bound, and the boundary-walk upper bound.
func FuzzVGraphDist(f *testing.F) {
	f.Add(1.0, 1.0, 5.0, 1.0)
	f.Add(0.5, 3.5, 5.5, 0.5)
	f.Add(2.0, 2.0, 0.1, 3.9)
	poly := lShape()
	g := NewVGraph(poly, nil)
	perimeter := 0.0
	for i := range poly {
		perimeter += poly.Edge(i).Length()
	}
	f.Fuzz(func(t *testing.T, ax, ay, bx, by float64) {
		a, b := Pt(ax, ay), Pt(bx, by)
		if !poly.Contains(a) || !poly.Contains(b) {
			t.Skip()
		}
		d1 := g.Dist(a, b)
		d2 := g.Dist(b, a)
		if math.Abs(d1-d2) > 1e-6 {
			t.Fatalf("geodesic asymmetric: %g vs %g", d1, d2)
		}
		if d1 < a.Dist(b)-1e-9 {
			t.Fatalf("geodesic %g below Euclidean %g", d1, a.Dist(b))
		}
		if d1 > perimeter {
			t.Fatalf("geodesic %g exceeds the polygon perimeter %g", d1, perimeter)
		}
	})
}
