package geom

import (
	"math"
	"testing"
)

// TestDistStopNilAndLive asserts a nil or never-firing stop leaves DistStop
// exactly equal to Dist, including around-the-corner geodesics.
func TestDistStopNilAndLive(t *testing.T) {
	g := NewVGraph(lShape(), nil)
	a, b := Pt(1, 3), Pt(5, 1) // geodesic bends at the reflex vertex (2,2)
	want := g.Dist(a, b)
	if d := g.DistStop(a, b, nil); d != want {
		t.Fatalf("DistStop(nil) = %g, want %g", d, want)
	}
	if d := g.DistStop(a, b, func() bool { return false }); math.Abs(d-want) > 1e-12 {
		t.Fatalf("DistStop(live) = %g, want %g", d, want)
	}
	// Directly visible pairs never enter the sweep, stop or not.
	if d := g.DistStop(Pt(1, 1), Pt(5, 1), func() bool { return true }); math.Abs(d-4) > Eps {
		t.Fatalf("visible DistStop = %g, want 4", d)
	}
}

// TestDistStopAborted asserts a firing stop turns a corner geodesic into
// +Inf (the caller re-checks its interruption state to tell this apart from
// genuine unreachability).
func TestDistStopAborted(t *testing.T) {
	g := NewVGraph(lShape(), nil)
	a, b := Pt(1, 3), Pt(5, 1)
	if d := g.DistStop(a, b, func() bool { return true }); !math.IsInf(d, 1) {
		t.Fatalf("aborted DistStop = %g, want +Inf", d)
	}
}
