package geom

import (
	"math"
	"testing"
)

func TestPointDist(t *testing.T) {
	if d := Pt(0, 0).Dist(Pt(3, 4)); d != 5 {
		t.Fatalf("Dist = %g, want 5", d)
	}
	if d := Pt(1, 1).Dist(Pt(1, 1)); d != 0 {
		t.Fatalf("Dist to self = %g, want 0", d)
	}
}

func TestPointDist2MatchesDist(t *testing.T) {
	f := func(ax, ay, bx, by int16) bool {
		a, b := Pt(float64(ax), float64(ay)), Pt(float64(bx), float64(by))
		d, d2 := a.Dist(b), a.Dist2(b)
		return math.Abs(d*d-d2) <= 1e-6*(1+d2)
	}
	checkQuick(t, f)
}

func TestPointMid(t *testing.T) {
	m := Pt(0, 0).Mid(Pt(4, 6))
	if !m.Eq(Pt(2, 3)) {
		t.Fatalf("Mid = %v, want (2,3)", m)
	}
}

func TestRectBasics(t *testing.T) {
	r := R(0, 0, 4, 3)
	if r.Width() != 4 || r.Height() != 3 {
		t.Fatalf("extent = %g x %g, want 4 x 3", r.Width(), r.Height())
	}
	if r.Area() != 12 {
		t.Fatalf("Area = %g, want 12", r.Area())
	}
	if r.Margin() != 7 {
		t.Fatalf("Margin = %g, want 7", r.Margin())
	}
	if !r.Center().Eq(Pt(2, 1.5)) {
		t.Fatalf("Center = %v, want (2,1.5)", r.Center())
	}
}

func TestRectContains(t *testing.T) {
	r := R(0, 0, 4, 3)
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(2, 2), true},
		{Pt(0, 0), true}, // corner
		{Pt(4, 3), true}, // corner
		{Pt(2, 0), true}, // edge
		{Pt(5, 2), false},
		{Pt(-1, 2), false},
		{Pt(2, 3.5), false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectIntersectsUnion(t *testing.T) {
	a := R(0, 0, 2, 2)
	b := R(1, 1, 3, 3)
	c := R(5, 5, 6, 6)
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("a and b should intersect")
	}
	if a.Intersects(c) {
		t.Fatal("a and c should not intersect")
	}
	// Touching rectangles intersect.
	d := R(2, 0, 4, 2)
	if !a.Intersects(d) {
		t.Fatal("touching rectangles should intersect")
	}
	u := a.Union(b)
	if u != R(0, 0, 3, 3) {
		t.Fatalf("Union = %v", u)
	}
	if e := a.Enlargement(b); e != 9-4 {
		t.Fatalf("Enlargement = %g, want 5", e)
	}
}

func TestRectMinMaxDist(t *testing.T) {
	r := R(0, 0, 2, 2)
	if d := r.MinDist(Pt(1, 1)); d != 0 {
		t.Fatalf("MinDist inside = %g, want 0", d)
	}
	if d := r.MinDist(Pt(5, 2)); d != 3 {
		t.Fatalf("MinDist right = %g, want 3", d)
	}
	if d := r.MinDist(Pt(5, 6)); math.Abs(d-5) > Eps {
		t.Fatalf("MinDist diag = %g, want 5", d)
	}
	if d := r.MaxDist(Pt(0, 0)); math.Abs(d-math.Sqrt(8)) > Eps {
		t.Fatalf("MaxDist = %g, want sqrt(8)", d)
	}
}

func TestRectMinDistNeverExceedsMaxDist(t *testing.T) {
	f := func(px, py float64) bool {
		r := R(-1, -2, 3, 4)
		p := Pt(math.Mod(px, 100), math.Mod(py, 100))
		return r.MinDist(p) <= r.MaxDist(p)+Eps
	}
	checkQuick(t, f)
}

func TestSegmentIntersects(t *testing.T) {
	cases := []struct {
		s, u     Segment
		want     bool
		properly bool
	}{
		{Seg(Pt(0, 0), Pt(2, 2)), Seg(Pt(0, 2), Pt(2, 0)), true, true},
		{Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(1, 0), Pt(1, 2)), true, false}, // T touch
		{Seg(Pt(0, 0), Pt(1, 1)), Seg(Pt(2, 2), Pt(3, 3)), false, false},
		{Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(1, 0), Pt(3, 0)), true, false}, // overlap
		{Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(1, 0), Pt(2, 0)), true, false}, // endpoint
		{Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(0, 1), Pt(1, 1)), false, false},
	}
	for i, c := range cases {
		if got := c.s.Intersects(c.u); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
		if got := c.s.ProperlyCrosses(c.u); got != c.properly {
			t.Errorf("case %d: ProperlyCrosses = %v, want %v", i, got, c.properly)
		}
	}
}

func TestSegmentContainsPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(4, 0))
	if !s.ContainsPoint(Pt(2, 0)) {
		t.Fatal("midpoint should be on segment")
	}
	if !s.ContainsPoint(Pt(0, 0)) || !s.ContainsPoint(Pt(4, 0)) {
		t.Fatal("endpoints should be on segment")
	}
	if s.ContainsPoint(Pt(5, 0)) {
		t.Fatal("(5,0) is beyond the segment")
	}
	if s.ContainsPoint(Pt(2, 1)) {
		t.Fatal("(2,1) is off the segment")
	}
}

func TestSegmentIntersectsIsSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy int8) bool {
		s := Seg(Pt(float64(ax), float64(ay)), Pt(float64(bx), float64(by)))
		u := Seg(Pt(float64(cx), float64(cy)), Pt(float64(dx), float64(dy)))
		return s.Intersects(u) == u.Intersects(s)
	}
	checkQuick(t, f)
}
