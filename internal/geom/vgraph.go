package geom

import (
	"math"
	"sync"
)

// VGraph answers geodesic (shortest-path-inside-a-polygon) distance queries
// for a concave indoor partition. It exploits the fact that geodesics bend
// only at polygon vertices: the visibility graph is built over the polygon
// vertices alone, while anchors (the partition's doors) and free points
// (objects, query locations) attach to it as endpoints.
//
// Construction precomputes, per anchor, the geodesic distance to every
// vertex. Anchor-to-anchor distances are NOT materialized here: they are
// computed on demand by AnchorDist, so that engines faithful to the paper's
// "no precomputation" designs (CINDEX, Sec. 3.3) pay exactly the on-the-fly
// cost, while the lazy door-pair cache in internal/indoor memoizes them for
// everything else. Query-time distances involving free points cost one
// visibility sweep over the vertices, served from a pooled scratch buffer
// so steady-state queries do not allocate.
type VGraph struct {
	poly  Polygon
	verts []Point
	// vadj[i][j]: straight-line distance when vertices i and j see each
	// other, +Inf otherwise.
	vadj [][]float64

	anchors []Point
	// anchorVert[i][v]: geodesic distance from anchor i to vertex v.
	anchorVert [][]float64

	// scratch pools per-sweep buffers (seed vectors, Dijkstra working sets)
	// sized for this graph's vertex count.
	scratch sync.Pool
}

// vgScratch is the reusable working set of one visibility sweep / Dijkstra
// run over the graph's vertices.
type vgScratch struct {
	seed []float64
	dist []float64
	done []bool
}

// NewVGraph builds the visibility structure of poly with the given anchors.
// Every anchor must lie inside poly or on its boundary.
func NewVGraph(poly Polygon, anchors []Point) *VGraph {
	g := &VGraph{
		poly:    poly,
		verts:   []Point(poly),
		anchors: append([]Point(nil), anchors...),
	}
	nv := len(g.verts)
	g.scratch.New = func() any {
		return &vgScratch{
			seed: make([]float64, nv),
			dist: make([]float64, nv),
			done: make([]bool, nv),
		}
	}
	g.vadj = make([][]float64, nv)
	for i := range g.vadj {
		g.vadj[i] = make([]float64, nv)
		for j := range g.vadj[i] {
			g.vadj[i][j] = math.Inf(1)
		}
		g.vadj[i][i] = 0
	}
	for i := 0; i < nv; i++ {
		for j := i + 1; j < nv; j++ {
			if poly.SegmentInside(g.verts[i], g.verts[j]) {
				d := g.verts[i].Dist(g.verts[j])
				g.vadj[i][j] = d
				g.vadj[j][i] = d
			}
		}
	}

	na := len(g.anchors)
	g.anchorVert = make([][]float64, na)
	sc := g.getScratch()
	for i := 0; i < na; i++ {
		g.attachInto(sc.seed, g.anchors[i])
		dist := make([]float64, nv)
		g.dijkstraInto(dist, sc.done, sc.seed, nil)
		g.anchorVert[i] = dist
	}
	g.putScratch(sc)
	return g
}

func (g *VGraph) getScratch() *vgScratch  { return g.scratch.Get().(*vgScratch) }
func (g *VGraph) putScratch(s *vgScratch) { g.scratch.Put(s) }

// NumAnchors returns the number of anchor points registered at construction.
func (g *VGraph) NumAnchors() int { return len(g.anchors) }

// AnchorDist returns the geodesic distance between anchors i and j,
// computed on the fly from the precomputed anchor-to-vertex distances plus
// one visibility sweep for anchor j. Callers that look the same pair up
// repeatedly should memoize through the door-pair distance cache layered on
// top (internal/indoor).
func (g *VGraph) AnchorDist(i, j int) float64 {
	if i == j {
		return 0
	}
	if g.poly.SegmentInside(g.anchors[i], g.anchors[j]) {
		return g.anchors[i].Dist(g.anchors[j])
	}
	sc := g.getScratch()
	g.attachInto(sc.seed, g.anchors[j])
	d := g.combine(g.anchorVert[i], sc.seed)
	g.putScratch(sc)
	return d
}

// attachInto fills dst with the straight-line distances from p to every
// vertex visible from p (+Inf for invisible vertices).
func (g *VGraph) attachInto(dst []float64, p Point) {
	for i, v := range g.verts {
		if g.poly.SegmentInside(p, v) {
			dst[i] = p.Dist(v)
		} else {
			dst[i] = math.Inf(1)
		}
	}
}

// dijkstraInto computes geodesic distances to all vertices from the seed
// vector (distance per vertex, +Inf when unseeded) with a dense O(V^2)
// scan, writing into dist and using done as the settled set. A non-nil stop
// is polled between vertex settlements; when it reports true the sweep
// aborts, leaving dist partially relaxed.
func (g *VGraph) dijkstraInto(dist []float64, done []bool, seed []float64, stop func() bool) {
	n := len(g.verts)
	copy(dist, seed)
	for i := range done {
		done[i] = false
	}
	for {
		if stop != nil && stop() {
			return
		}
		u, best := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u < 0 {
			return
		}
		done[u] = true
		row := g.vadj[u]
		for v := 0; v < n; v++ {
			if nd := best + row[v]; nd < dist[v] {
				dist[v] = nd
			}
		}
	}
}

// combine returns the best geodesic through any vertex: min over v of
// fromSrc[v] + toDst[v].
func (g *VGraph) combine(fromSrc, toDst []float64) float64 {
	best := math.Inf(1)
	for v := range fromSrc {
		if s := fromSrc[v] + toDst[v]; s < best {
			best = s
		}
	}
	return best
}

// Dist returns the geodesic distance from a to b inside the polygon, or
// +Inf when either point lies outside.
func (g *VGraph) Dist(a, b Point) float64 {
	if !g.poly.Contains(a) || !g.poly.Contains(b) {
		return math.Inf(1)
	}
	if g.poly.SegmentInside(a, b) {
		return a.Dist(b)
	}
	sc := g.getScratch()
	g.attachInto(sc.seed, a)
	g.dijkstraInto(sc.dist, sc.done, sc.seed, nil)
	g.attachInto(sc.seed, b)
	d := g.combine(sc.dist, sc.seed)
	g.putScratch(sc)
	return d
}

// DistStop is Dist with a cancellation probe polled between vertex
// settlements of the internal Dijkstra sweep. An aborted sweep returns +Inf;
// callers distinguish that from genuine unreachability by re-checking their
// interruption state. A nil stop is exactly Dist.
func (g *VGraph) DistStop(a, b Point, stop func() bool) float64 {
	if stop == nil {
		return g.Dist(a, b)
	}
	if !g.poly.Contains(a) || !g.poly.Contains(b) {
		return math.Inf(1)
	}
	if g.poly.SegmentInside(a, b) {
		return a.Dist(b)
	}
	sc := g.getScratch()
	g.attachInto(sc.seed, a)
	g.dijkstraInto(sc.dist, sc.done, sc.seed, stop)
	var d float64
	if stop() {
		d = math.Inf(1)
	} else {
		g.attachInto(sc.seed, b)
		d = g.combine(sc.dist, sc.seed)
	}
	g.putScratch(sc)
	return d
}

// DistToAnchor returns the geodesic distance from free point p to anchor i,
// using the precomputed anchor-to-vertex distances.
func (g *VGraph) DistToAnchor(p Point, i int) float64 {
	if !g.poly.Contains(p) {
		return math.Inf(1)
	}
	if g.poly.SegmentInside(p, g.anchors[i]) {
		return p.Dist(g.anchors[i])
	}
	sc := g.getScratch()
	g.attachInto(sc.seed, p)
	d := g.combine(g.anchorVert[i], sc.seed)
	g.putScratch(sc)
	return d
}

// Source is a reusable origin for repeated distance queries from one fixed
// point (e.g. scanning an object bucket from a door): the origin's
// visibility sweep and Dijkstra run once.
type Source struct {
	g *VGraph
	p Point
	// dist[v]: geodesic distance from p to vertex v.
	dist []float64
	ok   bool
}

// SourceFrom prepares a reusable origin at p.
func (g *VGraph) SourceFrom(p Point) *Source {
	s := &Source{g: g, p: p}
	if !g.poly.Contains(p) {
		return s
	}
	s.ok = true
	s.dist = make([]float64, len(g.verts))
	sc := g.getScratch()
	g.attachInto(sc.seed, p)
	g.dijkstraInto(s.dist, sc.done, sc.seed, nil)
	g.putScratch(sc)
	return s
}

// SourceFromAnchor prepares a reusable origin at anchor i without any
// geometric work.
func (g *VGraph) SourceFromAnchor(i int) *Source {
	return &Source{g: g, p: g.anchors[i], dist: g.anchorVert[i], ok: true}
}

// Dist returns the geodesic distance from the source point to b.
func (s *Source) Dist(b Point) float64 {
	if !s.ok || !s.g.poly.Contains(b) {
		return math.Inf(1)
	}
	if s.g.poly.SegmentInside(s.p, b) {
		return s.p.Dist(b)
	}
	sc := s.g.getScratch()
	s.g.attachInto(sc.seed, b)
	d := s.g.combine(s.dist, sc.seed)
	s.g.putScratch(sc)
	return d
}

// MaxDist returns the greatest geodesic distance from the source to any
// polygon vertex (which bounds the distance to anywhere in the polygon).
func (s *Source) MaxDist() float64 {
	var m float64
	for _, d := range s.dist {
		if !math.IsInf(d, 1) && d > m {
			m = d
		}
	}
	return m
}

// MaxDistFrom returns the greatest geodesic distance from point a to any
// polygon vertex.
func (g *VGraph) MaxDistFrom(a Point) float64 {
	if !g.poly.Contains(a) {
		return 0
	}
	sc := g.getScratch()
	g.attachInto(sc.seed, a)
	g.dijkstraInto(sc.dist, sc.done, sc.seed, nil)
	var m float64
	for _, d := range sc.dist {
		if !math.IsInf(d, 1) && d > m {
			m = d
		}
	}
	g.putScratch(sc)
	return m
}

// SizeBytes returns a deep size estimate of the graph's resident
// structures, used by model-size accounting. Anchor-to-anchor distances are
// no longer materialized here; partitions that want them resident pay for
// them through the door-pair distance cache's own accounting.
func (g *VGraph) SizeBytes() int64 {
	nv := int64(len(g.verts))
	na := int64(len(g.anchors))
	return nv*16 + nv*nv*8 + na*nv*8 + na*16
}

// DistToAnchor returns the geodesic distance from the source point to
// anchor i, combining the cached source vector with the precomputed
// anchor-to-vertex distances.
func (s *Source) DistToAnchor(i int) float64 {
	if !s.ok {
		return math.Inf(1)
	}
	if s.g.poly.SegmentInside(s.p, s.g.anchors[i]) {
		return s.p.Dist(s.g.anchors[i])
	}
	return s.g.combine(s.dist, s.g.anchorVert[i])
}

// DistToSource returns the geodesic distance between two prepared sources
// of the same graph at the cost of one visibility test plus one O(V)
// combine — the fast path for static-object bucket scans.
func (s *Source) DistToSource(o *Source) float64 {
	if !s.ok || !o.ok {
		return math.Inf(1)
	}
	if s.g.poly.SegmentInside(s.p, o.p) {
		return s.p.Dist(o.p)
	}
	return s.g.combine(s.dist, o.dist)
}
