package geom

import "math"

// VGraph answers geodesic (shortest-path-inside-a-polygon) distance queries
// for a concave indoor partition. It exploits the fact that geodesics bend
// only at polygon vertices: the visibility graph is built over the polygon
// vertices alone, while anchors (the partition's doors) and free points
// (objects, query locations) attach to it as endpoints.
//
// Construction precomputes, per anchor, the geodesic distance to every
// vertex and to every other anchor — the per-hallway door-to-door matrices
// of the paper's Sec. 5.1 (footnote 4). Query-time distances involving free
// points cost one visibility sweep over the vertices.
type VGraph struct {
	poly  Polygon
	verts []Point
	// vadj[i][j]: straight-line distance when vertices i and j see each
	// other, +Inf otherwise.
	vadj [][]float64

	anchors []Point
	// anchorVert[i][v]: geodesic distance from anchor i to vertex v.
	anchorVert [][]float64
	// anchorD[i][j]: geodesic anchor-to-anchor distances.
	anchorD [][]float64
}

// NewVGraph builds the visibility structure of poly with the given anchors.
// Every anchor must lie inside poly or on its boundary.
func NewVGraph(poly Polygon, anchors []Point) *VGraph {
	g := &VGraph{
		poly:    poly,
		verts:   []Point(poly),
		anchors: append([]Point(nil), anchors...),
	}
	nv := len(g.verts)
	g.vadj = make([][]float64, nv)
	for i := range g.vadj {
		g.vadj[i] = make([]float64, nv)
		for j := range g.vadj[i] {
			g.vadj[i][j] = math.Inf(1)
		}
		g.vadj[i][i] = 0
	}
	for i := 0; i < nv; i++ {
		for j := i + 1; j < nv; j++ {
			if poly.SegmentInside(g.verts[i], g.verts[j]) {
				d := g.verts[i].Dist(g.verts[j])
				g.vadj[i][j] = d
				g.vadj[j][i] = d
			}
		}
	}

	na := len(g.anchors)
	g.anchorVert = make([][]float64, na)
	for i := 0; i < na; i++ {
		g.anchorVert[i] = g.dijkstra(g.attach(g.anchors[i]))
	}
	g.anchorD = make([][]float64, na)
	for i := 0; i < na; i++ {
		row := make([]float64, na)
		for j := 0; j < na; j++ {
			switch {
			case i == j:
				row[j] = 0
			case poly.SegmentInside(g.anchors[i], g.anchors[j]):
				row[j] = g.anchors[i].Dist(g.anchors[j])
			default:
				row[j] = g.combine(g.anchorVert[i], g.attach(g.anchors[j]))
			}
		}
		g.anchorD[i] = row
	}
	return g
}

// NumAnchors returns the number of anchor points registered at construction.
func (g *VGraph) NumAnchors() int { return len(g.anchorD) }

// AnchorDist returns the precomputed geodesic distance between anchors i
// and j.
func (g *VGraph) AnchorDist(i, j int) float64 { return g.anchorD[i][j] }

// attach returns the straight-line distances from p to every vertex visible
// from p (+Inf for invisible vertices).
func (g *VGraph) attach(p Point) []float64 {
	d := make([]float64, len(g.verts))
	for i, v := range g.verts {
		if g.poly.SegmentInside(p, v) {
			d[i] = p.Dist(v)
		} else {
			d[i] = math.Inf(1)
		}
	}
	return d
}

// dijkstra computes geodesic distances to all vertices from the seed vector
// (distance per vertex, +Inf when unseeded) with a dense O(V^2) scan.
func (g *VGraph) dijkstra(seed []float64) []float64 {
	n := len(g.verts)
	dist := make([]float64, n)
	copy(dist, seed)
	done := make([]bool, n)
	for {
		u, best := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u < 0 {
			return dist
		}
		done[u] = true
		row := g.vadj[u]
		for v := 0; v < n; v++ {
			if nd := best + row[v]; nd < dist[v] {
				dist[v] = nd
			}
		}
	}
}

// combine returns the best geodesic through any vertex: min over v of
// fromSrc[v] + toDst[v].
func (g *VGraph) combine(fromSrc, toDst []float64) float64 {
	best := math.Inf(1)
	for v := range fromSrc {
		if s := fromSrc[v] + toDst[v]; s < best {
			best = s
		}
	}
	return best
}

// Dist returns the geodesic distance from a to b inside the polygon, or
// +Inf when either point lies outside.
func (g *VGraph) Dist(a, b Point) float64 {
	if !g.poly.Contains(a) || !g.poly.Contains(b) {
		return math.Inf(1)
	}
	if g.poly.SegmentInside(a, b) {
		return a.Dist(b)
	}
	return g.combine(g.dijkstra(g.attach(a)), g.attach(b))
}

// DistToAnchor returns the geodesic distance from free point p to anchor i,
// using the precomputed anchor-to-vertex distances.
func (g *VGraph) DistToAnchor(p Point, i int) float64 {
	if !g.poly.Contains(p) {
		return math.Inf(1)
	}
	if g.poly.SegmentInside(p, g.anchors[i]) {
		return p.Dist(g.anchors[i])
	}
	return g.combine(g.anchorVert[i], g.attach(p))
}

// Source is a reusable origin for repeated distance queries from one fixed
// point (e.g. scanning an object bucket from a door): the origin's
// visibility sweep and Dijkstra run once.
type Source struct {
	g *VGraph
	p Point
	// dist[v]: geodesic distance from p to vertex v.
	dist []float64
	ok   bool
}

// SourceFrom prepares a reusable origin at p.
func (g *VGraph) SourceFrom(p Point) *Source {
	s := &Source{g: g, p: p}
	if !g.poly.Contains(p) {
		return s
	}
	s.ok = true
	s.dist = g.dijkstra(g.attach(p))
	return s
}

// SourceFromAnchor prepares a reusable origin at anchor i without any
// geometric work.
func (g *VGraph) SourceFromAnchor(i int) *Source {
	return &Source{g: g, p: g.anchors[i], dist: g.anchorVert[i], ok: true}
}

// Dist returns the geodesic distance from the source point to b.
func (s *Source) Dist(b Point) float64 {
	if !s.ok || !s.g.poly.Contains(b) {
		return math.Inf(1)
	}
	if s.g.poly.SegmentInside(s.p, b) {
		return s.p.Dist(b)
	}
	return s.g.combine(s.dist, s.g.attach(b))
}

// MaxDist returns the greatest geodesic distance from the source to any
// polygon vertex (which bounds the distance to anywhere in the polygon).
func (s *Source) MaxDist() float64 {
	var m float64
	for _, d := range s.dist {
		if !math.IsInf(d, 1) && d > m {
			m = d
		}
	}
	return m
}

// MaxDistFrom returns the greatest geodesic distance from point a to any
// polygon vertex.
func (g *VGraph) MaxDistFrom(a Point) float64 {
	return g.SourceFrom(a).MaxDist()
}

// SizeBytes returns a deep size estimate of the graph's resident
// structures, used by model-size accounting.
func (g *VGraph) SizeBytes() int64 {
	nv := int64(len(g.verts))
	na := int64(len(g.anchors))
	return nv*16 + nv*nv*8 + na*nv*8 + na*na*8 + na*16
}

// DistToAnchor returns the geodesic distance from the source point to
// anchor i, combining the cached source vector with the precomputed
// anchor-to-vertex distances.
func (s *Source) DistToAnchor(i int) float64 {
	if !s.ok {
		return math.Inf(1)
	}
	if s.g.poly.SegmentInside(s.p, s.g.anchors[i]) {
		return s.p.Dist(s.g.anchors[i])
	}
	return s.g.combine(s.dist, s.g.anchorVert[i])
}

// DistToSource returns the geodesic distance between two prepared sources
// of the same graph at the cost of one visibility test plus one O(V)
// combine — the fast path for static-object bucket scans.
func (s *Source) DistToSource(o *Source) float64 {
	if !s.ok || !o.ok {
		return math.Inf(1)
	}
	if s.g.poly.SegmentInside(s.p, o.p) {
		return s.p.Dist(o.p)
	}
	return s.g.combine(s.dist, o.dist)
}
