package geom

import "sync"

// SnapshotArrays flattens the visibility graph's precomputed matrices into
// the row-major flat arrays a snapshot section stores: the vertex adjacency
// (nv x nv) and the per-anchor vertex distances (na x nv). The returned
// slices are fresh copies.
func (g *VGraph) SnapshotArrays() (vadjFlat, anchorVertFlat []float64) {
	nv := len(g.verts)
	vadjFlat = make([]float64, nv*nv)
	for i, row := range g.vadj {
		copy(vadjFlat[i*nv:], row)
	}
	anchorVertFlat = make([]float64, len(g.anchorVert)*nv)
	for i, row := range g.anchorVert {
		copy(anchorVertFlat[i*nv:], row)
	}
	return vadjFlat, anchorVertFlat
}

// RestoreVGraph rebuilds a VGraph from its snapshot arrays without redoing
// the O(V^2) visibility tests or the per-anchor Dijkstra sweeps. The rows of
// the restored matrices alias the flat arrays, so callers may hand in
// zero-copy snapshot views; the graph never mutates them. len(anchorVertFlat)
// must be len(anchors)*len(poly) and len(vadjFlat) len(poly)^2 — callers
// validate sizes (the snapshot loader does) before calling.
func RestoreVGraph(poly Polygon, anchors []Point, vadjFlat, anchorVertFlat []float64) *VGraph {
	g := &VGraph{
		poly:    poly,
		verts:   []Point(poly),
		anchors: append([]Point(nil), anchors...),
	}
	nv := len(g.verts)
	g.scratch = sync.Pool{New: func() any {
		return &vgScratch{
			seed: make([]float64, nv),
			dist: make([]float64, nv),
			done: make([]bool, nv),
		}
	}}
	g.vadj = make([][]float64, nv)
	for i := range g.vadj {
		g.vadj[i] = vadjFlat[i*nv : (i+1)*nv : (i+1)*nv]
	}
	g.anchorVert = make([][]float64, len(g.anchors))
	for i := range g.anchorVert {
		g.anchorVert[i] = anchorVertFlat[i*nv : (i+1)*nv : (i+1)*nv]
	}
	return g
}
