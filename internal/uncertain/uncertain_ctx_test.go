package uncertain_test

import (
	"context"
	"errors"
	"testing"

	"indoorsq/internal/indoor"
	"indoorsq/internal/testspaces"
	"indoorsq/internal/uncertain"
)

func TestUncertainCtxCancelled(t *testing.T) {
	f := testspaces.NewStrip()
	x := newIndex(f, []uncertain.Object{
		{ID: 1, Center: indoor.At(2.5, 9, 0), Radius: 0, Part: f.R1},
	}, 13)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	p := indoor.At(2.5, 8, 0)
	if _, err := x.ProbRangeCtx(ctx, p, 1.5, 0.5); !errors.Is(err, context.Canceled) {
		t.Fatalf("ProbRangeCtx(cancelled) = %v, want Canceled", err)
	}
	if _, err := x.ExpectedKNNCtx(ctx, p, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExpectedKNNCtx(cancelled) = %v, want Canceled", err)
	}
}

func TestUncertainCtxBackgroundEquivalence(t *testing.T) {
	f := testspaces.NewStrip()
	x := newIndex(f, []uncertain.Object{
		{ID: 1, Center: indoor.At(2.5, 9, 0), Radius: 0, Part: f.R1},
	}, 13)
	p := indoor.At(2.5, 8, 0)
	res, err := x.ProbRangeCtx(context.Background(), p, 1.5, 0.5)
	if err != nil || len(res) != 1 || res[0].ID != 1 || res[0].Value != 1 {
		t.Fatalf("ProbRangeCtx = %v, %v", res, err)
	}
}
