package uncertain_test

import (
	"math"
	"testing"

	"indoorsq/internal/cindex"
	"indoorsq/internal/geom"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/testspaces"
	"indoorsq/internal/uncertain"
)

func newIndex(f *testspaces.Strip, objs []uncertain.Object, samples int) *uncertain.Index {
	return uncertain.New(cindex.New(f.Space), f.Space, objs, samples)
}

func TestProbRangeCertainObject(t *testing.T) {
	f := testspaces.NewStrip()
	// Zero radius: behaves like a certain point object.
	x := newIndex(f, []uncertain.Object{
		{ID: 1, Center: indoor.At(2.5, 9, 0), Radius: 0, Part: f.R1},
	}, 13)
	p := indoor.At(2.5, 8, 0)
	res, err := x.ProbRange(p, 1.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 1 || res[0].Value != 1 {
		t.Fatalf("ProbRange = %v", res)
	}
	// Out of range: empty.
	res, err = x.ProbRange(p, 0.5, 0.5)
	if err != nil || len(res) != 0 {
		t.Fatalf("ProbRange tight = %v, %v", res, err)
	}
}

func TestProbRangePartialOverlap(t *testing.T) {
	f := testspaces.NewStrip()
	// Uncertainty disk radius 2 around (2.5, 8) in R1; query from the same
	// partition with a radius splitting the disk.
	x := newIndex(f, []uncertain.Object{
		{ID: 1, Center: indoor.At(2.5, 8, 0), Radius: 2, Part: f.R1},
	}, 13)
	p := indoor.At(2.5, 6.5, 0) // inside R1, below the center
	// r = 2.0: center (1.5 away) and the near half of the disk qualify.
	res, err := x.ProbRange(p, 2.0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("ProbRange = %v", res)
	}
	if res[0].Value <= 0 || res[0].Value >= 1 {
		t.Fatalf("partial overlap should give 0 < prob < 1, got %g", res[0].Value)
	}
	// Higher tau filters it out.
	res, _ = x.ProbRange(p, 2.0, 0.99)
	if len(res) != 0 {
		t.Fatalf("tau filter failed: %v", res)
	}
}

func TestProbRangeClipsToPartition(t *testing.T) {
	f := testspaces.NewStrip()
	// Object hugging R1's wall: samples beyond the wall are discarded, so
	// the distribution mass stays inside R1.
	x := newIndex(f, []uncertain.Object{
		{ID: 1, Center: indoor.At(0.5, 9.5, 0), Radius: 3, Part: f.R1},
	}, 13)
	// From the hall: every surviving sample needs the door D1.
	p := indoor.At(2.5, 5, 0)
	res, err := x.ProbRange(p, 8, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("clipped object missing: %v", res)
	}
}

func TestExpectedKNNOrdering(t *testing.T) {
	f := testspaces.NewStrip()
	x := newIndex(f, []uncertain.Object{
		{ID: 1, Center: indoor.At(2.5, 9, 0), Radius: 0.5, Part: f.R1},
		{ID: 2, Center: indoor.At(7.5, 9, 0), Radius: 0.5, Part: f.R2},
		{ID: 3, Center: indoor.At(17.5, 9, 0), Radius: 0.5, Part: f.R4},
	}, 9)
	p := indoor.At(2.5, 8, 0)
	res, err := x.ExpectedKNN(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].ID != 1 || res[1].ID != 2 {
		t.Fatalf("ExpectedKNN = %v", res)
	}
	if res[0].Value >= res[1].Value {
		t.Fatalf("expected distances not increasing: %v", res)
	}
	// Expected distance of the nearest is close to the center distance.
	if math.Abs(res[0].Value-1) > 0.6 {
		t.Fatalf("expected dist %g too far from 1", res[0].Value)
	}
}

func TestUncertainUnreachableExcluded(t *testing.T) {
	// An object in an exit-only room never qualifies from outside.
	b := indoor.NewBuilder("oneway", 1)
	hall := b.AddHallway(0, geom.RectPoly(geom.R(0, 0, 10, 4)))
	room := b.AddRoom(0, geom.RectPoly(geom.R(0, 4, 5, 8)))
	d := b.AddDoor(geom.Pt(2.5, 4), 0)
	b.ConnectOneWay(d, room, hall) // exit-only room
	sp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	x := uncertain.New(cindex.New(sp), sp, []uncertain.Object{
		{ID: 1, Center: indoor.At(2, 6, 0), Radius: 1, Part: room},
	}, 9)
	res, err := x.ProbRange(indoor.At(5, 2, 0), 100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("unreachable uncertain object returned: %v", res)
	}
	nn, err := x.ExpectedKNN(indoor.At(5, 2, 0), 3)
	if err != nil || len(nn) != 0 {
		t.Fatalf("ExpectedKNN over unreachable = %v, %v", nn, err)
	}
}

func TestUncertainErrors(t *testing.T) {
	f := testspaces.NewStrip()
	x := newIndex(f, nil, 5)
	if _, err := x.ProbRange(indoor.At(-9, -9, 0), 5, 0.5); err != query.ErrNoHost {
		t.Fatalf("err = %v", err)
	}
	if _, err := x.ExpectedKNN(indoor.At(-9, -9, 0), 3); err != query.ErrNoHost {
		t.Fatalf("err = %v", err)
	}
	if res, err := x.ExpectedKNN(indoor.At(2.5, 8, 0), 0); err != nil || res != nil {
		t.Fatalf("k=0 = %v, %v", res, err)
	}
	if x.Len() != 0 {
		t.Fatalf("Len = %d", x.Len())
	}
}
