// Package uncertain implements the uncertain-locations extension of the
// paper's Sec. 7: objects are uncertainty regions (disks clipped to their
// host partition, as indoor positioning errors cannot cross walls) rather
// than points. Table 6 singles out CINDEX for this setting because its
// geometric layer supports the region computations; this package builds on
// CINDEX accordingly.
//
// The continuous distribution is discretized into deterministic sample
// points (center plus concentric rings), following the probabilistic
// sample-based format of Xie et al. (ICDE 2013):
//
//   - ProbRange(p, r, τ) returns the objects whose probability of lying
//     within indoor distance r of p is at least τ;
//   - ExpectedKNN(p, k) ranks objects by expected indoor distance.
package uncertain

import (
	"context"
	"math"
	"sort"

	"indoorsq/internal/cindex"
	"indoorsq/internal/indoor"
	"indoorsq/internal/pq"
	"indoorsq/internal/query"
)

// Object is an uncertain static object: a disk of the given radius around
// Center, clipped to the host partition Part.
type Object struct {
	ID     int32
	Center indoor.Point
	Radius float64
	Part   indoor.PartitionID
}

// Result pairs an object with the probability (ProbRange) or the expected
// distance (ExpectedKNN) computed for it.
type Result struct {
	ID    int32
	Value float64
}

// Index evaluates probabilistic queries over uncertain objects.
type Index struct {
	sp      *indoor.Space
	cx      *cindex.Index
	objs    []Object
	samples [][]indoor.PointRef // per object: valid sample handles
}

// DefaultSamples is the number of candidate sample points per object.
const DefaultSamples = 13

// New builds the uncertain-object index over a CINDEX. samplesPerObject <= 0
// selects DefaultSamples. Samples falling outside the host partition are
// discarded (the disk is clipped); the center always remains.
func New(cx *cindex.Index, sp *indoor.Space, objs []Object, samplesPerObject int) *Index {
	if samplesPerObject <= 0 {
		samplesPerObject = DefaultSamples
	}
	x := &Index{sp: sp, cx: cx, objs: append([]Object(nil), objs...)}
	for _, o := range x.objs {
		part := sp.Partition(o.Part)
		pts := samplePoints(o, samplesPerObject)
		refs := make([]indoor.PointRef, 0, len(pts))
		for _, pt := range pts {
			if part.Poly.Contains(pt.XY()) {
				refs = append(refs, sp.Ref(o.Part, pt))
			}
		}
		if len(refs) == 0 {
			refs = append(refs, sp.Ref(o.Part, o.Center))
		}
		x.samples = append(x.samples, refs)
	}
	return x
}

// samplePoints lays out n deterministic candidates: the center plus rings
// at half and full radius.
func samplePoints(o Object, n int) []indoor.Point {
	pts := []indoor.Point{o.Center}
	if o.Radius <= 0 || n <= 1 {
		return pts
	}
	rest := n - 1
	inner := rest / 2
	outer := rest - inner
	addRing := func(r float64, k int) {
		for i := 0; i < k; i++ {
			a := 2 * math.Pi * float64(i) / float64(k)
			pts = append(pts, indoor.At(
				o.Center.X+r*math.Cos(a),
				o.Center.Y+r*math.Sin(a),
				o.Center.Floor))
		}
	}
	addRing(o.Radius/2, inner)
	addRing(o.Radius, outer)
	return pts
}

// Len returns the number of indexed objects.
func (x *Index) Len() int { return len(x.objs) }

// doorDistFrom runs a Dijkstra from p over the door graph (implemented via
// the CINDEX topological layer), bounded by limit and polling ctx every
// query.CheckInterval settled doors.
func (x *Index) doorDistFrom(ctx context.Context, p indoor.Point, vp indoor.PartitionID, limit float64) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := x.sp.NumDoors()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	var h pq.Heap[indoor.DoorID]
	for _, d := range x.sp.Partition(vp).Leave {
		if w := x.sp.WithinPointDoor(vp, p, d); w < dist[d] {
			dist[d] = w
			h.Push(d, w)
		}
	}
	settled := 0
	for h.Len() > 0 {
		d, dd := h.Pop()
		if dd > dist[d] || dd > limit {
			continue
		}
		if settled++; settled%query.CheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for _, v := range x.sp.Door(d).Enterable {
			for _, nd := range x.sp.Partition(v).Leave {
				if w, _ := x.sp.WithinDoorsCached(v, d, nd); !math.IsInf(w, 1) {
					if cand := dd + w; cand < dist[nd] {
						dist[nd] = cand
						h.Push(nd, cand)
					}
				}
			}
		}
	}
	return dist, nil
}

// sampleDist returns the indoor distance from p (with door distances dist,
// host vp) to one sample handle.
func (x *Index) sampleDist(dist []float64, p indoor.Point, vp indoor.PartitionID, ref indoor.PointRef) float64 {
	best := math.Inf(1)
	if ref.V == vp {
		best = x.sp.RefDist(x.sp.Ref(vp, p), ref)
	}
	for _, d := range x.sp.Partition(ref.V).Enter {
		if math.IsInf(dist[d], 1) {
			continue
		}
		if cand := dist[d] + x.sp.RefToDoor(ref, d); cand < best {
			best = cand
		}
	}
	return best
}

// ProbRange returns the objects whose probability of being within indoor
// distance r of p is at least tau (0 < tau <= 1), with their probabilities,
// ordered by descending probability then id.
func (x *Index) ProbRange(p indoor.Point, r, tau float64) ([]Result, error) {
	return x.ProbRangeCtx(context.Background(), p, r, tau)
}

// ProbRangeCtx is ProbRange bounded by ctx: the door Dijkstra and the
// per-object sample scoring both poll the context, so a cancelled or expired
// query aborts mid-computation.
func (x *Index) ProbRangeCtx(ctx context.Context, p indoor.Point, r, tau float64) ([]Result, error) {
	vp, ok := x.cx.Host(p)
	if !ok {
		return nil, query.ErrNoHost
	}
	dist, err := x.doorDistFrom(ctx, p, vp, r)
	if err != nil {
		return nil, err
	}
	var out []Result
	for i, o := range x.objs {
		if i%query.CheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Geometric-layer prefilter: same-floor objects whose disk is
		// Euclidean-farther than r cannot qualify.
		if o.Center.Floor == p.Floor && vp != o.Part {
			if p.XY().Dist(o.Center.XY())-o.Radius > r {
				continue
			}
		}
		in := 0
		for _, ref := range x.samples[i] {
			if x.sampleDist(dist, p, vp, ref) <= r {
				in++
			}
		}
		if prob := float64(in) / float64(len(x.samples[i])); prob >= tau {
			out = append(out, Result{ID: o.ID, Value: prob})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Value != out[b].Value {
			return out[a].Value > out[b].Value
		}
		return out[a].ID < out[b].ID
	})
	return out, nil
}

// ExpectedKNN returns the k objects with the smallest expected indoor
// distance from p (mean over reachable samples); objects with no reachable
// sample are skipped.
func (x *Index) ExpectedKNN(p indoor.Point, k int) ([]Result, error) {
	return x.ExpectedKNNCtx(context.Background(), p, k)
}

// ExpectedKNNCtx is ExpectedKNN bounded by ctx; its unbounded door Dijkstra
// (the expected distance needs every reachable door) is exactly the kind of
// venue-wide sweep a deadline should be able to cut short.
func (x *Index) ExpectedKNNCtx(ctx context.Context, p indoor.Point, k int) ([]Result, error) {
	if k <= 0 {
		return nil, nil
	}
	vp, ok := x.cx.Host(p)
	if !ok {
		return nil, query.ErrNoHost
	}
	dist, err := x.doorDistFrom(ctx, p, vp, math.Inf(1))
	if err != nil {
		return nil, err
	}
	var out []Result
	for i, o := range x.objs {
		if i%query.CheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		sum, cnt := 0.0, 0
		for _, ref := range x.samples[i] {
			if d := x.sampleDist(dist, p, vp, ref); !math.IsInf(d, 1) {
				sum += d
				cnt++
			}
		}
		if cnt > 0 {
			out = append(out, Result{ID: o.ID, Value: sum / float64(cnt)})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Value != out[b].Value {
			return out[a].Value < out[b].Value
		}
		return out[a].ID < out[b].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}
