package idindex

import (
	"fmt"

	"indoorsq/internal/indoor"
	"indoorsq/internal/reach"
	"indoorsq/internal/snapshot"
)

// AppendTo writes the three matrices (wide or narrow distance variant, order
// index, first hop) as the TagIDIndex section — the single most expensive
// structure the snapshot spares a replica from rebuilding (n full-graph
// Dijkstra sweeps).
func (ix *Index) AppendTo(w *snapshot.Writer) {
	sec := w.Begin(snapshot.TagIDIndex)
	sec.U64(uint64(ix.n))
	sec.Bool(ix.d2d32 == nil)
	sec.F64s(ix.d2d)
	sec.F32s(ix.d2d32)
	sec.I32s(ix.idx)
	sec.I32s(ix.fh)
}

// LoadFrom reconstructs the engine from the TagIDIndex section over an
// already-loaded space, adopting rch (typically the snapshot's own
// FromGraph summary) as the pruning summary. Matrices may alias the snapshot
// buffer. The caller is responsible for the space fingerprint check; sizes
// are still validated here.
func LoadFrom(r *snapshot.Reader, sp *indoor.Space, rch *reach.Reach) (*Index, error) {
	sec, err := r.Section(snapshot.TagIDIndex)
	if err != nil {
		return nil, err
	}
	ix := &Index{sp: sp, n: sec.Int()}
	wide := sec.Bool()
	ix.d2d = sec.F64s()
	ix.d2d32 = sec.F32s()
	ix.idx = sec.I32s()
	ix.fh = sec.I32s()
	if err := sec.Err(); err != nil {
		return nil, err
	}
	nn := ix.n * ix.n
	if ix.n != sp.NumDoors() ||
		(wide && (len(ix.d2d) != nn || ix.d2d32 != nil)) ||
		(!wide && (len(ix.d2d32) != nn || ix.d2d != nil)) ||
		len(ix.idx) != nn || len(ix.fh) != nn {
		return nil, fmt.Errorf("idindex: snapshot matrices inconsistent with %d doors", sp.NumDoors())
	}
	ix.reach = rch
	cell := int64(8)
	if !wide {
		cell = 4
	}
	ix.size = int64(ix.n)*int64(ix.n)*(cell+4+4) + sp.BaseSizeBytes() + sp.GeomSizeBytes() + rch.SizeBytes()
	return ix, nil
}
