package idindex

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"indoorsq/internal/spacegen"
	"indoorsq/internal/testspaces"
)

// TestParallelBuildDeterministic asserts parallel construction produces
// distance, order and first-hop matrices byte-identical to a sequential
// (one-worker) build.
func TestParallelBuildDeterministic(t *testing.T) {
	sp := testspaces.RandomGrid(9, 4, 5, 2, 7, 0.25)
	seq := NewWorkers(sp, 1)
	for _, w := range []int{2, 4, 8} {
		par := NewWorkers(sp, w)
		if !reflect.DeepEqual(seq.d2d, par.d2d) {
			t.Fatalf("d2d differs at workers=%d", w)
		}
		if !reflect.DeepEqual(seq.idx, par.idx) {
			t.Fatalf("idx differs at workers=%d", w)
		}
		if !reflect.DeepEqual(seq.fh, par.fh) {
			t.Fatalf("fh differs at workers=%d", w)
		}
	}
}

// TestParallelBuildDeterministicSpacegen repeats the matrix-identity check
// over generated venues sampling varied hallway topologies, decompositions,
// one-way doors, and floor counts — the same corpus family the differential
// harness sweeps. Distances are compared at the Float64bits level so even a
// sign-of-zero or NaN-payload divergence between worker counts would fail.
func TestParallelBuildDeterministicSpacegen(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := spacegen.Params{
			Floors:     1 + rng.Intn(3),
			Rows:       1 + rng.Intn(3),
			Cols:       2 + rng.Intn(3),
			Hall:       spacegen.HallKind(rng.Intn(3)),
			ExtraDoors: rng.Intn(6),
			OneWayFrac: float64(rng.Intn(3)) / 2,
			Imbalance:  rng.Float64(),
			Decompose:  rng.Intn(2) == 1,
		}.Normalize()
		sp, err := spacegen.Generate(seed, p)
		if err != nil {
			t.Fatalf("seed=%d: generate: %v", seed, err)
		}
		seq := NewWorkers(sp, 1)
		for _, w := range []int{3, 8} {
			par := NewWorkers(sp, w)
			for i := range seq.d2d {
				if math.Float64bits(seq.d2d[i]) != math.Float64bits(par.d2d[i]) {
					t.Fatalf("seed=%d workers=%d: d2d[%d] %x != %x",
						seed, w, i, math.Float64bits(par.d2d[i]), math.Float64bits(seq.d2d[i]))
				}
			}
			if !reflect.DeepEqual(seq.idx, par.idx) || !reflect.DeepEqual(seq.fh, par.fh) {
				t.Fatalf("seed=%d workers=%d: order/first-hop matrices differ", seed, w)
			}
		}
	}
}
