package idindex

import (
	"reflect"
	"testing"

	"indoorsq/internal/testspaces"
)

// TestParallelBuildDeterministic asserts parallel construction produces
// distance, order and first-hop matrices byte-identical to a sequential
// (one-worker) build.
func TestParallelBuildDeterministic(t *testing.T) {
	sp := testspaces.RandomGrid(9, 4, 5, 2, 7, 0.25)
	seq := NewWorkers(sp, 1)
	for _, w := range []int{2, 4, 8} {
		par := NewWorkers(sp, w)
		if !reflect.DeepEqual(seq.d2d, par.d2d) {
			t.Fatalf("d2d differs at workers=%d", w)
		}
		if !reflect.DeepEqual(seq.idx, par.idx) {
			t.Fatalf("idx differs at workers=%d", w)
		}
		if !reflect.DeepEqual(seq.fh, par.fh) {
			t.Fatalf("fh differs at workers=%d", w)
		}
	}
}
