package idindex

import (
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"indoorsq/internal/indoor"
	"indoorsq/internal/reach"
)

// persisted is the on-disk layout of an IDINDEX: the three matrices plus a
// fingerprint of the space they were computed for. Infinities are encoded
// as NaN-free sentinels since gob handles them, but the fingerprint guards
// against loading matrices over the wrong venue.
type persisted struct {
	Fingerprint uint64
	N           int
	D2D         []float64
	D2D32       []float32
	Idx         []int32
	FH          []int32
}

// fingerprint summarizes the door layout of a space: door count, partition
// count, and a hash of every door's coordinates and floor.
func fingerprint(sp *indoor.Space) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(sp.NumDoors()))
	put(uint64(sp.NumPartitions()))
	for i := 0; i < sp.NumDoors(); i++ {
		d := sp.Door(indoor.DoorID(i))
		put(math.Float64bits(d.P.X))
		put(math.Float64bits(d.P.Y))
		put(uint64(d.Floor))
	}
	return h.Sum64()
}

// Save writes the precomputed matrices so a later process can skip the
// expensive construction (Sec. 6.1 reports it as IDINDEX's main cost).
func (ix *Index) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(persisted{
		Fingerprint: fingerprint(ix.sp),
		N:           ix.n,
		D2D:         ix.d2d,
		D2D32:       ix.d2d32,
		Idx:         ix.idx,
		FH:          ix.fh,
	})
}

// Load restores an IDINDEX previously written by Save over the same space.
// It fails when the stream was produced for a different venue.
func Load(r io.Reader, sp *indoor.Space) (*Index, error) {
	var p persisted
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("idindex: load: %w", err)
	}
	if p.Fingerprint != fingerprint(sp) {
		return nil, fmt.Errorf("idindex: load: matrices belong to a different space")
	}
	nn := p.N * p.N
	wide := len(p.D2D) == nn && len(p.D2D32) == 0
	narrow := len(p.D2D32) == nn && len(p.D2D) == 0
	if p.N != sp.NumDoors() || (!wide && !narrow) ||
		len(p.Idx) != nn || len(p.FH) != nn {
		return nil, fmt.Errorf("idindex: load: corrupt matrix sizes")
	}
	ix := &Index{
		sp:    sp,
		n:     p.N,
		d2d:   p.D2D,
		d2d32: p.D2D32,
		idx:   p.Idx,
		fh:    p.FH,
	}
	// The reachability summary is cheap relative to the matrices, so it is
	// rebuilt from the space rather than persisted.
	ix.reach = reach.FromSpace(sp, nil, 0)
	cell := int64(8)
	if narrow {
		cell = 4
	}
	ix.size = int64(p.N)*int64(p.N)*(cell+4+4) + sp.BaseSizeBytes() + sp.GeomSizeBytes() + ix.reach.SizeBytes()
	return ix, nil
}
