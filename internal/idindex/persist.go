package idindex

import (
	"bufio"
	"fmt"
	"io"

	"indoorsq/internal/doorgraph"
	"indoorsq/internal/indoor"
	"indoorsq/internal/reach"
	"indoorsq/internal/snapshot"
)

// Save writes the precomputed matrices so a later process can skip the
// expensive construction (Sec. 6.1 reports it as IDINDEX's main cost).
//
// The stream is a single-section snapshot-format file (see
// internal/snapshot), replacing the original gob encoding: same Save/Load
// API, but the matrices go to disk as raw little-endian arrays with
// per-section CRCs, and the header fingerprint now covers the full space
// topology (indoor.Fingerprint) instead of door coordinates alone — two
// venues with identical door positions but, say, a flipped one-way direction
// no longer pass the guard.
func (ix *Index) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	sw := snapshot.NewWriter(bw, indoor.Fingerprint(ix.sp))
	ix.AppendTo(sw)
	if err := sw.Close(); err != nil {
		return fmt.Errorf("idindex: save: %w", err)
	}
	return bw.Flush()
}

// Load restores an IDINDEX previously written by Save over the same space.
// It fails when the stream was produced for a different venue (or is not a
// snapshot-format stream at all — old gob streams are rejected by the magic
// check and must be regenerated).
func Load(r io.Reader, sp *indoor.Space) (*Index, error) {
	sr, err := snapshot.ReadFrom(r)
	if err != nil {
		return nil, fmt.Errorf("idindex: load: %w", err)
	}
	if got, want := sr.Fingerprint(), indoor.Fingerprint(sp); got != want {
		return nil, fmt.Errorf("idindex: load: matrices belong to a different space (fingerprint %016x, want %016x)", got, want)
	}
	// The reachability summary is cheap relative to the matrices, so it is
	// rebuilt from the space — over the built door graph, exactly as New
	// does, keeping the loaded engine's pruning and size accounting
	// identical to a fresh build.
	rch := reach.FromGraph(doorgraph.Build(sp), sp, 0)
	ix, err := LoadFrom(sr, sp, rch)
	if err != nil {
		return nil, fmt.Errorf("idindex: load: %w", err)
	}
	return ix, nil
}
