// Package idindex implements IDINDEX (Lu et al., ICDE 2012; Sec. 3.2 of the
// paper): on top of the distance-aware model it precomputes the global
// door-to-door distance matrix Md2d, the distance index matrix Midx whose
// rows order all doors by distance from a source door, and a first-hop door
// matrix used to reconstruct shortest paths by recursive concatenation.
//
// Query processing never runs Dijkstra at query time: shortest distances are
// matrix lookups, and RQ/kNN expand doors in globally increasing distance
// order by k-way merging the sorted Midx rows of the source partition's
// leaveable doors.
package idindex

import (
	"context"
	"math"
	"sort"

	"indoorsq/internal/doorgraph"
	"indoorsq/internal/exec"
	"indoorsq/internal/indoor"
	"indoorsq/internal/obs"
	"indoorsq/internal/pq"
	"indoorsq/internal/query"
	"indoorsq/internal/reach"
)

// Index is the IDINDEX engine.
type Index struct {
	sp    *indoor.Space
	store *query.ObjectStore

	n     int       // number of doors
	d2d   []float64 // n x n row-major: Md2d[i*n+j] = dist door i -> door j
	d2d32 []float32 // compact variant: float32 matrix instead of d2d
	idx   []int32   // n x n: Midx[i*n+k] = id of the k-th nearest door from i
	fh    []int32   // n x n: first door after i on the shortest path i -> j

	// reach is the SCC condensation of the same door graph the matrices
	// were swept from, so "summary says unreachable" coincides exactly
	// with "matrix entry is +Inf"; SetReach(nil) disables pruning.
	reach *reach.Reach

	size int64
}

// New builds the IDINDEX over a space, precomputing all global door-to-door
// distances (the paper's costliest construction, Sec. 6.1).
func New(sp *indoor.Space) *Index { return build(sp, false, 0) }

// NewWorkers builds the IDINDEX with an explicit construction worker count
// (workers <= 0 means GOMAXPROCS). The distance, order and first-hop
// matrices are identical for every worker count.
func NewWorkers(sp *indoor.Space, workers int) *Index { return build(sp, false, workers) }

// NewCompact builds the IDINDEX with float32 distance matrices, halving the
// dominant memory term (Sec. 6.1 flags the matrices as hard to fit in
// memory at scale) at the cost of ~1e-7 relative distance error.
func NewCompact(sp *indoor.Space) *Index { return build(sp, true, 0) }

func build(sp *indoor.Space, compact bool, workers int) *Index {
	n := sp.NumDoors()
	ix := &Index{
		sp:  sp,
		n:   n,
		idx: make([]int32, n*n),
		fh:  make([]int32, n*n),
	}
	if compact {
		ix.d2d32 = make([]float32, n*n)
	} else {
		ix.d2d = make([]float64, n*n)
	}

	// Door graph shared by the n Dijkstra sweeps, built with the same
	// worker budget, and the reachability condensation derived from it.
	dg := doorgraph.BuildWorkers(sp, workers)
	ix.reach = reach.FromGraph(dg, sp, workers)

	// One Dijkstra per source door, fanned out as chunked source ranges
	// (exec.Chunks): every chunk writes disjoint matrix rows, so no
	// synchronization is needed beyond the range counter, and the merge is
	// deterministic because row src depends only on src. Each chunk reuses
	// a pooled scratch across its sources, so the sweeps allocate nothing
	// per source.
	exec.Chunks(n, workers, func(lo, hi int) {
		s := dg.AcquireScratch()
		defer dg.ReleaseScratch(s)
		dist := make([]float64, n)
		for src := lo; src < hi; src++ {
			s.Run(dg, int32(src), false)
			s.CopyDist(dist)
			if compact {
				row := ix.d2d32[src*n : (src+1)*n]
				for i, v := range dist {
					row[i] = float32(v)
				}
			} else {
				copy(ix.d2d[src*n:(src+1)*n], dist)
			}
			s.CopyFirst(ix.fh[src*n : (src+1)*n])

			order := ix.idx[src*n : (src+1)*n]
			for i := range order {
				order[i] = int32(i)
			}
			sort.Slice(order, func(a, b int) bool {
				da, db := dist[order[a]], dist[order[b]]
				if da != db {
					return da < db
				}
				return order[a] < order[b]
			})
		}
	})
	cell := int64(8)
	if compact {
		cell = 4
	}
	ix.size = int64(n)*int64(n)*(cell+4+4) + sp.BaseSizeBytes() + sp.GeomSizeBytes() + ix.reach.SizeBytes()
	return ix
}

// Reach returns the index's reachability summary (nil after SetReach(nil)).
func (ix *Index) Reach() *reach.Reach { return ix.reach }

// SetReach swaps the reachability summary used to prune query processing
// (nil disables pruning — an ablation knob). Results are bit-identical
// either way.
func (ix *Index) SetReach(r *reach.Reach) { ix.reach = r }

// dd returns one matrix entry regardless of storage width.
func (ix *Index) dd(i int) float64 {
	if ix.d2d32 != nil {
		v := ix.d2d32[i]
		if math.IsInf(float64(v), 1) {
			return math.Inf(1)
		}
		return float64(v)
	}
	return ix.d2d[i]
}

// Name implements query.Engine.
func (ix *Index) Name() string { return "IDIndex" }

// SetObjects implements query.Engine.
func (ix *Index) SetObjects(objs []query.Object) {
	ix.store = query.NewObjectStore(ix.sp, objs)
}

// SizeBytes implements query.Engine.
func (ix *Index) SizeBytes() int64 { return ix.size }

// DoorDist returns the precomputed shortest indoor distance between doors.
func (ix *Index) DoorDist(from, to indoor.DoorID) float64 {
	return ix.dd(int(from)*ix.n + int(to))
}

// NthNearest returns the door whose distance from `from` is the k-th
// smallest (k is 0-based; k = 0 is `from` itself).
func (ix *Index) NthNearest(from indoor.DoorID, k int) indoor.DoorID {
	return indoor.DoorID(ix.idx[int(from)*ix.n+k])
}

// mergeEntry is a frontier entry of the k-way Midx merge: list src (source
// door src of the host partition) is at position pos of its sorted row.
type mergeEntry struct {
	src int32 // index into the source-door list
	pos int32
}

// expand visits doors in globally increasing indoor distance from p,
// invoking scan for each first visit with the door's exact distance. scan
// returns the current pruning radius (+Inf to keep going); expansion stops
// once the next frontier distance exceeds it. A tracked st interrupts the
// merge between door visits with the context's error.
func (ix *Index) expand(v0 indoor.PartitionID, p indoor.Point, st *query.Stats, scan func(d indoor.DoorID, dist float64) float64) error {
	leave := ix.sp.Partition(v0).Leave
	if len(leave) == 0 {
		return nil
	}
	off := make([]float64, len(leave))
	for i, d := range leave {
		off[i] = ix.sp.WithinPointDoor(v0, p, d)
	}
	var h pq.Heap[mergeEntry]
	for i := range leave {
		// Position 0 of row leave[i] is leave[i] itself at distance 0.
		h.Push(mergeEntry{src: int32(i), pos: 0}, off[i])
	}
	// Reachability guard before bucket scans. The merge pops doors by exact
	// indoor distance (and never pushes +Inf matrix entries), so unlike the
	// online engines this check is a belt-and-braces bound: it can only fire
	// if the downstream summary is tighter than the door's own distance.
	rc := ix.reach
	prune := rc != nil && rc.NumSCCs() > 1
	var hits, skips int64
	if prune {
		defer func() {
			reach.Metrics.PruneHits.Add(hits)
			reach.Metrics.PruneSkips.Add(skips)
		}()
	}
	visited := make(map[indoor.DoorID]bool, 64)
	radius := math.Inf(1)
	for h.Len() > 0 {
		e, edist := h.Pop()
		if edist > radius {
			break
		}
		srcDoor := leave[e.src]
		d := ix.NthNearest(srcDoor, int(e.pos))
		if int(e.pos)+1 < ix.n {
			nd := off[e.src] + ix.dd(int(srcDoor)*ix.n+int(ix.idx[int(srcDoor)*ix.n+int(e.pos)+1]))
			if !math.IsInf(nd, 1) {
				h.Push(mergeEntry{src: e.src, pos: e.pos + 1}, nd)
			}
		}
		if visited[d] {
			continue
		}
		visited[d] = true
		st.Door()
		if err := st.Interrupted(); err != nil {
			return err
		}
		if prune && rc.MBRPrune(d, p, radius) {
			hits++
			continue
		}
		if prune {
			skips++
		}
		radius = scan(d, edist)
	}
	st.Alloc(int64(len(off))*8 + int64(h.Cap())*16 + int64(len(visited))*9)
	return nil
}

// Range implements query.Engine.
func (ix *Index) Range(p indoor.Point, r float64, st *query.Stats) ([]int32, error) {
	endHost := st.Span(obs.StageHost)
	v0, ok := ix.sp.HostPartition(p)
	endHost()
	if !ok {
		return nil, query.ErrNoHost
	}
	res := make(map[int32]struct{})
	for _, nb := range ix.store.RangeScan(ix.sp, v0, p, 0, r, nil) {
		res[nb.ID] = struct{}{}
	}
	// The k-way merge over precomputed Midx rows is an index probe, not a
	// graph expansion: no Dijkstra runs at query time.
	endProbe := st.Span(obs.StageProbe)
	err := ix.expand(v0, p, st, func(d indoor.DoorID, dist float64) float64 {
		if dist <= r {
			for _, v := range ix.sp.Door(d).Enterable {
				for _, nb := range ix.store.RangeScanDoor(ix.sp, v, d, dist, r-dist, nil) {
					res[nb.ID] = struct{}{}
				}
			}
		}
		return r
	})
	endProbe()
	if err != nil {
		return nil, err
	}
	st.Alloc(int64(len(res)) * 8)

	endRefine := st.Span(obs.StageRefine)
	defer endRefine()
	out := make([]int32, 0, len(res))
	for id := range res {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// KNN implements query.Engine.
func (ix *Index) KNN(p indoor.Point, k int, st *query.Stats) ([]query.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	endHost := st.Span(obs.StageHost)
	v0, ok := ix.sp.HostPartition(p)
	endHost()
	if !ok {
		return nil, query.ErrNoHost
	}
	tk := query.NewTopK(k)
	for _, i := range ix.store.Bucket(v0) {
		o := ix.store.At(i)
		tk.Offer(o.ID, ix.sp.WithinPoints(v0, p, o.Loc))
	}
	endProbe := st.Span(obs.StageProbe)
	err := ix.expand(v0, p, st, func(d indoor.DoorID, dist float64) float64 {
		if dist <= tk.Bound() {
			for _, v := range ix.sp.Door(d).Enterable {
				for _, i := range ix.store.Bucket(v) {
					tk.Offer(ix.store.At(i).ID, dist+ix.store.DistToDoor(ix.sp, i, d))
				}
			}
		}
		return tk.Bound()
	})
	endProbe()
	if err != nil {
		return nil, err
	}
	st.Alloc(tk.SizeBytes())
	endRefine := st.Span(obs.StageRefine)
	defer endRefine()
	return tk.Results(), nil
}

// SPD implements query.Engine: the shortest distance is a loop over the two
// door sets (O(d^2), Sec. 4.2), and the path is reconstructed by chaining
// first-hop doors.
func (ix *Index) SPD(p, q indoor.Point, st *query.Stats) (query.Path, error) {
	endHost := st.Span(obs.StageHost)
	vp, ok := ix.sp.HostPartition(p)
	if !ok {
		endHost()
		return query.Path{}, query.ErrNoHost
	}
	vq, ok := ix.sp.HostPartition(q)
	endHost()
	if !ok {
		return query.Path{}, query.ErrNoHost
	}

	best := math.Inf(1)
	bestP, bestQ := indoor.NoDoor, indoor.NoDoor
	if vp == vq {
		best = ix.sp.WithinPointsStop(vp, p, q, st.Stop())
	}

	// Reachability gate: when no leaveable door of vp can reach vq in the
	// condensation, every Md2d entry of the double loop below is +Inf, so
	// the loop (and the two point-to-door sweeps) can be skipped outright.
	if rc := ix.reach; rc != nil && rc.NumSCCs() > 1 {
		from := rc.FromDoors(ix.sp.Partition(vp).Leave, nil)
		if !from.CanReachPart(vq) {
			reach.Metrics.PruneHits.Add(1)
			if err := st.Interrupted(); err != nil {
				return query.Path{}, err
			}
			if math.IsInf(best, 1) {
				return query.Path{}, query.ErrUnreachable
			}
			return query.Path{Source: p, Target: q, Doors: nil, Dist: best}, nil
		}
		reach.Metrics.PruneSkips.Add(1)
	}

	endProbe := st.Span(obs.StageProbe)
	defer endProbe()
	leave := ix.sp.Partition(vp).Leave
	enter := ix.sp.Partition(vq).Enter
	headD := make([]float64, len(leave))
	for i, dp := range leave {
		headD[i] = ix.sp.WithinPointDoor(vp, p, dp)
		st.Door()
	}
	tailD := make([]float64, len(enter))
	for j, dq := range enter {
		tailD[j] = ix.sp.WithinPointDoor(vq, q, dq)
		st.Door()
	}
	if err := st.Interrupted(); err != nil {
		return query.Path{}, err
	}
	for i, dp := range leave {
		base := int(dp) * ix.n
		for j, dq := range enter {
			if cand := headD[i] + ix.dd(base+int(dq)) + tailD[j]; cand < best {
				best = cand
				bestP, bestQ = dp, dq
			}
		}
	}
	st.Alloc(int64(len(leave)+len(enter)) * 8)
	endProbe()

	if math.IsInf(best, 1) {
		return query.Path{}, query.ErrUnreachable
	}
	endRefine := st.Span(obs.StageRefine)
	defer endRefine()
	var doors []indoor.DoorID
	if bestP != indoor.NoDoor {
		doors = append(doors, bestP)
		for cur := bestP; cur != bestQ; {
			next := indoor.DoorID(ix.fh[int(cur)*ix.n+int(bestQ)])
			doors = append(doors, next)
			cur = next
		}
	}
	st.Alloc(int64(len(doors)) * 4)
	return query.Path{Source: p, Target: q, Doors: doors, Dist: best}, nil
}

// RangeCtx implements query.EngineCtx: Range bounded by ctx and any
// attached query.Budget, observed by any attached obs binding.
func (ix *Index) RangeCtx(ctx context.Context, p indoor.Point, r float64, st *query.Stats) (ids []int32, err error) {
	st, done := query.Begin(ctx, ix.Name(), obs.OpRange, st)
	if done != nil {
		defer func() { done(err) }()
	}
	if err = st.Interrupted(); err != nil {
		return nil, err
	}
	ids, err = ix.Range(p, r, st)
	return ids, err
}

// KNNCtx implements query.EngineCtx.
func (ix *Index) KNNCtx(ctx context.Context, p indoor.Point, k int, st *query.Stats) (nn []query.Neighbor, err error) {
	st, done := query.Begin(ctx, ix.Name(), obs.OpKNN, st)
	if done != nil {
		defer func() { done(err) }()
	}
	if err = st.Interrupted(); err != nil {
		return nil, err
	}
	nn, err = ix.KNN(p, k, st)
	return nn, err
}

// SPDCtx implements query.EngineCtx.
func (ix *Index) SPDCtx(ctx context.Context, p, q indoor.Point, st *query.Stats) (path query.Path, err error) {
	st, done := query.Begin(ctx, ix.Name(), obs.OpSPD, st)
	if done != nil {
		defer func() { done(err) }()
	}
	if err = st.Interrupted(); err != nil {
		return query.Path{}, err
	}
	path, err = ix.SPD(p, q, st)
	return path, err
}

// ensureStore lazily creates an empty object store.
func (ix *Index) ensureStore() *query.ObjectStore {
	if ix.store == nil {
		ix.store = query.NewObjectStore(ix.sp, nil)
	}
	return ix.store
}

// InsertObject implements query.ObjectUpdater.
func (ix *Index) InsertObject(o query.Object) bool {
	return ix.ensureStore().Insert(ix.sp, o)
}

// DeleteObject implements query.ObjectUpdater.
func (ix *Index) DeleteObject(id int32) bool {
	return ix.ensureStore().Delete(id)
}

// MoveObject implements query.ObjectUpdater.
func (ix *Index) MoveObject(id int32, loc indoor.Point, part indoor.PartitionID) bool {
	return ix.ensureStore().Move(ix.sp, id, loc, part)
}
