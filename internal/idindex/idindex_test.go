package idindex_test

import (
	"bytes"
	"math"
	"testing"

	"indoorsq/internal/enginetest"
	"indoorsq/internal/idindex"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/testspaces"
)

func TestConformance(t *testing.T) {
	enginetest.Run(t, func(sp *indoor.Space) query.Engine {
		return idindex.New(sp)
	})
}

func TestDoorDistMatrix(t *testing.T) {
	f := testspaces.NewStrip()
	ix := idindex.New(f.Space)

	// D1 -> D4 straight through the hall.
	if d := ix.DoorDist(f.D1, f.D4); math.Abs(d-15) > 1e-9 {
		t.Fatalf("DoorDist(D1,D4) = %g, want 15", d)
	}
	if d := ix.DoorDist(f.D1, f.D1); d != 0 {
		t.Fatalf("DoorDist(D1,D1) = %g, want 0", d)
	}
	// Asymmetry via the one-way D8: reaching D8 requires entering R6.
	// D6 -> D8 goes into R6: dist((7.5,4),(10,2)) = sqrt(10.25).
	want := math.Sqrt(10.25)
	if d := ix.DoorDist(f.D6, f.D8); math.Abs(d-want) > 1e-9 {
		t.Fatalf("DoorDist(D6,D8) = %g, want %g", d, want)
	}
	// D8 -> D6 must go through R7 and the hall: D8->D7 in R7 + D7->D6 in hall.
	wantBack := math.Sqrt(25+4) + 7.5
	if d := ix.DoorDist(f.D8, f.D6); math.Abs(d-wantBack) > 1e-9 {
		t.Fatalf("DoorDist(D8,D6) = %g, want %g", d, wantBack)
	}
}

func TestMidxRowsAreSortedPermutations(t *testing.T) {
	sp := testspaces.RandomGrid(3, 4, 4, 2, 6, 0.2)
	ix := idindex.New(sp)
	n := sp.NumDoors()
	for src := 0; src < n; src++ {
		seen := make([]bool, n)
		prev := math.Inf(-1)
		for k := 0; k < n; k++ {
			d := ix.NthNearest(indoor.DoorID(src), k)
			if seen[d] {
				t.Fatalf("row %d: door %d repeated", src, d)
			}
			seen[d] = true
			dist := ix.DoorDist(indoor.DoorID(src), d)
			if !math.IsInf(dist, 1) && dist < prev {
				t.Fatalf("row %d: distances not sorted at k=%d", src, k)
			}
			if !math.IsInf(dist, 1) {
				prev = dist
			}
		}
		// Self comes first at distance zero.
		if ix.NthNearest(indoor.DoorID(src), 0) != indoor.DoorID(src) {
			t.Fatalf("row %d: first entry is not self", src)
		}
	}
}

func TestMatrixMatchesIDModelTraversal(t *testing.T) {
	// The precomputed matrix must agree with on-the-fly Dijkstra over the
	// same space for every door pair.
	f := testspaces.NewStrip()
	ix := idindex.New(f.Space)
	var st query.Stats
	ix.SetObjects(nil)
	for di := 0; di < f.Space.NumDoors(); di++ {
		for dj := 0; dj < f.Space.NumDoors(); dj++ {
			d1 := indoor.DoorID(di)
			d2 := indoor.DoorID(dj)
			want := ix.DoorDist(d1, d2)
			p := f.Space.DoorPoint(d1)
			q := f.Space.DoorPoint(d2)
			path, err := ix.SPD(p, q, &st)
			if err != nil {
				continue
			}
			// Door points host in an adjacent partition, so the SPD may be
			// shorter than the matrix entry only when direction rules allow
			// skipping; it must never be longer.
			if path.Dist > want+1e-9 {
				t.Fatalf("SPD(%d,%d) = %g exceeds matrix %g", di, dj, path.Dist, want)
			}
		}
	}
}

func TestSPDPathReconstruction(t *testing.T) {
	f := testspaces.NewStrip()
	ix := idindex.New(f.Space)
	ix.SetObjects(nil)
	var st query.Stats
	path, err := ix.SPD(indoor.At(2.5, 8, 0), indoor.At(17.5, 8, 0), &st)
	if err != nil {
		t.Fatal(err)
	}
	if len(path.Doors) != 2 || path.Doors[0] != f.D1 || path.Doors[1] != f.D4 {
		t.Fatalf("path doors = %v, want [D1 D4]", path.Doors)
	}
	// Path length equals the sum of its hops.
	sum := f.Space.WithinPointDoor(f.R1, indoor.At(2.5, 8, 0), f.D1) +
		ix.DoorDist(f.D1, f.D4) +
		f.Space.WithinPointDoor(f.R4, indoor.At(17.5, 8, 0), f.D4)
	if math.Abs(path.Dist-sum) > 1e-9 {
		t.Fatalf("path dist %g != hop sum %g", path.Dist, sum)
	}
}

func TestSizeDominatedByMatrices(t *testing.T) {
	sp := testspaces.RandomGrid(7, 5, 5, 2, 8, 0)
	ix := idindex.New(sp)
	n := int64(sp.NumDoors())
	if ix.SizeBytes() < n*n*16 {
		t.Fatalf("size %d smaller than matrix lower bound %d", ix.SizeBytes(), n*n*16)
	}
}

// TestCompactMatchesWide compares the compact engine's answers against the
// full-precision engine within float32 tolerance (the compact variant trades
// ~1e-7 relative distance error for half the matrix memory, so the exact
// conformance suite does not apply).
func TestCompactMatchesWide(t *testing.T) {
	sp := testspaces.RandomGrid(13, 4, 5, 2, 7, 0.2)
	wide := idindex.New(sp)
	narrow := idindex.NewCompact(sp)
	objs := make([]query.Object, 0, 20)
	for i := 0; i < sp.NumPartitions() && len(objs) < 20; i += 2 {
		v := sp.Partition(indoor.PartitionID(i))
		if v.Kind == indoor.Staircase {
			continue
		}
		c := v.MBR.Center()
		objs = append(objs, query.Object{ID: int32(len(objs)), Loc: indoor.At(c.X, c.Y, v.Floor), Part: v.ID})
	}
	wide.SetObjects(objs)
	narrow.SetObjects(objs)
	var st query.Stats
	pts := []indoor.Point{indoor.At(5, 5, 0), indoor.At(35, 25, 0), indoor.At(15, 35, 1)}
	for _, p := range pts {
		a, err1 := wide.KNN(p, 5, &st)
		b, err2 := narrow.KNN(p, 5, &st)
		if (err1 == nil) != (err2 == nil) || len(a) != len(b) {
			t.Fatalf("KNN shape mismatch at %v", p)
		}
		for i := range a {
			if math.Abs(a[i].Dist-b[i].Dist) > 1e-4*(1+a[i].Dist) {
				t.Fatalf("KNN dist mismatch at %v: %g vs %g", p, a[i].Dist, b[i].Dist)
			}
		}
		for _, q := range pts {
			pa, err1 := wide.SPD(p, q, &st)
			pb, err2 := narrow.SPD(p, q, &st)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("SPD err mismatch at %v->%v", p, q)
			}
			if err1 == nil && math.Abs(pa.Dist-pb.Dist) > 1e-4*(1+pa.Dist) {
				t.Fatalf("SPD mismatch at %v->%v: %g vs %g", p, q, pa.Dist, pb.Dist)
			}
		}
	}
}

func TestCompactHalvesMatrixMemory(t *testing.T) {
	sp := testspaces.RandomGrid(7, 5, 5, 2, 8, 0)
	wide := idindex.New(sp)
	narrow := idindex.NewCompact(sp)
	if narrow.SizeBytes() >= wide.SizeBytes() {
		t.Fatalf("compact %d should be below wide %d", narrow.SizeBytes(), wide.SizeBytes())
	}
	// Distances agree within float32 precision.
	for d1 := 0; d1 < sp.NumDoors(); d1 += 5 {
		for d2 := 0; d2 < sp.NumDoors(); d2 += 7 {
			a := wide.DoorDist(indoor.DoorID(d1), indoor.DoorID(d2))
			b := narrow.DoorDist(indoor.DoorID(d1), indoor.DoorID(d2))
			if math.IsInf(a, 1) != math.IsInf(b, 1) {
				t.Fatalf("infinity mismatch at (%d,%d)", d1, d2)
			}
			if !math.IsInf(a, 1) && math.Abs(a-b) > 1e-4*(1+a) {
				t.Fatalf("distance mismatch at (%d,%d): %g vs %g", d1, d2, a, b)
			}
		}
	}
}

func TestCompactSaveLoad(t *testing.T) {
	f := testspaces.NewStrip()
	built := idindex.NewCompact(f.Space)
	var buf bytes.Buffer
	if err := built.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := idindex.Load(&buf, f.Space)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.SizeBytes() != built.SizeBytes() {
		t.Fatalf("size differs after load: %d vs %d", loaded.SizeBytes(), built.SizeBytes())
	}
	if loaded.DoorDist(f.D1, f.D4) != built.DoorDist(f.D1, f.D4) {
		t.Fatal("distances differ after load")
	}
}
