package idindex_test

import (
	"bytes"
	"math"
	"testing"

	"indoorsq/internal/idindex"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/testspaces"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	f := testspaces.NewStrip()
	built := idindex.New(f.Space)
	var buf bytes.Buffer
	if err := built.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := idindex.Load(&buf, f.Space)
	if err != nil {
		t.Fatal(err)
	}
	// Identical query behavior.
	built.SetObjects(nil)
	loaded.SetObjects(nil)
	var st query.Stats
	p, q := indoor.At(2.5, 8, 0), indoor.At(17.5, 8, 0)
	a, err := built.SPD(p, q, &st)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.SPD(p, q, &st)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Dist-b.Dist) > 1e-12 || len(a.Doors) != len(b.Doors) {
		t.Fatalf("loaded index answers differ: %v vs %v", a, b)
	}
	for di := 0; di < f.Space.NumDoors(); di++ {
		for dj := 0; dj < f.Space.NumDoors(); dj++ {
			x := built.DoorDist(indoor.DoorID(di), indoor.DoorID(dj))
			y := loaded.DoorDist(indoor.DoorID(di), indoor.DoorID(dj))
			if x != y && !(math.IsInf(x, 1) && math.IsInf(y, 1)) {
				t.Fatalf("matrix mismatch at (%d,%d): %g vs %g", di, dj, x, y)
			}
		}
	}
	if loaded.SizeBytes() != built.SizeBytes() {
		t.Fatalf("size accounting differs: %d vs %d", loaded.SizeBytes(), built.SizeBytes())
	}
}

func TestLoadRejectsWrongSpace(t *testing.T) {
	f := testspaces.NewStrip()
	built := idindex.New(f.Space)
	var buf bytes.Buffer
	if err := built.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := testspaces.NewTwoFloor().Space
	if _, err := idindex.Load(&buf, other); err == nil {
		t.Fatal("loading matrices of another venue must fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	f := testspaces.NewStrip()
	if _, err := idindex.Load(bytes.NewBufferString("junk"), f.Space); err == nil {
		t.Fatal("garbage must fail to load")
	}
}
