package query

import (
	"math"
	"sort"
	"testing"
)

// FuzzTopK feeds an arbitrary byte-encoded op sequence into TopK and
// replays it against a brute-force reference.
func FuzzTopK(f *testing.F) {
	f.Add(uint8(3), []byte{1, 10, 2, 5, 1, 3, 3, 20})
	f.Add(uint8(1), []byte{0, 0})
	f.Add(uint8(5), []byte{9, 1, 9, 2, 9, 3})
	f.Fuzz(func(t *testing.T, kRaw uint8, ops []byte) {
		k := int(kRaw%8) + 1
		tk := NewTopK(k)
		best := map[int32]float64{}
		for i := 0; i+1 < len(ops); i += 2 {
			id := int32(ops[i] % 16)
			d := float64(ops[i+1])
			tk.Offer(id, d)
			if old, ok := best[id]; !ok || d < old {
				best[id] = d
			}
			// Bound invariant: +Inf until k distinct, else the k-th best.
			wantBound := math.Inf(1)
			if len(best) >= k {
				ds := make([]float64, 0, len(best))
				for _, v := range best {
					ds = append(ds, v)
				}
				sort.Float64s(ds)
				wantBound = ds[k-1]
			}
			if got := tk.Bound(); got != wantBound {
				t.Fatalf("after %d ops: Bound = %g, want %g", i/2+1, got, wantBound)
			}
		}
		// Final results match the brute-force top-k by distance.
		var want []float64
		for _, v := range best {
			want = append(want, v)
		}
		sort.Float64s(want)
		if len(want) > k {
			want = want[:k]
		}
		got := tk.Results()
		if len(got) != len(want) {
			t.Fatalf("results len %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Dist != want[i] {
				t.Fatalf("results[%d].Dist = %g, want %g", i, got[i].Dist, want[i])
			}
		}
	})
}
