package query

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestTrackUntrackedIsFree(t *testing.T) {
	var st Stats
	if got := Track(context.Background(), &st); got != &st {
		t.Fatal("Track(Background) must return st unchanged")
	}
	if st.ctl != nil {
		t.Fatal("Background context must not arm tracking")
	}
	if got := Track(nil, &st); got != &st || st.ctl != nil {
		t.Fatal("Track(nil ctx) must be a no-op")
	}
	// A nil st stays nil when nothing needs tracking.
	if got := Track(context.Background(), nil); got != nil {
		t.Fatal("Track(Background, nil) must return nil")
	}
	// A zero budget constrains nothing and must not arm either.
	ctx := WithBudget(context.Background(), Budget{})
	if got := Track(ctx, &st); got != &st || st.ctl != nil {
		t.Fatal("zero budget must not arm tracking")
	}
}

func TestTrackArmsAndAllocates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st := Track(ctx, nil)
	if st == nil || st.ctl == nil {
		t.Fatal("Track(cancellable, nil) must allocate a tracked Stats")
	}
	if err := st.Interrupted(); err != nil {
		t.Fatalf("live context: Interrupted = %v", err)
	}
	// Re-arming for the same context reuses the control block.
	c := st.ctl
	if got := Track(ctx, st); got != st || st.ctl != c {
		t.Fatal("nested Track for the same context must reuse the ctl")
	}
	cancel()
	// The cancellation is observed at the next probe, not retroactively.
	for i := 0; i < CheckInterval; i++ {
		st.Door()
	}
	if err := st.Interrupted(); !errors.Is(err, context.Canceled) {
		t.Fatalf("after cancel + %d doors: Interrupted = %v", CheckInterval, err)
	}
}

func TestTrackPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st := Track(ctx, &Stats{})
	if err := st.Interrupted(); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: Interrupted = %v, want Canceled", err)
	}
}

func TestBudgetRoundTrip(t *testing.T) {
	b := Budget{MaxVisitedDoors: 7, MaxWorkBytes: 1 << 20}
	ctx := WithBudget(context.Background(), b)
	got, ok := BudgetFrom(ctx)
	if !ok || got != b {
		t.Fatalf("BudgetFrom = %+v, %v", got, ok)
	}
	if _, ok := BudgetFrom(context.Background()); ok {
		t.Fatal("BudgetFrom(Background) must report absent")
	}
}

func TestDoorBudgetTripsExactly(t *testing.T) {
	const limit = 10
	ctx := WithBudget(context.Background(), Budget{MaxVisitedDoors: limit})
	st := Track(ctx, &Stats{})
	for i := 0; i < limit-1; i++ {
		st.Door()
		if err := st.Interrupted(); err != nil {
			t.Fatalf("door %d/%d: Interrupted = %v", i+1, limit, err)
		}
	}
	st.Door()
	if err := st.Interrupted(); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("door %d/%d: Interrupted = %v, want ErrBudgetExhausted", limit, limit, err)
	}
	if st.VisitedDoors != limit {
		t.Fatalf("VisitedDoors = %d, want exactly %d", st.VisitedDoors, limit)
	}
}

func TestWorkBytesBudget(t *testing.T) {
	ctx := WithBudget(context.Background(), Budget{MaxWorkBytes: 1024})
	st := Track(ctx, &Stats{})
	st.Alloc(512)
	if err := st.Interrupted(); err != nil {
		t.Fatalf("under byte budget: Interrupted = %v", err)
	}
	st.Alloc(512)
	if err := st.Interrupted(); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("at byte budget: Interrupted = %v, want ErrBudgetExhausted", err)
	}
}

func TestBudgetDeadline(t *testing.T) {
	ctx := WithBudget(context.Background(), Budget{Deadline: time.Now().Add(-time.Second)})
	st := Track(ctx, &Stats{})
	if err := st.Interrupted(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired budget deadline: Interrupted = %v, want DeadlineExceeded", err)
	}
}

func TestStopClosure(t *testing.T) {
	var untracked Stats
	if untracked.Stop() != nil {
		t.Fatal("untracked Stats must return a nil Stop")
	}
	var nilStats *Stats
	if nilStats.Stop() != nil || nilStats.Interrupted() != nil {
		t.Fatal("nil Stats must be inert")
	}

	ctx, cancel := context.WithCancel(context.Background())
	st := Track(ctx, &Stats{})
	stop := st.Stop()
	if stop == nil {
		t.Fatal("tracked Stats must return a Stop closure")
	}
	if stop() {
		t.Fatal("live context: stop() = true")
	}
	cancel()
	// The closure polls every 16 calls; it must flip within one stride.
	tripped := false
	for i := 0; i < 16 && !tripped; i++ {
		tripped = stop()
	}
	if !tripped {
		t.Fatal("stop() never observed the cancellation")
	}
	if err := st.Interrupted(); !errors.Is(err, context.Canceled) {
		t.Fatalf("after stop trip: Interrupted = %v", err)
	}
}

func TestResetDisarms(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st := Track(ctx, &Stats{})
	if st.Interrupted() == nil {
		t.Fatal("expected armed, interrupted Stats")
	}
	st.Reset()
	if st.ctl != nil || st.Interrupted() != nil {
		t.Fatal("Reset must disarm tracking")
	}
}
