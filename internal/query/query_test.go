package query

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"indoorsq/internal/indoor"
	"indoorsq/internal/testspaces"
)

func TestObjectStoreBuckets(t *testing.T) {
	f := testspaces.NewStrip()
	objs := []Object{
		{ID: 10, Loc: indoor.At(2, 8, 0), Part: f.R1},
		{ID: 11, Loc: indoor.At(3, 8, 0), Part: f.R1},
		{ID: 12, Loc: indoor.At(7, 2, 0), Part: f.R6},
	}
	st := NewObjectStore(f.Space, objs)
	if st.Len() != 3 {
		t.Fatalf("Len = %d", st.Len())
	}
	if got := st.Bucket(f.R1); len(got) != 2 {
		t.Fatalf("bucket R1 has %d objects, want 2", len(got))
	}
	if got := st.Bucket(f.Hall); len(got) != 0 {
		t.Fatalf("bucket Hall has %d objects, want 0", len(got))
	}
	if st.At(st.Bucket(f.R6)[0]).ID != 12 {
		t.Fatal("wrong object in R6 bucket")
	}
	if st.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}

func TestObjectStoreRejectsBadPartition(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid partition")
		}
	}()
	f := testspaces.NewStrip()
	NewObjectStore(f.Space, []Object{{ID: 1, Part: 70}})
}

func TestRangeScan(t *testing.T) {
	f := testspaces.NewStrip()
	objs := []Object{
		{ID: 1, Loc: indoor.At(1, 5, 0), Part: f.Hall},
		{ID: 2, Loc: indoor.At(10, 5, 0), Part: f.Hall},
		{ID: 3, Loc: indoor.At(19, 5, 0), Part: f.Hall},
	}
	st := NewObjectStore(f.Space, objs)
	got := st.RangeScan(f.Space, f.Hall, indoor.At(0, 5, 0), 100, 10.5, nil)
	if len(got) != 2 {
		t.Fatalf("RangeScan found %d objects, want 2", len(got))
	}
	// Distances include the base offset.
	for _, n := range got {
		if n.Dist < 100 {
			t.Fatalf("neighbor dist %g missing base", n.Dist)
		}
	}
}

func TestTopKBasic(t *testing.T) {
	tk := NewTopK(2)
	if !math.IsInf(tk.Bound(), 1) {
		t.Fatal("empty TopK bound should be +Inf")
	}
	tk.Offer(1, 5)
	tk.Offer(2, 3)
	if b := tk.Bound(); b != 5 {
		t.Fatalf("bound = %g, want 5", b)
	}
	tk.Offer(3, 4) // evicts id 1
	res := tk.Results()
	if len(res) != 2 || res[0].ID != 2 || res[1].ID != 3 {
		t.Fatalf("results = %v", res)
	}
}

func TestTopKImprovesExisting(t *testing.T) {
	tk := NewTopK(2)
	tk.Offer(1, 10)
	tk.Offer(2, 20)
	if !tk.Offer(2, 5) {
		t.Fatal("improving an existing entry should report true")
	}
	if tk.Offer(2, 7) {
		t.Fatal("worsening an existing entry should report false")
	}
	res := tk.Results()
	if res[0].ID != 2 || res[0].Dist != 5 {
		t.Fatalf("results = %v", res)
	}
	if b := tk.Bound(); b != 10 {
		t.Fatalf("bound = %g, want 10", b)
	}
}

func TestTopKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(10)
		tk := NewTopK(k)
		n := 1 + rng.Intn(50)
		best := map[int32]float64{}
		for i := 0; i < n; i++ {
			id := int32(rng.Intn(20))
			d := float64(rng.Intn(100))
			tk.Offer(id, d)
			if old, ok := best[id]; !ok || d < old {
				best[id] = d
			}
		}
		var want []Neighbor
		for id, d := range best {
			want = append(want, Neighbor{ID: id, Dist: d})
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].Dist != want[j].Dist {
				return want[i].Dist < want[j].Dist
			}
			return want[i].ID < want[j].ID
		})
		if len(want) > k {
			want = want[:k]
		}
		got := tk.Results()
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			// The (dist, id) tie-break makes the result set exact: it is the
			// first k of the brute-force order, ids included.
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v, want %v", trial, got, want)
			}
		}
	}
}

func TestStatsCounters(t *testing.T) {
	var st Stats
	st.Alloc(100)
	st.Door()
	st.Door()
	if st.WorkBytes != 100 || st.VisitedDoors != 2 {
		t.Fatalf("stats = %+v", st)
	}
	st.Reset()
	if st.WorkBytes != 0 || st.VisitedDoors != 0 {
		t.Fatalf("reset failed: %+v", st)
	}
	// Nil receiver is a no-op.
	var nilSt *Stats
	nilSt.Alloc(5)
	nilSt.Door()
}

func TestPathString(t *testing.T) {
	p := Path{Dist: 6.2, Doors: []indoor.DoorID{1, 3}}
	if p.String() != "path(2 doors, 6.20m)" {
		t.Fatalf("String = %q", p.String())
	}
}
