package query

import (
	"fmt"

	"indoorsq/internal/indoor"
)

// ObjectStore keeps static objects in per-partition buckets plus an object
// hashtable (the object layer of CINDEX, reused by every engine; its cost is
// excluded from model sizes as in Sec. 6.1 of the paper). For objects hosted
// by concave partitions it caches each object's geodesic vertex distances so
// bucket scans avoid repeated visibility sweeps.
type ObjectStore struct {
	objs    []Object
	refs    []indoor.PointRef
	buckets [][]int32
}

// NewObjectStore distributes objs into per-partition buckets of space sp.
// Object ids must be unique; Part must be a valid partition id.
func NewObjectStore(sp *indoor.Space, objs []Object) *ObjectStore {
	n := sp.NumPartitions()
	s := &ObjectStore{
		objs:    append([]Object(nil), objs...),
		refs:    make([]indoor.PointRef, len(objs)),
		buckets: make([][]int32, n),
	}
	for i := range s.objs {
		o := &s.objs[i]
		if int(o.Part) < 0 || int(o.Part) >= n {
			panic(fmt.Sprintf("query: object %d in invalid partition %d", o.ID, o.Part))
		}
		s.buckets[o.Part] = append(s.buckets[o.Part], int32(i))
		s.refs[i] = sp.Ref(o.Part, o.Loc)
	}
	return s
}

// Len returns the number of stored objects.
func (s *ObjectStore) Len() int { return len(s.objs) }

// Bucket returns the indexes (into the store) of the objects hosted by
// partition v. Callers must not modify the returned slice.
func (s *ObjectStore) Bucket(v indoor.PartitionID) []int32 {
	return s.buckets[v]
}

// At returns the object at store index i.
func (s *ObjectStore) At(i int32) *Object { return &s.objs[i] }

// Ref returns the cached point handle of the object at store index i.
func (s *ObjectStore) Ref(i int32) indoor.PointRef { return s.refs[i] }

// DistToDoor returns the intra-partition distance from the object at store
// index i to door d of its host partition.
func (s *ObjectStore) DistToDoor(sp *indoor.Space, i int32, d indoor.DoorID) float64 {
	return sp.RefToDoor(s.refs[i], d)
}

// RangeScan appends to dst every object of partition v whose intra-partition
// distance from center is at most radius, paired with its total distance
// base+within. It implements the rangeSearch helper of the paper's
// Algorithm 1.
func (s *ObjectStore) RangeScan(sp *indoor.Space, v indoor.PartitionID, center indoor.Point, base, radius float64, dst []Neighbor) []Neighbor {
	bucket := s.buckets[v]
	if len(bucket) == 0 {
		return dst
	}
	c := sp.Ref(v, center)
	for _, i := range bucket {
		if w := sp.RefDist(c, s.refs[i]); w <= radius {
			dst = append(dst, Neighbor{ID: s.objs[i].ID, Dist: base + w})
		}
	}
	return dst
}

// RangeScanDoor is RangeScan with the scan center at a door of v, using the
// precomputed door-to-vertex geodesics.
func (s *ObjectStore) RangeScanDoor(sp *indoor.Space, v indoor.PartitionID, d indoor.DoorID, base, radius float64, dst []Neighbor) []Neighbor {
	for _, i := range s.buckets[v] {
		if w := sp.RefToDoor(s.refs[i], d); w <= radius {
			dst = append(dst, Neighbor{ID: s.objs[i].ID, Dist: base + w})
		}
	}
	return dst
}

// SizeBytes returns the resident size of the buckets and hashtable.
func (s *ObjectStore) SizeBytes() int64 {
	sz := int64(len(s.objs)) * 32
	for _, b := range s.buckets {
		sz += int64(len(b)) * 4
	}
	sz += int64(len(s.buckets)) * 24
	return sz
}

// Insert adds a new object to the store (the moving-objects extension of
// Sec. 7: buckets are dynamic). It returns false when the id is already
// present.
func (s *ObjectStore) Insert(sp *indoor.Space, o Object) bool {
	if s.find(o.ID) >= 0 {
		return false
	}
	if int(o.Part) < 0 || int(o.Part) >= len(s.buckets) {
		return false
	}
	i := int32(len(s.objs))
	s.objs = append(s.objs, o)
	s.refs = append(s.refs, sp.Ref(o.Part, o.Loc))
	s.buckets[o.Part] = append(s.buckets[o.Part], i)
	return true
}

// Delete removes the object with the given id, reporting whether it was
// present. Store indexes of other objects are preserved.
func (s *ObjectStore) Delete(id int32) bool {
	i := s.find(id)
	if i < 0 {
		return false
	}
	s.unbucket(i)
	// Tombstone: keep the slot so indexes remain stable, but park it in no
	// bucket with an invalid partition.
	s.objs[i].Part = indoor.NoPartition
	return true
}

// Move relocates the object with the given id, rebucketing it when it
// crossed into another partition. It reports whether the object exists.
func (s *ObjectStore) Move(sp *indoor.Space, id int32, loc indoor.Point, part indoor.PartitionID) bool {
	i := s.find(id)
	if i < 0 || int(part) < 0 || int(part) >= len(s.buckets) {
		return false
	}
	if s.objs[i].Part != part {
		s.unbucket(i)
		s.buckets[part] = append(s.buckets[part], i)
	}
	s.objs[i].Loc = loc
	s.objs[i].Part = part
	s.refs[i] = sp.Ref(part, loc)
	return true
}

// find returns the store index of the live object with the given id, or -1.
func (s *ObjectStore) find(id int32) int32 {
	for i := range s.objs {
		if s.objs[i].ID == id && s.objs[i].Part != indoor.NoPartition {
			return int32(i)
		}
	}
	return -1
}

// unbucket removes store index i from its current bucket.
func (s *ObjectStore) unbucket(i int32) {
	part := s.objs[i].Part
	if int(part) < 0 || int(part) >= len(s.buckets) {
		return
	}
	b := s.buckets[part]
	for j, x := range b {
		if x == i {
			s.buckets[part] = append(b[:j], b[j+1:]...)
			return
		}
	}
}
