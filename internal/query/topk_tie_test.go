package query

import "testing"

// TestTopKTieBreaksByID is the regression test for the deterministic
// tie-break at the k-th distance: among equidistant candidates the smallest
// ids win, regardless of offer order. Before the fix the survivor depended
// on which candidate arrived first, so engines with different iteration
// orders returned different (all individually correct) kNN sets.
func TestTopKTieBreaksByID(t *testing.T) {
	orders := [][]int32{
		{1, 2, 3}, {1, 3, 2}, {2, 1, 3}, {2, 3, 1}, {3, 1, 2}, {3, 2, 1},
	}
	for _, order := range orders {
		tk := NewTopK(2)
		for _, id := range order {
			tk.Offer(id, 5)
		}
		got := tk.Results()
		if len(got) != 2 || got[0] != (Neighbor{ID: 1, Dist: 5}) || got[1] != (Neighbor{ID: 2, Dist: 5}) {
			t.Fatalf("offer order %v: results %v, want [{1 5} {2 5}]", order, got)
		}
	}
}

// TestTopKTieReplacesLargerID pins the single-slot case: a candidate at
// exactly the bound evicts the incumbent only when its id is smaller.
func TestTopKTieReplacesLargerID(t *testing.T) {
	tk := NewTopK(1)
	tk.Offer(10, 5)
	if !tk.Offer(3, 5) {
		t.Fatal("equal distance with smaller id should enter")
	}
	if tk.Offer(20, 5) {
		t.Fatal("equal distance with larger id should be rejected")
	}
	if got := tk.Results(); len(got) != 1 || got[0] != (Neighbor{ID: 3, Dist: 5}) {
		t.Fatalf("results %v, want [{3 5}]", got)
	}
	if b := tk.Bound(); b != 5 {
		t.Fatalf("bound = %g", b)
	}
}
