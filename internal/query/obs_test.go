package query

import (
	"context"
	"errors"
	"testing"

	"indoorsq/internal/obs"
)

func TestBeginDisabledPathIsFree(t *testing.T) {
	// No binding on the context: Begin must behave exactly like Track —
	// same Stats pointer, nil done, nothing allocated for observation.
	var st Stats
	got, done := Begin(context.Background(), "e", obs.OpRange, &st)
	if got != &st {
		t.Fatal("Begin changed the Stats pointer on the disabled path")
	}
	if done != nil {
		t.Fatal("Begin returned a done closure without a binding")
	}
	if got, done := Begin(context.Background(), "e", obs.OpRange, nil); got != nil || done != nil {
		t.Fatal("nil Stats on an untracked, unobserved context should stay nil")
	}
	if got, done := Begin(nil, "e", obs.OpRange, &st); got != &st || done != nil {
		t.Fatal("nil context should be a no-op")
	}
}

func TestBeginObservesRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)

	var st Stats
	st.Door() // pre-existing counts must not leak into the query's deltas
	st.Alloc(64)
	st.Cache(true)
	pre := st

	got, done := Begin(ctx, "stub", obs.OpKNN, &st)
	if got != &st || done == nil {
		t.Fatal("Begin should keep the Stats pointer and arm a done closure")
	}
	ser := reg.Series("stub", obs.OpKNN)
	if ser.InFlight.Load() != 1 {
		t.Fatalf("in-flight = %d during the query", ser.InFlight.Load())
	}
	for i := 0; i < 5; i++ {
		st.Door()
	}
	st.Alloc(100)
	st.Cache(true)
	st.Cache(false)
	done(nil)

	if ser.InFlight.Load() != 0 {
		t.Fatalf("in-flight = %d after done", ser.InFlight.Load())
	}
	if ser.Count.Load() != 1 || ser.Errs.Load() != 0 {
		t.Fatalf("count/errs = %d/%d", ser.Count.Load(), ser.Errs.Load())
	}
	if got := ser.VisitedDoors.Load(); got != 5 {
		t.Fatalf("visited doors delta = %d, want 5 (pre-existing %d excluded)", got, pre.VisitedDoors)
	}
	if got := ser.WorkBytes.Load(); got != 100 {
		t.Fatalf("work delta = %d, want 100", got)
	}
	if got := ser.CacheHits.Load(); got != 1 {
		t.Fatalf("cache hits delta = %d, want 1", got)
	}
	if got := ser.CacheMisses.Load(); got != 1 {
		t.Fatalf("cache misses delta = %d, want 1", got)
	}
	if got := ser.Latency.Count(); got != 1 {
		t.Fatalf("latency count = %d", got)
	}

	// A failed query increments Errs.
	_, done2 := Begin(ctx, "stub", obs.OpKNN, &st)
	done2(errors.New("boom"))
	if ser.Errs.Load() != 1 {
		t.Fatalf("errs = %d after failure", ser.Errs.Load())
	}
}

func TestBeginTraceSummaryAndSpans(t *testing.T) {
	tr := obs.NewTrace()
	ctx := obs.WithTrace(context.Background(), tr)

	st, done := Begin(ctx, "stub", obs.OpSPD, nil)
	if st == nil || done == nil {
		t.Fatal("Begin with a trace binding should allocate Stats and arm done")
	}
	end := st.Span(obs.StageExpand)
	st.Door()
	st.Alloc(48)
	end()
	done(ErrUnreachable)

	qs := tr.Queries()
	if len(qs) != 1 {
		t.Fatalf("trace queries = %d", len(qs))
	}
	q := qs[0]
	if q.Engine != "stub" || q.Op != obs.OpSPD {
		t.Fatalf("summary = %+v", q)
	}
	if q.Err != ErrUnreachable.Error() {
		t.Fatalf("summary err = %q", q.Err)
	}
	if q.VisitedDoors != 1 || q.WorkBytes != 48 || q.PeakWorkBytes != 48 {
		t.Fatalf("summary costs = %+v", q)
	}
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Stage != obs.StageExpand {
		t.Fatalf("spans = %+v", spans)
	}

	// done must disarm the trace so a pooled Stats reused afterwards does
	// not keep writing spans into a finished trace.
	if st.tr != nil {
		t.Fatal("done did not clear the trace from the Stats")
	}
	st.Span(obs.StageHost)()
	if got := len(tr.Spans()); got != 1 {
		t.Fatalf("span after done leaked into the trace: %d spans", got)
	}
}

func TestSpanUntracedIsNop(t *testing.T) {
	var st Stats
	st.Span(obs.StageHost)() // must not panic or record anywhere
	var nilStats *Stats
	nilStats.Span(obs.StageRefine)()
}
