// Package query defines the common query framework shared by all five
// model/indexes: the Engine interface for the four indoor spatial query
// types (RQ, kNNQ, SPQ, SDQ — the latter two fused into SPD as in the
// paper's SPDQ), static-object storage, per-query statistics, and small
// shared helpers such as a bounded top-k collector.
package query

import (
	"errors"
	"fmt"

	"indoorsq/internal/indoor"
	"indoorsq/internal/obs"
)

// Errors returned by query processing.
var (
	// ErrNoHost indicates a query point that lies in no indoor partition
	// (inside a wall or outside the space).
	ErrNoHost = errors.New("query: point is not a valid indoor location")
	// ErrUnreachable indicates that no indoor path connects source and
	// target (for instance due to unidirectional doors).
	ErrUnreachable = errors.New("query: target unreachable from source")
)

// Object is a static indoor object (a POI or facility).
type Object struct {
	ID   int32
	Loc  indoor.Point
	Part indoor.PartitionID // host partition of Loc
}

// Stats accumulates per-query cost counters. The harness resets it before
// each query and reads it afterwards.
type Stats struct {
	// VisitedDoors is the number of door expansions (NVD, metric b3).
	VisitedDoors int
	// WorkBytes estimates the transient working-set of the query: distance
	// arrays, priority queues, candidate sets (part of metric b2; the
	// resident index size is added by the harness).
	WorkBytes int64
	// PeakWorkBytes is the high-water mark of WorkBytes. Within a single
	// query it tracks WorkBytes (which only grows), but under Add it folds
	// with max instead of +: the peak working set of a batch fanned over
	// workers is the largest single shard, not the sum of all of them.
	PeakWorkBytes int64
	// CacheHits / CacheMisses count door-pair distance-cache lookups during
	// this query that were served from the memo vs. had to compute (engines
	// running uncached record neither).
	CacheHits   int64
	CacheMisses int64

	// ctl, when non-nil, is the cancellation control block armed by Track:
	// it carries the query's context and budget so the amortized probes in
	// Door/Alloc/Stop can interrupt the traversal. Untracked queries leave
	// it nil and pay a single nil-check per counted event.
	ctl *ctl
	// tr, when non-nil, is the per-query trace armed by Begin; Span consults
	// it. Untraced queries leave it nil and pay one nil-check per Span call.
	tr *obs.Trace
}

// Reset zeroes the counters and disarms any cancellation tracking.
func (st *Stats) Reset() { *st = Stats{} }

// Alloc records b transient bytes. A nil receiver is allowed so engines can
// run without instrumentation.
func (st *Stats) Alloc(b int64) {
	if st == nil {
		return
	}
	st.WorkBytes += b
	if st.WorkBytes > st.PeakWorkBytes {
		st.PeakWorkBytes = st.WorkBytes
	}
	if c := st.ctl; c != nil && c.err == nil && c.hasBudget &&
		c.budget.MaxWorkBytes > 0 && st.WorkBytes >= c.budget.MaxWorkBytes {
		c.err = ErrBudgetExhausted
	}
}

// Door records one door expansion and, on tracked queries, runs the
// amortized cancellation probe every CheckInterval expansions.
func (st *Stats) Door() {
	if st == nil {
		return
	}
	st.VisitedDoors++
	if c := st.ctl; c != nil && st.VisitedDoors >= c.next {
		c.check(st)
	}
}

// Cache records one distance-cache lookup. A nil receiver is allowed so
// engines can run without instrumentation.
func (st *Stats) Cache(hit bool) {
	if st != nil {
		if hit {
			st.CacheHits++
		} else {
			st.CacheMisses++
		}
	}
}

// Add merges another accumulator into st — used to fold per-worker Stats
// shards back together after a concurrent batch. Sums fold with +, but
// PeakWorkBytes folds with max: the shards ran concurrently, each within
// its own transient working set, so the batch peak is the largest shard
// peak, not their sum.
func (st *Stats) Add(o Stats) {
	if st != nil {
		st.VisitedDoors += o.VisitedDoors
		st.WorkBytes += o.WorkBytes
		st.CacheHits += o.CacheHits
		st.CacheMisses += o.CacheMisses
		if o.PeakWorkBytes > st.PeakWorkBytes {
			st.PeakWorkBytes = o.PeakWorkBytes
		}
	}
}

// Span opens a trace span for stage s and returns its idempotent end
// function. On untraced queries (no obs.Trace bound via Begin) it returns a
// shared no-op, so hot paths pay two branches per stage.
func (st *Stats) Span(s obs.Stage) func() {
	if st == nil || st.tr == nil {
		return nopSpan
	}
	return st.tr.StartSpan(s)
}

var nopSpan = func() {}

// Path is the answer of a shortest path/distance query: the door sequence
// from source to target and the total indoor distance (Definition 3).
type Path struct {
	Source, Target indoor.Point
	Doors          []indoor.DoorID
	Dist           float64
}

// String implements fmt.Stringer.
func (p Path) String() string {
	return fmt.Sprintf("path(%d doors, %.2fm)", len(p.Doors), p.Dist)
}

// Neighbor is one kNN answer entry.
type Neighbor struct {
	ID   int32
	Dist float64
}

// Engine is the uniform query interface implemented by all five
// model/indexes. Engines are safe for sequential reuse across queries;
// SetObjects may be called again to swap the object workload.
type Engine interface {
	// Name returns the engine's display name (IDModel, IDIndex, CIndex,
	// IPTree, VIPTree).
	Name() string
	// SetObjects installs the static object workload.
	SetObjects(objs []Object)
	// Range returns the ids of all objects within indoor distance r of p,
	// in ascending id order (Definition 1).
	Range(p indoor.Point, r float64, st *Stats) ([]int32, error)
	// KNN returns the k objects nearest to p in ascending distance order
	// (Definition 2). Fewer than k neighbors are returned when the object
	// set is smaller or partly unreachable.
	KNN(p indoor.Point, k int, st *Stats) ([]Neighbor, error)
	// SPD returns the shortest path and distance from p to q
	// (Definitions 3 and 4, fused as in the paper's SPDQ).
	SPD(p, q indoor.Point, st *Stats) (Path, error)
	// SizeBytes returns the resident size of the model/index, excluding the
	// object store (whose cost is identical across engines, Sec. 6.1).
	SizeBytes() int64
}

// ObjectUpdater is implemented by engines whose object layer supports
// incremental updates — the moving-objects extension of Sec. 7. All five
// engines qualify, since objects live in dynamic per-partition buckets
// detached from the distance structures.
type ObjectUpdater interface {
	// InsertObject adds one object; false when the id already exists or the
	// partition is invalid.
	InsertObject(o Object) bool
	// DeleteObject removes one object by id; false when absent.
	DeleteObject(id int32) bool
	// MoveObject relocates one object; false when absent.
	MoveObject(id int32, loc indoor.Point, part indoor.PartitionID) bool
}
