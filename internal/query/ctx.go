package query

import (
	"context"
	"errors"
	"time"

	"indoorsq/internal/indoor"
	"indoorsq/internal/obs"
)

// ErrBudgetExhausted is returned when a query exceeds the work budget
// attached to its context (MaxVisitedDoors or MaxWorkBytes). Unlike a
// context cancellation it is a property of the single query, not of the
// caller: the partial Stats describe how far the query got.
var ErrBudgetExhausted = errors.New("query: work budget exhausted")

// CheckInterval is the number of door expansions between cancellation
// probes in the traversal hot loops. Cancellation, deadlines, and budget
// exhaustion are therefore detected within ~CheckInterval expansions, while
// the steady-state per-expansion cost stays at one pointer load and one
// comparison.
const CheckInterval = 64

// Budget bounds the work one query may perform. Zero fields are unlimited.
type Budget struct {
	// MaxVisitedDoors caps door expansions (the NVD metric). The traversal
	// stops with ErrBudgetExhausted once this many doors were expanded.
	MaxVisitedDoors int
	// MaxWorkBytes caps the transient working set recorded through
	// Stats.Alloc.
	MaxWorkBytes int64
	// Deadline, when non-zero, is an absolute wall-clock cutoff checked in
	// the same amortized probe. It complements (and is independent of) any
	// deadline carried by the context itself.
	Deadline time.Time
}

// zero reports whether the budget constrains nothing.
func (b Budget) zero() bool {
	return b.MaxVisitedDoors <= 0 && b.MaxWorkBytes <= 0 && b.Deadline.IsZero()
}

// budgetKey is the context key under which a Budget travels.
type budgetKey struct{}

// WithBudget returns a context carrying the work budget b. Engines honor it
// on their ...Ctx entry points; exceeding it surfaces as ErrBudgetExhausted.
func WithBudget(ctx context.Context, b Budget) context.Context {
	return context.WithValue(ctx, budgetKey{}, b)
}

// BudgetFrom extracts the budget attached by WithBudget, if any.
func BudgetFrom(ctx context.Context) (Budget, bool) {
	b, ok := ctx.Value(budgetKey{}).(Budget)
	return b, ok
}

// ctl is the cancellation control block armed into a Stats by Track. It is
// deliberately tiny: the hot loops see only Stats.Door's threshold
// comparison and Stats.Interrupted's cached-error load.
type ctl struct {
	ctx       context.Context
	budget    Budget
	hasBudget bool
	// err caches the first interruption cause (context error, deadline, or
	// ErrBudgetExhausted). Once set it never changes.
	err error
	// next is the VisitedDoors threshold at which Door runs the next probe.
	next int
	// stops counts Stop-probe invocations so sweeps without door
	// expansions amortize their polling too.
	stops int
}

// check runs one full probe: budget limits first (cheap field compares),
// then the context, then the explicit budget deadline. It reschedules the
// next door-count threshold, clamped so MaxVisitedDoors trips exactly.
func (c *ctl) check(st *Stats) {
	if c.err != nil {
		return
	}
	if c.hasBudget {
		if c.budget.MaxVisitedDoors > 0 && st.VisitedDoors >= c.budget.MaxVisitedDoors {
			c.err = ErrBudgetExhausted
			return
		}
		if c.budget.MaxWorkBytes > 0 && st.WorkBytes >= c.budget.MaxWorkBytes {
			c.err = ErrBudgetExhausted
			return
		}
	}
	if err := c.ctx.Err(); err != nil {
		c.err = err
		return
	}
	if c.hasBudget && !c.budget.Deadline.IsZero() && !time.Now().Before(c.budget.Deadline) {
		c.err = context.DeadlineExceeded
		return
	}
	next := st.VisitedDoors + CheckInterval
	if c.hasBudget && c.budget.MaxVisitedDoors > 0 && next > c.budget.MaxVisitedDoors {
		next = c.budget.MaxVisitedDoors
	}
	c.next = next
}

// Track arms st with the cancellation state of ctx. When ctx can never be
// cancelled and carries no budget, st is returned unchanged — untracked
// queries pay nothing. Otherwise st (allocated if nil, so instrumentation-
// free callers still get cancellation) carries a control block that the
// amortized probes in Door/Alloc/Stop consult; an initial probe runs
// immediately so a pre-cancelled context aborts before any traversal work.
func Track(ctx context.Context, st *Stats) *Stats {
	if ctx == nil {
		return st
	}
	b, hasB := BudgetFrom(ctx)
	if hasB && b.zero() {
		hasB = false
	}
	if ctx.Done() == nil && !hasB {
		return st
	}
	if st == nil {
		st = &Stats{}
	}
	if st.ctl != nil && st.ctl.ctx == ctx {
		return st // already armed for this context (nested Track)
	}
	c := &ctl{ctx: ctx, budget: b, hasBudget: hasB}
	st.ctl = c
	c.check(st)
	return st
}

// Interrupted returns the cached interruption cause, or nil while the query
// may keep running. It is safe on nil and untracked receivers and costs two
// branches plus a load — cheap enough for once-per-pop use in hot loops.
func (st *Stats) Interrupted() error {
	if st == nil || st.ctl == nil {
		return nil
	}
	return st.ctl.err
}

// Stop returns a polling closure for traversals that expand no doors (the
// in-partition visibility sweeps in internal/geom), or nil when st is
// untracked so such callers can skip the plumbing entirely. The closure
// amortizes full probes the same way Door does.
func (st *Stats) Stop() func() bool {
	if st == nil || st.ctl == nil {
		return nil
	}
	c := st.ctl
	return func() bool {
		if c.err != nil {
			return true
		}
		if c.stops++; c.stops&15 == 0 {
			c.check(st)
		}
		return c.err != nil
	}
}

// Begin arms st for one observed query: it runs Track (cancellation,
// deadlines, budgets) and, when ctx carries an obs binding (obs.With*),
// attaches the trace to st so engine hot paths can open stage spans, and
// resolves the registry series for (engine, op). The returned done must be
// called exactly once at query completion when non-nil; it publishes the
// query's latency and Stats deltas into the registry and appends a summary
// to the trace. done is nil when ctx carries no binding, so unobserved
// queries pay one context lookup beyond Track and nothing else.
func Begin(ctx context.Context, engine, op string, st *Stats) (*Stats, func(err error)) {
	st = Track(ctx, st)
	if ctx == nil {
		return st, nil
	}
	b, ok := obs.From(ctx)
	if !ok || (b.Reg == nil && b.Trace == nil) {
		return st, nil
	}
	if st == nil {
		st = &Stats{}
	}
	st.tr = b.Trace
	var ser *obs.Series
	if b.Reg != nil {
		ser = b.Reg.Series(engine, op)
		ser.InFlight.Add(1)
	}
	base := *st // counter snapshot; deltas below are this query's own work
	t0 := time.Now()
	return st, func(err error) {
		dur := time.Since(t0)
		doors := st.VisitedDoors - base.VisitedDoors
		work := st.WorkBytes - base.WorkBytes
		hits := st.CacheHits - base.CacheHits
		misses := st.CacheMisses - base.CacheMisses
		if ser != nil {
			ser.InFlight.Add(-1)
			ser.Observe(dur, int64(doors), work, hits, misses, err != nil)
		}
		if b.Trace != nil {
			q := obs.QuerySummary{
				Engine:        engine,
				Op:            op,
				Dur:           dur,
				VisitedDoors:  doors,
				WorkBytes:     work,
				PeakWorkBytes: work, // within one query the peak is the final working set
				CacheHits:     hits,
				CacheMisses:   misses,
			}
			if err != nil {
				q.Err = err.Error()
			}
			b.Trace.FinishQuery(q)
			st.tr = nil
		}
	}
}

// EngineCtx extends Engine with context-aware entry points. All five engines
// implement it natively; AsCtx adapts anything else. The contract: the
// query observes ctx cancellation, ctx deadline, and any WithBudget budget
// within ~CheckInterval door expansions, returning the context's error or
// ErrBudgetExhausted with whatever partial Stats accumulated.
type EngineCtx interface {
	Engine
	// RangeCtx is Range bounded by ctx.
	RangeCtx(ctx context.Context, p indoor.Point, r float64, st *Stats) ([]int32, error)
	// KNNCtx is KNN bounded by ctx.
	KNNCtx(ctx context.Context, p indoor.Point, k int, st *Stats) ([]Neighbor, error)
	// SPDCtx is SPD bounded by ctx.
	SPDCtx(ctx context.Context, p, q indoor.Point, st *Stats) (Path, error)
}

// AsCtx returns e's native EngineCtx implementation when it has one, or a
// generic shim otherwise. The shim works for any engine that threads st
// through its traversal (all of ours do): Track rides the Stats pointer into
// the hot loops, so cancellation needs no engine-specific code.
func AsCtx(e Engine) EngineCtx {
	if ec, ok := e.(EngineCtx); ok {
		return ec
	}
	return ctxShim{e}
}

// ctxShim adapts a plain Engine to EngineCtx via Track.
type ctxShim struct{ Engine }

func (s ctxShim) RangeCtx(ctx context.Context, p indoor.Point, r float64, st *Stats) (ids []int32, err error) {
	st, done := Begin(ctx, s.Engine.Name(), obs.OpRange, st)
	if done != nil {
		defer func() { done(err) }()
	}
	if err = st.Interrupted(); err != nil {
		return nil, err
	}
	ids, err = s.Engine.Range(p, r, st)
	return ids, err
}

func (s ctxShim) KNNCtx(ctx context.Context, p indoor.Point, k int, st *Stats) (nn []Neighbor, err error) {
	st, done := Begin(ctx, s.Engine.Name(), obs.OpKNN, st)
	if done != nil {
		defer func() { done(err) }()
	}
	if err = st.Interrupted(); err != nil {
		return nil, err
	}
	nn, err = s.Engine.KNN(p, k, st)
	return nn, err
}

func (s ctxShim) SPDCtx(ctx context.Context, p, q indoor.Point, st *Stats) (path Path, err error) {
	st, done := Begin(ctx, s.Engine.Name(), obs.OpSPD, st)
	if done != nil {
		defer func() { done(err) }()
	}
	if err = st.Interrupted(); err != nil {
		return Path{}, err
	}
	path, err = s.Engine.SPD(p, q, st)
	return path, err
}
