package query

import (
	"container/heap"
	"math"
	"sort"
)

// TopK collects the k nearest objects seen so far, deduplicating by object
// id and keeping the minimum distance per object. It supports the kBound
// pruning of the paper's Algorithm 2: Bound() is the distance of the current
// k-th nearest candidate (+Inf until k distinct objects are known), so a
// search may stop expanding once its frontier exceeds Bound().
//
// Internally TopK is a max-heap with lazy deletion: improving an object's
// distance pushes a fresh entry and invalidates the old one.
type TopK struct {
	k    int
	best map[int32]float64
	h    tkHeap
}

// NewTopK returns a collector for the k nearest objects. k must be >= 1.
func NewTopK(k int) *TopK {
	return &TopK{k: k, best: make(map[int32]float64, k)}
}

// Offer considers object id at distance d. It returns true when the
// candidate entered (or tightened) the current top-k.
func (t *TopK) Offer(id int32, d float64) bool {
	if old, ok := t.best[id]; ok {
		if d >= old {
			return false
		}
		t.best[id] = d
		heap.Push(&t.h, tkEntry{id: id, dist: d})
		t.shrink()
		return true
	}
	if len(t.best) >= t.k {
		bd, bid := t.boundEntry()
		// Ties on the k-th distance break by object id: a new candidate at
		// exactly the bound enters only when its id beats the incumbent's,
		// so the surviving set is independent of offer order (and therefore
		// identical across engines with different iteration orders).
		if d > bd || (d == bd && id >= bid) {
			return false
		}
	}
	t.best[id] = d
	heap.Push(&t.h, tkEntry{id: id, dist: d})
	t.shrink()
	return true
}

// clean pops stale heap tops (entries superseded by a smaller distance).
func (t *TopK) clean() {
	for t.h.Len() > 0 {
		top := t.h[0]
		if d, ok := t.best[top.id]; ok && d == top.dist {
			return
		}
		heap.Pop(&t.h)
	}
}

// shrink evicts the farthest live entries while more than k objects are held.
func (t *TopK) shrink() {
	for len(t.best) > t.k {
		t.clean()
		top := heap.Pop(&t.h).(tkEntry)
		delete(t.best, top.id)
	}
}

// Bound returns the current k-th nearest distance, or +Inf while fewer than
// k distinct objects are known.
func (t *TopK) Bound() float64 {
	d, _ := t.boundEntry()
	return d
}

// boundEntry returns the current k-th nearest (distance, id) — the eviction
// candidate — or (+Inf, MaxInt32) while fewer than k objects are known.
func (t *TopK) boundEntry() (float64, int32) {
	if len(t.best) < t.k {
		return math.Inf(1), math.MaxInt32
	}
	t.clean()
	return t.h[0].dist, t.h[0].id
}

// Len returns the number of distinct objects currently held (at most k).
func (t *TopK) Len() int { return len(t.best) }

// Results returns the collected neighbors ordered by ascending distance,
// breaking ties by ascending id for determinism.
func (t *TopK) Results() []Neighbor {
	out := make([]Neighbor, 0, len(t.best))
	for id, d := range t.best {
		out = append(out, Neighbor{ID: id, Dist: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// SizeBytes estimates the collector's transient footprint.
func (t *TopK) SizeBytes() int64 {
	return int64(len(t.best))*24 + int64(cap(t.h))*16
}

type tkEntry struct {
	id   int32
	dist float64
}

// tkHeap is a max-heap on (distance, id): among equidistant entries the
// largest id surfaces first, making it the eviction candidate and the
// tie-break incumbent consulted by Offer.
type tkHeap []tkEntry

func (h tkHeap) Len() int { return len(h) }
func (h tkHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist > h[j].dist
	}
	return h[i].id > h[j].id
}
func (h tkHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *tkHeap) Push(x interface{}) { *h = append(*h, x.(tkEntry)) }
func (h *tkHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
