package bench

import (
	"fmt"
	"time"

	"indoorsq/internal/cindex"
	"indoorsq/internal/dataset"
	"indoorsq/internal/idmodel"
	"indoorsq/internal/keyword"
	"indoorsq/internal/moving"
	"indoorsq/internal/route"
	"indoorsq/internal/uncertain"
	"indoorsq/internal/workload"
)

// RunX measures the Sec. 7 extension features' scaling behaviour on one
// dataset: keyword-aware routing vs. keyword count, continuous-monitor
// update cost vs. registered queries, probabilistic range queries vs.
// samples per object, and multi-stop optimization vs. stop count.
func (s *Suite) RunX(ds string) ([]*Series, error) {
	info := dataset.Get(ds)
	sp := info.Space
	gen := workload.New(sp, s.Seed)
	col := []string{"time"}

	// X1: keyword route vs number of required keywords.
	words := []string{"alpha", "beta", "gamma", "delta"}
	plain := s.objects(info, s.Objects)
	tagged := make([]keyword.Tagged, len(plain))
	for i, o := range plain {
		tagged[i] = keyword.Tagged{Object: o, Words: []string{words[i%len(words)]}}
	}
	kw := keyword.New(idmodel.New(sp), sp, tagged)
	pairs := s.pairs(info, info.DefaultS2T)
	xs1 := []string{"0", "1", "2", "3"}
	x1 := newSeries("X1", "Keyword route time vs #words ("+ds+")", "us", "#words", xs1, col)
	for wi := 0; wi < len(xs1); wi++ {
		start := time.Now()
		runs := 0
		for _, pr := range pairs {
			if _, err := kw.Route(pr.P, pr.Q, nil, words[:wi]...); err == nil {
				runs++
			}
		}
		if runs == 0 {
			runs = 1
		}
		x1.Set("time", wi, float64(time.Since(start).Microseconds())/float64(runs))
	}

	// X2: monitor update cost vs number of registered continuous queries.
	xs2 := []string{"1", "5", "10", "20"}
	x2 := newSeries("X2", "Continuous-monitor update time vs #queries ("+ds+")", "us", "#queries", xs2, col)
	qPts := gen.Points(20)
	objs := s.objects(info, 200)
	for qi, nq := range []int{1, 5, 10, 20} {
		mon := moving.NewMonitor(sp)
		for i := 0; i < nq; i++ {
			if _, err := mon.Register(int32(i), qPts[i], info.DefaultR, 0); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		for i, o := range objs {
			if _, err := mon.Apply(moving.Update{ID: o.ID, Loc: o.Loc, Part: o.Part, T: float64(i)}); err != nil {
				return nil, err
			}
		}
		x2.Set("time", qi, float64(time.Since(start).Microseconds())/float64(len(objs)))
	}

	// X3: probabilistic range query vs samples per object.
	xs3 := []string{"5", "13", "25"}
	x3 := newSeries("X3", "ProbRange time vs samples/object ("+ds+")", "us", "samples", xs3, col)
	nu := len(plain)
	if nu > 300 {
		nu = 300
	}
	uobjs := make([]uncertain.Object, nu)
	for i, o := range plain[:nu] {
		uobjs[i] = uncertain.Object{ID: o.ID, Center: o.Loc, Radius: 5, Part: o.Part}
	}
	cx := cindex.New(sp)
	pts := s.points(info)
	for si, samples := range []int{5, 13, 25} {
		ux := uncertain.New(cx, sp, uobjs, samples)
		start := time.Now()
		for _, p := range pts {
			if _, err := ux.ProbRange(p, info.DefaultR, 0.5); err != nil {
				return nil, err
			}
		}
		x3.Set("time", si, float64(time.Since(start).Microseconds())/float64(len(pts)))
	}

	// X4: multi-stop optimization vs stop count.
	xs4 := []string{"2", "4", "6", "8"}
	x4 := newSeries("X4", "Multi-stop optimization time vs #stops ("+ds+")", "us", "#stops", xs4, col)
	eng := s.Engine(info, "IDIndex")
	eng.SetObjects(nil)
	pl := route.New(eng)
	wp := gen.Points(10)
	for ni, n := range []int{2, 4, 6, 8} {
		start := time.Now()
		const reps = 5
		for rep := 0; rep < reps; rep++ {
			if _, _, err := pl.Optimized(wp[0], wp[1:1+n], wp[9], nil); err != nil {
				return nil, fmt.Errorf("multi-stop %d: %w", n, err)
			}
		}
		x4.Set("time", ni, float64(time.Since(start).Microseconds())/reps)
	}
	return []*Series{x1, x2, x3, x4}, nil
}
