// Package bench implements the paper's evaluation procedure (Sec. 5.4):
// task A (model construction) and tasks B1-B7 (query processing), measuring
// running time (b1), memory use (b2), and the number of visited doors (b3),
// and emitting one data series per paper figure.
package bench

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"indoorsq/internal/cindex"
	"indoorsq/internal/dataset"
	"indoorsq/internal/exec"
	"indoorsq/internal/idindex"
	"indoorsq/internal/idmodel"
	"indoorsq/internal/indoor"
	"indoorsq/internal/iptree"
	"indoorsq/internal/query"
	"indoorsq/internal/workload"
)

// EngineNames lists the five model/indexes in presentation order.
var EngineNames = []string{"IDModel", "IDIndex", "CIndex", "IPTree", "VIPTree"}

// NewEngine constructs one model/index over a dataset, applying the
// dataset-specific γ for the trees (Sec. 5.3) and the default distance-cache
// policy (memoized door-pair distances).
func NewEngine(name string, info *dataset.Info) (query.Engine, error) {
	return NewEngineOpts(name, info, true)
}

// NewEngineOpts is NewEngine with an explicit distance-cache policy. Only
// CINDEX computes door-pair distances at query time, so only it changes
// behaviour: distCache=false makes it recompute every distance on the fly
// (the paper's strictest "no precomputation" reading and the baseline side
// of cache benchmarks). Answers are identical either way.
func NewEngineOpts(name string, info *dataset.Info, distCache bool) (query.Engine, error) {
	switch name {
	case "IDModel":
		return idmodel.New(info.Space), nil
	case "IDIndex":
		return idindex.New(info.Space), nil
	case "CIndex":
		return cindex.NewOpts(info.Space, cindex.Options{NoDistCache: !distCache}), nil
	case "IPTree":
		return iptree.New(info.Space, iptree.Options{Gamma: info.Gamma}), nil
	case "VIPTree":
		return iptree.New(info.Space, iptree.Options{Gamma: info.Gamma, VIP: true}), nil
	}
	return nil, fmt.Errorf("bench: unknown engine %q", name)
}

// Suite drives the evaluation. The zero value is not ready; use NewSuite.
type Suite struct {
	// Objects is the default object count |O| (Table 5 bold: 1000).
	Objects int
	// Queries is the number of instances per setting (Sec. 5.2: 10).
	Queries int
	// K is the default kNN k (Table 5 bold: 10).
	K int
	// Seed makes all workloads reproducible.
	Seed int64
	// Engines selects the model/indexes to evaluate.
	Engines []string
	// Workers bounds the concurrent query executor: the per-setting query
	// instances of every measurement run through an exec.Pool of this size
	// (1 = sequential, the paper's procedure; 0 = GOMAXPROCS).
	Workers int
	// DistCache selects the door-pair distance-cache policy for engines that
	// compute distances at query time (CINDEX). False forces on-the-fly
	// recomputation; answers are unaffected.
	DistCache bool
	// Timeout, when positive, bounds every measured query with its own
	// deadline. Queries cut off by it are not errors: they count into
	// Measure.TimedOut and their partial cost still enters the averages.
	Timeout time.Duration

	engines     map[string]query.Engine
	objSets     map[string][]query.Object
	cacheTot    map[string]*CacheEffect
	timedOutTot int64
}

// TimedOut returns how many measured queries across the whole suite were
// cut off by the Timeout deadline.
func (s *Suite) TimedOut() int64 { return s.timedOutTot }

// CacheEffect accumulates distance-cache counters of one engine across every
// measurement the suite ran.
type CacheEffect struct {
	Engine string
	Hits   int64
	Misses int64
}

// HitRate returns the fraction of cache lookups served from the memo, or 0
// when the engine performed none.
func (c *CacheEffect) HitRate() float64 {
	if t := c.Hits + c.Misses; t > 0 {
		return float64(c.Hits) / float64(t)
	}
	return 0
}

// NewSuite returns a Suite with the paper's default parameters.
func NewSuite() *Suite {
	return &Suite{
		Objects:   1000,
		Queries:   10,
		K:         10,
		Seed:      1,
		Workers:   1,
		DistCache: true,
		Engines:   append([]string(nil), EngineNames...),
		engines:   make(map[string]query.Engine),
		objSets:   make(map[string][]query.Object),
		cacheTot:  make(map[string]*CacheEffect),
	}
}

// CacheReport returns the per-engine distance-cache effectiveness
// accumulated across every measurement the suite ran, in EngineNames order
// (engines that performed no cache lookups are omitted).
func (s *Suite) CacheReport() []*CacheEffect {
	var out []*CacheEffect
	for _, name := range EngineNames {
		if c, ok := s.cacheTot[name]; ok && c.Hits+c.Misses > 0 {
			out = append(out, c)
		}
	}
	return out
}

// Engine returns the (cached) engine for a dataset.
func (s *Suite) Engine(info *dataset.Info, name string) query.Engine {
	key := info.Name + "/" + name
	if e, ok := s.engines[key]; ok {
		return e
	}
	e, err := NewEngineOpts(name, info, s.DistCache)
	if err != nil {
		panic(err)
	}
	s.engines[key] = e
	return e
}

// objects returns the cached object workload of the given size for a
// dataset; all engines observe the identical set.
func (s *Suite) objects(info *dataset.Info, n int) []query.Object {
	key := fmt.Sprintf("%s/%d", info.Name, n)
	if o, ok := s.objSets[key]; ok {
		return o
	}
	o := workload.New(info.Space, s.Seed+int64(n)*7919).Objects(n)
	s.objSets[key] = o
	return o
}

// Measure is one averaged observation.
type Measure struct {
	TimeUS      float64 // average per-query running time, microseconds
	WallUS      float64 // average wall-clock time per query across the batch
	MemMB       float64 // resident index + average transient working set, MB
	NVD         float64 // average number of visited doors
	CacheHits   float64 // average distance-cache hits per query
	CacheMisses float64 // average distance-cache misses per query
	TimedOut    int     // queries interrupted by the suite's Timeout
}

// measure runs n queries through fn — concurrently when the suite's Workers
// allows — and averages the metrics. Per-query time is measured inside the
// worker; the wall clock spans the whole batch, so TimeUS ≈ WallUS when
// sequential and TimeUS > WallUS under effective parallelism. Each query
// runs under its own context carrying the suite Timeout; interrupted
// queries count into TimedOut instead of failing the measurement.
func (s *Suite) measure(eng query.Engine, n int, fn func(ctx context.Context, i int, st *query.Stats) error) (Measure, error) {
	pool := exec.Pool{Workers: s.Workers}
	times := make([]float64, n)
	var timedOut atomic.Int64
	start := time.Now()
	merged, err := pool.MapCtx(context.Background(), n, func(ctx context.Context, i int, st *query.Stats) error {
		cancel := context.CancelFunc(func() {})
		if s.Timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, s.Timeout)
		}
		t0 := time.Now()
		err := fn(ctx, i, st)
		cancel()
		times[i] = float64(time.Since(t0).Microseconds())
		if err != nil && (errors.Is(err, context.DeadlineExceeded) ||
			errors.Is(err, context.Canceled) || errors.Is(err, query.ErrBudgetExhausted)) {
			timedOut.Add(1)
			return nil
		}
		return err
	})
	wall := time.Since(start)
	if err != nil {
		return Measure{}, err
	}
	var m Measure
	for _, t := range times {
		m.TimeUS += t
	}
	f := float64(n)
	m.TimeUS /= f
	m.WallUS = float64(wall.Microseconds()) / f
	m.MemMB = (float64(merged.WorkBytes)/f + float64(eng.SizeBytes())) / 1e6
	m.NVD = float64(merged.VisitedDoors) / f
	m.CacheHits = float64(merged.CacheHits) / f
	m.CacheMisses = float64(merged.CacheMisses) / f
	m.TimedOut = int(timedOut.Load())
	s.timedOutTot += timedOut.Load()
	if merged.CacheHits+merged.CacheMisses > 0 {
		c := s.cacheTot[eng.Name()]
		if c == nil {
			c = &CacheEffect{Engine: eng.Name()}
			s.cacheTot[eng.Name()] = c
		}
		c.Hits += merged.CacheHits
		c.Misses += merged.CacheMisses
	}
	return m, nil
}

// MeasureRQ runs the range query over all points.
func (s *Suite) MeasureRQ(eng query.Engine, pts []indoor.Point, r float64) (Measure, error) {
	ec := query.AsCtx(eng)
	return s.measure(eng, len(pts), func(ctx context.Context, i int, st *query.Stats) error {
		_, err := ec.RangeCtx(ctx, pts[i], r, st)
		return err
	})
}

// MeasureKNN runs the kNN query over all points.
func (s *Suite) MeasureKNN(eng query.Engine, pts []indoor.Point, k int) (Measure, error) {
	ec := query.AsCtx(eng)
	return s.measure(eng, len(pts), func(ctx context.Context, i int, st *query.Stats) error {
		_, err := ec.KNNCtx(ctx, pts[i], k, st)
		return err
	})
}

// MeasureSPD runs the fused shortest path/distance query over all pairs.
func (s *Suite) MeasureSPD(eng query.Engine, pairs []workload.Pair) (Measure, error) {
	ec := query.AsCtx(eng)
	return s.measure(eng, len(pairs), func(ctx context.Context, i int, st *query.Stats) error {
		_, err := ec.SPDCtx(ctx, pairs[i].P, pairs[i].Q, st)
		return err
	})
}
