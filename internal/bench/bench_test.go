package bench

import (
	"bytes"
	"strings"
	"testing"

	"indoorsq/internal/dataset"
)

// smallSuite uses CPH (the smallest dataset) to keep unit tests quick.
func smallSuite() *Suite {
	s := NewSuite()
	s.Queries = 3
	s.Objects = 200
	return s
}

func TestNewEngineAll(t *testing.T) {
	info := dataset.Get("CPH")
	for _, name := range EngineNames {
		eng, err := NewEngine(name, info)
		if err != nil {
			t.Fatalf("NewEngine(%s): %v", name, err)
		}
		if eng.Name() != name {
			t.Fatalf("engine name %q != %q", eng.Name(), name)
		}
	}
	if _, err := NewEngine("Bogus", info); err == nil {
		t.Fatal("bogus engine must error")
	}
}

func TestEngineCaching(t *testing.T) {
	s := smallSuite()
	info := dataset.Get("CPH")
	a := s.Engine(info, "IDModel")
	b := s.Engine(info, "IDModel")
	if a != b {
		t.Fatal("Engine should cache")
	}
}

func TestObjectsShared(t *testing.T) {
	s := smallSuite()
	info := dataset.Get("CPH")
	a := s.objects(info, 100)
	b := s.objects(info, 100)
	if &a[0] != &b[0] {
		t.Fatal("objects should be cached per size")
	}
}

func TestMeasureRQProducesSaneNumbers(t *testing.T) {
	s := smallSuite()
	info := dataset.Get("CPH")
	eng := s.Engine(info, "IDModel")
	eng.SetObjects(s.objects(info, s.Objects))
	pts := s.points(info)
	m, err := s.MeasureRQ(eng, pts, info.DefaultR)
	if err != nil {
		t.Fatal(err)
	}
	if m.TimeUS < 0 || m.MemMB <= 0 {
		t.Fatalf("bad measure %+v", m)
	}
}

func TestRunAOnSmallDatasets(t *testing.T) {
	s := smallSuite()
	series, err := s.RunA([]string{"CPH"})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("RunA returned %d series", len(series))
	}
	for _, name := range EngineNames {
		if series[0].Get(name, 0) <= 0 {
			t.Fatalf("%s size not recorded", name)
		}
	}
	// IDIndex must be the largest model on any dataset.
	idx := series[0].Get("IDIndex", 0)
	for _, name := range []string{"IDModel", "CIndex"} {
		if series[0].Get(name, 0) >= idx {
			t.Fatalf("IDIndex (%g MB) should dominate %s (%g MB)",
				idx, name, series[0].Get(name, 0))
		}
	}
}

func TestSeriesWriters(t *testing.T) {
	s := newSeries("F1", "demo", "us", "x", []string{"1", "2"}, []string{"A", "B"})
	s.Set("A", 0, 1.5)
	s.Set("A", 1, 2000)
	s.Set("B", 0, 0)
	s.Set("B", 1, 12.25)
	var buf bytes.Buffer
	s.WriteTable(&buf)
	out := buf.String()
	if !strings.Contains(out, "# F1: demo [us]") || !strings.Contains(out, "2000") {
		t.Fatalf("table output:\n%s", out)
	}
	buf.Reset()
	s.WriteCSV(&buf)
	if !strings.Contains(buf.String(), "F1,2,2000,12.25") {
		t.Fatalf("csv output:\n%s", buf.String())
	}
}

func TestVariantSweepOnCPHOnly(t *testing.T) {
	// Exercise the shared sweep path with a single tiny dataset.
	s := smallSuite()
	series, err := s.variantSweep([]string{"CPH"}, [7]string{
		"T1", "T2", "T3", "T4", "T5", "T6", "T7",
	}, "demo")
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 7 {
		t.Fatalf("got %d series", len(series))
	}
	// SPDQ NVD: IDIndex visits far fewer doors than IDModel.
	nvd := series[6]
	if nvd.Get("IDIndex", 0) >= nvd.Get("IDModel", 0) {
		t.Fatalf("IDIndex NVD %g should be below IDModel %g",
			nvd.Get("IDIndex", 0), nvd.Get("IDModel", 0))
	}
}

func TestRunTaskUnknown(t *testing.T) {
	s := smallSuite()
	if _, err := s.RunTask("Z9"); err == nil {
		t.Fatal("unknown task must error")
	}
	if len(Tasks()) != 9 {
		t.Fatalf("Tasks = %v", Tasks())
	}
}

// TestRunXSmoke exercises the extension-scaling task.
func TestRunXSmoke(t *testing.T) {
	s := smallSuite()
	series, err := s.RunX("CPH")
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("got %d series", len(series))
	}
	// Multi-stop optimization cost must grow with the stop count.
	x4 := series[3]
	if x4.Get("time", 3) < x4.Get("time", 0) {
		t.Fatalf("8-stop %g should cost more than 2-stop %g",
			x4.Get("time", 3), x4.Get("time", 0))
	}
}

// TestRunB3B4B5SmokeCPH exercises the remaining task runners on the
// smallest dataset.
func TestRunB3B4B5SmokeCPH(t *testing.T) {
	s := smallSuite()
	for _, run := range []func([]string) ([]*Series, error){
		s.RunB3, s.RunB4, s.RunB5,
	} {
		series, err := run([]string{"CPH"})
		if err != nil {
			t.Fatal(err)
		}
		if len(series) < 2 {
			t.Fatalf("got %d series", len(series))
		}
		for _, sr := range series {
			for _, name := range EngineNames {
				for xi := range sr.Xs {
					if v := sr.Get(name, xi); v < 0 {
						t.Fatalf("%s %s x=%s: negative value %g", sr.ID, name, sr.Xs[xi], v)
					}
				}
			}
		}
	}
}
