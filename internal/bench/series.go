package bench

import (
	"fmt"
	"io"
	"strings"
)

// Series is one regenerated paper figure: a metric as a function of one
// varied parameter, with one column per engine.
type Series struct {
	ID     string // paper figure id, e.g. "F10"
	Title  string
	Unit   string
	XLabel string
	Xs     []string
	Vals   map[string][]float64 // engine -> values aligned with Xs
	Order  []string             // engine order
}

// newSeries allocates a series for the given engines and x values.
func newSeries(id, title, unit, xlabel string, xs []string, engines []string) *Series {
	s := &Series{
		ID: id, Title: title, Unit: unit, XLabel: xlabel,
		Xs:    append([]string(nil), xs...),
		Vals:  make(map[string][]float64, len(engines)),
		Order: append([]string(nil), engines...),
	}
	for _, e := range engines {
		s.Vals[e] = make([]float64, len(xs))
	}
	return s
}

// Set records one observation.
func (s *Series) Set(engine string, xi int, v float64) { s.Vals[engine][xi] = v }

// Get returns one observation.
func (s *Series) Get(engine string, xi int) float64 { return s.Vals[engine][xi] }

// WriteTable renders the series as an aligned text table in the layout of
// the paper's figures (x on rows, engines on columns).
func (s *Series) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# %s: %s [%s]\n", s.ID, s.Title, s.Unit)
	cols := append([]string{s.XLabel}, s.Order...)
	widths := make([]int, len(cols))
	rows := make([][]string, 0, len(s.Xs)+1)
	rows = append(rows, cols)
	for xi, x := range s.Xs {
		row := []string{x}
		for _, e := range s.Order {
			row = append(row, formatVal(s.Vals[e][xi]))
		}
		rows = append(rows, row)
	}
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		fmt.Fprintln(w, b.String())
	}
	fmt.Fprintln(w)
}

// WriteCSV renders the series as CSV.
func (s *Series) WriteCSV(w io.Writer) {
	fmt.Fprintf(w, "figure,%s,%s\n", s.XLabel, strings.Join(s.Order, ","))
	for xi, x := range s.Xs {
		vals := make([]string, 0, len(s.Order))
		for _, e := range s.Order {
			vals = append(vals, fmt.Sprintf("%g", s.Vals[e][xi]))
		}
		fmt.Fprintf(w, "%s,%s,%s\n", s.ID, x, strings.Join(vals, ","))
	}
}

func formatVal(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// WriteAll renders a list of series as text tables.
func WriteAll(w io.Writer, series []*Series) {
	for _, s := range series {
		s.WriteTable(w)
	}
}

// WriteAllCSV renders a list of series as CSV blocks.
func WriteAllCSV(w io.Writer, series []*Series) {
	for _, s := range series {
		s.WriteCSV(w)
	}
}
