package bench

import (
	"fmt"
	"time"

	"indoorsq/internal/dataset"
	"indoorsq/internal/indoor"
	"indoorsq/internal/workload"
)

// Default evaluation settings from Table 5.
var (
	// B2 object counts.
	ObjectCounts = []int{500, 1000, 1500, 2000, 2500}
	// B4 k values.
	KValues = []int{1, 5, 10, 50, 100}
	// B1 floor counts.
	FloorCounts = []int{3, 5, 7, 9}
	// B2-B5 datasets.
	QueryDatasets = []string{"SYN5", "MZB", "HSM", "CPH"}
	// Task A datasets (Figures 8-9).
	ConstructionDatasets = []string{"SYN3", "SYN5", "SYN7", "SYN9", "MZB", "HSM", "CPH"}
	// B6 topology variants.
	TopologyDatasets = []string{"SYN5-", "SYN5", "SYN5+"}
	// B7 decomposition variants.
	DecompositionDatasets = []string{"SYN50", "SYN5", "MZB0", "MZB", "MZBD"}
)

// points returns the shared RQ/kNN query points of a dataset.
func (s *Suite) points(info *dataset.Info) []indoor.Point {
	gen := workload.New(info.Space, s.Seed)
	return gen.Points(s.Queries)
}

// pairs returns the shared SPDQ pairs of a dataset for one s2t value.
func (s *Suite) pairs(info *dataset.Info, s2t float64) []workload.Pair {
	gen := workload.New(info.Space, s.Seed+int64(s2t*17))
	return gen.SPDPairs(s2t, s.Queries)
}

// RunA evaluates model construction (task A): model size (a1, Figure 8) and
// construction time (a2, Figure 9). Engines are built fresh here, bypassing
// the suite cache, so timings are honest.
func (s *Suite) RunA(datasets []string) ([]*Series, error) {
	size := newSeries("F8", "Model Size", "MB", "dataset", datasets, s.Engines)
	tim := newSeries("F9", "Construction Time", "ms", "dataset", datasets, s.Engines)
	for xi, ds := range datasets {
		info := dataset.Get(ds)
		for _, name := range s.Engines {
			start := time.Now()
			eng, err := NewEngine(name, info)
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			size.Set(name, xi, float64(eng.SizeBytes())/1e6)
			tim.Set(name, xi, float64(elapsed.Microseconds())/1e3)
			// Keep the freshly built engine for subsequent query tasks.
			s.engines[info.Name+"/"+name] = eng
		}
	}
	return []*Series{size, tim}, nil
}

// queryTriple measures RQ, kNN and SPDQ at the dataset defaults and fills
// one x-slot of up to seven series (time/mem for RQ and kNN; time/mem/NVD
// for SPDQ). Nil series are skipped.
func (s *Suite) queryTriple(info *dataset.Info, xi int,
	rqT, rqM, knnT, knnM, spdT, spdM, spdN *Series) error {
	pts := s.points(info)
	prs := s.pairs(info, info.DefaultS2T)
	objs := s.objects(info, s.Objects)
	for _, name := range s.Engines {
		eng := s.Engine(info, name)
		eng.SetObjects(objs)
		if rqT != nil {
			m, err := s.MeasureRQ(eng, pts, info.DefaultR)
			if err != nil {
				return fmt.Errorf("%s RQ on %s: %w", name, info.Name, err)
			}
			rqT.Set(name, xi, m.TimeUS)
			rqM.Set(name, xi, m.MemMB)
		}
		if knnT != nil {
			m, err := s.MeasureKNN(eng, pts, s.K)
			if err != nil {
				return fmt.Errorf("%s kNN on %s: %w", name, info.Name, err)
			}
			knnT.Set(name, xi, m.TimeUS)
			knnM.Set(name, xi, m.MemMB)
		}
		if spdT != nil {
			m, err := s.MeasureSPD(eng, prs)
			if err != nil {
				return fmt.Errorf("%s SPDQ on %s: %w", name, info.Name, err)
			}
			spdT.Set(name, xi, m.TimeUS)
			spdM.Set(name, xi, m.MemMB)
			spdN.Set(name, xi, m.NVD)
		}
	}
	return nil
}

// RunB1 evaluates the effect of the floor number n on SYN (Figures 10-16).
func (s *Suite) RunB1() ([]*Series, error) {
	xs := make([]string, len(FloorCounts))
	for i, n := range FloorCounts {
		xs[i] = fmt.Sprintf("%d", n)
	}
	rqT := newSeries("F10", "RQ Time vs n (SYN)", "us", "n", xs, s.Engines)
	rqM := newSeries("F11", "RQ Memory vs n (SYN)", "MB", "n", xs, s.Engines)
	knnT := newSeries("F12", "kNNQ Time vs n (SYN)", "us", "n", xs, s.Engines)
	knnM := newSeries("F13", "kNNQ Memory vs n (SYN)", "MB", "n", xs, s.Engines)
	spdT := newSeries("F14", "SPDQ Time vs n (SYN)", "us", "n", xs, s.Engines)
	spdM := newSeries("F15", "SPDQ Memory vs n (SYN)", "MB", "n", xs, s.Engines)
	spdN := newSeries("F16", "SPDQ NVD vs n (SYN)", "doors", "n", xs, s.Engines)
	for xi, n := range FloorCounts {
		info := dataset.Get(fmt.Sprintf("SYN%d", n))
		if err := s.queryTriple(info, xi, rqT, rqM, knnT, knnM, spdT, spdM, spdN); err != nil {
			return nil, err
		}
	}
	return []*Series{rqT, rqM, knnT, knnM, spdT, spdM, spdN}, nil
}

// RunB2 evaluates the effect of the object count |O| (Figures 17-20).
func (s *Suite) RunB2(datasets []string) ([]*Series, error) {
	var out []*Series
	xs := make([]string, len(ObjectCounts))
	for i, n := range ObjectCounts {
		xs[i] = fmt.Sprintf("%d", n)
	}
	for _, ds := range datasets {
		info := dataset.Get(ds)
		rqT := newSeries("F17", "RQ Time vs |O| ("+ds+")", "us", "|O|", xs, s.Engines)
		rqM := newSeries("F18", "RQ Memory vs |O| ("+ds+")", "MB", "|O|", xs, s.Engines)
		knnT := newSeries("F19", "kNNQ Time vs |O| ("+ds+")", "us", "|O|", xs, s.Engines)
		knnM := newSeries("F20", "kNNQ Memory vs |O| ("+ds+")", "MB", "|O|", xs, s.Engines)
		pts := s.points(info)
		for xi, n := range ObjectCounts {
			objs := s.objects(info, n)
			for _, name := range s.Engines {
				eng := s.Engine(info, name)
				eng.SetObjects(objs)
				m, err := s.MeasureRQ(eng, pts, info.DefaultR)
				if err != nil {
					return nil, err
				}
				rqT.Set(name, xi, m.TimeUS)
				rqM.Set(name, xi, m.MemMB)
				m, err = s.MeasureKNN(eng, pts, s.K)
				if err != nil {
					return nil, err
				}
				knnT.Set(name, xi, m.TimeUS)
				knnM.Set(name, xi, m.MemMB)
			}
		}
		out = append(out, rqT, rqM, knnT, knnM)
	}
	return out, nil
}

// RunB3 evaluates the effect of the range radius r on RQ (Figures 21-22).
func (s *Suite) RunB3(datasets []string) ([]*Series, error) {
	var out []*Series
	for _, ds := range datasets {
		info := dataset.Get(ds)
		xs := make([]string, len(info.RValues))
		for i, r := range info.RValues {
			xs[i] = fmt.Sprintf("%g", r)
		}
		rqT := newSeries("F21", "RQ Time vs r ("+ds+")", "us", "r(m)", xs, s.Engines)
		rqM := newSeries("F22", "RQ Memory vs r ("+ds+")", "MB", "r(m)", xs, s.Engines)
		pts := s.points(info)
		objs := s.objects(info, s.Objects)
		for _, name := range s.Engines {
			eng := s.Engine(info, name)
			eng.SetObjects(objs)
			for xi, r := range info.RValues {
				m, err := s.MeasureRQ(eng, pts, r)
				if err != nil {
					return nil, err
				}
				rqT.Set(name, xi, m.TimeUS)
				rqM.Set(name, xi, m.MemMB)
			}
		}
		out = append(out, rqT, rqM)
	}
	return out, nil
}

// RunB4 evaluates the effect of k on kNNQ (Figures 23-24).
func (s *Suite) RunB4(datasets []string) ([]*Series, error) {
	var out []*Series
	xs := make([]string, len(KValues))
	for i, k := range KValues {
		xs[i] = fmt.Sprintf("%d", k)
	}
	for _, ds := range datasets {
		info := dataset.Get(ds)
		knnT := newSeries("F23", "kNNQ Time vs k ("+ds+")", "us", "k", xs, s.Engines)
		knnM := newSeries("F24", "kNNQ Memory vs k ("+ds+")", "MB", "k", xs, s.Engines)
		pts := s.points(info)
		objs := s.objects(info, s.Objects)
		for _, name := range s.Engines {
			eng := s.Engine(info, name)
			eng.SetObjects(objs)
			for xi, k := range KValues {
				m, err := s.MeasureKNN(eng, pts, k)
				if err != nil {
					return nil, err
				}
				knnT.Set(name, xi, m.TimeUS)
				knnM.Set(name, xi, m.MemMB)
			}
		}
		out = append(out, knnT, knnM)
	}
	return out, nil
}

// RunB5 evaluates the effect of the source-target distance s2t on SPDQ
// (Figures 25-27).
func (s *Suite) RunB5(datasets []string) ([]*Series, error) {
	var out []*Series
	for _, ds := range datasets {
		info := dataset.Get(ds)
		xs := make([]string, len(info.S2TValues))
		for i, v := range info.S2TValues {
			xs[i] = fmt.Sprintf("%g", v)
		}
		spdT := newSeries("F25", "SPDQ Time vs s2t ("+ds+")", "us", "s2t(m)", xs, s.Engines)
		spdM := newSeries("F26", "SPDQ Memory vs s2t ("+ds+")", "MB", "s2t(m)", xs, s.Engines)
		spdN := newSeries("F27", "SPDQ NVD vs s2t ("+ds+")", "doors", "s2t(m)", xs, s.Engines)
		objs := s.objects(info, s.Objects)
		for xi, v := range info.S2TValues {
			prs := s.pairs(info, v)
			for _, name := range s.Engines {
				eng := s.Engine(info, name)
				eng.SetObjects(objs)
				m, err := s.MeasureSPD(eng, prs)
				if err != nil {
					return nil, err
				}
				spdT.Set(name, xi, m.TimeUS)
				spdM.Set(name, xi, m.MemMB)
				spdN.Set(name, xi, m.NVD)
			}
		}
		out = append(out, spdT, spdM, spdN)
	}
	return out, nil
}

// RunB6 evaluates topological change on SYN (Figures 28-34).
func (s *Suite) RunB6() ([]*Series, error) {
	return s.variantSweep(TopologyDatasets, [7]string{
		"F28", "F29", "F30", "F31", "F32", "F33", "F34",
	}, "topology")
}

// RunB7 evaluates the hallway decomposition method (Figures 35-41).
func (s *Suite) RunB7() ([]*Series, error) {
	return s.variantSweep(DecompositionDatasets, [7]string{
		"F35", "F36", "F37", "F38", "F39", "F40", "F41",
	}, "decomposition")
}

// variantSweep runs the RQ/kNN/SPDQ triple across dataset variants.
func (s *Suite) variantSweep(datasets []string, figs [7]string, what string) ([]*Series, error) {
	rqT := newSeries(figs[0], "RQ Time vs "+what, "us", what, datasets, s.Engines)
	rqM := newSeries(figs[1], "RQ Memory vs "+what, "MB", what, datasets, s.Engines)
	knnT := newSeries(figs[2], "kNNQ Time vs "+what, "us", what, datasets, s.Engines)
	knnM := newSeries(figs[3], "kNNQ Memory vs "+what, "MB", what, datasets, s.Engines)
	spdT := newSeries(figs[4], "SPDQ Time vs "+what, "us", what, datasets, s.Engines)
	spdM := newSeries(figs[5], "SPDQ Memory vs "+what, "MB", what, datasets, s.Engines)
	spdN := newSeries(figs[6], "SPDQ NVD vs "+what, "doors", what, datasets, s.Engines)
	for xi, ds := range datasets {
		info := dataset.Get(ds)
		if err := s.queryTriple(info, xi, rqT, rqM, knnT, knnM, spdT, spdM, spdN); err != nil {
			return nil, err
		}
	}
	return []*Series{rqT, rqM, knnT, knnM, spdT, spdM, spdN}, nil
}

// RunTask dispatches a task by name ("A", "B1".."B7").
func (s *Suite) RunTask(task string) ([]*Series, error) {
	switch task {
	case "A":
		return s.RunA(ConstructionDatasets)
	case "B1":
		return s.RunB1()
	case "B2":
		return s.RunB2(QueryDatasets)
	case "B3":
		return s.RunB3(QueryDatasets)
	case "B4":
		return s.RunB4(QueryDatasets)
	case "B5":
		return s.RunB5(QueryDatasets)
	case "B6":
		return s.RunB6()
	case "B7":
		return s.RunB7()
	case "X":
		return s.RunX("CPH")
	}
	return nil, fmt.Errorf("bench: unknown task %q", task)
}

// Tasks lists all task names in order (X is the extension-scaling task,
// beyond the paper's figures).
func Tasks() []string {
	return []string{"A", "B1", "B2", "B3", "B4", "B5", "B6", "B7", "X"}
}
