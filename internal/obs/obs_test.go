package obs_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"indoorsq/internal/obs"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h obs.Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// 90 fast samples in bucket 0, 10 slow ones four buckets up: the p50
	// lands in the fast bucket, the p95/p99 in the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Nanosecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Microsecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got := h.Bucket(0); got != 90 {
		t.Fatalf("bucket 0 = %d, want 90", got)
	}
	if got := h.Quantile(0.5); got != obs.BucketBound(0) {
		t.Fatalf("p50 = %v, want %v", got, obs.BucketBound(0))
	}
	slow := h.Quantile(0.95)
	if slow <= obs.BucketBound(0) || slow < 10*time.Microsecond {
		t.Fatalf("p95 = %v, want a bound covering 10µs", slow)
	}
	if h.Quantile(0.99) != slow {
		t.Fatalf("p99 = %v, want %v", h.Quantile(0.99), slow)
	}
	// Negative durations clamp to zero instead of corrupting a bucket index.
	h.Observe(-time.Second)
	if got := h.Bucket(0); got != 91 {
		t.Fatalf("bucket 0 after negative observe = %d, want 91", got)
	}
}

func TestHistogramOverflow(t *testing.T) {
	// All samples in overflow: every quantile must report the overflow
	// marker, not the largest finite bound. (Regression: Quantile used to
	// count the overflow bucket in the total but never walk it, so a
	// quantile landing there silently underreported the tail as the slowest
	// finite bucket — exactly the tail the cost-based router feeds on.)
	var h obs.Histogram
	for i := 0; i < 10; i++ {
		h.Observe(1000 * time.Hour) // far beyond the largest finite bound
	}
	if got := h.Bucket(obs.NumBuckets); got != 10 {
		t.Fatalf("overflow bucket = %d, want 10", got)
	}
	over := obs.BucketBound(obs.NumBuckets)
	if over <= obs.BucketBound(obs.NumBuckets-1) {
		t.Fatalf("overflow marker %v not beyond largest finite bound %v",
			over, obs.BucketBound(obs.NumBuckets-1))
	}
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != over {
			t.Fatalf("overflow quantile(%g) = %v, want overflow marker %v", q, got, over)
		}
	}
}

func TestHistogramQuantileSplitsAtOverflow(t *testing.T) {
	// 90 finite samples, 10 in overflow: the p50 stays finite, the p95/p99
	// land in overflow and must be distinguishable from any finite bound.
	var h obs.Histogram
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000 * time.Hour)
	}
	if got := h.Quantile(0.5); got != obs.BucketBound(10) {
		t.Fatalf("p50 = %v, want finite bound %v", got, obs.BucketBound(10))
	}
	over := obs.BucketBound(obs.NumBuckets)
	if got := h.Quantile(0.95); got != over {
		t.Fatalf("p95 = %v, want overflow marker %v", got, over)
	}
	if got := h.Quantile(0.99); got != over {
		t.Fatalf("p99 = %v, want overflow marker %v", got, over)
	}
}

func TestRegistrySeries(t *testing.T) {
	r := obs.NewRegistry()
	a := r.Series("CIndex", obs.OpSPD)
	if a == nil {
		t.Fatal("Series returned nil on a live registry")
	}
	if b := r.Series("CIndex", obs.OpSPD); b != a {
		t.Fatal("Series not stable for the same key")
	}
	r.Series("CIndex", obs.OpRange)
	r.Series("IDModel", obs.OpKNN)
	keys := r.Keys()
	if len(keys) != 3 {
		t.Fatalf("keys = %v, want 3 entries", keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1].Engine > keys[i].Engine ||
			(keys[i-1].Engine == keys[i].Engine && keys[i-1].Op > keys[i].Op) {
			t.Fatalf("keys not sorted: %v", keys)
		}
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *obs.Registry
	if r.Series("x", "y") != nil {
		t.Fatal("nil registry Series should be nil")
	}
	if r.Keys() != nil {
		t.Fatal("nil registry Keys should be nil")
	}
	r.RegisterGauge("g", func() float64 { return 1 })
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry WriteText wrote %q, err %v", sb.String(), err)
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry Snapshot should be nil")
	}
}

func TestSeriesObserveAndPeakMax(t *testing.T) {
	var s obs.Series
	s.Observe(time.Millisecond, 10, 1000, 3, 1, false)
	s.Observe(2*time.Millisecond, 5, 400, 0, 2, true)
	if got := s.Count.Load(); got != 2 {
		t.Fatalf("count = %d", got)
	}
	if got := s.Errs.Load(); got != 1 {
		t.Fatalf("errs = %d", got)
	}
	if got := s.VisitedDoors.Load(); got != 15 {
		t.Fatalf("visited doors = %d", got)
	}
	if got := s.WorkBytes.Load(); got != 1400 {
		t.Fatalf("work bytes = %d, want sum 1400", got)
	}
	if got := s.PeakWorkBytes.Load(); got != 1000 {
		t.Fatalf("peak work bytes = %d, want max 1000", got)
	}
	if got := s.CacheHits.Load(); got != 3 {
		t.Fatalf("cache hits = %d", got)
	}
	if got := s.CacheMisses.Load(); got != 3 {
		t.Fatalf("cache misses = %d", got)
	}
}

func TestWriteText(t *testing.T) {
	r := obs.NewRegistry()
	r.Series("CIndex", obs.OpSPD).Observe(time.Millisecond, 7, 512, 2, 1, false)
	r.RegisterGauge("isq_test_gauge", func() float64 { return 42 })
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`isq_queries_total{engine="CIndex",op="spd"} 1`,
		`isq_query_errors_total{engine="CIndex",op="spd"} 0`,
		`isq_visited_doors_total{engine="CIndex",op="spd"} 7`,
		`isq_work_bytes_total{engine="CIndex",op="spd"} 512`,
		`isq_peak_work_bytes{engine="CIndex",op="spd"} 512`,
		`isq_cache_hits_total{engine="CIndex",op="spd"} 2`,
		`isq_cache_misses_total{engine="CIndex",op="spd"} 1`,
		`isq_query_latency_seconds{engine="CIndex",op="spd",quantile="0.5"}`,
		`isq_query_latency_seconds{engine="CIndex",op="spd",quantile="0.95"}`,
		`isq_query_latency_seconds{engine="CIndex",op="spd",quantile="0.99"}`,
		`isq_query_latency_seconds_count{engine="CIndex",op="spd"} 1`,
		"isq_test_gauge 42",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestTraceSpansIdempotentEnd(t *testing.T) {
	tr := obs.NewTrace()
	end := tr.StartSpan(obs.StageExpand)
	end()
	end() // second call must not record a duplicate
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	if spans[0].Stage != obs.StageExpand {
		t.Fatalf("stage = %v", spans[0].Stage)
	}
	if spans[0].Dur < 0 || spans[0].Start < 0 {
		t.Fatalf("negative offsets: %+v", spans[0])
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *obs.Trace
	tr.StartSpan(obs.StageHost)() // must not panic
	tr.FinishQuery(obs.QuerySummary{})
	if tr.Spans() != nil || tr.Queries() != nil {
		t.Fatal("nil trace should report nothing")
	}
}

func TestStageNames(t *testing.T) {
	want := map[obs.Stage]string{
		obs.StageHost:   "host_lookup",
		obs.StageProbe:  "index_probe",
		obs.StageExpand: "graph_expand",
		obs.StageRefine: "refine",
	}
	for s, name := range want {
		if s.String() != name {
			t.Fatalf("stage %d = %q, want %q", s, s.String(), name)
		}
	}
	if obs.Stage(200).String() != "unknown" {
		t.Fatal("out-of-range stage should be unknown")
	}
}

func TestBindComposition(t *testing.T) {
	if _, ok := obs.From(nil); ok {
		t.Fatal("nil context should carry no binding")
	}
	ctx := context.Background()
	if _, ok := obs.From(ctx); ok {
		t.Fatal("fresh context should carry no binding")
	}
	reg := obs.NewRegistry()
	tr := obs.NewTrace()
	// Order must not matter: each With* keeps the other half.
	ctx1 := obs.WithTrace(obs.WithRegistry(ctx, reg), tr)
	ctx2 := obs.WithRegistry(obs.WithTrace(ctx, tr), reg)
	for i, c := range []context.Context{ctx1, ctx2} {
		b, ok := obs.From(c)
		if !ok || b.Reg != reg || b.Trace != tr {
			t.Fatalf("ctx%d binding = %+v ok=%v, want both halves", i+1, b, ok)
		}
	}
	// Re-binding a registry replaces it but keeps the trace.
	reg2 := obs.NewRegistry()
	b, _ := obs.From(obs.WithRegistry(ctx1, reg2))
	if b.Reg != reg2 || b.Trace != tr {
		t.Fatalf("rebind = %+v, want new registry and original trace", b)
	}
}

func TestSnapshot(t *testing.T) {
	r := obs.NewRegistry()
	r.Series("IPTree", obs.OpKNN).Observe(time.Millisecond, 1, 2, 0, 0, false)
	r.RegisterGauge("isq_snap_gauge", func() float64 { return 7 })
	snap := r.Snapshot()
	ent, ok := snap["IPTree/knn"].(map[string]any)
	if !ok {
		t.Fatalf("snapshot missing series entry: %v", snap)
	}
	if ent["count"] != int64(1) {
		t.Fatalf("snapshot count = %v", ent["count"])
	}
	if snap["isq_snap_gauge"] != float64(7) {
		t.Fatalf("snapshot gauge = %v", snap["isq_snap_gauge"])
	}
}
