// Package obs is the zero-dependency observability layer: a process-wide
// metrics registry of atomic counters, gauges, and fixed-bucket latency
// histograms keyed by engine × query type, plus a lightweight per-query
// trace (trace.go) that rides the context alongside query.Budget.
//
// The package sits below every other internal package (it imports only the
// standard library) so the query framework, the engines, the batch
// executor, and the HTTP server can all emit into one registry without
// import cycles. Everything is safe for concurrent use; the disabled path
// — no registry bound on the context — costs the caller a single context
// lookup and nothing else.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Query-type labels for the registry's op dimension. Engines pass these to
// query.Begin; the server and benches key their reads off the same values.
const (
	OpRange = "range"
	OpKNN   = "knn"
	OpSPD   = "spd"
)

// NumBuckets is the number of finite latency buckets. Bucket i counts
// observations with d <= 1µs << i, covering 1µs .. ~2.2min in powers of
// two; one extra overflow bucket catches everything slower.
const NumBuckets = 28

// BucketBound returns the inclusive upper bound of finite bucket i. For
// i == NumBuckets (the overflow bucket, which has no finite upper bound) it
// returns the overflow marker: twice the largest finite bound, a value no
// finite bucket can produce, so callers can tell "the quantile fell in
// overflow" apart from "the quantile fell in the slowest finite bucket".
func BucketBound(i int) time.Duration {
	return time.Microsecond << i
}

// bucketFor maps a duration to its bucket index (NumBuckets = overflow).
func bucketFor(d time.Duration) int {
	bound := time.Microsecond
	for i := 0; i < NumBuckets; i++ {
		if d <= bound {
			return i
		}
		bound <<= 1
	}
	return NumBuckets
}

// Histogram is a fixed-bucket latency histogram with power-of-two bounds.
// Observe is lock-free; Quantile reads a racy-but-consistent-enough
// snapshot (each bucket is individually atomic).
type Histogram struct {
	buckets [NumBuckets + 1]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// SumNs returns the sum of all observed latencies in nanoseconds.
func (h *Histogram) SumNs() int64 { return h.sumNs.Load() }

// Bucket returns the raw count of bucket i (NumBuckets = overflow).
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i].Load() }

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of the
// bucket containing the q-th sample. It snapshots the buckets first so the
// total used for the rank matches the counts walked. Returns 0 when empty.
// A quantile that lands in the overflow bucket returns
// BucketBound(NumBuckets), the overflow marker — strictly larger than every
// finite bound — rather than silently underreporting the tail as the
// slowest finite bucket.
func (h *Histogram) Quantile(q float64) time.Duration {
	var snap [NumBuckets + 1]int64
	var total int64
	for i := range snap {
		snap[i] = h.buckets[i].Load()
		total += snap[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i <= NumBuckets; i++ {
		seen += snap[i]
		if seen >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(NumBuckets) // unreachable: total covers every bucket
}

// Series holds the counters for one (engine, op) pair. All fields are
// atomics; a Series pointer may be cached and written from many goroutines.
type Series struct {
	// InFlight is the number of currently executing queries (gauge).
	InFlight atomic.Int64
	// Count and Errs tally completed queries and how many returned an error.
	Count atomic.Int64
	Errs  atomic.Int64
	// Work counters: sums of the per-query query.Stats deltas.
	VisitedDoors atomic.Int64
	WorkBytes    atomic.Int64
	CacheHits    atomic.Int64
	CacheMisses  atomic.Int64
	// PeakWorkBytes is the largest single-query working set seen (max, not
	// sum — the same merge rule as query.Stats.Add's peak folding).
	PeakWorkBytes atomic.Int64
	// Latency is the query wall-time histogram.
	Latency Histogram
}

// Observe records one completed query into the series.
func (s *Series) Observe(d time.Duration, doors, work, hits, misses int64, failed bool) {
	s.Count.Add(1)
	if failed {
		s.Errs.Add(1)
	}
	s.VisitedDoors.Add(doors)
	s.WorkBytes.Add(work)
	s.CacheHits.Add(hits)
	s.CacheMisses.Add(misses)
	maxStore(&s.PeakWorkBytes, work)
	s.Latency.Observe(d)
}

// maxStore raises a to at least v.
func maxStore(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Key identifies one series in the registry.
type Key struct {
	Engine string
	Op     string
}

// Registry is the process-wide metrics store. The zero value is not usable;
// call NewRegistry. All methods are nil-safe: a nil *Registry behaves as a
// disabled registry (Series returns nil, WriteText writes nothing).
type Registry struct {
	mu     sync.RWMutex
	series map[Key]*Series
	gauges map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series: make(map[Key]*Series),
		gauges: make(map[string]func() float64),
	}
}

// Series returns the series for (engine, op), creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Series(engine, op string) *Series {
	if r == nil {
		return nil
	}
	k := Key{Engine: engine, Op: op}
	r.mu.RLock()
	s := r.series[k]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.series[k]; s == nil {
		s = &Series{}
		r.series[k] = s
	}
	return s
}

// RegisterGauge registers a named gauge evaluated at scrape time. Useful
// for cache sizes, hit counters owned elsewhere, and pool occupancy.
// Re-registering a name replaces the previous function.
func (r *Registry) RegisterGauge(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = fn
	r.mu.Unlock()
}

// Keys returns all series keys, sorted by engine then op.
func (r *Registry) Keys() []Key {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	keys := make([]Key, 0, len(r.series))
	for k := range r.series {
		keys = append(keys, k)
	}
	r.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Engine != keys[j].Engine {
			return keys[i].Engine < keys[j].Engine
		}
		return keys[i].Op < keys[j].Op
	})
	return keys
}

// quantiles exported on the text format and in snapshots.
var quantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.50},
	{"0.95", 0.95},
	{"0.99", 0.99},
}

// WriteText writes the registry in a Prometheus-style plain-text format:
// one line per (metric, engine, op) with deterministic ordering, followed
// by the registered gauges.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	keys := r.Keys()
	type counter struct {
		name string
		get  func(*Series) int64
	}
	counters := []counter{
		{"isq_queries_total", func(s *Series) int64 { return s.Count.Load() }},
		{"isq_query_errors_total", func(s *Series) int64 { return s.Errs.Load() }},
		{"isq_queries_in_flight", func(s *Series) int64 { return s.InFlight.Load() }},
		{"isq_visited_doors_total", func(s *Series) int64 { return s.VisitedDoors.Load() }},
		{"isq_work_bytes_total", func(s *Series) int64 { return s.WorkBytes.Load() }},
		{"isq_peak_work_bytes", func(s *Series) int64 { return s.PeakWorkBytes.Load() }},
		{"isq_cache_hits_total", func(s *Series) int64 { return s.CacheHits.Load() }},
		{"isq_cache_misses_total", func(s *Series) int64 { return s.CacheMisses.Load() }},
	}
	get := func(k Key) *Series {
		r.mu.RLock()
		defer r.mu.RUnlock()
		return r.series[k]
	}
	for _, c := range counters {
		for _, k := range keys {
			s := get(k)
			if s == nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s{engine=%q,op=%q} %d\n", c.name, k.Engine, k.Op, c.get(s)); err != nil {
				return err
			}
		}
	}
	for _, k := range keys {
		s := get(k)
		if s == nil {
			continue
		}
		for _, qq := range quantiles {
			if _, err := fmt.Fprintf(w, "isq_query_latency_seconds{engine=%q,op=%q,quantile=%q} %g\n",
				k.Engine, k.Op, qq.label, s.Latency.Quantile(qq.q).Seconds()); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "isq_query_latency_seconds_sum{engine=%q,op=%q} %g\n",
			k.Engine, k.Op, float64(s.Latency.SumNs())/1e9); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "isq_query_latency_seconds_count{engine=%q,op=%q} %d\n",
			k.Engine, k.Op, s.Latency.Count()); err != nil {
			return err
		}
	}
	r.mu.RLock()
	gnames := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		gnames = append(gnames, name)
	}
	gfns := make([]func() float64, len(gnames))
	sort.Strings(gnames)
	for i, name := range gnames {
		gfns[i] = r.gauges[name]
	}
	r.mu.RUnlock()
	for i, name := range gnames {
		if _, err := fmt.Fprintf(w, "%s %g\n", name, gfns[i]()); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns a JSON-friendly view of the registry, used by the
// expvar export on the isqserve debug listener.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	out := make(map[string]any)
	for _, k := range r.Keys() {
		r.mu.RLock()
		s := r.series[k]
		r.mu.RUnlock()
		if s == nil {
			continue
		}
		ent := map[string]any{
			"count":           s.Count.Load(),
			"errors":          s.Errs.Load(),
			"in_flight":       s.InFlight.Load(),
			"visited_doors":   s.VisitedDoors.Load(),
			"work_bytes":      s.WorkBytes.Load(),
			"peak_work_bytes": s.PeakWorkBytes.Load(),
			"cache_hits":      s.CacheHits.Load(),
			"cache_misses":    s.CacheMisses.Load(),
			"latency_sum_ns":  s.Latency.SumNs(),
		}
		for _, qq := range quantiles {
			ent["latency_p"+qq.label] = s.Latency.Quantile(qq.q).String()
		}
		out[k.Engine+"/"+k.Op] = ent
	}
	r.mu.RLock()
	for name, fn := range r.gauges {
		out[name] = fn()
	}
	r.mu.RUnlock()
	return out
}
