package obs_test

// Registry/trace exactness under concurrent batch load. This file is part
// of the race-detector suite (make race runs ./internal/obs/ with -race):
// many workers hammer one registry and one shared trace, and every counter,
// histogram bucket, and span must still come out exact.

import (
	"context"
	"testing"

	"indoorsq/internal/exec"
	"indoorsq/internal/indoor"
	"indoorsq/internal/obs"
	"indoorsq/internal/query"
)

// stubEngine is a deterministic engine: every query records a fixed number
// of doors, bytes, cache probes, and one trace span, so the aggregate
// counters after a concurrent batch are exactly predictable.
type stubEngine struct{}

const (
	stubRangeDoors = 5
	stubRangeBytes = 100
	stubKNNDoors   = 3
	stubKNNBytes   = 200
	stubSPDDoors   = 7
	stubSPDBytes   = 300
)

func (stubEngine) Name() string                   { return "stub" }
func (stubEngine) SetObjects(objs []query.Object) {}
func (stubEngine) SizeBytes() int64               { return 0 }

func (stubEngine) Range(p indoor.Point, r float64, st *query.Stats) ([]int32, error) {
	defer st.Span(obs.StageExpand)()
	for i := 0; i < stubRangeDoors; i++ {
		st.Door()
	}
	st.Alloc(stubRangeBytes)
	st.Cache(true)
	return []int32{1}, nil
}

func (stubEngine) KNN(p indoor.Point, k int, st *query.Stats) ([]query.Neighbor, error) {
	defer st.Span(obs.StageProbe)()
	for i := 0; i < stubKNNDoors; i++ {
		st.Door()
	}
	st.Alloc(stubKNNBytes)
	st.Cache(false)
	return []query.Neighbor{{ID: 1, Dist: 1}}, nil
}

func (stubEngine) SPD(p, q indoor.Point, st *query.Stats) (query.Path, error) {
	defer st.Span(obs.StageRefine)()
	for i := 0; i < stubSPDDoors; i++ {
		st.Door()
	}
	st.Alloc(stubSPDBytes)
	st.Cache(true)
	st.Cache(false)
	return query.Path{Dist: 1}, nil
}

func TestRegistryExactUnderConcurrentPool(t *testing.T) {
	const perKind = 32
	reg := obs.NewRegistry()
	tr := obs.NewTrace()
	var ops []exec.Op
	for i := 0; i < perKind; i++ {
		ops = append(ops,
			exec.Op{Kind: exec.RangeQ, R: 10},
			exec.Op{Kind: exec.KNNQ, K: 3},
			exec.Op{Kind: exec.SPDQ})
	}
	p := exec.Pool{Workers: 8, Obs: reg}
	// The trace rides the batch context; Pool.Obs layers the registry on
	// top without displacing it.
	results, batch := p.RunCtx(obs.WithTrace(context.Background(), tr), stubEngine{}, ops)
	if batch.Errs != 0 {
		t.Fatalf("batch errs = %d", batch.Errs)
	}
	if len(results) != 3*perKind {
		t.Fatalf("results = %d", len(results))
	}

	for _, want := range []struct {
		op    string
		doors int64
		bytes int64
		hits  int64
		miss  int64
	}{
		{obs.OpRange, stubRangeDoors, stubRangeBytes, 1, 0},
		{obs.OpKNN, stubKNNDoors, stubKNNBytes, 0, 1},
		{obs.OpSPD, stubSPDDoors, stubSPDBytes, 1, 1},
	} {
		s := reg.Series("stub", want.op)
		if got := s.Count.Load(); got != perKind {
			t.Fatalf("%s count = %d, want %d", want.op, got, perKind)
		}
		if got := s.Errs.Load(); got != 0 {
			t.Fatalf("%s errs = %d", want.op, got)
		}
		if got := s.InFlight.Load(); got != 0 {
			t.Fatalf("%s in-flight = %d after batch drained", want.op, got)
		}
		if got := s.VisitedDoors.Load(); got != perKind*want.doors {
			t.Fatalf("%s visited doors = %d, want %d", want.op, got, perKind*want.doors)
		}
		if got := s.WorkBytes.Load(); got != perKind*want.bytes {
			t.Fatalf("%s work bytes = %d, want %d", want.op, got, perKind*want.bytes)
		}
		if got := s.PeakWorkBytes.Load(); got != want.bytes {
			t.Fatalf("%s peak work bytes = %d, want single-query %d", want.op, got, want.bytes)
		}
		if got := s.CacheHits.Load(); got != perKind*want.hits {
			t.Fatalf("%s cache hits = %d, want %d", want.op, got, perKind*want.hits)
		}
		if got := s.CacheMisses.Load(); got != perKind*want.miss {
			t.Fatalf("%s cache misses = %d, want %d", want.op, got, perKind*want.miss)
		}
		if got := s.Latency.Count(); got != perKind {
			t.Fatalf("%s latency count = %d, want %d", want.op, got, perKind)
		}
		var inBuckets int64
		for i := 0; i <= obs.NumBuckets; i++ {
			inBuckets += s.Latency.Bucket(i)
		}
		if inBuckets != perKind {
			t.Fatalf("%s histogram buckets sum to %d, want %d", want.op, inBuckets, perKind)
		}
	}

	// The shared trace saw every query and every span exactly once.
	if got := len(tr.Queries()); got != 3*perKind {
		t.Fatalf("trace queries = %d, want %d", got, 3*perKind)
	}
	if got := len(tr.Spans()); got != 3*perKind {
		t.Fatalf("trace spans = %d, want %d", got, 3*perKind)
	}
	perOp := map[string]int{}
	for _, q := range tr.Queries() {
		if q.Engine != "stub" || q.Err != "" {
			t.Fatalf("unexpected query summary %+v", q)
		}
		perOp[q.Op]++
	}
	for _, op := range []string{obs.OpRange, obs.OpKNN, obs.OpSPD} {
		if perOp[op] != perKind {
			t.Fatalf("trace %s summaries = %d, want %d", op, perOp[op], perKind)
		}
	}

	// The merged batch stats fold peaks with max: the batch-wide peak is
	// the largest single query, not a sum.
	if batch.Stats.PeakWorkBytes != stubSPDBytes {
		t.Fatalf("batch peak = %d, want %d", batch.Stats.PeakWorkBytes, stubSPDBytes)
	}
}
