package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// IntNumBuckets is the number of power-of-two buckets of an IntHistogram;
// one overflow bucket follows. Bucket 0 holds the value 0, bucket i >= 1
// holds values in [2^(i-1), 2^i), so the highest regular bucket tops out at
// 2^IntNumBuckets - 1 — far beyond any realistic queries-touched or
// batch-size count.
const IntNumBuckets = 24

// IntHistogram is a lock-free histogram over non-negative integer values
// (counts, sizes), the integer sibling of the duration Histogram. Values are
// binned into power-of-two buckets; quantiles report the upper bound of the
// bucket holding the rank, giving at worst 2x resolution like the duration
// histogram's microsecond buckets. All methods are safe for concurrent use.
type IntHistogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [IntNumBuckets + 1]atomic.Int64
}

// IntBucketBound returns the largest value bucket i can hold; the overflow
// bucket reports MaxInt64.
func IntBucketBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= IntNumBuckets {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

func intBucketFor(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v)) // = floor(log2 v) + 1
	if b > IntNumBuckets {
		return IntNumBuckets
	}
	return b
}

// Observe records one value. Negative values clamp to 0.
func (h *IntHistogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	maxStore(&h.max, v)
	h.buckets[intBucketFor(v)].Add(1)
}

// Count returns the number of observations.
func (h *IntHistogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *IntHistogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed value (0 before any observation).
func (h *IntHistogram) Max() int64 { return h.max.Load() }

// Mean returns the average observed value (0 before any observation).
func (h *IntHistogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound of the q-quantile (q in [0,1]): the bound
// of the bucket containing that rank, with the overflow bucket reporting the
// maximum observed value rather than a fictitious power of two. Returns 0
// when nothing has been observed. Counts are read without a global lock, so
// the answer is approximate under concurrent writes — same contract as the
// duration Histogram.
func (h *IntHistogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i <= IntNumBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == IntNumBuckets {
				return h.max.Load()
			}
			return IntBucketBound(i)
		}
	}
	return h.max.Load()
}
