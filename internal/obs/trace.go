// Per-query tracing: a Trace rides the context (next to query.Budget) and
// collects per-stage spans — host-partition lookup, index probe,
// door-graph expansion, result refinement — plus one summary per query
// completed under it. Distance-cache hits/misses are carried on the
// summary from the query's Stats counters rather than as spans, because a
// cache probe is far below timer resolution.
package obs

import (
	"context"
	"sync"
	"time"
)

// Stage labels one phase of query execution. The taxonomy is shared by all
// five engines; an engine skips stages it has no work for (e.g. IDModel has
// no index probe).
type Stage uint8

const (
	// StageHost is host-partition lookup: point → containing partition.
	StageHost Stage = iota
	// StageProbe is the index probe: consulting precomputed structures
	// (distance matrix rows, IP-tree leaf/non-leaf matrices, cached
	// door-pair distances) before or instead of graph expansion.
	StageProbe
	// StageExpand is door-graph expansion: Dijkstra-style traversal over
	// doors/partitions.
	StageExpand
	// StageRefine is result refinement: in-partition distance evaluation,
	// candidate filtering, and final sort.
	StageRefine
	numStages
)

var stageNames = [numStages]string{"host_lookup", "index_probe", "graph_expand", "refine"}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Span is one recorded stage interval, with offsets relative to the start
// of the trace.
type Span struct {
	Stage Stage
	Start time.Duration
	Dur   time.Duration
}

// QuerySummary is the per-query completion record appended to a trace.
type QuerySummary struct {
	Engine        string
	Op            string
	Err           string
	Dur           time.Duration
	VisitedDoors  int
	WorkBytes     int64
	PeakWorkBytes int64
	CacheHits     int64
	CacheMisses   int64
}

// Trace records spans and query summaries. Safe for concurrent use (a
// single trace can be shared across an exec.Pool batch); a nil *Trace is a
// valid disabled trace on every method.
type Trace struct {
	t0      time.Time
	mu      sync.Mutex
	spans   []Span
	queries []QuerySummary
}

// NewTrace returns a trace whose span offsets are relative to now.
func NewTrace() *Trace {
	return &Trace{t0: time.Now()}
}

// StartSpan opens a span for stage s and returns its end function. The end
// function is idempotent, so callers may both defer it and call it early
// on the happy path. On a nil trace both calls are no-ops.
func (t *Trace) StartSpan(s Stage) func() {
	if t == nil {
		return nopEnd
	}
	start := time.Since(t.t0)
	done := false
	return func() {
		if done {
			return
		}
		done = true
		sp := Span{Stage: s, Start: start, Dur: time.Since(t.t0) - start}
		t.mu.Lock()
		t.spans = append(t.spans, sp)
		t.mu.Unlock()
	}
}

var nopEnd = func() {}

// FinishQuery appends one completed-query summary.
func (t *Trace) FinishQuery(q QuerySummary) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.queries = append(t.queries, q)
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in recording order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Queries returns a copy of the recorded query summaries.
func (t *Trace) Queries() []QuerySummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]QuerySummary, len(t.queries))
	copy(out, t.queries)
	return out
}

// Bind is what rides the context: an optional registry and an optional
// trace. A query observed under a Bind emits a completion record into
// both (whichever are non-nil).
type Bind struct {
	Reg   *Registry
	Trace *Trace
}

type bindKey struct{}

// With attaches b to the context, replacing any previous binding.
func With(ctx context.Context, b Bind) context.Context {
	return context.WithValue(ctx, bindKey{}, b)
}

// WithRegistry binds r, keeping any trace already on the context.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	b, _ := From(ctx)
	b.Reg = r
	return With(ctx, b)
}

// WithTrace binds t, keeping any registry already on the context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	b, _ := From(ctx)
	b.Trace = t
	return With(ctx, b)
}

// From returns the binding on ctx, if any.
func From(ctx context.Context) (Bind, bool) {
	if ctx == nil {
		return Bind{}, false
	}
	b, ok := ctx.Value(bindKey{}).(Bind)
	return b, ok
}
