package obs

import (
	"sync"
	"testing"
)

func TestIntHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{{-3, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1 << 30, IntNumBuckets}}
	for _, c := range cases {
		if got := intBucketFor(c.v); got != c.want {
			t.Errorf("intBucketFor(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	if IntBucketBound(0) != 0 || IntBucketBound(1) != 1 || IntBucketBound(3) != 7 {
		t.Errorf("bucket bounds wrong: %d %d %d",
			IntBucketBound(0), IntBucketBound(1), IntBucketBound(3))
	}
}

func TestIntHistogramQuantile(t *testing.T) {
	var h IntHistogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 || h.Sum() != 5050 || h.Max() != 100 {
		t.Fatalf("count/sum/max = %d/%d/%d", h.Count(), h.Sum(), h.Max())
	}
	// The p50 rank (50) falls in bucket [32,64); the bound 63 must cover it.
	if q := h.Quantile(0.5); q < 50 || q > 63 {
		t.Fatalf("p50 = %d, want within [50,63]", q)
	}
	if q := h.Quantile(1); q < 100 {
		t.Fatalf("p100 = %d, want >= 100", q)
	}
	// Overflow bucket reports the observed max, not a power of two.
	h.Observe(1 << 40)
	if q := h.Quantile(1); q != 1<<40 {
		t.Fatalf("overflow quantile = %d, want %d", q, int64(1)<<40)
	}
}

func TestIntHistogramConcurrent(t *testing.T) {
	var h IntHistogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Observe(i % 37)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}
