// Package testspaces builds small indoor spaces with hand-computable
// distances, shared by the test suites of every model/index engine.
package testspaces

import (
	"fmt"
	"math/rand"

	"indoorsq/internal/geom"
	"indoorsq/internal/indoor"
)

// Strip is a single-floor space with a straight hallway and seven rooms:
//
//	y=10 +----+----+----+----+
//	     | R1 | R2 | R3 | R4 |
//	y=6  +-d1-+-d2-+-d3-+-d4-+
//	     |       Hall        |
//	y=4  +-d5-+-d6-+----d7---+
//	     | R5 | R6 |   R7    |
//	y=0  +----+-d8>+---------+
//	    x=0   5   10   15   20
//
// All doors are bidirectional except D8, which only allows R6 -> R7.
type Strip struct {
	Space                          *indoor.Space
	Hall                           indoor.PartitionID
	R1, R2, R3, R4, R5, R6, R7     indoor.PartitionID
	D1, D2, D3, D4, D5, D6, D7, D8 indoor.DoorID
}

// NewStrip builds the Strip fixture.
func NewStrip() *Strip {
	b := indoor.NewBuilder("strip", 1)
	f := &Strip{}
	rect := func(x0, y0, x1, y1 float64) geom.Polygon {
		return geom.RectPoly(geom.R(x0, y0, x1, y1))
	}
	f.Hall = b.AddHallway(0, rect(0, 4, 20, 6))
	f.R1 = b.AddRoom(0, rect(0, 6, 5, 10))
	f.R2 = b.AddRoom(0, rect(5, 6, 10, 10))
	f.R3 = b.AddRoom(0, rect(10, 6, 15, 10))
	f.R4 = b.AddRoom(0, rect(15, 6, 20, 10))
	f.R5 = b.AddRoom(0, rect(0, 0, 5, 4))
	f.R6 = b.AddRoom(0, rect(5, 0, 10, 4))
	f.R7 = b.AddRoom(0, rect(10, 0, 20, 4))

	f.D1 = b.AddDoor(geom.Pt(2.5, 6), 0)
	b.ConnectBoth(f.D1, f.Hall, f.R1)
	f.D2 = b.AddDoor(geom.Pt(7.5, 6), 0)
	b.ConnectBoth(f.D2, f.Hall, f.R2)
	f.D3 = b.AddDoor(geom.Pt(12.5, 6), 0)
	b.ConnectBoth(f.D3, f.Hall, f.R3)
	f.D4 = b.AddDoor(geom.Pt(17.5, 6), 0)
	b.ConnectBoth(f.D4, f.Hall, f.R4)
	f.D5 = b.AddDoor(geom.Pt(2.5, 4), 0)
	b.ConnectBoth(f.D5, f.Hall, f.R5)
	f.D6 = b.AddDoor(geom.Pt(7.5, 4), 0)
	b.ConnectBoth(f.D6, f.Hall, f.R6)
	f.D7 = b.AddDoor(geom.Pt(15, 4), 0)
	b.ConnectBoth(f.D7, f.Hall, f.R7)
	f.D8 = b.AddDoor(geom.Pt(10, 2), 0)
	b.ConnectOneWay(f.D8, f.R6, f.R7) // one-way, like d12 in Figure 1

	sp, err := b.Build()
	if err != nil {
		panic(err)
	}
	f.Space = sp
	return f
}

// TwoFloor is a two-floor space: each floor has a hallway with two rooms,
// and a 5 m staircase links the hallways.
//
//	floor 1:  R1a [0,5]x[6,10] -dA1-  Hall1 [0,20]x[4,6]  -dB1- R1b [15,5]...
//	stair:    [20,4]x[22,6], doors at (20,5) on both floors
//	floor 0:  symmetric
type TwoFloor struct {
	Space          *indoor.Space
	Hall0, Hall1   indoor.PartitionID
	RoomA0, RoomB0 indoor.PartitionID
	RoomA1, RoomB1 indoor.PartitionID
	Stair          indoor.PartitionID
	DA0, DB0       indoor.DoorID
	DA1, DB1       indoor.DoorID
	DS0, DS1       indoor.DoorID
}

// NewTwoFloor builds the TwoFloor fixture.
func NewTwoFloor() *TwoFloor {
	b := indoor.NewBuilder("twofloor", 2)
	f := &TwoFloor{}
	rect := func(x0, y0, x1, y1 float64) geom.Polygon {
		return geom.RectPoly(geom.R(x0, y0, x1, y1))
	}
	f.Hall0 = b.AddHallway(0, rect(0, 4, 20, 6))
	f.RoomA0 = b.AddRoom(0, rect(0, 6, 5, 10))
	f.RoomB0 = b.AddRoom(0, rect(15, 6, 20, 10))
	f.Hall1 = b.AddHallway(1, rect(0, 4, 20, 6))
	f.RoomA1 = b.AddRoom(1, rect(0, 6, 5, 10))
	f.RoomB1 = b.AddRoom(1, rect(15, 6, 20, 10))
	f.Stair = b.AddStair(0, 1, rect(20, 4, 22, 6), 5)

	f.DA0 = b.AddDoor(geom.Pt(2.5, 6), 0)
	b.ConnectBoth(f.DA0, f.Hall0, f.RoomA0)
	f.DB0 = b.AddDoor(geom.Pt(17.5, 6), 0)
	b.ConnectBoth(f.DB0, f.Hall0, f.RoomB0)
	f.DA1 = b.AddDoor(geom.Pt(2.5, 6), 1)
	b.ConnectBoth(f.DA1, f.Hall1, f.RoomA1)
	f.DB1 = b.AddDoor(geom.Pt(17.5, 6), 1)
	b.ConnectBoth(f.DB1, f.Hall1, f.RoomB1)
	f.DS0 = b.AddDoor(geom.Pt(20, 5), 0)
	b.ConnectBoth(f.DS0, f.Hall0, f.Stair)
	f.DS1 = b.AddDoor(geom.Pt(20, 5), 1)
	b.ConnectBoth(f.DS1, f.Hall1, f.Stair)

	sp, err := b.Build()
	if err != nil {
		panic(err)
	}
	f.Space = sp
	return f
}

// LHall is a single-floor space whose hallway is a concave L shape, so
// intra-hallway distances require the visibility graph.
//
//	y=8 +--+
//	    |R1|            R1 [0,8]x[2,10] above the vertical arm
//	y=8 +dv+--------+
//	    |  vertical |
//	    |  |        |
//	y=2 |  +--------+   L hallway: [0,0]x[2,8] + [0,0]x[10,2]
//	    |   horizontal  +dh+
//	y=0 +-----------+--------+
//	                 R2 [10,0]x[12,2] right of the horizontal arm
type LHall struct {
	Space  *indoor.Space
	Hall   indoor.PartitionID
	R1, R2 indoor.PartitionID
	DV, DH indoor.DoorID
}

// NewLHall builds the LHall fixture.
func NewLHall() *LHall {
	b := indoor.NewBuilder("lhall", 1)
	f := &LHall{}
	hall := geom.Polygon{
		geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 2),
		geom.Pt(2, 2), geom.Pt(2, 8), geom.Pt(0, 8),
	}
	f.Hall = b.AddHallway(0, hall)
	f.R1 = b.AddRoom(0, geom.RectPoly(geom.R(0, 8, 2, 10)))
	f.R2 = b.AddRoom(0, geom.RectPoly(geom.R(10, 0, 12, 2)))

	f.DV = b.AddDoor(geom.Pt(1, 8), 0)
	b.ConnectBoth(f.DV, f.Hall, f.R1)
	f.DH = b.AddDoor(geom.Pt(10, 1), 0)
	b.ConnectBoth(f.DH, f.Hall, f.R2)

	sp, err := b.Build()
	if err != nil {
		panic(err)
	}
	f.Space = sp
	return f
}

// RandomGrid builds a floors-story space. Each floor is a rows x cols grid
// of 10x10 rooms; neighboring rooms are connected by doors forming a random
// spanning tree plus extra random doors, so every space is connected and
// randomized but valid. A staircase at the east side links consecutive
// floors. With oneWay > 0, approximately that fraction of the extra
// (non-tree) doors are unidirectional.
func RandomGrid(seed int64, rows, cols, floors int, extraDoors int, oneWay float64) *indoor.Space {
	rng := rand.New(rand.NewSource(seed))
	b := indoor.NewBuilder(fmt.Sprintf("grid-%d-%dx%dx%d", seed, rows, cols, floors), floors)

	const cell = 10.0
	part := make([][][]indoor.PartitionID, floors)
	for fl := 0; fl < floors; fl++ {
		part[fl] = make([][]indoor.PartitionID, rows)
		for r := 0; r < rows; r++ {
			part[fl][r] = make([]indoor.PartitionID, cols)
			for c := 0; c < cols; c++ {
				poly := geom.RectPoly(geom.R(
					float64(c)*cell, float64(r)*cell,
					float64(c+1)*cell, float64(r+1)*cell))
				kind := indoor.Room
				if r == 0 {
					kind = indoor.Hallway
				}
				part[fl][r][c] = b.AddPartition(kind, int16(fl), poly)
			}
		}
	}

	doorAt := func(e gridEdge) geom.Point {
		// Midpoint of the shared wall.
		if e.r1 == e.r2 { // horizontal neighbors share a vertical wall
			x := float64(max(e.c1, e.c2)) * cell
			y := float64(e.r1)*cell + cell/2
			return geom.Pt(x, y)
		}
		x := float64(e.c1)*cell + cell/2
		y := float64(max(e.r1, e.r2)) * cell
		return geom.Pt(x, y)
	}

	for fl := 0; fl < floors; fl++ {
		// Spanning tree over the grid cells via randomized DFS.
		visited := make([][]bool, rows)
		for r := range visited {
			visited[r] = make([]bool, cols)
		}
		var treeEdges []gridEdge
		var dfs func(r, c int)
		dfs = func(r, c int) {
			visited[r][c] = true
			dirs := [][2]int{{0, 1}, {0, -1}, {1, 0}, {-1, 0}}
			rng.Shuffle(len(dirs), func(i, j int) { dirs[i], dirs[j] = dirs[j], dirs[i] })
			for _, d := range dirs {
				nr, nc := r+d[0], c+d[1]
				if nr < 0 || nr >= rows || nc < 0 || nc >= cols || visited[nr][nc] {
					continue
				}
				treeEdges = append(treeEdges, gridEdge{fl, r, c, nr, nc})
				dfs(nr, nc)
			}
		}
		dfs(0, 0)
		have := make(map[gridEdge]bool)
		for _, e := range treeEdges {
			d := b.AddDoor(doorAt(e), int16(fl))
			b.ConnectBoth(d, part[fl][e.r1][e.c1], part[fl][e.r2][e.c2])
			have[normEdge(e)] = true
		}
		// Extra doors, possibly unidirectional.
		for i := 0; i < extraDoors; i++ {
			r := rng.Intn(rows)
			c := rng.Intn(cols)
			dirs := [][2]int{{0, 1}, {1, 0}}
			d := dirs[rng.Intn(2)]
			nr, nc := r+d[0], c+d[1]
			if nr >= rows || nc >= cols {
				continue
			}
			e := gridEdge{fl, r, c, nr, nc}
			if have[normEdge(e)] {
				continue
			}
			have[normEdge(e)] = true
			// Offset door along the wall so it does not collide with a
			// tree door at the wall midpoint.
			p := doorAt(e)
			if r == nr {
				p.Y += cell / 4
			} else {
				p.X += cell / 4
			}
			id := b.AddDoor(p, int16(fl))
			if rng.Float64() < oneWay {
				id2 := part[fl][nr][nc]
				b.ConnectOneWay(id, part[fl][r][c], id2)
			} else {
				b.ConnectBoth(id, part[fl][r][c], part[fl][nr][nc])
			}
		}
	}

	// Staircases between consecutive floors at the east of row 0.
	for fl := 0; fl+1 < floors; fl++ {
		x0 := float64(cols) * cell
		poly := geom.RectPoly(geom.R(x0, 0, x0+4, cell))
		st := b.AddStair(int16(fl), int16(fl+1), poly, 6)
		d0 := b.AddDoor(geom.Pt(x0, cell/2), int16(fl))
		b.ConnectBoth(d0, part[fl][0][cols-1], st)
		d1 := b.AddDoor(geom.Pt(x0, cell/2), int16(fl+1))
		b.ConnectBoth(d1, part[fl+1][0][cols-1], st)
	}

	sp, err := b.Build()
	if err != nil {
		panic(err)
	}
	return sp
}

// gridEdge is a shared wall between two grid cells on one floor.
type gridEdge struct {
	fl, r1, c1, r2, c2 int
}

func normEdge(e gridEdge) gridEdge {
	if e.r2 < e.r1 || (e.r2 == e.r1 && e.c2 < e.c1) {
		e.r1, e.c1, e.r2, e.c2 = e.r2, e.c2, e.r1, e.c1
	}
	return e
}

// RandomGridConcave is RandomGrid with the bottom row and left column of
// each floor merged into a single L-shaped (concave) hallway, exercising
// visibility-graph distances in every engine. Extra doors connect rooms to
// their neighbors as in RandomGrid.
func RandomGridConcave(seed int64, rows, cols, floors int, extraDoors int) *indoor.Space {
	rng := rand.New(rand.NewSource(seed))
	b := indoor.NewBuilder(fmt.Sprintf("lgrid-%d-%dx%dx%d", seed, rows, cols, floors), floors)

	const cell = 10.0
	// Rooms occupy cells (r >= 1, c >= 1); the hallway is the L of row 0
	// plus column 0.
	part := make([][][]indoor.PartitionID, floors)
	halls := make([]indoor.PartitionID, floors)
	W := float64(cols) * cell
	H := float64(rows) * cell
	for fl := 0; fl < floors; fl++ {
		hallPoly := geom.Polygon{
			geom.Pt(0, 0), geom.Pt(W, 0), geom.Pt(W, cell),
			geom.Pt(cell, cell), geom.Pt(cell, H), geom.Pt(0, H),
		}
		halls[fl] = b.AddHallway(int16(fl), hallPoly)
		part[fl] = make([][]indoor.PartitionID, rows)
		part[fl][0] = nil
		for r := 1; r < rows; r++ {
			part[fl][r] = make([]indoor.PartitionID, cols)
			for c := 1; c < cols; c++ {
				poly := geom.RectPoly(geom.R(
					float64(c)*cell, float64(r)*cell,
					float64(c+1)*cell, float64(r+1)*cell))
				part[fl][r][c] = b.AddRoom(int16(fl), poly)
			}
		}
		// Every room in row 1 opens onto the hallway's horizontal arm;
		// every room in column 1 onto the vertical arm.
		for c := 1; c < cols; c++ {
			p := geom.Pt(float64(c)*cell+cell/2, cell)
			d := b.AddDoor(p, int16(fl))
			b.ConnectBoth(d, halls[fl], part[fl][1][c])
		}
		for r := 2; r < rows; r++ {
			p := geom.Pt(cell, float64(r)*cell+cell/2)
			d := b.AddDoor(p, int16(fl))
			b.ConnectBoth(d, halls[fl], part[fl][r][1])
		}
		// Room-to-room doors keep interior rooms reachable.
		for r := 1; r < rows; r++ {
			for c := 2; c < cols; c++ {
				if r == 1 && rng.Float64() < 0.3 {
					continue // row-1 rooms already reach the hallway
				}
				p := geom.Pt(float64(c)*cell, float64(r)*cell+cell/2)
				d := b.AddDoor(p, int16(fl))
				b.ConnectBoth(d, part[fl][r][c-1], part[fl][r][c])
			}
		}
		for r := 2; r < rows; r++ {
			for c := 1; c < cols; c++ {
				if c == 1 {
					continue // column-1 rooms already reach the hallway
				}
				if rng.Float64() < 0.5 {
					p := geom.Pt(float64(c)*cell+cell/2, float64(r)*cell)
					d := b.AddDoor(p, int16(fl))
					b.ConnectBoth(d, part[fl][r-1][c], part[fl][r][c])
				}
			}
		}
		_ = extraDoors
	}
	// Staircases off the hallway's east end.
	for fl := 0; fl+1 < floors; fl++ {
		poly := geom.RectPoly(geom.R(W, 0, W+4, cell))
		st := b.AddStair(int16(fl), int16(fl+1), poly, 6)
		d0 := b.AddDoor(geom.Pt(W, cell/2), int16(fl))
		b.ConnectBoth(d0, halls[fl], st)
		d1 := b.AddDoor(geom.Pt(W, cell/2), int16(fl+1))
		b.ConnectBoth(d1, halls[fl+1], st)
	}
	sp, err := b.Build()
	if err != nil {
		panic(err)
	}
	return sp
}
