// Package walker simulates pedestrians: agents pick random destinations,
// walk the engine-computed shortest indoor paths at a fixed speed, and emit
// timestamped position samples — a realistic update stream for the
// moving-object monitor and the trajectory analytics (and the kind of
// probabilistic positioning streams the paper's related work consumes).
//
// Agents walk the door polyline of each path; within decomposed (convex)
// partitions the straight legs stay indoors by construction. Venues with
// concave partitions are supported too: samples falling into a different
// partition than expected are resolved by host lookup.
package walker

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/workload"
)

// Sample is one emitted position observation.
type Sample struct {
	ID   int32
	Loc  indoor.Point
	Part indoor.PartitionID
	T    float64
}

// agent is one walking pedestrian.
type agent struct {
	id      int32
	waypts  []indoor.Point // current walk: position, door points, destination
	seg     int            // index of the current leg (waypts[seg] -> waypts[seg+1])
	offset  float64        // meters progressed along the current leg
	pos     indoor.Point
	arrived bool
}

// Sim drives a set of agents over one venue.
type Sim struct {
	sp    *indoor.Space
	eng   query.EngineCtx
	gen   *workload.Generator
	rng   *rand.Rand
	speed float64
	now   float64
	ags   []*agent
}

// New creates a simulation with the given number of agents walking at
// speed meters/second, routed by eng.
func New(sp *indoor.Space, eng query.Engine, agents int, speed float64, seed int64) (*Sim, error) {
	if agents <= 0 || speed <= 0 {
		return nil, fmt.Errorf("walker: need positive agents and speed")
	}
	s := &Sim{
		sp:    sp,
		eng:   query.AsCtx(eng),
		gen:   workload.New(sp, seed),
		rng:   rand.New(rand.NewSource(seed ^ 0x5deece66d)),
		speed: speed,
	}
	for i := 0; i < agents; i++ {
		a := &agent{id: int32(i), pos: s.gen.Point(), arrived: true}
		s.ags = append(s.ags, a)
	}
	return s, nil
}

// Now returns the simulation clock.
func (s *Sim) Now() float64 { return s.now }

// newWalk routes agent a to a fresh random destination. Interruptions
// (cancelled context, expired deadline, exhausted budget) surface
// immediately instead of being burned as failed attempts.
func (s *Sim) newWalk(ctx context.Context, a *agent) error {
	for try := 0; try < 8; try++ {
		dest := s.gen.Point()
		path, err := s.eng.SPDCtx(ctx, a.pos, dest, nil)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
				errors.Is(err, query.ErrBudgetExhausted) {
				return err
			}
			continue
		}
		a.waypts = a.waypts[:0]
		a.waypts = append(a.waypts, a.pos)
		for _, d := range path.Doors {
			a.waypts = append(a.waypts, s.sp.DoorPoint(d))
		}
		a.waypts = append(a.waypts, dest)
		a.seg = 0
		a.offset = 0
		a.arrived = false
		return nil
	}
	return fmt.Errorf("walker: agent %d cannot find a reachable destination", a.id)
}

// legLen returns the length of the agent's current leg, treating cross-floor
// staircase legs as the stair length.
func (s *Sim) legLen(a *agent) float64 {
	p, q := a.waypts[a.seg], a.waypts[a.seg+1]
	if p.Floor != q.Floor {
		// Staircase traversal: walk its fixed length.
		for _, vid := range s.sp.OnFloor(p.Floor) {
			v := s.sp.Partition(vid)
			if v.Kind == indoor.Staircase && v.Poly.Contains(p.XY()) && v.Poly.Contains(q.XY()) {
				return v.StairLength
			}
		}
		return p.XY().Dist(q.XY()) // fallback
	}
	return p.XY().Dist(q.XY())
}

// Step advances the simulation by dt seconds and returns one sample per
// agent. Agents reaching their destination immediately start a new walk.
func (s *Sim) Step(dt float64) ([]Sample, error) {
	return s.StepCtx(context.Background(), dt)
}

// StepCtx is Step bounded by ctx: the per-agent re-routing SPDQs run under
// it, and the context is polled between agents, so one tick over a large
// crowd can be cancelled or deadline-bounded mid-sweep.
func (s *Sim) StepCtx(ctx context.Context, dt float64) ([]Sample, error) {
	s.now += dt
	out := make([]Sample, 0, len(s.ags))
	for _, a := range s.ags {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if a.arrived {
			if err := s.newWalk(ctx, a); err != nil {
				return nil, err
			}
		}
		budget := s.speed * dt
		for budget > 0 && !a.arrived {
			leg := s.legLen(a)
			remain := leg - a.offset
			if budget < remain {
				a.offset += budget
				budget = 0
			} else {
				budget -= remain
				a.seg++
				a.offset = 0
				if a.seg >= len(a.waypts)-1 {
					a.arrived = true
				}
			}
		}
		a.pos = s.position(a)
		part, ok := s.sp.HostPartition(a.pos)
		if !ok {
			// Numerical edge (e.g. exactly on a wall): snap to the leg's
			// start waypoint, which is always a valid indoor point.
			a.pos = a.waypts[a.seg]
			part, ok = s.sp.HostPartition(a.pos)
			if !ok {
				return nil, fmt.Errorf("walker: agent %d off the map at %v", a.id, a.pos)
			}
		}
		out = append(out, Sample{ID: a.id, Loc: a.pos, Part: part, T: s.now})
	}
	return out, nil
}

// position interpolates the agent's current coordinates.
func (s *Sim) position(a *agent) indoor.Point {
	if a.arrived {
		return a.waypts[len(a.waypts)-1]
	}
	p, q := a.waypts[a.seg], a.waypts[a.seg+1]
	leg := s.legLen(a)
	if leg <= 0 {
		return q
	}
	t := a.offset / leg
	if p.Floor != q.Floor {
		// On the stairs: report the door being approached, switching floors
		// halfway.
		if t < 0.5 {
			return p
		}
		return q
	}
	return indoor.At(p.X+(q.X-p.X)*t, p.Y+(q.Y-p.Y)*t, p.Floor)
}
