package walker_test

import (
	"testing"

	"indoorsq/internal/idindex"
	"indoorsq/internal/indoor"
	"indoorsq/internal/moving"
	"indoorsq/internal/testspaces"
	"indoorsq/internal/trajectory"
	"indoorsq/internal/walker"
)

func newSim(t *testing.T, agents int, speed float64, seed int64) (*walker.Sim, *indoor.Space) {
	t.Helper()
	sp := testspaces.RandomGrid(3, 4, 5, 2, 8, 0)
	eng := idindex.New(sp)
	eng.SetObjects(nil)
	sim, err := walker.New(sp, eng, agents, speed, seed)
	if err != nil {
		t.Fatal(err)
	}
	return sim, sp
}

func TestSamplesStayIndoors(t *testing.T) {
	sim, sp := newSim(t, 10, 1.4, 7)
	for step := 0; step < 100; step++ {
		samples, err := sim.Step(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(samples) != 10 {
			t.Fatalf("step %d: %d samples", step, len(samples))
		}
		for _, smp := range samples {
			host, ok := sp.HostPartition(smp.Loc)
			if !ok {
				t.Fatalf("sample %v outside the space", smp)
			}
			// The reported partition must contain the location (staircases
			// may be reported as either endpoint's partition).
			if host != smp.Part && sp.Partition(smp.Part).Kind != indoor.Staircase {
				if !sp.Partition(smp.Part).Poly.Contains(smp.Loc.XY()) {
					t.Fatalf("sample %v reports partition %d not containing it", smp, smp.Part)
				}
			}
		}
	}
}

func TestSpeedBoundsDisplacement(t *testing.T) {
	sim, _ := newSim(t, 5, 2.0, 11)
	prev := map[int32]indoor.Point{}
	for step := 0; step < 50; step++ {
		samples, err := sim.Step(1)
		if err != nil {
			t.Fatal(err)
		}
		for _, smp := range samples {
			if p, ok := prev[smp.ID]; ok && p.Floor == smp.Loc.Floor {
				// Straight-line displacement cannot exceed distance walked
				// except when a new walk teleports nothing (it never does:
				// new walks start at the current position).
				if d := p.XY().Dist(smp.Loc.XY()); d > 2.0+1e-6 {
					t.Fatalf("agent %d jumped %gm in one second", smp.ID, d)
				}
			}
			prev[smp.ID] = smp.Loc
		}
	}
}

func TestAgentsActuallyMove(t *testing.T) {
	sim, _ := newSim(t, 3, 1.4, 5)
	first, err := sim.Step(1)
	if err != nil {
		t.Fatal(err)
	}
	moved := false
	for step := 0; step < 30 && !moved; step++ {
		samples, err := sim.Step(1)
		if err != nil {
			t.Fatal(err)
		}
		for i, smp := range samples {
			if smp.Loc != first[i].Loc {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("no agent moved in 30 seconds")
	}
	if sim.Now() <= 0 {
		t.Fatalf("clock = %g", sim.Now())
	}
}

func TestDeterministicBySeed(t *testing.T) {
	simA, _ := newSim(t, 4, 1.4, 42)
	simB, _ := newSim(t, 4, 1.4, 42)
	for step := 0; step < 20; step++ {
		a, err1 := simA.Step(1)
		b, err2 := simB.Step(1)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("step %d diverged: %v vs %v", step, a[i], b[i])
			}
		}
	}
}

// TestFeedsDownstream pipes walker samples into the continuous monitor and
// the trajectory log.
func TestFeedsDownstream(t *testing.T) {
	sim, sp := newSim(t, 8, 3.0, 13)
	mon := moving.NewMonitor(sp)
	if _, err := mon.Register(1, indoor.At(25, 5, 0), 30, 0); err != nil {
		t.Fatal(err)
	}
	var updates []trajectory.PositionUpdate
	events := 0
	for step := 0; step < 200; step++ {
		samples, err := sim.Step(1)
		if err != nil {
			t.Fatal(err)
		}
		for _, smp := range samples {
			evs, err := mon.Apply(moving.Update{ID: smp.ID, Loc: smp.Loc, Part: smp.Part, T: smp.T})
			if err != nil {
				t.Fatal(err)
			}
			events += len(evs)
			updates = append(updates, trajectory.PositionUpdate{Obj: smp.ID, Part: smp.Part, T: smp.T})
		}
	}
	if events == 0 {
		t.Fatal("200s of walking triggered no geofence events")
	}
	log, err := trajectory.FromUpdates(updates, 1)
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() < 8 {
		t.Fatalf("trajectory log has only %d stays", log.Len())
	}
	if top := log.TopVisited(0, 1e9, 3); len(top) == 0 || top[0].Visits < 2 {
		t.Fatalf("TopVisited = %v", top)
	}
}

func TestNewValidation(t *testing.T) {
	sp := testspaces.NewStrip().Space
	eng := idindex.New(sp)
	if _, err := walker.New(sp, eng, 0, 1, 1); err == nil {
		t.Fatal("zero agents must fail")
	}
	if _, err := walker.New(sp, eng, 1, 0, 1); err == nil {
		t.Fatal("zero speed must fail")
	}
}
