package walker_test

import (
	"context"
	"errors"
	"testing"
)

func TestStepCtxCancelled(t *testing.T) {
	sim, _ := newSim(t, 5, 1.4, 11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.StepCtx(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("StepCtx(cancelled) = %v, want Canceled", err)
	}
	// The sim stays usable after an interrupted tick.
	samples, err := sim.StepCtx(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 {
		t.Fatalf("recovered step: %d samples, want 5", len(samples))
	}
}
