package cindex

import (
	"fmt"

	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/reach"
	"indoorsq/internal/rtree"
	"indoorsq/internal/snapshot"
	"indoorsq/internal/traverse"
)

// AppendTo writes the geometric layer (R-tree, embedded in preorder) and the
// topological layer (per-partition link lists, flattened CSR-style) as the
// TagCIndex section. The object layer is runtime state and is not
// snapshotted; the reachability summary rides in its own section
// (TagReachSpace) shared with other engines.
func (ix *Index) AppendTo(w *snapshot.Writer) {
	sec := w.Begin(snapshot.TagCIndex)
	sec.Bool(ix.opt.NoDistCache)
	np := len(ix.links)
	off := make([]int32, np+1)
	var doors, tos []int32
	for vi, ls := range ix.links {
		off[vi+1] = off[vi] + int32(len(ls))
		for _, l := range ls {
			doors = append(doors, int32(l.D))
			tos = append(tos, int32(l.To))
		}
	}
	sec.U64(uint64(np))
	sec.I32s(off)
	sec.I32s(doors)
	sec.I32s(tos)
	ix.tree.AppendTo(sec)
}

// LoadFrom reconstructs the engine from the TagCIndex section over an
// already-loaded space, adopting rch (typically the snapshot's FromSpace
// summary) and rewiring the traversal graph — the only derivation left,
// a closure bundle costing nothing.
func LoadFrom(r *snapshot.Reader, sp *indoor.Space, rch *reach.Reach) (*Index, error) {
	sec, err := r.Section(snapshot.TagCIndex)
	if err != nil {
		return nil, err
	}
	ix := &Index{sp: sp}
	ix.opt.NoDistCache = sec.Bool()
	np := sec.Int()
	off := sec.I32s()
	doors := sec.I32s()
	tos := sec.I32s()
	if err := sec.Err(); err != nil {
		return nil, err
	}
	if np != sp.NumPartitions() || len(off) != np+1 ||
		int(off[np]) != len(doors) || len(doors) != len(tos) {
		return nil, fmt.Errorf("cindex: snapshot links inconsistent with %d partitions", sp.NumPartitions())
	}
	ix.links = make([][]Link, np)
	for vi := 0; vi < np; vi++ {
		lo, hi := off[vi], off[vi+1]
		if lo > hi || int(hi) > len(doors) {
			return nil, fmt.Errorf("cindex: snapshot link offsets corrupt at partition %d", vi)
		}
		if lo == hi {
			continue
		}
		ls := make([]Link, hi-lo)
		for j := range ls {
			ls[j] = Link{D: indoor.DoorID(doors[int(lo)+j]), To: indoor.PartitionID(tos[int(lo)+j])}
		}
		ix.links[vi] = ls
		ix.size += int64(len(ls)) * 8
	}
	ix.tree, err = rtree.LoadTree(sec)
	if err != nil {
		return nil, fmt.Errorf("cindex: %w", err)
	}
	if ix.tree.Len() != np {
		return nil, fmt.Errorf("cindex: snapshot R-tree holds %d items, want %d", ix.tree.Len(), np)
	}
	ix.reach = rch
	ix.size += ix.tree.SizeBytes() + sp.BaseSizeBytes() + sp.GeomSizeBytes() + rch.SizeBytes()
	ix.g = traverse.New(sp, ix.Host, ix.d2d, true).WithReach(rch)
	return ix, nil
}

// ensure the loaded engine still satisfies the engine contract at compile
// time (LoadFrom returns *Index, which implements query.Engine).
var _ query.Engine = (*Index)(nil)
