// Package cindex implements CINDEX, the composite indoor index of Xie et al.
// (ICDE 2013; Sec. 3.3 of the paper): a layered structure with
//
//   - a geometric layer: an R-tree over partition MBRs (fan-out 20, standing
//     in for the R*-tree as the paper's own experiments do, Sec. 5.3);
//   - a topological layer: inter-partition links (dk, ->vj) attached to each
//     partition, forming an implicit door graph;
//   - an object layer: per-partition object buckets plus an object hashtable.
//
// CINDEX precomputes no indoor distances. Query initialization locates the
// host partition through the R-tree; expansion runs Dijkstra over the
// topological links, computing door-to-door distances on the fly, with an
// additional Euclidean lower-bound check before bucket scans (which, as the
// paper observes, rarely prunes under indoor topology).
package cindex

import (
	"indoorsq/internal/geom"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/reach"
	"indoorsq/internal/rtree"
	"indoorsq/internal/traverse"
)

// Link is one topological-layer record: partition vi connects through door D
// into partition To.
type Link struct {
	D  indoor.DoorID
	To indoor.PartitionID
}

// Options configures optional CINDEX behaviours.
type Options struct {
	// NoDistCache computes every door-to-door distance on the fly instead
	// of going through the space's lazy door-pair cache — the strictest
	// reading of the paper's "no precomputation" semantics, and the
	// baseline side of cache-effectiveness benchmarks. Results are
	// identical either way; only cost and query.Stats cache counters
	// differ.
	NoDistCache bool
}

// Index is the CINDEX engine.
type Index struct {
	sp    *indoor.Space
	tree  *rtree.Tree
	links [][]Link // per partition
	store *query.ObjectStore
	g     *traverse.Graph
	reach *reach.Reach
	size  int64
	opt   Options
}

// New builds the CINDEX over a space with the default options (door-pair
// distances memoized through the space's lazy cache).
func New(sp *indoor.Space) *Index { return NewOpts(sp, Options{}) }

// NewOpts builds the CINDEX over a space with explicit options.
func NewOpts(sp *indoor.Space, opt Options) *Index {
	ix := &Index{
		sp:    sp,
		tree:  rtree.New(rtree.DefaultFanout),
		links: make([][]Link, sp.NumPartitions()),
		opt:   opt,
	}
	for vi := range sp.Partitions() {
		v := indoor.PartitionID(vi)
		part := sp.Partition(v)
		ix.tree.Insert(part.MBR, int32(vi))
		for _, d := range part.Leave {
			for _, to := range sp.Door(d).Enterable {
				if to != v {
					ix.links[vi] = append(ix.links[vi], Link{D: d, To: to})
				}
			}
		}
		ix.size += int64(len(ix.links[vi])) * 8
	}
	ix.reach = reach.FromSpace(sp, nil, 0)
	ix.size += ix.tree.SizeBytes() + sp.BaseSizeBytes() + sp.GeomSizeBytes() + ix.reach.SizeBytes()
	ix.g = traverse.New(sp, ix.Host, ix.d2d, true).WithReach(ix.reach)
	return ix
}

// Space returns the index's underlying indoor space.
func (ix *Index) Space() *indoor.Space { return ix.sp }

// Reach returns the index's reachability summary (nil after SetReach(nil)).
func (ix *Index) Reach() *reach.Reach { return ix.reach }

// SetReach swaps the reachability summary used to prune query processing —
// an ablation knob (nil disables pruning) also used by the temporal engine,
// which supplies per-hour summaries built under the schedule's door filter.
// Results are bit-identical with or without a summary.
func (ix *Index) SetReach(r *reach.Reach) {
	ix.reach = r
	ix.g = ix.g.WithReach(r)
}

// WithOpenReach is WithOpen with a reachability summary matched to the
// filter: the view prunes with r (which must be conservative for the
// filtered graph) instead of the index's full-graph summary.
func (ix *Index) WithOpenReach(open func(indoor.DoorID) bool, r *reach.Reach) query.Engine {
	return &openView{Index: ix, g: ix.g.WithOpen(open).WithReach(r)}
}

// Host locates the partition containing p using the geometric layer.
func (ix *Index) Host(p indoor.Point) (indoor.PartitionID, bool) {
	cands := ix.tree.SearchPoint(p.XY(), nil)
	host := indoor.NoPartition
	for _, c := range cands {
		v := indoor.PartitionID(c)
		part := ix.sp.Partition(v)
		if p.Floor < part.Floor || p.Floor > part.TopFloor {
			continue
		}
		if !part.Poly.Contains(p.XY()) {
			continue
		}
		if part.Kind != indoor.Staircase {
			return v, true
		}
		if host == indoor.NoPartition {
			host = v
		}
	}
	return host, host != indoor.NoPartition
}

// d2d resolves the door-to-door distance within v, honouring door direction
// through the link structure: on the fly under NoDistCache, otherwise
// memoized through the space's lazy door-pair cache with hit/miss
// accounting on st.
func (ix *Index) d2d(v indoor.PartitionID, di, dj indoor.DoorID, st *query.Stats) float64 {
	if ix.opt.NoDistCache {
		return ix.sp.WithinDoors(v, di, dj)
	}
	d, hit := ix.sp.WithinDoorsCached(v, di, dj)
	st.Cache(hit)
	return d
}

// Links returns the topological-layer records of partition v.
func (ix *Index) Links(v indoor.PartitionID) []Link { return ix.links[v] }

// Tree exposes the geometric layer (used by extensions and tests).
func (ix *Index) Tree() *rtree.Tree { return ix.tree }

// Name implements query.Engine.
func (ix *Index) Name() string { return "CIndex" }

// SetObjects implements query.Engine (the object layer).
func (ix *Index) SetObjects(objs []query.Object) {
	ix.store = query.NewObjectStore(ix.sp, objs)
}

// Range implements query.Engine.
func (ix *Index) Range(p indoor.Point, r float64, st *query.Stats) ([]int32, error) {
	return ix.g.Range(ix.store, p, r, st)
}

// KNN implements query.Engine.
func (ix *Index) KNN(p indoor.Point, k int, st *query.Stats) ([]query.Neighbor, error) {
	return ix.g.KNN(ix.store, p, k, st)
}

// SPD implements query.Engine.
func (ix *Index) SPD(p, q indoor.Point, st *query.Stats) (query.Path, error) {
	return ix.g.SPD(p, q, st)
}

// SizeBytes implements query.Engine.
func (ix *Index) SizeBytes() int64 { return ix.size }

// RangeCandidates returns the partitions whose MBRs intersect the Euclidean
// disk of radius r around p, a geometric-layer primitive used by extensions
// (e.g. uncertain-location queries, Sec. 7).
func (ix *Index) RangeCandidates(p indoor.Point, r float64) []indoor.PartitionID {
	box := geom.R(p.X-r, p.Y-r, p.X+r, p.Y+r)
	refs := ix.tree.Search(box, nil)
	out := make([]indoor.PartitionID, 0, len(refs))
	for _, c := range refs {
		v := indoor.PartitionID(c)
		part := ix.sp.Partition(v)
		if p.Floor >= part.Floor && p.Floor <= part.TopFloor {
			out = append(out, v)
		}
	}
	return out
}

// openView is a temporal view of the index: the topological layer is
// filtered by door open state at query time.
type openView struct {
	*Index
	g *traverse.Graph
}

// WithOpen returns a view of the index that only traverses doors for which
// open reports true — the temporal-variation extension of Sec. 7, realized
// through the dynamically-updatable topological layer.
func (ix *Index) WithOpen(open func(indoor.DoorID) bool) query.Engine {
	return &openView{Index: ix, g: ix.g.WithOpen(open)}
}

// Range implements query.Engine under the door filter.
func (v *openView) Range(p indoor.Point, r float64, st *query.Stats) ([]int32, error) {
	return v.g.Range(v.Index.store, p, r, st)
}

// KNN implements query.Engine under the door filter.
func (v *openView) KNN(p indoor.Point, k int, st *query.Stats) ([]query.Neighbor, error) {
	return v.g.KNN(v.Index.store, p, k, st)
}

// SPD implements query.Engine under the door filter.
func (v *openView) SPD(p, q indoor.Point, st *query.Stats) (query.Path, error) {
	return v.g.SPD(p, q, st)
}

// ensureStore lazily creates an empty object store.
func (ix *Index) ensureStore() *query.ObjectStore {
	if ix.store == nil {
		ix.store = query.NewObjectStore(ix.sp, nil)
	}
	return ix.store
}

// InsertObject implements query.ObjectUpdater.
func (ix *Index) InsertObject(o query.Object) bool {
	return ix.ensureStore().Insert(ix.sp, o)
}

// DeleteObject implements query.ObjectUpdater.
func (ix *Index) DeleteObject(id int32) bool {
	return ix.ensureStore().Delete(id)
}

// MoveObject implements query.ObjectUpdater.
func (ix *Index) MoveObject(id int32, loc indoor.Point, part indoor.PartitionID) bool {
	return ix.ensureStore().Move(ix.sp, id, loc, part)
}

// SetEuclidPrune toggles the geometric-layer Euclidean lower-bound check
// before object bucket scans — an ablation knob for the design choice the
// paper evaluates (Sec. 6.2 B5 observes it rarely prunes under indoor
// topology).
func (ix *Index) SetEuclidPrune(on bool) {
	ix.g = traverse.New(ix.sp, ix.Host, ix.d2d, on).WithReach(ix.reach)
}
