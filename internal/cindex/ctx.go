package cindex

import (
	"context"

	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
)

// RangeCtx implements query.EngineCtx: Range bounded by ctx and any
// attached query.Budget. Cancellation rides the Stats accumulator into the
// shared door-graph traversal, which probes it every
// query.CheckInterval door expansions.
func (ix *Index) RangeCtx(ctx context.Context, p indoor.Point, r float64, st *query.Stats) ([]int32, error) {
	st = query.Track(ctx, st)
	if err := st.Interrupted(); err != nil {
		return nil, err
	}
	return ix.Range(p, r, st)
}

// KNNCtx implements query.EngineCtx.
func (ix *Index) KNNCtx(ctx context.Context, p indoor.Point, k int, st *query.Stats) ([]query.Neighbor, error) {
	st = query.Track(ctx, st)
	if err := st.Interrupted(); err != nil {
		return nil, err
	}
	return ix.KNN(p, k, st)
}

// SPDCtx implements query.EngineCtx.
func (ix *Index) SPDCtx(ctx context.Context, p, q indoor.Point, st *query.Stats) (query.Path, error) {
	st = query.Track(ctx, st)
	if err := st.Interrupted(); err != nil {
		return query.Path{}, err
	}
	return ix.SPD(p, q, st)
}

// RangeCtx implements query.EngineCtx for the temporal open-door view.
func (v *openView) RangeCtx(ctx context.Context, p indoor.Point, r float64, st *query.Stats) ([]int32, error) {
	st = query.Track(ctx, st)
	if err := st.Interrupted(); err != nil {
		return nil, err
	}
	return v.Range(p, r, st)
}

// KNNCtx implements query.EngineCtx for the temporal open-door view.
func (v *openView) KNNCtx(ctx context.Context, p indoor.Point, k int, st *query.Stats) ([]query.Neighbor, error) {
	st = query.Track(ctx, st)
	if err := st.Interrupted(); err != nil {
		return nil, err
	}
	return v.KNN(p, k, st)
}

// SPDCtx implements query.EngineCtx for the temporal open-door view.
func (v *openView) SPDCtx(ctx context.Context, p, q indoor.Point, st *query.Stats) (query.Path, error) {
	st = query.Track(ctx, st)
	if err := st.Interrupted(); err != nil {
		return query.Path{}, err
	}
	return v.SPD(p, q, st)
}
