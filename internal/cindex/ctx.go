package cindex

import (
	"context"

	"indoorsq/internal/indoor"
	"indoorsq/internal/obs"
	"indoorsq/internal/query"
)

// RangeCtx implements query.EngineCtx: Range bounded by ctx and any
// attached query.Budget, observed by any attached obs binding (registry
// series + trace summary on completion). Cancellation rides the Stats
// accumulator into the shared door-graph traversal, which probes it every
// query.CheckInterval door expansions.
func (ix *Index) RangeCtx(ctx context.Context, p indoor.Point, r float64, st *query.Stats) (ids []int32, err error) {
	st, done := query.Begin(ctx, ix.Name(), obs.OpRange, st)
	if done != nil {
		defer func() { done(err) }()
	}
	if err = st.Interrupted(); err != nil {
		return nil, err
	}
	ids, err = ix.Range(p, r, st)
	return ids, err
}

// KNNCtx implements query.EngineCtx.
func (ix *Index) KNNCtx(ctx context.Context, p indoor.Point, k int, st *query.Stats) (nn []query.Neighbor, err error) {
	st, done := query.Begin(ctx, ix.Name(), obs.OpKNN, st)
	if done != nil {
		defer func() { done(err) }()
	}
	if err = st.Interrupted(); err != nil {
		return nil, err
	}
	nn, err = ix.KNN(p, k, st)
	return nn, err
}

// SPDCtx implements query.EngineCtx.
func (ix *Index) SPDCtx(ctx context.Context, p, q indoor.Point, st *query.Stats) (path query.Path, err error) {
	st, done := query.Begin(ctx, ix.Name(), obs.OpSPD, st)
	if done != nil {
		defer func() { done(err) }()
	}
	if err = st.Interrupted(); err != nil {
		return query.Path{}, err
	}
	path, err = ix.SPD(p, q, st)
	return path, err
}

// RangeCtx implements query.EngineCtx for the temporal open-door view.
func (v *openView) RangeCtx(ctx context.Context, p indoor.Point, r float64, st *query.Stats) (ids []int32, err error) {
	st, done := query.Begin(ctx, v.Name(), obs.OpRange, st)
	if done != nil {
		defer func() { done(err) }()
	}
	if err = st.Interrupted(); err != nil {
		return nil, err
	}
	ids, err = v.Range(p, r, st)
	return ids, err
}

// KNNCtx implements query.EngineCtx for the temporal open-door view.
func (v *openView) KNNCtx(ctx context.Context, p indoor.Point, k int, st *query.Stats) (nn []query.Neighbor, err error) {
	st, done := query.Begin(ctx, v.Name(), obs.OpKNN, st)
	if done != nil {
		defer func() { done(err) }()
	}
	if err = st.Interrupted(); err != nil {
		return nil, err
	}
	nn, err = v.KNN(p, k, st)
	return nn, err
}

// SPDCtx implements query.EngineCtx for the temporal open-door view.
func (v *openView) SPDCtx(ctx context.Context, p, q indoor.Point, st *query.Stats) (path query.Path, err error) {
	st, done := query.Begin(ctx, v.Name(), obs.OpSPD, st)
	if done != nil {
		defer func() { done(err) }()
	}
	if err = st.Interrupted(); err != nil {
		return query.Path{}, err
	}
	path, err = v.SPD(p, q, st)
	return path, err
}
