package cindex_test

import (
	"testing"

	"indoorsq/internal/cindex"
	"indoorsq/internal/enginetest"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/testspaces"
)

func TestConformance(t *testing.T) {
	enginetest.Run(t, func(sp *indoor.Space) query.Engine {
		return cindex.New(sp)
	})
}

func TestHostViaRTree(t *testing.T) {
	f := testspaces.NewStrip()
	ix := cindex.New(f.Space)
	cases := []struct {
		p    indoor.Point
		want indoor.PartitionID
	}{
		{indoor.At(2, 8, 0), f.R1},
		{indoor.At(10, 5, 0), f.Hall},
		{indoor.At(15, 2, 0), f.R7},
	}
	for _, c := range cases {
		got, ok := ix.Host(c.p)
		if !ok || got != c.want {
			t.Errorf("Host(%v) = %v,%v, want %v", c.p, got, ok, c.want)
		}
	}
	if _, ok := ix.Host(indoor.At(-3, 0, 0)); ok {
		t.Error("point outside should have no host")
	}
	// R-tree host agrees with sequential scan on many points.
	for _, sp := range []*indoor.Space{f.Space, testspaces.RandomGrid(2, 4, 5, 2, 6, 0.2)} {
		ix := cindex.New(sp)
		for x := 0.5; x < 60; x += 3.7 {
			for y := 0.5; y < 40; y += 2.9 {
				p := indoor.At(x, y, 0)
				g1, ok1 := ix.Host(p)
				g2, ok2 := sp.HostPartition(p)
				if ok1 != ok2 || (ok1 && g1 != g2) {
					t.Fatalf("Host mismatch at %v: rtree=%v,%v scan=%v,%v", p, g1, ok1, g2, ok2)
				}
			}
		}
	}
}

func TestTopologicalLinks(t *testing.T) {
	f := testspaces.NewStrip()
	ix := cindex.New(f.Space)
	// R6 leaves through D6 (to hall) and D8 (to R7): two link records.
	links := ix.Links(f.R6)
	if len(links) != 2 {
		t.Fatalf("links(R6) = %v, want 2 records", links)
	}
	// R7 must not have a link through the one-way D8.
	for _, l := range ix.Links(f.R7) {
		if l.D == f.D8 {
			t.Fatalf("R7 has a link through one-way D8: %v", l)
		}
	}
	// Hall has 7 doors, each leading to one room.
	if len(ix.Links(f.Hall)) != 7 {
		t.Fatalf("links(Hall) = %d, want 7", len(ix.Links(f.Hall)))
	}
}

func TestRangeCandidates(t *testing.T) {
	f := testspaces.NewStrip()
	ix := cindex.New(f.Space)
	got := ix.RangeCandidates(indoor.At(2.5, 8, 0), 1)
	// Small disk: only R1.
	if len(got) != 1 || got[0] != f.R1 {
		t.Fatalf("RangeCandidates small = %v", got)
	}
	all := ix.RangeCandidates(indoor.At(10, 5, 0), 100)
	if len(all) != f.Space.NumPartitions() {
		t.Fatalf("RangeCandidates large = %d, want all %d", len(all), f.Space.NumPartitions())
	}
}

func TestTreeExposed(t *testing.T) {
	f := testspaces.NewStrip()
	ix := cindex.New(f.Space)
	if ix.Tree().Len() != f.Space.NumPartitions() {
		t.Fatalf("tree holds %d entries, want %d", ix.Tree().Len(), f.Space.NumPartitions())
	}
}
