// Package decomp decomposes irregular (concave or imbalanced) rectilinear
// partitions into regular rectangular pieces connected by virtual doors,
// implementing the decomposition step of CINDEX and of the default datasets
// (Sec. 3.3 and footnote 3 of the paper). A virtual door marks the open
// segment between two adjacent pieces and is represented by its center point.
package decomp

import (
	"fmt"
	"math"
	"sort"

	"indoorsq/internal/geom"
)

// Junction is the adjacency between two pieces: an open segment on their
// shared boundary, represented by its center point P (the virtual door).
type Junction struct {
	A, B int // indexes into Result.Pieces
	P    geom.Point
}

// Result is a decomposition: rectangular pieces plus the virtual doors
// between adjacent pieces.
type Result struct {
	Pieces    []geom.Rect
	Junctions []Junction
}

// Decompose splits a rectilinear polygon into rectangles using a vertical
// slab sweep: the polygon is cut at every distinct vertex x-coordinate, and
// each slab contributes one rectangle per covered y-interval. Pieces in
// adjacent slabs that share a boundary segment of positive length are joined
// by a virtual door at the segment midpoint.
func Decompose(poly geom.Polygon) (Result, error) {
	if err := poly.Validate(); err != nil {
		return Result{}, err
	}
	if !poly.IsRectilinear() {
		return Result{}, fmt.Errorf("decomp: polygon is not rectilinear")
	}

	xs := distinctXs(poly)
	var res Result
	// prev holds the piece indexes of the previous slab for adjacency checks.
	var prev []int
	for i := 0; i+1 < len(xs); i++ {
		x0, x1 := xs[i], xs[i+1]
		ys := slabIntervals(poly, (x0+x1)/2)
		var cur []int
		for j := 0; j+1 < len(ys); j += 2 {
			idx := len(res.Pieces)
			res.Pieces = append(res.Pieces, geom.R(x0, ys[j], x1, ys[j+1]))
			cur = append(cur, idx)
		}
		for _, a := range prev {
			for _, b := range cur {
				ra, rb := res.Pieces[a], res.Pieces[b]
				lo := math.Max(ra.MinY, rb.MinY)
				hi := math.Min(ra.MaxY, rb.MaxY)
				if hi-lo > geom.Eps {
					res.Junctions = append(res.Junctions, Junction{
						A: a, B: b,
						P: geom.Pt(ra.MaxX, (lo+hi)/2),
					})
				}
			}
		}
		prev = cur
	}
	if len(res.Pieces) == 0 {
		return Result{}, fmt.Errorf("decomp: polygon produced no pieces")
	}
	return res, nil
}

// distinctXs returns the sorted distinct x-coordinates of poly's vertices.
func distinctXs(poly geom.Polygon) []float64 {
	xs := make([]float64, 0, len(poly))
	for _, v := range poly {
		xs = append(xs, v.X)
	}
	sort.Float64s(xs)
	out := xs[:0]
	for _, x := range xs {
		if len(out) == 0 || x-out[len(out)-1] > geom.Eps {
			out = append(out, x)
		}
	}
	return out
}

// slabIntervals returns the sorted y-coordinates where the vertical line at
// x crosses horizontal edges of poly; consecutive pairs bound the covered
// intervals.
func slabIntervals(poly geom.Polygon, x float64) []float64 {
	var ys []float64
	n := len(poly)
	for i := 0; i < n; i++ {
		a, b := poly[i], poly[(i+1)%n]
		if math.Abs(a.Y-b.Y) > geom.Eps {
			continue // vertical edge
		}
		lo, hi := math.Min(a.X, b.X), math.Max(a.X, b.X)
		if x > lo && x < hi {
			ys = append(ys, a.Y)
		}
	}
	sort.Float64s(ys)
	return ys
}

// SplitLong refines a decomposition by cutting every piece longer than
// maxLen (in either dimension) into equal slices, inserting virtual doors on
// the cut lines. It is used to build the finer-grained dataset variants
// (MZB-delta in Table 4).
func SplitLong(res Result, maxLen float64) Result {
	out := Result{}
	// mapping from old piece index to its new slice indexes, in order.
	slices := make([][]int, len(res.Pieces))
	for i, r := range res.Pieces {
		nx := int(math.Ceil(r.Width() / maxLen))
		ny := int(math.Ceil(r.Height() / maxLen))
		if nx < 1 {
			nx = 1
		}
		if ny < 1 {
			ny = 1
		}
		// Slice along the longer dimension only, keeping pieces rectangular
		// strips; slicing both ways would need a grid of junctions.
		if r.Width() >= r.Height() {
			ny = 1
		} else {
			nx = 1
		}
		var ids []int
		for ix := 0; ix < nx; ix++ {
			for iy := 0; iy < ny; iy++ {
				x0 := r.MinX + r.Width()*float64(ix)/float64(nx)
				x1 := r.MinX + r.Width()*float64(ix+1)/float64(nx)
				y0 := r.MinY + r.Height()*float64(iy)/float64(ny)
				y1 := r.MinY + r.Height()*float64(iy+1)/float64(ny)
				ids = append(ids, len(out.Pieces))
				out.Pieces = append(out.Pieces, geom.R(x0, y0, x1, y1))
			}
		}
		// Junctions between consecutive slices of the same piece.
		for k := 0; k+1 < len(ids); k++ {
			ra, rb := out.Pieces[ids[k]], out.Pieces[ids[k+1]]
			var p geom.Point
			if r.Width() >= r.Height() {
				p = geom.Pt(ra.MaxX, (ra.MinY+ra.MaxY)/2)
			} else {
				p = geom.Pt((ra.MinX+ra.MaxX)/2, ra.MaxY)
			}
			out.Junctions = append(out.Junctions, Junction{A: ids[k], B: ids[k+1], P: p})
			_ = rb
		}
		slices[i] = ids
	}
	// Re-link original junctions to the nearest new slices.
	for _, j := range res.Junctions {
		a := nearestSlice(out.Pieces, slices[j.A], j.P)
		b := nearestSlice(out.Pieces, slices[j.B], j.P)
		out.Junctions = append(out.Junctions, Junction{A: a, B: b, P: j.P})
	}
	return out
}

// nearestSlice returns the id among ids whose rectangle contains (or is
// nearest to) p.
func nearestSlice(pieces []geom.Rect, ids []int, p geom.Point) int {
	best, bestD := ids[0], math.Inf(1)
	for _, id := range ids {
		if d := pieces[id].MinDist(p); d < bestD {
			best, bestD = id, d
		}
	}
	return best
}

// Union returns the total area of the decomposition's pieces. Pieces never
// overlap, so this equals the polygon area; tests use it as an invariant.
func (r Result) Union() float64 {
	var a float64
	for _, p := range r.Pieces {
		a += p.Area()
	}
	return a
}

// Connected reports whether the piece adjacency graph is connected, another
// test invariant: decomposition must preserve reachability.
func (r Result) Connected() bool {
	if len(r.Pieces) == 0 {
		return false
	}
	adj := make([][]int, len(r.Pieces))
	for _, j := range r.Junctions {
		adj[j.A] = append(adj[j.A], j.B)
		adj[j.B] = append(adj[j.B], j.A)
	}
	seen := make([]bool, len(r.Pieces))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == len(r.Pieces)
}
