package decomp

import (
	"math"
	"testing"

	"indoorsq/internal/geom"
)

func lShape() geom.Polygon {
	return geom.Polygon{
		geom.Pt(0, 0), geom.Pt(6, 0), geom.Pt(6, 2),
		geom.Pt(2, 2), geom.Pt(2, 4), geom.Pt(0, 4),
	}
}

func comb() geom.Polygon {
	// Main corridor [0,12]x[0,2] with two teeth going up.
	return geom.Polygon{
		geom.Pt(0, 0), geom.Pt(12, 0), geom.Pt(12, 2), geom.Pt(9, 2),
		geom.Pt(9, 6), geom.Pt(7, 6), geom.Pt(7, 2), geom.Pt(5, 2),
		geom.Pt(5, 6), geom.Pt(3, 6), geom.Pt(3, 2), geom.Pt(0, 2),
	}
}

func TestDecomposeRectangle(t *testing.T) {
	res, err := Decompose(geom.RectPoly(geom.R(0, 0, 5, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pieces) != 1 || len(res.Junctions) != 0 {
		t.Fatalf("rectangle decomposed into %d pieces, %d junctions", len(res.Pieces), len(res.Junctions))
	}
	if res.Pieces[0] != geom.R(0, 0, 5, 3) {
		t.Fatalf("piece = %v", res.Pieces[0])
	}
}

func TestDecomposeLShape(t *testing.T) {
	res, err := Decompose(lShape())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pieces) != 2 {
		t.Fatalf("L decomposed into %d pieces, want 2", len(res.Pieces))
	}
	if len(res.Junctions) != 1 {
		t.Fatalf("L has %d junctions, want 1", len(res.Junctions))
	}
	if a := res.Union(); math.Abs(a-lShape().Area()) > 1e-9 {
		t.Fatalf("pieces area %g != polygon area %g", a, lShape().Area())
	}
	if !res.Connected() {
		t.Fatal("decomposition must be connected")
	}
	// Virtual door sits on the shared x=2 boundary.
	j := res.Junctions[0]
	if math.Abs(j.P.X-2) > 1e-9 {
		t.Fatalf("junction at %v, want x=2", j.P)
	}
}

func TestDecomposeComb(t *testing.T) {
	res, err := Decompose(comb())
	if err != nil {
		t.Fatal(err)
	}
	// Slabs at x = 0,3,5,7,9,12 -> 5 pieces; the tooth slabs [3,5] and [7,9]
	// become tall rectangles spanning corridor plus tooth.
	if len(res.Pieces) != 5 {
		t.Fatalf("comb decomposed into %d pieces, want 5", len(res.Pieces))
	}
	if a := res.Union(); math.Abs(a-comb().Area()) > 1e-9 {
		t.Fatalf("pieces area %g != polygon area %g", a, comb().Area())
	}
	if !res.Connected() {
		t.Fatal("comb decomposition must be connected")
	}
	// The five slabs form a chain -> 4 junctions.
	if len(res.Junctions) != 4 {
		t.Fatalf("comb has %d junctions, want 4", len(res.Junctions))
	}
	tall := 0
	for _, p := range res.Pieces {
		if p.Height() == 6 {
			tall++
		}
	}
	if tall != 2 {
		t.Fatalf("comb has %d tall pieces, want 2", tall)
	}
}

func TestDecomposeRejectsBadInput(t *testing.T) {
	if _, err := Decompose(geom.Polygon{geom.Pt(0, 0), geom.Pt(1, 0)}); err == nil {
		t.Fatal("degenerate polygon should fail")
	}
	tri := geom.Polygon{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(2, 3)}
	if _, err := Decompose(tri); err == nil {
		t.Fatal("non-rectilinear polygon should fail")
	}
}

func TestSplitLong(t *testing.T) {
	res, err := Decompose(geom.RectPoly(geom.R(0, 0, 10, 2)))
	if err != nil {
		t.Fatal(err)
	}
	fine := SplitLong(res, 2.5)
	if len(fine.Pieces) != 4 {
		t.Fatalf("SplitLong produced %d pieces, want 4", len(fine.Pieces))
	}
	if len(fine.Junctions) != 3 {
		t.Fatalf("SplitLong produced %d junctions, want 3", len(fine.Junctions))
	}
	if a := fine.Union(); math.Abs(a-20) > 1e-9 {
		t.Fatalf("area after split = %g, want 20", a)
	}
	if !fine.Connected() {
		t.Fatal("split decomposition must stay connected")
	}
}

func TestSplitLongVertical(t *testing.T) {
	res, _ := Decompose(geom.RectPoly(geom.R(0, 0, 2, 9)))
	fine := SplitLong(res, 3)
	if len(fine.Pieces) != 3 {
		t.Fatalf("vertical SplitLong produced %d pieces, want 3", len(fine.Pieces))
	}
	if !fine.Connected() {
		t.Fatal("vertical split must stay connected")
	}
}

func TestSplitLongPreservesCrossJunctions(t *testing.T) {
	res, err := Decompose(lShape())
	if err != nil {
		t.Fatal(err)
	}
	fine := SplitLong(res, 1.5)
	if !fine.Connected() {
		t.Fatal("refined L decomposition must stay connected")
	}
	if a := fine.Union(); math.Abs(a-lShape().Area()) > 1e-9 {
		t.Fatalf("area after refine = %g, want %g", a, lShape().Area())
	}
}

func TestDecomposeCombDoorsOnSharedBoundaries(t *testing.T) {
	res, _ := Decompose(comb())
	for _, j := range res.Junctions {
		ra, rb := res.Pieces[j.A], res.Pieces[j.B]
		if !ra.Contains(j.P) || !rb.Contains(j.P) {
			t.Fatalf("junction %v not on both pieces %v / %v", j.P, ra, rb)
		}
	}
}
