package decomp_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"indoorsq/internal/decomp"
	"indoorsq/internal/geom"
	"indoorsq/internal/indoor"
	"indoorsq/internal/oracle"
	"indoorsq/internal/spacegen"
)

// histogramPoly builds a random rectilinear "histogram" polygon: cols
// columns of integer widths and heights over a common baseline, with
// adjacent heights forced distinct so every column contributes a reflex
// or convex corner. Returns the CCW polygon and its exact area.
func histogramPoly(rng *rand.Rand, cols int) (geom.Polygon, float64) {
	xs := make([]float64, cols+1)
	hs := make([]float64, cols)
	area := 0.0
	for c := 0; c < cols; c++ {
		w := float64(1 + rng.Intn(4))
		xs[c+1] = xs[c] + w
		h := float64(1 + rng.Intn(6))
		for c > 0 && h == hs[c-1] {
			h = float64(1 + rng.Intn(6))
		}
		hs[c] = h
		area += w * h
	}
	W := xs[cols]
	poly := geom.Polygon{geom.Pt(0, 0), geom.Pt(W, 0), geom.Pt(W, hs[cols-1])}
	for c := cols - 1; c >= 1; c-- {
		poly = append(poly, geom.Pt(xs[c], hs[c]), geom.Pt(xs[c], hs[c-1]))
	}
	poly = append(poly, geom.Pt(0, hs[0]))
	return poly, area
}

// TestDecomposeHistograms runs the slab sweep over generated concave
// histogram polygons and checks the structural invariants: exact area
// preservation, connectivity, piece containment and disjointness, and
// junctions that really sit on the shared boundary of their two pieces.
func TestDecomposeHistograms(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cols := 2 + rng.Intn(5)
		poly, area := histogramPoly(rng, cols)
		name := fmt.Sprintf("seed=%d cols=%d poly=%v", seed, cols, poly)

		res, err := decomp.Decompose(poly)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := res.Union(); math.Abs(got-area) > 1e-9 {
			t.Fatalf("%s: union area %.12g, polygon area %.12g", name, got, area)
		}
		if !res.Connected() {
			t.Fatalf("%s: decomposition is disconnected", name)
		}
		for i, r := range res.Pieces {
			if r.Area() <= 0 {
				t.Fatalf("%s: piece %d has non-positive area %g", name, i, r.Area())
			}
			for _, p := range []geom.Point{
				geom.Pt(r.MinX, r.MinY), geom.Pt(r.MaxX, r.MinY),
				geom.Pt(r.MinX, r.MaxY), geom.Pt(r.MaxX, r.MaxY),
				geom.Pt((r.MinX+r.MaxX)/2, (r.MinY+r.MaxY)/2),
			} {
				if !poly.Contains(p) {
					t.Fatalf("%s: piece %d point %v escapes the polygon", name, i, p)
				}
			}
			for j := i + 1; j < len(res.Pieces); j++ {
				o := res.Pieces[j]
				w := math.Min(r.MaxX, o.MaxX) - math.Max(r.MinX, o.MinX)
				h := math.Min(r.MaxY, o.MaxY) - math.Max(r.MinY, o.MinY)
				if w > geom.Eps && h > geom.Eps {
					t.Fatalf("%s: pieces %d and %d overlap with area %g", name, i, j, w*h)
				}
			}
		}
		for _, jn := range res.Junctions {
			if jn.A == jn.B || jn.A < 0 || jn.B < 0 || jn.A >= len(res.Pieces) || jn.B >= len(res.Pieces) {
				t.Fatalf("%s: junction indexes out of range: %+v", name, jn)
			}
			ra, rb := res.Pieces[jn.A], res.Pieces[jn.B]
			if math.Abs(ra.MaxX-rb.MinX) > geom.Eps && math.Abs(rb.MaxX-ra.MinX) > geom.Eps {
				t.Fatalf("%s: junction %+v joins non-adjacent slabs", name, jn)
			}
			lo := math.Max(ra.MinY, rb.MinY)
			hi := math.Min(ra.MaxY, rb.MaxY)
			if jn.P.Y < lo || jn.P.Y > hi {
				t.Fatalf("%s: junction point %v outside shared segment [%g,%g]", name, jn.P, lo, hi)
			}
			if !poly.Contains(jn.P) {
				t.Fatalf("%s: junction point %v escapes the polygon", name, jn.P)
			}
		}
	}
}

// TestDecomposedHallwayNoShortcut compares the brute-force oracle over
// the same generated building with its L-shaped hallway kept concave
// versus decomposed into rectangular pieces joined by a virtual door.
// Decomposition constrains hallway crossings to pass through the virtual
// door point, so it may lengthen a path slightly but must never create a
// shortcut, and it must preserve reachability exactly.
func TestDecomposedHallwayNoShortcut(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		params := spacegen.Params{Floors: 1 + int(seed%2), Rows: 2, Cols: 3,
			Hall: spacegen.HallL, ExtraDoors: 3, Imbalance: 0.7}
		conc, err := spacegen.Generate(seed, params)
		if err != nil {
			t.Fatalf("seed=%d params=%s: %v", seed, params, err)
		}
		params.Decompose = true
		dec, err := spacegen.Generate(seed, params)
		if err != nil {
			t.Fatalf("seed=%d params=%s: %v", seed, params, err)
		}
		if dec.NumPartitions() <= conc.NumPartitions() {
			t.Fatalf("seed=%d params=%s: decomposition added no partitions (%d vs %d)",
				seed, params, dec.NumPartitions(), conc.NumPartitions())
		}
		oc, od := oracle.New(conc), oracle.New(dec)
		rng := rand.New(rand.NewSource(seed * 53))
		for trial := 0; trial < 6; trial++ {
			// The two spaces cover the same indoor point set, so a point
			// sampled in the concave space is valid in the decomposed one.
			p := spacegen.Point(conc, rng)
			q := spacegen.Point(conc, rng)
			cp, errC := oc.SPD(p, q, nil)
			dp, errD := od.SPD(p, q, nil)
			if (errC == nil) != (errD == nil) {
				t.Fatalf("seed=%d params=%s: reachability differs for %v -> %v: %v vs %v",
					seed, params, p, q, errC, errD)
			}
			if errC != nil {
				continue
			}
			if dp.Dist < cp.Dist-1e-6 {
				t.Fatalf("seed=%d params=%s: decomposition created a shortcut %v -> %v: %.12g < %.12g",
					seed, params, p, q, dp.Dist, cp.Dist)
			}
		}
	}
}

// TestSplitLongCorridorExact pins the one subfamily where decomposition
// must preserve distances exactly: a straight corridor sliced by
// SplitLong has all its virtual doors on the centerline, so a path
// entering and leaving through centered end doors telescopes to the same
// length as in the unsliced corridor.
func TestSplitLongCorridorExact(t *testing.T) {
	const (
		L    = 30.0
		hall = 4.0
	)
	build := func(slices decomp.Result) (*indoor.Space, error) {
		b := indoor.NewBuilder("corridor", 1)
		roomA := b.AddRoom(0, geom.RectPoly(geom.R(-5, 0, 0, hall)))
		roomB := b.AddRoom(0, geom.RectPoly(geom.R(L, 0, L+5, hall)))
		ids := make([]indoor.PartitionID, len(slices.Pieces))
		for i, r := range slices.Pieces {
			ids[i] = b.AddHallway(0, geom.RectPoly(r))
		}
		for _, jn := range slices.Junctions {
			vd := b.AddVirtualDoor(jn.P, 0)
			b.ConnectBoth(vd, ids[jn.A], ids[jn.B])
		}
		at := func(p geom.Point) indoor.PartitionID {
			for i, r := range slices.Pieces {
				if r.Contains(p) {
					return ids[i]
				}
			}
			return ids[0]
		}
		da := b.AddDoor(geom.Pt(0, hall/2), 0)
		b.ConnectBoth(da, roomA, at(geom.Pt(0, hall/2)))
		db := b.AddDoor(geom.Pt(L, hall/2), 0)
		b.ConnectBoth(db, roomB, at(geom.Pt(L, hall/2)))
		return b.Build()
	}

	whole, err := decomp.Decompose(geom.RectPoly(geom.R(0, 0, L, hall)))
	if err != nil {
		t.Fatal(err)
	}
	sliced := decomp.SplitLong(whole, 7) // 30/7 -> 5 slices of width 6
	if len(sliced.Pieces) != 5 || len(sliced.Junctions) != 4 {
		t.Fatalf("SplitLong = %d pieces, %d junctions; want 5 and 4", len(sliced.Pieces), len(sliced.Junctions))
	}
	if math.Abs(sliced.Union()-L*hall) > 1e-9 || !sliced.Connected() {
		t.Fatalf("SplitLong union %g connected %t; want %g and true", sliced.Union(), sliced.Connected(), L*hall)
	}
	for _, jn := range sliced.Junctions {
		if jn.P.Y != hall/2 {
			t.Fatalf("junction %v off the corridor centerline", jn.P)
		}
	}

	plain, err := build(whole)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := build(sliced)
	if err != nil {
		t.Fatal(err)
	}
	p := indoor.At(-2.5, hall/2, 0)
	q := indoor.At(L+2.5, hall/2, 0)
	const want = 2.5 + L + 2.5
	a, err := oracle.New(plain).SPD(p, q, nil)
	if err != nil || math.Abs(a.Dist-want) > 1e-9 {
		t.Fatalf("unsliced SPD = %+v, %v; want %g", a, err, want)
	}
	bres, err := oracle.New(fine).SPD(p, q, nil)
	if err != nil || math.Abs(bres.Dist-want) > 1e-9 {
		t.Fatalf("sliced SPD = %+v, %v; want %g exactly (centerline telescoping)", bres, err, want)
	}
	if len(bres.Doors) != 6 { // two real doors + four virtual doors
		t.Fatalf("sliced path doors = %v; want 6 doors", bres.Doors)
	}
}
