package bundle_test

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"indoorsq/internal/idindex"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/snapshot"
	"indoorsq/internal/snapshot/bundle"
	"indoorsq/internal/spacegen"
	"indoorsq/internal/workload"
)

// corpusParams mirrors the differential harness's parameter derivation:
// varied hallway topologies, decomposition, one-way doors, multiple floors.
func corpusParams(seed int64) spacegen.Params {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed5eed))
	p := spacegen.Params{
		Floors:      1 + rng.Intn(3),
		Rows:        1 + rng.Intn(3),
		Cols:        2 + rng.Intn(3),
		Hall:        spacegen.HallKind(rng.Intn(3)),
		ExtraDoors:  rng.Intn(6),
		OneWayFrac:  float64(rng.Intn(3)) / 2,
		Imbalance:   rng.Float64(),
		Decompose:   rng.Intn(2) == 1,
		StairLength: 4 + rng.Float64()*6,
		Objects:     8 + rng.Intn(12),
	}
	return p.Normalize()
}

// TestRoundTripBitIdentical is the snapshot gate: across a spacegen corpus,
// save → load must reproduce every engine bit-identically — same Range ids,
// same KNN neighbors with Float64bits-equal distances, same SPD door
// sequences and Float64bits-equal path lengths, same size accounting, and a
// Float64bits-equal IDINDEX distance matrix.
func TestRoundTripBitIdentical(t *testing.T) {
	dir := t.TempDir()
	for seed := int64(1); seed <= 12; seed++ {
		params := corpusParams(seed)
		sp, err := spacegen.Generate(seed, params)
		if err != nil {
			t.Fatalf("seed=%d: generate: %v", seed, err)
		}
		fresh, err := bundle.Build("corpus", sp, bundle.Options{Gamma: 4})
		if err != nil {
			t.Fatalf("seed=%d: build: %v", seed, err)
		}
		path := filepath.Join(dir, "b.isq")
		if err := fresh.WriteFile(path, true); err != nil {
			t.Fatalf("seed=%d: write: %v", seed, err)
		}
		loaded, err := bundle.LoadFile(path)
		if err != nil {
			t.Fatalf("seed=%d params=%s: load: %v", seed, params, err)
		}
		if loaded.Origin != "snapshot" || fresh.Origin != "build" {
			t.Fatalf("origins: %q / %q", loaded.Origin, fresh.Origin)
		}
		if loaded.Fingerprint != fresh.Fingerprint {
			t.Fatalf("seed=%d: fingerprints differ", seed)
		}
		if loaded.Graph.N != fresh.Graph.N || loaded.Graph.NumEdges() != fresh.Graph.NumEdges() {
			t.Fatalf("seed=%d: door graph shape differs", seed)
		}

		objs := spacegen.Objects(sp, seed+1, params.Objects)
		gen := workload.New(sp, seed*31)
		pts := gen.Points(6)
		pairs := gen.SPDPairs(0.5, 4)

		for _, name := range bundle.EngineNames {
			fe, le := fresh.Engines[name], loaded.Engines[name]
			if fe == nil || le == nil {
				t.Fatalf("seed=%d: engine %s missing (%v/%v)", seed, name, fe, le)
			}
			if fe.SizeBytes() != le.SizeBytes() {
				t.Fatalf("seed=%d %s: size %d (fresh) vs %d (loaded)", seed, name, fe.SizeBytes(), le.SizeBytes())
			}
			fe.SetObjects(objs)
			le.SetObjects(objs)
			var st query.Stats
			for _, p := range pts {
				fr, ferr := fe.Range(p, 9, &st)
				lr, lerr := le.Range(p, 9, &st)
				if (ferr == nil) != (lerr == nil) {
					t.Fatalf("seed=%d %s: Range errors %v vs %v", seed, name, ferr, lerr)
				}
				if len(fr) != len(lr) {
					t.Fatalf("seed=%d %s: Range %d vs %d results", seed, name, len(fr), len(lr))
				}
				for i := range fr {
					if fr[i] != lr[i] {
						t.Fatalf("seed=%d %s: Range id[%d] %d vs %d", seed, name, i, fr[i], lr[i])
					}
				}
				fk, ferr := fe.KNN(p, 5, &st)
				lk, lerr := le.KNN(p, 5, &st)
				if (ferr == nil) != (lerr == nil) || len(fk) != len(lk) {
					t.Fatalf("seed=%d %s: KNN shape differs", seed, name)
				}
				for i := range fk {
					if fk[i].ID != lk[i].ID || math.Float64bits(fk[i].Dist) != math.Float64bits(lk[i].Dist) {
						t.Fatalf("seed=%d %s: KNN[%d] %v vs %v", seed, name, i, fk[i], lk[i])
					}
				}
			}
			for _, pr := range pairs {
				fp, ferr := fe.SPD(pr.P, pr.Q, &st)
				lp, lerr := le.SPD(pr.P, pr.Q, &st)
				if (ferr == nil) != (lerr == nil) {
					t.Fatalf("seed=%d %s: SPD errors %v vs %v", seed, name, ferr, lerr)
				}
				if ferr != nil {
					continue
				}
				if math.Float64bits(fp.Dist) != math.Float64bits(lp.Dist) || len(fp.Doors) != len(lp.Doors) {
					t.Fatalf("seed=%d %s: SPD %v vs %v", seed, name, fp, lp)
				}
				for i := range fp.Doors {
					if fp.Doors[i] != lp.Doors[i] {
						t.Fatalf("seed=%d %s: SPD door[%d] %d vs %d", seed, name, i, fp.Doors[i], lp.Doors[i])
					}
				}
			}
		}

		// Full-matrix Float64bits equality for the engine whose matrices
		// dominate the snapshot.
		fix := fresh.Engines["IDIndex"].(*idindex.Index)
		lix := loaded.Engines["IDIndex"].(*idindex.Index)
		n := sp.NumDoors()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a := fix.DoorDist(indoor.DoorID(i), indoor.DoorID(j))
				b := lix.DoorDist(indoor.DoorID(i), indoor.DoorID(j))
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("seed=%d: Md2d[%d,%d] %x vs %x", seed, i, j, math.Float64bits(a), math.Float64bits(b))
				}
			}
		}

		// Warm pages landed: the loaded cache starts with the build-side fills.
		lparts, lcells := loaded.Space.DistCache().Filled()
		fparts, fcells := fresh.Space.DistCache().Filled()
		if lparts < fparts || lcells < fcells {
			t.Fatalf("seed=%d: warm cache %d/%d pages loaded, build had %d/%d", seed, lparts, lcells, fparts, fcells)
		}
	}
}

// TestLoadRejectsCorruptFile flips bytes across a saved bundle and verifies
// the loader never silently accepts a damaged artifact.
func TestLoadRejectsCorruptFile(t *testing.T) {
	sp, err := spacegen.Generate(3, corpusParams(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.Build("corrupt", sp, bundle.Options{Gamma: 4, Engines: []string{"CIndex"}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "b.isq")
	if err := b.WriteFile(path, false); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations.
	for _, n := range []int{0, 10, len(orig) / 3, len(orig) - 1} {
		if err := os.WriteFile(path, orig[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := bundle.LoadFile(path); err == nil {
			t.Fatalf("truncation to %d bytes loaded", n)
		}
	}
	// Bit flips at sampled offsets (every byte is too slow at bundle size).
	for off := 0; off < len(orig); off += 61 {
		mut := append([]byte(nil), orig...)
		mut[off] ^= 0x10
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := bundle.LoadFile(path); err == nil {
			t.Fatalf("bit flip at offset %d loaded silently", off)
		}
	}
}

// TestLoadRejectsForeignSpace ensures a snapshot only ever boots the venue
// it was written for: the header fingerprint (and the recomputed space
// fingerprint) must agree.
func TestLoadRejectsForeignSpace(t *testing.T) {
	sp, err := spacegen.Generate(5, corpusParams(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.Build("fp", sp, bundle.Options{Gamma: 4, Engines: []string{"CIndex"}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "b.isq")
	if err := b.WriteFile(path, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The header fingerprint sits at bytes 16..24 and is not covered by a
	// section CRC; corrupting it must still be caught, by the fingerprint
	// recomputation over the loaded space.
	data[17] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := bundle.LoadFile(path); err == nil {
		t.Fatal("foreign fingerprint loaded")
	}
}

// TestSnapshotSkipsUnbuiltEngines pins the partial-bundle path: a snapshot
// carrying a subset of engines loads exactly that subset.
func TestSnapshotSkipsUnbuiltEngines(t *testing.T) {
	sp, err := spacegen.Generate(7, corpusParams(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.Build("subset", sp, bundle.Options{Gamma: 4, Engines: []string{"CIndex", "VIPTree"}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "b.isq")
	if err := b.WriteFile(path, false); err != nil {
		t.Fatal(err)
	}
	r, err := snapshot.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Has(snapshot.TagIDIndex) || r.Has(snapshot.TagIPTree) {
		t.Fatal("unbuilt engine sections present")
	}
	loaded, err := bundle.Load(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Engines) != 2 || loaded.Engines["CIndex"] == nil || loaded.Engines["VIPTree"] == nil {
		t.Fatalf("loaded engines: %v", loaded.EngineList())
	}
}
